package ftclust

import (
	"testing"
	"testing/quick"
)

func TestSolveKMDSBasic(t *testing.T) {
	g, err := GenerateGraph("gnp", 120, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveKMDS(g, 3, WithSeed(4), WithT(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, sol, 3, ClosedPP); err != nil {
		t.Errorf("ClosedPP: %v", err)
	}
	if err := Verify(g, sol, 3, Standard); err != nil {
		t.Errorf("Standard: %v", err)
	}
	if sol.Size() != len(sol.Members) {
		t.Error("Size/Members mismatch")
	}
	if sol.Rounds != 2*3*3+4 {
		t.Errorf("Rounds = %d", sol.Rounds)
	}
	if sol.CertifiedLowerBound <= 0 {
		t.Error("certificate should be positive")
	}
	if sol.FractionalObjective < sol.CertifiedLowerBound {
		t.Error("Σx below its own certified lower bound")
	}
}

func TestSolveUDGKMDSBasic(t *testing.T) {
	pts := UniformDeployment(400, 5, 3)
	sol, g, err := SolveUDGKMDS(pts, 2, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 400 {
		t.Fatalf("graph nodes = %d", g.NumNodes())
	}
	if err := Verify(g, sol, 2, ClosedPP); err != nil {
		t.Errorf("verify: %v", err)
	}
	if sol.Rounds < 2 {
		t.Errorf("Rounds = %d", sol.Rounds)
	}
}

func TestOptionValidation(t *testing.T) {
	g, _ := GenerateGraph("ring", 10, 2, 1)
	if _, err := SolveKMDS(g, 0); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, _, err := SolveUDGKMDS(nil, 0); err == nil {
		t.Error("k=0 must be rejected (UDG)")
	}
	if _, err := GenerateGraph("bogus", 10, 2, 1); err == nil {
		t.Error("unknown family must be rejected")
	}
}

func TestNewGraphAndUnitDiskGraph(t *testing.T) {
	g, err := NewGraph(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	pts := []Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 3, Y: 3}}
	ug := UnitDiskGraph(pts)
	if ug.NumEdges() != 1 {
		t.Errorf("UDG edges = %d, want 1", ug.NumEdges())
	}
}

func TestDeterminism(t *testing.T) {
	g, _ := GenerateGraph("gnp", 80, 8, 2)
	a, err := SolveKMDS(g, 2, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveKMDS(g, 2, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatal("same seed, different solutions")
		}
	}
}

func TestSurvivesFailures(t *testing.T) {
	pts := UniformDeployment(300, 4, 8)
	sol, g, err := SolveUDGKMDS(pts, 3, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	// Killing any two members leaves everyone covered (k=3).
	if len(sol.Members) >= 2 {
		unc, minCov := SurvivesFailures(g, sol, sol.Members[:2])
		if unc != 0 {
			t.Errorf("uncovered = %d after 2 of k=3 failures", unc)
		}
		if minCov < 0 {
			t.Errorf("minCoverage = %d", minCov)
		}
	}
	// No failures at all.
	unc, _ := SurvivesFailures(g, sol, nil)
	if unc != 0 {
		t.Errorf("uncovered without failures = %d", unc)
	}
}

func TestQuickPublicAPIFeasible(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%60) + 5
		k := int(kRaw%3) + 1
		g, err := GenerateGraph("gnp", n, 6, seed)
		if err != nil {
			return false
		}
		sol, err := SolveKMDS(g, k, WithSeed(seed), WithT(2))
		if err != nil {
			return false
		}
		return Verify(g, sol, k, ClosedPP) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLocalDeltaOptionWorks(t *testing.T) {
	g, _ := GenerateGraph("powerlaw", 100, 6, 3)
	sol, err := SolveKMDS(g, 2, WithSeed(2), WithLocalDelta())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, sol, 2, ClosedPP); err != nil {
		t.Errorf("LocalDelta: %v", err)
	}
}

func TestFanOutOptionWorks(t *testing.T) {
	pts := UniformDeployment(200, 3, 4)
	sol, g, err := SolveUDGKMDS(pts, 4, WithSeed(1), WithFanOut(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, sol, 4, ClosedPP); err != nil {
		t.Errorf("fan-out 1: %v", err)
	}
}
