// Quickstart: build a random network, compute a 3-fold dominating set with
// both of the paper's algorithms, and verify the results.
package main

import (
	"fmt"
	"log"

	"ftclust"
)

func main() {
	// --- General graphs: Algorithms 1 + 2 -----------------------------
	g, err := ftclust.GenerateGraph("gnp", 500, 12, 42)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := ftclust.SolveKMDS(g, 3, ftclust.WithT(3), ftclust.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	if err := ftclust.Verify(g, sol, 3, ftclust.ClosedPP); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("general graph : n=%d  |S|=%d  rounds=%d  Σx=%.1f  certified OPT_f ≥ %.1f\n",
		g.NumNodes(), sol.Size(), sol.Rounds, sol.FractionalObjective, sol.CertifiedLowerBound)

	// --- Unit disk graphs: Algorithm 3 --------------------------------
	pts := ftclust.UniformDeployment(500, 6, 42)
	usol, ug, err := ftclust.SolveUDGKMDS(pts, 3, ftclust.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	if err := ftclust.Verify(ug, usol, 3, ftclust.ClosedPP); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unit disk     : n=%d  |S|=%d  rounds=%d  (%s)\n",
		ug.NumNodes(), usol.Size(), usol.Rounds, usol.Algorithm)

	// --- Fault tolerance: any k-1 = 2 head failures keep coverage -----
	dead := usol.Members[:2]
	uncovered, minCov := ftclust.SurvivesFailures(ug, usol, dead)
	fmt.Printf("after killing 2 of k=3 heads: uncovered=%d  min surviving coverage=%d\n",
		uncovered, minCov)
}
