// Sensorgrid: the paper's motivating scenario. A field of sensors elects a
// k-fold clustering backbone, then heads fail — first in a targeted attack
// on one sensor's neighborhood (the case the k-fold definition is built
// for: the victim survives any k−1 kills), then in field-wide random
// battery failures (where higher k degrades more gracefully).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ftclust"
)

const (
	sensors = 1200
	side    = 10.0 // field side in transmission-range units
)

func main() {
	pts := ftclust.UniformDeployment(sensors, side, 11)
	fmt.Printf("sensor field: %d sensors on a %.0f×%.0f field\n\n", sensors, side, side)
	fmt.Printf("%-3s %-5s %-10s %-26s %-30s\n",
		"k", "|S|", "guarantee", "targeted: kill k-1 / k", "random failures: uncovered @ 10/30/50%")

	for _, k := range []int{1, 3, 5} {
		sol, g, err := ftclust.SolveUDGKMDS(pts, k, ftclust.WithSeed(3))
		if err != nil {
			log.Fatal(err)
		}
		if err := ftclust.Verify(g, sol, k, ftclust.ClosedPP); err != nil {
			log.Fatal(err)
		}

		// Guarantee: the minimum dominator count over all non-member
		// sensors with enough neighbors is at least k.
		minDom := minDominators(g, sol, k)

		// Targeted attack: find a sensor with exactly minDom dominators
		// and kill k−1 of them, then one more.
		surviveK1, surviveK := targetedAttack(g, sol, k)

		// Random failures, averaged over 5 seeds.
		random := ""
		for _, p := range []float64{0.1, 0.3, 0.5} {
			mean := 0.0
			const trials = 5
			for s := int64(0); s < trials; s++ {
				r := rand.New(rand.NewSource(100*s + int64(k)))
				var dead []ftclust.NodeID
				for _, h := range sol.Members {
					if r.Float64() < p {
						dead = append(dead, h)
					}
				}
				unc, _ := ftclust.SurvivesFailures(g, sol, dead)
				mean += float64(unc)
			}
			random += fmt.Sprintf("%7.1f", mean/5)
		}
		fmt.Printf("%-3d %-5d ≥%-9d %-26s %s\n",
			k, sol.Size(), minDom, fmt.Sprintf("covered=%v / covered=%v", surviveK1, surviveK), random)
	}
	fmt.Println("\ntargeted column: after k−1 kills the victim is always covered (the")
	fmt.Println("definition's guarantee); the k-th kill finally uncovers it. random")
	fmt.Println("column: more redundancy, fewer dark sensors at every failure rate.")
}

// minDominators returns the smallest dominator count over non-member
// sensors whose degree allows k dominators.
func minDominators(g *ftclust.Graph, sol *ftclust.Solution, k int) int {
	min := -1
	for v := 0; v < g.NumNodes(); v++ {
		if sol.InSet[v] || g.Degree(ftclust.NodeID(v)) < k {
			continue
		}
		c := 0
		for _, w := range g.Neighbors(ftclust.NodeID(v)) {
			if sol.InSet[w] {
				c++
			}
		}
		if min < 0 || c < min {
			min = c
		}
	}
	return min
}

// targetedAttack picks a minimally-covered victim, kills k−1 of its heads
// (victim must stay covered), then a k-th (victim goes dark). It returns
// the two coverage outcomes.
func targetedAttack(g *ftclust.Graph, sol *ftclust.Solution, k int) (afterK1, afterK bool) {
	for v := 0; v < g.NumNodes(); v++ {
		if sol.InSet[v] || g.Degree(ftclust.NodeID(v)) < k {
			continue
		}
		var doms []ftclust.NodeID
		for _, w := range g.Neighbors(ftclust.NodeID(v)) {
			if sol.InSet[w] {
				doms = append(doms, w)
			}
		}
		if len(doms) != k {
			continue // want a tight victim: exactly k dominators
		}
		afterK1 = coveredAfter(g, sol, v, doms[:k-1])
		afterK = coveredAfter(g, sol, v, doms)
		return afterK1, afterK
	}
	return true, true // no tight victim exists (over-covered field)
}

func coveredAfter(g *ftclust.Graph, sol *ftclust.Solution, victim int, dead []ftclust.NodeID) bool {
	dm := map[ftclust.NodeID]bool{}
	for _, d := range dead {
		dm[d] = true
	}
	for _, w := range g.Neighbors(ftclust.NodeID(victim)) {
		if sol.InSet[w] && !dm[w] {
			return true
		}
	}
	return false
}
