// Battery: energy-aware cluster-head election with the weighted k-MDS
// extension (Section 4.1 of the paper). Cluster heads burn energy faster
// than ordinary sensors, so the network should prefer heads with full
// batteries. Costing each node by its inverse battery level and re-electing
// periodically rotates the head role and extends the time until the first
// sensor dies — the example compares cost-aware vs cost-blind election
// over repeated epochs.
package main

import (
	"fmt"
	"log"

	"ftclust"
)

const (
	sensors   = 600
	side      = 6.0
	k         = 2
	headDrain = 12.0 // energy per epoch when serving as head
	idleDrain = 1.0
	initial   = 100.0
)

func main() {
	g := buildNetwork()
	fmt.Printf("%-12s %-28s %-28s\n", "", "cost-aware (weighted k-MDS)", "cost-blind (uniform k-MDS)")
	fmt.Printf("%-12s %-14s %-14s %-14s %-14s\n", "epoch", "min battery", "dead sensors", "min battery", "dead sensors")

	aware := newFleet()
	blind := newFleet()
	for epoch := 1; ; epoch++ {
		okA := aware.electAndDrain(g, true, int64(epoch))
		okB := blind.electAndDrain(g, false, int64(epoch))
		fmt.Printf("%-12d %-14.1f %-14d %-14.1f %-14d\n",
			epoch, aware.minBattery(), aware.dead(), blind.minBattery(), blind.dead())
		if (!okA && !okB) || epoch >= 14 {
			break
		}
	}
	fmt.Println("\ncost-aware election rotates the head role across charged nodes,")
	fmt.Println("postponing the first battery death and keeping the fleet alive longer.")
}

func buildNetwork() *ftclust.Graph {
	pts := ftclust.UniformDeployment(sensors, side, 31)
	return ftclust.UnitDiskGraph(pts)
}

type fleet struct {
	battery []float64
}

func newFleet() *fleet {
	f := &fleet{battery: make([]float64, sensors)}
	for i := range f.battery {
		f.battery[i] = initial
	}
	return f
}

// electAndDrain elects heads for one epoch and applies energy drain.
// Returns false once every node is dead.
func (f *fleet) electAndDrain(g *ftclust.Graph, costAware bool, seed int64) bool {
	var sol *ftclust.Solution
	var err error
	if costAware {
		costs := make([]float64, sensors)
		for v, b := range f.battery {
			if b <= 0 {
				costs[v] = 1e6 // dead nodes are effectively unusable
			} else {
				costs[v] = initial / b
			}
		}
		sol, err = ftclust.SolveWeightedKMDS(g, k, costs, ftclust.WithSeed(seed), ftclust.WithT(4))
	} else {
		sol, err = ftclust.SolveKMDS(g, k, ftclust.WithSeed(seed), ftclust.WithT(4))
	}
	if err != nil {
		log.Fatal(err)
	}
	alive := false
	for v := range f.battery {
		if f.battery[v] <= 0 {
			continue
		}
		if sol.InSet[v] {
			f.battery[v] -= headDrain
		} else {
			f.battery[v] -= idleDrain
		}
		if f.battery[v] > 0 {
			alive = true
		}
	}
	return alive
}

func (f *fleet) minBattery() float64 {
	m := initial
	for _, b := range f.battery {
		if b < m {
			m = b
		}
	}
	if m < 0 {
		return 0
	}
	return m
}

func (f *fleet) dead() int {
	n := 0
	for _, b := range f.battery {
		if b <= 0 {
			n++
		}
	}
	return n
}
