// Backbone: clustering as a routing substrate. The k-fold dominating set
// elects cluster heads; every sensor affiliates with its k in-range heads;
// messages travel sensor → head → … → head → sensor, where inter-head
// routing runs over the backbone graph (heads plus the nodes bridging
// them). The example routes random message pairs, then knocks out one
// affiliated head per sensor and shows routing still succeeds — the
// redundancy the paper motivates.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ftclust"
)

func main() {
	const (
		n    = 1000
		side = 6.0
		k    = 3
	)
	pts := ftclust.UniformDeployment(n, side, 17)
	sol, g, err := ftclust.SolveUDGKMDS(pts, k, ftclust.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	if err := ftclust.Verify(g, sol, k, ftclust.ClosedPP); err != nil {
		log.Fatal(err)
	}

	// Affiliation table: every node's in-range heads.
	heads := make([][]ftclust.NodeID, n)
	for v := 0; v < n; v++ {
		id := ftclust.NodeID(v)
		if sol.InSet[v] {
			heads[v] = append(heads[v], id)
		}
		for _, w := range g.Neighbors(id) {
			if sol.InSet[w] {
				heads[v] = append(heads[v], w)
			}
		}
	}

	r := rand.New(rand.NewSource(8))
	const trials = 400
	okAll, okDegraded, possible := 0, 0, 0
	for i := 0; i < trials; i++ {
		src := ftclust.NodeID(r.Intn(n))
		dst := ftclust.NodeID(r.Intn(n))
		dist := g.BFS(src)
		if dist[dst] < 0 {
			continue // different components: no route exists at all
		}
		possible++
		if routeViaHeads(g, sol.InSet, heads, src, dst, nil) {
			okAll++
		}
		// Adversary kills the first affiliated head of every node on the
		// path's endpoints.
		dead := map[ftclust.NodeID]bool{}
		if len(heads[src]) > 0 {
			dead[heads[src][0]] = true
		}
		if len(heads[dst]) > 0 {
			dead[heads[dst][0]] = true
		}
		if routeViaHeads(g, sol.InSet, heads, src, dst, dead) {
			okDegraded++
		}
	}
	fmt.Printf("backbone heads           : %d of %d nodes (k=%d)\n", sol.Size(), n, k)
	fmt.Printf("routable pairs           : %d of %d attempted\n", possible, trials)
	fmt.Printf("delivered (all heads up) : %d/%d\n", okAll, possible)
	fmt.Printf("delivered (1 head of src and dst down): %d/%d\n", okDegraded, possible)
	fmt.Println("\nwith k=3 every sensor keeps ≥2 live heads after a single failure,")
	fmt.Println("so head-based routing survives without re-clustering.")
}

// routeViaHeads checks that src can reach dst through live infrastructure:
// src hops to a live affiliated head, travels inside the subgraph induced
// by live heads ∪ {nodes adjacent to ≥2 live heads} (the bridged
// backbone), and exits to dst via one of dst's live heads.
func routeViaHeads(g *ftclust.Graph, inSet []bool, heads [][]ftclust.NodeID,
	src, dst ftclust.NodeID, dead map[ftclust.NodeID]bool) bool {
	liveHead := func(v ftclust.NodeID) bool { return inSet[v] && !dead[v] }

	// Backbone membership: live heads and bridge nodes.
	inBackbone := func(v ftclust.NodeID) bool {
		if liveHead(v) {
			return true
		}
		cnt := 0
		for _, w := range g.Neighbors(v) {
			if liveHead(w) {
				cnt++
			}
		}
		return cnt >= 2
	}

	// Entry heads of src and exit heads of dst.
	var entry []ftclust.NodeID
	for _, h := range heads[src] {
		if liveHead(h) {
			entry = append(entry, h)
		}
	}
	if len(entry) == 0 {
		return false
	}
	exit := map[ftclust.NodeID]bool{}
	for _, h := range heads[dst] {
		if liveHead(h) {
			exit[h] = true
		}
	}
	if len(exit) == 0 {
		return false
	}

	// BFS restricted to the backbone, from all entry heads.
	seen := make([]bool, g.NumNodes())
	queue := append([]ftclust.NodeID(nil), entry...)
	for _, v := range entry {
		seen[v] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if exit[v] {
			return true
		}
		for _, w := range g.Neighbors(v) {
			if !seen[w] && inBackbone(w) {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}
