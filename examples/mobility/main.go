// Mobility: ad hoc networks re-cluster as nodes move. Nodes perform a
// random waypoint walk; every epoch the O(log log n)-round UDG algorithm
// recomputes the k-fold backbone from scratch (its speed is exactly what
// makes frequent re-clustering affordable). Between re-clusterings the old
// backbone decays as nodes move out of range; the example measures
// coverage just before and just after each re-clustering.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"ftclust"
)

const (
	nodes  = 800
	side   = 7.0
	k      = 2
	epochs = 8
	speed  = 0.25 // max movement per step, in transmission-range units
	steps  = 4    // movement steps per epoch
)

func main() {
	r := rand.New(rand.NewSource(5))
	pts := ftclust.UniformDeployment(nodes, side, 21)
	targets := ftclust.UniformDeployment(nodes, side, 22)

	fmt.Printf("%-6s %-8s %-22s %-22s %-8s\n",
		"epoch", "|S|", "stale uncovered (pre)", "fresh uncovered (post)", "rounds")

	var sol *ftclust.Solution
	for epoch := 0; epoch < epochs; epoch++ {
		// Nodes drift toward their waypoints.
		for s := 0; s < steps; s++ {
			for i := range pts {
				dx, dy := targets[i].X-pts[i].X, targets[i].Y-pts[i].Y
				d := math.Hypot(dx, dy)
				if d < speed {
					// Waypoint reached: pick a new one.
					targets[i] = ftclust.Point{X: r.Float64() * side, Y: r.Float64() * side}
					continue
				}
				pts[i].X += dx / d * speed
				pts[i].Y += dy / d * speed
			}
		}

		g := ftclust.UnitDiskGraph(pts)
		stale := "n/a (first epoch)      "
		if sol != nil {
			// How many nodes lost all k of last epoch's heads?
			bad := countUncovered(g, sol, k)
			stale = fmt.Sprintf("%d nodes (<%d heads)   ", bad, k)
		}

		fresh, _, err := ftclust.SolveUDGKMDS(pts, k, ftclust.WithSeed(int64(100+epoch)))
		if err != nil {
			log.Fatal(err)
		}
		if err := ftclust.Verify(g, fresh, k, ftclust.ClosedPP); err != nil {
			log.Fatal(err)
		}
		sol = fresh
		fmt.Printf("%-6d %-8d %-22s %-22d %-8d\n",
			epoch, sol.Size(), stale, countUncovered(g, sol, k), sol.Rounds)
	}
	fmt.Println("\nre-clustering restores full k-coverage each epoch; the stale backbone")
	fmt.Println("decays with mobility, which is why a low-round-complexity algorithm matters.")
}

// countUncovered counts nodes that do not have min(k, degree+1) members of
// sol in their closed neighborhood in the CURRENT graph g.
func countUncovered(g *ftclust.Graph, sol *ftclust.Solution, k int) int {
	bad := 0
	for v := 0; v < g.NumNodes(); v++ {
		id := ftclust.NodeID(v)
		need := k
		if d := g.Degree(id) + 1; d < need {
			need = d
		}
		got := 0
		if v < len(sol.InSet) && sol.InSet[v] {
			got++
		}
		for _, w := range g.Neighbors(id) {
			if int(w) < len(sol.InSet) && sol.InSet[w] {
				got++
			}
		}
		if got < need {
			bad++
		}
	}
	return bad
}
