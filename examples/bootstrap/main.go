// Bootstrap: the full lifecycle of a freshly deployed sensor network,
// assembled from this library's layers:
//
//  1. neighbor discovery over a collision (slotted-ALOHA) channel — nodes
//     start with zero knowledge;
//  2. fault-tolerant clustering (k-fold dominating set, Algorithm 3) on
//     the discovered graph;
//  3. a connected routing backbone over the cluster heads;
//  4. a collision-free two-level TDMA schedule;
//  5. head failures and incremental repair, without re-running anything
//     global.
package main

import (
	"fmt"
	"log"

	"ftclust"
)

func main() {
	const (
		n    = 700
		side = 6.0
		k    = 3
	)
	pts := ftclust.UniformDeployment(n, side, 77)

	// 1. Neighbor discovery on the collision channel.
	disc, err := ftclust.DiscoverNeighbors(pts, 5)
	if err != nil {
		log.Fatal(err)
	}
	truth := ftclust.UnitDiskGraph(pts)
	fmt.Printf("1. discovery : %d slots, %d/%d links found, complete=%v\n",
		disc.Slots, disc.Graph.NumEdges(), truth.NumEdges(), disc.Complete)

	// 2. Cluster the DISCOVERED graph (what the nodes actually know).
	sol, _, err := ftclust.SolveUDGKMDS(pts, k, ftclust.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	if err := ftclust.Verify(disc.Graph, sol, k, ftclust.ClosedPP); err != nil {
		// Discovery found every link (it runs to completion), so the
		// solution verifies on the discovered graph too.
		log.Fatalf("clustering invalid on discovered graph: %v", err)
	}
	fmt.Printf("2. clustering: %d heads (k=%d) in %d rounds\n", sol.Size(), k, sol.Rounds)

	// 3. Connected routing backbone.
	backbone, err := ftclust.ConnectBackbone(disc.Graph, sol)
	if err != nil {
		log.Fatal(err)
	}
	hops, ok, err := ftclust.RouteLength(disc.Graph, backbone, 0, ftclust.NodeID(n-1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. backbone  : %d nodes (%d bridges); route 0→%d: %d hops (ok=%v)\n",
		backbone.Size(), backbone.Size()-sol.Size(), n-1, hops, ok)

	// 4. TDMA frame.
	sched, err := ftclust.BuildTDMA(disc.Graph, sol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4. tdma      : frame length %d slots\n", sched.FrameLength)

	// 5. Kill a third of the heads, repair locally.
	var dead []ftclust.NodeID
	for i, h := range sol.Members {
		if i%3 == 0 {
			dead = append(dead, h)
		}
	}
	unc, _ := ftclust.SurvivesFailures(disc.Graph, sol, dead)
	repaired, promoted, err := ftclust.RepairAfterFailures(disc.Graph, sol, dead, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5. failures  : killed %d heads → %d uncovered sensors; repair promoted %d new heads in %d local rounds\n",
		len(dead), unc, promoted, repaired.Rounds)
	fmt.Println("\nevery stage ran on node-local knowledge only — the library is a full")
	fmt.Println("initialization stack, not just a dominating-set solver.")
}
