package ftclust

import (
	"context"
	"errors"
	"testing"
)

// Input validation must return the documented sentinels, matchable with
// errors.Is, for every solver entry point.
func TestSolverInputValidation(t *testing.T) {
	g, err := GenerateGraph("gnp", 10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := NewGraph(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	costs := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	pts := UniformDeployment(10, 3, 1)

	cases := []struct {
		name string
		err  error
		want error
	}{
		{"kmds k=0", func() error { _, err := SolveKMDS(g, 0); return err }(), ErrBadK},
		{"kmds k<0", func() error { _, err := SolveKMDS(g, -3); return err }(), ErrBadK},
		{"kmds k>n", func() error { _, err := SolveKMDS(g, 11); return err }(), ErrBadK},
		{"kmds nil graph", func() error { _, err := SolveKMDS(nil, 2); return err }(), ErrEmptyGraph},
		{"kmds empty graph", func() error { _, err := SolveKMDS(empty, 2); return err }(), ErrEmptyGraph},
		{"weighted k=0", func() error { _, err := SolveWeightedKMDS(g, 0, costs); return err }(), ErrBadK},
		{"weighted k>n", func() error { _, err := SolveWeightedKMDS(g, 11, costs); return err }(), ErrBadK},
		{"weighted nil graph", func() error { _, err := SolveWeightedKMDS(nil, 2, nil); return err }(), ErrEmptyGraph},
		{"weighted empty graph", func() error { _, err := SolveWeightedKMDS(empty, 2, nil); return err }(), ErrEmptyGraph},
		{"udg k=0", func() error { _, _, err := SolveUDGKMDS(pts, 0); return err }(), ErrBadK},
		{"udg k>n", func() error { _, _, err := SolveUDGKMDS(pts, 11); return err }(), ErrBadK},
		{"udg nil deployment", func() error { _, _, err := SolveUDGKMDS(nil, 2); return err }(), ErrEmptyGraph},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, tc.err, tc.want)
		}
	}

	// Valid boundary: k = n must still solve (demands are capped).
	if _, err := SolveKMDS(g, 10); err != nil {
		t.Errorf("k = n should be accepted: %v", err)
	}
}

// WithContext with an immediately-canceled context must abort with
// ErrCanceled for both general-graph pipelines.
func TestWithContextCanceled(t *testing.T) {
	g, err := GenerateGraph("gnp", 100, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveKMDS(g, 3, WithContext(ctx)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolveKMDS: got %v, want ErrCanceled", err)
	}
	costs := make([]float64, g.NumNodes())
	for i := range costs {
		costs[i] = 1
	}
	if _, err := SolveWeightedKMDS(g, 2, costs, WithContext(ctx)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolveWeightedKMDS: got %v, want ErrCanceled", err)
	}
	// A live context must not change behavior.
	if _, err := SolveKMDS(g, 3, WithContext(context.Background())); err != nil {
		t.Fatalf("live context: %v", err)
	}
}
