package ftclust

import "testing"

func TestDiscoverNeighbors(t *testing.T) {
	pts := UniformDeployment(150, 4, 9)
	disc, err := DiscoverNeighbors(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !disc.Complete {
		t.Fatal("discovery did not complete")
	}
	truth := UnitDiskGraph(pts)
	if disc.Graph.NumEdges() != truth.NumEdges() {
		t.Errorf("discovered %d of %d edges", disc.Graph.NumEdges(), truth.NumEdges())
	}
	if disc.Slots <= 0 {
		t.Errorf("Slots = %d", disc.Slots)
	}
}

func TestBuildTDMAPublic(t *testing.T) {
	pts := UniformDeployment(300, 4, 2)
	sol, g, err := SolveUDGKMDS(pts, 2, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildTDMA(g, sol)
	if err != nil {
		t.Fatal(err)
	}
	if sched.FrameLength <= 0 {
		t.Error("empty frame")
	}
	for v := range sched.HeadSlot {
		if sol.InSet[v] != (sched.HeadSlot[v] >= 0) {
			t.Fatalf("node %d: head/slot mismatch", v)
		}
	}
	// Non-dominating input must be rejected.
	empty := &Solution{InSet: make([]bool, g.NumNodes())}
	if _, err := BuildTDMA(g, empty); err == nil {
		t.Error("empty head set should be rejected")
	}
}

func TestRepairAfterFailuresPublic(t *testing.T) {
	pts := UniformDeployment(300, 4, 6)
	sol, g, err := SolveUDGKMDS(pts, 3, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	dead := sol.Members[:len(sol.Members)/2]
	repaired, promoted, err := RepairAfterFailures(g, sol, dead, 3)
	if err != nil {
		t.Fatal(err)
	}
	if promoted == 0 {
		t.Error("expected promotions after killing half the heads")
	}
	// Dead nodes must be out of the repaired set.
	for _, v := range dead {
		if repaired.InSet[v] {
			t.Fatalf("dead head %d still in repaired set", v)
		}
	}
}

func TestRouteLengthPublic(t *testing.T) {
	pts := UniformDeployment(250, 4, 3)
	sol, g, err := SolveUDGKMDS(pts, 1, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	backbone, err := ConnectBackbone(g, sol)
	if err != nil {
		t.Fatal(err)
	}
	hops, ok, err := RouteLength(g, backbone, 0, NodeID(g.NumNodes()-1))
	if err != nil {
		t.Fatal(err)
	}
	direct := g.BFS(0)[g.NumNodes()-1]
	if direct >= 1 {
		if !ok {
			t.Fatal("connected pair unroutable via backbone")
		}
		if hops < direct {
			t.Errorf("backbone route %d shorter than shortest path %d", hops, direct)
		}
	}
	// Routing over a non-connected "backbone" errors.
	if _, _, err := RouteLength(g, &Solution{InSet: make([]bool, g.NumNodes())}, 0, 1); err == nil {
		// An empty backbone is vacuously connected; use a deliberately
		// split one instead.
		split := make([]bool, g.NumNodes())
		split[0] = true
		split[g.NumNodes()-1] = true
		if _, _, err := RouteLength(g, &Solution{InSet: split}, 0, 1); err == nil {
			t.Error("split backbone should be rejected")
		}
	}
}
