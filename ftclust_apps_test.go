package ftclust

import "testing"

func TestDiscoverNeighbors(t *testing.T) {
	pts := UniformDeployment(150, 4, 9)
	disc, err := DiscoverNeighbors(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !disc.Complete {
		t.Fatal("discovery did not complete")
	}
	truth := UnitDiskGraph(pts)
	if disc.Graph.NumEdges() != truth.NumEdges() {
		t.Errorf("discovered %d of %d edges", disc.Graph.NumEdges(), truth.NumEdges())
	}
	if disc.Slots <= 0 {
		t.Errorf("Slots = %d", disc.Slots)
	}
}

func TestBuildTDMAPublic(t *testing.T) {
	pts := UniformDeployment(300, 4, 2)
	sol, g, err := SolveUDGKMDS(pts, 2, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildTDMA(g, sol)
	if err != nil {
		t.Fatal(err)
	}
	if sched.FrameLength <= 0 {
		t.Error("empty frame")
	}
	for v := range sched.HeadSlot {
		if sol.InSet[v] != (sched.HeadSlot[v] >= 0) {
			t.Fatalf("node %d: head/slot mismatch", v)
		}
	}
	// Non-dominating input must be rejected.
	empty := &Solution{InSet: make([]bool, g.NumNodes())}
	if _, err := BuildTDMA(g, empty); err == nil {
		t.Error("empty head set should be rejected")
	}
}

func TestRepairAfterFailuresPublic(t *testing.T) {
	pts := UniformDeployment(300, 4, 6)
	sol, g, err := SolveUDGKMDS(pts, 3, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	dead := sol.Members[:len(sol.Members)/2]
	repaired, promoted, err := RepairAfterFailures(g, sol, dead, 3)
	if err != nil {
		t.Fatal(err)
	}
	if promoted == 0 {
		t.Error("expected promotions after killing half the heads")
	}
	// Dead nodes must be out of the repaired set.
	for _, v := range dead {
		if repaired.InSet[v] {
			t.Fatalf("dead head %d still in repaired set", v)
		}
	}
}

func TestChurnEnginePublic(t *testing.T) {
	pts := UniformDeployment(300, 4, 6)
	sol, g, err := SolveUDGKMDS(pts, 2, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewChurnEngine(g, sol, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Kill a quarter of the heads in one transactional batch.
	dead := sol.Members[:len(sol.Members)/4]
	p, err := e.Apply(FailOp(dead...))
	if err != nil {
		t.Fatal(err)
	}
	if p.NewlyDead != len(dead) || p.LostHeads != len(dead) {
		t.Fatalf("patch after head wipe: %+v", p)
	}
	if p.Touched == 0 || p.Touched >= e.N() {
		t.Fatalf("Touched = %d, want damage-local (0 < touched < n=%d)", p.Touched, e.N())
	}
	for _, v := range dead {
		if !e.IsDead(v) || e.Solution().InSet[v] {
			t.Fatalf("dead head %d still live or in set", v)
		}
	}

	// Topology churn: add a node, wire it in, drop an edge.
	p, err = e.Apply(AddNodeOp(), AddEdgeOp(NodeID(g.NumNodes()), 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.AddedNodes) != 1 || p.AddedNodes[0] != NodeID(g.NumNodes()) {
		t.Fatalf("AddedNodes = %v", p.AddedNodes)
	}
	if e.N() != g.NumNodes()+1 {
		t.Fatalf("N = %d after add_node", e.N())
	}

	// An invalid batch (valid prefix, bad tail) must change nothing.
	before := e.Solution()
	preDrift, preDead := e.Drift(), e.DeadCount()
	if _, err := e.Apply(ReviveOp(dead[0]), FailOp(NodeID(1_000_000))); err == nil {
		t.Fatal("out-of-range fail accepted")
	}
	after := e.Solution()
	for v := range before.InSet {
		if before.InSet[v] != after.InSet[v] {
			t.Fatalf("rejected batch changed membership of node %d", v)
		}
	}
	if e.Drift() != preDrift || e.DeadCount() != preDead {
		t.Fatal("rejected batch changed drift or liveness")
	}

	// Resolve adopts a certified fresh solve and compacts the overlay.
	resolved, err := e.Resolve(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if e.Drift() != 0 {
		t.Fatalf("Drift = %d after Resolve", e.Drift())
	}
	if resolved.Size() == 0 || resolved.Size() != e.Size() {
		t.Fatalf("resolved size %d vs engine size %d", resolved.Size(), e.Size())
	}
	for _, v := range dead {
		if resolved.InSet[v] {
			t.Fatalf("Resolve promoted dead node %d", v)
		}
	}

	// The engine keeps absorbing churn after adoption.
	if _, err := e.Apply(ReviveOp(dead...)); err != nil {
		t.Fatal(err)
	}
	if e.DeadCount() != 0 {
		t.Fatalf("DeadCount = %d after revival", e.DeadCount())
	}
}

func TestRouteLengthPublic(t *testing.T) {
	pts := UniformDeployment(250, 4, 3)
	sol, g, err := SolveUDGKMDS(pts, 1, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	backbone, err := ConnectBackbone(g, sol)
	if err != nil {
		t.Fatal(err)
	}
	hops, ok, err := RouteLength(g, backbone, 0, NodeID(g.NumNodes()-1))
	if err != nil {
		t.Fatal(err)
	}
	direct := g.BFS(0)[g.NumNodes()-1]
	if direct >= 1 {
		if !ok {
			t.Fatal("connected pair unroutable via backbone")
		}
		if hops < direct {
			t.Errorf("backbone route %d shorter than shortest path %d", hops, direct)
		}
	}
	// Routing over a non-connected "backbone" errors.
	if _, _, err := RouteLength(g, &Solution{InSet: make([]bool, g.NumNodes())}, 0, 1); err == nil {
		// An empty backbone is vacuously connected; use a deliberately
		// split one instead.
		split := make([]bool, g.NumNodes())
		split[0] = true
		split[g.NumNodes()-1] = true
		if _, _, err := RouteLength(g, &Solution{InSet: split}, 0, 1); err == nil {
			t.Error("split backbone should be rejected")
		}
	}
}
