package stats

import (
	"math"
	"testing"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := Std(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("Std = %v, want ≈2.138", s)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if Std([]float64{1}) != 0 {
		t.Error("Std of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Interpolation between values.
	if got := Quantile([]float64{0, 10}, 0.3); math.Abs(got-3) > 1e-12 {
		t.Errorf("interpolated quantile = %v, want 3", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Median != 3 || s.Max != 100 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	if s.CI95 <= 0 {
		t.Error("CI95 should be positive for varied data")
	}
}

func TestFitPerfectLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	f := Fit(x, y)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Errorf("R² = %v, want 1", f.R2)
	}
}

func TestFitDegenerate(t *testing.T) {
	if f := Fit([]float64{1, 2}, []float64{1}); !math.IsNaN(f.Slope) {
		t.Error("length mismatch should yield NaN slope")
	}
	if f := Fit([]float64{2, 2, 2}, []float64{1, 2, 3}); !math.IsNaN(f.Slope) {
		t.Error("constant x should yield NaN slope")
	}
	// Flat y: slope 0, R² defined as 1 by convention here.
	f := Fit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if f.Slope != 0 || f.Intercept != 5 {
		t.Errorf("flat fit = %+v", f)
	}
}
