// Package stats provides the small statistical toolkit the experiment
// suite uses: summary statistics, quantiles, confidence intervals, and
// least-squares regression for round-complexity fits.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (n-1 denominator), 0 for fewer
// than two samples.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		m = math.Min(m, x)
	}
	return m
}

// Max returns the maximum, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		m = math.Max(m, x)
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * Std(xs) / math.Sqrt(float64(len(xs)))
}

// Summary bundles the usual descriptive statistics.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P95    float64
	CI95   float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    Std(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Quantile(xs, 0.5),
		P95:    Quantile(xs, 0.95),
		CI95:   CI95(xs),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f±%.3f std=%.3f min=%.3f med=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.CI95, s.Std, s.Min, s.Median, s.P95, s.Max)
}

// LinReg holds a least-squares line fit y ≈ Slope·x + Intercept.
type LinReg struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// Fit computes the least-squares fit of y against x. Inputs must have the
// same nonzero length; degenerate inputs yield NaNs.
func Fit(x, y []float64) LinReg {
	if len(x) != len(y) || len(x) == 0 {
		return LinReg{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	mx, my := Mean(x), Mean(y)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinReg{Slope: math.NaN(), Intercept: my, R2: math.NaN()}
	}
	slope := sxy / sxx
	r2 := 1.0
	if syy > 0 {
		r2 = sxy * sxy / (sxx * syy)
	}
	return LinReg{Slope: slope, Intercept: my - slope*mx, R2: r2}
}
