// Package mobility implements the random-waypoint mobility model used by
// the ad hoc experiments: every node drifts toward a private waypoint at a
// bounded speed and draws a fresh waypoint on arrival. Mobility is the
// third fault source the paper's introduction lists (besides node failure
// and the unstable medium); experiment E13 uses this model to measure how
// quickly a clustering decays and what re-clustering buys.
package mobility

import (
	"math"
	"math/rand"

	"ftclust/internal/geom"
	"ftclust/internal/rng"
)

// Model is a random-waypoint walker over the side × side square.
type Model struct {
	pts     []geom.Point
	targets []geom.Point
	side    float64
	speed   float64
	rnd     *rand.Rand
}

// NewRandomWaypoint creates a model with n nodes placed uniformly, each
// moving at most speed distance units per step.
func NewRandomWaypoint(n int, side, speed float64, seed int64) *Model {
	return &Model{
		pts:     geom.UniformPoints(n, side, seed),
		targets: geom.UniformPoints(n, side, rng.Derive(seed, 1)),
		side:    side,
		speed:   speed,
		rnd:     rng.NewStream(seed, 2),
	}
}

// Points returns the current node positions. The returned slice is a copy;
// mutating it does not affect the model.
func (m *Model) Points() []geom.Point {
	out := make([]geom.Point, len(m.pts))
	copy(out, m.pts)
	return out
}

// N returns the number of nodes.
func (m *Model) N() int { return len(m.pts) }

// Step advances every node one movement step toward its waypoint, drawing
// a new waypoint when it arrives.
func (m *Model) Step() {
	for i := range m.pts {
		dx := m.targets[i].X - m.pts[i].X
		dy := m.targets[i].Y - m.pts[i].Y
		d := math.Hypot(dx, dy)
		if d <= m.speed {
			m.pts[i] = m.targets[i]
			m.targets[i] = geom.Point{
				X: m.rnd.Float64() * m.side,
				Y: m.rnd.Float64() * m.side,
			}
			continue
		}
		m.pts[i].X += dx / d * m.speed
		m.pts[i].Y += dy / d * m.speed
	}
}

// StepN advances n steps.
func (m *Model) StepN(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// MaxDisplacement returns the largest distance any node can travel in one
// step (the speed), useful for bounding neighborhood churn.
func (m *Model) MaxDisplacement() float64 { return m.speed }
