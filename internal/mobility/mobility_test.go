package mobility

import (
	"math"
	"testing"
)

func TestStepBoundsAndSpeed(t *testing.T) {
	m := NewRandomWaypoint(200, 5, 0.3, 1)
	prev := m.Points()
	for step := 0; step < 50; step++ {
		m.Step()
		cur := m.Points()
		for i := range cur {
			if cur[i].X < -1e-9 || cur[i].X > 5+1e-9 || cur[i].Y < -1e-9 || cur[i].Y > 5+1e-9 {
				t.Fatalf("step %d: node %d left the square: %v", step, i, cur[i])
			}
			if d := prev[i].Dist(cur[i]); d > 0.3+1e-9 {
				t.Fatalf("step %d: node %d moved %v > speed", step, i, d)
			}
		}
		prev = cur
	}
}

func TestPointsIsACopy(t *testing.T) {
	m := NewRandomWaypoint(5, 3, 0.1, 2)
	p := m.Points()
	p[0].X = 999
	if m.Points()[0].X == 999 {
		t.Error("Points must return a copy")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewRandomWaypoint(50, 4, 0.2, 7)
	b := NewRandomWaypoint(50, 4, 0.2, 7)
	a.StepN(30)
	b.StepN(30)
	pa, pb := a.Points(), b.Points()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed should give identical trajectories")
		}
	}
}

func TestNodesActuallyMove(t *testing.T) {
	m := NewRandomWaypoint(100, 6, 0.25, 3)
	start := m.Points()
	m.StepN(40)
	end := m.Points()
	moved := 0.0
	for i := range start {
		moved += start[i].Dist(end[i])
	}
	if moved/float64(len(start)) < 0.5 {
		t.Errorf("mean displacement %v too small; model is frozen", moved/float64(len(start)))
	}
	if m.N() != 100 || math.Abs(m.MaxDisplacement()-0.25) > 1e-12 {
		t.Error("accessors broken")
	}
}
