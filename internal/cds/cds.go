// Package cds turns a (k-fold) dominating set into a connected virtual
// backbone, the post-processing step the clustering literature pairs with
// dominating sets for routing (Alzoubi–Wan–Frieder [1, 22], Wu–Li [23],
// cited in the paper's related work). Given a dominating set S of a graph
// G, any two "adjacent" clusters are at hop distance at most 3, so S can
// be connected by inserting at most two bridge nodes per cluster-tree edge.
// For dominating sets this yields the classical |CDS| ≤ 3|S| − 2 bound per
// connected component, which Connect asserts.
package cds

import (
	"fmt"

	"ftclust/internal/graph"
)

// Result carries the connected backbone.
type Result struct {
	// InSet marks the backbone (the input set plus bridge nodes).
	InSet []bool
	// Bridges is the number of nodes added to connect the input set.
	Bridges int
}

// Size returns the backbone size.
func (r Result) Size() int {
	n := 0
	for _, in := range r.InSet {
		if in {
			n++
		}
	}
	return n
}

// Connect augments the dominating set dom with bridge nodes so that inside
// every connected component of g the backbone members form a connected
// subgraph. dom must dominate g (every node in or adjacent to dom);
// otherwise an error is returned, because the 3-hop cluster adjacency
// argument (and termination) relies on domination.
func Connect(g *graph.Graph, dom []bool) (Result, error) {
	n := g.NumNodes()
	if len(dom) != n {
		return Result{}, fmt.Errorf("cds: mask has %d entries for %d nodes", len(dom), n)
	}
	for v := 0; v < n; v++ {
		if dom[v] {
			continue
		}
		ok := false
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if dom[w] {
				ok = true
				break
			}
		}
		if !ok && g.Degree(graph.NodeID(v)) > 0 {
			return Result{}, fmt.Errorf("cds: node %d is not dominated", v)
		}
	}

	inSet := make([]bool, n)
	copy(inSet, dom)
	res := Result{InSet: inSet}

	// Union-find over backbone clusters.
	parent := make([]int, n)
	for v := range parent {
		parent[v] = v
	}
	var find func(int) int
	find = func(v int) int {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Backbone-internal edges merge clusters immediately.
	g.Edges(func(u, v graph.NodeID) {
		if inSet[u] && inSet[v] {
			union(int(u), int(v))
		}
	})

	// Greedy merging: scan length-2 then length-3 connections between
	// distinct clusters, inserting the intermediate node(s). Repeat until
	// a full pass adds nothing; domination guarantees that two backbone
	// clusters in the same component of g always have such a short link,
	// so on exit the backbone is connected per component.
	for changed := true; changed; {
		changed = false
		// u — x — v with u, v backbone, x not.
		for x := 0; x < n; x++ {
			if inSet[x] {
				continue
			}
			var first graph.NodeID = -1
			for _, w := range g.Neighbors(graph.NodeID(x)) {
				if !inSet[w] {
					continue
				}
				if first < 0 {
					first = w
					continue
				}
				if find(int(first)) != find(int(w)) {
					inSet[x] = true
					res.Bridges++
					union(x, int(first))
					union(x, int(w))
					changed = true
					break
				}
			}
		}
		// u — x — y — v with u, v backbone, x, y not.
		g.Edges(func(x, y graph.NodeID) {
			if inSet[x] || inSet[y] {
				return
			}
			ux := backboneNeighbor(g, inSet, x)
			uy := backboneNeighbor(g, inSet, y)
			if ux < 0 || uy < 0 || find(int(ux)) == find(int(uy)) {
				return
			}
			inSet[x] = true
			inSet[y] = true
			res.Bridges += 2
			union(int(x), int(ux))
			union(int(y), int(uy))
			union(int(x), int(y))
			changed = true
		})
	}
	return res, nil
}

// backboneNeighbor returns some backbone neighbor of v, or -1.
func backboneNeighbor(g *graph.Graph, inSet []bool, v graph.NodeID) graph.NodeID {
	for _, w := range g.Neighbors(v) {
		if inSet[w] {
			return w
		}
	}
	return -1
}

// IsConnectedBackbone verifies that within every connected component of g,
// the backbone members form one connected subgraph (components of g that
// contain no backbone member — only possible for isolated non-dominated
// nodes — are ignored).
func IsConnectedBackbone(g *graph.Graph, inSet []bool) bool {
	n := g.NumNodes()
	comp, _ := g.Components()
	// For each graph component, BFS inside the backbone from its first
	// backbone member and count reached members.
	total := map[int]int{}
	for v := 0; v < n; v++ {
		if inSet[v] {
			total[comp[v]]++
		}
	}
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		if !inSet[v] || seen[v] {
			continue
		}
		// BFS within backbone.
		reached := 0
		queue := []graph.NodeID{graph.NodeID(v)}
		seen[v] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			reached++
			for _, w := range g.Neighbors(u) {
				if inSet[w] && !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		if reached != total[comp[v]] {
			return false
		}
	}
	return true
}
