package cds

import (
	"testing"
	"testing/quick"

	"ftclust/internal/baseline"
	"ftclust/internal/core"
	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/udg"
	"ftclust/internal/verify"
)

func TestConnectPath(t *testing.T) {
	// Path 0-1-2-3-4-5 with dominators {1, 4}: hop distance 3 apart, so
	// connecting needs the two bridges 2 and 3.
	g := graph.Path(6)
	dom := []bool{false, true, false, false, true, false}
	res, err := Connect(g, dom)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnectedBackbone(g, res.InSet) {
		t.Error("backbone not connected")
	}
	if res.Bridges != 2 {
		t.Errorf("bridges = %d, want 2", res.Bridges)
	}
	if !res.InSet[1] || !res.InSet[4] {
		t.Error("original dominators must stay")
	}
}

func TestConnectRejectsNonDominating(t *testing.T) {
	g := graph.Path(5)
	dom := []bool{true, false, false, false, false}
	if _, err := Connect(g, dom); err == nil {
		t.Error("non-dominating input should be rejected")
	}
}

func TestConnectAlreadyConnected(t *testing.T) {
	g := graph.Complete(6)
	dom := []bool{true, true, false, false, false, false}
	res, err := Connect(g, dom)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bridges != 0 {
		t.Errorf("bridges = %d, want 0", res.Bridges)
	}
	if res.Size() != 2 {
		t.Errorf("size = %d, want 2", res.Size())
	}
}

func TestConnectDisconnectedGraph(t *testing.T) {
	// Two separate triangles, one dominator each: backbone must be
	// connected per component; no cross-component bridge is possible.
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	})
	dom := []bool{true, false, false, true, false, false}
	res, err := Connect(g, dom)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnectedBackbone(g, res.InSet) {
		t.Error("per-component connectivity expected")
	}
	if res.Bridges != 0 {
		t.Errorf("bridges = %d, want 0", res.Bridges)
	}
}

func TestConnectOnSolverOutputs(t *testing.T) {
	// End-to-end: UDG k-MDS output → connected backbone, with the classic
	// |CDS| ≤ 3|S| size check on connected deployments.
	for seed := int64(0); seed < 5; seed++ {
		pts := geom.UniformPoints(300, 4, seed)
		g, idx := geom.UnitUDG(pts)
		sol, err := udg.Solve(pts, g, idx, udg.Options{K: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Connect(g, sol.Leader)
		if err != nil {
			t.Fatal(err)
		}
		if !IsConnectedBackbone(g, res.InSet) {
			t.Errorf("seed %d: backbone disconnected", seed)
		}
		// Still a 2-fold dominating set (only grew).
		if err := verify.CheckKFold(g, res.InSet, 2, verify.ClosedPP); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		_, comps := g.Components()
		if res.Size() > 3*sol.Size()+comps {
			t.Errorf("seed %d: CDS %d exceeds 3·|S| = %d", seed, res.Size(), 3*sol.Size())
		}
	}
}

func TestConnectOnGeneralGraphSolver(t *testing.T) {
	g := graph.Gnp(120, 0.08, 3)
	sol, err := core.Solve(g, core.Options{K: 1, T: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Connect(g, sol.InSet)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnectedBackbone(g, res.InSet) {
		t.Error("backbone disconnected")
	}
}

func TestQuickConnectAlwaysConnects(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%80) + 5
		g := graph.Gnp(n, 0.15, seed)
		dom := baseline.GreedyKMDS(g, 1)
		res, err := Connect(g, dom)
		if err != nil {
			return false
		}
		return IsConnectedBackbone(g, res.InSet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestIsConnectedBackboneDetectsGaps(t *testing.T) {
	g := graph.Path(5)
	split := []bool{true, false, false, false, true}
	if IsConnectedBackbone(g, split) {
		t.Error("split backbone should be detected")
	}
	if !IsConnectedBackbone(g, []bool{false, false, false, false, false}) {
		t.Error("empty backbone is vacuously connected")
	}
}
