// Package core implements the paper's contribution for general graphs
// (Section 4): Algorithm 1, the distributed LP approximation computing a
// fractional k-fold dominating set together with a dual certificate, and
// Algorithm 2, the distributed randomized rounding scheme converting the
// fractional solution into an integral k-fold dominating set.
//
// Every algorithm exists in two semantically identical forms: a pure
// in-memory engine (this file and rounding.go) that emulates the global
// synchronous execution and is convenient for large experiments, and a
// sim.Program (program.go) that runs on the message-passing simulator with
// bit-level message accounting. Tests assert the two produce identical
// results for identical seeds.
package core

import (
	"fmt"
	"math"
	"sort"

	"ftclust/internal/graph"
)

// FractionalOptions configure Algorithm 1.
type FractionalOptions struct {
	// T is the trade-off parameter t ≥ 1: time O(t²), approximation
	// O(t·Δ^{2/t}·…).
	T int
	// LocalDelta, when true, replaces the globally known maximum degree Δ
	// with each node's maximum degree within two hops (the relaxation the
	// paper's final remark points to via [16, 11]).
	LocalDelta bool
}

// FractionalResult carries the primal solution, the dual certificate, and
// enough metadata to check every claim of Section 4.1.
type FractionalResult struct {
	// X is the fractional primal solution of (PP), per node.
	X []float64
	// Y and Z form the dual solution of (DP) built by Algorithm 1; it is
	// feasible up to the factor Kappa (Lemma 4.4).
	Y, Z []float64
	// BetaSum is Σ_i Σ_{j∈N_i} β_{i,j}; Lemma 4.3 states it equals the
	// dual objective Σ (k_i·y_i − z_i).
	BetaSum float64
	// Kappa is t·(Δ+1)^{1/t}, the dual infeasibility factor of Lemma 4.4.
	Kappa float64
	// Delta is the maximum degree used (global Δ unless LocalDelta).
	Delta int
	// T echoes the trade-off parameter.
	T int
	// LoopRounds is the communication-round count of the double loop,
	// exactly 2t² (each inner iteration costs two rounds).
	LoopRounds int
}

// Objective returns Σ x_i.
func (r FractionalResult) Objective() float64 {
	s := 0.0
	for _, v := range r.X {
		s += v
	}
	return s
}

// DualObjective returns Σ (k_i·y_i − z_i) for the given demands.
func (r FractionalResult) DualObjective(k []float64) float64 {
	s := 0.0
	for i := range r.Y {
		s += k[i]*r.Y[i] - r.Z[i]
	}
	return s
}

// TheoreticalRatio returns Theorem 4.5's bound t((Δ+1)^{2/t} + (Δ+1)^{1/t})
// on Σx/OPT_f.
func TheoreticalRatio(t, delta int) float64 {
	d := float64(delta + 1)
	tf := float64(t)
	return tf * (math.Pow(d, 2/tf) + math.Pow(d, 1/tf))
}

// LowerBoundRatio returns the Ω(Δ^{1/t}/t) distributed-approximation lower
// bound of [13] for algorithms running in O(t) rounds (constants omitted).
func LowerBoundRatio(t, delta int) float64 {
	return math.Pow(float64(delta), 1/float64(t)) / float64(t)
}

// SolveFractional runs Algorithm 1 on g with per-node demands k (capped at
// closed-neighborhood size, mirroring (PP)'s feasibility requirement) and
// returns the fractional solution with its dual certificate. The execution
// is an exact, deterministic emulation of the synchronous algorithm; the
// sim.Program in program.go reproduces it bit for bit.
func SolveFractional(g *graph.Graph, k []float64, opts FractionalOptions) (FractionalResult, error) {
	t := opts.T
	if t < 1 {
		return FractionalResult{}, fmt.Errorf("core: t must be ≥ 1, got %d", t)
	}
	n := g.NumNodes()
	if len(k) != n {
		return FractionalResult{}, fmt.Errorf("core: k has %d entries for %d nodes", len(k), n)
	}

	globalDelta := g.MaxDegree()
	deltas := make([]int, n) // per-node Δ the node believes in
	if opts.LocalDelta {
		local := g.MaxDegreeWithinHops(2)
		copy(deltas, local)
	} else {
		for v := range deltas {
			deltas[v] = globalDelta
		}
	}

	st := newFracState(g, k, deltas, t)
	for p := t - 1; p >= 0; p-- {
		for q := t - 1; q >= 0; q-- {
			st.innerIteration(p, q)
		}
	}
	st.finishDuals()

	return FractionalResult{
		X:          st.x,
		Y:          st.y,
		Z:          st.z,
		BetaSum:    st.betaSum(),
		Kappa:      float64(t) * math.Pow(float64(globalDelta+1), 1/float64(t)),
		Delta:      globalDelta,
		T:          t,
		LoopRounds: 2 * t * t,
	}, nil
}

// fracState is the global emulation of Algorithm 1's per-node state.
type fracState struct {
	g      *graph.Graph
	n      int
	t      int
	k      []float64 // effective demands (capped)
	x      []float64
	xPlus  []float64
	dyn    []int // dynamic degrees δ̃_i (white nodes in closed neighborhood)
	white  []bool
	c      []float64
	y, z   []float64
	thresh [][]float64 // thresh[v][p] = (Δ_v+1)^{p/t}
	inc    [][]float64 // inc[v][q]    = 1/(Δ_v+1)^{q/t}
	// closed[v] is the closed neighborhood of v in ascending ID order;
	// pos[v] maps a node ID to its slot in closed[v].
	closed [][]graph.NodeID
	pos    []map[graph.NodeID]int
	// alpha[v][s], beta[v][s]: α_{j,v}, β_{j,v} where j = closed[v][s] —
	// the share of neighbor j's x-increase attributed to covering v.
	alpha [][]float64
	beta  [][]float64
}

func newFracState(g *graph.Graph, k []float64, deltas []int, t int) *fracState {
	n := g.NumNodes()
	st := &fracState{
		g: g, n: n, t: t,
		k:      make([]float64, n),
		x:      make([]float64, n),
		xPlus:  make([]float64, n),
		dyn:    make([]int, n),
		white:  make([]bool, n),
		c:      make([]float64, n),
		y:      make([]float64, n),
		z:      make([]float64, n),
		thresh: make([][]float64, n),
		inc:    make([][]float64, n),
		closed: make([][]graph.NodeID, n),
		pos:    make([]map[graph.NodeID]int, n),
		alpha:  make([][]float64, n),
		beta:   make([][]float64, n),
	}
	for v := 0; v < n; v++ {
		st.closed[v] = ClosedNeighborhood(g, graph.NodeID(v))
		st.pos[v] = make(map[graph.NodeID]int, len(st.closed[v]))
		for s, w := range st.closed[v] {
			st.pos[v][w] = s
		}
		st.alpha[v] = make([]float64, len(st.closed[v]))
		st.beta[v] = make([]float64, len(st.closed[v]))
		st.k[v] = math.Min(k[v], float64(len(st.closed[v])))
		st.white[v] = true
		st.dyn[v] = len(st.closed[v])
		d1 := float64(deltas[v] + 1)
		st.thresh[v] = make([]float64, t)
		st.inc[v] = make([]float64, t)
		for e := 0; e < t; e++ {
			st.thresh[v][e] = math.Pow(d1, float64(e)/float64(t))
			st.inc[v][e] = 1 / st.thresh[v][e]
		}
	}
	return st
}

// innerIteration performs one (p, q) iteration for every node — two
// communication rounds in the distributed execution.
func (st *fracState) innerIteration(p, q int) {
	// Round A: raise x-values (Lines 5–8).
	for v := 0; v < st.n; v++ {
		st.xPlus[v] = 0
		if st.x[v] < 1 && float64(st.dyn[v]) >= st.thresh[v][p] {
			xp := math.Min(st.inc[v][q], 1-st.x[v])
			st.xPlus[v] = xp
			st.x[v] += xp
		}
	}
	// Round B part 1: white nodes account coverage and duals (Lines 10–21).
	for v := 0; v < st.n; v++ {
		if !st.white[v] {
			continue
		}
		cPlus := 0.0
		for _, w := range st.closed[v] {
			cPlus += st.xPlus[w]
		}
		lambda := 1.0
		if cPlus > 0 {
			lambda = math.Min(1, (st.k[v]-st.c[v])/cPlus)
		}
		st.c[v] += cPlus
		for s, w := range st.closed[v] {
			st.beta[v][s] += lambda * st.xPlus[w] / st.thresh[v][p]
			st.alpha[v][s] += lambda * st.xPlus[w]
		}
		if st.c[v] >= st.k[v] {
			st.white[v] = false
			st.y[v] = 1 / st.thresh[v][p]
		}
	}
	// Round B part 2: refresh dynamic degrees (Line 24).
	for v := 0; v < st.n; v++ {
		d := 0
		for _, w := range st.closed[v] {
			if st.white[w] {
				d++
			}
		}
		st.dyn[v] = d
	}
}

// finishDuals computes z_i = Σ_{j∈N_i} (α_{i,j}·y_j − β_{i,j}) (Line 27).
// α_{i,j} and β_{i,j} are stored at node j (the covered side), so the
// distributed execution needs one extra exchange round here.
func (st *fracState) finishDuals() {
	for v := 0; v < st.n; v++ {
		sum := 0.0
		for _, w := range st.closed[v] {
			s := st.pos[w][graph.NodeID(v)]
			sum += st.alpha[w][s]*st.y[w] - st.beta[w][s]
		}
		st.z[v] = sum
	}
}

func (st *fracState) betaSum() float64 {
	total := 0.0
	for v := 0; v < st.n; v++ {
		for _, b := range st.beta[v] {
			total += b
		}
	}
	return total
}

// ClosedNeighborhood returns N_v = {v} ∪ neighbors(v) in ascending ID
// order, the paper's N_i.
func ClosedNeighborhood(g *graph.Graph, v graph.NodeID) []graph.NodeID {
	ns := g.Neighbors(v)
	out := make([]graph.NodeID, 0, len(ns)+1)
	out = append(out, ns...)
	out = append(out, v)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EffectiveDemands returns the demand vector k_i = min(k, |N_i|) used
// throughout (the paper's feasibility requirement).
func EffectiveDemands(g *graph.Graph, k float64) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		out[v] = math.Min(k, float64(g.Degree(graph.NodeID(v))+1))
	}
	return out
}
