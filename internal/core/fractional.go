// Package core implements the paper's contribution for general graphs
// (Section 4): Algorithm 1, the distributed LP approximation computing a
// fractional k-fold dominating set together with a dual certificate, and
// Algorithm 2, the distributed randomized rounding scheme converting the
// fractional solution into an integral k-fold dominating set.
//
// Every algorithm exists in two semantically identical forms: a pure
// in-memory engine (this file and rounding.go) that emulates the global
// synchronous execution and is convenient for large experiments, and a
// sim.Program (program.go) that runs on the message-passing simulator with
// bit-level message accounting. Tests assert the two produce identical
// results for identical seeds.
//
// The in-memory engine stores all per-node state in flat contiguous
// arrays over a shared closed-neighborhood CSR layout (layout.go) and can
// distribute each per-round sweep over a work-claiming pool
// (FractionalOptions.Workers; par.Pool). Every sweep touches only the
// state of the node it iterates, so results are bit-identical to the
// sequential execution whatever the worker count or chunk interleaving.
//
// The per-node numeric state is generic over float64 and float32
// (fracStateG): the float64 instantiation is the reference engine, the
// float32 instantiation (FractionalOptions.Float32) halves the memory
// traffic of the dense sweeps at a documented precision cost — see the
// Float32 field for the contract.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"ftclust/internal/graph"
	"ftclust/internal/par"
)

// FractionalOptions configure Algorithm 1.
type FractionalOptions struct {
	// T is the trade-off parameter t ≥ 1: time O(t²), approximation
	// O(t·Δ^{2/t}·…).
	T int
	// Ctx, when non-nil, is checked between inner iterations (i.e. every
	// two communication rounds); a done context aborts the solve with a
	// wrapped ErrCanceled.
	Ctx context.Context
	// LocalDelta, when true, replaces the globally known maximum degree Δ
	// with each node's maximum degree within two hops (the relaxation the
	// paper's final remark points to via [16, 11]).
	LocalDelta bool
	// Workers distributes the per-round sweeps over this many goroutines.
	// Values ≤ 1 run sequentially. Results are bit-identical for every
	// worker count and equal seeds.
	Workers int
	// Float32 switches the engine's per-node numeric state (x, duals,
	// coverage, α/β shares) from float64 to float32, halving the memory
	// bandwidth of the dense per-round sweeps. Precision contract (pinned
	// by TestFloat32CloseToFloat64): the returned vectors are float32
	// values widened to float64; primal x entries stay within ~1e-3 of
	// the float64 engine except where a discrete threshold decision flips
	// (a node crossing c ≥ k one iteration earlier or later — rare, ≤ 1%
	// of nodes on the bench families), and the primal and dual objectives
	// agree to ~1e-3 relative. Per-entry DUAL values carry no closeness
	// guarantee: y_i takes one of the discrete levels (Δ+1)^{-p/t}, so a
	// flipped threshold moves it a full level. The float32 path is itself
	// fully deterministic: equal seeds give bit-identical results for
	// every worker count and interleaving.
	Float32 bool
	// Scratch, when non-nil, supplies every working array from a reusable
	// arena: repeated solves on same-shape graphs allocate nothing in
	// steady state. The returned X/Y/Z vectors then alias the arena and
	// are overwritten by the next solve using it; see Scratch.
	Scratch *Scratch

	// pool, when non-nil, is a started work-claiming pool owned by the
	// caller (Solve shares one across both phases); nil with Workers > 1
	// makes the phase start its own.
	pool *par.Pool
}

// FractionalResult carries the primal solution, the dual certificate, and
// enough metadata to check every claim of Section 4.1.
type FractionalResult struct {
	// X is the fractional primal solution of (PP), per node.
	X []float64
	// Y and Z form the dual solution of (DP) built by Algorithm 1; it is
	// feasible up to the factor Kappa (Lemma 4.4).
	Y, Z []float64
	// BetaSum is Σ_i Σ_{j∈N_i} β_{i,j}; Lemma 4.3 states it equals the
	// dual objective Σ (k_i·y_i − z_i).
	BetaSum float64
	// Kappa is t·(Δ+1)^{1/t}, the dual infeasibility factor of Lemma 4.4,
	// always computed from the global Δ — even under LocalDelta. This is
	// sound because Lemma 4.4 bounds each dual constraint Σ_{i∈N_j} y_i
	// per outer phase p: the neighbors of j covered while threshold level
	// p was active contribute y_i = 1/(Δ_i+1)^{p/t} against β-mass
	// accrued at the same per-node rate, and the overshoot of the last
	// x-increase before c_i reaches k_i is at most a factor
	// (Δ_i+1)^{1/t}. Each local Δ_i is a maximum over a 2-hop ball, so
	// Δ_i ≤ Δ and (Δ_i+1)^{1/t} ≤ (Δ+1)^{1/t}; summing over the t phases
	// gives a per-constraint violation of at most t·(Δ+1)^{1/t} = κ. The
	// claims test TestClaimLocalDeltaDualCertificate asserts this bound
	// empirically with LocalDelta enabled.
	Kappa float64
	// Delta is the maximum degree used (global Δ unless LocalDelta).
	Delta int
	// T echoes the trade-off parameter.
	T int
	// LoopRounds is the communication-round count of the double loop,
	// exactly 2t² (each inner iteration costs two rounds).
	LoopRounds int
}

// Objective returns Σ x_i.
func (r FractionalResult) Objective() float64 {
	s := 0.0
	for _, v := range r.X {
		s += v
	}
	return s
}

// DualObjective returns Σ (k_i·y_i − z_i) for the given demands.
func (r FractionalResult) DualObjective(k []float64) float64 {
	s := 0.0
	for i := range r.Y {
		s += k[i]*r.Y[i] - r.Z[i]
	}
	return s
}

// TheoreticalRatio returns Theorem 4.5's bound t((Δ+1)^{2/t} + (Δ+1)^{1/t})
// on Σx/OPT_f.
func TheoreticalRatio(t, delta int) float64 {
	d := float64(delta + 1)
	tf := float64(t)
	return tf * (math.Pow(d, 2/tf) + math.Pow(d, 1/tf))
}

// LowerBoundRatio returns the Ω(Δ^{1/t}/t) distributed-approximation lower
// bound of [13] for algorithms running in O(t) rounds (constants omitted).
func LowerBoundRatio(t, delta int) float64 {
	return math.Pow(float64(delta), 1/float64(t)) / float64(t)
}

// SolveFractional runs Algorithm 1 on g with per-node demands k (capped at
// closed-neighborhood size, mirroring (PP)'s feasibility requirement) and
// returns the fractional solution with its dual certificate. The execution
// is an exact, deterministic emulation of the synchronous algorithm; the
// sim.Program in program.go reproduces it bit for bit.
func SolveFractional(g *graph.Graph, k []float64, opts FractionalOptions) (FractionalResult, error) {
	return solveFractionalWithLayout(g, layoutFor(g, opts.Scratch), k, opts)
}

// solveFractionalWithLayout is SolveFractional on a precomputed layout, so
// Solve can share one layout between the fractional and rounding phases.
func solveFractionalWithLayout(g *graph.Graph, lay *layout, k []float64, opts FractionalOptions) (FractionalResult, error) {
	t := opts.T
	if t < 1 {
		return FractionalResult{}, fmt.Errorf("core: t must be ≥ 1, got %d", t)
	}
	n := g.NumNodes()
	if len(k) != n {
		return FractionalResult{}, fmt.Errorf("core: k has %d entries for %d nodes", len(k), n)
	}

	globalDelta := g.MaxDegree()
	var deltas []int // per-node Δ the node believes in; nil = global
	if opts.LocalDelta {
		deltas = g.MaxDegreeWithinHops(2)
	}

	pool := opts.pool
	if pool == nil && opts.Workers > 1 {
		pool = poolFor(opts.Scratch)
		pool.Start(opts.Workers)
		defer pool.Stop()
	}

	meta := FractionalResult{
		Kappa:      float64(t) * math.Pow(float64(globalDelta+1), 1/float64(t)),
		Delta:      globalDelta,
		T:          t,
		LoopRounds: 2 * t * t,
	}

	if opts.Float32 {
		st := frac32StateFor(opts.Scratch)
		if err := runFractional(st, lay, k, deltas, globalDelta, t, pool, opts.Ctx); err != nil {
			return FractionalResult{}, err
		}
		meta.X, meta.Y, meta.Z = widenResults(opts.Scratch, st.x, st.y, st.z)
		meta.BetaSum = st.betaSum()
		return meta, nil
	}
	st := fracStateFor(opts.Scratch)
	if err := runFractional(st, lay, k, deltas, globalDelta, t, pool, opts.Ctx); err != nil {
		return FractionalResult{}, err
	}
	meta.X, meta.Y, meta.Z = st.x, st.y, st.z
	meta.BetaSum = st.betaSum()
	return meta, nil
}

// runFractional executes Algorithm 1's double loop on a prepared state.
func runFractional[F floatT](st *fracStateG[F], lay *layout, k []float64, deltas []int, globalDelta, t int, pool *par.Pool, ctx context.Context) error {
	st.prepare(lay, k, deltas, globalDelta, t, pool)
	for p := t - 1; p >= 0; p-- {
		for q := t - 1; q >= 0; q-- {
			if err := checkCtx(ctx); err != nil {
				return err
			}
			st.innerIteration(p, q)
		}
	}
	st.finishDuals()
	return nil
}

// floatT enumerates the numeric types the engine instantiates over. The
// float64 form is the reference; float32 trades ~1e-4 absolute precision
// for half the memory traffic (see FractionalOptions.Float32).
type floatT interface {
	~float32 | ~float64
}

// fracStateG is the global emulation of Algorithm 1's per-node state,
// generic over the numeric type. All per-neighborhood quantities live in
// flat arrays aligned with the shared CSR layout: alpha[s], beta[s] hold
// α_{j,v}, β_{j,v} where v is the node owning slot s and j = lay.adj[s] —
// the share of neighbor j's x-increase attributed to covering v.
type fracStateG[F floatT] struct {
	lay    *layout
	mir    []int32 // mirror slots for finishDuals
	n      int
	t      int
	k      []F // effective demands (capped)
	x      []F
	xPlus  []F
	dyn    []int32 // dynamic degrees δ̃_i (white nodes in closed neighborhood)
	white  []bool
	turned []bool // scratch: nodes whose color flipped this iteration
	c      []F
	y, z   []F
	// Threshold tables (Δ_v+1)^{p/t} and their reciprocals. With a global
	// Δ every node shares one t-entry table (perNode=false); under
	// LocalDelta the tables are per-node, flattened as thresh[v*t+p].
	thresh  []F
	inc     []F
	perNode bool
	alpha   []F
	beta    []F

	// Parallel execution. pool is non-nil iff this solve runs with
	// workers > 1. The sweep bodies are bound ONCE (cached across solves
	// by the arena) and parameterized through the p/q fields, so a pooled
	// sweep dispatch allocates nothing — binding a fresh closure or
	// method value per par call was the dominant share of the old
	// parallel path's 209 allocs/op.
	pool       *par.Pool
	p, q       int
	nodeDeltas []int // transient: deltas slice during a pooled table fill
	roundAFn   func(worker, lo, hi int)
	roundBFn   func(worker, lo, hi int)
	finishFn   func(worker, lo, hi int)
}

// prepare initializes the emulation state for one solve. On an
// arena-embedded state it reuses every array capacity (slots are either
// zeroed or overwritten below), so repeated solves allocate nothing.
func (st *fracStateG[F]) prepare(lay *layout, k []float64, deltas []int, globalDelta, t int, pool *par.Pool) {
	n := lay.n
	st.lay, st.n, st.t, st.pool = lay, n, t, pool
	st.mir = lay.mirrorInto(st.mir)
	st.k = growNoClear(st.k, n)
	st.x = growZero(st.x, n)
	st.xPlus = growZero(st.xPlus, n)
	st.dyn = growNoClear(st.dyn, n)
	st.white = growNoClear(st.white, n)
	st.turned = growZero(st.turned, n)
	st.c = growZero(st.c, n)
	st.y = growZero(st.y, n)
	st.z = growZero(st.z, n)
	st.alpha = growZero(st.alpha, len(lay.adj))
	st.beta = growZero(st.beta, len(lay.adj))
	if pool != nil && st.roundAFn == nil {
		st.roundAFn = func(_, lo, hi int) { st.roundA(lo, hi, st.p, st.q) }
		st.roundBFn = func(_, lo, hi int) { st.roundB(lo, hi, st.p) }
		st.finishFn = func(_, lo, hi int) { st.finishRange(lo, hi) }
	}
	if deltas == nil {
		st.perNode = false
		st.thresh = growNoClear(st.thresh, t)
		st.inc = growNoClear(st.inc, t)
		fillPowTables(st.thresh, st.inc, globalDelta, t)
	} else {
		st.perNode = true
		st.thresh = growNoClear(st.thresh, n*t)
		st.inc = growNoClear(st.inc, n*t)
		if pool != nil {
			st.nodeDeltas = deltas
			st.pool.Run(n, st.tablesFor)
			st.nodeDeltas = nil
		} else {
			st.fillNodeTables(deltas, 0, n)
		}
	}
	for v := 0; v < n; v++ {
		size := lay.size(v)
		st.k[v] = F(math.Min(k[v], float64(size)))
		st.white[v] = true
		st.dyn[v] = int32(size)
	}
}

// fillPowTables fills dst[e] = (δ+1)^{e/t} and rec[e] = its reciprocal,
// computed in float64 and narrowed to F — both instantiations therefore
// share one deterministic table source.
func fillPowTables[F floatT](dst, rec []F, delta, t int) {
	d1 := float64(delta + 1)
	for e := 0; e < t; e++ {
		th := math.Pow(d1, float64(e)/float64(t))
		dst[e] = F(th)
		rec[e] = F(1 / th)
	}
}

// fillNodeTables fills the per-node threshold tables for nodes [lo, hi).
func (st *fracStateG[F]) fillNodeTables(deltas []int, lo, hi int) {
	t := st.t
	for v := lo; v < hi; v++ {
		fillPowTables(st.thresh[v*t:(v+1)*t], st.inc[v*t:(v+1)*t], deltas[v], t)
	}
}

// tablesFor is the pooled form of fillNodeTables: the deltas slice rides
// in nodeDeltas for the duration of the dispatch (a method, not a
// closure, so the init sweep allocates nothing).
func (st *fracStateG[F]) tablesFor(_, lo, hi int) {
	st.fillNodeTables(st.nodeDeltas, lo, hi)
}

// threshAt returns (Δ_v+1)^{e/t}; incAt its reciprocal.
func (st *fracStateG[F]) threshAt(v, e int) F {
	if st.perNode {
		return st.thresh[v*st.t+e]
	}
	return st.thresh[e]
}

func (st *fracStateG[F]) incAt(v, e int) F {
	if st.perNode {
		return st.inc[v*st.t+e]
	}
	return st.inc[e]
}

// innerIteration performs one (p, q) iteration for every node — two
// communication rounds in the distributed execution. Rounds A and B touch
// only per-node state and parallelize; the dynamic-degree maintenance is
// incremental (each node turning black decrements its closed neighbors'
// counters once, O(Δ) amortized per color flip), replacing the original
// full O(n·Δ) neighborhood rescan per iteration.
func (st *fracStateG[F]) innerIteration(p, q int) {
	if st.pool != nil {
		// The bound sweep bodies read p/q through the state; the pool's
		// signal send orders these writes before any worker runs.
		st.p, st.q = p, q
		st.pool.Run(st.n, st.roundAFn)
		st.pool.Run(st.n, st.roundBFn)
	} else {
		st.roundA(0, st.n, p, q)
		st.roundB(0, st.n, p)
	}
	// Round B part 2: maintain dynamic degrees (Line 24) incrementally.
	// Sequential on purpose: total cost over the whole run is one O(Δ)
	// decrement sweep per node, which is dwarfed by Round B part 1.
	for v := 0; v < st.n; v++ {
		if !st.turned[v] {
			continue
		}
		st.turned[v] = false
		for _, w := range st.lay.closed(v) {
			st.dyn[w]--
		}
	}
}

// roundA raises x-values (Lines 5–8) for nodes in [lo, hi). The min is
// spelled as a comparison rather than math.Min: for the positive finite
// operands of this loop the two agree bit for bit, and the comparison
// form instantiates for float32 too.
func (st *fracStateG[F]) roundA(lo, hi, p, q int) {
	for v := lo; v < hi; v++ {
		st.xPlus[v] = 0
		if st.x[v] < 1 && F(st.dyn[v]) >= st.threshAt(v, p) {
			xp := st.incAt(v, q)
			if rem := 1 - st.x[v]; rem < xp {
				xp = rem
			}
			st.xPlus[v] = xp
			st.x[v] += xp
		}
	}
}

// roundB is Round B part 1: white nodes in [lo, hi) account coverage and
// duals (Lines 10–21).
func (st *fracStateG[F]) roundB(lo, hi, p int) {
	for v := lo; v < hi; v++ {
		if !st.white[v] {
			continue
		}
		closed := st.lay.closed(v)
		cPlus := F(0)
		for _, w := range closed {
			cPlus += st.xPlus[w]
		}
		lambda := F(1)
		if cPlus > 0 {
			if l := (st.k[v] - st.c[v]) / cPlus; l < 1 {
				lambda = l
			}
		}
		st.c[v] += cPlus
		base := int(st.lay.off[v])
		// Division (not a precomputed reciprocal) to stay bit-identical
		// with the sim.Program's per-node arithmetic.
		th := st.threshAt(v, p)
		for s, w := range closed {
			st.beta[base+s] += lambda * st.xPlus[w] / th
			st.alpha[base+s] += lambda * st.xPlus[w]
		}
		if st.c[v] >= st.k[v] {
			st.white[v] = false
			st.turned[v] = true
			st.y[v] = 1 / th
		}
	}
}

// finishDuals computes z_i = Σ_{j∈N_i} (α_{i,j}·y_j − β_{i,j}) (Line 27).
// α_{i,j} and β_{i,j} are stored at node j (the covered side), so the
// distributed execution needs one extra exchange round here; the engine
// reads them through the precomputed mirror slots.
func (st *fracStateG[F]) finishDuals() {
	if st.pool != nil {
		st.pool.Run(st.n, st.finishFn)
	} else {
		st.finishRange(0, st.n)
	}
}

func (st *fracStateG[F]) finishRange(lo, hi int) {
	for v := lo; v < hi; v++ {
		sum := F(0)
		for s := st.lay.off[v]; s < st.lay.off[v+1]; s++ {
			w := st.lay.adj[s]
			m := st.mir[s]
			sum += st.alpha[m]*st.y[w] - st.beta[m]
		}
		st.z[v] = sum
	}
}

// betaSum accumulates in float64 on both instantiations: the reduction is
// sequential (deterministic order) and the float64 form is unchanged from
// the reference engine.
func (st *fracStateG[F]) betaSum() float64 {
	total := 0.0
	for _, b := range st.beta {
		total += float64(b)
	}
	return total
}

// ClosedNeighborhood returns N_v = {v} ∪ neighbors(v) in ascending ID
// order, the paper's N_i. The solvers use the shared flat layout instead;
// this helper remains for one-off queries and tests.
func ClosedNeighborhood(g *graph.Graph, v graph.NodeID) []graph.NodeID {
	ns := g.Neighbors(v)
	out := make([]graph.NodeID, 0, len(ns)+1)
	out = append(out, ns...)
	out = append(out, v)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EffectiveDemands returns the demand vector k_i = min(k, |N_i|) used
// throughout (the paper's feasibility requirement).
func EffectiveDemands(g *graph.Graph, k float64) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		out[v] = math.Min(k, float64(g.Degree(graph.NodeID(v))+1))
	}
	return out
}
