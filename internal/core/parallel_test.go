package core

import (
	"testing"

	"ftclust/internal/graph"
)

// Equivalence tests for the worker-pool execution of the in-memory
// engines: for every graph family, seed, and worker count, the parallel
// run must be byte-for-byte identical to the sequential one (X, Y, Z,
// InSet, and all counters). Run under -race these tests also guard the
// sweeps against data races.

func parallelTestGraphs(tb testing.TB, n int) map[string]*graph.Graph {
	tb.Helper()
	side := 1
	for side*side < n {
		side++
	}
	return map[string]*graph.Graph{
		"gnp":      graph.GnpAvgDegree(n, 10, 3),
		"grid":     graph.Grid(side, side),
		"powerlaw": graph.PreferentialAttachment(n, 3, 5),
	}
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { // bitwise: the engines promise exact equality
			return false
		}
	}
	return true
}

func sameBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSolveParallelMatchesSequential(t *testing.T) {
	for name, g := range parallelTestGraphs(t, 400) {
		for _, seed := range []int64{1, 7, 42} {
			for _, workers := range []int{2, 4, 7} {
				seq, err := Solve(g, Options{K: 3, T: 3, Seed: seed})
				if err != nil {
					t.Fatalf("%s seed=%d: sequential: %v", name, seed, err)
				}
				par, err := Solve(g, Options{K: 3, T: 3, Seed: seed, Workers: workers})
				if err != nil {
					t.Fatalf("%s seed=%d w=%d: parallel: %v", name, seed, workers, err)
				}
				if !sameFloats(seq.Fractional.X, par.Fractional.X) {
					t.Errorf("%s seed=%d w=%d: X diverges", name, seed, workers)
				}
				if !sameFloats(seq.Fractional.Y, par.Fractional.Y) {
					t.Errorf("%s seed=%d w=%d: Y diverges", name, seed, workers)
				}
				if !sameFloats(seq.Fractional.Z, par.Fractional.Z) {
					t.Errorf("%s seed=%d w=%d: Z diverges", name, seed, workers)
				}
				if seq.Fractional.BetaSum != par.Fractional.BetaSum {
					t.Errorf("%s seed=%d w=%d: BetaSum diverges", name, seed, workers)
				}
				if !sameBools(seq.InSet, par.InSet) {
					t.Errorf("%s seed=%d w=%d: InSet diverges", name, seed, workers)
				}
				if seq.Rounding.Sampled != par.Rounding.Sampled ||
					seq.Rounding.Repaired != par.Rounding.Repaired {
					t.Errorf("%s seed=%d w=%d: rounding counters diverge", name, seed, workers)
				}
			}
		}
	}
}

func TestSolveFractionalParallelLocalDelta(t *testing.T) {
	g := graph.PreferentialAttachment(300, 2, 9) // heavy degree spread
	k := EffectiveDemands(g, 2)
	seq, err := SolveFractional(g, k, FractionalOptions{T: 3, LocalDelta: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveFractional(g, k, FractionalOptions{T: 3, LocalDelta: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(seq.X, par.X) || !sameFloats(seq.Y, par.Y) || !sameFloats(seq.Z, par.Z) {
		t.Error("LocalDelta parallel run diverges from sequential")
	}
}

func TestRoundSolutionParallelMatchesSequential(t *testing.T) {
	g := graph.GnpAvgDegree(500, 8, 11)
	k := EffectiveDemands(g, 2)
	frac, err := SolveFractional(g, k, FractionalOptions{T: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{0, 3, 19} {
		seq, err := RoundSolution(g, k, frac.X, frac.Delta, RoundingOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		par, err := RoundSolution(g, k, frac.X, frac.Delta, RoundingOptions{Seed: seed, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !sameBools(seq.InSet, par.InSet) {
			t.Errorf("seed %d: InSet diverges", seed)
		}
		if seq.Sampled != par.Sampled || seq.Repaired != par.Repaired {
			t.Errorf("seed %d: counters diverge", seed)
		}
	}
}

func TestSolveWeightedParallelMatchesSequential(t *testing.T) {
	for name, g := range parallelTestGraphs(t, 300) {
		costs := make([]float64, g.NumNodes())
		for v := range costs {
			costs[v] = 1 + float64(v%7)
		}
		seq, err := SolveWeighted(g, WeightedOptions{K: 2, T: 3, Seed: 5, Costs: costs})
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		par, err := SolveWeighted(g, WeightedOptions{K: 2, T: 3, Seed: 5, Costs: costs, Workers: 4})
		if err != nil {
			t.Fatalf("%s: parallel: %v", name, err)
		}
		if !sameFloats(seq.X, par.X) {
			t.Errorf("%s: weighted X diverges", name)
		}
		if !sameBools(seq.InSet, par.InSet) {
			t.Errorf("%s: weighted InSet diverges", name)
		}
		if seq.Cost != par.Cost || seq.FractionalCost != par.FractionalCost {
			t.Errorf("%s: weighted costs diverge", name)
		}
		if seq.LoopRounds != 2*3*3 || par.LoopRounds != seq.LoopRounds {
			t.Errorf("%s: LoopRounds = %d/%d, want 18", name, seq.LoopRounds, par.LoopRounds)
		}
	}
}

func TestLayoutMatchesClosedNeighborhood(t *testing.T) {
	for name, g := range parallelTestGraphs(t, 120) {
		lay := newLayout(g)
		mir := lay.mirror()
		for v := 0; v < g.NumNodes(); v++ {
			want := ClosedNeighborhood(g, graph.NodeID(v))
			got := lay.closed(v)
			if len(got) != len(want) {
				t.Fatalf("%s node %d: size %d, want %d", name, v, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s node %d: closed[%d] = %d, want %d", name, v, i, got[i], want[i])
				}
			}
			for s := lay.off[v]; s < lay.off[v+1]; s++ {
				w := lay.adj[s]
				if back := lay.adj[mir[s]]; back != graph.NodeID(v) {
					t.Fatalf("%s: mirror of (%d,%d) points at %d", name, v, w, back)
				}
			}
		}
	}
}
