package core

import (
	"ftclust/internal/graph"
)

// layout is the flat CSR representation of all closed neighborhoods of a
// graph, shared by the fractional engine, the rounding engine and the
// weighted solver. closed(v) = adj[off[v]:off[v+1]] holds N_v = {v} ∪
// neighbors(v) in ascending ID order, built by merging v into the graph's
// already-sorted adjacency — no per-node allocation, no sort. It replaces
// the per-node ClosedNeighborhood slices (allocate + sort each) and the
// map[NodeID]int position indices of the original engine.
type layout struct {
	n   int
	off []int32
	adj []graph.NodeID
	cur []int32 // per-node cursors reused by mirrorInto
}

func newLayout(g *graph.Graph) *layout {
	l := &layout{}
	l.rebuild(g)
	return l
}

// rebuild refills the layout for g, reusing the off/adj capacity from a
// previous build (every slot is overwritten, so no clearing is needed).
// It is the scratch-reuse entry point; newLayout calls it on a fresh
// layout.
func (l *layout) rebuild(g *graph.Graph) {
	n := g.NumNodes()
	l.n = n
	l.off = growNoClear(l.off, n+1)
	off := l.off
	off[0] = 0
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(g.Degree(graph.NodeID(v))+1)
	}
	l.adj = growNoClear(l.adj, int(off[n]))
	adj := l.adj
	for v := 0; v < n; v++ {
		ns := g.Neighbors(graph.NodeID(v))
		s := off[v]
		self := graph.NodeID(v)
		placed := false
		for _, w := range ns {
			if !placed && self < w {
				adj[s] = self
				s++
				placed = true
			}
			adj[s] = w
			s++
		}
		if !placed {
			adj[s] = self
		}
	}
}

// closed returns N_v as a view into the shared backing array.
func (l *layout) closed(v int) []graph.NodeID {
	return l.adj[l.off[v]:l.off[v+1]]
}

// size returns |N_v|.
func (l *layout) size(v int) int {
	return int(l.off[v+1] - l.off[v])
}

// maxSize returns max_v |N_v| (0 for the empty graph); used to size
// per-worker scratch buffers.
func (l *layout) maxSize() int {
	m := 0
	for v := 0; v < l.n; v++ {
		if s := l.size(v); s > m {
			m = s
		}
	}
	return m
}

// mirror returns, for every slot s holding the pair (v, w) with
// w = adj[s] ∈ N_v, the slot index of the reverse pair (w, v) in N_w. The
// dual-finishing step needs α_{v,w}/β_{v,w} stored on the covered side w,
// and this index array replaces the per-node position maps.
func (l *layout) mirror() []int32 {
	return l.mirrorInto(nil)
}

// mirrorInto is mirror writing into a reusable buffer. O(m) by cursor
// advance: w ∈ N_v ⟺ v ∈ N_w, so scanning all slots in ascending-v order
// visits row w's entries in exactly their stored (ascending) order — the
// reverse slot is always row w's next unconsumed position. This replaces
// the per-slot binary search of the original build.
func (l *layout) mirrorInto(buf []int32) []int32 {
	m := growNoClear(buf, len(l.adj))
	l.cur = growNoClear(l.cur, l.n)
	cur := l.cur
	copy(cur, l.off[:l.n])
	for v := 0; v < l.n; v++ {
		for s := l.off[v]; s < l.off[v+1]; s++ {
			w := l.adj[s]
			m[s] = cur[w]
			cur[w]++
		}
	}
	return m
}
