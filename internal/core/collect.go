package core

import "ftclust/internal/sim"

// ProgramOutputs gathers the per-node results of a finished distributed
// execution into the same vectors the in-memory engine produces.
type ProgramOutputs struct {
	X, Y, Z []float64
	InSet   []bool
}

// Collect extracts outputs from the programs of a sim.Result. It panics if
// the programs are not *Program (programmer error).
func Collect(progs []sim.Program) ProgramOutputs {
	out := ProgramOutputs{
		X:     make([]float64, len(progs)),
		Y:     make([]float64, len(progs)),
		Z:     make([]float64, len(progs)),
		InSet: make([]bool, len(progs)),
	}
	for v, sp := range progs {
		p := sp.(*Program)
		out.X[v] = p.X()
		out.Y[v] = p.Y()
		out.Z[v] = p.Z()
		out.InSet[v] = p.InSet()
	}
	return out
}
