package core

import (
	"context"
	"fmt"

	"ftclust/internal/graph"
	"ftclust/internal/obs"
	"ftclust/internal/par"
	"ftclust/internal/verify"
)

// Options configure the end-to-end k-MDS solver (Algorithm 1 followed by
// Algorithm 2).
type Options struct {
	// K is the fault-tolerance parameter k ≥ 1 (per-node demands are
	// capped at closed-neighborhood sizes).
	K float64
	// T is Algorithm 1's trade-off parameter; values around log₂ Δ give
	// the paper's O(log Δ)-approximation remark.
	T int
	// Seed drives Algorithm 2's randomness.
	Seed int64
	// LocalDelta switches Algorithm 1 to 2-hop-local maximum degrees.
	LocalDelta bool
	// SkipRepair disables Algorithm 2's REQ step (ablation only; the
	// result may then be infeasible and Solve will report it).
	SkipRepair bool
	// Workers distributes both phases' per-round sweeps over this many
	// goroutines (≤ 1 = sequential). One work-claiming pool spans both
	// phases. Results are bit-identical to the sequential execution for
	// equal seeds, whatever the worker count or chunk interleaving.
	Workers int
	// Float32 switches Algorithm 1's numeric state to float32; see
	// FractionalOptions.Float32 for the precision contract. Rounding
	// consumes the widened float64 x-vector, so the integral solution is
	// still exact k-fold feasible — only the fractional values and the
	// dual certificate carry the float32 tolerance.
	Float32 bool
	// Bitset selects packed []uint64 closed-neighborhood rows for the
	// dense rounding sweeps; see BitsetMode. Results are identical in
	// every mode.
	Bitset BitsetMode
	// Ctx, when non-nil, is checked between communication rounds of both
	// phases; a done context aborts the solve with a wrapped ErrCanceled.
	// Cancellation never yields a partial Result.
	Ctx context.Context
	// Scratch, when non-nil, supplies every working array of both phases
	// from a reusable arena: repeated solves on same-shape graphs run with
	// zero steady-state allocations. The returned Result then ALIASES the
	// arena (InSet, K, Fractional.X/Y/Z) and is overwritten by the next
	// solve using the same Scratch; copy what you keep. Not safe for
	// concurrent use — one Scratch per worker.
	Scratch *Scratch
	// Observer, when non-nil, receives a callback at each phase boundary
	// (fractional, rounding, verify: wall time, communication rounds,
	// approximate allocations) and a final summary carrying the paper's
	// per-solve figures (LP rounds, κ, certified lower bound, dual gap).
	// A nil observer costs one branch per phase — no clocks are read and
	// nothing is allocated, preserving the scratch path's zero
	// steady-state allocations. Callbacks run on the solving goroutine.
	Observer *obs.SolveObserver
}

// Result is the full outcome of the combined solver.
type Result struct {
	// InSet is the integral k-fold dominating set (PP convention).
	InSet []bool
	// Fractional carries Algorithm 1's solution and dual certificate.
	Fractional FractionalResult
	// Rounding carries Algorithm 2's statistics.
	Rounding RoundingResult
	// K echoes the effective per-node demands.
	K []float64
	// Feasible reports whether InSet satisfies the (PP) convention
	// (always true when the repair step is enabled).
	Feasible bool
}

// Size returns |S|.
func (r Result) Size() int { return verify.SetSize(r.InSet) }

// FractionalObjective returns Σ x_i.
func (r Result) FractionalObjective() float64 { return r.Fractional.Objective() }

// Solve runs the paper's general-graph pipeline on g: Algorithm 1 computes
// a fractional solution in 2t² rounds, Algorithm 2 rounds it in O(1)
// rounds. The combined approximation guarantee against the fractional
// optimum is t((Δ+1)^{2/t}+(Δ+1)^{1/t})·(ln(Δ+1)+O(1)) in expectation
// (Theorems 4.5 and 4.6).
func Solve(g *graph.Graph, opts Options) (Result, error) {
	if opts.K < 1 {
		return Result{}, fmt.Errorf("core: k must be ≥ 1, got %v", opts.K)
	}
	if opts.T < 1 {
		return Result{}, fmt.Errorf("core: t must be ≥ 1, got %d", opts.T)
	}
	var k []float64
	if opts.Scratch != nil {
		opts.Scratch.kEff = effectiveDemandsInto(opts.Scratch.kEff, g, opts.K)
		k = opts.Scratch.kEff
	} else {
		k = EffectiveDemands(g, opts.K)
	}
	// Phase instrumentation: clocks and the runtime alloc counter are read
	// only when an observer is installed, so the nil-observer path stays
	// branch-only (the scratch steady state depends on it).
	var ph *obs.PhaseClock
	if opts.Observer != nil {
		ph = obs.NewPhaseClock(opts.Observer)
	}

	// One closed-neighborhood layout and one worker pool shared by both
	// phases (spawning goroutines once per solve, not once per phase).
	lay := layoutFor(g, opts.Scratch)
	var pool *par.Pool
	if opts.Workers > 1 {
		pool = poolFor(opts.Scratch)
		pool.Start(opts.Workers)
		defer pool.Stop()
	}
	ph.Start()
	frac, err := solveFractionalWithLayout(g, lay, k, FractionalOptions{
		T:          opts.T,
		LocalDelta: opts.LocalDelta,
		Workers:    opts.Workers,
		Float32:    opts.Float32,
		Ctx:        opts.Ctx,
		Scratch:    opts.Scratch,
		pool:       pool,
	})
	if err != nil {
		return Result{}, err
	}
	ph.End("fractional", frac.LoopRounds)
	rounded, err := roundWithLayout(lay, k, frac.X, frac.Delta, RoundingOptions{
		Seed:       opts.Seed,
		SkipRepair: opts.SkipRepair,
		Workers:    opts.Workers,
		Bitset:     opts.Bitset,
		Ctx:        opts.Ctx,
		Scratch:    opts.Scratch,
		pool:       pool,
	})
	if err != nil {
		return Result{}, err
	}
	// The +4 of the pipeline's round accounting (guarantee sweep +
	// rounding) belongs to this phase.
	ph.End("rounding", 4)
	res := Result{
		InSet:      rounded.InSet,
		Fractional: frac,
		Rounding:   rounded,
		K:          k,
	}
	res.Feasible = verify.CheckKFoldVector(g, rounded.InSet, k, verify.ClosedPP) == nil
	ph.End("verify", 0)
	if o := opts.Observer; o != nil && o.OnDone != nil {
		passes := 1
		if !opts.SkipRepair {
			passes = 2
		}
		objective := frac.Objective()
		lower := frac.DualObjective(k) / frac.Kappa
		o.OnDone(obs.SolveStats{
			LPRounds:            frac.LoopRounds,
			RoundingPasses:      passes,
			Sampled:             rounded.Sampled,
			Repaired:            rounded.Repaired,
			SetSize:             res.Size(),
			FractionalObjective: objective,
			Kappa:               frac.Kappa,
			DualLowerBound:      lower,
			DualGap:             objective - lower,
			Feasible:            res.Feasible,
		})
	}
	if !opts.SkipRepair && !res.Feasible {
		// The repair step guarantees feasibility; reaching this line
		// would be an implementation bug, not bad luck.
		return res, fmt.Errorf("core: internal error: repaired solution infeasible")
	}
	return res, nil
}
