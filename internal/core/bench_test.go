package core

import (
	"fmt"
	"runtime"
	"testing"

	"ftclust/internal/graph"
)

// Performance benchmarks for the three in-memory engines across graph
// families and sizes, each in sequential and worker-pool form. Run with
//
//	go test ./internal/core -bench 'Solve|Round' -benchmem
//
// cmd/ftbench -bench-json produces the machine-readable BENCH_core.json
// (ns/op, allocs/op, parallel speedup) from the same configurations.

func benchGraph(b *testing.B, family string, n int) *graph.Graph {
	b.Helper()
	switch family {
	case "gnp":
		return graph.GnpAvgDegree(n, 12, 3)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Grid(side, side)
	case "powerlaw":
		return graph.PreferentialAttachment(n, 4, 5)
	default:
		b.Fatalf("unknown family %q", family)
		return nil
	}
}

func benchWorkerCounts() []int {
	w := runtime.GOMAXPROCS(0)
	if w <= 1 {
		return []int{1}
	}
	return []int{1, w}
}

func BenchmarkSolveFractional(b *testing.B) {
	for _, family := range []string{"gnp", "grid", "powerlaw"} {
		for _, n := range []int{1000, 5000} {
			g := benchGraph(b, family, n)
			k := EffectiveDemands(g, 2)
			for _, workers := range benchWorkerCounts() {
				name := fmt.Sprintf("%s/n=%d/workers=%d", family, n, workers)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := SolveFractional(g, k, FractionalOptions{T: 3, Workers: workers}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func BenchmarkRoundSolution(b *testing.B) {
	for _, family := range []string{"gnp", "powerlaw"} {
		for _, n := range []int{1000, 5000} {
			g := benchGraph(b, family, n)
			k := EffectiveDemands(g, 2)
			frac, err := SolveFractional(g, k, FractionalOptions{T: 3})
			if err != nil {
				b.Fatal(err)
			}
			for _, workers := range benchWorkerCounts() {
				name := fmt.Sprintf("%s/n=%d/workers=%d", family, n, workers)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := RoundSolution(g, k, frac.X, frac.Delta,
							RoundingOptions{Seed: int64(i), Workers: workers}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func BenchmarkSolveWeighted(b *testing.B) {
	for _, family := range []string{"gnp", "powerlaw"} {
		for _, n := range []int{1000, 5000} {
			g := benchGraph(b, family, n)
			costs := make([]float64, g.NumNodes())
			for v := range costs {
				costs[v] = 1 + float64(v%9)
			}
			for _, workers := range benchWorkerCounts() {
				name := fmt.Sprintf("%s/n=%d/workers=%d", family, n, workers)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := SolveWeighted(g, WeightedOptions{
							K: 2, T: 3, Seed: int64(i), Costs: costs, Workers: workers,
						}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func BenchmarkSolveEndToEnd(b *testing.B) {
	g := benchGraph(b, "gnp", 5000)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(g, Options{K: 3, T: 3, Seed: int64(i), Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveFractionalLarge is the hotspot-profiling configuration:
// one large sparse instance, scratch-backed so profiles show compute,
// not first-touch allocation. Profile with
//
//	go test ./internal/core -run '^$' -bench SolveFractionalLarge \
//	    -benchtime 3x -cpuprofile cpu.out
func BenchmarkSolveFractionalLarge(b *testing.B) {
	if testing.Short() {
		b.Skip("large instance (n=100000)")
	}
	g := benchGraph(b, "gnp", 100000)
	k := EffectiveDemands(g, 2)
	sc := NewScratch()
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SolveFractional(g, k, FractionalOptions{T: 3, Workers: workers, Scratch: sc}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNewLayout(b *testing.B) {
	g := benchGraph(b, "gnp", 5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lay := newLayout(g)
		if lay.n != 5000 {
			b.Fatal("bad layout")
		}
	}
}
