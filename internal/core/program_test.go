package core

import (
	"math"
	"testing"

	"ftclust/internal/graph"
	"ftclust/internal/sim"
	"ftclust/internal/verify"
)

func runProgram(t *testing.T, g *graph.Graph, cfg ProgramConfig, seed int64) (ProgramOutputs, sim.Metrics) {
	t.Helper()
	nw := sim.New(g, sim.WithSeed(seed))
	res, err := nw.Run(func(v graph.NodeID) sim.Program {
		return NewProgram(v, cfg)
	}, 10*cfg.T*cfg.T+50)
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	return Collect(res.Programs), res.Metrics
}

func TestProgramMatchesEngineFractional(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp":   graph.Gnp(50, 0.15, 2),
		"grid":  graph.Grid(6, 6),
		"star":  graph.Star(12),
		"ring":  graph.Ring(15),
		"tree":  graph.RandomTree(30, 3),
		"empty": graph.NewBuilder(4).Build(),
	}
	for name, g := range graphs {
		for _, tt := range []int{1, 2, 3} {
			k := EffectiveDemands(g, 2)
			eng, err := SolveFractional(g, k, FractionalOptions{T: tt})
			if err != nil {
				t.Fatalf("%s t=%d: engine: %v", name, tt, err)
			}
			out, _ := runProgram(t, g, ProgramConfig{K: 2, T: tt, Delta: g.MaxDegree()}, 1)
			for v := range eng.X {
				if eng.X[v] != out.X[v] {
					t.Errorf("%s t=%d node %d: engine x=%v program x=%v", name, tt, v, eng.X[v], out.X[v])
				}
				if eng.Y[v] != out.Y[v] {
					t.Errorf("%s t=%d node %d: engine y=%v program y=%v", name, tt, v, eng.Y[v], out.Y[v])
				}
				if math.Abs(eng.Z[v]-out.Z[v]) > 1e-12 {
					t.Errorf("%s t=%d node %d: engine z=%v program z=%v", name, tt, v, eng.Z[v], out.Z[v])
				}
			}
		}
	}
}

func TestProgramMatchesEngineRounding(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := graph.Gnp(45, 0.2, seed)
		k := EffectiveDemands(g, 2)
		eng, err := Solve(g, Options{K: 2, T: 2, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out, _ := runProgram(t, g, ProgramConfig{K: 2, T: 2, Delta: g.MaxDegree(), Round: true}, seed)
		if err := verify.CheckKFoldVector(g, out.InSet, k, verify.ClosedPP); err != nil {
			t.Errorf("seed %d: program solution infeasible: %v", seed, err)
		}
		for v := range eng.InSet {
			if eng.InSet[v] != out.InSet[v] {
				t.Errorf("seed %d node %d: engine in=%v program in=%v",
					seed, v, eng.InSet[v], out.InSet[v])
			}
		}
	}
}

func TestProgramRoundCount(t *testing.T) {
	// The distributed pipeline costs 2t² loop rounds plus four
	// bookkeeping rounds (dual send, dual recv + sample, REQ send,
	// REQ recv).
	g := graph.Gnp(30, 0.2, 1)
	for _, tt := range []int{1, 2, 3} {
		_, met := runProgram(t, g, ProgramConfig{K: 2, T: tt, Delta: g.MaxDegree(), Round: true}, 1)
		want := 2*tt*tt + 4
		if met.Rounds != want {
			t.Errorf("t=%d: rounds = %d, want %d", tt, met.Rounds, want)
		}
	}
	// Fractional-only variant stops right after the dual exchange.
	_, met := runProgram(t, g, ProgramConfig{K: 2, T: 2, Delta: g.MaxDegree()}, 1)
	if want := 2*2*2 + 2; met.Rounds != want {
		t.Errorf("fractional-only rounds = %d, want %d", met.Rounds, want)
	}
}

func TestProgramMessageSizesLogarithmic(t *testing.T) {
	// The largest message is the xMsg: two fixed-point reals plus a count,
	// i.e. 3·⌈log₂ n⌉ + 32 bits. Assert the exact affine bound and that
	// the per-log-n constant shrinks toward 3 as n grows.
	prev := math.Inf(1)
	for _, n := range []int{32, 128, 512} {
		g := graph.Gnp(n, 16.0/float64(n-1), 3)
		_, met := runProgram(t, g, ProgramConfig{K: 2, T: 2, Delta: g.MaxDegree(), Round: true}, 1)
		if limit := 2*sim.FixedPointBits(n) + sim.BitsForCount(n); met.MaxMessageBits > limit {
			t.Errorf("n=%d: max message bits %d exceed %d", n, met.MaxMessageBits, limit)
		}
		c := met.MaxBitsPerLogN(n)
		if c >= prev {
			t.Errorf("n=%d: bits/log n constant %.2f did not shrink (prev %.2f)", n, c, prev)
		}
		prev = c
	}
}

func TestProgramLocalDelta(t *testing.T) {
	g := graph.PreferentialAttachment(60, 2, 9)
	out, met := runProgram(t, g, ProgramConfig{K: 2, T: 2, LocalDelta: true, Round: true}, 4)
	k := EffectiveDemands(g, 2)
	if err := verify.CheckKFoldVector(g, out.InSet, k, verify.ClosedPP); err != nil {
		t.Errorf("LocalDelta program infeasible: %v", err)
	}
	// Two prelude rounds are added.
	if want := 2*2*2 + 4 + 2; met.Rounds != want {
		t.Errorf("rounds = %d, want %d", met.Rounds, want)
	}

	// Engine equivalence holds for the LocalDelta variant too.
	eng, err := SolveFractional(g, k, FractionalOptions{T: 2, LocalDelta: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range eng.X {
		if eng.X[v] != out.X[v] {
			t.Errorf("node %d: engine x=%v program x=%v", v, eng.X[v], out.X[v])
		}
	}
}

func TestProgramAsyncExecution(t *testing.T) {
	// The α-synchronizer run must agree with the synchronous one.
	g := graph.Gnp(30, 0.2, 8)
	cfg := ProgramConfig{K: 2, T: 2, Delta: g.MaxDegree(), Round: true}
	mk := func(v graph.NodeID) sim.Program { return NewProgram(v, cfg) }
	syn, err := sim.New(g, sim.WithSeed(7)).Run(mk, 200)
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	asy, err := sim.New(g, sim.WithSeed(7)).RunAsync(mk, 200)
	if err != nil {
		t.Fatalf("async: %v", err)
	}
	so, ao := Collect(syn.Programs), Collect(asy.Programs)
	for v := range so.X {
		if so.X[v] != ao.X[v] || so.InSet[v] != ao.InSet[v] {
			t.Errorf("node %d: sync (%v,%v) async (%v,%v)",
				v, so.X[v], so.InSet[v], ao.X[v], ao.InSet[v])
		}
	}
}

func TestProgramParallelExecution(t *testing.T) {
	g := graph.Gnp(80, 0.1, 10)
	cfg := ProgramConfig{K: 3, T: 3, Delta: g.MaxDegree(), Round: true}
	mk := func(v graph.NodeID) sim.Program { return NewProgram(v, cfg) }
	seq, err := sim.New(g, sim.WithSeed(2)).Run(mk, 500)
	if err != nil {
		t.Fatalf("seq: %v", err)
	}
	par, err := sim.New(g, sim.WithSeed(2)).RunParallel(mk, 500)
	if err != nil {
		t.Fatalf("par: %v", err)
	}
	so, po := Collect(seq.Programs), Collect(par.Programs)
	for v := range so.X {
		if so.X[v] != po.X[v] || so.InSet[v] != po.InSet[v] {
			t.Errorf("node %d mismatch", v)
		}
	}
}
