package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"ftclust/internal/graph"
	"ftclust/internal/par"
	"ftclust/internal/rng"
	"ftclust/internal/verify"
)

// Weighted k-MDS. The paper notes (Section 4.1) that Algorithm 1 "can be
// adapted … to also solve the weighted version of the k-MDS problem". This
// file implements that extension:
//
//   - the fractional phase replaces the dynamic-degree threshold
//     δ̃_i ≥ (Δ+1)^{p/t} by a cost-effectiveness threshold
//     δ̃_i/c_i ≥ S_p, where S_p sweeps the possible effectiveness range
//     [1/c_max, (Δ+1)/c_min] geometrically in t steps — the distributed
//     analogue of the weighted greedy's pick-max-gain-per-cost rule [21];
//     the last step degenerates to δ̃_i ≥ c_i/c_max ≤ 1, so feasibility is
//     unconditional, exactly as in the unit-cost algorithm;
//   - the rounding phase keeps the inclusion probability
//     min{1, x_i·ln(Δ+1)} and repairs deficits by recruiting the CHEAPEST
//     available neighbors instead of random ones.
//
// No approximation factor is claimed for the weighted variant (the paper
// only sketches it), and it builds no dual certificate — callers get the
// fractional cost as a reference point, not a certified lower bound.
// Experiment E12 measures its cost against the weighted LP optimum and the
// weighted greedy.
//
// Like the unit-cost engine, the hot sweeps run over the shared flat
// closed-neighborhood layout, maintain dynamic degrees incrementally, and
// optionally fan out over a worker pool with bit-identical results.

// WeightedOptions configure SolveWeighted.
type WeightedOptions struct {
	// K is the fault-tolerance parameter.
	K float64
	// T is the trade-off parameter of the fractional phase.
	T int
	// Seed drives the rounding randomness.
	Seed int64
	// Costs[v] > 0 is node v's cost (e.g. inverse battery level).
	Costs []float64
	// Workers distributes the per-round sweeps over this many goroutines
	// (≤ 1 = sequential); results are bit-identical for equal seeds.
	Workers int
	// Bitset selects packed []uint64 closed-neighborhood rows for the
	// repair sweep's coverage and candidate scans; see BitsetMode.
	// Results are identical in every mode.
	Bitset BitsetMode
	// Ctx, when non-nil, is checked between communication rounds of both
	// phases; a done context aborts with a wrapped ErrCanceled.
	Ctx context.Context
}

// WeightedResult is the outcome of the weighted solver.
type WeightedResult struct {
	// InSet marks the selected dominators.
	InSet []bool
	// X is the weighted fractional solution.
	X []float64
	// FractionalCost is Σ c_i·x_i.
	FractionalCost float64
	// Cost is the total cost of InSet.
	Cost float64
	// K echoes the effective demands.
	K []float64
	// LoopRounds is the communication-round count of the fractional
	// phase's double loop, exactly 2t² — the weighted analogue of
	// FractionalResult.LoopRounds, reported by the engine so callers do
	// not re-derive it from t.
	LoopRounds int
}

// SolveWeighted runs the weighted pipeline on g.
func SolveWeighted(g *graph.Graph, opts WeightedOptions) (WeightedResult, error) {
	n := g.NumNodes()
	if opts.K < 1 {
		return WeightedResult{}, fmt.Errorf("core: k must be ≥ 1, got %v", opts.K)
	}
	if opts.T < 1 {
		return WeightedResult{}, fmt.Errorf("core: t must be ≥ 1, got %d", opts.T)
	}
	if len(opts.Costs) != n {
		return WeightedResult{}, fmt.Errorf("core: %d costs for %d nodes", len(opts.Costs), n)
	}
	cMin, cMax := math.Inf(1), 0.0
	for v, c := range opts.Costs {
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return WeightedResult{}, fmt.Errorf("core: invalid cost %v at node %d", c, v)
		}
		cMin = math.Min(cMin, c)
		cMax = math.Max(cMax, c)
	}
	if n == 0 {
		return WeightedResult{K: []float64{}, LoopRounds: 2 * opts.T * opts.T}, nil
	}

	k := EffectiveDemands(g, opts.K)
	delta := g.MaxDegree()
	lay := newLayout(g)
	var pool *par.Pool
	if opts.Workers > 1 {
		pool = &par.Pool{}
		pool.Start(opts.Workers)
		defer pool.Stop()
	}
	x, loopRounds, err := weightedFractional(lay, k, opts.Costs, opts.T, delta, cMin, cMax, pool, opts.Ctx)
	if err != nil {
		return WeightedResult{}, err
	}
	inSet, err := weightedRound(lay, k, x, opts.Costs, delta, opts.Seed, opts.Bitset, pool, opts.Ctx)
	if err != nil {
		return WeightedResult{}, err
	}

	res := WeightedResult{InSet: inSet, X: x, K: k, LoopRounds: loopRounds}
	for v := 0; v < n; v++ {
		res.FractionalCost += opts.Costs[v] * x[v]
		if inSet[v] {
			res.Cost += opts.Costs[v]
		}
	}
	if err := verify.CheckKFoldVector(g, inSet, k, verify.ClosedPP); err != nil {
		return res, fmt.Errorf("core: internal error: weighted solution infeasible: %w", err)
	}
	return res, nil
}

// weightedFractional is Algorithm 1 with the cost-effectiveness threshold.
// It returns the fractional solution and the double loop's round count.
func weightedFractional(lay *layout, k, costs []float64, t, delta int, cMin, cMax float64, pool *par.Pool, ctx context.Context) ([]float64, int, error) {
	n := lay.n
	x := make([]float64, n)
	xPlus := make([]float64, n)
	white := make([]bool, n)
	turned := make([]bool, n)
	dyn := make([]int32, n)
	cov := make([]float64, n)
	for v := 0; v < n; v++ {
		white[v] = true
		dyn[v] = int32(lay.size(v))
	}
	d1 := float64(delta + 1)
	// Effectiveness sweep S_p = (1/cMax)·R^{p/t}, R = (Δ+1)·cMax/cMin.
	bigR := d1 * cMax / cMin
	sP := func(p int) float64 {
		return math.Pow(bigR, float64(p)/float64(t)) / cMax
	}
	inc := func(q int) float64 {
		return 1 / math.Pow(d1, float64(q)/float64(t))
	}

	// The sweep bodies are bound once, outside the double loop, and read
	// the per-iteration threshold through captured variables (the pool's
	// signal send orders the writes) — no per-iteration closures.
	var thresholdS, incQ float64
	var raiseFn, coverFn func(worker, lo, hi int)
	if pool != nil {
		raiseFn = func(_, lo, hi int) {
			weightedRaiseSweep(lo, hi, x, xPlus, costs, dyn, thresholdS, incQ)
		}
		coverFn = func(_, lo, hi int) {
			weightedCoverSweep(lo, hi, lay, k, xPlus, cov, white, turned)
		}
	}
	for p := t - 1; p >= 0; p-- {
		for q := t - 1; q >= 0; q-- {
			if err := checkCtx(ctx); err != nil {
				return nil, 0, err
			}
			thresholdS = sP(p)
			incQ = inc(q)
			if pool != nil {
				pool.Run(n, raiseFn)
				pool.Run(n, coverFn)
			} else {
				weightedRaiseSweep(0, n, x, xPlus, costs, dyn, thresholdS, incQ)
				weightedCoverSweep(0, n, lay, k, xPlus, cov, white, turned)
			}
			// Incremental dynamic-degree maintenance, amortized O(Δ) per
			// color flip over the whole run (replaces the per-iteration
			// O(n·Δ) rescan).
			for v := 0; v < n; v++ {
				if !turned[v] {
					continue
				}
				turned[v] = false
				for _, w := range lay.closed(v) {
					dyn[w]--
				}
			}
		}
	}
	// Final guarantee sweep: anyone still white after the loop is covered
	// by its closed neighborhood raising x to 1, mirroring the unit-cost
	// algorithm's p=q=0 behaviour for nodes whose cost kept them below
	// every threshold. Sequential: several nodes may write the same slot.
	for v := 0; v < n; v++ {
		if !white[v] {
			continue
		}
		for _, w := range lay.closed(v) {
			x[w] = 1
		}
	}
	return x, 2 * t * t, nil
}

// weightedRaiseSweep applies the effectiveness-threshold test to nodes
// [lo, hi): an unsaturated node whose cost-normalized dynamic degree
// clears thresholdS raises its own x by incQ (clamped at 1). Each node
// writes only its own slots, so chunks are independent.
func weightedRaiseSweep(lo, hi int, x, xPlus, costs []float64, dyn []int32, thresholdS, incQ float64) {
	for v := lo; v < hi; v++ {
		xPlus[v] = 0
		if x[v] < 1 && float64(dyn[v])/costs[v] >= thresholdS {
			xp := math.Min(incQ, 1-x[v])
			xPlus[v] = xp
			x[v] += xp
		}
	}
}

// weightedCoverSweep accumulates this iteration's raises into each white
// node's coverage for nodes [lo, hi) and turns nodes whose demand is met.
// Reads xPlus (frozen by the preceding raise sweep), writes only v's own
// cov/white/turned slots.
func weightedCoverSweep(lo, hi int, lay *layout, k, xPlus, cov []float64, white, turned []bool) {
	for v := lo; v < hi; v++ {
		if !white[v] {
			continue
		}
		for _, w := range lay.closed(v) {
			cov[v] += xPlus[w]
		}
		if cov[v] >= k[v] {
			white[v] = false
			turned[v] = true
		}
	}
}

// weightedSampleSweep runs Algorithm 2's independent coin flips for nodes
// [lo, hi). Each node owns a counter-based RNG stream keyed by its ID, so
// the draw is identical regardless of chunking.
func weightedSampleSweep(lo, hi int, x []float64, inSet []bool, lnD float64, seed int64) {
	for v := lo; v < hi; v++ {
		p := math.Min(1, x[v]*lnD)
		if rng.NewStream(seed, uint64(v)+1).Float64() < p {
			inSet[v] = true
		}
	}
}

// weightedRepairSweep recruits the cheapest non-member candidates for
// every deficient node in [lo, hi), using the caller-supplied candidate
// buffer (one per worker lane — with guided chunking a lane runs many
// chunks, so a per-chunk buffer would allocate per claim). inSet is
// frozen and recruit slots only ever receive 1 (atomically), so the
// sweep is order-independent. With non-nil bits the coverage count and
// candidate collection run on the packed rows — identical results, the
// candidate sort re-orders by cost either way.
func weightedRepairSweep(lo, hi int, lay *layout, bits *bitRows, inBits []uint64, k, costs []float64, inSet []bool, recruit []uint32, candidates []graph.NodeID) {
	for v := lo; v < hi; v++ {
		var cov int
		if bits != nil {
			cov = countAnd(bits.row(v), inBits)
		} else {
			for _, w := range lay.closed(v) {
				if inSet[w] {
					cov++
				}
			}
		}
		deficit := int(math.Ceil(k[v] - float64(cov) - 1e-12))
		if deficit <= 0 {
			continue
		}
		if bits != nil {
			candidates = appendAndNot(candidates[:0], bits.row(v), inBits)
		} else {
			candidates = candidates[:0]
			for _, w := range lay.closed(v) {
				if !inSet[w] {
					candidates = append(candidates, w)
				}
			}
		}
		sort.Slice(candidates, func(i, j int) bool {
			ci, cj := costs[candidates[i]], costs[candidates[j]]
			if ci != cj {
				return ci < cj
			}
			return candidates[i] < candidates[j]
		})
		for i := 0; i < deficit && i < len(candidates); i++ {
			atomic.StoreUint32(&recruit[candidates[i]], 1)
		}
	}
}

// weightedRound samples like Algorithm 2 and repairs deficits with the
// cheapest candidates.
func weightedRound(lay *layout, k, x, costs []float64, delta int, seed int64, mode BitsetMode, pool *par.Pool, ctx context.Context) ([]bool, error) {
	n := lay.n
	lnD := math.Log(float64(delta + 1))
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	inSet := make([]bool, n)
	if pool != nil {
		pool.Run(n, func(_, lo, hi int) {
			weightedSampleSweep(lo, hi, x, inSet, lnD, seed)
		})
	} else {
		weightedSampleSweep(0, n, x, inSet, lnD, seed)
	}
	// Cheapest-candidate repair: inSet is frozen, recruit slots only ever
	// receive 1, so the sweep is order-independent (see roundWithLayout).
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	recruit := make([]uint32, n)
	var bits *bitRows
	var inBits []uint64
	if useBitset(mode, lay) {
		bits = &bitRows{}
		bits.rebuild(lay)
		inBits = packInto(nil, inSet)
	}
	maxClosed := lay.maxSize()
	if pool != nil {
		lanes := make([][]graph.NodeID, pool.Workers())
		for i := range lanes {
			lanes[i] = make([]graph.NodeID, 0, maxClosed)
		}
		pool.Run(n, func(worker, lo, hi int) {
			weightedRepairSweep(lo, hi, lay, bits, inBits, k, costs, inSet, recruit, lanes[worker])
		})
	} else {
		weightedRepairSweep(0, n, lay, bits, inBits, k, costs, inSet, recruit, make([]graph.NodeID, 0, maxClosed))
	}
	for v := 0; v < n; v++ {
		if recruit[v] == 1 {
			inSet[v] = true
		}
	}
	return inSet, nil
}
