package core

import (
	"math"
	"reflect"
	"testing"

	"ftclust/internal/graph"
	"ftclust/internal/obs"
)

// The observer hooks must fire once per phase in order, report the
// paper's round accounting (2t² LP rounds, +4 fixed), and deliver a
// summary consistent with the returned Result — without changing the
// result itself.
func TestSolveObserverCallbacks(t *testing.T) {
	g := graph.GnpAvgDegree(300, 8, 3)
	opts := Options{K: 2, T: 3, Seed: 7}
	plain, err := Solve(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	var phases []obs.PhaseInfo
	var stats []obs.SolveStats
	opts.Observer = &obs.SolveObserver{
		OnPhase: func(p obs.PhaseInfo) { phases = append(phases, p) },
		OnDone:  func(s obs.SolveStats) { stats = append(stats, s) },
	}
	observed, err := Solve(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.InSet, observed.InSet) ||
		!reflect.DeepEqual(plain.Fractional.X, observed.Fractional.X) {
		t.Fatal("observer changed the solve result")
	}

	if len(phases) != 3 {
		t.Fatalf("got %d phase callbacks, want 3 (%+v)", len(phases), phases)
	}
	wantNames := []string{"fractional", "rounding", "verify"}
	rounds := 0
	for i, p := range phases {
		if p.Name != wantNames[i] {
			t.Errorf("phase %d = %q, want %q", i, p.Name, wantNames[i])
		}
		if p.Duration < 0 {
			t.Errorf("phase %s: negative duration %v", p.Name, p.Duration)
		}
		rounds += p.Rounds
	}
	if rounds != 2*3*3+4 {
		t.Errorf("phase rounds sum = %d, want %d", rounds, 2*3*3+4)
	}

	if len(stats) != 1 {
		t.Fatalf("got %d OnDone callbacks, want 1", len(stats))
	}
	s := stats[0]
	if s.LPRounds != 2*3*3 || s.RoundingPasses != 2 {
		t.Errorf("LPRounds=%d RoundingPasses=%d, want 18 and 2", s.LPRounds, s.RoundingPasses)
	}
	if s.SetSize != observed.Size() || s.Sampled != observed.Rounding.Sampled ||
		s.Repaired != observed.Rounding.Repaired {
		t.Errorf("summary counts disagree with Result: %+v", s)
	}
	if s.Kappa != observed.Fractional.Kappa || s.Kappa <= 0 {
		t.Errorf("kappa = %v, want %v", s.Kappa, observed.Fractional.Kappa)
	}
	wantLower := observed.Fractional.DualObjective(observed.K) / observed.Fractional.Kappa
	if s.DualLowerBound != wantLower {
		t.Errorf("lower bound = %v, want %v", s.DualLowerBound, wantLower)
	}
	if math.Abs(s.DualGap-(s.FractionalObjective-s.DualLowerBound)) > 1e-12 {
		t.Errorf("dual gap inconsistent: %+v", s)
	}
	if s.DualGap < -1e-9 {
		t.Errorf("dual gap negative: %v (weak duality violated)", s.DualGap)
	}
	if !s.Feasible {
		t.Error("summary reports infeasible for a repaired solve")
	}
}

// SkipRepair ablation: one rounding pass, and the summary mirrors it.
func TestSolveObserverSkipRepairPasses(t *testing.T) {
	g := graph.GnpAvgDegree(200, 6, 1)
	var s obs.SolveStats
	_, err := Solve(g, Options{K: 2, T: 2, Seed: 3, SkipRepair: true,
		Observer: &obs.SolveObserver{OnDone: func(got obs.SolveStats) { s = got }}})
	if err != nil {
		t.Fatal(err)
	}
	if s.RoundingPasses != 1 || s.Repaired != 0 {
		t.Errorf("skip-repair summary: %+v", s)
	}
}

// An observer with only one callback set must not panic on the other.
func TestSolveObserverPartialHooks(t *testing.T) {
	g := graph.Star(20)
	n := 0
	if _, err := Solve(g, Options{K: 1, T: 2, Seed: 1,
		Observer: &obs.SolveObserver{OnPhase: func(obs.PhaseInfo) { n++ }}}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("phase callbacks = %d, want 3", n)
	}
	if _, err := Solve(g, Options{K: 1, T: 2, Seed: 1,
		Observer: &obs.SolveObserver{OnDone: func(obs.SolveStats) {}}}); err != nil {
		t.Fatal(err)
	}
}
