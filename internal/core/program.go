package core

import (
	"math"
	"sort"

	"ftclust/internal/graph"
	"ftclust/internal/sim"
)

// This file contains the honest distributed implementation of Algorithms 1
// and 2 as a sim.Program: per-node state only, all coordination via
// messages, O(log n)-bit messages throughout. For a fixed seed its results
// are bit-identical to the in-memory engine (tested), which is what makes
// the large-scale experiments trustworthy.

// ProgramConfig configures NewProgram.
type ProgramConfig struct {
	// K is the fault-tolerance parameter.
	K float64
	// T is Algorithm 1's trade-off parameter.
	T int
	// Delta is the globally known maximum degree (ignored with LocalDelta).
	Delta int
	// LocalDelta derives a 2-hop-local Δ in two prelude rounds instead of
	// assuming global knowledge (the paper's final remark).
	LocalDelta bool
	// Round enables Algorithm 2 after Algorithm 1 finishes.
	Round bool
	// SkipRepair disables Algorithm 2's REQ step (ablation).
	SkipRepair bool
}

// Program is the per-node state machine; construct with NewProgram.
type Program struct {
	cfg ProgramConfig
	id  graph.NodeID

	phase     phase
	phaseBase int // round at which the current phase started

	delta  int // Δ this node uses
	degree int
	kEff   float64

	// Algorithm 1 state.
	iter   int // inner-iteration counter 0 … t²-1
	x      float64
	xPlus  float64
	dyn    int
	white  bool
	c      float64
	y, z   float64
	alpha  map[graph.NodeID]float64 // α_{j,v} for j ∈ N_v
	beta   map[graph.NodeID]float64 // β_{j,v}
	thresh []float64
	incs   []float64

	// Algorithm 2 state.
	inSet   bool
	sampled bool
}

type phase int

const (
	phasePreludeDegree phase = iota
	phasePreludeDelta
	phaseLoopA
	phaseLoopB
	phaseDualSend
	phaseDualRecv
	phaseReqSend
	phaseReqRecv
	phaseDone
)

// Message types. Real-valued fields follow the fixed-point convention of
// sim.FixedPointBits.

type xMsg struct {
	X, XPlus float64
	Dyn      int
}

func (xMsg) SizeBits(n int) int { return 2*sim.FixedPointBits(n) + sim.BitsForCount(n) }

type colMsg struct{ White bool }

func (colMsg) SizeBits(int) int { return 2 }

type dualMsg struct{ AlphaY, Beta float64 }

func (dualMsg) SizeBits(n int) int { return 2 * sim.FixedPointBits(n) }

type degMsg struct{ Deg int }

func (degMsg) SizeBits(n int) int { return sim.BitsForCount(n) }

type xPrimeMsg struct{ In bool }

func (xPrimeMsg) SizeBits(int) int { return 2 }

type reqMsg struct{}

func (reqMsg) SizeBits(int) int { return 2 }

// NewProgram returns the node program for v.
func NewProgram(v graph.NodeID, cfg ProgramConfig) *Program {
	return &Program{
		cfg:   cfg,
		id:    v,
		white: true,
		alpha: make(map[graph.NodeID]float64),
		beta:  make(map[graph.NodeID]float64),
	}
}

// X returns the node's fractional value after termination.
func (p *Program) X() float64 { return p.x }

// Y returns the node's dual y value.
func (p *Program) Y() float64 { return p.y }

// Z returns the node's dual z value.
func (p *Program) Z() float64 { return p.z }

// InSet reports membership in the rounded solution.
func (p *Program) InSet() bool { return p.inSet }

// Delta returns the Δ the node used (interesting under LocalDelta).
func (p *Program) Delta() int { return p.delta }

// Step implements sim.Program.
func (p *Program) Step(ctx sim.Context) bool {
	if ctx.Round() == 0 {
		p.initialize(ctx)
	}
	switch p.phase {
	case phasePreludeDegree:
		ctx.Broadcast(degMsg{Deg: ctx.Degree()})
		p.phase = phasePreludeDelta
	case phasePreludeDelta:
		// First prelude exchange done: Δ estimate over 1 hop; broadcast
		// to extend to 2 hops.
		d := p.maxDeg(ctx)
		ctx.Broadcast(degMsg{Deg: d})
		p.delta = d
		p.phase = phaseLoopA
		p.phaseBase = ctx.Round() + 1
	case phaseLoopA:
		if p.cfg.LocalDelta && ctx.Round() == p.phaseBase {
			// Collect the 2-hop Δ from the second prelude exchange and
			// only now fix the thresholds.
			p.delta = p.maxDeg(ctx)
			p.buildSchedule()
		}
		p.stepLoopA(ctx)
		p.phase = phaseLoopB
	case phaseLoopB:
		p.stepLoopB(ctx)
		p.iter++
		if p.iter < p.cfg.T*p.cfg.T {
			p.phase = phaseLoopA
		} else {
			p.phase = phaseDualSend
		}
	case phaseDualSend:
		p.refreshDyn(ctx) // keep bookkeeping tidy; not used afterwards
		for _, w := range ctx.Neighbors() {
			ctx.Send(w, dualMsg{AlphaY: p.alpha[w] * p.y, Beta: p.beta[w]})
		}
		p.phase = phaseDualRecv
	case phaseDualRecv:
		p.finishDual(ctx)
		if !p.cfg.Round {
			p.phase = phaseDone
			return true
		}
		p.sampleRound(ctx)
		p.phase = phaseReqSend
	case phaseReqSend:
		if !p.cfg.SkipRepair {
			p.sendReqs(ctx)
		}
		p.phase = phaseReqRecv
	case phaseReqRecv:
		if len(ctx.Inbox()) > 0 {
			p.inSet = true
		}
		p.phase = phaseDone
		return true
	case phaseDone:
		return true
	}
	return false
}

func (p *Program) initialize(ctx sim.Context) {
	p.degree = ctx.Degree()
	p.dyn = p.degree + 1
	p.kEff = math.Min(p.cfg.K, float64(p.degree+1))
	if p.cfg.LocalDelta {
		p.phase = phasePreludeDegree
		p.delta = p.degree
		return
	}
	p.phase = phaseLoopA
	p.phaseBase = 0
	p.delta = p.cfg.Delta
	p.buildSchedule()
}

func (p *Program) buildSchedule() {
	t := p.cfg.T
	d1 := float64(p.delta + 1)
	p.thresh = make([]float64, t)
	p.incs = make([]float64, t)
	for e := 0; e < t; e++ {
		p.thresh[e] = math.Pow(d1, float64(e)/float64(t))
		p.incs[e] = 1 / p.thresh[e]
	}
}

func (p *Program) maxDeg(ctx sim.Context) int {
	d := p.delta
	for _, env := range ctx.Inbox() {
		if m := env.Msg.(degMsg); m.Deg > d {
			d = m.Deg
		}
	}
	return d
}

// pq maps the inner-iteration counter to the paper's loop indices.
func (p *Program) pq() (int, int) {
	t := p.cfg.T
	return t - 1 - p.iter/t, t - 1 - p.iter%t
}

func (p *Program) stepLoopA(ctx sim.Context) {
	// Refresh the dynamic degree from the previous iteration's colMsgs
	// (absent in the very first iteration).
	if p.iter > 0 {
		p.refreshDyn(ctx)
	}
	pp, qq := p.pq()
	p.xPlus = 0
	if p.x < 1 && float64(p.dyn) >= p.thresh[pp] {
		p.xPlus = math.Min(p.incs[qq], 1-p.x)
		p.x += p.xPlus
	}
	ctx.Broadcast(xMsg{X: p.x, XPlus: p.xPlus, Dyn: p.dyn})
}

func (p *Program) stepLoopB(ctx sim.Context) {
	pp, _ := p.pq()
	if p.white {
		// Sum x⁺ over the closed neighborhood in ascending ID order so the
		// floating-point result matches the engine exactly.
		entries := p.closedEntries(ctx, func(env sim.Envelope) (graph.NodeID, float64) {
			return env.From, env.Msg.(xMsg).XPlus
		}, p.xPlus)
		cPlus := 0.0
		for _, e := range entries {
			cPlus += e.val
		}
		lambda := 1.0
		if cPlus > 0 {
			lambda = math.Min(1, (p.kEff-p.c)/cPlus)
		}
		p.c += cPlus
		for _, e := range entries {
			p.beta[e.id] += lambda * e.val / p.thresh[pp]
			p.alpha[e.id] += lambda * e.val
		}
		if p.c >= p.kEff {
			p.white = false
			p.y = 1 / p.thresh[pp]
		}
	}
	ctx.Broadcast(colMsg{White: p.white})
}

func (p *Program) refreshDyn(ctx sim.Context) {
	d := 0
	if p.white {
		d++
	}
	for _, env := range ctx.Inbox() {
		if m, ok := env.Msg.(colMsg); ok && m.White {
			d++
		}
	}
	p.dyn = d
}

type idVal struct {
	id  graph.NodeID
	val float64
}

// closedEntries merges the inbox values with the node's own value into a
// closed-neighborhood list sorted by ID.
func (p *Program) closedEntries(ctx sim.Context, get func(sim.Envelope) (graph.NodeID, float64), own float64) []idVal {
	entries := make([]idVal, 0, len(ctx.Inbox())+1)
	for _, env := range ctx.Inbox() {
		id, v := get(env)
		entries = append(entries, idVal{id, v})
	}
	entries = append(entries, idVal{p.id, own})
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	return entries
}

func (p *Program) finishDual(ctx sim.Context) {
	entries := p.closedEntries(ctx, func(env sim.Envelope) (graph.NodeID, float64) {
		m := env.Msg.(dualMsg)
		return env.From, m.AlphaY - m.Beta
	}, p.alpha[p.id]*p.y-p.beta[p.id])
	sum := 0.0
	for _, e := range entries {
		sum += e.val
	}
	p.z = sum
}

func (p *Program) sampleRound(ctx sim.Context) {
	prob := math.Min(1, p.x*math.Log(float64(p.delta+1)))
	if ctx.Rand().Float64() < prob {
		p.inSet = true
		p.sampled = true
	}
	ctx.Broadcast(xPrimeMsg{In: p.inSet})
}

func (p *Program) sendReqs(ctx sim.Context) {
	// Coverage over the closed neighborhood against the sampled set.
	cov := 0.0
	if p.inSet {
		cov++
	}
	out := make(map[graph.NodeID]bool, len(ctx.Inbox()))
	for _, env := range ctx.Inbox() {
		if env.Msg.(xPrimeMsg).In {
			cov++
		} else {
			out[env.From] = true
		}
	}
	deficit := int(math.Ceil(p.kEff - cov - 1e-12))
	if deficit <= 0 {
		return
	}
	candidates := make([]graph.NodeID, 0, len(out)+1)
	for _, w := range ctx.Neighbors() {
		if out[w] {
			candidates = append(candidates, w)
		}
	}
	if !p.inSet {
		candidates = append(candidates, p.id)
		sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	}
	perm := ctx.Rand().Perm(len(candidates))
	for i := 0; i < deficit && i < len(candidates); i++ {
		chosen := candidates[perm[i]]
		if chosen == p.id {
			p.inSet = true
		} else {
			ctx.Send(chosen, reqMsg{})
		}
	}
}
