package core

import (
	"math"
	"math/rand"

	"ftclust/internal/graph"
	"ftclust/internal/par"
	"ftclust/internal/rng"
)

// Scratch is a reusable solver-state arena for the general-graph pipeline.
// A Solve (or SolveFractional / RoundSolution) call that receives one
// through its options draws every working array — the closed-neighborhood
// layout, the mirror slots, the fractional state, the per-node random
// streams and the rounding buffers — from the arena instead of the heap,
// growing it on first use and reusing it afterwards. Repeated solves on
// same-shape graphs therefore run with zero steady-state allocations; the
// per-node rand.Rand streams (the dominant allocation of the rounding
// phase, one large generator state per node) are re-seeded in place, which
// yields bit-identical results to freshly constructed streams.
//
// Parallel solves (Workers > 1) draw their machinery from the arena too:
// the work-claiming pool's signal channels, the pre-bound sweep closures
// cached inside the fractional state, and one rounding lane (candidate +
// permutation buffers) per worker — so a scratch-backed parallel solve
// costs only the goroutine spawns on top of the sequential budget (pinned
// by TestSolveParallelScratchSteadyStateAllocs).
//
// Results returned from a scratch-backed solve ALIAS the arena:
// Result.InSet, .K and the Fractional X/Y/Z vectors are views into
// Scratch-owned memory and are overwritten by the next solve that uses the
// same Scratch. Callers must copy whatever they keep. A Scratch is not
// safe for concurrent use; give each worker its own (the service's solver
// pool does exactly that).
type Scratch struct {
	lay    layout
	frac   fracStateG[float64]
	frac32 fracStateG[float32]
	pool   par.Pool

	kEff []float64

	// Float32 solves narrow internally and widen on the way out; these
	// hold the widened X/Y/Z views handed to the caller.
	xOut, yOut, zOut []float64

	// Bitset kernels: packed closed-neighborhood rows plus the packed
	// membership vector the coverage sweeps intersect against.
	bits   bitRows
	inBits []uint64

	// Rounding state. cand/perm serve the sequential path; lanes carve a
	// private (cand, perm) pair per pool worker.
	inSet   []bool
	rnds    []*rand.Rand
	recruit []uint32
	cand    []graph.NodeID
	perm    []int
	lanes   []reqLane
}

// reqLane is one worker's private rounding buffers: REQ candidate
// collection and recruit permutation, reused across chunks and solves.
type reqLane struct {
	cand []graph.NodeID
	perm []int
}

// NewScratch returns an empty arena; arrays are allocated lazily on first
// use and sized to the largest (n, m) seen.
func NewScratch() *Scratch { return &Scratch{} }

// fracStateFor returns the float64 fractional state, arena-embedded when
// s is non-nil (reusing arrays and the cached sweep closures).
func fracStateFor(s *Scratch) *fracStateG[float64] {
	if s == nil {
		return &fracStateG[float64]{}
	}
	return &s.frac
}

// frac32StateFor is fracStateFor for the float32 instantiation.
func frac32StateFor(s *Scratch) *fracStateG[float32] {
	if s == nil {
		return &fracStateG[float32]{}
	}
	return &s.frac32
}

// poolFor returns a stopped pool ready to Start, arena-embedded when s is
// non-nil so its signal channels persist across solves.
func poolFor(s *Scratch) *par.Pool {
	if s == nil {
		return &par.Pool{}
	}
	return &s.pool
}

// lanesFor returns w rounding lanes, arena-embedded when s is non-nil.
func lanesFor(s *Scratch, w int) []reqLane {
	if s == nil {
		return make([]reqLane, w)
	}
	s.lanes = growKeep(s.lanes, w)
	return s.lanes
}

// widenResults converts the float32 engine's vectors to the float64 views
// the public result type carries, drawing the output buffers from the
// arena when available.
func widenResults(s *Scratch, x, y, z []float32) (xo, yo, zo []float64) {
	if s == nil {
		xo = make([]float64, len(x))
		yo = make([]float64, len(y))
		zo = make([]float64, len(z))
	} else {
		s.xOut = growNoClear(s.xOut, len(x))
		s.yOut = growNoClear(s.yOut, len(y))
		s.zOut = growNoClear(s.zOut, len(z))
		xo, yo, zo = s.xOut, s.yOut, s.zOut
	}
	for i, v := range x {
		xo[i] = float64(v)
	}
	for i, v := range y {
		yo[i] = float64(v)
	}
	for i, v := range z {
		zo[i] = float64(v)
	}
	return xo, yo, zo
}

// growNoClear resizes buf to n reusing its capacity; contents are
// unspecified — every slot must be written by the caller.
func growNoClear[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// growZero resizes buf to n reusing its capacity and zeroes it.
func growZero[T any](buf []T, n int) []T {
	buf = growNoClear(buf, n)
	clear(buf)
	return buf
}

// growKeep resizes buf to n preserving existing elements (and, when
// shrinking then regrowing within capacity, resurrecting earlier ones) —
// used for the rand.Rand stream cache, where any stale non-nil pointer is
// a reusable generator that the sampling sweep re-seeds anyway, and for
// the rounding lanes, where stale buffers are reusable capacity.
func growKeep[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	nb := make([]T, n)
	copy(nb, buf)
	return nb
}

// layoutFor returns the closed-neighborhood layout of g, carved out of s
// when non-nil and freshly allocated otherwise.
func layoutFor(g *graph.Graph, s *Scratch) *layout {
	if s == nil {
		return newLayout(g)
	}
	s.lay.rebuild(g)
	return &s.lay
}

// effectiveDemandsInto is EffectiveDemands writing into a reusable buffer.
func effectiveDemandsInto(buf []float64, g *graph.Graph, k float64) []float64 {
	n := g.NumNodes()
	buf = growNoClear(buf, n)
	for v := 0; v < n; v++ {
		buf[v] = math.Min(k, float64(g.Degree(graph.NodeID(v))+1))
	}
	return buf
}

// streamFor returns the node's sampling stream: re-seeding a cached
// generator is state-identical to constructing a fresh one, so scratch
// reuse never changes a single random draw.
func streamFor(rnds []*rand.Rand, seed int64, v int) *rand.Rand {
	if rnds[v] == nil {
		rnds[v] = rng.NewStream(seed, uint64(v)+1)
	} else {
		rnds[v].Seed(rng.Derive(seed, uint64(v)+1))
	}
	return rnds[v]
}

// permInto fills m with a uniformly random permutation of [0, len(m))
// using exactly the draws of rand.Rand.Perm (one Intn(i+1) per position),
// so scratch-backed rounding consumes the identical stream prefix and
// stays bit-compatible with the allocation-per-call path and the
// simulator.
func permInto(r *rand.Rand, m []int) {
	for i := range m {
		j := r.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
}
