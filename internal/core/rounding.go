package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"ftclust/internal/graph"
	"ftclust/internal/par"
	"ftclust/internal/rng"
)

// RoundingOptions configure Algorithm 2.
type RoundingOptions struct {
	// Seed drives the per-node random streams (stream v+1 for node v,
	// matching the simulator's convention so engine and sim.Program
	// executions coincide).
	Seed int64
	// SkipRepair disables the REQ step (Lines 4–7). Used by the ablation
	// experiment that demonstrates the repair step is what guarantees
	// feasibility.
	SkipRepair bool
	// Workers distributes the sampling and repair sweeps over this many
	// goroutines (≤ 1 = sequential). Each node consumes only its own
	// random stream, so results are bit-identical for every worker count.
	Workers int
	// Ctx, when non-nil, is checked before the sampling round and again
	// before the REQ round; a done context aborts with a wrapped
	// ErrCanceled.
	Ctx context.Context
}

// RoundingResult is the outcome of Algorithm 2.
type RoundingResult struct {
	// InSet marks the nodes of the integral solution x'.
	InSet []bool
	// Sampled counts nodes selected by the randomized test (Line 2).
	Sampled int
	// Repaired counts additional nodes recruited via REQ (Lines 5–7).
	Repaired int
}

// Size returns |S|.
func (r RoundingResult) Size() int {
	n := 0
	for _, in := range r.InSet {
		if in {
			n++
		}
	}
	return n
}

// RoundingBlowupBound returns Theorem 4.6's multiplicative factor
// ln(Δ+1) + O(1) (the additive constant folded as +2, covering E[Y]).
func RoundingBlowupBound(delta int) float64 {
	return math.Log(float64(delta+1)) + 2
}

// RoundSolution runs Algorithm 2: it samples each node with probability
// min{1, x_i·ln(Δ+1)} and then repairs residual deficits by recruiting
// uncovered nodes' neighbors (REQ messages). k demands are capped at
// closed-neighborhood sizes; with the repair step enabled the result is
// always a feasible k-fold cover in the (PP) sense.
func RoundSolution(g *graph.Graph, k []float64, x []float64, delta int, opts RoundingOptions) (RoundingResult, error) {
	n := g.NumNodes()
	if len(x) != n || len(k) != n {
		return RoundingResult{}, fmt.Errorf("core: x/k length mismatch with graph (%d nodes)", n)
	}
	return roundWithLayout(newLayout(g), k, x, delta, opts)
}

// roundWithLayout is RoundSolution over a precomputed closed-neighborhood
// layout (shared with the fractional phase by Solve), so no per-node
// neighborhood slices are allocated or sorted.
func roundWithLayout(lay *layout, k []float64, x []float64, delta int, opts RoundingOptions) (RoundingResult, error) {
	n := lay.n
	lnD := math.Log(float64(delta + 1))
	if err := checkCtx(opts.Ctx); err != nil {
		return RoundingResult{}, err
	}

	// Sampling (Line 2). Seeding a per-node stream is the expensive part
	// (rand.NewSource initializes a large state), so the sweep is worth
	// parallelizing even before any graph work happens.
	inSet := make([]bool, n)
	rnds := make([]*rand.Rand, n)
	sampled := 0
	par.For(n, opts.Workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			rnds[v] = rng.NewStream(opts.Seed, uint64(v)+1)
			p := math.Min(1, x[v]*lnD)
			if rnds[v].Float64() < p {
				inSet[v] = true
			}
		}
	})
	for v := 0; v < n; v++ {
		if inSet[v] {
			sampled++
		}
	}
	if opts.SkipRepair {
		return RoundingResult{InSet: inSet, Sampled: sampled}, nil
	}
	if err := checkCtx(opts.Ctx); err != nil {
		return RoundingResult{}, err
	}

	// REQ step: deficits are computed against the sampled set only (the
	// algorithm is one-shot; concurrent REQs may overlap, which only
	// helps). inSet is frozen here, every node reads its own stream, and
	// recruit slots only ever receive the value 1, so the sweep is
	// order-independent; atomic stores keep the parallel path race-free.
	recruit := make([]uint32, n)
	maxClosed := lay.maxSize()
	par.For(n, opts.Workers, func(lo, hi int) {
		candidates := make([]graph.NodeID, 0, maxClosed)
		for v := lo; v < hi; v++ {
			closed := lay.closed(v)
			kv := math.Min(k[v], float64(len(closed)))
			cov := 0.0
			for _, w := range closed {
				if inSet[w] {
					cov++
				}
			}
			deficit := int(math.Ceil(kv - cov - 1e-12))
			if deficit <= 0 {
				continue
			}
			candidates = candidates[:0]
			for _, w := range closed {
				if !inSet[w] {
					candidates = append(candidates, w)
				}
			}
			// |N_v| ≥ k_v guarantees enough candidates.
			perm := rnds[v].Perm(len(candidates))
			for i := 0; i < deficit && i < len(candidates); i++ {
				atomic.StoreUint32(&recruit[candidates[perm[i]]], 1)
			}
		}
	})
	repaired := 0
	for v := 0; v < n; v++ {
		if recruit[v] == 1 && !inSet[v] {
			inSet[v] = true
			repaired++
		}
	}
	return RoundingResult{InSet: inSet, Sampled: sampled, Repaired: repaired}, nil
}
