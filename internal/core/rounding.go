package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"ftclust/internal/graph"
	"ftclust/internal/par"
)

// RoundingOptions configure Algorithm 2.
type RoundingOptions struct {
	// Seed drives the per-node random streams (stream v+1 for node v,
	// matching the simulator's convention so engine and sim.Program
	// executions coincide).
	Seed int64
	// SkipRepair disables the REQ step (Lines 4–7). Used by the ablation
	// experiment that demonstrates the repair step is what guarantees
	// feasibility.
	SkipRepair bool
	// Workers distributes the sampling and repair sweeps over this many
	// goroutines (≤ 1 = sequential). Each node consumes only its own
	// random stream, so results are bit-identical for every worker count.
	Workers int
	// Bitset selects the packed-row kernels for the REQ coverage and
	// candidate scans; see BitsetMode. Results are identical either way.
	Bitset BitsetMode
	// Ctx, when non-nil, is checked before the sampling round and again
	// before the REQ round; a done context aborts with a wrapped
	// ErrCanceled.
	Ctx context.Context
	// Scratch, when non-nil, supplies the rounding buffers and the
	// per-node random streams from a reusable arena (streams are re-seeded
	// in place — state-identical to fresh ones, so results never change).
	// The returned InSet then aliases the arena; see Scratch.
	Scratch *Scratch

	// pool, when non-nil, is a started work-claiming pool owned by the
	// caller (Solve shares one across both phases); nil with Workers > 1
	// makes the phase start its own.
	pool *par.Pool
}

// RoundingResult is the outcome of Algorithm 2.
type RoundingResult struct {
	// InSet marks the nodes of the integral solution x'.
	InSet []bool
	// Sampled counts nodes selected by the randomized test (Line 2).
	Sampled int
	// Repaired counts additional nodes recruited via REQ (Lines 5–7).
	Repaired int
}

// Size returns |S|.
func (r RoundingResult) Size() int {
	n := 0
	for _, in := range r.InSet {
		if in {
			n++
		}
	}
	return n
}

// RoundingBlowupBound returns Theorem 4.6's multiplicative factor
// ln(Δ+1) + O(1) (the additive constant folded as +2, covering E[Y]).
func RoundingBlowupBound(delta int) float64 {
	return math.Log(float64(delta+1)) + 2
}

// RoundSolution runs Algorithm 2: it samples each node with probability
// min{1, x_i·ln(Δ+1)} and then repairs residual deficits by recruiting
// uncovered nodes' neighbors (REQ messages). k demands are capped at
// closed-neighborhood sizes; with the repair step enabled the result is
// always a feasible k-fold cover in the (PP) sense.
func RoundSolution(g *graph.Graph, k []float64, x []float64, delta int, opts RoundingOptions) (RoundingResult, error) {
	n := g.NumNodes()
	if len(x) != n || len(k) != n {
		return RoundingResult{}, fmt.Errorf("core: x/k length mismatch with graph (%d nodes)", n)
	}
	return roundWithLayout(layoutFor(g, opts.Scratch), k, x, delta, opts)
}

// roundWithLayout is RoundSolution over a precomputed closed-neighborhood
// layout (shared with the fractional phase by Solve), so no per-node
// neighborhood slices are allocated or sorted.
func roundWithLayout(lay *layout, k []float64, x []float64, delta int, opts RoundingOptions) (RoundingResult, error) {
	n := lay.n
	lnD := math.Log(float64(delta + 1))
	if err := checkCtx(opts.Ctx); err != nil {
		return RoundingResult{}, err
	}

	pool := opts.pool
	if pool == nil && opts.Workers > 1 {
		pool = poolFor(opts.Scratch)
		pool.Start(opts.Workers)
		defer pool.Stop()
	}

	// Sampling (Line 2). Seeding a per-node stream is the expensive part
	// (rand.NewSource initializes a large state), so the sweep is worth
	// parallelizing even before any graph work happens — and with a
	// scratch the cached streams are re-seeded in place instead of
	// reallocated, which removes the n allocations entirely.
	scratch := opts.Scratch
	var inSet []bool
	var rnds []*rand.Rand
	if scratch != nil {
		scratch.inSet = growZero(scratch.inSet, n)
		scratch.rnds = growKeep(scratch.rnds, n)
		inSet, rnds = scratch.inSet, scratch.rnds
	} else {
		inSet = make([]bool, n)
		rnds = make([]*rand.Rand, n)
	}
	// Closure literals handed to the pool heap-allocate even when they
	// never run (fn reaches a goroutine), so both sweeps keep them in the
	// pool != nil branch and call the named body directly otherwise — the
	// sequential scratch path must not allocate at all. (Two literals per
	// solve here, constant; the per-round fractional sweeps cache theirs.)
	sampled := 0
	if pool != nil {
		pool.Run(n, func(_, lo, hi int) {
			sampleSweep(lo, hi, opts.Seed, lnD, x, rnds, inSet)
		})
	} else {
		sampleSweep(0, n, opts.Seed, lnD, x, rnds, inSet)
	}
	for v := 0; v < n; v++ {
		if inSet[v] {
			sampled++
		}
	}
	if opts.SkipRepair {
		return RoundingResult{InSet: inSet, Sampled: sampled}, nil
	}
	if err := checkCtx(opts.Ctx); err != nil {
		return RoundingResult{}, err
	}

	// REQ step: deficits are computed against the sampled set only (the
	// algorithm is one-shot; concurrent REQs may overlap, which only
	// helps). inSet is frozen here, every node reads its own stream, and
	// recruit slots only ever receive the value 1, so the sweep is
	// order-independent; atomic stores keep the parallel path race-free.
	// Buffers: the sequential scratch path reuses one candidate/perm
	// pair, the pooled path carves one pair per worker lane from the
	// arena (never per node or per chunk).
	var recruit []uint32
	if scratch != nil {
		scratch.recruit = growZero(scratch.recruit, n)
		recruit = scratch.recruit
	} else {
		recruit = make([]uint32, n)
	}

	// Packed kernels: with inSet frozen, coverage is popcount(row &
	// members) and candidates are the set bits of row &^ members.
	var bits *bitRows
	var inBits []uint64
	if useBitset(opts.Bitset, lay) {
		if scratch != nil {
			bits = &scratch.bits
			scratch.inBits = packInto(scratch.inBits, inSet)
			inBits = scratch.inBits
		} else {
			bits = &bitRows{}
			inBits = packInto(nil, inSet)
		}
		bits.rebuild(lay)
	}

	maxClosed := lay.maxSize()
	if pool != nil {
		lanes := lanesFor(scratch, pool.Workers())
		for i := range lanes {
			lanes[i].cand = growNoClear(lanes[i].cand, maxClosed)[:0]
			lanes[i].perm = growNoClear(lanes[i].perm, maxClosed)
		}
		pool.Run(n, func(worker, lo, hi int) {
			ln := &lanes[worker]
			if bits != nil {
				reqSweepBits(lo, hi, lay, bits, inBits, k, rnds, recruit, ln.cand, ln.perm)
			} else {
				reqSweep(lo, hi, lay, k, inSet, rnds, recruit, ln.cand, ln.perm)
			}
		})
	} else {
		var candidates []graph.NodeID
		var permBuf []int
		if scratch != nil {
			scratch.cand = growNoClear(scratch.cand, maxClosed)[:0]
			scratch.perm = growNoClear(scratch.perm, maxClosed)
			candidates, permBuf = scratch.cand, scratch.perm
		} else {
			candidates = make([]graph.NodeID, 0, maxClosed)
			permBuf = make([]int, maxClosed)
		}
		if bits != nil {
			reqSweepBits(0, n, lay, bits, inBits, k, rnds, recruit, candidates, permBuf)
		} else {
			reqSweep(0, n, lay, k, inSet, rnds, recruit, candidates, permBuf)
		}
	}
	repaired := 0
	for v := 0; v < n; v++ {
		if recruit[v] == 1 && !inSet[v] {
			inSet[v] = true
			repaired++
		}
	}
	return RoundingResult{InSet: inSet, Sampled: sampled, Repaired: repaired}, nil
}

// sampleSweep runs the sampling round (Line 2) for nodes in [lo, hi).
func sampleSweep(lo, hi int, seed int64, lnD float64, x []float64, rnds []*rand.Rand, inSet []bool) {
	for v := lo; v < hi; v++ {
		r := streamFor(rnds, seed, v)
		p := math.Min(1, x[v]*lnD)
		if r.Float64() < p {
			inSet[v] = true
		}
	}
}

// reqSweep runs the REQ round (Lines 4–7) for nodes in [lo, hi), using the
// caller-supplied candidate/permutation buffers.
func reqSweep(lo, hi int, lay *layout, k []float64, inSet []bool, rnds []*rand.Rand, recruit []uint32, candidates []graph.NodeID, permBuf []int) {
	for v := lo; v < hi; v++ {
		closed := lay.closed(v)
		cov := 0
		for _, w := range closed {
			if inSet[w] {
				cov++
			}
		}
		deficit := reqDeficit(k[v], len(closed), cov)
		if deficit <= 0 {
			continue
		}
		candidates = candidates[:0]
		for _, w := range closed {
			if !inSet[w] {
				candidates = append(candidates, w)
			}
		}
		reqRecruit(rnds[v], recruit, candidates, permBuf, deficit)
	}
}

// reqSweepBits is reqSweep on the packed rows: identical deficits (exact
// integer coverage either way) and identical candidate order (ascending
// bit order = ascending CSR order), so identical recruits and random
// draws.
func reqSweepBits(lo, hi int, lay *layout, bits *bitRows, inBits []uint64, k []float64, rnds []*rand.Rand, recruit []uint32, candidates []graph.NodeID, permBuf []int) {
	for v := lo; v < hi; v++ {
		row := bits.row(v)
		cov := countAnd(row, inBits)
		deficit := reqDeficit(k[v], lay.size(v), cov)
		if deficit <= 0 {
			continue
		}
		candidates = appendAndNot(candidates[:0], row, inBits)
		reqRecruit(rnds[v], recruit, candidates, permBuf, deficit)
	}
}

// reqDeficit returns how many additional members node v must recruit.
func reqDeficit(kv float64, closedSize, cov int) int {
	kv = math.Min(kv, float64(closedSize))
	return int(math.Ceil(kv - float64(cov) - 1e-12))
}

// reqRecruit draws a uniform permutation of the candidates from the
// node's stream and recruits the first deficit of them.
// |N_v| ≥ k_v guarantees enough candidates.
func reqRecruit(r *rand.Rand, recruit []uint32, candidates []graph.NodeID, permBuf []int, deficit int) {
	perm := permBuf[:len(candidates)]
	permInto(r, perm)
	for i := 0; i < deficit && i < len(candidates); i++ {
		atomic.StoreUint32(&recruit[candidates[perm[i]]], 1)
	}
}
