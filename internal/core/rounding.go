package core

import (
	"fmt"
	"math"
	"math/rand"

	"ftclust/internal/graph"
	"ftclust/internal/rng"
)

// RoundingOptions configure Algorithm 2.
type RoundingOptions struct {
	// Seed drives the per-node random streams (stream v+1 for node v,
	// matching the simulator's convention so engine and sim.Program
	// executions coincide).
	Seed int64
	// SkipRepair disables the REQ step (Lines 4–7). Used by the ablation
	// experiment that demonstrates the repair step is what guarantees
	// feasibility.
	SkipRepair bool
}

// RoundingResult is the outcome of Algorithm 2.
type RoundingResult struct {
	// InSet marks the nodes of the integral solution x'.
	InSet []bool
	// Sampled counts nodes selected by the randomized test (Line 2).
	Sampled int
	// Repaired counts additional nodes recruited via REQ (Lines 5–7).
	Repaired int
}

// Size returns |S|.
func (r RoundingResult) Size() int {
	n := 0
	for _, in := range r.InSet {
		if in {
			n++
		}
	}
	return n
}

// RoundingBlowupBound returns Theorem 4.6's multiplicative factor
// ln(Δ+1) + O(1) (the additive constant folded as +2, covering E[Y]).
func RoundingBlowupBound(delta int) float64 {
	return math.Log(float64(delta+1)) + 2
}

// RoundSolution runs Algorithm 2: it samples each node with probability
// min{1, x_i·ln(Δ+1)} and then repairs residual deficits by recruiting
// uncovered nodes' neighbors (REQ messages). k demands are capped at
// closed-neighborhood sizes; with the repair step enabled the result is
// always a feasible k-fold cover in the (PP) sense.
func RoundSolution(g *graph.Graph, k []float64, x []float64, delta int, opts RoundingOptions) (RoundingResult, error) {
	n := g.NumNodes()
	if len(x) != n || len(k) != n {
		return RoundingResult{}, fmt.Errorf("core: x/k length mismatch with graph (%d nodes)", n)
	}
	lnD := math.Log(float64(delta + 1))

	inSet := make([]bool, n)
	sampled := 0
	rnds := make([]*rand.Rand, n)
	for v := 0; v < n; v++ {
		rnds[v] = rng.NewStream(opts.Seed, uint64(v)+1)
		p := math.Min(1, x[v]*lnD)
		if rnds[v].Float64() < p {
			inSet[v] = true
			sampled++
		}
	}
	if opts.SkipRepair {
		return RoundingResult{InSet: inSet, Sampled: sampled}, nil
	}

	// REQ step: deficits are computed against the sampled set only (the
	// algorithm is one-shot; concurrent REQs may overlap, which only helps).
	recruit := make([]bool, n)
	for v := 0; v < n; v++ {
		closed := ClosedNeighborhood(g, graph.NodeID(v))
		kv := math.Min(k[v], float64(len(closed)))
		cov := 0.0
		for _, w := range closed {
			if inSet[w] {
				cov++
			}
		}
		deficit := int(math.Ceil(kv - cov - 1e-12))
		if deficit <= 0 {
			continue
		}
		var candidates []graph.NodeID
		for _, w := range closed {
			if !inSet[w] {
				candidates = append(candidates, w)
			}
		}
		// |N_v| ≥ k_v guarantees enough candidates.
		perm := rnds[v].Perm(len(candidates))
		for i := 0; i < deficit && i < len(candidates); i++ {
			recruit[candidates[perm[i]]] = true
		}
	}
	repaired := 0
	for v := 0; v < n; v++ {
		if recruit[v] && !inSet[v] {
			inSet[v] = true
			repaired++
		}
	}
	return RoundingResult{InSet: inSet, Sampled: sampled, Repaired: repaired}, nil
}
