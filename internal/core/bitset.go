package core

import (
	mbits "math/bits"

	"ftclust/internal/graph"
)

// BitsetMode selects whether the dense coverage sweeps (the REQ repair
// round and the weighted solver's cover accounting) run on packed
// []uint64 closed-neighborhood rows instead of CSR adjacency scans. On a
// packed row, counting covered neighbors is a word-parallel
// popcount(row & members) and collecting non-member candidates iterates
// set bits of row &^ members — both touch n/64 words per node instead of
// |N_v| scattered slots, a large win on dense graphs where |N_v| is a
// sizable fraction of n.
//
// Results are bit-identical in every mode: coverage counts are exact
// integers either way, and candidate enumeration in bit order equals the
// CSR scan order (both ascending node ID).
type BitsetMode int

const (
	// BitsetAuto (the default) packs rows only when the density heuristic
	// says the word scans beat the CSR scans and the rows fit the memory
	// cap. Sparse benchmark graphs (gnp with constant average degree)
	// stay on CSR.
	BitsetAuto BitsetMode = iota
	// BitsetOn forces the packed kernels (tests force both paths).
	BitsetOn
	// BitsetOff forces the CSR kernels.
	BitsetOff
)

// maxBitWords caps the packed representation at 128 MiB (2^24 words): an
// n×n/64 bit matrix grows quadratically, and past this size the packing
// cost dominates any sweep win.
const maxBitWords = 1 << 24

// bitRows is the packed closed-neighborhood matrix: row v is an n-bit
// set with bit w set iff w ∈ N_v, stored as stride = ⌈n/64⌉ words.
type bitRows struct {
	n      int
	stride int
	words  []uint64
}

// useBitset resolves mode against the layout's density: packing pays when
// a row's word count is within 4× the average closed-neighborhood size
// (the word ops are ~1/64 the cost of scattered CSR loads, with slack for
// packing overhead and the candidate bit scans).
func useBitset(mode BitsetMode, lay *layout) bool {
	if mode == BitsetOff || lay.n == 0 {
		return false
	}
	stride := (lay.n + 63) / 64
	if lay.n*stride > maxBitWords {
		return false
	}
	if mode == BitsetOn {
		return true
	}
	avg := len(lay.adj) / lay.n
	return avg*4 >= stride
}

// rebuild refills the packed rows for lay, reusing capacity.
func (b *bitRows) rebuild(lay *layout) {
	b.n = lay.n
	b.stride = (lay.n + 63) / 64
	b.words = growZero(b.words, b.n*b.stride)
	for v := 0; v < lay.n; v++ {
		row := b.words[v*b.stride : (v+1)*b.stride]
		for _, w := range lay.closed(v) {
			row[w>>6] |= 1 << (uint(w) & 63)
		}
	}
}

func (b *bitRows) row(v int) []uint64 {
	return b.words[v*b.stride : (v+1)*b.stride]
}

// packInto packs a bool membership vector into words (reusing buf).
func packInto(buf []uint64, member []bool) []uint64 {
	stride := (len(member) + 63) / 64
	buf = growZero(buf, stride)
	for v, in := range member {
		if in {
			buf[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	return buf
}

// countAnd returns popcount(row & mask).
func countAnd(row, mask []uint64) int {
	c := 0
	for i, w := range row {
		c += mbits.OnesCount64(w & mask[i])
	}
	return c
}

// appendAndNot appends the set bits of row &^ mask to dst in ascending
// order — identical to scanning the CSR row and keeping non-members.
func appendAndNot(dst []graph.NodeID, row, mask []uint64) []graph.NodeID {
	for i, w := range row {
		rem := w &^ mask[i]
		for rem != 0 {
			dst = append(dst, graph.NodeID(i<<6+mbits.TrailingZeros64(rem)))
			rem &= rem - 1
		}
	}
	return dst
}
