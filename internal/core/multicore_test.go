package core

import (
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"ftclust/internal/graph"
	"ftclust/internal/par"
)

// Tests for the work-claiming scheduler, the packed bitset kernels and the
// float32 engine: every path must be bit-identical to (or, for float32,
// within the documented tolerance of) the sequential float64 reference.

func schedulerTestGraphs(tb testing.TB, n int) map[string]*graph.Graph {
	tb.Helper()
	side := 1
	for side*side < n {
		side++
	}
	return map[string]*graph.Graph{
		"star": graph.Star(n),
		"path": graph.Path(n),
		"gnp":  graph.GnpAvgDegree(n, 10, 3),
		"grid": graph.Grid(side, side),
	}
}

func assertSameSolve(t *testing.T, label string, seq, got Result) {
	t.Helper()
	if !sameFloats(seq.Fractional.X, got.Fractional.X) {
		t.Errorf("%s: X diverges", label)
	}
	if !sameFloats(seq.Fractional.Y, got.Fractional.Y) {
		t.Errorf("%s: Y diverges", label)
	}
	if !sameFloats(seq.Fractional.Z, got.Fractional.Z) {
		t.Errorf("%s: Z diverges", label)
	}
	if seq.Fractional.BetaSum != got.Fractional.BetaSum {
		t.Errorf("%s: BetaSum diverges", label)
	}
	if !sameBools(seq.InSet, got.InSet) {
		t.Errorf("%s: InSet diverges", label)
	}
	if seq.Rounding.Sampled != got.Rounding.Sampled ||
		seq.Rounding.Repaired != got.Rounding.Repaired {
		t.Errorf("%s: rounding counters diverge", label)
	}
}

// Forcing grain 1 makes every claimed range a single index — the maximal
// stolen-work interleaving: every pair of adjacent indices may run on
// different workers in any order. Results must not move.
func TestSolveForcedGrainInterleavingsMatchSequential(t *testing.T) {
	defer par.SetForceGrain(par.SetForceGrain(1))
	for name, g := range schedulerTestGraphs(t, 400) {
		seq, err := Solve(g, Options{K: 3, T: 3, Seed: 11})
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := Solve(g, Options{K: 3, T: 3, Seed: 11, Workers: workers})
			if err != nil {
				t.Fatalf("%s w=%d: %v", name, workers, err)
			}
			assertSameSolve(t, name, seq, got)
		}
	}
}

// The packed kernels must be invisible in the results, sequential and
// pooled, forced on — including on graphs the Auto heuristic would keep
// on CSR.
func TestSolveBitsetMatchesCSR(t *testing.T) {
	for name, g := range schedulerTestGraphs(t, 400) {
		seq, err := Solve(g, Options{K: 3, T: 3, Seed: 7, Bitset: BitsetOff})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{1, 4} {
			got, err := Solve(g, Options{K: 3, T: 3, Seed: 7, Workers: workers, Bitset: BitsetOn})
			if err != nil {
				t.Fatalf("%s w=%d bitset: %v", name, workers, err)
			}
			assertSameSolve(t, name+" bitset", seq, got)
		}
	}
}

func TestSolveWeightedBitsetMatchesCSR(t *testing.T) {
	for name, g := range schedulerTestGraphs(t, 300) {
		costs := make([]float64, g.NumNodes())
		for v := range costs {
			costs[v] = 1 + float64(v%7)
		}
		seq, err := SolveWeighted(g, WeightedOptions{K: 2, T: 3, Seed: 5, Costs: costs, Bitset: BitsetOff})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := SolveWeighted(g, WeightedOptions{K: 2, T: 3, Seed: 5, Costs: costs, Bitset: BitsetOn, Workers: 4})
		if err != nil {
			t.Fatalf("%s bitset: %v", name, err)
		}
		if !sameFloats(seq.X, got.X) || !sameBools(seq.InSet, got.InSet) || seq.Cost != got.Cost {
			t.Errorf("%s: weighted bitset run diverges from CSR", name)
		}
	}
}

func TestUseBitsetGating(t *testing.T) {
	dense := newLayout(graph.GnpAvgDegree(200, 60, 1))
	sparse := newLayout(graph.GnpAvgDegree(2000, 6, 1))
	if !useBitset(BitsetAuto, dense) {
		t.Error("Auto should pack a dense 200-node graph (stride 4, avg degree ~60)")
	}
	if useBitset(BitsetAuto, sparse) {
		t.Error("Auto should keep a sparse 2000-node graph on CSR")
	}
	if useBitset(BitsetOff, dense) {
		t.Error("Off must never pack")
	}
	if !useBitset(BitsetOn, sparse) {
		t.Error("On must pack whenever rows fit the cap")
	}
}

// Float32 contract, half 1: the documented tolerance against the float64
// reference. Primal x entries stay within 1e-3 except at discrete
// threshold boundaries (a node crossing c ≥ k one iteration earlier or
// later — at most 1% of nodes); the primal and dual objectives agree to
// 1e-3 relative; the integral solution stays exactly feasible with |S|
// within 1% of the reference. Per-entry dual values carry NO closeness
// guarantee: y_i jumps between the discrete levels (Δ+1)^{-p/t} when a
// threshold decision flips (on a star every leaf sits exactly on the
// c = k boundary).
func TestFloat32CloseToFloat64(t *testing.T) {
	for name, g := range schedulerTestGraphs(t, 400) {
		n := g.NumNodes()
		ref, err := Solve(g, Options{K: 3, T: 3, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := Solve(g, Options{K: 3, T: 3, Seed: 9, Float32: true})
		if err != nil {
			t.Fatalf("%s float32: %v", name, err)
		}
		if !got.Feasible {
			t.Errorf("%s: float32 solution infeasible", name)
		}
		flips := 0
		for v := range ref.Fractional.X {
			if math.Abs(ref.Fractional.X[v]-got.Fractional.X[v]) > 1e-3 {
				flips++
			}
		}
		if limit := 1 + n/100; flips > limit {
			t.Errorf("%s: %d x-entries beyond 1e-3 (threshold flips), want ≤ %d", name, flips, limit)
		}
		o64, o32 := ref.Fractional.Objective(), got.Fractional.Objective()
		if math.Abs(o64-o32) > 1e-3*o64 {
			t.Errorf("%s: objectives %g vs %g diverge beyond 1e-3 relative", name, o64, o32)
		}
		d64 := ref.Fractional.DualObjective(ref.K)
		d32 := got.Fractional.DualObjective(got.K)
		if math.Abs(d64-d32) > 1e-3*math.Abs(d64) {
			t.Errorf("%s: dual objectives %g vs %g diverge beyond 1e-3 relative", name, d64, d32)
		}
		if ds := ref.Size() - got.Size(); ds > 1+n/100 || ds < -(1+n/100) {
			t.Errorf("%s: set sizes %d vs %d diverge beyond 1%%", name, ref.Size(), got.Size())
		}
	}
}

// Float32 contract, half 2: the float32 engine is itself deterministic —
// bit-identical across worker counts and maximal interleavings.
func TestFloat32BitIdenticalAcrossWorkers(t *testing.T) {
	defer par.SetForceGrain(par.SetForceGrain(1))
	for name, g := range schedulerTestGraphs(t, 400) {
		seq, err := Solve(g, Options{K: 3, T: 3, Seed: 9, Float32: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := Solve(g, Options{K: 3, T: 3, Seed: 9, Float32: true, Workers: workers})
			if err != nil {
				t.Fatalf("%s w=%d: %v", name, workers, err)
			}
			assertSameSolve(t, name+" float32", seq, got)
		}
	}
}

// Satellite budget: a scratch-backed parallel solve must stay within ~40
// allocs/op — the pool's goroutine spawns plus two rounding closures, on
// top of the sequential path's ≤ 4 (the 209-allocs/op regression came
// from per-iteration sweep closures, now cached in the arena).
func TestSolveParallelScratchSteadyStateAllocs(t *testing.T) {
	g := graph.GnpAvgDegree(500, 10, 3)
	sc := NewScratch()
	opts := Options{K: 2, T: 3, Seed: 7, Workers: 4, Scratch: sc, Observer: nil}
	if _, err := Solve(g, opts); err != nil { // warm the arena
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Solve(g, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 40 {
		t.Errorf("parallel scratch-backed Solve: %v allocs/op steady-state, want ≤ 40", allocs)
	}
}

// Opt-in smoke (FTCLUST_SPEEDUP_SMOKE=1, ≥ 4 CPUs): workers=4 must beat
// workers=1 on a gnp instance big enough to amortize the fan-out. CI runs
// this on its 4-core runners; laptops and 1-CPU containers skip it.
func TestParallelSpeedupSmoke(t *testing.T) {
	if os.Getenv("FTCLUST_SPEEDUP_SMOKE") == "" {
		t.Skip("set FTCLUST_SPEEDUP_SMOKE=1 to run the speedup smoke")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need ≥ 4 CPUs, have %d", runtime.NumCPU())
	}
	g := graph.GnpAvgDegree(20000, 12, 3)
	k := EffectiveDemands(g, 2)
	sc := NewScratch()
	best := func(workers int) time.Duration {
		b := time.Duration(math.MaxInt64)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := SolveFractional(g, k, FractionalOptions{T: 3, Workers: workers, Scratch: sc}); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}
	best(1) // warm the arena before timing either side
	seq := best(1)
	par4 := best(4)
	t.Logf("sequential %v, workers=4 %v (%.2fx)", seq, par4, float64(seq)/float64(par4))
	if par4 >= seq {
		t.Errorf("workers=4 (%v) not faster than sequential (%v) on gnp n=20000", par4, seq)
	}
}
