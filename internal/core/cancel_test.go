package core

import (
	"context"
	"errors"
	"testing"

	"ftclust/internal/graph"
)

// A done context must abort every engine entry point with ErrCanceled and
// no partial result.
func TestSolveCanceledContext(t *testing.T) {
	g, err := graph.Generate(graph.FamilyGnp, 200, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := Solve(g, Options{K: 3, T: 3, Seed: 1, Ctx: ctx}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Solve with canceled ctx: got %v, want ErrCanceled", err)
	}
	k := EffectiveDemands(g, 3)
	if _, err := SolveFractional(g, k, FractionalOptions{T: 3, Ctx: ctx}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolveFractional with canceled ctx: got %v, want ErrCanceled", err)
	}
	frac, err := SolveFractional(g, k, FractionalOptions{T: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RoundSolution(g, k, frac.X, frac.Delta, RoundingOptions{Seed: 1, Ctx: ctx}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("RoundSolution with canceled ctx: got %v, want ErrCanceled", err)
	}
	costs := make([]float64, g.NumNodes())
	for i := range costs {
		costs[i] = 1 + float64(i%5)
	}
	if _, err := SolveWeighted(g, WeightedOptions{K: 2, T: 3, Seed: 1, Costs: costs, Ctx: ctx}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolveWeighted with canceled ctx: got %v, want ErrCanceled", err)
	}
}

// A live context must not change results: nil-Ctx and Background-Ctx runs
// are bit-identical.
func TestSolveContextNoEffectWhenLive(t *testing.T) {
	g, err := graph.Generate(graph.FamilyGnp, 120, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Solve(g, Options{K: 2, T: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, Options{K: 2, T: 3, Seed: 7, Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() {
		t.Fatalf("context changed result: %d vs %d members", a.Size(), b.Size())
	}
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatalf("context changed membership at node %d", v)
		}
	}
}
