package core

import (
	"math"
	"testing"
	"testing/quick"

	"ftclust/internal/graph"
	"ftclust/internal/lp"
	"ftclust/internal/verify"
)

func ladderCosts(n int, seed int64) []float64 {
	costs := make([]float64, n)
	s := int(uint64(seed) % 97)
	for v := range costs {
		costs[v] = 1 + float64((v*7+s)%10)
	}
	return costs
}

func TestWeightedFeasible(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Gnp(70, 0.15, seed)
		costs := ladderCosts(70, seed)
		res, err := SolveWeighted(g, WeightedOptions{K: 2, T: 3, Seed: seed, Costs: costs})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := verify.CheckKFoldVector(g, res.InSet, res.K, verify.ClosedPP); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if res.Cost <= 0 || res.FractionalCost <= 0 {
			t.Errorf("seed %d: degenerate costs %v/%v", seed, res.Cost, res.FractionalCost)
		}
	}
}

func TestWeightedPrefersCheapNodes(t *testing.T) {
	// Star where the center is cheap: the weighted solver must not pay for
	// expensive leaves when k=1.
	g := graph.Star(20)
	costs := make([]float64, 20)
	costs[0] = 1
	for v := 1; v < 20; v++ {
		costs[v] = 100
	}
	res, err := SolveWeighted(g, WeightedOptions{K: 1, T: 4, Seed: 3, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	if !res.InSet[0] {
		t.Error("cheap center not selected")
	}
	// Compare against the weighted greedy: same order of magnitude.
	c := lp.FromGraph(g, res.K)
	w, err := c.Weighted(costs)
	if err != nil {
		t.Fatal(err)
	}
	_, greedyCost := w.GreedyWeighted()
	if res.Cost > 30*greedyCost+100 {
		t.Errorf("weighted cost %v far above greedy %v", res.Cost, greedyCost)
	}
}

func TestWeightedBeatsUnweightedOnSkewedCosts(t *testing.T) {
	// With strongly skewed costs, the cost-aware variant should be cheaper
	// than the cost-blind pipeline on average.
	var wTotal, uTotal float64
	for seed := int64(0); seed < 8; seed++ {
		g := graph.Gnp(80, 0.12, seed)
		costs := make([]float64, 80)
		for v := range costs {
			if v%5 == 0 {
				costs[v] = 1
			} else {
				costs[v] = 50
			}
		}
		wres, err := SolveWeighted(g, WeightedOptions{K: 1, T: 4, Seed: seed, Costs: costs})
		if err != nil {
			t.Fatal(err)
		}
		ures, err := Solve(g, Options{K: 1, T: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		uCost := 0.0
		for v, in := range ures.InSet {
			if in {
				uCost += costs[v]
			}
		}
		wTotal += wres.Cost
		uTotal += uCost
	}
	if wTotal >= uTotal {
		t.Errorf("weighted total %v not cheaper than unweighted %v on skewed costs", wTotal, uTotal)
	}
}

func TestWeightedValidation(t *testing.T) {
	g := graph.Ring(6)
	good := []float64{1, 1, 1, 1, 1, 1}
	if _, err := SolveWeighted(g, WeightedOptions{K: 0, T: 2, Costs: good}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := SolveWeighted(g, WeightedOptions{K: 1, T: 0, Costs: good}); err == nil {
		t.Error("t=0 should fail")
	}
	if _, err := SolveWeighted(g, WeightedOptions{K: 1, T: 2, Costs: good[:3]}); err == nil {
		t.Error("cost length mismatch should fail")
	}
	if _, err := SolveWeighted(g, WeightedOptions{K: 1, T: 2,
		Costs: []float64{1, 1, -1, 1, 1, 1}}); err == nil {
		t.Error("negative cost should fail")
	}
}

func TestWeightedMatchesUnitCostBehaviour(t *testing.T) {
	// With all costs equal the effectiveness sweep reduces to the
	// unit-cost thresholds, so the fractional solutions agree.
	g := graph.Gnp(50, 0.2, 4)
	k := EffectiveDemands(g, 2)
	unit, err := SolveFractional(g, k, FractionalOptions{T: 3})
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, 50)
	for i := range costs {
		costs[i] = 2.5
	}
	res, err := SolveWeighted(g, WeightedOptions{K: 2, T: 3, Seed: 1, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	for v := range unit.X {
		if math.Abs(unit.X[v]-res.X[v]) > 1e-12 {
			t.Fatalf("node %d: unit x=%v weighted x=%v", v, unit.X[v], res.X[v])
		}
	}
}

func TestQuickWeightedAlwaysFeasible(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 5
		k := float64(kRaw%3) + 1
		g := graph.Gnp(n, 0.25, seed)
		res, err := SolveWeighted(g, WeightedOptions{
			K: k, T: 2, Seed: seed, Costs: ladderCosts(n, seed),
		})
		if err != nil {
			return false
		}
		return verify.CheckKFoldVector(g, res.InSet, res.K, verify.ClosedPP) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
