package core

import (
	"math"
	"reflect"
	"testing"

	"ftclust/internal/graph"
)

func scratchTestGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp":      graph.GnpAvgDegree(300, 8, 3),
		"grid":     graph.Grid(17, 18),
		"powerlaw": graph.PreferentialAttachment(250, 3, 5),
		"star":     graph.Star(40),
		"path":     graph.Path(60),
	}
}

// A scratch-backed solve must be bit-identical to the allocating solve —
// same primal, duals, and rounded set — including when one scratch is
// dragged across graphs of different shapes and sizes in sequence.
func TestSolveWithScratchBitIdentical(t *testing.T) {
	sc := NewScratch()
	for name, g := range scratchTestGraphs() {
		for _, localDelta := range []bool{false, true} {
			opts := Options{K: 2, T: 3, Seed: 7, LocalDelta: localDelta}
			plain, err := Solve(g, opts)
			if err != nil {
				t.Fatalf("%s: plain solve: %v", name, err)
			}
			opts.Scratch = sc
			pooled, err := Solve(g, opts)
			if err != nil {
				t.Fatalf("%s: scratch solve: %v", name, err)
			}
			if !reflect.DeepEqual(plain.InSet, pooled.InSet) {
				t.Errorf("%s localDelta=%v: InSet differs with scratch", name, localDelta)
			}
			if !reflect.DeepEqual(plain.Fractional.X, pooled.Fractional.X) ||
				!reflect.DeepEqual(plain.Fractional.Y, pooled.Fractional.Y) ||
				!reflect.DeepEqual(plain.Fractional.Z, pooled.Fractional.Z) {
				t.Errorf("%s localDelta=%v: fractional solution differs with scratch", name, localDelta)
			}
			if plain.Fractional.BetaSum != pooled.Fractional.BetaSum {
				t.Errorf("%s: BetaSum %v vs %v", name, plain.Fractional.BetaSum, pooled.Fractional.BetaSum)
			}
			if !reflect.DeepEqual(plain.K, pooled.K) {
				t.Errorf("%s: effective demands differ", name)
			}
			if !pooled.Feasible {
				t.Errorf("%s: scratch solve infeasible", name)
			}
		}
	}
}

// Scratch reuse must also be bit-identical under a worker pool (the
// parallel path shares the arena across sweep goroutines).
func TestSolveWithScratchParallelBitIdentical(t *testing.T) {
	g := graph.GnpAvgDegree(400, 10, 11)
	plain, err := Solve(g, Options{K: 3, T: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	for _, workers := range []int{2, 4, 8} {
		pooled, err := Solve(g, Options{K: 3, T: 3, Seed: 5, Workers: workers, Scratch: sc})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.InSet, pooled.InSet) ||
			!reflect.DeepEqual(plain.Fractional.X, pooled.Fractional.X) {
			t.Errorf("workers=%d: scratch+parallel result differs from sequential", workers)
		}
	}
}

// SolveFractional and RoundSolution honor the scratch on their own too.
func TestPhasesWithScratchBitIdentical(t *testing.T) {
	g := graph.GnpAvgDegree(250, 9, 2)
	k := EffectiveDemands(g, 2)
	plainFrac, err := SolveFractional(g, k, FractionalOptions{T: 3})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	pooledFrac, err := SolveFractional(g, k, FractionalOptions{T: 3, Scratch: sc})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainFrac.X, pooledFrac.X) {
		t.Error("SolveFractional differs with scratch")
	}
	plainRound, err := RoundSolution(g, k, plainFrac.X, plainFrac.Delta, RoundingOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Copy X: the scratch-owned vector is invalidated by the next
	// scratch-backed call.
	x := append([]float64(nil), pooledFrac.X...)
	pooledRound, err := RoundSolution(g, k, x, pooledFrac.Delta, RoundingOptions{Seed: 9, Scratch: sc})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainRound.InSet, pooledRound.InSet) ||
		plainRound.Sampled != pooledRound.Sampled || plainRound.Repaired != pooledRound.Repaired {
		t.Error("RoundSolution differs with scratch")
	}
}

// Scratch results alias the arena: a second solve overwrites the first
// result's backing arrays. This is the documented contract — assert it so
// a future change to copying semantics updates the docs too.
func TestScratchResultsAliasArena(t *testing.T) {
	g1 := graph.Star(30) // k=1 on a star: tiny solution
	g2 := graph.Complete(30)
	sc := NewScratch()
	r1, err := Solve(g1, Options{K: 1, T: 2, Seed: 1, Scratch: sc})
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]bool(nil), r1.InSet...)
	if _, err := Solve(g2, Options{K: 5, T: 2, Seed: 1, Scratch: sc}); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(saved, r1.InSet) {
		t.Skip("arena happened to produce identical masks; aliasing not observable here")
	}
}

// The whole point: steady-state scratch-backed solves allocate (almost)
// nothing. PR 1's baseline was a constant ~38 allocs/op for the
// fractional phase alone plus ~n for the rounding streams; the pooled
// arena must run the full pipeline in ≤ 4 allocs/op. Observer: nil is
// spelled out because the nil-observer path must stay allocation- and
// clock-free (instrumentation only arms when an observer is installed).
func TestSolveWithScratchSteadyStateAllocs(t *testing.T) {
	g := graph.GnpAvgDegree(500, 10, 3)
	sc := NewScratch()
	opts := Options{K: 2, T: 3, Seed: 7, Scratch: sc, Observer: nil}
	// Warm the arena.
	if _, err := Solve(g, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Solve(g, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("steady-state scratch solve: %v allocs/op, want ≤ 4", allocs)
	}
}

// Growing and shrinking: a scratch warmed on a big graph must still be
// correct on a small one and vice versa (stale tail state from the larger
// run must never leak into the smaller solve).
func TestScratchShrinkNoStaleState(t *testing.T) {
	big := graph.GnpAvgDegree(600, 12, 1)
	small := graph.Ring(25)
	sc := NewScratch()
	if _, err := Solve(big, Options{K: 3, T: 3, Seed: 2, Scratch: sc}); err != nil {
		t.Fatal(err)
	}
	pooled, err := Solve(small, Options{K: 2, T: 2, Seed: 4, Scratch: sc})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Solve(small, Options{K: 2, T: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.InSet, pooled.InSet) ||
		!reflect.DeepEqual(plain.Fractional.X, pooled.Fractional.X) {
		t.Error("shrunk scratch solve differs from fresh solve")
	}
	if math.Abs(plain.Fractional.BetaSum-pooled.Fractional.BetaSum) != 0 {
		t.Error("BetaSum differs after shrink")
	}
}

func BenchmarkSolveScratch(b *testing.B) {
	g := graph.GnpAvgDegree(1000, 12, 3)
	for _, mode := range []string{"fresh", "scratch"} {
		b.Run(mode, func(b *testing.B) {
			opts := Options{K: 2, T: 3, Seed: 7}
			if mode == "scratch" {
				opts.Scratch = NewScratch()
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
