package core

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is returned (wrapped) when a solve is abandoned because its
// context was canceled or its deadline expired. The engines check the
// context between communication rounds, so cancellation latency is one
// round's worth of work, not the whole O(t²) loop.
var ErrCanceled = errors.New("core: solve canceled")

// checkCtx translates a done context into a wrapped ErrCanceled; a nil
// context never cancels, preserving the zero-value behaviour of the
// options structs.
func checkCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	return nil
}
