package core

import (
	"math"
	"testing"
	"testing/quick"

	"ftclust/internal/graph"
	"ftclust/internal/lp"
	"ftclust/internal/verify"
)

func TestFractionalFeasible(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		k    float64
		t    int
	}{
		{"path k=1 t=2", graph.Path(10), 1, 2},
		{"ring k=2 t=3", graph.Ring(12), 2, 3},
		{"gnp k=3 t=4", graph.Gnp(80, 0.15, 1), 3, 4},
		{"star k=2 t=2", graph.Star(15), 2, 2},
		{"grid k=2 t=5", graph.Grid(8, 8), 2, 5},
		{"tree k=1 t=1", graph.RandomTree(40, 2), 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			k := EffectiveDemands(tt.g, tt.k)
			res, err := SolveFractional(tt.g, k, FractionalOptions{T: tt.t})
			if err != nil {
				t.Fatalf("SolveFractional: %v", err)
			}
			c := lp.FromGraph(tt.g, k)
			if err := c.CheckPrimal(res.X, 1e-9); err != nil {
				t.Errorf("primal infeasible: %v", err)
			}
			if res.LoopRounds != 2*tt.t*tt.t {
				t.Errorf("LoopRounds = %d, want %d", res.LoopRounds, 2*tt.t*tt.t)
			}
		})
	}
}

func TestTheorem45RatioBound(t *testing.T) {
	// Σx ≤ t((Δ+1)^{2/t}+(Δ+1)^{1/t})·OPT_f across families, k and t.
	graphs := []*graph.Graph{
		graph.Gnp(60, 0.2, 3),
		graph.Grid(7, 7),
		graph.RandomTree(50, 4),
		graph.PreferentialAttachment(60, 3, 5),
	}
	for gi, g := range graphs {
		for _, kk := range []float64{1, 2, 4} {
			for _, tt := range []int{1, 2, 3, 5} {
				k := EffectiveDemands(g, kk)
				res, err := SolveFractional(g, k, FractionalOptions{T: tt})
				if err != nil {
					t.Fatalf("graph %d: %v", gi, err)
				}
				c := lp.FromGraph(g, k)
				_, opt, err := c.SolveFractional()
				if err != nil {
					t.Fatalf("graph %d: lp: %v", gi, err)
				}
				ratio := res.Objective() / opt
				bound := TheoreticalRatio(tt, res.Delta)
				if ratio > bound+1e-9 {
					t.Errorf("graph %d k=%v t=%d: ratio %.3f exceeds bound %.3f",
						gi, kk, tt, ratio, bound)
				}
				if ratio < 1-1e-9 {
					t.Errorf("graph %d k=%v t=%d: ratio %.3f below 1", gi, kk, tt, ratio)
				}
			}
		}
	}
}

func TestLemma43DualFittingIdentity(t *testing.T) {
	// Σ(k_i·y_i − z_i) = Σβ exactly (to float tolerance).
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Gnp(50, 0.2, seed)
		k := EffectiveDemands(g, 2)
		res, err := SolveFractional(g, k, FractionalOptions{T: 3})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		lhs := res.DualObjective(k)
		if math.Abs(lhs-res.BetaSum) > 1e-8*(1+math.Abs(res.BetaSum)) {
			t.Errorf("seed %d: dual objective %v ≠ Σβ %v", seed, lhs, res.BetaSum)
		}
	}
}

func TestLemma44DualFeasibleUpToKappa(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Gnp(50, 0.25, seed)
		for _, tt := range []int{1, 2, 4} {
			k := EffectiveDemands(g, 3)
			res, err := SolveFractional(g, k, FractionalOptions{T: tt})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			c := lp.FromGraph(g, k)
			if err := c.CheckDualNonNegative(res.Y, res.Z, 1e-9); err != nil {
				t.Errorf("seed %d t=%d: %v", seed, tt, err)
			}
			if viol := c.DualViolation(res.Y, res.Z); viol > res.Kappa+1e-9 {
				t.Errorf("seed %d t=%d: dual violation %v exceeds κ %v", seed, tt, viol, res.Kappa)
			}
		}
	}
}

func TestDualCertificateLowerBoundsOPT(t *testing.T) {
	// Scaling the dual by 1/κ gives a feasible dual solution, so
	// DualObjective/κ ≤ OPT_f by weak duality — the certificate users can
	// check without solving an LP.
	g := graph.Gnp(40, 0.25, 7)
	k := EffectiveDemands(g, 2)
	res, err := SolveFractional(g, k, FractionalOptions{T: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := lp.FromGraph(g, k)
	_, opt, err := c.SolveFractional()
	if err != nil {
		t.Fatal(err)
	}
	cert := res.DualObjective(k) / res.Kappa
	if cert > opt+1e-6 {
		t.Errorf("certificate %v exceeds OPT_f %v", cert, opt)
	}
	if cert <= 0 {
		t.Errorf("certificate %v should be positive", cert)
	}
}

func TestRoundingFeasibleWithRepair(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.Gnp(60, 0.15, seed)
		k := EffectiveDemands(g, 2)
		frac, err := SolveFractional(g, k, FractionalOptions{T: 3})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r, err := RoundSolution(g, k, frac.X, frac.Delta, RoundingOptions{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := verify.CheckKFoldVector(g, r.InSet, k, verify.ClosedPP); err != nil {
			t.Errorf("seed %d: rounded solution infeasible: %v", seed, err)
		}
		if r.Size() != r.Sampled+r.Repaired {
			t.Errorf("seed %d: size %d ≠ sampled %d + repaired %d",
				seed, r.Size(), r.Sampled, r.Repaired)
		}
	}
}

func TestRoundingWithoutRepairCanFail(t *testing.T) {
	// Ablation: with the REQ step disabled, some instance/seed must yield
	// an infeasible solution — that is the point of the repair step. The
	// ring with the uniform fractional optimum x ≡ 1/3 keeps sampling
	// probabilities far from 1, so per-node coverage failures occur with
	// constant probability.
	g := graph.Ring(90)
	k := EffectiveDemands(g, 1)
	x := make([]float64, g.NumNodes())
	for i := range x {
		x[i] = 1.0 / 3.0
	}
	failures := 0
	for seed := int64(0); seed < 10; seed++ {
		r, err := RoundSolution(g, k, x, g.MaxDegree(), RoundingOptions{Seed: seed, SkipRepair: true})
		if err != nil {
			t.Fatal(err)
		}
		if verify.CheckKFoldVector(g, r.InSet, k, verify.ClosedPP) != nil {
			failures++
		}
		if r.Repaired != 0 {
			t.Fatalf("seed %d: SkipRepair produced repairs", seed)
		}
		// With repair on, the same instance is always feasible.
		rr, err := RoundSolution(g, k, x, g.MaxDegree(), RoundingOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.CheckKFoldVector(g, rr.InSet, k, verify.ClosedPP); err != nil {
			t.Fatalf("seed %d: repaired still infeasible: %v", seed, err)
		}
	}
	if failures == 0 {
		t.Error("rounding without repair never failed across 10 seeds; ablation meaningless")
	}
}

func TestSolveEndToEnd(t *testing.T) {
	g := graph.Gnp(100, 0.12, 9)
	res, err := Solve(g, Options{K: 3, T: 3, Seed: 42})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Feasible {
		t.Error("solution not feasible")
	}
	if err := verify.CheckKFoldVector(g, res.InSet, res.K, verify.ClosedPP); err != nil {
		t.Errorf("verification: %v", err)
	}
	if res.Size() == 0 {
		t.Error("empty solution")
	}
	// Also satisfies the Section 1 (standard) definition.
	if err := verify.CheckKFold(g, res.InSet, 3, verify.Standard); err != nil {
		t.Errorf("standard-convention check: %v", err)
	}
}

func TestSolveValidatesInputs(t *testing.T) {
	g := graph.Ring(5)
	if _, err := Solve(g, Options{K: 0, T: 2}); err == nil {
		t.Error("k=0 should be rejected")
	}
	if _, err := Solve(g, Options{K: 1, T: 0}); err == nil {
		t.Error("t=0 should be rejected")
	}
	if _, err := SolveFractional(g, []float64{1, 1}, FractionalOptions{T: 1}); err == nil {
		t.Error("k-length mismatch should be rejected")
	}
}

func TestQuickSolveAlwaysFeasible(t *testing.T) {
	f := func(seed int64, nRaw, kRaw, tRaw uint8) bool {
		n := int(nRaw%40) + 5
		k := float64(kRaw%4) + 1
		tt := int(tRaw%4) + 1
		g := graph.Gnp(n, 0.25, seed)
		res, err := Solve(g, Options{K: k, T: tt, Seed: seed})
		if err != nil {
			return false
		}
		return res.Feasible &&
			verify.CheckKFoldVector(g, res.InSet, res.K, verify.ClosedPP) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLocalDeltaVariantFeasible(t *testing.T) {
	g := graph.PreferentialAttachment(80, 2, 3) // heavy degree spread
	res, err := Solve(g, Options{K: 2, T: 3, Seed: 1, LocalDelta: true})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Feasible {
		t.Error("LocalDelta solution infeasible")
	}
}

func TestPerNodeDemandVector(t *testing.T) {
	g := graph.Grid(6, 6)
	k := make([]float64, g.NumNodes())
	for v := range k {
		k[v] = float64(1 + v%3)
	}
	res, err := SolveFractional(g, k, FractionalOptions{T: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := lp.FromGraph(g, k)
	if err := c.CheckPrimal(res.X, 1e-9); err != nil {
		t.Errorf("per-node demands: %v", err)
	}
	r, err := RoundSolution(g, k, res.X, res.Delta, RoundingOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckKFoldVector(g, r.InSet, k, verify.ClosedPP); err != nil {
		t.Errorf("rounded per-node demands: %v", err)
	}
}

func TestEffectiveDemandsCap(t *testing.T) {
	g := graph.Path(3) // degrees 1,2,1
	k := EffectiveDemands(g, 5)
	want := []float64{2, 3, 2}
	for i := range k {
		if k[i] != want[i] {
			t.Errorf("k[%d] = %v, want %v", i, k[i], want[i])
		}
	}
}

func TestClosedNeighborhoodSorted(t *testing.T) {
	g := graph.Star(5)
	got := ClosedNeighborhood(g, 0)
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("not sorted")
		}
	}
	leaf := ClosedNeighborhood(g, 3)
	if len(leaf) != 2 || leaf[0] != 0 || leaf[1] != 3 {
		t.Errorf("leaf closed nbhd = %v", leaf)
	}
}

func TestTheoreticalFormulas(t *testing.T) {
	// t=1: ratio bound = (Δ+1)² + (Δ+1).
	if got, want := TheoreticalRatio(1, 9), 110.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("TheoreticalRatio(1,9) = %v, want %v", got, want)
	}
	// Larger t improves (weakly) the bound for fixed Δ in the regime t ≤ ln Δ.
	if TheoreticalRatio(4, 1000) > TheoreticalRatio(1, 1000) {
		t.Error("bound should improve from t=1 to t=4 at Δ=1000")
	}
	if lb := LowerBoundRatio(2, 100); math.Abs(lb-5) > 1e-9 {
		t.Errorf("LowerBoundRatio(2,100) = %v, want 5", lb)
	}
	if b := RoundingBlowupBound(0); math.Abs(b-2) > 1e-9 {
		t.Errorf("RoundingBlowupBound(0) = %v, want 2", b)
	}
}
