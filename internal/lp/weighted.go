package lp

import (
	"fmt"
	"math"
)

// Weighted covering support: the paper notes (Section 4.1) that Algorithm 1
// "can be extended to also solve the weighted version of the k-MDS
// problem". This file gives the weighted LP machinery that extension is
// measured against: min Σ c_j·x_j subject to the same covering
// constraints.

// WeightedCovering augments a Covering with per-variable costs.
type WeightedCovering struct {
	Covering
	// Costs[j] > 0 is the cost of variable j.
	Costs []float64
}

// Weighted attaches costs to a covering instance.
func (c Covering) Weighted(costs []float64) (WeightedCovering, error) {
	if len(costs) != c.NumVars {
		return WeightedCovering{}, fmt.Errorf("lp: %d costs for %d variables", len(costs), c.NumVars)
	}
	for j, w := range costs {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return WeightedCovering{}, fmt.Errorf("lp: invalid cost %v at %d", w, j)
		}
	}
	return WeightedCovering{Covering: c, Costs: costs}, nil
}

// WeightedObjective returns Σ c_j·x_j.
func (w WeightedCovering) WeightedObjective(x []float64) float64 {
	s := 0.0
	for j, v := range x {
		s += w.Costs[j] * v
	}
	return s
}

// CostOfSet returns the total cost of a selection mask.
func (w WeightedCovering) CostOfSet(inS []bool) float64 {
	s := 0.0
	for j, in := range inS {
		if in {
			s += w.Costs[j]
		}
	}
	return s
}

// SolveFractionalWeighted computes the weighted fractional optimum with the
// same two-phase simplex as the unit-cost solver; only the phase-2
// objective changes.
func (w WeightedCovering) SolveFractionalWeighted() ([]float64, float64, error) {
	// Scale trick: substitute x'_j = x_j so the tableau is identical; we
	// run the generic solver with the cost row set to Costs.
	return solveCoveringLP(w.Covering, w.Costs)
}

// GreedyWeighted runs the cost-effectiveness greedy (gain per unit cost),
// the classical H_Δ-approximation for weighted multicover [21].
func (w WeightedCovering) GreedyWeighted() ([]bool, float64) {
	residual := make([]float64, len(w.Rows))
	copy(residual, w.Demand)
	varRows := make([][]int, w.NumVars)
	for i, row := range w.Rows {
		for _, j := range row {
			varRows[j] = append(varRows[j], i)
		}
	}
	chosen := make([]bool, w.NumVars)
	total := 0.0
	for {
		bestJ := -1
		bestEff := 0.0
		for j := 0; j < w.NumVars; j++ {
			if chosen[j] {
				continue
			}
			gain := 0.0
			for _, i := range varRows[j] {
				if residual[i] > 0 {
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			eff := gain / w.Costs[j]
			if eff > bestEff {
				bestEff, bestJ = eff, j
			}
		}
		if bestJ < 0 {
			break
		}
		chosen[bestJ] = true
		total += w.Costs[bestJ]
		for _, i := range varRows[bestJ] {
			if residual[i] > 0 {
				residual[i]--
			}
		}
	}
	return chosen, total
}
