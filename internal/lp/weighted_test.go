package lp

import (
	"math"
	"testing"
	"testing/quick"

	"ftclust/internal/graph"
)

func TestWeightedValidation(t *testing.T) {
	c := FromGraph(graph.Ring(4), UniformK(4, 1))
	if _, err := c.Weighted([]float64{1, 1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := c.Weighted([]float64{1, -1, 1, 1}); err == nil {
		t.Error("negative cost should fail")
	}
	if _, err := c.Weighted([]float64{1, math.NaN(), 1, 1}); err == nil {
		t.Error("NaN cost should fail")
	}
	if _, err := c.Weighted([]float64{1, math.Inf(1), 1, 1}); err == nil {
		t.Error("Inf cost should fail")
	}
	if _, err := c.Weighted([]float64{1, 2, 3, 4}); err != nil {
		t.Errorf("valid costs rejected: %v", err)
	}
}

func TestWeightedLPKnownOptimum(t *testing.T) {
	// Star with cheap center: weighted optimum for k=1 selects x_center = 1.
	g := graph.Star(6)
	c := FromGraph(g, UniformK(6, 1))
	costs := []float64{1, 10, 10, 10, 10, 10}
	w, err := c.Weighted(costs)
	if err != nil {
		t.Fatal(err)
	}
	x, obj, err := w.SolveFractionalWeighted()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-1) > 1e-6 {
		t.Errorf("weighted OPT = %v, want 1", obj)
	}
	if math.Abs(x[0]-1) > 1e-6 {
		t.Errorf("x_center = %v, want 1", x[0])
	}
	if math.Abs(w.WeightedObjective(x)-obj) > 1e-9 {
		t.Error("objective accessor disagrees with solver")
	}
}

func TestWeightedGreedyCoversAndRespectsCosts(t *testing.T) {
	g := graph.Star(10)
	c := FromGraph(g, UniformK(10, 1))
	costs := make([]float64, 10)
	costs[0] = 2 // center is mildly expensive but covers everyone
	for v := 1; v < 10; v++ {
		costs[v] = 1
	}
	w, err := c.Weighted(costs)
	if err != nil {
		t.Fatal(err)
	}
	mask, total := w.GreedyWeighted()
	if err := c.CheckIntegralCover(mask); err != nil {
		t.Fatalf("greedy not a cover: %v", err)
	}
	// Center covers 10 constraints at effectiveness 5; best pick.
	if !mask[0] || total != 2 {
		t.Errorf("greedy mask[0]=%v total=%v, want center only (cost 2)", mask[0], total)
	}
	if got := w.CostOfSet(mask); got != total {
		t.Errorf("CostOfSet = %v, total = %v", got, total)
	}
}

func TestQuickWeightedLPBelowGreedy(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%18) + 3
		k := float64(kRaw%2) + 1
		g := graph.Gnp(n, 0.4, seed)
		c := FromGraph(g, UniformK(n, k))
		costs := make([]float64, n)
		for v := range costs {
			costs[v] = 1 + float64(v%5)
		}
		w, err := c.Weighted(costs)
		if err != nil {
			return false
		}
		_, opt, err := w.SolveFractionalWeighted()
		if err != nil {
			return false
		}
		mask, total := w.GreedyWeighted()
		if c.CheckIntegralCover(mask) != nil {
			return false
		}
		return opt <= total+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
