package lp

import (
	"fmt"
	"math"
)

// SolveExact computes the exact integral optimum of the covering instance
// by branch and bound with LP-relaxation bounds: at each node a variable is
// fixed to 1 or 0, the residual LP is solved, and branches whose rounded-up
// bound cannot beat the incumbent are pruned. The greedy solution seeds the
// incumbent. Intended for small instances (tens of variables); it is the
// ground truth the experiment suite cross-checks OPT_f and the
// approximation ratios against.
func (c Covering) SolveExact(maxNodes int) ([]bool, int, error) {
	if err := c.checkFeasibleShape(); err != nil {
		return nil, 0, err
	}
	bestMask, bestSize := c.Greedy()
	if err := c.CheckIntegralCover(bestMask); err != nil {
		return nil, 0, fmt.Errorf("lp: instance infeasible: %w", err)
	}

	s := &bnbState{
		c:        c,
		bestMask: append([]bool(nil), bestMask...),
		bestSize: bestSize,
		fixed:    make([]int8, c.NumVars), // -1 free, 0 fixed-out, 1 fixed-in
		budget:   maxNodes,
	}
	for j := range s.fixed {
		s.fixed[j] = -1
	}
	if err := s.search(0); err != nil {
		return nil, 0, err
	}
	return s.bestMask, s.bestSize, nil
}

func (c Covering) checkFeasibleShape() error {
	for i, row := range c.Rows {
		if c.Demand[i] > float64(len(row))+1e-9 {
			return fmt.Errorf("lp: row %d demand %v exceeds row size %d", i, c.Demand[i], len(row))
		}
	}
	return nil
}

type bnbState struct {
	c        Covering
	bestMask []bool
	bestSize int
	fixed    []int8
	budget   int
}

var errBudget = fmt.Errorf("lp: branch-and-bound node budget exhausted")

func (s *bnbState) search(onesSoFar int) error {
	if s.budget <= 0 {
		return errBudget
	}
	s.budget--

	sub, ok := s.residual()
	if !ok {
		return nil // infeasible branch
	}
	if sub.NumVars == 0 || len(sub.Rows) == 0 {
		// All demands met (rows empty): candidate solution of size onesSoFar
		// — but only valid if no residual demand remains.
		if len(sub.Rows) == 0 && onesSoFar < s.bestSize {
			s.record(onesSoFar)
		}
		return nil
	}
	x, obj, err := sub.SolveFractional()
	if err != nil {
		return nil // residual LP infeasible ⇒ prune
	}
	bound := onesSoFar + int(math.Ceil(obj-1e-6))
	if bound >= s.bestSize {
		return nil
	}
	// Integral LP solution closes the node immediately.
	if frac := mostFractional(x); frac < 0 {
		size := onesSoFar
		for j, v := range x {
			if v > 0.5 {
				s.fixed[sub.origVar[j]] = 1
				size++
			}
		}
		if size < s.bestSize {
			s.record(size)
		}
		for j, v := range x {
			if v > 0.5 {
				s.fixed[sub.origVar[j]] = -1
			}
		}
		return nil
	} else {
		branch := sub.origVar[frac]
		// Try including first: finds improving incumbents sooner.
		s.fixed[branch] = 1
		if err := s.search(onesSoFar + 1); err != nil {
			s.fixed[branch] = -1
			return err
		}
		s.fixed[branch] = 0
		if err := s.search(onesSoFar); err != nil {
			s.fixed[branch] = -1
			return err
		}
		s.fixed[branch] = -1
	}
	return nil
}

func (s *bnbState) record(size int) {
	s.bestSize = size
	for j := range s.bestMask {
		s.bestMask[j] = s.fixed[j] == 1
	}
}

// residualCovering is a covering sub-instance plus the mapping back to
// original variable indices.
type residualCovering struct {
	Covering
	origVar []int
}

// residual builds the sub-instance induced by the current fixing: fixed-in
// variables reduce demands, fixed-out variables vanish, satisfied rows are
// dropped. ok is false when some row cannot be satisfied anymore.
func (s *bnbState) residual() (residualCovering, bool) {
	newIdx := make([]int, s.c.NumVars)
	var orig []int
	nv := 0
	for j := range newIdx {
		if s.fixed[j] == -1 {
			newIdx[j] = nv
			orig = append(orig, j)
			nv++
		} else {
			newIdx[j] = -1
		}
	}
	var rows [][]int
	var dem []float64
	for i, row := range s.c.Rows {
		d := s.c.Demand[i]
		var free []int
		for _, j := range row {
			switch s.fixed[j] {
			case 1:
				d--
			case -1:
				free = append(free, newIdx[j])
			}
		}
		if d <= 1e-9 {
			continue
		}
		if d > float64(len(free))+1e-9 {
			return residualCovering{}, false
		}
		rows = append(rows, free)
		dem = append(dem, d)
	}
	return residualCovering{
		Covering: Covering{NumVars: nv, Rows: rows, Demand: dem},
		origVar:  orig,
	}, true
}

// mostFractional returns the index of the variable farthest from integer,
// or -1 if all entries are integral within tolerance.
func mostFractional(x []float64) int {
	best, bestDist := -1, 1e-6
	for j, v := range x {
		d := math.Min(v, 1-v)
		if d > bestDist {
			bestDist = d
			best = j
		}
	}
	return best
}
