// Package lp provides the linear-programming substrate for the paper's
// Section 4: the covering LP (PP) and its dual (DP), feasibility and
// duality checkers, a dense two-phase simplex solver used to compute the
// fractional optimum OPT_f that approximation ratios are measured against,
// an exact branch-and-bound integer solver for small instances, the
// classical greedy multicover algorithm, and combinatorial lower bounds.
//
// The primal (PP) is
//
//	min Σ x_j   s.t.  ∀i: Σ_{j∈N_i} x_j ≥ k_i,  0 ≤ x_j ≤ 1,
//
// and the dual (DP) is
//
//	max Σ (k_i·y_i − z_i)   s.t.  ∀j: Σ_{i: j∈N_i} y_i − z_j ≤ 1,  y, z ≥ 0.
package lp

import (
	"fmt"
	"math"

	"ftclust/internal/graph"
)

// Covering is an instance of the covering LP: constraint i requires the
// variables listed in Rows[i] to sum to at least Demand[i]; every variable
// lies in [0, 1]. For k-MDS instances built from a graph, Rows[i] is the
// closed neighborhood N_i and constraint i and variable i both correspond
// to node i, but the type supports arbitrary set-multicover systems.
type Covering struct {
	// NumVars is the number of variables.
	NumVars int
	// Rows[i] lists the variable indices appearing in constraint i.
	Rows [][]int
	// Demand[i] is the right-hand side k_i of constraint i.
	Demand []float64
}

// FromGraph builds the k-MDS covering LP of the paper: one variable and one
// constraint per node, Rows[i] = closed neighborhood of node i, Demand[i] =
// k[i] (capped at |N_i| so the instance is always feasible, mirroring the
// paper's feasibility requirement k_i ≤ δ(v_i)+1).
func FromGraph(g *graph.Graph, k []float64) Covering {
	n := g.NumNodes()
	rows := make([][]int, n)
	dem := make([]float64, n)
	for v := 0; v < n; v++ {
		ns := g.Neighbors(graph.NodeID(v))
		row := make([]int, 0, len(ns)+1)
		row = append(row, v)
		for _, w := range ns {
			row = append(row, int(w))
		}
		rows[v] = row
		dem[v] = math.Min(k[v], float64(len(row)))
	}
	return Covering{NumVars: n, Rows: rows, Demand: dem}
}

// UniformK returns the demand vector k_i = k for n nodes.
func UniformK(n int, k float64) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = k
	}
	return d
}

// Objective returns Σ x_j.
func (c Covering) Objective(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// CheckPrimal verifies that x is feasible for (PP) within tol.
func (c Covering) CheckPrimal(x []float64, tol float64) error {
	if len(x) != c.NumVars {
		return fmt.Errorf("lp: x has %d entries, want %d", len(x), c.NumVars)
	}
	for j, v := range x {
		if v < -tol || v > 1+tol {
			return fmt.Errorf("lp: x[%d] = %v outside [0,1]", j, v)
		}
	}
	for i, row := range c.Rows {
		s := 0.0
		for _, j := range row {
			s += x[j]
		}
		if s < c.Demand[i]-tol {
			return fmt.Errorf("lp: constraint %d: coverage %v < demand %v", i, s, c.Demand[i])
		}
	}
	return nil
}

// DualObjective returns Σ (k_i·y_i − z_i).
func (c Covering) DualObjective(y, z []float64) float64 {
	s := 0.0
	for i := range y {
		s += c.Demand[i]*y[i] - z[i]
	}
	return s
}

// DualViolation returns the largest left-hand side Σ_{i: j∈N_i} y_i − z_j
// over all variables j. A feasible dual solution has violation ≤ 1;
// Lemma 4.4 proves Algorithm 1's dual is feasible up to κ = t(Δ+1)^{1/t},
// i.e. violation ≤ κ.
func (c Covering) DualViolation(y, z []float64) float64 {
	lhs := make([]float64, c.NumVars)
	for i, row := range c.Rows {
		for _, j := range row {
			lhs[j] += y[i]
		}
	}
	worst := math.Inf(-1)
	for j := range lhs {
		if v := lhs[j] - z[j]; v > worst {
			worst = v
		}
	}
	return worst
}

// CheckDualNonNegative verifies y, z ≥ 0 within tol.
func (c Covering) CheckDualNonNegative(y, z []float64, tol float64) error {
	for i, v := range y {
		if v < -tol {
			return fmt.Errorf("lp: y[%d] = %v negative", i, v)
		}
	}
	for i, v := range z {
		if v < -tol {
			return fmt.Errorf("lp: z[%d] = %v negative", i, v)
		}
	}
	return nil
}

// CheckIntegralCover verifies that the 0/1 vector selecting set S satisfies
// every constraint: Σ_{j∈Rows[i]} [j ∈ S] ≥ Demand[i].
func (c Covering) CheckIntegralCover(inS []bool) error {
	for i, row := range c.Rows {
		got := 0.0
		for _, j := range row {
			if inS[j] {
				got++
			}
		}
		if got < c.Demand[i] {
			return fmt.Errorf("lp: constraint %d: %v of %v covered", i, got, c.Demand[i])
		}
	}
	return nil
}

// LowerBoundDegree returns the combinatorial bound OPT_f ≥ ΣDemand / F where
// F is the largest number of constraints any single variable appears in
// (Δ+1 for graph instances) — each unit of x pays into at most F constraints.
func (c Covering) LowerBoundDegree() float64 {
	freq := make([]int, c.NumVars)
	for _, row := range c.Rows {
		for _, j := range row {
			freq[j]++
		}
	}
	maxF := 1
	for _, f := range freq {
		if f > maxF {
			maxF = f
		}
	}
	total := 0.0
	for _, d := range c.Demand {
		total += d
	}
	return total / float64(maxF)
}

// LowerBoundDemand returns max_i Demand[i]: any integral solution must pick
// at least k_i variables inside constraint i (variables are capped at 1).
func (c Covering) LowerBoundDemand() float64 {
	best := 0.0
	for _, d := range c.Demand {
		if d > best {
			best = d
		}
	}
	return best
}

// Greedy runs the classical greedy multicover algorithm (the adaptation of
// Chvátal's set-cover greedy analyzed in [20, 21]): repeatedly add the
// variable that reduces the largest amount of residual demand. It returns
// the chosen set as a bool mask and its size; the result is an
// H(Δ+1)-approximation of the integral optimum.
func (c Covering) Greedy() ([]bool, int) {
	residual := make([]float64, len(c.Demand))
	copy(residual, c.Demand)
	// varRows[j] lists the constraints variable j appears in.
	varRows := make([][]int, c.NumVars)
	for i, row := range c.Rows {
		for _, j := range row {
			varRows[j] = append(varRows[j], i)
		}
	}
	chosen := make([]bool, c.NumVars)
	size := 0
	for {
		bestJ, bestGain := -1, 0.0
		for j := 0; j < c.NumVars; j++ {
			if chosen[j] {
				continue
			}
			gain := 0.0
			for _, i := range varRows[j] {
				if residual[i] > 0 {
					gain++
				}
			}
			if gain > bestGain {
				bestGain, bestJ = gain, j
			}
		}
		if bestJ < 0 {
			break
		}
		chosen[bestJ] = true
		size++
		for _, i := range varRows[bestJ] {
			if residual[i] > 0 {
				residual[i]--
			}
		}
	}
	return chosen, size
}
