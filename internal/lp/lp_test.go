package lp

import (
	"math"
	"testing"
	"testing/quick"

	"ftclust/internal/graph"
)

func TestFromGraphShapes(t *testing.T) {
	g := graph.Star(5)
	c := FromGraph(g, UniformK(5, 2))
	if c.NumVars != 5 || len(c.Rows) != 5 {
		t.Fatalf("vars=%d rows=%d", c.NumVars, len(c.Rows))
	}
	// Center's row has all 5 nodes; leaves have 2.
	if len(c.Rows[0]) != 5 {
		t.Errorf("center row size = %d, want 5", len(c.Rows[0]))
	}
	for v := 1; v < 5; v++ {
		if len(c.Rows[v]) != 2 {
			t.Errorf("leaf %d row size = %d, want 2", v, len(c.Rows[v]))
		}
	}
	// Demands capped at closed-neighborhood size.
	c2 := FromGraph(graph.Path(2), UniformK(2, 5))
	for i, d := range c2.Demand {
		if d != 2 {
			t.Errorf("capped demand[%d] = %v, want 2", i, d)
		}
	}
}

func TestCheckPrimal(t *testing.T) {
	g := graph.Path(3)
	c := FromGraph(g, UniformK(3, 1))
	if err := c.CheckPrimal([]float64{0, 1, 0}, 1e-9); err != nil {
		t.Errorf("center-only should be feasible: %v", err)
	}
	if err := c.CheckPrimal([]float64{1, 0, 0}, 1e-9); err == nil {
		t.Error("endpoint-only should be infeasible (node 2 uncovered)")
	}
	if err := c.CheckPrimal([]float64{0, 1.5, 0}, 1e-9); err == nil {
		t.Error("x > 1 should be rejected")
	}
	if err := c.CheckPrimal([]float64{0, 1}, 1e-9); err == nil {
		t.Error("wrong length should be rejected")
	}
}

func TestDualMachinery(t *testing.T) {
	g := graph.Path(3)
	c := FromGraph(g, UniformK(3, 1))
	y := []float64{0.5, 0, 0.5}
	z := []float64{0, 0, 0}
	// Variable 1 (middle) appears in all three rows: lhs = 1.
	if v := c.DualViolation(y, z); math.Abs(v-1) > 1e-12 {
		t.Errorf("DualViolation = %v, want 1", v)
	}
	if got := c.DualObjective(y, z); math.Abs(got-1) > 1e-12 {
		t.Errorf("DualObjective = %v, want 1", got)
	}
	if err := c.CheckDualNonNegative(y, z, 0); err != nil {
		t.Errorf("non-negative check: %v", err)
	}
	if err := c.CheckDualNonNegative([]float64{-1, 0, 0}, z, 1e-9); err == nil {
		t.Error("negative y should be rejected")
	}
}

func TestGreedyCoversAndIsReasonable(t *testing.T) {
	g := graph.Star(10)
	c := FromGraph(g, UniformK(10, 1))
	mask, size := c.Greedy()
	if err := c.CheckIntegralCover(mask); err != nil {
		t.Fatalf("greedy output not a cover: %v", err)
	}
	if size != 1 || !mask[0] {
		t.Errorf("greedy on star should pick only the center; size=%d", size)
	}
	// k=2 on a star: every leaf needs 2 of {leaf, center}: all nodes chosen.
	c2 := FromGraph(g, UniformK(10, 2))
	mask2, size2 := c2.Greedy()
	if err := c2.CheckIntegralCover(mask2); err != nil {
		t.Fatalf("greedy k=2 not a cover: %v", err)
	}
	if size2 != 10 {
		t.Errorf("greedy k=2 on star size = %d, want 10", size2)
	}
}

func TestSimplexKnownOptima(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		k    float64
		want float64
	}{
		// Star, k=1: x_center = 1 covers everyone.
		{"star k=1", graph.Star(8), 1, 1},
		// Star, k=2: leaf rows force x_leaf + x_center ≥ 2 with caps at 1
		// ⇒ x_center = 1 and every leaf = 1 ⇒ 8.
		{"star k=2", graph.Star(8), 2, 8},
		// Complete graph, k=3: every row is all of V, demand 3.
		{"K6 k=3", graph.Complete(6), 3, 3},
		// C4, k=1: rows are triples; optimum is 4/3 (x ≡ 1/3).
		{"C4 k=1", graph.Ring(4), 1, 4.0 / 3.0},
		// C6, k=1: x ≡ 1/3 ⇒ 2.
		{"C6 k=1", graph.Ring(6), 1, 2},
		// Single node, k=1: itself.
		{"K1", graph.Complete(1), 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := FromGraph(tt.g, UniformK(tt.g.NumNodes(), tt.k))
			x, obj, err := c.SolveFractional()
			if err != nil {
				t.Fatalf("SolveFractional: %v", err)
			}
			if math.Abs(obj-tt.want) > 1e-6 {
				t.Errorf("OPT_f = %v, want %v", obj, tt.want)
			}
			if err := c.CheckPrimal(x, 1e-6); err != nil {
				t.Errorf("optimal x infeasible: %v", err)
			}
			if math.Abs(c.Objective(x)-obj) > 1e-6 {
				t.Errorf("objective mismatch: %v vs %v", c.Objective(x), obj)
			}
		})
	}
}

func TestSimplexRejectsInfeasible(t *testing.T) {
	c := Covering{NumVars: 2, Rows: [][]int{{0, 1}}, Demand: []float64{3}}
	if _, _, err := c.SolveFractional(); err == nil {
		t.Error("demand 3 over 2 unit-capped vars must be infeasible")
	}
}

func TestSimplexLowerBoundsHold(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.Gnp(40, 0.15, seed)
		k := UniformK(40, 2)
		c := FromGraph(g, k)
		_, obj, err := c.SolveFractional()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if lb := c.LowerBoundDegree(); obj < lb-1e-6 {
			t.Errorf("seed %d: OPT_f %v below degree bound %v", seed, obj, lb)
		}
		if lb := c.LowerBoundDemand(); obj < lb-1e-6 {
			t.Errorf("seed %d: OPT_f %v below demand bound %v", seed, obj, lb)
		}
	}
}

func TestExactMatchesBruteForceTiny(t *testing.T) {
	// Exhaustive check on tiny random instances.
	for seed := int64(0); seed < 12; seed++ {
		g := graph.Gnp(8, 0.4, seed)
		c := FromGraph(g, UniformK(8, 2))
		mask, size, err := c.SolveExact(100000)
		if err != nil {
			t.Fatalf("seed %d: SolveExact: %v", seed, err)
		}
		if err := c.CheckIntegralCover(mask); err != nil {
			t.Fatalf("seed %d: exact output not a cover: %v", seed, err)
		}
		want := bruteForceOpt(c)
		if size != want {
			t.Errorf("seed %d: exact = %d, brute force = %d", seed, size, want)
		}
	}
}

func bruteForceOpt(c Covering) int {
	n := c.NumVars
	best := n + 1
	mask := make([]bool, n)
	for bits := 0; bits < 1<<n; bits++ {
		size := 0
		for j := 0; j < n; j++ {
			mask[j] = bits&(1<<j) != 0
			if mask[j] {
				size++
			}
		}
		if size >= best {
			continue
		}
		if c.CheckIntegralCover(mask) == nil {
			best = size
		}
	}
	return best
}

func TestExactAtLeastFractional(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Gnp(14, 0.3, seed)
		c := FromGraph(g, UniformK(14, 1))
		_, fObj, err := c.SolveFractional()
		if err != nil {
			t.Fatalf("fractional: %v", err)
		}
		_, iOpt, err := c.SolveExact(200000)
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		if float64(iOpt) < fObj-1e-6 {
			t.Errorf("seed %d: integral %d below fractional %v", seed, iOpt, fObj)
		}
		// Integrality gap for dominating set is O(log n); sanity-bound it.
		if float64(iOpt) > 5*fObj+1 {
			t.Errorf("seed %d: unreasonable gap: %d vs %v", seed, iOpt, fObj)
		}
	}
}

func TestQuickSimplexFeasibleAndBounded(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%20) + 3
		k := float64(kRaw%3) + 1
		g := graph.Gnp(n, 0.35, seed)
		c := FromGraph(g, UniformK(n, k))
		x, obj, err := c.SolveFractional()
		if err != nil {
			return false
		}
		if c.CheckPrimal(x, 1e-6) != nil {
			return false
		}
		// Greedy is integral and feasible, so OPT_f ≤ greedy size.
		_, gs := c.Greedy()
		return obj <= float64(gs)+1e-6 && obj >= c.LowerBoundDegree()-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPerNodeDemands(t *testing.T) {
	g := graph.Path(5)
	k := []float64{1, 2, 1, 2, 1}
	c := FromGraph(g, k)
	x, obj, err := c.SolveFractional()
	if err != nil {
		t.Fatalf("SolveFractional: %v", err)
	}
	if err := c.CheckPrimal(x, 1e-6); err != nil {
		t.Errorf("infeasible: %v", err)
	}
	mask, size, err := c.SolveExact(100000)
	if err != nil {
		t.Fatalf("SolveExact: %v", err)
	}
	if err := c.CheckIntegralCover(mask); err != nil {
		t.Errorf("exact not a cover: %v", err)
	}
	if float64(size) < obj-1e-9 {
		t.Errorf("integral %d below fractional %v", size, obj)
	}
}

func TestSolveExactBudget(t *testing.T) {
	g := graph.Gnp(20, 0.2, 1)
	c := FromGraph(g, UniformK(20, 2))
	if _, _, err := c.SolveExact(0); err == nil {
		t.Error("budget 0 should be exhausted")
	}
}

func TestLowerBoundsOnStar(t *testing.T) {
	g := graph.Star(9)
	c := FromGraph(g, UniformK(9, 1))
	// Center appears in all 9 rows: degree bound = 9/9 = 1.
	if lb := c.LowerBoundDegree(); math.Abs(lb-1) > 1e-12 {
		t.Errorf("LowerBoundDegree = %v, want 1", lb)
	}
	if lb := c.LowerBoundDemand(); lb != 1 {
		t.Errorf("LowerBoundDemand = %v, want 1", lb)
	}
}
