package lp

import (
	"fmt"
	"math"
)

// SolveFractional computes the optimum OPT_f of the covering LP with a
// dense two-phase primal simplex. It is intended for the moderate instance
// sizes of the experiment suite (hundreds of variables); approximation
// ratios throughout the repository are measured against its objective.
//
// The standard form has one surplus variable per covering row, one slack
// per upper-bound row x_j ≤ 1, and one artificial per covering row:
//
//	Σ_{j∈Rows[i]} x_j − s_i + a_i = k_i     (covering rows)
//	x_j + u_j = 1                           (upper-bound rows)
//
// Phase 1 minimizes Σ a_i; phase 2 minimizes Σ x_j. The pivot rule is
// Dantzig's with an automatic switch to Bland's rule under degeneracy, so
// the solver cannot cycle.
func (c Covering) SolveFractional() ([]float64, float64, error) {
	return solveCoveringLP(c, nil)
}

// solveCoveringLP is the generic engine behind SolveFractional and the
// weighted variant; costs == nil means unit costs.
func solveCoveringLP(c Covering, costs []float64) ([]float64, float64, error) {
	nv, nc := c.NumVars, len(c.Rows)
	for i, d := range c.Demand {
		if d < 0 {
			return nil, 0, fmt.Errorf("lp: negative demand %v in row %d", d, i)
		}
		if d > float64(len(c.Rows[i]))+1e-9 {
			return nil, 0, fmt.Errorf("lp: row %d demands %v but has only %d variables",
				i, d, len(c.Rows[i]))
		}
	}

	m := nc + nv // rows
	xs, ss, us, as := 0, nv, nv+nc, nv+nc+nv
	ncols := nv + nc + nv + nc

	t := newTableau(m, ncols)
	for i, row := range c.Rows {
		for _, j := range row {
			t.a[i][xs+j] = 1
		}
		t.a[i][ss+i] = -1
		t.a[i][as+i] = 1
		t.rhs[i] = c.Demand[i]
		t.basis[i] = as + i
	}
	for j := 0; j < nv; j++ {
		r := nc + j
		t.a[r][xs+j] = 1
		t.a[r][us+j] = 1
		t.rhs[r] = 1
		t.basis[r] = us + j
	}

	// Phase 1: minimize Σ a_i. Reduced costs start as c − c_Bᵀ·T with
	// c = 1 on artificials, whose rows are exactly the covering rows.
	for col := as; col < ncols; col++ {
		t.cost[col] = 1
	}
	for i := 0; i < nc; i++ {
		t.subtractRowFromCost(i)
	}
	if err := t.iterate(ncols); err != nil {
		return nil, 0, fmt.Errorf("lp: phase 1: %w", err)
	}
	if t.objective() > 1e-7 {
		return nil, 0, fmt.Errorf("lp: infeasible (phase-1 objective %v)", t.objective())
	}
	t.driveOutArtificials(as)

	// Phase 2: minimize Σ c_j·x_j, artificials barred from entering.
	for col := range t.cost {
		t.cost[col] = 0
	}
	t.costRHS = 0
	for j := 0; j < nv; j++ {
		if costs == nil {
			t.cost[xs+j] = 1
		} else {
			t.cost[xs+j] = costs[j]
		}
	}
	for i := 0; i < m; i++ {
		if b := t.basis[i]; b >= xs && b < nv {
			t.subtractBasicRowFromCost(i, t.cost[b])
		}
	}
	if err := t.iterate(as); err != nil {
		return nil, 0, fmt.Errorf("lp: phase 2: %w", err)
	}

	x := make([]float64, nv)
	for i := 0; i < m; i++ {
		if b := t.basis[i]; b < nv {
			x[b] = t.rhs[i]
		}
	}
	// Clean tiny numerical noise.
	for j := range x {
		if x[j] < 0 {
			x[j] = 0
		}
		if x[j] > 1 {
			x[j] = 1
		}
	}
	return x, t.objective(), nil
}

const simplexEps = 1e-9

type tableau struct {
	a       [][]float64
	rhs     []float64
	cost    []float64
	costRHS float64 // negative of current objective value
	basis   []int
	dead    []bool // redundant rows disabled by driveOutArtificials
}

func newTableau(m, ncols int) *tableau {
	t := &tableau{
		a:     make([][]float64, m),
		rhs:   make([]float64, m),
		cost:  make([]float64, ncols),
		basis: make([]int, m),
		dead:  make([]bool, m),
	}
	for i := range t.a {
		t.a[i] = make([]float64, ncols)
	}
	return t
}

func (t *tableau) objective() float64 { return -t.costRHS }

// subtractRowFromCost performs cost ← cost − row_i (used when row i's basic
// variable has objective coefficient 1).
func (t *tableau) subtractRowFromCost(i int) {
	t.subtractBasicRowFromCost(i, 1)
}

// subtractBasicRowFromCost performs cost ← cost − w·row_i, eliminating a
// basic variable with objective coefficient w from the cost row.
func (t *tableau) subtractBasicRowFromCost(i int, w float64) {
	if w == 0 {
		return
	}
	for col, v := range t.a[i] {
		if v != 0 {
			t.cost[col] -= w * v
		}
	}
	t.costRHS -= w * t.rhs[i]
}

// iterate pivots until no reduced cost is negative among columns < maxCol.
func (t *tableau) iterate(maxCol int) error {
	maxIter := 200 * (len(t.a) + maxCol)
	degenerate := 0
	for iter := 0; iter < maxIter; iter++ {
		bland := degenerate > 30
		e := t.chooseEntering(maxCol, bland)
		if e < 0 {
			return nil // optimal
		}
		l := t.chooseLeaving(e)
		if l < 0 {
			return fmt.Errorf("unbounded (entering column %d)", e)
		}
		if t.rhs[l] < simplexEps {
			degenerate++
		} else {
			degenerate = 0
		}
		t.pivot(l, e)
	}
	return fmt.Errorf("iteration limit exceeded")
}

func (t *tableau) chooseEntering(maxCol int, bland bool) int {
	if bland {
		for col := 0; col < maxCol; col++ {
			if t.cost[col] < -simplexEps {
				return col
			}
		}
		return -1
	}
	best, bestVal := -1, -simplexEps
	for col := 0; col < maxCol; col++ {
		if t.cost[col] < bestVal {
			bestVal = t.cost[col]
			best = col
		}
	}
	return best
}

func (t *tableau) chooseLeaving(e int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := range t.a {
		if t.dead[i] || t.a[i][e] <= simplexEps {
			continue
		}
		ratio := t.rhs[i] / t.a[i][e]
		// Tie-break on the smaller basis index (Bland-compatible).
		if ratio < bestRatio-simplexEps ||
			(ratio < bestRatio+simplexEps && (best < 0 || t.basis[i] < t.basis[best])) {
			bestRatio = ratio
			best = i
		}
	}
	return best
}

func (t *tableau) pivot(l, e int) {
	piv := t.a[l][e]
	inv := 1 / piv
	rowL := t.a[l]
	for col := range rowL {
		rowL[col] *= inv
	}
	t.rhs[l] *= inv
	for i := range t.a {
		if i == l || t.dead[i] {
			continue
		}
		f := t.a[i][e]
		if f == 0 {
			continue
		}
		row := t.a[i]
		for col := range row {
			row[col] -= f * rowL[col]
		}
		t.rhs[i] -= f * t.rhs[l]
	}
	if f := t.cost[e]; f != 0 {
		for col := range t.cost {
			t.cost[col] -= f * rowL[col]
		}
		t.costRHS -= f * t.rhs[l]
	}
	t.basis[l] = e
}

// driveOutArtificials removes artificial variables (columns ≥ asStart) from
// the basis after a successful phase 1. A basic artificial at level zero is
// pivoted out on any eligible structural column; if its row has no nonzero
// structural entry the row is redundant and is disabled.
func (t *tableau) driveOutArtificials(asStart int) {
	for i := range t.a {
		if t.dead[i] || t.basis[i] < asStart {
			continue
		}
		pivoted := false
		for col := 0; col < asStart; col++ {
			if math.Abs(t.a[i][col]) > 1e-7 {
				t.pivot(i, col)
				pivoted = true
				break
			}
		}
		if !pivoted {
			t.dead[i] = true
		}
	}
}
