package maintain

// The churn engine must stay bit-identical to the retired global-pass
// repair after every batch: same mask, same promotion count, same round
// count, computed from incrementally maintained coverage instead of a
// per-batch linear scan. The randomized churn test below drives hundreds
// of mixed batches (fail / revive / add_edge / del_edge / add_node)
// against a mirror of the topology and checks the engine against
// repairReference on the compacted graph each time.

import (
	"math/rand"
	"testing"

	"ftclust/internal/graph"
	"ftclust/internal/rng"
)

// engineMirror tracks the topology and liveness the test believes the
// engine has, so it can generate valid batches and build reference inputs.
type engineMirror struct {
	n     int
	edges map[graph.Edge]bool
	dead  map[graph.NodeID]bool
}

func newEngineMirror(g *graph.Graph) *engineMirror {
	m := &engineMirror{n: g.NumNodes(), edges: map[graph.Edge]bool{}, dead: map[graph.NodeID]bool{}}
	g.Edges(func(u, v graph.NodeID) { m.edges[graph.Edge{U: u, V: v}] = true })
	return m
}

func (m *engineMirror) key(u, v graph.NodeID) graph.Edge {
	if u > v {
		u, v = v, u
	}
	return graph.Edge{U: u, V: v}
}

// applyBatch mutates the mirror the way the engine will.
func (m *engineMirror) applyBatch(ops []Op) {
	for _, op := range ops {
		switch op.Kind {
		case OpFail:
			for _, v := range op.Nodes {
				m.dead[v] = true
			}
		case OpRevive:
			for _, v := range op.Nodes {
				delete(m.dead, v)
			}
		case OpAddEdge:
			m.edges[m.key(op.U, op.V)] = true
		case OpDelEdge:
			delete(m.edges, m.key(op.U, op.V))
		case OpAddNode:
			m.n++
		}
	}
}

// randomBatch builds a valid batch of 1–8 ops against the mirror state,
// simulating the same-order semantics Validate enforces.
func (m *engineMirror) randomBatch(r *rand.Rand) []Op {
	nSim := m.n
	pending := map[graph.Edge]int8{}
	exists := func(u, v graph.NodeID) bool {
		k := m.key(u, v)
		if d, ok := pending[k]; ok {
			return d > 0
		}
		return m.edges[k]
	}
	deadSim := map[graph.NodeID]bool{}
	for v := range m.dead {
		deadSim[v] = true
	}
	var ops []Op
	count := 1 + r.Intn(8)
	for i := 0; i < count; i++ {
		switch r.Intn(10) {
		case 0: // add_node
			nSim++
			ops = append(ops, Op{Kind: OpAddNode})
		case 1, 2: // fail a live node
			v := graph.NodeID(r.Intn(nSim))
			deadSim[v] = true
			ops = append(ops, Op{Kind: OpFail, Nodes: []graph.NodeID{v}})
		case 3: // revive a dead node if any
			var dead []graph.NodeID
			for v := range deadSim {
				dead = append(dead, v)
			}
			if len(dead) == 0 {
				continue
			}
			sortNodeIDs(dead)
			v := dead[r.Intn(len(dead))]
			delete(deadSim, v)
			ops = append(ops, Op{Kind: OpRevive, Nodes: []graph.NodeID{v}})
		default: // toggle a random edge
			u := graph.NodeID(r.Intn(nSim))
			v := graph.NodeID(r.Intn(nSim))
			if u == v {
				continue
			}
			if exists(u, v) {
				pending[m.key(u, v)] = -1
				ops = append(ops, Op{Kind: OpDelEdge, U: u, V: v})
			} else {
				pending[m.key(u, v)] = 1
				ops = append(ops, Op{Kind: OpAddEdge, U: u, V: v})
			}
		}
	}
	return ops
}

// assertEngineMatchesReference checks the engine's post-repair state
// against repairReference on the compacted topology. preMask is the
// engine's member mask before the batch; the reference leader set is
// preMask minus the members the batch killed (Patch.Left), padded for
// nodes the batch added.
func assertEngineMatchesReference(t *testing.T, e *Engine, g *graph.Graph, preMask []bool, p Patch, dead map[graph.NodeID]bool, k int) {
	t.Helper()
	leader := make([]bool, g.NumNodes())
	copy(leader, preMask)
	for _, v := range p.Left {
		leader[v] = false
	}
	want, err := repairReference(g, leader, dead, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entered) != want.Promoted || p.Iterations != want.Iterations {
		t.Fatalf("engine entered=%d iters=%d, reference promoted=%d iters=%d",
			len(p.Entered), p.Iterations, want.Promoted, want.Iterations)
	}
	got := e.InSet()
	for v := range want.InSet {
		if got[v] != want.InSet[v] {
			t.Fatalf("masks diverge at node %d: engine=%v reference=%v", v, got[v], want.InSet[v])
		}
	}
	if d := Assess(g, got, dead, k); d.DeficientNodes != 0 {
		t.Fatalf("engine left %d deficient nodes", d.DeficientNodes)
	}
}

// prunedMask strips redundant heads from a feasible mask (ascending-ID
// greedy removal), producing an irredundant cover: every remaining head
// has a node that depends on it, so targeted failures actually create
// deficits.
func prunedMask(g *graph.Graph, mask []bool, k int) []bool {
	n := g.NumNodes()
	out := append([]bool(nil), mask...)
	cov := make([]int, n)
	demand := make([]int, n)
	for v := 0; v < n; v++ {
		if out[v] {
			cov[v]++
		}
		deg := 0
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			deg++
			if out[w] {
				cov[v]++
			}
		}
		demand[v] = minInt(k, deg+1)
	}
	for v := 0; v < n; v++ {
		if !out[v] {
			continue
		}
		removable := cov[v] > demand[v]
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if cov[w] <= demand[w] {
				removable = false
				break
			}
		}
		if removable {
			out[v] = false
			cov[v]--
			for _, w := range g.Neighbors(graph.NodeID(v)) {
				cov[w]--
			}
		}
	}
	return out
}

func TestEngineMatchesReferenceUnderChurn(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		g := graph.GnpAvgDegree(250, 7, int64(k)*13+1)
		mask := feasibleMask(t, g, k)
		e, err := NewEngine(g, mask, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mirror := newEngineMirror(g)
		r := rng.New(int64(k) * 1001)

		for batch := 0; batch < 60; batch++ {
			ops := mirror.randomBatch(r)
			if err := e.Validate(ops); err != nil {
				t.Fatalf("k=%d batch %d: generated batch rejected: %v", k, batch, err)
			}
			preMask := e.InSet()
			p := e.Apply(ops)
			mirror.applyBatch(ops)

			// Compact folds the overlay so the reference sees a plain CSR;
			// the engine keeps running on the compacted base.
			compacted := e.Compact()
			if compacted.NumNodes() != mirror.n || compacted.NumEdges() != len(mirror.edges) {
				t.Fatalf("k=%d batch %d: topology diverged from mirror (n=%d/%d m=%d/%d)",
					k, batch, compacted.NumNodes(), mirror.n, compacted.NumEdges(), len(mirror.edges))
			}
			// Pad preMask for nodes this batch appended.
			for len(preMask) < compacted.NumNodes() {
				preMask = append(preMask, false)
			}
			assertEngineMatchesReference(t, e, compacted, preMask, p, mirror.dead, k)
		}
	}
}

// TestEngineOverlayDriftEquivalence repeats the churn run without ever
// compacting, so the reference comparison exercises the merged
// base+delta iteration paths for real.
func TestEngineOverlayDriftEquivalence(t *testing.T) {
	const k = 2
	g := graph.GnpAvgDegree(200, 6, 21)
	mask := feasibleMask(t, g, k)
	// Huge drift bound: fallback must not trigger mid-test.
	e, err := NewEngine(g, mask, k, Options{MinDriftEdges: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	mirror := newEngineMirror(g)
	r := rng.New(4242)
	for batch := 0; batch < 60; batch++ {
		ops := mirror.randomBatch(r)
		if err := e.Validate(ops); err != nil {
			t.Fatalf("batch %d rejected: %v", batch, err)
		}
		preMask := e.InSet()
		p := e.Apply(ops)
		if p.DriftExceeded {
			t.Fatalf("batch %d: drift fallback triggered under a huge bound", batch)
		}
		mirror.applyBatch(ops)
		// Reference runs on a compacted *copy*; the engine keeps its
		// drifted overlay.
		compacted := rebuildCompact(e)
		for len(preMask) < compacted.NumNodes() {
			preMask = append(preMask, false)
		}
		assertEngineMatchesReference(t, e, compacted, preMask, p, mirror.dead, k)
	}
	if e.Drift() == 0 {
		t.Fatal("churn run accumulated no drift; test exercised nothing")
	}
}

// rebuildCompact snapshots the engine's topology without resetting its
// overlay (Engine.Compact would).
func rebuildCompact(e *Engine) *graph.Graph {
	b := graph.NewBuilder(e.N())
	for v := 0; v < e.N(); v++ {
		vv := graph.NodeID(v)
		var fail error
		e.forEachNeighborTest(vv, func(w graph.NodeID) {
			if vv < w && fail == nil {
				fail = b.AddEdge(vv, w)
			}
		})
		if fail != nil {
			panic(fail)
		}
	}
	return b.Build()
}

// forEachNeighborTest exposes the overlay iteration to the test.
func (e *Engine) forEachNeighborTest(v graph.NodeID, fn func(w graph.NodeID)) {
	e.ov.ForNeighbors(v, fn)
}

func TestEngineOpSemantics(t *testing.T) {
	// Path 0-1-2-3-4, k=2; feasible mask via the reference greedy.
	g := graph.Path(5)
	const k = 2
	mask := feasibleMask(t, g, k)
	e, err := NewEngine(g, mask, k, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Fail + revive of the same node in one batch: the node must come back
	// live but demoted, and the batch must still leave the graph covered.
	victim := graph.NodeID(-1)
	for v, in := range e.InSet() {
		if in {
			victim = graph.NodeID(v)
			break
		}
	}
	ops := []Op{
		{Kind: OpFail, Nodes: []graph.NodeID{victim}},
		{Kind: OpRevive, Nodes: []graph.NodeID{victim}},
	}
	if err := e.Validate(ops); err != nil {
		t.Fatal(err)
	}
	p := e.Apply(ops)
	if e.IsDead(victim) {
		t.Fatal("revived node still dead")
	}
	if p.NewlyDead != 1 || p.Revived != 1 || p.LostHeads != 1 {
		t.Fatalf("patch counters: %+v", p)
	}
	// The fail demotes the node; if it is a member again, that membership
	// must have come from the repair (it is a legitimate candidate).
	if e.InSet()[victim] {
		found := false
		for _, u := range p.Entered {
			if u == victim {
				found = true
			}
		}
		if !found {
			t.Fatal("revived node kept membership without re-promotion")
		}
	}

	// Idempotence: failing a dead node and reviving a live one are no-ops.
	p = e.Apply([]Op{{Kind: OpFail, Nodes: []graph.NodeID{victim, victim}}})
	if p.NewlyDead != 1 {
		t.Fatalf("double fail counted twice: %+v", p)
	}
	p = e.Apply([]Op{{Kind: OpRevive, Nodes: []graph.NodeID{victim}}, {Kind: OpRevive, Nodes: []graph.NodeID{victim}}})
	if p.Revived != 1 {
		t.Fatalf("double revive counted twice: %+v", p)
	}

	// add_node: an isolated live node demands min(k,1)=1 and must promote
	// itself in one round.
	p = e.Apply([]Op{{Kind: OpAddNode}})
	if len(p.AddedNodes) != 1 || p.AddedNodes[0] != 5 {
		t.Fatalf("added nodes: %v", p.AddedNodes)
	}
	if len(p.Entered) != 1 || p.Entered[0] != 5 || p.Iterations != 1 {
		t.Fatalf("isolated node did not promote itself: %+v", p)
	}
	if !e.InSet()[5] {
		t.Fatal("new node not in S")
	}
}

func TestEngineValidateRejectsWholeBatchWithoutMutation(t *testing.T) {
	g := graph.Grid(4, 4)
	const k = 2
	e, err := NewEngine(g, feasibleMask(t, g, k), k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := e.InSet()
	beforeN, beforeM, beforeDrift := e.N(), e.NumEdges(), e.Drift()

	bad := [][]Op{
		// Last op out of range: earlier fail must not stick.
		{{Kind: OpFail, Nodes: []graph.NodeID{0}}, {Kind: OpFail, Nodes: []graph.NodeID{999}}},
		{{Kind: OpAddEdge, U: 0, V: 0}},
		{{Kind: OpAddEdge, U: 0, V: 1}},  // duplicate of a base edge
		{{Kind: OpDelEdge, U: 0, V: 15}}, // missing edge
		{{Kind: OpAddEdge, U: 0, V: 99}}, // out of range
		// Duplicate within the batch itself.
		{{Kind: OpAddEdge, U: 0, V: 5}, {Kind: OpAddEdge, U: 5, V: 0}},
	}
	for i, ops := range bad {
		if err := e.Validate(ops); err == nil {
			t.Errorf("bad batch %d accepted", i)
		}
	}
	after := e.InSet()
	for v := range before {
		if before[v] != after[v] {
			t.Fatalf("mask mutated at %d by rejected batches", v)
		}
	}
	if e.N() != beforeN || e.NumEdges() != beforeM || e.Drift() != beforeDrift {
		t.Fatal("topology mutated by rejected batches")
	}
	for v := 0; v < e.N(); v++ {
		if e.IsDead(graph.NodeID(v)) {
			t.Fatalf("node %d dead after rejected batches", v)
		}
	}
}

func TestEngineValidateRespectsOpOrder(t *testing.T) {
	g := graph.Path(4)
	e, err := NewEngine(g, feasibleMask(t, g, 1), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An edge may target a node an earlier op in the same batch creates…
	ok := []Op{{Kind: OpAddNode}, {Kind: OpAddEdge, U: 4, V: 0}}
	if err := e.Validate(ok); err != nil {
		t.Fatalf("in-batch add_node then add_edge rejected: %v", err)
	}
	// …and may re-add an edge an earlier op deleted.
	ok2 := []Op{{Kind: OpDelEdge, U: 0, V: 1}, {Kind: OpAddEdge, U: 0, V: 1}}
	if err := e.Validate(ok2); err != nil {
		t.Fatalf("in-batch del then re-add rejected: %v", err)
	}
	// Without the creating op the same edge is out of range.
	if err := e.Validate([]Op{{Kind: OpAddEdge, U: 4, V: 0}}); err == nil {
		t.Fatal("edge to nonexistent node accepted")
	}
	// Delete twice in one batch: second must see the first.
	if err := e.Validate([]Op{{Kind: OpDelEdge, U: 0, V: 1}, {Kind: OpDelEdge, U: 0, V: 1}}); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestEngineDriftFallbackAndSetMask(t *testing.T) {
	const k = 2
	g := graph.GnpAvgDegree(120, 6, 9)
	mask := feasibleMask(t, g, k)
	e, err := NewEngine(g, mask, k, Options{DriftFraction: 1e-9, MinDriftEdges: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Churn edges until the drift bound trips.
	r := rng.New(7)
	tripped := false
	for step := 0; step < 200 && !tripped; step++ {
		u := graph.NodeID(r.Intn(e.N()))
		v := graph.NodeID(r.Intn(e.N()))
		if u == v {
			continue
		}
		var ops []Op
		if e.HasEdgeTest(u, v) {
			ops = []Op{{Kind: OpDelEdge, U: u, V: v}}
		} else {
			ops = []Op{{Kind: OpAddEdge, U: u, V: v}}
		}
		if err := e.Validate(ops); err != nil {
			t.Fatal(err)
		}
		tripped = e.Apply(ops).DriftExceeded
	}
	if !tripped {
		t.Fatal("drift bound never tripped")
	}

	// Fallback protocol: full re-solve on the live subgraph, adopt via
	// SetMask. Here the "solver" is the reference greedy from empty.
	sub, ids := e.LiveSubgraph()
	res, err := repairReference(sub, make([]bool, sub.NumNodes()), nil, k)
	if err != nil {
		t.Fatal(err)
	}
	fresh := make([]bool, e.N())
	for i, in := range res.InSet {
		if in {
			fresh[ids[i]] = true
		}
	}
	entered, left, err := e.SetMask(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if e.Drift() != 0 {
		t.Fatalf("SetMask must compact: drift=%d", e.Drift())
	}
	got := e.InSet()
	for v := range fresh {
		if got[v] != fresh[v] {
			t.Fatalf("adopted mask differs at %d", v)
		}
	}
	// The diff must be consistent with the masks.
	for _, v := range entered {
		if !fresh[v] {
			t.Fatalf("entered node %d not in new mask", v)
		}
	}
	for _, v := range left {
		if fresh[v] {
			t.Fatalf("left node %d still in new mask", v)
		}
	}
	// Engine keeps working after adoption.
	p := e.Apply([]Op{{Kind: OpAddNode}})
	if len(p.Entered) != 1 {
		t.Fatalf("post-adoption apply broken: %+v", p)
	}
}

// HasEdgeTest exposes overlay edge lookup to tests.
func (e *Engine) HasEdgeTest(u, v graph.NodeID) bool { return e.ov.HasEdge(u, v) }

func TestEngineSetMaskRejectsBadMasks(t *testing.T) {
	const k = 2
	g := graph.Grid(5, 5)
	e, err := NewEngine(g, feasibleMask(t, g, k), k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.Apply([]Op{{Kind: OpFail, Nodes: []graph.NodeID{3}}})
	before := e.InSet()

	// Dead member.
	bad := e.InSet()
	bad[3] = true
	if _, _, err := e.SetMask(bad); err == nil {
		t.Fatal("mask with dead member accepted")
	}
	// Wrong length.
	if _, _, err := e.SetMask(make([]bool, 3)); err == nil {
		t.Fatal("short mask accepted")
	}
	// Uncovering mask (empty).
	if _, _, err := e.SetMask(make([]bool, e.N())); err == nil {
		t.Fatal("empty mask accepted")
	}
	// All rejections must leave state untouched.
	after := e.InSet()
	for v := range before {
		if before[v] != after[v] {
			t.Fatalf("rejected SetMask mutated mask at %d", v)
		}
	}
}

// TestEngineTouchedScalesWithDamage is the streaming counterpart of the
// one-shot damage-proportionality test: a single failed head in a large
// sparse instance must touch a neighborhood, not the graph.
func TestEngineTouchedScalesWithDamage(t *testing.T) {
	const k = 2
	g := graph.GnpAvgDegree(5000, 8, 3)
	mask := prunedMask(g, feasibleMask(t, g, k), k)
	e, err := NewEngine(g, mask, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The mask is irredundant, so failing heads quickly creates a deficit;
	// every repair along the way must stay confined to a neighborhood of
	// the 5000-node graph.
	var heads []graph.NodeID
	for v, in := range mask {
		if in {
			heads = append(heads, graph.NodeID(v))
		}
	}
	repaired := false
	for i := 0; i < 20 && i < len(heads); i++ {
		p := e.Apply([]Op{{Kind: OpFail, Nodes: []graph.NodeID{heads[i]}}})
		if p.Touched > 200 {
			t.Fatalf("single-head failure touched %d of %d nodes; not damage-proportional",
				p.Touched, e.N())
		}
		if len(p.Entered) > 0 {
			repaired = true
			break
		}
	}
	if !repaired {
		t.Fatal("no head failure triggered a repair; test exercised nothing")
	}
}
