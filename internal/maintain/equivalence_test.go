package maintain

// The worklist Repair must be bit-identical to the retired global pass on
// the full matrix the issue names: graph families × failure patterns × k.
// "Bit-identical" covers the mask, the promotion count, and the round
// count — any divergence means the worklist dropped a deficit or promoted
// in a different order.

import (
	"fmt"
	"testing"

	"ftclust/internal/graph"
	"ftclust/internal/rng"
)

// feasibleMask builds a deterministic k-feasible mask for g by running the
// reference promotion machinery from an empty mask with no failures — the
// same greedy the paper's Part II uses, so the masks look like real
// clusterings without dragging the full solver into this package.
func feasibleMask(t *testing.T, g *graph.Graph, k int) []bool {
	t.Helper()
	res, err := repairReference(g, make([]bool, g.NumNodes()), nil, k)
	if err != nil {
		t.Fatal(err)
	}
	return res.InSet
}

// failurePattern returns the dead set for one named pattern.
func failurePattern(name string, g *graph.Graph, mask []bool, seed int64) map[graph.NodeID]bool {
	dead := map[graph.NodeID]bool{}
	heads := []graph.NodeID{}
	for v, in := range mask {
		if in {
			heads = append(heads, graph.NodeID(v))
		}
	}
	switch name {
	case "single":
		// One head fails (the classic E16-style single-failure case).
		if len(heads) > 0 {
			dead[heads[int(seed)%len(heads)]] = true
		}
	case "burst":
		// A random 15% of all nodes fails at once, heads or not.
		r := rng.New(seed)
		for v := 0; v < g.NumNodes(); v++ {
			if r.Float64() < 0.15 {
				dead[graph.NodeID(v)] = true
			}
		}
	case "adversarial":
		// Targeted removal of the entire dominating set S.
		for _, h := range heads {
			dead[h] = true
		}
	default:
		panic("unknown failure pattern " + name)
	}
	return dead
}

func TestRepairEquivalenceMatrix(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(80)},
		{"path", graph.Path(90)},
		{"gnp", graph.GnpAvgDegree(300, 8, 5)},
		{"grid", graph.Grid(12, 14)},
	}
	patterns := []string{"single", "burst", "adversarial"}

	for _, fam := range families {
		for _, pat := range patterns {
			for k := 1; k <= 3; k++ {
				name := fmt.Sprintf("%s/%s/k=%d", fam.name, pat, k)
				t.Run(name, func(t *testing.T) {
					mask := feasibleMask(t, fam.g, k)
					dead := failurePattern(pat, fam.g, mask, int64(k)*31+7)
					assertRepairEquivalent(t, fam.g, mask, dead, k)
				})
			}
		}
	}
}

// TestRepairEquivalenceInfeasibleMask covers masks that are deficient for
// reasons unrelated to the failure set (E18's crash-mid-protocol regime):
// the worklist must find and fix those deficits too, identically.
func TestRepairEquivalenceInfeasibleMask(t *testing.T) {
	g := graph.GnpAvgDegree(250, 8, 11)
	const k = 2
	mask := feasibleMask(t, g, k)
	// Corrupt the mask far from the failure: drop every third head.
	i := 0
	for v := range mask {
		if mask[v] {
			if i%3 == 0 {
				mask[v] = false
			}
			i++
		}
	}
	dead := failurePattern("burst", g, mask, 3)
	assertRepairEquivalent(t, g, mask, dead, k)

	// Empty mask, no failures: the promotion machinery builds a full
	// cover from nothing in both versions.
	assertRepairEquivalent(t, graph.Grid(8, 9), make([]bool, 72), nil, 3)
}

func assertRepairEquivalent(t *testing.T, g *graph.Graph, mask []bool, dead map[graph.NodeID]bool, k int) {
	t.Helper()
	want, err := repairReference(g, mask, dead, k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Repair(g, mask, dead, k)
	if err != nil {
		t.Fatal(err)
	}
	if got.Promoted != want.Promoted || got.Iterations != want.Iterations {
		t.Fatalf("worklist promoted=%d iters=%d, reference promoted=%d iters=%d",
			got.Promoted, got.Iterations, want.Promoted, want.Iterations)
	}
	for v := range want.InSet {
		if got.InSet[v] != want.InSet[v] {
			t.Fatalf("masks diverge at node %d: worklist=%v reference=%v",
				v, got.InSet[v], want.InSet[v])
		}
	}
	if Assess(g, got.InSet, dead, k).DeficientNodes != 0 {
		t.Fatal("repair left deficient nodes")
	}
}

// TestRepairTouchedScalesWithDamage pins the damage-proportionality claim
// at the unit level: on a large sparse instance, one failed head must
// leave almost the whole graph untouched by the promotion rounds.
func TestRepairTouchedScalesWithDamage(t *testing.T) {
	g := graph.GnpAvgDegree(5000, 8, 3)
	const k = 2
	mask := prunedMask(g, feasibleMask(t, g, k), k)
	heads := []graph.NodeID{}
	for v, in := range mask {
		if in {
			heads = append(heads, graph.NodeID(v))
		}
	}
	// The pruned mask is irredundant, so a few head failures certainly
	// create deficits; each repair must stay confined to a neighborhood.
	dead := map[graph.NodeID]bool{}
	promoted := 0
	for i := 0; i < 20 && i < len(heads); i++ {
		dead[heads[i]] = true
		res, err := Repair(g, mask, dead, k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Touched > 200 {
			t.Fatalf("%d-head failure touched %d of %d nodes; not damage-proportional",
				i+1, res.Touched, g.NumNodes())
		}
		promoted += res.Promoted
	}
	if promoted == 0 {
		t.Fatal("no failure triggered a promotion; test exercised nothing")
	}
}
