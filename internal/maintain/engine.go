package maintain

import (
	"fmt"
	"sort"

	"ftclust/internal/graph"
)

// OpKind enumerates the delta operations a churn stream may carry.
type OpKind uint8

const (
	// OpFail marks nodes dead. Dead nodes neither serve nor demand
	// coverage; failing an already-dead node is a no-op.
	OpFail OpKind = iota
	// OpRevive brings dead nodes back, as non-members that demand
	// coverage again; reviving a live node is a no-op.
	OpRevive
	// OpAddEdge inserts the undirected edge (U, V); it must not exist.
	OpAddEdge
	// OpDelEdge removes the undirected edge (U, V); it must exist.
	OpDelEdge
	// OpAddNode appends one fresh isolated live node.
	OpAddNode
)

// String returns the wire name of the op kind.
func (k OpKind) String() string {
	switch k {
	case OpFail:
		return "fail"
	case OpRevive:
		return "revive"
	case OpAddEdge:
		return "add_edge"
	case OpDelEdge:
		return "del_edge"
	case OpAddNode:
		return "add_node"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one delta operation. Nodes is used by OpFail/OpRevive; U, V by
// OpAddEdge/OpDelEdge; OpAddNode takes no operands.
type Op struct {
	Kind  OpKind
	Nodes []graph.NodeID
	U, V  graph.NodeID
}

// Patch reports what one Apply did: the incremental repair delta a
// session streams back instead of a full solution.
type Patch struct {
	// Entered lists nodes newly promoted into S, ascending.
	Entered []graph.NodeID
	// Left lists nodes that left S this batch (members that died),
	// ascending.
	Left []graph.NodeID
	// AddedNodes lists the IDs assigned by OpAddNode ops, in op order.
	AddedNodes []graph.NodeID
	// Iterations is the number of promotion rounds the repair used.
	Iterations int
	// Touched counts distinct nodes whose state the apply+repair pass
	// examined or updated — the measured damage, which scales with the
	// batch's neighborhoods rather than n.
	Touched int
	// LostHeads counts members that died this batch (== len(Left)).
	LostHeads int
	// DeficientBefore counts live nodes short of coverage after the batch
	// was applied and before repair.
	DeficientBefore int
	// NewlyDead and Revived count liveness transitions this batch.
	NewlyDead int
	Revived   int
	// DriftExceeded reports that the overlay drifted past the engine's
	// bound during this batch. The incremental mask is still feasible,
	// but set quality degrades monotonically under churn (repair only
	// promotes), so the owner should compact and run a certified full
	// re-solve, then adopt it with SetMask.
	DriftExceeded bool
}

// Options tunes an Engine. Zero values select the documented defaults.
type Options struct {
	// DriftFraction is the overlay drift (delta edges + added nodes, as a
	// fraction of base edges) beyond which Apply sets DriftExceeded
	// (default 0.25).
	DriftFraction float64
	// MinDriftEdges is the drift floor below which fallback never
	// triggers, so tiny instances aren't forced into re-solves by a
	// handful of deltas (default 64).
	MinDriftEdges int
}

func (o *Options) fillDefaults() {
	if o.DriftFraction <= 0 {
		o.DriftFraction = 0.25
	}
	if o.MinDriftEdges <= 0 {
		o.MinDriftEdges = 64
	}
}

// Engine is the incremental churn engine: a long-lived k-fold clustering
// that absorbs batches of liveness and topology deltas at a cost
// proportional to the damage. It maintains per-node live coverage
// incrementally — no global pass per batch, unlike the one-shot Repair —
// and keeps the invariant that between batches every live node has its
// capped demand min(k, liveDegree+1) covered.
//
// Engine is not safe for concurrent use; callers serialize access.
type Engine struct {
	ov   *graph.Overlay
	k    int
	opts Options

	inSet   []bool
	dead    []bool
	liveDeg []int32
	cov     []int32 // live members in the closed neighborhood (live nodes only)

	size      int
	deadCount int

	// dirty collects nodes whose deficit status may have changed since
	// the last repair; dirtyMark dedups it.
	dirty     []int32
	dirtyMark []bool

	// touch stamps nodes counted toward Patch.Touched this batch.
	touch      []int32
	touchEpoch int32
}

// NewEngine starts an engine on g with the given k and dominator mask.
// The mask must k-cover g (the usual case: it came from a solve); the
// engine verifies this while building its coverage state and returns an
// error otherwise, because the incremental invariant starts there.
func NewEngine(g *graph.Graph, mask []bool, k int, opts Options) (*Engine, error) {
	n := g.NumNodes()
	if len(mask) != n {
		return nil, fmt.Errorf("maintain: mask has %d entries for %d nodes", len(mask), n)
	}
	if k < 1 {
		return nil, fmt.Errorf("maintain: k must be ≥ 1, got %d", k)
	}
	opts.fillDefaults()
	e := &Engine{
		ov:        graph.NewOverlay(g),
		k:         k,
		opts:      opts,
		inSet:     append([]bool(nil), mask...),
		dead:      make([]bool, n),
		liveDeg:   make([]int32, n),
		cov:       make([]int32, n),
		dirtyMark: make([]bool, n),
		touch:     make([]int32, n),
	}
	for v := 0; v < n; v++ {
		if e.inSet[v] {
			e.size++
			e.cov[v]++
		}
		deg := 0
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			deg++
			if e.inSet[w] {
				e.cov[v]++
			}
		}
		e.liveDeg[v] = int32(deg)
	}
	for v := 0; v < n; v++ {
		if e.cov[v] < e.demand(v) {
			return nil, fmt.Errorf("maintain: mask does not %d-cover node %d", k, v)
		}
	}
	return e, nil
}

// N returns the current node count (including dead nodes).
func (e *Engine) N() int { return e.ov.NumNodes() }

// NumEdges returns the current undirected edge count.
func (e *Engine) NumEdges() int { return e.ov.NumEdges() }

// K returns the coverage parameter.
func (e *Engine) K() int { return e.k }

// Size returns |S|, the live member count.
func (e *Engine) Size() int { return e.size }

// DeadCount returns the number of currently dead nodes.
func (e *Engine) DeadCount() int { return e.deadCount }

// Drift returns the overlay's current distance from its base CSR.
func (e *Engine) Drift() int { return e.ov.DriftEdges() + e.ov.AddedNodes() }

// driftLimit is the bound beyond which Apply flags DriftExceeded.
func (e *Engine) driftLimit() int {
	lim := int(e.opts.DriftFraction * float64(e.ov.Base().NumEdges()))
	if lim < e.opts.MinDriftEdges {
		lim = e.opts.MinDriftEdges
	}
	return lim
}

// InSet returns a copy of the member mask.
func (e *Engine) InSet() []bool { return append([]bool(nil), e.inSet...) }

// IsDead reports whether v is currently dead.
func (e *Engine) IsDead(v graph.NodeID) bool { return e.dead[v] }

// Members returns the member IDs, ascending.
func (e *Engine) Members() []graph.NodeID {
	out := make([]graph.NodeID, 0, e.size)
	for v, in := range e.inSet {
		if in {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// Compact folds the current topology into a fresh CSR (same node IDs) and
// returns it. The engine keeps operating on a clean overlay over the new
// base; coverage state is untouched.
func (e *Engine) Compact() *graph.Graph {
	g := e.ov.Compact()
	e.ov = graph.NewOverlay(g)
	return g
}

// LiveSubgraph compacts the current topology restricted to live nodes and
// returns it with the live-to-engine ID mapping — the instance a
// certified full re-solve runs on during fallback.
func (e *Engine) LiveSubgraph() (*graph.Graph, []graph.NodeID) {
	full := e.ov.Compact()
	keep := make([]graph.NodeID, 0, full.NumNodes()-e.deadCount)
	for v := 0; v < full.NumNodes(); v++ {
		if !e.dead[v] {
			keep = append(keep, graph.NodeID(v))
		}
	}
	return full.Subgraph(keep)
}

// SetMask adopts an externally computed mask (typically a fresh solve on
// LiveSubgraph mapped back to engine IDs), rebuilds coverage state, and
// returns the member diff against the previous mask. Dead nodes must not
// be members. The engine also compacts its overlay: a fallback re-solve
// is the moment the drifted topology becomes the new base.
func (e *Engine) SetMask(mask []bool) (entered, left []graph.NodeID, err error) {
	n := e.ov.NumNodes()
	if len(mask) != n {
		return nil, nil, fmt.Errorf("maintain: mask has %d entries for %d nodes", len(mask), n)
	}
	for v := 0; v < n; v++ {
		if mask[v] && e.dead[v] {
			return nil, nil, fmt.Errorf("maintain: dead node %d in adopted mask", v)
		}
	}
	// Verify coverage of every live node against the candidate mask before
	// touching any state, so a bad mask leaves the engine intact.
	newCov := make([]int32, n)
	for v := 0; v < n; v++ {
		if e.dead[v] {
			continue
		}
		if mask[v] {
			newCov[v]++
		}
		e.ov.ForNeighbors(graph.NodeID(v), func(w graph.NodeID) {
			if !e.dead[w] && mask[w] {
				newCov[v]++
			}
		})
		if newCov[v] < e.demand(v) {
			return nil, nil, fmt.Errorf("maintain: adopted mask does not %d-cover node %d", e.k, v)
		}
	}
	for v := 0; v < n; v++ {
		if mask[v] && !e.inSet[v] {
			entered = append(entered, graph.NodeID(v))
		}
		if !mask[v] && e.inSet[v] {
			left = append(left, graph.NodeID(v))
		}
	}
	e.Compact()
	e.size = 0
	for v := 0; v < n; v++ {
		e.inSet[v] = mask[v]
		e.cov[v] = newCov[v]
		if mask[v] {
			e.size++
		}
	}
	e.clearDirty()
	return entered, left, nil
}

func (e *Engine) demand(v int) int32 {
	d := e.liveDeg[v] + 1
	if int32(e.k) < d {
		d = int32(e.k)
	}
	return d
}

func (e *Engine) markDirty(v int) {
	if !e.dirtyMark[v] {
		e.dirtyMark[v] = true
		e.dirty = append(e.dirty, int32(v))
	}
}

func (e *Engine) clearDirty() {
	for _, v := range e.dirty {
		e.dirtyMark[v] = false
	}
	e.dirty = e.dirty[:0]
}

// countTouch stamps v as touched this batch and returns 1 on first touch.
func (e *Engine) countTouch(v int) int {
	if e.touch[v] != e.touchEpoch {
		e.touch[v] = e.touchEpoch
		return 1
	}
	return 0
}

// edgeKey canonicalizes an undirected pair for the validation maps.
type edgeKey struct{ u, v int32 }

func mkEdgeKey(u, v graph.NodeID) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{int32(u), int32(v)}
}

// Validate checks a whole batch against the current state without
// mutating anything: op order is respected (an edge may reference a node
// an earlier OpAddNode creates; an OpAddEdge may re-add an edge an
// earlier OpDelEdge removed). A batch either applies in full or not at
// all — Apply must only be called after Validate accepts the batch.
func (e *Engine) Validate(ops []Op) error {
	nSim := e.ov.NumNodes()
	// pending tracks net edge changes simulated so far: +1 added, -1
	// deleted relative to the live overlay.
	pending := make(map[edgeKey]int8)
	exists := func(u, v graph.NodeID) bool {
		if d, ok := pending[mkEdgeKey(u, v)]; ok {
			return d > 0
		}
		return e.ov.HasEdge(u, v)
	}
	for i, op := range ops {
		switch op.Kind {
		case OpFail, OpRevive:
			for _, v := range op.Nodes {
				if v < 0 || int(v) >= nSim {
					return fmt.Errorf("op %d (%s): node %d out of range [0,%d)", i, op.Kind, v, nSim)
				}
			}
		case OpAddEdge:
			u, v := op.U, op.V
			if u == v {
				return fmt.Errorf("op %d (add_edge): self-loop at node %d", i, u)
			}
			if u < 0 || v < 0 || int(u) >= nSim || int(v) >= nSim {
				return fmt.Errorf("op %d (add_edge): edge (%d,%d) out of range [0,%d)", i, u, v, nSim)
			}
			if exists(u, v) {
				return fmt.Errorf("op %d (add_edge): edge (%d,%d) already exists", i, u, v)
			}
			pending[mkEdgeKey(u, v)] = 1
		case OpDelEdge:
			u, v := op.U, op.V
			if u == v || u < 0 || v < 0 || int(u) >= nSim || int(v) >= nSim || !exists(u, v) {
				return fmt.Errorf("op %d (del_edge): no edge (%d,%d)", i, op.U, op.V)
			}
			pending[mkEdgeKey(u, v)] = -1
		case OpAddNode:
			nSim++
		default:
			return fmt.Errorf("op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}

// Apply runs a validated batch: every op mutates topology and liveness
// state incrementally, then one worklist repair restores the coverage
// invariant. The returned Patch is the streamed delta — nodes entering
// and leaving S — plus the damage figures. Callers MUST Validate first;
// Apply panics on ops Validate would reject rather than half-apply them.
func (e *Engine) Apply(ops []Op) Patch {
	e.touchEpoch++
	var p Patch
	for i := range ops {
		e.applyOp(&ops[i], &p)
	}

	// Deficit frontier: dirty live nodes short of coverage, ascending.
	sort.Slice(e.dirty, func(i, j int) bool { return e.dirty[i] < e.dirty[j] })
	frontier := make([]int32, 0, len(e.dirty))
	for _, v := range e.dirty {
		p.Touched += e.countTouch(int(v))
		if !e.dead[v] && e.cov[v] < e.demand(int(v)) {
			frontier = append(frontier, v)
		}
	}
	p.DeficientBefore = len(frontier)
	e.repairFrontier(frontier, &p)
	e.clearDirty()

	sortNodeIDs(p.Entered)
	sortNodeIDs(p.Left)
	if e.Drift() > e.driftLimit() {
		p.DriftExceeded = true
	}
	return p
}

func (e *Engine) applyOp(op *Op, p *Patch) {
	switch op.Kind {
	case OpFail:
		for _, v := range op.Nodes {
			e.failNode(int(v), p)
		}
	case OpRevive:
		for _, v := range op.Nodes {
			e.reviveNode(int(v), p)
		}
	case OpAddEdge:
		if err := e.ov.AddEdge(op.U, op.V); err != nil {
			panic("maintain: Apply on unvalidated batch: " + err.Error())
		}
		u, v := int(op.U), int(op.V)
		p.Touched += e.countTouch(u) + e.countTouch(v)
		if !e.dead[u] && !e.dead[v] {
			e.liveDeg[u]++
			e.liveDeg[v]++
			if e.inSet[u] {
				e.cov[v]++
			}
			if e.inSet[v] {
				e.cov[u]++
			}
			// A higher live degree can raise capped demand: both
			// endpoints may now be deficient.
			e.markDirty(u)
			e.markDirty(v)
		}
	case OpDelEdge:
		if err := e.ov.DelEdge(op.U, op.V); err != nil {
			panic("maintain: Apply on unvalidated batch: " + err.Error())
		}
		u, v := int(op.U), int(op.V)
		p.Touched += e.countTouch(u) + e.countTouch(v)
		if !e.dead[u] && !e.dead[v] {
			e.liveDeg[u]--
			e.liveDeg[v]--
			if e.inSet[u] {
				e.cov[v]--
			}
			if e.inSet[v] {
				e.cov[u]--
			}
			e.markDirty(u)
			e.markDirty(v)
		}
	case OpAddNode:
		id := e.ov.AddNode()
		e.inSet = append(e.inSet, false)
		e.dead = append(e.dead, false)
		e.liveDeg = append(e.liveDeg, 0)
		e.cov = append(e.cov, 0)
		e.dirtyMark = append(e.dirtyMark, false)
		e.touch = append(e.touch, 0)
		p.AddedNodes = append(p.AddedNodes, id)
		p.Touched += e.countTouch(int(id))
		// An isolated live node demands min(k, 1) = 1 and has coverage 0:
		// the repair will promote it to cover itself.
		e.markDirty(int(id))
	}
}

func (e *Engine) failNode(v int, p *Patch) {
	if e.dead[v] {
		return
	}
	e.dead[v] = true
	e.deadCount++
	p.NewlyDead++
	p.Touched += e.countTouch(v)
	wasHead := e.inSet[v]
	if wasHead {
		e.inSet[v] = false
		e.size--
		p.LostHeads++
		p.Left = append(p.Left, graph.NodeID(v))
	}
	e.ov.ForNeighbors(graph.NodeID(v), func(w graph.NodeID) {
		if e.dead[w] {
			return
		}
		e.liveDeg[w]--
		if wasHead {
			e.cov[w]--
		}
		e.markDirty(int(w))
		p.Touched += e.countTouch(int(w))
	})
}

func (e *Engine) reviveNode(v int, p *Patch) {
	if !e.dead[v] {
		return
	}
	e.dead[v] = false
	e.deadCount--
	p.Revived++
	p.Touched += e.countTouch(v)
	// Rebuild v's own live view and bump neighbors' live degree (their
	// capped demand may rise, so they join the frontier).
	deg, cov := int32(0), int32(0)
	e.ov.ForNeighbors(graph.NodeID(v), func(w graph.NodeID) {
		if e.dead[w] {
			return
		}
		deg++
		if e.inSet[w] {
			cov++
		}
		e.liveDeg[w]++
		e.markDirty(int(w))
		p.Touched += e.countTouch(int(w))
	})
	e.liveDeg[v] = deg
	e.cov[v] = cov // v re-enters as a non-member
	e.markDirty(v)
}

// repairFrontier runs the promotion rounds over the deficit frontier —
// the same machinery as the one-shot Repair, against incrementally
// maintained coverage.
func (e *Engine) repairFrontier(frontier []int32, p *Patch) {
	promoted := make(map[int32]bool, 8)
	var promoList []int32
	for iter := 0; ; iter++ {
		live := frontier[:0]
		for _, v := range frontier {
			if e.cov[v] < e.demand(int(v)) {
				live = append(live, v)
			}
		}
		frontier = live
		if len(frontier) == 0 {
			p.Iterations = iter
			return
		}
		promoList = promoList[:0]
		for _, vv := range frontier {
			v := int(vv)
			need := e.demand(v) - e.cov[v]
			e.forClosedLive(v, func(u int) {
				if need > 0 && !e.inSet[u] && !promoted[int32(u)] {
					promoted[int32(u)] = true
					promoList = append(promoList, int32(u))
					need--
				}
			})
		}
		for _, uu := range promoList {
			u := int(uu)
			e.inSet[u] = true
			e.size++
			delete(promoted, uu)
			p.Entered = append(p.Entered, graph.NodeID(u))
			p.Touched += e.countTouch(u)
			e.cov[u]++
			e.ov.ForNeighbors(graph.NodeID(u), func(w graph.NodeID) {
				if !e.dead[w] {
					e.cov[w]++
					p.Touched += e.countTouch(int(w))
				}
			})
		}
	}
}

// forClosedLive visits the live members of v's closed neighborhood in
// ascending ID order, on the overlay topology.
func (e *Engine) forClosedLive(v int, fn func(u int)) {
	visitedSelf := false
	self := func() {
		if !e.dead[v] {
			fn(v)
		}
	}
	e.ov.ForNeighbors(graph.NodeID(v), func(w graph.NodeID) {
		if !visitedSelf && int(w) > v {
			self()
			visitedSelf = true
		}
		if !e.dead[w] {
			fn(int(w))
		}
	})
	if !visitedSelf {
		self()
	}
}

func sortNodeIDs(s []graph.NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
