package maintain

import (
	"testing"
	"testing/quick"

	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/rng"
	"ftclust/internal/udg"
	"ftclust/internal/verify"
)

func solvedUDG(t *testing.T, n int, k int, seed int64) ([]geom.Point, *graph.Graph, []bool) {
	t.Helper()
	pts := geom.UniformPoints(n, 5, seed)
	g, idx := geom.UnitUDG(pts)
	res, err := udg.Solve(pts, g, idx, udg.Options{K: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return pts, g, res.Leader
}

// liveCheck verifies k-coverage among survivors.
func liveCheck(t *testing.T, g *graph.Graph, inSet []bool, dead map[graph.NodeID]bool, k int) {
	t.Helper()
	for v := 0; v < g.NumNodes(); v++ {
		if dead[graph.NodeID(v)] {
			if inSet[v] {
				t.Fatalf("dead node %d in repaired set", v)
			}
			continue
		}
		liveDeg, cov := 0, 0
		if inSet[v] {
			cov++
		}
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if dead[w] {
				continue
			}
			liveDeg++
			if inSet[w] {
				cov++
			}
		}
		need := k
		if liveDeg+1 < need {
			need = liveDeg + 1
		}
		if cov < need {
			t.Fatalf("node %d has %d of %d live coverage after repair", v, cov, need)
		}
	}
}

func TestRepairAfterHeadFailures(t *testing.T) {
	const k = 3
	_, g, leader := solvedUDG(t, 400, k, 1)
	// Kill 40% of the heads.
	r := rng.New(9)
	dead := map[graph.NodeID]bool{}
	for v, l := range leader {
		if l && r.Float64() < 0.4 {
			dead[graph.NodeID(v)] = true
		}
	}
	before := Assess(g, leader, dead, k)
	if before.LostHeads == 0 {
		t.Fatal("test needs failures")
	}
	res, err := Repair(g, leader, dead, k)
	if err != nil {
		t.Fatal(err)
	}
	liveCheck(t, g, res.InSet, dead, k)
	after := Assess(g, res.InSet, dead, k)
	if after.DeficientNodes != 0 {
		t.Errorf("deficient nodes after repair: %d", after.DeficientNodes)
	}
	// Incrementality: repair should promote far fewer nodes than the full
	// solution size.
	full := verify.SetSize(leader)
	if res.Promoted >= full {
		t.Errorf("repair promoted %d ≥ full size %d; not incremental", res.Promoted, full)
	}
}

func TestRepairNoopWithoutFailures(t *testing.T) {
	_, g, leader := solvedUDG(t, 200, 2, 2)
	res, err := Repair(g, leader, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted != 0 || res.Iterations != 0 {
		t.Errorf("no-op repair promoted %d in %d iterations", res.Promoted, res.Iterations)
	}
}

func TestRepairValidation(t *testing.T) {
	g := graph.Ring(5)
	if _, err := Repair(g, make([]bool, 3), nil, 1); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Repair(g, make([]bool, 5), nil, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestRepairMassiveFailure(t *testing.T) {
	// Even killing ALL heads must be repairable (survivors promote).
	const k = 2
	_, g, leader := solvedUDG(t, 300, k, 3)
	dead := map[graph.NodeID]bool{}
	for v, l := range leader {
		if l {
			dead[graph.NodeID(v)] = true
		}
	}
	res, err := Repair(g, leader, dead, k)
	if err != nil {
		t.Fatal(err)
	}
	liveCheck(t, g, res.InSet, dead, k)
}

func TestQuickRepairAlwaysRestores(t *testing.T) {
	f := func(seed int64, nRaw, kRaw, pRaw uint8) bool {
		n := int(nRaw%120) + 10
		k := int(kRaw%3) + 1
		p := float64(pRaw) / 255 * 0.8
		pts := geom.UniformPoints(n, 4, seed)
		g, idx := geom.UnitUDG(pts)
		sol, err := udg.Solve(pts, g, idx, udg.Options{K: k, Seed: seed})
		if err != nil {
			return false
		}
		r := rng.New(seed + 1)
		dead := map[graph.NodeID]bool{}
		for v := 0; v < n; v++ {
			if r.Float64() < p {
				dead[graph.NodeID(v)] = true // arbitrary nodes may die, not just heads
			}
		}
		res, err := Repair(g, sol.Leader, dead, k)
		if err != nil {
			return false
		}
		return Assess(g, res.InSet, dead, k).DeficientNodes == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
