package maintain

// The pre-worklist Repair implementation, kept verbatim as a test-only
// reference: it recomputes coverage over all n nodes every promotion
// round, which is what the worklist rewrite exists to avoid — and what
// the equivalence matrix in equivalence_test.go pins the rewrite against,
// bit for bit.

import (
	"fmt"

	"ftclust/internal/graph"
)

// repairReference is the original global-pass Repair. Semantics are the
// published contract; only its cost (O(n·Δ) per round) differs from the
// worklist version.
func repairReference(g *graph.Graph, leader []bool, dead map[graph.NodeID]bool, k int) (RepairResult, error) {
	n := g.NumNodes()
	if len(leader) != n {
		return RepairResult{}, errMaskLen(len(leader), n)
	}
	if k < 1 {
		return RepairResult{}, errBadK(k)
	}
	inSet := make([]bool, n)
	for v := 0; v < n; v++ {
		inSet[v] = leader[v] && !dead[graph.NodeID(v)]
	}
	res := RepairResult{InSet: inSet}

	// Live closed-neighborhood demand per node.
	demand := make([]int, n)
	for v := 0; v < n; v++ {
		if dead[graph.NodeID(v)] {
			continue
		}
		liveDeg := 0
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if !dead[w] {
				liveDeg++
			}
		}
		demand[v] = minInt(k, liveDeg+1)
	}

	for iter := 0; ; iter++ {
		// Coverage over live nodes — the full rescan the worklist version
		// replaces.
		deficitNodes := 0
		cov := make([]int, n)
		for v := 0; v < n; v++ {
			if dead[graph.NodeID(v)] {
				continue
			}
			if inSet[v] {
				cov[v]++
			}
			for _, w := range g.Neighbors(graph.NodeID(v)) {
				if !dead[w] && inSet[w] {
					cov[v]++
				}
			}
		}
		for v := 0; v < n; v++ {
			if !dead[graph.NodeID(v)] && cov[v] < demand[v] {
				deficitNodes++
			}
		}
		if deficitNodes == 0 {
			res.Iterations = iter
			return res, nil
		}
		// Each deficient node promotes its lowest-ID live non-member
		// closed neighbors to close its own gap (one local round).
		promote := make([]bool, n)
		for v := 0; v < n; v++ {
			if dead[graph.NodeID(v)] || cov[v] >= demand[v] {
				continue
			}
			need := demand[v] - cov[v]
			forClosedLive(g, v, dead, func(u int) {
				if need > 0 && !inSet[u] && !promote[u] {
					promote[u] = true
					need--
				}
			})
		}
		for v := 0; v < n; v++ {
			if promote[v] {
				inSet[v] = true
				res.Promoted++
			}
		}
	}
}

func errMaskLen(got, n int) error {
	return fmt.Errorf("maintain: mask has %d entries for %d nodes", got, n)
}

func errBadK(k int) error {
	return fmt.Errorf("maintain: k must be ≥ 1, got %d", k)
}
