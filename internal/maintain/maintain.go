// Package maintain keeps a k-fold clustering alive under churn without
// re-running the full algorithm: when cluster heads fail (or nodes move),
// the repair routine restores k-coverage with purely local promotions —
// the same promotion machinery as Part II of Algorithm 3, applied to the
// residual deficit only. This is the incremental counterpart the paper's
// motivation calls for: a k-fold dominating set tolerates up to k−1 local
// failures outright, and repair replenishes the budget afterwards.
package maintain

import (
	"fmt"

	"ftclust/internal/graph"
)

// RepairResult reports what a repair did.
type RepairResult struct {
	// InSet is the repaired dominator mask (dead nodes never included).
	InSet []bool
	// Promoted counts the nodes newly added.
	Promoted int
	// Iterations is the number of local promotion rounds used.
	Iterations int
}

// Repair restores k-fold domination after failures. leader is the current
// dominator mask; dead marks failed nodes (they neither serve nor demand
// coverage). Every surviving node v gets min(k, live-degree+1) live
// dominators in its closed neighborhood. The repair touches only
// neighborhoods with a deficit: intact regions keep their heads, so the
// incremental cost is proportional to the damage, which experiment E16
// measures against full re-clustering.
func Repair(g *graph.Graph, leader []bool, dead map[graph.NodeID]bool, k int) (RepairResult, error) {
	n := g.NumNodes()
	if len(leader) != n {
		return RepairResult{}, fmt.Errorf("maintain: mask has %d entries for %d nodes", len(leader), n)
	}
	if k < 1 {
		return RepairResult{}, fmt.Errorf("maintain: k must be ≥ 1, got %d", k)
	}
	inSet := make([]bool, n)
	for v := 0; v < n; v++ {
		inSet[v] = leader[v] && !dead[graph.NodeID(v)]
	}
	res := RepairResult{InSet: inSet}

	// Live closed-neighborhood demand per node.
	demand := make([]int, n)
	for v := 0; v < n; v++ {
		if dead[graph.NodeID(v)] {
			continue
		}
		liveDeg := 0
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if !dead[w] {
				liveDeg++
			}
		}
		demand[v] = minInt(k, liveDeg+1)
	}

	for iter := 0; ; iter++ {
		// Coverage over live nodes.
		deficitNodes := 0
		cov := make([]int, n)
		for v := 0; v < n; v++ {
			if dead[graph.NodeID(v)] {
				continue
			}
			if inSet[v] {
				cov[v]++
			}
			for _, w := range g.Neighbors(graph.NodeID(v)) {
				if !dead[w] && inSet[w] {
					cov[v]++
				}
			}
		}
		for v := 0; v < n; v++ {
			if !dead[graph.NodeID(v)] && cov[v] < demand[v] {
				deficitNodes++
			}
		}
		if deficitNodes == 0 {
			res.Iterations = iter
			return res, nil
		}
		// Each deficient node promotes its lowest-ID live non-member
		// closed neighbors to close its own gap (one local round).
		promote := make([]bool, n)
		for v := 0; v < n; v++ {
			if dead[graph.NodeID(v)] || cov[v] >= demand[v] {
				continue
			}
			need := demand[v] - cov[v]
			forClosedLive(g, v, dead, func(u int) {
				if need > 0 && !inSet[u] && !promote[u] {
					promote[u] = true
					need--
				}
			})
		}
		for v := 0; v < n; v++ {
			if promote[v] {
				inSet[v] = true
				res.Promoted++
			}
		}
	}
}

// Damage summarizes the deficit caused by failures, before repair.
type Damage struct {
	// DeficientNodes counts live nodes below their k-coverage.
	DeficientNodes int
	// LostHeads counts failed dominators.
	LostHeads int
}

// Assess measures the coverage damage of a failure set.
func Assess(g *graph.Graph, leader []bool, dead map[graph.NodeID]bool, k int) Damage {
	var d Damage
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		if leader[v] && dead[graph.NodeID(v)] {
			d.LostHeads++
		}
	}
	for v := 0; v < n; v++ {
		if dead[graph.NodeID(v)] {
			continue
		}
		liveDeg, cov := 0, 0
		if leader[v] && !dead[graph.NodeID(v)] {
			cov++
		}
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if dead[w] {
				continue
			}
			liveDeg++
			if leader[w] {
				cov++
			}
		}
		if cov < minInt(k, liveDeg+1) {
			d.DeficientNodes++
		}
	}
	return d
}

// forClosedLive visits the live members of v's closed neighborhood in
// ascending ID order.
func forClosedLive(g *graph.Graph, v int, dead map[graph.NodeID]bool, fn func(u int)) {
	visitedSelf := false
	self := func() {
		if !dead[graph.NodeID(v)] {
			fn(v)
		}
	}
	for _, w := range g.Neighbors(graph.NodeID(v)) {
		if !visitedSelf && int(w) > v {
			self()
			visitedSelf = true
		}
		if !dead[w] {
			fn(int(w))
		}
	}
	if !visitedSelf {
		self()
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
