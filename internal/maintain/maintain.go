// Package maintain keeps a k-fold clustering alive under churn without
// re-running the full algorithm: when cluster heads fail (or nodes move),
// the repair routine restores k-coverage with purely local promotions —
// the same promotion machinery as Part II of Algorithm 3, applied to the
// residual deficit only. This is the incremental counterpart the paper's
// motivation calls for: a k-fold dominating set tolerates up to k−1 local
// failures outright, and repair replenishes the budget afterwards.
//
// Two entry points share the promotion machinery:
//
//   - Repair is the one-shot API: given a mask and a failure set it runs
//     ONE linear assessment pass to find the deficit frontier, then
//     promotion rounds that touch only the deficient neighborhoods —
//     never a full per-round rescan.
//   - Engine is the streaming API: a long-lived session applies batches
//     of topology and liveness deltas; coverage state is maintained
//     incrementally, so each repair costs O(affected neighborhood) with
//     no linear pass at all. BENCH_repair.json measures both claims.
package maintain

import (
	"fmt"

	"ftclust/internal/graph"
)

// RepairResult reports what a repair did.
type RepairResult struct {
	// InSet is the repaired dominator mask (dead nodes never included).
	InSet []bool
	// Promoted counts the nodes newly added.
	Promoted int
	// Iterations is the number of local promotion rounds used.
	Iterations int
	// Touched counts the distinct nodes whose coverage state the
	// promotion rounds examined or updated — the "damage" the repair
	// actually paid for, excluding the initial linear assessment. For
	// localized failures this scales with the failure neighborhood, not
	// with n.
	Touched int
}

// Repair restores k-fold domination after failures. leader is the current
// dominator mask; dead marks failed nodes (they neither serve nor demand
// coverage). Every surviving node v gets min(k, live-degree+1) live
// dominators in its closed neighborhood.
//
// The implementation is worklist-driven: one linear pass computes live
// coverage and seeds the frontier with the deficient nodes (for a mask
// that k-covered the pre-failure graph these all sit inside the failed
// nodes' 1-hop neighborhoods); every promotion round after that touches
// only nodes whose coverage could still be short, updating coverage
// incrementally as heads are promoted. Deficits never spread — promotion
// only raises coverage — so the rounds cost O(deficit neighborhood), not
// O(n·Δ). The result is identical to running the promotion machinery
// globally round by round.
func Repair(g *graph.Graph, leader []bool, dead map[graph.NodeID]bool, k int) (RepairResult, error) {
	n := g.NumNodes()
	if len(leader) != n {
		return RepairResult{}, fmt.Errorf("maintain: mask has %d entries for %d nodes", len(leader), n)
	}
	if k < 1 {
		return RepairResult{}, fmt.Errorf("maintain: k must be ≥ 1, got %d", k)
	}
	inSet := make([]bool, n)
	for v := 0; v < n; v++ {
		inSet[v] = leader[v] && !dead[graph.NodeID(v)]
	}
	res := RepairResult{InSet: inSet}

	// One linear assessment pass: live coverage, capped live demand, and
	// the initial deficit frontier. This is the only full scan; the old
	// implementation repeated it every promotion round.
	cov := make([]int32, n)
	demand := make([]int32, n)
	var frontier []int32 // deficient nodes, ascending
	for v := 0; v < n; v++ {
		if dead[graph.NodeID(v)] {
			continue
		}
		liveDeg := 0
		c := 0
		if inSet[v] {
			c++
		}
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if !dead[w] {
				liveDeg++
				if inSet[w] {
					c++
				}
			}
		}
		cov[v] = int32(c)
		demand[v] = int32(minInt(k, liveDeg+1))
		if cov[v] < demand[v] {
			frontier = append(frontier, int32(v))
		}
	}

	touched := make([]bool, n)
	countTouch := func(v int) {
		if !touched[v] {
			touched[v] = true
			res.Touched++
		}
	}

	// Promotion rounds over the frontier only. Coverage never decreases
	// and demand is fixed, so a node deficient in round r was deficient in
	// round 0: the frontier is a superset of every later round's deficit
	// set, and shrinking it in place preserves the global round-by-round
	// behavior exactly.
	promoted := make([]bool, n)
	var promoList []int32
	for iter := 0; ; iter++ {
		// Deficits surviving into this round, in ascending ID order.
		live := frontier[:0]
		for _, v := range frontier {
			if cov[v] < demand[v] {
				live = append(live, v)
			}
		}
		frontier = live
		if len(frontier) == 0 {
			res.Iterations = iter
			return res, nil
		}
		// Each deficient node promotes its lowest-ID live non-member
		// closed neighbors to close its own gap (one local round).
		promoList = promoList[:0]
		for _, vv := range frontier {
			v := int(vv)
			countTouch(v)
			need := demand[v] - cov[v]
			forClosedLive(g, v, dead, func(u int) {
				if need > 0 && !inSet[u] && !promoted[u] {
					promoted[u] = true
					promoList = append(promoList, int32(u))
					need--
				}
			})
		}
		for _, uu := range promoList {
			u := int(uu)
			inSet[u] = true
			promoted[u] = false // reset for the next round
			res.Promoted++
			countTouch(u)
			// The new head covers its live closed neighborhood.
			cov[u]++
			for _, w := range g.Neighbors(graph.NodeID(u)) {
				if !dead[w] {
					cov[w]++
					countTouch(int(w))
				}
			}
		}
	}
}

// Damage summarizes the deficit caused by failures, before repair.
type Damage struct {
	// DeficientNodes counts live nodes below their k-coverage.
	DeficientNodes int
	// LostHeads counts failed dominators.
	LostHeads int
}

// Assess measures the coverage damage of a failure set.
func Assess(g *graph.Graph, leader []bool, dead map[graph.NodeID]bool, k int) Damage {
	var d Damage
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		if leader[v] && dead[graph.NodeID(v)] {
			d.LostHeads++
		}
	}
	for v := 0; v < n; v++ {
		if dead[graph.NodeID(v)] {
			continue
		}
		liveDeg, cov := 0, 0
		if leader[v] && !dead[graph.NodeID(v)] {
			cov++
		}
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if dead[w] {
				continue
			}
			liveDeg++
			if leader[w] {
				cov++
			}
		}
		if cov < minInt(k, liveDeg+1) {
			d.DeficientNodes++
		}
	}
	return d
}

// forClosedLive visits the live members of v's closed neighborhood in
// ascending ID order.
func forClosedLive(g *graph.Graph, v int, dead map[graph.NodeID]bool, fn func(u int)) {
	visitedSelf := false
	self := func() {
		if !dead[graph.NodeID(v)] {
			fn(v)
		}
	}
	for _, w := range g.Neighbors(graph.NodeID(v)) {
		if !visitedSelf && int(w) > v {
			self()
			visitedSelf = true
		}
		if !dead[w] {
			fn(int(w))
		}
	}
	if !visitedSelf {
		self()
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
