package exp

import (
	"fmt"
	"math"

	"ftclust/internal/baseline"
	"ftclust/internal/core"
	"ftclust/internal/geom"
	"ftclust/internal/stats"
	"ftclust/internal/trace"
	"ftclust/internal/udg"
	"ftclust/internal/verify"
)

// PartICorrectness is E5: Lemma 5.1 — the Part I leaders always dominate.
func PartICorrectness(cfg Config) (*trace.Table, error) {
	tb := trace.New("E5 — Part I dominates (Lemma 5.1)",
		"n", "density", "trials", "violations", "mean|S_I|", "rounds")
	tb.Note = "violations counts trials whose Part I output is not a dominating set (must be 0)."
	for _, n := range []int{cfg.scaled(64), cfg.scaled(256), cfg.scaled(1024), cfg.scaled(4096)} {
		for _, density := range []float64{8, 25} {
			bad := 0
			var sizes []float64
			rounds := 0
			for trial := 0; trial < cfg.trials(); trial++ {
				pts, g, idx := udgInstance(n, density, cfg.trialSeed(trial))
				res, err := udg.Solve(pts, g, idx, udg.Options{K: 1, Seed: cfg.trialSeed(500 + trial)})
				if err != nil {
					return nil, err
				}
				if verify.CheckKFold(g, res.PartILeader, 1, verify.Standard) != nil {
					bad++
				}
				sizes = append(sizes, float64(res.PartISize()))
				rounds = res.PartIRounds
			}
			tb.AddRow(n, density, cfg.trials(), bad, stats.Mean(sizes), rounds)
		}
	}
	return tb, nil
}

// LeadersPerDiskExp is E6: Lemma 5.5 — the expected number of Part I
// leaders per half-radius disk stays O(1) as n grows.
func LeadersPerDiskExp(cfg Config) (*trace.Table, error) {
	tb := trace.New("E6 — leaders per ½-disk after Part I (Lemma 5.5)",
		"n", "rounds", "mean/disk", "p95/disk", "max/disk")
	tb.Note = "the per-disk mean must stay flat (O(1)) as n grows by 64×."
	for _, n := range []int{cfg.scaled(256), cfg.scaled(1024), cfg.scaled(4096), cfg.scaled(16384)} {
		var means, p95s, maxs []float64
		rounds := 0
		for trial := 0; trial < cfg.trials(); trial++ {
			pts, g, idx := udgInstance(n, 20, cfg.trialSeed(trial))
			res, err := udg.Solve(pts, g, idx, udg.Options{K: 1, Seed: cfg.trialSeed(900 + trial)})
			if err != nil {
				return nil, err
			}
			counts := udg.LeadersPerDisk(pts, res.PartILeader)
			xs := make([]float64, len(counts))
			for i, c := range counts {
				xs[i] = float64(c)
			}
			means = append(means, stats.Mean(xs))
			p95s = append(p95s, stats.Quantile(xs, 0.95))
			maxs = append(maxs, stats.Max(xs))
			rounds = res.PartIRounds
		}
		tb.AddRow(n, rounds, stats.Mean(means), stats.Mean(p95s), stats.Max(maxs))
	}
	return tb, nil
}

// UDGEndToEnd is E7: Theorem 5.7 — O(k) leaders per disk, O(1)
// approximation, O(log log n) rounds.
func UDGEndToEnd(cfg Config) (*trace.Table, error) {
	tb := trace.New("E7 — UDG end-to-end (Lemma 5.6, Theorem 5.7)",
		"n", "k", "rounds", "log_1.5(log2 n)", "|S|", "|S|/(k·disks)", "ratio-vs-greedy", "ratio-vs-LB", "fallback")
	tb.Note = "rounds tracks log log n; |S|/(k·occupied-disks) and both ratios must stay O(1) in k and n."
	for _, n := range []int{cfg.scaled(256), cfg.scaled(1024), cfg.scaled(4096)} {
		for _, k := range []int{1, 2, 4, 8} {
			var sizes, perDisk, vsGreedy, vsLB, fallback []float64
			rounds := 0
			for trial := 0; trial < cfg.trials(); trial++ {
				pts, g, idx := udgInstance(n, 20, cfg.trialSeed(trial))
				res, err := udg.Solve(pts, g, idx, udg.Options{K: k, Seed: cfg.trialSeed(70 + trial)})
				if err != nil {
					return nil, err
				}
				if err := verify.CheckKFold(g, res.Leader, float64(k), verify.ClosedPP); err != nil {
					return nil, fmt.Errorf("E7: infeasible output: %w", err)
				}
				rounds = res.PartIRounds
				sizes = append(sizes, float64(res.Size()))

				counts := udg.LeadersPerDisk(pts, res.Leader)
				occupied := len(counts)
				if occupied > 0 {
					perDisk = append(perDisk, float64(res.Size())/float64(k*occupied))
				}
				greedy := verify.SetSize(baseline.GreedyKMDS(g, float64(k)))
				vsGreedy = append(vsGreedy, float64(res.Size())/float64(greedy))
				kv := core.EffectiveDemands(g, float64(k))
				lb, _ := optFractional(g, kv, 300)
				vsLB = append(vsLB, float64(res.Size())/lb)
				fallback = append(fallback, float64(res.FallbackRecruits))
			}
			tb.AddRow(n, k, rounds, math.Log(math.Log2(float64(n)))/math.Log(1.5),
				stats.Mean(sizes), stats.Mean(perDisk), stats.Mean(vsGreedy),
				stats.Mean(vsLB), stats.Max(fallback))
		}
	}
	return tb, nil
}

// Figure1Geometry is E8: Lemma 5.3's covering bound and Figure 1's 19-disk
// containment, measured on the actual hexagonal lattice.
func Figure1Geometry(cfg Config) (*trace.Table, error) {
	tb := trace.New("E8 — hexagonal covering geometry (Lemma 5.3, Figure 1)",
		"round i", "θ_i", "α(i) measured", "exact bound", "paper bound η/4θ²", "paper bound valid", "D_i disks")
	tb.Note = "paper bound is asymptotic (needs (1/2+θ)²≤1/2 i.e. θ≲0.207); D_i disks must be 19."
	n := 1 << 16
	r := geom.PartIRounds(n)
	for i := 1; i <= r; i++ {
		theta := geom.Theta(i, r)
		alpha := geom.Alpha(theta)
		exact := geom.AlphaBoundExact(theta)
		paper := geom.AlphaBound(theta)
		valid := theta <= math.Sqrt2/2-0.5
		nineteen := geom.IntersectingDisks(theta/2, 3*theta/2)
		tb.AddRow(i, theta, alpha, exact, paper, valid, nineteen)
		if float64(alpha) >= exact {
			return nil, fmt.Errorf("E8: α(%d)=%d exceeds exact bound %.2f", i, alpha, exact)
		}
		if nineteen != 19 {
			return nil, fmt.Errorf("E8: D_%d covers %d disks, want 19", i, nineteen)
		}
	}
	_ = cfg
	return tb, nil
}

// AblPartTwoFanout is A2: promotion fan-out k (paper) vs 1 per iteration.
func AblPartTwoFanout(cfg Config) (*trace.Table, error) {
	tb := trace.New("A2 — Part II promotion fan-out",
		"n", "k", "fan-out", "|S|", "part-II iters")
	tb.Note = "fan-out k (the paper's choice) converges in fewer iterations at equal size."
	n := cfg.scaled(1500)
	for _, k := range []int{2, 4, 8} {
		for _, fan := range []int{1, 0} { // 0 = paper default (k)
			var sizes, iters []float64
			for trial := 0; trial < cfg.trials(); trial++ {
				pts, g, idx := udgInstance(n, 20, cfg.trialSeed(trial))
				res, err := udg.Solve(pts, g, idx, udg.Options{K: k, Seed: cfg.trialSeed(33 + trial), FanOut: fan})
				if err != nil {
					return nil, err
				}
				if err := verify.CheckKFold(g, res.Leader, float64(k), verify.ClosedPP); err != nil {
					return nil, err
				}
				sizes = append(sizes, float64(res.Size()))
				iters = append(iters, float64(res.PartIIIters))
			}
			label := fan
			if fan == 0 {
				label = k
			}
			tb.AddRow(n, k, label, stats.Mean(sizes), stats.Mean(iters))
		}
	}
	return tb, nil
}
