// Package exp contains one driver per experiment of EXPERIMENTS.md. The
// paper (ICDCS 2006) is purely analytical — it has no measurement tables
// and a single figure — so the experiment suite regenerates each
// quantitative *claim* (Theorems 4.5, 4.6, 5.7; Lemmas 4.3, 4.4, 5.1, 5.3,
// 5.5, 5.6; the model's O(log n)-bit messages; and the fault-tolerance
// motivation of Section 1) as a measured table. cmd/ftbench prints the full
// tables; bench_test.go runs scaled-down versions under testing.B.
package exp

import (
	"fmt"
	"math"

	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/lp"
	"ftclust/internal/rng"
	"ftclust/internal/trace"
)

// Config scales an experiment run.
type Config struct {
	// Seed is the root seed; every trial derives from it.
	Seed int64
	// Trials is the number of repetitions per row (averaged).
	Trials int
	// Scale in (0, 1] shrinks instance sizes for quick runs (benches use
	// ~0.3, cmd/ftbench uses 1.0).
	Scale float64
}

// DefaultConfig returns the full-size configuration.
func DefaultConfig() Config { return Config{Seed: 1, Trials: 5, Scale: 1} }

func (c Config) scaled(n int) int {
	s := c.Scale
	if s <= 0 || s > 1 {
		s = 1
	}
	v := int(float64(n) * s)
	if v < 8 {
		v = 8
	}
	return v
}

func (c Config) trialSeed(i int) int64 {
	return rng.Derive(c.Seed, uint64(i)+101)
}

func (c Config) trials() int {
	if c.Trials < 1 {
		return 1
	}
	return c.Trials
}

// Experiment pairs an identifier with its driver, so cmd/ftbench can
// enumerate the suite.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*trace.Table, error)
}

// All returns the experiment suite in presentation order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Theorem 4.5 — fractional time/approximation trade-off", FractionalTradeoff},
		{"E2", "Theorem 4.6 — randomized-rounding blowup", RoundingBlowup},
		{"E3", "combined algorithm vs baselines (general graphs)", EndToEnd},
		{"E4", "Lemmas 4.3/4.4 — dual certificate", DualCertificate},
		{"E5", "Lemma 5.1 — Part I produces a dominating set", PartICorrectness},
		{"E6", "Lemma 5.5 — O(1) leaders per half-disk after Part I", LeadersPerDiskExp},
		{"E7", "Theorem 5.7 — UDG end-to-end: O(k)/disk, O(1)-approx, log log n rounds", UDGEndToEnd},
		{"E8", "Lemma 5.3 / Figure 1 — hexagonal covering geometry", Figure1Geometry},
		{"E9", "model — O(log n)-bit messages", MessageSize},
		{"E10", "Section 1 motivation — fault tolerance of k-fold clustering", FaultTolerance},
		{"E11", "lower-bound context [13] — measured trade-off vs Ω(Δ^{1/t}/t)", LowerBoundGap},
		{"E12", "extension — weighted k-MDS (Section 4.1 remark)", WeightedKMDS},
		{"E13", "extension — clustering decay under mobility", MobilityDecay},
		{"E14", "extension — connected-backbone overhead [1, 22, 23]", CDSOverhead},
		{"E15", "extension — α-synchronizer overhead (Awerbuch [2])", SynchronizerOverhead},
		{"E16", "application — backbone routing stretch [1, 23]", RoutingStretch},
		{"E17", "application — slotted-ALOHA neighbor discovery [12]", NeighborDiscovery},
		{"E18", "robustness — crashes during the protocol + repair", CrashRobustness},
		{"A1", "ablation — Algorithm 2 without the REQ repair step", AblRoundingNoRepair},
		{"A2", "ablation — Part II promotion fan-out", AblPartTwoFanout},
		{"A3", "ablation — global Δ vs 2-hop-local Δ in Algorithm 1", AblLocalDelta},
	}
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// optFractional computes OPT_f by simplex for moderate n, falling back to
// the combinatorial lower bound Σk/(Δ+1) paired with the greedy upper
// bound when the LP would be too slow. ok reports whether the value is the
// exact LP optimum.
func optFractional(g *graph.Graph, k []float64, maxLPNodes int) (opt float64, exact bool) {
	c := lp.FromGraph(g, k)
	if g.NumNodes() <= maxLPNodes {
		if _, v, err := c.SolveFractional(); err == nil {
			return v, true
		}
	}
	return math.Max(c.LowerBoundDegree(), c.LowerBoundDemand()), false
}

// UDGInstance builds a random uniform deployment with the given expected
// density (nodes per unit-disk area ≈ density). Shared by the experiment
// drivers and cmd/ftsim.
func UDGInstance(n int, density float64, seed int64) ([]geom.Point, *graph.Graph, *geom.Index) {
	// side² · density = n · π  ⇒  side = sqrt(n·π/density).
	side := math.Sqrt(float64(n) * math.Pi / density)
	pts := geom.UniformPoints(n, side, seed)
	g, idx := geom.UnitUDG(pts)
	return pts, g, idx
}

// udgInstance is the package-internal shorthand.
func udgInstance(n int, density float64, seed int64) ([]geom.Point, *graph.Graph, *geom.Index) {
	return UDGInstance(n, density, seed)
}
