package exp

import (
	"ftclust/internal/baseline"
	"ftclust/internal/core"
	"ftclust/internal/graph"
	"ftclust/internal/rng"
	"ftclust/internal/sim"
	"ftclust/internal/stats"
	"ftclust/internal/trace"
	"ftclust/internal/udg"
	"ftclust/internal/verify"
)

// MessageSize is E9: the model claim that both algorithms use O(log n)-bit
// messages, measured by the simulator's bit accounting on the actual
// message-passing executions.
func MessageSize(cfg Config) (*trace.Table, error) {
	tb := trace.New("E9 — message sizes (model, Section 3)",
		"algorithm", "n", "max msg bits", "bits/⌈log₂n⌉", "total Mbit", "rounds")
	tb.Note = "bits/log n must stay bounded (→3 for Alg 1's xMsg, →4 for Alg 3's random IDs)."
	for _, n := range []int{cfg.scaled(128), cfg.scaled(512), cfg.scaled(2048)} {
		// Algorithm 1+2 on a bounded-degree random graph.
		g := graph.GnpAvgDegree(n, 10, cfg.Seed)
		nw := sim.New(g, sim.WithSeed(cfg.Seed))
		res, err := nw.Run(func(v graph.NodeID) sim.Program {
			return core.NewProgram(v, core.ProgramConfig{K: 2, T: 2, Delta: g.MaxDegree(), Round: true})
		}, 500)
		if err != nil {
			return nil, err
		}
		tb.AddRow("general (Alg 1+2)", n, res.Metrics.MaxMessageBits,
			res.Metrics.MaxBitsPerLogN(n), float64(res.Metrics.TotalBits)/1e6, res.Metrics.Rounds)

		// Algorithm 3 on a UDG deployment.
		pts, ug, _ := udgInstance(n, 15, cfg.Seed+int64(n))
		simPts := make([]sim.Point, len(pts))
		for i, p := range pts {
			simPts[i] = sim.Point{X: p.X, Y: p.Y}
		}
		unw := sim.New(ug, sim.WithSeed(cfg.Seed), sim.WithDistances(simPts))
		ures, err := unw.Run(func(v graph.NodeID) sim.Program {
			return udg.NewProgram(v, udg.ProgramConfig{K: 2, PartIIIters: 6})
		}, 500)
		if err != nil {
			return nil, err
		}
		tb.AddRow("UDG (Alg 3)", n, ures.Metrics.MaxMessageBits,
			ures.Metrics.MaxBitsPerLogN(n), float64(ures.Metrics.TotalBits)/1e6, ures.Metrics.Rounds)
	}
	return tb, nil
}

// FaultTolerance is E10: the Section 1 motivation. k-fold dominating sets
// keep nodes covered under random dominator failures where 1-fold
// clustering loses coverage; adversarially killing any k-1 dominators can
// never uncover a node.
func FaultTolerance(cfg Config) (*trace.Table, error) {
	tb := trace.New("E10 — fault tolerance of k-fold clustering (Section 1)",
		"k", "|S|", "fail-p", "uncovered %", "min-cov", "adversarial k-1 kills safe")
	tb.Note = "uncovered % = surviving non-members with zero live dominators; k-fold decays gracefully."
	n := cfg.scaled(1200)
	pts, g, idx := udgInstance(n, 20, cfg.Seed)
	for _, k := range []int{1, 2, 3, 5} {
		res, err := udg.Solve(pts, g, idx, udg.Options{K: k, Seed: cfg.Seed + int64(k)})
		if err != nil {
			return nil, err
		}
		if err := verify.CheckKFold(g, res.Leader, float64(k), verify.ClosedPP); err != nil {
			return nil, err
		}
		for _, p := range []float64{0.1, 0.3, 0.5} {
			var uncovered, minCov []float64
			for trial := 0; trial < cfg.trials(); trial++ {
				r := rng.NewStream(cfg.trialSeed(trial), uint64(k*100)+uint64(p*10))
				dead := map[graph.NodeID]bool{}
				for v := 0; v < g.NumNodes(); v++ {
					if res.Leader[v] && r.Float64() < p {
						dead[graph.NodeID(v)] = true
					}
				}
				rep := verify.AfterFailures(g, res.Leader, dead)
				nonMembers := g.NumNodes() - res.Size()
				if nonMembers > 0 {
					uncovered = append(uncovered, 100*float64(rep.UncoveredNodes)/float64(nonMembers))
				}
				minCov = append(minCov, float64(rep.MinCoverage))
			}
			tb.AddRow(k, res.Size(), p, stats.Mean(uncovered), stats.Min(minCov),
				adversarialSafe(g, res.Leader, k))
		}
	}
	return tb, nil
}

// adversarialSafe verifies the defining property: for every non-member
// node, killing ANY k-1 of its dominators leaves it covered — equivalently
// every non-member has ≥ min(k, δ) dominators.
func adversarialSafe(g *graph.Graph, inSet []bool, k int) bool {
	for v := 0; v < g.NumNodes(); v++ {
		if inSet[v] {
			continue
		}
		id := graph.NodeID(v)
		need := k
		if d := g.Degree(id); d < need {
			need = d
		}
		got := 0
		for _, w := range g.Neighbors(id) {
			if inSet[w] {
				got++
			}
		}
		if got < need {
			return false
		}
	}
	return true
}

// FaultComparisonRow compares the paper's algorithm against the cell-grid
// baseline and S=V under failures; used by the sensorgrid example and
// available to the harness.
func FaultComparisonRow(n int, k int, failP float64, seed int64) (*trace.Table, error) {
	tb := trace.New("fault comparison",
		"solution", "|S|", "uncovered % @p", "min-cov")
	pts, g, idx := udgInstance(n, 20, seed)
	sol, err := udg.Solve(pts, g, idx, udg.Options{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	cell, err := baseline.CellGrid(pts, k)
	if err != nil {
		return nil, err
	}
	all := baseline.AllNodes(n)
	r := rng.New(seed + 7)
	for _, row := range []struct {
		name string
		mask []bool
	}{
		{"algorithm-3", sol.Leader},
		{"cell-grid", cell},
		{"all-nodes", all},
	} {
		dead := map[graph.NodeID]bool{}
		for v := 0; v < n; v++ {
			if row.mask[v] && r.Float64() < failP {
				dead[graph.NodeID(v)] = true
			}
		}
		rep := verify.AfterFailures(g, row.mask, dead)
		nonMembers := n - verify.SetSize(row.mask)
		pct := 0.0
		if nonMembers > 0 {
			pct = 100 * float64(rep.UncoveredNodes) / float64(nonMembers)
		}
		tb.AddRow(row.name, verify.SetSize(row.mask), pct, rep.MinCoverage)
	}
	return tb, nil
}
