package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyConfig keeps experiment tests fast.
func tinyConfig() Config { return Config{Seed: 3, Trials: 2, Scale: 0.12} }

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run(tinyConfig())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tb.NumRows() == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			var buf bytes.Buffer
			if err := tb.WriteText(&buf); err != nil {
				t.Fatalf("%s: render: %v", e.ID, err)
			}
			if !strings.Contains(buf.String(), e.ID) {
				t.Errorf("%s: table title should carry the experiment id", e.ID)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("E1"); err != nil {
		t.Errorf("E1 should exist: %v", err)
	}
	if _, err := Lookup("E99"); err == nil {
		t.Error("E99 should not exist")
	}
}

func TestE1RatiosWithinBound(t *testing.T) {
	tb, err := FractionalTradeoff(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Column 10 is ratio/bound; must be ≤ 1 everywhere.
	for i := 0; i < tb.NumRows(); i++ {
		cell := tb.Row(i)[10]
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("row %d: bad ratio/bound %q", i, cell)
		}
		if v > 1.0+1e-9 {
			t.Errorf("row %d: ratio exceeds Theorem 4.5 bound (ratio/bound = %v)", i, v)
		}
	}
}

func TestE5NoViolations(t *testing.T) {
	tb, err := PartICorrectness(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tb.NumRows(); i++ {
		if tb.Row(i)[3] != "0" {
			t.Errorf("row %d: Part I violations = %s, want 0", i, tb.Row(i)[3])
		}
	}
}

func TestE10AdversarialSafety(t *testing.T) {
	tb, err := FaultTolerance(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tb.NumRows(); i++ {
		if got := tb.Row(i)[5]; got != "true" {
			t.Errorf("row %d: adversarial safety = %s", i, got)
		}
	}
}

func TestE2BlowupWithinTheorem(t *testing.T) {
	tb, err := RoundingBlowup(Config{Seed: 5, Trials: 3, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tb.NumRows(); i++ {
		blowup, err1 := strconv.ParseFloat(tb.Row(i)[6], 64)
		bound, err2 := strconv.ParseFloat(tb.Row(i)[7], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("row %d: parse: %v %v", i, err1, err2)
		}
		// Theorem 4.6 bounds the expectation; allow sampling slack.
		if blowup > 1.5*bound+1 {
			t.Errorf("row %d: blowup %.2f far above bound %.2f", i, blowup, bound)
		}
	}
}

func TestE14BackbonesConnected(t *testing.T) {
	tb, err := CDSOverhead(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tb.NumRows(); i++ {
		if tb.Row(i)[6] != "true" {
			t.Errorf("row %d: backbone not connected", i)
		}
	}
}

func TestE15ResultsEqual(t *testing.T) {
	tb, err := SynchronizerOverhead(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tb.NumRows(); i++ {
		if tb.Row(i)[5] != "true" {
			t.Errorf("row %d: async results diverge from sync", i)
		}
	}
}

func TestE16StretchSane(t *testing.T) {
	tb, err := RoutingStretch(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tb.NumRows(); i++ {
		v, err := strconv.ParseFloat(tb.Row(i)[3], 64)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if v < 1 || v > 5 {
			t.Errorf("row %d: mean stretch %v implausible", i, v)
		}
	}
}

func TestE12WeightedNoWorseThanBlind(t *testing.T) {
	tb, err := WeightedKMDS(Config{Seed: 2, Trials: 3, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// The heuristic can lose on individual tiny instances; assert the
	// aggregate advantage across the sweep.
	var weightedSum, blindSum float64
	for i := 0; i < tb.NumRows(); i++ {
		weighted, err1 := strconv.ParseFloat(tb.Row(i)[4], 64)
		blind, err2 := strconv.ParseFloat(tb.Row(i)[5], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("row %d: parse", i)
		}
		weightedSum += weighted
		blindSum += blind
	}
	if weightedSum > blindSum*1.05 {
		t.Errorf("weighted total %.1f worse than cost-blind total %.1f", weightedSum, blindSum)
	}
}

func TestFaultComparisonRow(t *testing.T) {
	tb, err := FaultComparisonRow(150, 3, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", tb.NumRows())
	}
}
