package exp

import (
	"math"

	"ftclust/internal/baseline"
	"ftclust/internal/core"
	"ftclust/internal/graph"
	"ftclust/internal/lp"
	"ftclust/internal/stats"
	"ftclust/internal/trace"
	"ftclust/internal/verify"
)

// FractionalTradeoff is E1: Theorem 4.5's time/approximation trade-off.
// For each graph family and t, it reports the measured ratio Σx/OPT_f,
// the theorem's bound t((Δ+1)^{2/t}+(Δ+1)^{1/t}), and the loop rounds 2t².
func FractionalTradeoff(cfg Config) (*trace.Table, error) {
	tb := trace.New("E1 — fractional trade-off (Theorem 4.5)",
		"family", "n", "Δ", "k", "t", "rounds", "Σx", "OPT_f", "ratio", "bound", "ratio/bound")
	tb.Note = "ratio = Σx/OPT_f must stay ≤ bound; rounds = 2t² exactly."
	families := []graph.Family{graph.FamilyGnp, graph.FamilyGrid, graph.FamilyPowerLaw}
	ts := []int{1, 2, 3, 4, 6, 8}
	n := cfg.scaled(400)
	for _, fam := range families {
		for _, k := range []float64{1, 3} {
			// The instance (and hence OPT_f) depends only on the trial;
			// solve the LP once and reuse it across all t.
			ratios := make(map[int][]float64, len(ts))
			objs := make(map[int][]float64, len(ts))
			var opts []float64
			var delta int
			for trial := 0; trial < cfg.trials(); trial++ {
				g, err := graph.Generate(fam, n, 10, cfg.trialSeed(trial))
				if err != nil {
					return nil, err
				}
				kv := core.EffectiveDemands(g, k)
				opt, _ := optFractional(g, kv, 450)
				opts = append(opts, opt)
				for _, t := range ts {
					res, err := core.SolveFractional(g, kv, core.FractionalOptions{T: t})
					if err != nil {
						return nil, err
					}
					ratios[t] = append(ratios[t], res.Objective()/opt)
					objs[t] = append(objs[t], res.Objective())
					delta = res.Delta
				}
			}
			for _, t := range ts {
				ratio := stats.Mean(ratios[t])
				bound := core.TheoreticalRatio(t, delta)
				tb.AddRow(string(fam), n, delta, k, t, 2*t*t,
					stats.Mean(objs[t]), stats.Mean(opts), ratio, bound, ratio/bound)
			}
		}
	}
	return tb, nil
}

// RoundingBlowup is E2: Theorem 4.6's claim that rounding multiplies the
// fractional objective by at most ln(Δ+1)+O(1) in expectation.
func RoundingBlowup(cfg Config) (*trace.Table, error) {
	tb := trace.New("E2 — randomized rounding blowup (Theorem 4.6)",
		"family", "n", "Δ", "k", "Σx", "|S|", "blowup", "ln(Δ+1)+2", "sampled", "repaired")
	tb.Note = "blowup = |S|/Σx; Theorem 4.6 bounds its expectation by ln(Δ+1)+O(1)."
	n := cfg.scaled(500)
	for _, fam := range []graph.Family{graph.FamilyGnp, graph.FamilyGrid, graph.FamilyTree} {
		for _, k := range []float64{1, 2, 4} {
			var obj, size, sampled, repaired []float64
			var delta int
			for trial := 0; trial < cfg.trials(); trial++ {
				g, err := graph.Generate(fam, n, 12, cfg.trialSeed(trial))
				if err != nil {
					return nil, err
				}
				kv := core.EffectiveDemands(g, k)
				frac, err := core.SolveFractional(g, kv, core.FractionalOptions{T: 3})
				if err != nil {
					return nil, err
				}
				r, err := core.RoundSolution(g, kv, frac.X, frac.Delta,
					core.RoundingOptions{Seed: cfg.trialSeed(1000 + trial)})
				if err != nil {
					return nil, err
				}
				obj = append(obj, frac.Objective())
				size = append(size, float64(r.Size()))
				sampled = append(sampled, float64(r.Sampled))
				repaired = append(repaired, float64(r.Repaired))
				delta = frac.Delta
			}
			blowup := stats.Mean(size) / stats.Mean(obj)
			tb.AddRow(string(fam), n, delta, k, stats.Mean(obj), stats.Mean(size),
				blowup, core.RoundingBlowupBound(delta), stats.Mean(sampled), stats.Mean(repaired))
		}
	}
	return tb, nil
}

// EndToEnd is E3: the combined algorithm against the baselines.
func EndToEnd(cfg Config) (*trace.Table, error) {
	tb := trace.New("E3 — combined algorithm vs baselines (general graphs)",
		"family", "n", "k", "OPT_f", "kmds(t=2)", "kmds(t=lgΔ)", "greedy", "jrs", "rnd-repair", "layered-mis")
	tb.Note = "entries are mean solution sizes; every solution verified feasible (PP except layered-mis: standard)."
	n := cfg.scaled(300)
	for _, fam := range []graph.Family{graph.FamilyGnp, graph.FamilyGrid, graph.FamilyPowerLaw, graph.FamilyTree} {
		for _, k := range []float64{1, 2, 4, 8} {
			sizes := map[string][]float64{}
			var optSum []float64
			for trial := 0; trial < cfg.trials(); trial++ {
				seed := cfg.trialSeed(trial)
				g, err := graph.Generate(fam, n, 10, seed)
				if err != nil {
					return nil, err
				}
				kv := core.EffectiveDemands(g, k)
				opt, _ := optFractional(g, kv, 350)
				optSum = append(optSum, opt)

				tLg := int(math.Max(1, math.Round(math.Log2(float64(g.MaxDegree()+2)))))
				// An ordered slice, not a map: the runs execute in a fixed
				// sequence and ftlint's maporder check stays happy about
				// the per-name size accumulation below.
				runs := []struct {
					name string
					run  func() ([]bool, error)
				}{
					{"kmds2", func() ([]bool, error) {
						r, err := core.Solve(g, core.Options{K: k, T: 2, Seed: seed})
						if err != nil {
							return nil, err
						}
						return r.InSet, nil
					}},
					{"kmdsLg", func() ([]bool, error) {
						r, err := core.Solve(g, core.Options{K: k, T: tLg, Seed: seed})
						if err != nil {
							return nil, err
						}
						return r.InSet, nil
					}},
					{"greedy", func() ([]bool, error) { return baseline.GreedyKMDS(g, k), nil }},
					{"jrs", func() ([]bool, error) { return baseline.JRS(g, k, seed).InSet, nil }},
					{"rnd", func() ([]bool, error) {
						return baseline.RandomRepair(g, k, 0.15, seed), nil
					}},
				}
				for _, nr := range runs {
					mask, err := nr.run()
					if err != nil {
						return nil, err
					}
					if err := verify.CheckKFoldVector(g, mask, kv, verify.ClosedPP); err != nil {
						return nil, err
					}
					sizes[nr.name] = append(sizes[nr.name], float64(verify.SetSize(mask)))
				}
				// Layered MIS guarantees the Section 1 (standard)
				// convention, so it is verified against that.
				mis := baseline.LayeredMIS(g, int(k), seed)
				if err := verify.CheckKFold(g, mis.InSet, k, verify.Standard); err != nil {
					return nil, err
				}
				sizes["mis"] = append(sizes["mis"], float64(verify.SetSize(mis.InSet)))
			}
			tb.AddRow(string(fam), n, k, stats.Mean(optSum),
				stats.Mean(sizes["kmds2"]), stats.Mean(sizes["kmdsLg"]),
				stats.Mean(sizes["greedy"]), stats.Mean(sizes["jrs"]), stats.Mean(sizes["rnd"]),
				stats.Mean(sizes["mis"]))
		}
	}
	return tb, nil
}

// DualCertificate is E4: Lemma 4.3's identity and Lemma 4.4's bounded
// infeasibility, including instances with non-uniform per-node demands.
func DualCertificate(cfg Config) (*trace.Table, error) {
	tb := trace.New("E4 — dual certificate (Lemmas 4.3, 4.4)",
		"n", "k-kind", "t", "identity-resid", "violation/κ", "cert/OPT_f")
	tb.Note = "identity-resid ≈ 0 (Lemma 4.3); violation/κ ≤ 1 (Lemma 4.4); cert/OPT_f ≤ 1 (weak duality)."
	n := cfg.scaled(250)
	for _, kind := range []string{"uniform-2", "per-node"} {
		for _, t := range []int{1, 3, 5} {
			var resid, violFrac, certFrac []float64
			for trial := 0; trial < cfg.trials(); trial++ {
				g := graph.Gnp(n, 12/float64(n-1), cfg.trialSeed(trial))
				kv := make([]float64, n)
				for v := range kv {
					if kind == "uniform-2" {
						kv[v] = 2
					} else {
						kv[v] = float64(1 + v%4)
					}
					kv[v] = math.Min(kv[v], float64(g.Degree(graph.NodeID(v))+1))
				}
				res, err := core.SolveFractional(g, kv, core.FractionalOptions{T: t})
				if err != nil {
					return nil, err
				}
				c := lp.FromGraph(g, kv)
				resid = append(resid, math.Abs(res.DualObjective(kv)-res.BetaSum))
				violFrac = append(violFrac, c.DualViolation(res.Y, res.Z)/res.Kappa)
				opt, _ := optFractional(g, kv, 300)
				certFrac = append(certFrac, res.DualObjective(kv)/res.Kappa/opt)
			}
			tb.AddRow(n, kind, t, stats.Max(resid), stats.Max(violFrac), stats.Max(certFrac))
		}
	}
	return tb, nil
}

// LowerBoundGap is E11: the measured trade-off of E1 against the
// distributed lower bound Ω(Δ^{1/t}/t) of [13].
func LowerBoundGap(cfg Config) (*trace.Table, error) {
	tb := trace.New("E11 — measured ratio vs lower bound Ω(Δ^{1/t}/t) [13]",
		"n", "Δ", "t", "rounds", "ratio", "LB(Δ^{1/t}/t)", "upper-bound", "gap=bound/LB")
	tb.Note = "the algorithm's guarantee sits a ~t²·Δ^{1/t}·polylog factor above the LB, as the paper notes."
	n := cfg.scaled(400)
	for _, t := range []int{1, 2, 3, 4, 6, 8} {
		var ratios []float64
		var delta int
		for trial := 0; trial < cfg.trials(); trial++ {
			g := graph.Gnp(n, 14/float64(n-1), cfg.trialSeed(trial))
			kv := core.EffectiveDemands(g, 1)
			res, err := core.SolveFractional(g, kv, core.FractionalOptions{T: t})
			if err != nil {
				return nil, err
			}
			opt, _ := optFractional(g, kv, 450)
			ratios = append(ratios, res.Objective()/opt)
			delta = res.Delta
		}
		lb := core.LowerBoundRatio(t, delta)
		ub := core.TheoreticalRatio(t, delta)
		tb.AddRow(n, delta, t, 2*t*t, stats.Mean(ratios), lb, ub, ub/lb)
	}
	return tb, nil
}

// AblRoundingNoRepair is A1: Algorithm 2 with the REQ step disabled.
func AblRoundingNoRepair(cfg Config) (*trace.Table, error) {
	tb := trace.New("A1 — rounding without the REQ repair step",
		"instance", "k", "trials", "infeasible-runs", "mean|S| no-repair", "mean|S| repair")
	tb.Note = "without Lines 4–7 of Algorithm 2, feasibility fails with constant probability."
	n := cfg.scaled(240)
	type inst struct {
		name string
		g    *graph.Graph
		k    float64
	}
	ring := graph.Ring(n)
	gnp := graph.Gnp(n, 8/float64(n-1), cfg.Seed)
	for _, in := range []inst{{"ring", ring, 1}, {"gnp", gnp, 2}} {
		kv := core.EffectiveDemands(in.g, in.k)
		frac, err := core.SolveFractional(in.g, kv, core.FractionalOptions{T: 4})
		if err != nil {
			return nil, err
		}
		bad := 0
		var szNo, szYes []float64
		trials := cfg.trials() * 4
		for trial := 0; trial < trials; trial++ {
			seed := cfg.trialSeed(trial)
			rNo, err := core.RoundSolution(in.g, kv, frac.X, frac.Delta,
				core.RoundingOptions{Seed: seed, SkipRepair: true})
			if err != nil {
				return nil, err
			}
			if verify.CheckKFoldVector(in.g, rNo.InSet, kv, verify.ClosedPP) != nil {
				bad++
			}
			rYes, err := core.RoundSolution(in.g, kv, frac.X, frac.Delta,
				core.RoundingOptions{Seed: seed})
			if err != nil {
				return nil, err
			}
			szNo = append(szNo, float64(rNo.Size()))
			szYes = append(szYes, float64(rYes.Size()))
		}
		tb.AddRow(in.name, in.k, trials, bad, stats.Mean(szNo), stats.Mean(szYes))
	}
	return tb, nil
}

// AblLocalDelta is A3: Algorithm 1 with global Δ vs a 2-hop-local Δ.
func AblLocalDelta(cfg Config) (*trace.Table, error) {
	tb := trace.New("A3 — global Δ vs 2-hop-local Δ (paper's final remark)",
		"family", "n", "t", "Σx global", "Σx local", "|S| global", "|S| local")
	tb.Note = "local Δ removes the global-knowledge assumption; quality stays comparable."
	n := cfg.scaled(300)
	for _, fam := range []graph.Family{graph.FamilyPowerLaw, graph.FamilyGnp} {
		for _, t := range []int{2, 4} {
			var objG, objL, szG, szL []float64
			for trial := 0; trial < cfg.trials(); trial++ {
				seed := cfg.trialSeed(trial)
				g, err := graph.Generate(fam, n, 8, seed)
				if err != nil {
					return nil, err
				}
				for _, local := range []bool{false, true} {
					res, err := core.Solve(g, core.Options{K: 2, T: t, Seed: seed, LocalDelta: local})
					if err != nil {
						return nil, err
					}
					if !res.Feasible {
						return nil, err
					}
					if local {
						objL = append(objL, res.FractionalObjective())
						szL = append(szL, float64(res.Size()))
					} else {
						objG = append(objG, res.FractionalObjective())
						szG = append(szG, float64(res.Size()))
					}
				}
			}
			tb.AddRow(string(fam), n, t, stats.Mean(objG), stats.Mean(objL),
				stats.Mean(szG), stats.Mean(szL))
		}
	}
	return tb, nil
}
