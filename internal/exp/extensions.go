package exp

import (
	"math"

	"ftclust/internal/cds"
	"ftclust/internal/core"
	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/lp"
	"ftclust/internal/mobility"
	"ftclust/internal/sim"
	"ftclust/internal/stats"
	"ftclust/internal/trace"
	"ftclust/internal/udg"
	"ftclust/internal/verify"
)

// WeightedKMDS is E12: the weighted extension the paper sketches in
// Section 4.1, measured against the weighted LP optimum and the weighted
// greedy [21].
func WeightedKMDS(cfg Config) (*trace.Table, error) {
	tb := trace.New("E12 — weighted k-MDS (paper's Section 4.1 extension)",
		"n", "k", "cost-skew", "OPT_f(w)", "weighted-alg", "cost-blind-alg", "weighted-greedy", "ratio-vs-OPT")
	tb.Note = "costs skewed x1:xS; the cost-aware variant must beat the cost-blind pipeline."
	n := cfg.scaled(200)
	for _, k := range []float64{1, 2} {
		for _, skew := range []float64{1, 10, 100} {
			var optW, algW, blindW, greedyW []float64
			for trial := 0; trial < cfg.trials(); trial++ {
				seed := cfg.trialSeed(trial)
				g := graph.GnpAvgDegree(n, 9, seed)
				costs := make([]float64, n)
				for v := range costs {
					if v%4 == 0 {
						costs[v] = 1
					} else {
						costs[v] = skew
					}
				}
				kv := core.EffectiveDemands(g, k)
				w, err := lp.FromGraph(g, kv).Weighted(costs)
				if err != nil {
					return nil, err
				}
				if n <= 300 {
					if _, opt, err := w.SolveFractionalWeighted(); err == nil {
						optW = append(optW, opt)
					}
				}
				res, err := core.SolveWeighted(g, core.WeightedOptions{K: k, T: 4, Seed: seed, Costs: costs})
				if err != nil {
					return nil, err
				}
				algW = append(algW, res.Cost)
				blind, err := core.Solve(g, core.Options{K: k, T: 4, Seed: seed})
				if err != nil {
					return nil, err
				}
				blindW = append(blindW, w.CostOfSet(blind.InSet))
				_, gw := w.GreedyWeighted()
				greedyW = append(greedyW, gw)
			}
			ratio := math.NaN()
			if len(optW) > 0 {
				ratio = stats.Mean(algW) / stats.Mean(optW)
			}
			tb.AddRow(n, k, skew, stats.Mean(optW), stats.Mean(algW),
				stats.Mean(blindW), stats.Mean(greedyW), ratio)
		}
	}
	return tb, nil
}

// MobilityDecay is E13: how fast a k-fold clustering decays under random
// waypoint mobility, and what periodic re-clustering restores — the
// motivation for the O(log log n) running time.
func MobilityDecay(cfg Config) (*trace.Table, error) {
	tb := trace.New("E13 — clustering decay under mobility (random waypoint)",
		"k", "speed", "steps-since-clustering", "under-covered %")
	tb.Note = "under-covered % = nodes with < min(k, δ+1) live-in-range heads of the stale clustering."
	n := cfg.scaled(600)
	for _, k := range []int{1, 3} {
		for _, speed := range []float64{0.05, 0.2} {
			m := mobility.NewRandomWaypoint(n, 6, speed, cfg.Seed)
			pts := m.Points()
			g, idx := geom.UnitUDG(pts)
			sol, err := udg.Solve(pts, g, idx, udg.Options{K: k, Seed: cfg.Seed + int64(k)})
			if err != nil {
				return nil, err
			}
			for _, steps := range []int{0, 2, 5, 10} {
				mm := mobility.NewRandomWaypoint(n, 6, speed, cfg.Seed)
				mm.StepN(steps)
				cur, _ := geom.UnitUDG(mm.Points())
				under := 0
				for v := 0; v < n; v++ {
					id := graph.NodeID(v)
					need := minInt(k, cur.Degree(id)+1)
					got := 0
					if sol.Leader[v] {
						got++
					}
					for _, w := range cur.Neighbors(id) {
						if sol.Leader[w] {
							got++
						}
					}
					if got < need {
						under++
					}
				}
				tb.AddRow(k, speed, steps, 100*float64(under)/float64(n))
			}
		}
	}
	return tb, nil
}

// CDSOverhead is E14: the cost of connecting the k-fold dominating set
// into a routing backbone (related-work post-processing [1, 22, 23]).
func CDSOverhead(cfg Config) (*trace.Table, error) {
	tb := trace.New("E14 — connected-backbone overhead",
		"n", "k", "|S|", "|CDS|", "bridges", "CDS/|S|", "connected")
	tb.Note = "the classical bound gives |CDS| ≤ 3|S| per component; measured overheads are far smaller."
	for _, n := range []int{cfg.scaled(500), cfg.scaled(2000)} {
		for _, k := range []int{1, 3} {
			var sizes, csizes, bridges, ratio []float64
			allConnected := true
			for trial := 0; trial < cfg.trials(); trial++ {
				pts, g, idx := udgInstance(n, 20, cfg.trialSeed(trial))
				sol, err := udg.Solve(pts, g, idx, udg.Options{K: k, Seed: cfg.trialSeed(trial + 50)})
				if err != nil {
					return nil, err
				}
				res, err := cds.Connect(g, sol.Leader)
				if err != nil {
					return nil, err
				}
				if !cds.IsConnectedBackbone(g, res.InSet) {
					allConnected = false
				}
				if err := verify.CheckKFold(g, res.InSet, float64(k), verify.ClosedPP); err != nil {
					return nil, err
				}
				sizes = append(sizes, float64(sol.Size()))
				csizes = append(csizes, float64(res.Size()))
				bridges = append(bridges, float64(res.Bridges))
				ratio = append(ratio, float64(res.Size())/float64(sol.Size()))
			}
			tb.AddRow(n, k, stats.Mean(sizes), stats.Mean(csizes),
				stats.Mean(bridges), stats.Mean(ratio), allConnected)
		}
	}
	return tb, nil
}

// SynchronizerOverhead is E15: the cost of running the algorithms
// asynchronously through the α-synchronizer (the paper's Section 3 remark
// via Awerbuch [2]): identical results, same round structure, extra
// marker messages.
func SynchronizerOverhead(cfg Config) (*trace.Table, error) {
	tb := trace.New("E15 — α-synchronizer overhead (Section 3 / Awerbuch [2])",
		"n", "rounds", "sync msgs", "async msgs", "msg overhead ×", "results equal")
	tb.Note = "the async execution must produce identical outputs; overhead is the marker traffic."
	for _, n := range []int{cfg.scaled(80), cfg.scaled(160)} {
		g := graph.GnpAvgDegree(n, 8, cfg.Seed)
		mk := func(v graph.NodeID) sim.Program {
			return core.NewProgram(v, core.ProgramConfig{K: 2, T: 2, Delta: g.MaxDegree(), Round: true})
		}
		syn, err := sim.New(g, sim.WithSeed(cfg.Seed)).Run(mk, 500)
		if err != nil {
			return nil, err
		}
		asy, err := sim.New(g, sim.WithSeed(cfg.Seed)).RunAsync(mk, 500)
		if err != nil {
			return nil, err
		}
		so, ao := core.Collect(syn.Programs), core.Collect(asy.Programs)
		equal := true
		for v := range so.X {
			if so.X[v] != ao.X[v] || so.InSet[v] != ao.InSet[v] {
				equal = false
			}
		}
		// Async counts only program messages; the synchronizer's marker
		// traffic equals rounds × 2m.
		markers := int64(asy.Metrics.Rounds) * 2 * int64(g.NumEdges())
		asyncTotal := asy.Metrics.Messages + markers
		overhead := float64(asyncTotal) / float64(maxInt64(1, syn.Metrics.Messages))
		tb.AddRow(n, syn.Metrics.Rounds, syn.Metrics.Messages, asyncTotal, overhead, equal)
	}
	return tb, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
