package exp

import (
	"ftclust/internal/cds"
	"ftclust/internal/core"
	"ftclust/internal/graph"
	"ftclust/internal/maintain"
	"ftclust/internal/radio"
	"ftclust/internal/rng"
	"ftclust/internal/routing"
	"ftclust/internal/sim"
	"ftclust/internal/stats"
	"ftclust/internal/trace"
	"ftclust/internal/udg"
	"ftclust/internal/verify"
)

// RoutingStretch is E16: the price of backbone routing — hops via the
// connected k-fold backbone versus unrestricted shortest paths.
func RoutingStretch(cfg Config) (*trace.Table, error) {
	tb := trace.New("E16 — backbone routing stretch",
		"n", "k", "|backbone|", "mean stretch", "p95 stretch", "max stretch")
	tb.Note = "stretch = backbone hops / shortest hops over random connected pairs; CDS routing is O(1)-stretch in UDGs."
	for _, n := range []int{cfg.scaled(400), cfg.scaled(1600)} {
		for _, k := range []int{1, 3} {
			var means, p95s, maxs, sizes []float64
			for trial := 0; trial < cfg.trials(); trial++ {
				pts, g, idx := udgInstance(n, 20, cfg.trialSeed(trial))
				sol, err := udg.Solve(pts, g, idx, udg.Options{K: k, Seed: cfg.trialSeed(trial + 31)})
				if err != nil {
					return nil, err
				}
				conn, err := cds.Connect(g, sol.Leader)
				if err != nil {
					return nil, err
				}
				r, err := routing.New(g, conn.InSet)
				if err != nil {
					return nil, err
				}
				rnd := rng.NewStream(cfg.trialSeed(trial), 55)
				var pairs [][2]graph.NodeID
				for i := 0; i < 120; i++ {
					pairs = append(pairs, [2]graph.NodeID{
						graph.NodeID(rnd.Intn(n)), graph.NodeID(rnd.Intn(n)),
					})
				}
				st := r.StretchSample(pairs)
				if len(st) == 0 {
					continue
				}
				means = append(means, stats.Mean(st))
				p95s = append(p95s, stats.Quantile(st, 0.95))
				maxs = append(maxs, stats.Max(st))
				sizes = append(sizes, float64(conn.Size()))
			}
			tb.AddRow(n, k, stats.Mean(sizes), stats.Mean(means),
				stats.Mean(p95s), stats.Max(maxs))
		}
	}
	return tb, nil
}

// NeighborDiscovery is E17: the slotted-ALOHA initialization stage
// (reference [12]) that supplies the neighbor knowledge the Section 3
// model assumes.
func NeighborDiscovery(cfg Config) (*trace.Table, error) {
	tb := trace.New("E17 — slotted-ALOHA neighbor discovery (initialization, [12])",
		"n", "Δ", "p", "slots", "slots/(Δ·logn)", "collision rate")
	tb.Note = "with p = 1/(Δ+1) discovery completes in Θ(Δ·log n) slots; aggressive p collapses."
	for _, n := range []int{cfg.scaled(200), cfg.scaled(800)} {
		g := graph.GnpAvgDegree(n, 12, cfg.Seed+int64(n))
		delta := g.MaxDegree()
		for _, p := range []float64{0, 0.5} {
			var slots, collRate []float64
			complete := true
			for trial := 0; trial < cfg.trials(); trial++ {
				res, err := radio.Discover(g, radio.Options{P: p, Seed: cfg.trialSeed(trial)})
				if err != nil {
					return nil, err
				}
				if res.SlotsToComplete < 0 {
					complete = false
					slots = append(slots, float64(64*(delta+2)*bits(n)))
				} else {
					slots = append(slots, float64(res.SlotsToComplete))
				}
				if res.Transmissions > 0 {
					collRate = append(collRate, float64(res.Collisions)/float64(res.Transmissions))
				}
			}
			label := p
			if p == 0 {
				label = 1 / float64(delta+1)
			}
			norm := stats.Mean(slots) / (float64(delta) * float64(bits(n)))
			row := stats.Mean(slots)
			_ = complete
			tb.AddRow(n, delta, label, row, norm, stats.Mean(collRate))
		}
	}
	return tb, nil
}

// CrashRobustness is E18: what happens when nodes crash DURING the
// distributed execution of Algorithms 1+2 (the protocol itself gives no
// such guarantee — the k-fold output tolerates failures after, not
// during), and how cheaply the maintenance layer repairs the damage.
func CrashRobustness(cfg Config) (*trace.Table, error) {
	tb := trace.New("E18 — crashes during the protocol + incremental repair",
		"n", "k", "crash %", "deficient survivors", "repair promotions", "repair iters")
	tb.Note = "deficiency among survivors is expected (no during-protocol guarantee); maintain.Repair restores it locally."
	n := cfg.scaled(300)
	const k = 2
	for _, crashFrac := range []float64{0, 0.05, 0.2} {
		var deficient, promotions, iters []float64
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.trialSeed(trial)
			g := graph.GnpAvgDegree(n, 10, seed)
			rnd := rng.NewStream(seed, 77)
			// With T = 2 the pipeline runs 12 rounds; crashes anywhere in
			// [1, 13] include the critical window between the x' broadcast
			// and the REQ repair, where a sampled dominator can die after
			// being counted.
			crash := map[graph.NodeID]int{}
			for v := 0; v < n; v++ {
				if rnd.Float64() < crashFrac {
					crash[graph.NodeID(v)] = 1 + rnd.Intn(13)
				}
			}
			nw := sim.New(g, sim.WithSeed(seed), sim.WithCrashes(crash))
			res, err := nw.Run(func(v graph.NodeID) sim.Program {
				return core.NewProgram(v, core.ProgramConfig{K: k, T: 2, Delta: g.MaxDegree(), Round: true})
			}, 500)
			if err != nil {
				return nil, err
			}
			out := core.Collect(res.Programs)
			dead := map[graph.NodeID]bool{}
			for v := range crash {
				dead[v] = true
			}
			dmg := maintain.Assess(g, out.InSet, dead, k)
			deficient = append(deficient, float64(dmg.DeficientNodes))
			rep, err := maintain.Repair(g, out.InSet, dead, k)
			if err != nil {
				return nil, err
			}
			if after := maintain.Assess(g, rep.InSet, dead, k); after.DeficientNodes != 0 {
				return nil, errDeficient(after.DeficientNodes)
			}
			promotions = append(promotions, float64(rep.Promoted))
			iters = append(iters, float64(rep.Iterations))
			if crashFrac == 0 {
				kv := core.EffectiveDemands(g, k)
				if err := verify.CheckKFoldVector(g, out.InSet, kv, verify.ClosedPP); err != nil {
					return nil, err
				}
			}
		}
		tb.AddRow(n, k, 100*crashFrac, stats.Mean(deficient),
			stats.Mean(promotions), stats.Mean(iters))
	}
	return tb, nil
}

type errDeficient int

func (e errDeficient) Error() string {
	return "exp: repair left deficient nodes"
}

func bits(n int) int {
	b := 1
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}
