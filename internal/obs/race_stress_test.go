package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestMetricsConcurrentStress hammers one Registry from every direction
// the service does in production — histogram observations, counter
// bumps, late registrations, Prometheus scrapes, and quantile reads — all
// concurrently. Run under -race this pins the lock-free CAS paths in
// Histogram and the registry's internal locking; without -race it still
// checks the count/sum bookkeeping survives contention.
func TestMetricsConcurrentStress(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{0.001, 0.01, 0.1, 1, 10}
	h := r.Histogram("stress_seconds", "stress latencies", bounds)
	c := r.Counter("stress_total", "stress events")
	r.Gauge("stress_depth", "constant gauge", func() float64 { return 42 })

	const (
		writers   = 8
		perWriter = 2000
		scrapers  = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(i%100) / 50.0)
				c.Add(1)
				// Labeled series registered mid-flight race the scrapes.
				r.Counter("stress_labeled_total", "labeled stress events",
					"writer", []string{"a", "b", "c"}[w%3]).Add(1)
			}
		}(w)
	}
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				if q := h.Quantile(0.5); math.IsNaN(q) || q < 0 {
					t.Errorf("mid-flight Quantile(0.5) = %v", q)
					return
				}
				_ = h.Count()
				_ = h.Sum()
			}
		}()
	}
	wg.Wait()

	if got, want := h.Count(), int64(writers*perWriter); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got, want := c.Value(), int64(writers*perWriter); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("final WritePrometheus: %v", err)
	}
	for _, series := range []string{
		"stress_seconds_count 16000",
		"stress_total 16000",
		"stress_depth 42",
	} {
		if !strings.Contains(sb.String(), series) {
			t.Errorf("final exposition missing %q:\n%s", series, sb.String())
		}
	}
}

// TestRingConcurrentStress exercises the trace ring the way the service
// middleware and the /debug/trace endpoints do: many request goroutines
// appending finished traces while readers list and fetch them.
func TestRingConcurrentStress(t *testing.T) {
	ring := NewRing(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr := NewTrace(fmt.Sprintf("t%d-%d", w, i), "request")
				sp := tr.StartSpan(nil, "solve")
				sp.End()
				ring.Add(tr)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			for _, s := range ring.List() {
				if _, ok := ring.Get(s.ID); !ok {
					// Eviction between List and Get is legal; absence is
					// fine, only races and torn reads are not.
					continue
				}
			}
			_ = ring.Len()
		}
	}()
	wg.Wait()
	if got := ring.Len(); got != 32 {
		t.Errorf("ring length = %d, want full capacity 32", got)
	}
}
