package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRequestIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("abc", "POST /v1/solve")
	q := tr.AddSpan(nil, "queue-wait", time.Now().Add(-time.Millisecond), time.Now())
	q.SetAttr("note", "enqueued")
	solve := tr.StartSpan(nil, "solve")
	frac := tr.StartSpan(solve, "fractional")
	frac.SetAttr("lp_rounds", "18")
	frac.End()
	solve.End()
	tr.Finish()

	snap := tr.Snapshot()
	if snap.ID != "abc" || snap.Root.Name != "POST /v1/solve" {
		t.Fatalf("snapshot header: %+v", snap)
	}
	if len(snap.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(snap.Root.Children))
	}
	if snap.Root.Children[0].Name != "queue-wait" || snap.Root.Children[0].DurationMs <= 0 {
		t.Fatalf("queue-wait span: %+v", snap.Root.Children[0])
	}
	s := snap.Root.Children[1]
	if s.Name != "solve" || len(s.Children) != 1 || s.Children[0].Attrs["lp_rounds"] != "18" {
		t.Fatalf("solve span tree: %+v", s)
	}
	if snap.DurationMs <= 0 {
		t.Fatalf("finished trace duration = %v", snap.DurationMs)
	}
}

// Nil traces and spans are usable no-ops, so untraced code paths need no
// guards.
func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan(nil, "x")
	sp.SetAttr("a", "b")
	sp.End()
	tr.AddSpan(nil, "y", time.Now(), time.Now())
	tr.Finish()
	if tr.ID() != "" {
		t.Fatal("nil trace must have empty ID")
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom(empty ctx) = %v", got)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("conc", "root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := tr.StartSpan(nil, fmt.Sprintf("item-%d", i))
			sp.SetAttr("i", fmt.Sprint(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.Snapshot().Root.Children); got != 32 {
		t.Fatalf("children = %d, want 32", got)
	}
}

func TestRingEvictionAndLookup(t *testing.T) {
	r := NewRing(3)
	var ids []string
	for i := 0; i < 5; i++ {
		tr := NewTrace(fmt.Sprintf("t%d", i), "req")
		tr.Finish()
		r.Add(tr)
		ids = append(ids, tr.ID())
	}
	if r.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", r.Len())
	}
	for _, gone := range ids[:2] {
		if _, ok := r.Get(gone); ok {
			t.Errorf("evicted trace %s still resolvable", gone)
		}
	}
	for _, kept := range ids[2:] {
		if _, ok := r.Get(kept); !ok {
			t.Errorf("trace %s missing from ring", kept)
		}
	}
	list := r.List()
	if len(list) != 3 || list[0].ID != "t4" || list[2].ID != "t2" {
		t.Fatalf("list order wrong: %+v", list)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTrace("ctx", "root")
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("trace lost in context round trip")
	}
}
