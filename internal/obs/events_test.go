package obs

import (
	"testing"
	"time"
)

func TestEventRingBoundedNewestFirst(t *testing.T) {
	r := NewEventRing(3)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r.AddAt(base, "join", "peer", "a")
	r.AddAt(base.Add(time.Second), "join", "peer", "b")
	r.AddAt(base.Add(2*time.Second), "suspect", "peer", "a")
	r.AddAt(base.Add(3*time.Second), "evict", "peer", "a") // evicts oldest entry

	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	got := r.List(0)
	if len(got) != 3 {
		t.Fatalf("list = %d entries", len(got))
	}
	if got[0].Type != "evict" || got[2].Type != "join" || got[2].Attrs["peer"] != "b" {
		t.Fatalf("order wrong: %+v", got)
	}
	// Seq is ring-lifetime monotone even across eviction.
	if got[0].Seq != 4 || got[2].Seq != 2 {
		t.Fatalf("seq wrong: %d … %d", got[0].Seq, got[2].Seq)
	}
	if lim := r.List(2); len(lim) != 2 || lim[0].Type != "evict" {
		t.Fatalf("limited list wrong: %+v", lim)
	}
}

func TestEventRingNilSafe(t *testing.T) {
	var r *EventRing
	r.Add("join", "peer", "a") // must not panic
	if r.Len() != 0 || r.List(5) != nil {
		t.Fatal("nil ring not empty")
	}
}

func TestEventRingOddAttrsDropped(t *testing.T) {
	r := NewEventRing(2)
	r.Add("shed", "reason", "queue", "dangling")
	e := r.List(1)[0]
	if len(e.Attrs) != 1 || e.Attrs["reason"] != "queue" {
		t.Fatalf("attrs = %+v", e.Attrs)
	}
	if e.Time.IsZero() {
		t.Fatal("Add did not stamp time")
	}
}

func TestRateWindow(t *testing.T) {
	w := NewRateWindow(4)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	if w.Rate() != 0 {
		t.Fatal("empty window rate != 0")
	}
	w.Observe(base, 100)
	w.Observe(base.Add(2*time.Second), 140)
	if got := w.Rate(); got != 20 {
		t.Fatalf("rate = %v, want 20", got)
	}
	// Capacity: oldest sample slides out.
	w.Observe(base.Add(4*time.Second), 180)
	w.Observe(base.Add(6*time.Second), 220)
	w.Observe(base.Add(8*time.Second), 260) // evicts the base sample
	if got := w.Rate(); got != 20 {
		t.Fatalf("windowed rate = %v, want 20", got)
	}
	// Counter reset re-anchors instead of going negative.
	w.Observe(base.Add(10*time.Second), 5)
	if got := w.Rate(); got != 0 {
		t.Fatalf("rate after reset = %v, want 0", got)
	}
	w.Observe(base.Add(12*time.Second), 25)
	if got := w.Rate(); got != 10 {
		t.Fatalf("rate after re-anchor = %v, want 10", got)
	}
	// Stale timestamps dropped.
	w.Observe(base, 1000)
	if got := w.Rate(); got != 10 {
		t.Fatalf("rate after stale sample = %v, want 10", got)
	}
	// Nil-safe.
	var nilw *RateWindow
	nilw.Observe(base, 1)
	if nilw.Rate() != 0 {
		t.Fatal("nil window rate != 0")
	}
}
