// Package obs is the service's stdlib-only observability kernel: atomic
// counters and gauges, fixed log-bucket histograms with a Prometheus
// text-exposition writer, solver phase-observer hooks, and request span
// traces with a bounded browsable ring. It deliberately imports nothing
// beyond the standard library so internal/core can depend on it without
// pulling the serving stack into the solver.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (delta < 0 is a programming error
// and is ignored).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-bucket histogram with atomic per-bucket counters:
// observations are lock-free and quantiles come from bucket interpolation
// instead of the lock-and-sort a sample ring needs. Bounds are the
// inclusive upper edges of the finite buckets; one implicit +Inf bucket
// catches the overflow.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = +Inf
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given ascending finite bounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExponentialBuckets returns n bounds start, start·factor, start·factor².
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets are the shared latency bounds in seconds: 100 µs to
// ~210 s in factor-2 steps, covering sub-millisecond cache hits through
// the 60 s default solve deadline with headroom.
func DurationBuckets() []float64 { return ExponentialBuckets(1e-4, 2, 22) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding the target rank. Estimates are monotone in q.
// With no observations it returns 0; ranks landing in the +Inf bucket
// report the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.bounds) { // +Inf bucket: clamp
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Merge adds o's buckets into h. Both histograms must share the exact
// bucket layout (same bounds, element-wise) — bucket-wise sum is only
// meaningful then, and a mismatch returns an error without touching h.
// Merging preserves quantile monotonicity: every per-bucket count, the
// total, and the sum grow by o's non-negative contributions, so the
// cumulative distribution of the merged histogram dominates both
// inputs' and Quantile stays monotone in q. Safe for concurrent use
// with Observe on h; o should be quiescent (a scraped snapshot) or the
// copy is merely racy-but-consistent per bucket.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: histogram merge: %d buckets vs %d", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("obs: histogram merge: bound %d differs (%v vs %v)", i, h.bounds[i], o.bounds[i])
		}
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
		}
	}
	if n := o.total.Load(); n > 0 {
		h.total.Add(n)
	}
	if s := o.Sum(); s != 0 {
		for {
			old := h.sum.Load()
			if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+s)) {
				break
			}
		}
	}
	return nil
}

// metricKind tags a registered series for the exposition writer.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series: a (name, labels) pair plus its data.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels string // pre-rendered `k="v",…` or ""
	c      *Counter
	g      func() float64
	h      *Histogram
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration takes a lock; the returned Counter and
// Histogram handles are lock-free to use.
type Registry struct {
	mu    sync.Mutex
	order []*metric
	byKey map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byKey: make(map[string]*metric)} }

// renderLabels turns pairwise k, v arguments into `k="v",…`.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: label arguments must come in key, value pairs")
	}
	var sb strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", pairs[i], pairs[i+1])
	}
	return sb.String()
}

func (r *Registry) register(name, help string, kind metricKind, labels []string) *metric {
	ls := renderLabels(labels)
	key := name + "{" + ls + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as a different kind", key))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: ls}
	r.byKey[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or returns the existing) counter series. Optional
// labels are pairwise key, value arguments.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	m := r.register(name, help, kindCounter, labels)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge registers a gauge series read through fn at exposition time.
func (r *Registry) Gauge(name, help string, fn func() float64, labels ...string) {
	m := r.register(name, help, kindGauge, labels)
	m.g = fn
}

// Histogram registers (or returns the existing) histogram series over the
// given bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	m := r.register(name, help, kindHistogram, labels)
	if m.h == nil {
		m.h = NewHistogram(bounds)
	}
	return m.h
}

// WritePrometheus renders every registered series in text exposition
// format (version 0.0.4): one # HELP / # TYPE header per metric name,
// then the series in registration order; histograms expand into
// cumulative _bucket{le=…} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]*metric(nil), r.order...)
	r.mu.Unlock()

	seen := make(map[string]bool, len(ms))
	var sb strings.Builder
	for _, m := range ms {
		if !seen[m.name] {
			seen[m.name] = true
			fmt.Fprintf(&sb, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(&sb, "# TYPE %s %s\n", m.name, m.kind)
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&sb, "%s %d\n", seriesName(m.name, m.labels), m.c.Value())
		case kindGauge:
			fmt.Fprintf(&sb, "%s %s\n", seriesName(m.name, m.labels), formatFloat(m.g()))
		case kindHistogram:
			cum := int64(0)
			for i, bound := range m.h.bounds {
				cum += m.h.counts[i].Load()
				fmt.Fprintf(&sb, "%s %d\n",
					seriesName(m.name+"_bucket", withLabel(m.labels, "le", formatFloat(bound))), cum)
			}
			cum += m.h.counts[len(m.h.bounds)].Load()
			fmt.Fprintf(&sb, "%s %d\n",
				seriesName(m.name+"_bucket", withLabel(m.labels, "le", "+Inf")), cum)
			fmt.Fprintf(&sb, "%s %s\n", seriesName(m.name+"_sum", m.labels), formatFloat(m.h.Sum()))
			fmt.Fprintf(&sb, "%s %d\n", seriesName(m.name+"_count", m.labels), m.h.Count())
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func withLabel(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// exact decimal form, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
