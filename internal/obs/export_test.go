package obs

import (
	"encoding/base64"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildTestTrace makes a small two-level trace with attrs.
func buildTestTrace() *Trace {
	tr := NewTrace("deadbeef00000001", "solve")
	sp := tr.StartSpan(nil, "phase")
	sp.SetAttr("round", "3")
	child := tr.StartSpan(sp, "verify")
	child.End()
	sp.End()
	tr.Finish()
	return tr
}

func TestTraceExportRoundTrip(t *testing.T) {
	tr := buildTestTrace()
	enc, truncated := EncodeTraceExport(tr, 64<<10)
	if enc == "" || truncated {
		t.Fatalf("encode: enc empty=%v truncated=%v", enc == "", truncated)
	}
	sub, err := DecodeTraceExport(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sub.Name != "solve" || len(sub.Children) != 1 {
		t.Fatalf("round trip lost shape: %+v", sub)
	}
	if sub.Children[0].Attrs["round"] != "3" {
		t.Fatalf("round trip lost attrs: %+v", sub.Children[0])
	}
	if sub.Children[0].Children[0].Name != "verify" {
		t.Fatalf("round trip lost grandchild: %+v", sub.Children[0])
	}
}

func TestTraceExportNilTrace(t *testing.T) {
	enc, truncated := EncodeTraceExport(nil, 1024)
	if enc != "" || truncated {
		t.Fatalf("nil trace: enc=%q truncated=%v", enc, truncated)
	}
}

func TestTraceExportTruncation(t *testing.T) {
	tr := NewTrace("deadbeef00000002", "solve")
	parent := (*Span)(nil)
	for i := 0; i < 8; i++ {
		sp := tr.StartSpan(parent, strings.Repeat("x", 200))
		sp.End()
		parent = sp
	}
	tr.Finish()

	full, _ := EncodeTraceExport(tr, 1<<20)
	enc, truncated := EncodeTraceExport(tr, len(full)-1)
	if enc == "" {
		t.Fatalf("budget one short of full should still encode a pruned tree")
	}
	if !truncated {
		t.Fatalf("expected truncation under a tight budget")
	}
	sub, err := DecodeTraceExport(enc)
	if err != nil {
		t.Fatalf("decode truncated export: %v", err)
	}
	if sub.Attrs[attrTruncated] != "true" {
		t.Fatalf("truncated root missing %s attr: %+v", attrTruncated, sub.Attrs)
	}

	// An impossible budget yields no header at all.
	if enc, _ := EncodeTraceExport(tr, 8); enc != "" {
		t.Fatalf("impossible budget returned %q", enc)
	}
}

func TestDecodeTraceExportRejects(t *testing.T) {
	mk := func(s SpanJSON) string {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return base64.StdEncoding.EncodeToString(b)
	}
	now := time.Now()
	cases := map[string]string{
		"empty":         "",
		"not base64":    "!!!not-base64!!!",
		"not json":      base64.StdEncoding.EncodeToString([]byte("{")),
		"no name":       mk(SpanJSON{Start: now, DurationMs: 1}),
		"long name":     mk(SpanJSON{Name: strings.Repeat("n", maxExportStr+1), Start: now}),
		"neg duration":  mk(SpanJSON{Name: "s", Start: now, DurationMs: -1}),
		"huge duration": mk(SpanJSON{Name: "s", Start: now, DurationMs: maxExportDurationMs * 2}),
		"long attr": mk(SpanJSON{Name: "s", Start: now,
			Attrs: map[string]string{"k": strings.Repeat("v", maxExportStr+1)}}),
		"oversized": base64.StdEncoding.EncodeToString(
			[]byte(`{"name":"` + strings.Repeat("a", maxExportDecodedBytes) + `"}`)),
	}
	for label, enc := range cases {
		if _, err := DecodeTraceExport(enc); err == nil {
			t.Errorf("%s: decode accepted invalid export", label)
		}
	}

	// Too many spans.
	wide := SpanJSON{Name: "root", Start: now}
	for i := 0; i <= maxExportSpans; i++ {
		wide.Children = append(wide.Children, SpanJSON{Name: "c", Start: now})
	}
	if _, err := DecodeTraceExport(mk(wide)); err == nil {
		t.Errorf("span-count bound not enforced")
	}

	// Too deep.
	deep := SpanJSON{Name: "d0", Start: now}
	node := &deep
	for i := 0; i <= maxExportDepth; i++ {
		node.Children = []SpanJSON{{Name: "d", Start: now}}
		node = &node.Children[0]
	}
	if _, err := DecodeTraceExport(mk(deep)); err == nil {
		t.Errorf("depth bound not enforced")
	}
}

func TestGraftStitchesSubtree(t *testing.T) {
	remote := buildTestTrace()
	enc, _ := EncodeTraceExport(remote, 64<<10)
	sub, err := DecodeTraceExport(enc)
	if err != nil {
		t.Fatal(err)
	}

	origin := NewTrace("cafe000000000001", "origin")
	fwd := origin.StartSpan(nil, "forward")
	grafted := origin.Graft(fwd, sub)
	if grafted == nil {
		t.Fatal("graft returned nil span")
	}
	fwd.End()
	origin.Finish()

	snap := origin.Snapshot()
	if len(snap.Root.Children) != 1 {
		t.Fatalf("root children = %d, want 1", len(snap.Root.Children))
	}
	f := snap.Root.Children[0]
	if f.Name != "forward" || len(f.Children) != 1 {
		t.Fatalf("forward span shape wrong: %+v", f)
	}
	r := f.Children[0]
	if r.Name != "solve" || len(r.Children) != 1 || r.Children[0].Attrs["round"] != "3" {
		t.Fatalf("grafted remote subtree wrong: %+v", r)
	}
	// Remote timing survives the stitch.
	if r.Children[0].Children[0].Name != "verify" {
		t.Fatalf("grandchild lost: %+v", r.Children[0])
	}
}

func TestGraftNilSafe(t *testing.T) {
	var tr *Trace
	if sp := tr.Graft(nil, SpanJSON{Name: "x"}); sp != nil {
		t.Fatalf("nil trace graft returned %v", sp)
	}
}

// FuzzDecodeTraceExport feeds arbitrary header bytes through the full
// decode → graft → ring → snapshot path: no input may panic, and a
// decode error must leave the destination trace untouched.
func FuzzDecodeTraceExport(f *testing.F) {
	good, _ := EncodeTraceExport(buildTestTrace(), 64<<10)
	f.Add(good)
	f.Add("")
	f.Add("AAAA")
	f.Add(base64.StdEncoding.EncodeToString([]byte(`{"name":"x","duration_ms":1e309}`)))
	f.Add(base64.StdEncoding.EncodeToString([]byte(`{"name":"x","children":[{"name":""}]}`)))
	f.Fuzz(func(t *testing.T, enc string) {
		sub, err := DecodeTraceExport(enc)
		tr := NewTrace("fuzz000000000001", "origin")
		before := len(tr.Snapshot().Root.Children)
		if err == nil {
			tr.Graft(nil, sub)
		}
		tr.Finish()
		ring := NewRing(4)
		ring.Add(tr)
		snap := tr.Snapshot() // must not panic or hang
		if err != nil && len(snap.Root.Children) != before {
			t.Fatalf("rejected export still mutated the trace")
		}
		if len(ring.List()) != 1 {
			t.Fatalf("ring corrupted")
		}
	})
}

// buildSolveShapedTrace mirrors the span tree a real forwarded solve
// produces (solve root, per-phase children with numeric attrs) so the
// benchmarks below price the actual stitching payload.
func buildSolveShapedTrace() *Trace {
	tr := NewTrace("beefcafe00000001", "request")
	solve := tr.StartSpan(nil, "solve")
	solve.SetAttr("n", "2000")
	solve.SetAttr("k", "3")
	for _, phase := range []string{"fractional", "rounding", "verify"} {
		sp := tr.StartSpan(solve, phase)
		sp.SetAttr("rounds", "18")
		sp.SetAttr("wall_ms", "12.5")
		sp.End()
	}
	enc := tr.StartSpan(nil, "encode")
	enc.End()
	solve.End()
	tr.Finish()
	return tr
}

func BenchmarkEncodeTraceExport(b *testing.B) {
	tr := buildSolveShapedTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, _ := EncodeTraceExport(tr, 8<<10)
		if enc == "" {
			b.Fatal("empty encode")
		}
	}
}

func BenchmarkDecodeTraceExport(b *testing.B) {
	enc, _ := EncodeTraceExport(buildSolveShapedTrace(), 8<<10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTraceExport(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraft(b *testing.B) {
	sub, err := DecodeTraceExport(mustEncode(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := NewTrace("feedface00000001", "origin")
		if tr.Graft(nil, sub) == nil {
			b.Fatal("graft returned nil")
		}
	}
}

func mustEncode(b *testing.B) string {
	b.Helper()
	enc, _ := EncodeTraceExport(buildSolveShapedTrace(), 8<<10)
	return enc
}
