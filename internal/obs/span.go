package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// NewRequestID returns a 16-hex-char random request identifier. On the
// (practically impossible) failure of the system randomness source it
// falls back to a process-local counter so IDs stay unique.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := fallbackID.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

var fallbackID atomic.Uint64

// Span is one timed operation inside a Trace. Spans form a tree under the
// trace's root; children may start and end concurrently (the trace
// serializes all mutation). Mutate spans only through their methods.
type Span struct {
	t        *Trace
	name     string
	start    time.Time
	end      time.Time
	attrs    []spanAttr
	children []*Span
}

type spanAttr struct{ k, v string }

// Trace is a request-scoped span tree identified by a request ID. All
// methods are safe for concurrent use and safe on a nil receiver (they
// no-op), so code paths that run without tracing need no guards.
type Trace struct {
	id    string
	start time.Time

	mu   sync.Mutex
	root *Span
	done bool
}

// NewTrace starts a trace whose root span is named rootName.
func NewTrace(id, rootName string) *Trace {
	now := time.Now()
	t := &Trace{id: id, start: now}
	t.root = &Span{t: t, name: rootName, start: now}
	return t
}

// ID returns the trace's request ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a child span under parent (nil parent = the root) and
// returns it; call End on the result. On a nil trace it returns nil,
// which every Span method tolerates.
func (t *Trace) StartSpan(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if parent == nil {
		parent = t.root
	}
	sp := &Span{t: t, name: name, start: time.Now()}
	parent.children = append(parent.children, sp)
	return sp
}

// AddSpan records an already-measured interval as a child span of parent
// (nil = root) — used when the start time predates the code that owns the
// trace, e.g. queue wait measured from the enqueue instant.
func (t *Trace) AddSpan(parent *Span, name string, start, end time.Time) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if parent == nil {
		parent = t.root
	}
	sp := &Span{t: t, name: name, start: start, end: end}
	parent.children = append(parent.children, sp)
	return sp
}

// Finish ends the root span; further mutation is still tolerated (late
// spans from stragglers simply carry their own times).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		t.done = true
		t.root.end = time.Now()
	}
}

// End closes the span. Safe on nil and idempotent.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.t.mu.Lock()
	defer sp.t.mu.Unlock()
	if sp.end.IsZero() {
		sp.end = time.Now()
	}
}

// SetAttr attaches a key/value annotation to the span. Safe on nil.
func (sp *Span) SetAttr(k, v string) {
	if sp == nil {
		return
	}
	sp.t.mu.Lock()
	defer sp.t.mu.Unlock()
	sp.attrs = append(sp.attrs, spanAttr{k, v})
}

// SpanJSON is the wire form of one span in /debug/trace/{id}.
type SpanJSON struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMs float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanJSON        `json:"children,omitempty"`
}

// TraceJSON is the wire form of a whole trace.
type TraceJSON struct {
	ID         string    `json:"id"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Root       SpanJSON  `json:"root"`
}

// Snapshot renders the trace as a serializable tree. Unfinished spans
// report a duration up to now.
func (t *Trace) Snapshot() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	root := t.root.snapshotLocked()
	return TraceJSON{ID: t.id, Start: t.start, DurationMs: root.DurationMs, Root: root}
}

func (sp *Span) snapshotLocked() SpanJSON {
	end := sp.end
	if end.IsZero() {
		end = time.Now()
	}
	out := SpanJSON{
		Name:       sp.name,
		Start:      sp.start,
		DurationMs: float64(end.Sub(sp.start)) / float64(time.Millisecond),
	}
	if len(sp.attrs) > 0 {
		out.Attrs = make(map[string]string, len(sp.attrs))
		for _, a := range sp.attrs {
			out.Attrs[a.k] = a.v
		}
	}
	for _, c := range sp.children {
		out.Children = append(out.Children, c.snapshotLocked())
	}
	return out
}

// TraceSummary is one row of the /debug/trace listing.
type TraceSummary struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
}

// Ring is a bounded ring of completed traces, browsable by ID. The oldest
// trace is evicted (and drops out of the index) once capacity is reached.
type Ring struct {
	mu     sync.Mutex
	slots  []*Trace
	next   int
	byID   map[string]*Trace
	filled bool
}

// NewRing returns a ring holding up to n traces (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{slots: make([]*Trace, n), byID: make(map[string]*Trace, n)}
}

// Add stores a completed trace, evicting the oldest if full.
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.slots[r.next]; old != nil {
		delete(r.byID, old.id)
	}
	r.slots[r.next] = t
	r.byID[t.id] = t
	r.next++
	if r.next == len(r.slots) {
		r.next = 0
		r.filled = true
	}
}

// Get returns the trace with the given ID, if still in the ring.
func (r *Ring) Get(id string) (*Trace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// Len returns the number of traces currently held.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// List returns summaries of the held traces, newest first.
func (r *Ring) List() []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.slots)
	out := make([]TraceSummary, 0, len(r.byID))
	for i := 1; i <= n; i++ {
		t := r.slots[(r.next-i+n+n)%n]
		if t == nil {
			continue
		}
		snap := t.Snapshot()
		out = append(out, TraceSummary{
			ID: t.id, Name: snap.Root.Name, Start: snap.Start, DurationMs: snap.DurationMs,
		})
	}
	return out
}

// traceKey is the context key carrying the request's trace.
type traceKey struct{}

// ContextWithTrace returns ctx carrying t.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the trace from ctx, or nil — and nil traces are safe
// to use, so callers never need to check.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
