package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramMergeBucketwise(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 4})
	b := NewHistogram([]float64{1, 2, 4})
	a.Observe(0.5)
	a.Observe(3)
	b.Observe(1.5)
	b.Observe(100) // +Inf bucket
	b.Observe(100)

	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.Count() != 5 {
		t.Fatalf("merged count = %d, want 5", a.Count())
	}
	wantSum := 0.5 + 3 + 1.5 + 100 + 100
	if math.Abs(a.Sum()-wantSum) > 1e-9 {
		t.Fatalf("merged sum = %v, want %v", a.Sum(), wantSum)
	}
	// Bucket-wise: [0.5]→b0, [1.5]→b1, [3]→b2, [100,100]→+Inf.
	wantCounts := []int64{1, 1, 1, 2}
	for i, want := range wantCounts {
		if got := a.counts[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	// +Inf ranks clamp to the top finite bound.
	if q := a.Quantile(0.99); q != 4 {
		t.Errorf("p99 = %v, want clamp to 4", q)
	}
}

func TestHistogramMergeQuantileMonotone(t *testing.T) {
	a := NewHistogram(DurationBuckets())
	b := NewHistogram(DurationBuckets())
	for i := 1; i <= 500; i++ {
		a.Observe(float64(i) * 1e-4)
		b.Observe(float64(i) * 3e-4)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := a.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone after merge: q=%v gives %v < %v", q, v, prev)
		}
		prev = v
	}
	if a.Count() != 1000 {
		t.Fatalf("merged count = %d, want 1000", a.Count())
	}
}

func TestHistogramMergeRejectsMismatchedLayout(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 4})
	a.Observe(1)
	for _, o := range []*Histogram{
		NewHistogram([]float64{1, 2}),
		NewHistogram([]float64{1, 2, 8}),
	} {
		o.Observe(1)
		if err := a.Merge(o); err == nil {
			t.Fatalf("merge accepted mismatched layout %v", o.bounds)
		}
	}
	// Rejection left a untouched.
	if a.Count() != 1 {
		t.Fatalf("failed merge mutated the receiver: count=%d", a.Count())
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

// registryText renders a small registry with one of each metric kind.
func registryText(t *testing.T, scale int64) string {
	t.Helper()
	r := NewRegistry()
	c := r.Counter("ft_solves_total", "solves", "endpoint", "/v1/solve")
	c.Add(3 * scale)
	r.Counter("ft_plain_total", "plain").Add(scale)
	r.Gauge("ft_peers", "peers", func() float64 { return float64(2 * scale) })
	h := r.Histogram("ft_dur_seconds", "dur", []float64{0.001, 0.01, 0.1})
	for i := int64(0); i < scale; i++ {
		h.Observe(0.005)
		h.Observe(5) // +Inf
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestParsePrometheusRoundTrip(t *testing.T) {
	text := registryText(t, 2)
	snap, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, ok := snap.Value("ft_solves_total", "endpoint", "/v1/solve"); !ok || v != 6 {
		t.Fatalf("counter = %v ok=%v, want 6", v, ok)
	}
	if v, ok := snap.Value("ft_plain_total"); !ok || v != 2 {
		t.Fatalf("unlabeled counter = %v ok=%v, want 2", v, ok)
	}
	if v, ok := snap.Value("ft_peers"); !ok || v != 4 {
		t.Fatalf("gauge = %v ok=%v, want 4", v, ok)
	}
	h, ok := snap.Hist("ft_dur_seconds")
	if !ok {
		t.Fatal("histogram missing")
	}
	if h.Count != 4 || len(h.Bounds) != 3 || len(h.Buckets) != 4 {
		t.Fatalf("histogram shape: %+v", h)
	}
	if h.Buckets[1] != 2 || h.Buckets[3] != 2 {
		t.Fatalf("de-cumulated buckets wrong: %+v", h.Buckets)
	}

	// Re-render and re-parse: stable.
	var sb strings.Builder
	if err := snap.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	again, err := ParsePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if v, _ := again.Value("ft_solves_total", "endpoint", "/v1/solve"); v != 6 {
		t.Fatalf("reparse counter = %v", v)
	}
	h2, _ := again.Hist("ft_dur_seconds")
	if h2 == nil || h2.Count != 4 || h2.Sum != h.Sum {
		t.Fatalf("reparse histogram: %+v", h2)
	}
}

func TestMergePrometheusSumsPeers(t *testing.T) {
	agg := NewPromSnapshot()
	for _, scale := range []int64{1, 2, 4} {
		snap, err := ParsePrometheus(strings.NewReader(registryText(t, scale)))
		if err != nil {
			t.Fatal(err)
		}
		if err := MergePrometheus(agg, snap); err != nil {
			t.Fatalf("merge scale %d: %v", scale, err)
		}
	}
	if v, _ := agg.Value("ft_solves_total", "endpoint", "/v1/solve"); v != 21 {
		t.Fatalf("merged counter = %v, want 21", v)
	}
	if v, _ := agg.Value("ft_peers"); v != 14 {
		t.Fatalf("merged gauge = %v, want 14", v)
	}
	h, _ := agg.Hist("ft_dur_seconds")
	if h == nil || h.Count != 14 {
		t.Fatalf("merged histogram: %+v", h)
	}
	if h.Buckets[1] != 7 || h.Buckets[3] != 7 {
		t.Fatalf("merged buckets: %+v", h.Buckets)
	}
	// Quantile well-defined on the merged result.
	if q := h.Quantile(0.25); q <= 0 || q > 0.01 {
		t.Fatalf("merged p25 = %v", q)
	}

	// Rendered aggregate has monotone cumulative buckets.
	var sb strings.Builder
	if err := agg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePrometheus(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("aggregate does not reparse: %v", err)
	}
}

func TestMergePrometheusRejectsLayoutMismatch(t *testing.T) {
	mk := func(bounds []float64) *PromSnapshot {
		r := NewRegistry()
		r.Histogram("ft_dur_seconds", "dur", bounds).Observe(0.5)
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		snap, err := ParsePrometheus(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	agg := NewPromSnapshot()
	if err := MergePrometheus(agg, mk([]float64{1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := MergePrometheus(agg, mk([]float64{1, 4})); err == nil {
		t.Fatal("merge accepted mismatched bucket layout")
	}
	// All-or-nothing: the failed merge left the aggregate untouched.
	h, _ := agg.Hist("ft_dur_seconds")
	if h == nil || h.Count != 1 {
		t.Fatalf("failed merge mutated aggregate: %+v", h)
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no value":       "ft_x_total\n",
		"bad value":      "ft_x_total abc\n",
		"bad labels":     "ft_x_total{endpoint=\"/v1\" 3\n",
		"decreasing cum": "# TYPE ft_d_seconds histogram\nft_d_seconds_bucket{le=\"1\"} 5\nft_d_seconds_bucket{le=\"+Inf\"} 3\nft_d_seconds_sum 1\nft_d_seconds_count 3\n",
		"missing inf":    "# TYPE ft_d_seconds histogram\nft_d_seconds_bucket{le=\"1\"} 5\nft_d_seconds_sum 1\nft_d_seconds_count 5\n",
		"count mismatch": "# TYPE ft_d_seconds histogram\nft_d_seconds_bucket{le=\"1\"} 5\nft_d_seconds_bucket{le=\"+Inf\"} 5\nft_d_seconds_sum 1\nft_d_seconds_count 9\n",
		"bad type":       "# TYPE ft_x summary\n",
	}
	for label, text := range cases {
		if _, err := ParsePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parse accepted malformed exposition", label)
		}
	}
}

func TestParsePrometheusSumSeries(t *testing.T) {
	text := "# TYPE ft_http_total counter\n" +
		"ft_http_total{endpoint=\"/a\"} 3\n" +
		"ft_http_total{endpoint=\"/b\"} 4\n"
	snap, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.SumSeries("ft_http_total"); got != 7 {
		t.Fatalf("SumSeries = %v, want 7", got)
	}
	// Label order canonicalization: both orders hit the same series.
	text2 := "ft_y{b=\"2\",a=\"1\"} 5\nft_y{a=\"1\",b=\"2\"} 5\n"
	snap2, err := ParsePrometheus(strings.NewReader(text2))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := snap2.Family("ft_y")
	if len(f.Series()) != 1 {
		t.Fatalf("label orders not canonicalized: %d series", len(f.Series()))
	}
}
