package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Metrics federation: parse the Prometheus text exposition our own
// Registry writes, merge snapshots from several peers (counters and
// gauges sum; histograms sum bucket-wise when the layouts match), and
// re-render the aggregate. This is deliberately a parser for the 0.0.4
// text format as *this repo emits it* — HELP/TYPE headers, optional
// `k="v"` labels with Go quoting, integer counters, formatFloat floats,
// cumulative histogram buckets — not a general OpenMetrics parser.
// Unknown or malformed constructs are errors, and the fleet endpoint
// treats a peer that fails to parse as a scrape error, not a 500.

// Parse safety bounds: a hostile or corrupt peer body is rejected
// instead of ballooning the aggregating node's memory.
const (
	maxPromSeries  = 8192
	maxPromLineLen = 16 << 10
)

// PromSnapshot is one parsed (or merged) metrics exposition.
type PromSnapshot struct {
	families []*PromFamily
	byName   map[string]*PromFamily
}

// PromFamily groups every series sharing a metric name.
type PromFamily struct {
	Name   string
	Help   string
	Kind   string // "counter", "gauge", "histogram", or "untyped"
	series []*PromSeries
	byKey  map[string]*PromSeries
}

// PromSeries is one labeled sample. Histogram series hold their bucket
// layout in Hist (with the le label stripped from Labels); scalar
// series hold Value.
type PromSeries struct {
	Labels string // canonical sorted `k="v",…` form, "" when unlabeled
	Value  float64
	Hist   *PromHistogram
}

// PromHistogram is a parsed histogram: finite ascending upper bounds
// plus per-bucket (non-cumulative) counts, with the +Inf bucket last in
// Buckets, mirroring the layout of obs.Histogram.
type PromHistogram struct {
	Bounds  []float64 // finite upper edges, ascending
	Buckets []int64   // len(Bounds)+1, last = +Inf
	Count   int64
	Sum     float64
}

// Quantile estimates the q-quantile by the same bucket interpolation as
// Histogram.Quantile, so fleet-level percentiles match node-local ones.
func (h *PromHistogram) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.Bounds) { // +Inf bucket: clamp
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Families returns the families in first-seen order.
func (s *PromSnapshot) Families() []*PromFamily {
	if s == nil {
		return nil
	}
	return s.families
}

// Series returns the family's series in first-seen order.
func (f *PromFamily) Series() []*PromSeries { return f.series }

// Family returns the named family, if present.
func (s *PromSnapshot) Family(name string) (*PromFamily, bool) {
	if s == nil {
		return nil, false
	}
	f, ok := s.byName[name]
	return f, ok
}

// Value returns the scalar sample of the series with the given name and
// pairwise label arguments, if present.
func (s *PromSnapshot) Value(name string, labels ...string) (float64, bool) {
	f, ok := s.Family(name)
	if !ok {
		return 0, false
	}
	sr, ok := f.byKey[canonicalLabels(renderLabels(labels))]
	if !ok || sr.Hist != nil {
		return 0, false
	}
	return sr.Value, true
}

// SumSeries returns the sum of every scalar series in the named family
// — e.g. http requests across all endpoint labels.
func (s *PromSnapshot) SumSeries(name string) float64 {
	f, ok := s.Family(name)
	if !ok {
		return 0
	}
	total := 0.0
	for _, sr := range f.series {
		if sr.Hist == nil {
			total += sr.Value
		}
	}
	return total
}

// Hist returns the histogram of the series with the given name and
// pairwise label arguments, if present.
func (s *PromSnapshot) Hist(name string, labels ...string) (*PromHistogram, bool) {
	f, ok := s.Family(name)
	if !ok {
		return nil, false
	}
	sr, ok := f.byKey[canonicalLabels(renderLabels(labels))]
	if !ok || sr.Hist == nil {
		return nil, false
	}
	return sr.Hist, true
}

func newPromSnapshot() *PromSnapshot {
	return &PromSnapshot{byName: make(map[string]*PromFamily)}
}

func (s *PromSnapshot) family(name string) *PromFamily {
	if f, ok := s.byName[name]; ok {
		return f
	}
	f := &PromFamily{Name: name, Kind: "untyped", byKey: make(map[string]*PromSeries)}
	s.byName[name] = f
	s.families = append(s.families, f)
	return f
}

func (f *PromFamily) seriesFor(labels string) *PromSeries {
	if sr, ok := f.byKey[labels]; ok {
		return sr
	}
	sr := &PromSeries{Labels: labels}
	f.byKey[labels] = sr
	f.series = append(f.series, sr)
	return sr
}

// histAssembly accumulates one histogram's _bucket/_sum/_count lines
// until the whole exposition is parsed.
type histAssembly struct {
	bounds []float64 // per-line le values, +Inf included, in arrival order
	cum    []int64   // cumulative counts, parallel to bounds
	sum    float64
	count  int64
}

// ParsePrometheus parses one exposition body.
func ParsePrometheus(r io.Reader) (*PromSnapshot, error) {
	snap := newPromSnapshot()
	hists := make(map[string]map[string]*histAssembly) // base name → labels → assembly
	histOrder := make(map[string][]string)             // base name → label arrival order
	nSeries := 0

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxPromLineLen)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := snap.parseComment(line); err != nil {
				return nil, fmt.Errorf("obs: prom line %d: %w", lineNo, err)
			}
			continue
		}
		nSeries++
		if nSeries > maxPromSeries {
			return nil, fmt.Errorf("obs: prom exposition exceeds %d series", maxPromSeries)
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: prom line %d: %w", lineNo, err)
		}
		if base, part, ok := histSeriesBase(snap, name); ok {
			byLabels, ok := hists[base]
			if !ok {
				byLabels = make(map[string]*histAssembly)
				hists[base] = byLabels
			}
			key, le, err := splitLeLabel(labels, part == "bucket")
			if err != nil {
				return nil, fmt.Errorf("obs: prom line %d: %w", lineNo, err)
			}
			asm, ok := byLabels[key]
			if !ok {
				asm = &histAssembly{}
				byLabels[key] = asm
				histOrder[base] = append(histOrder[base], key)
			}
			switch part {
			case "bucket":
				asm.bounds = append(asm.bounds, le)
				asm.cum = append(asm.cum, int64(value))
			case "sum":
				asm.sum = value
			case "count":
				asm.count = int64(value)
			}
			continue
		}
		sr := snap.family(name).seriesFor(labels)
		sr.Value = value
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading prom exposition: %w", err)
	}

	// Assemble histograms: validate bucket order, de-cumulate counts.
	baseNames := make([]string, 0, len(hists))
	for base := range hists {
		baseNames = append(baseNames, base)
	}
	sort.Strings(baseNames)
	for _, base := range baseNames {
		fam := snap.family(base)
		for _, key := range histOrder[base] {
			h, err := hists[base][key].build()
			if err != nil {
				return nil, fmt.Errorf("obs: prom histogram %s{%s}: %w", base, key, err)
			}
			fam.seriesFor(key).Hist = h
		}
	}
	return snap, nil
}

// parseComment handles # HELP / # TYPE lines (other comments ignored).
func (s *PromSnapshot) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil
	}
	switch fields[1] {
	case "HELP":
		f := s.family(fields[2])
		if len(fields) == 4 {
			f.Help = fields[3]
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		kind := strings.TrimSpace(fields[3])
		switch kind {
		case "counter", "gauge", "histogram", "untyped":
			s.family(fields[2]).Kind = kind
		default:
			return fmt.Errorf("unsupported metric type %q", kind)
		}
	}
	return nil
}

// parsePromSample splits `name{labels} value` (labels optional) into
// its parts, canonicalizing label order.
func parsePromSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated labels in %q", line)
		}
		labels = canonicalLabels(rest[i+1 : j])
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		i = strings.IndexByte(rest, ' ')
		if i < 0 {
			return "", "", 0, fmt.Errorf("sample %q has no value", line)
		}
		name = rest[:i]
		rest = strings.TrimSpace(rest[i+1:])
	}
	if name == "" {
		return "", "", 0, fmt.Errorf("sample %q has no metric name", line)
	}
	// Ignore a trailing timestamp if one ever appears.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("sample %q has malformed value: %w", line, err)
	}
	return name, labels, value, nil
}

// canonicalLabels re-renders a `k="v",…` label string with keys sorted,
// so series match across peers regardless of emission order. Malformed
// label strings are returned verbatim (they then simply never match a
// well-formed key).
func canonicalLabels(ls string) string {
	if ls == "" {
		return ""
	}
	pairs, err := parseLabelPairs(ls)
	if err != nil {
		return ls
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	var sb strings.Builder
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", p[0], p[1])
	}
	return sb.String()
}

// parseLabelPairs splits `k="v",…` into decoded [key, value] pairs.
func parseLabelPairs(ls string) ([][2]string, error) {
	var out [][2]string
	rest := ls
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair in %q", ls)
		}
		key := rest[:eq]
		rest = rest[eq+1:]
		quoted, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("malformed label value in %q: %w", ls, err)
		}
		val, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, err
		}
		out = append(out, [2]string{key, val})
		rest = rest[len(quoted):]
		if rest != "" {
			if rest[0] != ',' {
				return nil, fmt.Errorf("malformed label separator in %q", ls)
			}
			rest = rest[1:]
		}
	}
	return out, nil
}

// histSeriesBase reports whether name is a _bucket/_sum/_count series
// of a family declared `# TYPE … histogram`.
func histSeriesBase(s *PromSnapshot, name string) (base, part string, ok bool) {
	for _, suffix := range [...]string{"_bucket", "_sum", "_count"} {
		b, found := strings.CutSuffix(name, suffix)
		if !found {
			continue
		}
		if f, exists := s.byName[b]; exists && f.Kind == "histogram" {
			return b, suffix[1:], true
		}
	}
	return "", "", false
}

// splitLeLabel removes the le pair from a canonical label string (for
// bucket lines) and returns the remaining key plus the parsed bound.
func splitLeLabel(labels string, wantLe bool) (key string, le float64, err error) {
	if !wantLe {
		return labels, 0, nil
	}
	pairs, err := parseLabelPairs(labels)
	if err != nil {
		return "", 0, err
	}
	rest := pairs[:0]
	found := false
	for _, p := range pairs {
		if p[0] == "le" {
			found = true
			le, err = parsePromFloat(p[1])
			if err != nil {
				return "", 0, fmt.Errorf("malformed le bound %q: %w", p[1], err)
			}
			continue
		}
		rest = append(rest, p)
	}
	if !found {
		return "", 0, fmt.Errorf("bucket series missing le label in %q", labels)
	}
	var sb strings.Builder
	for i, p := range rest {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", p[0], p[1])
	}
	return sb.String(), le, nil
}

func parsePromFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

// build turns accumulated cumulative bucket lines into a
// PromHistogram, validating ordering and monotonicity.
func (a *histAssembly) build() (*PromHistogram, error) {
	if len(a.bounds) == 0 {
		return nil, fmt.Errorf("no bucket lines")
	}
	h := &PromHistogram{Count: a.count, Sum: a.sum}
	prevBound := math.Inf(-1)
	prevCum := int64(0)
	sawInf := false
	for i, b := range a.bounds {
		cum := a.cum[i]
		if cum < prevCum {
			return nil, fmt.Errorf("cumulative bucket counts decrease at le=%v", b)
		}
		if math.IsInf(b, 1) {
			if i != len(a.bounds)-1 {
				return nil, fmt.Errorf("+Inf bucket is not last")
			}
			sawInf = true
		} else {
			if b <= prevBound {
				return nil, fmt.Errorf("bucket bounds not ascending at le=%v", b)
			}
			h.Bounds = append(h.Bounds, b)
			prevBound = b
		}
		h.Buckets = append(h.Buckets, cum-prevCum)
		prevCum = cum
	}
	if !sawInf {
		return nil, fmt.Errorf("missing +Inf bucket")
	}
	if a.count != prevCum {
		return nil, fmt.Errorf("_count %d disagrees with +Inf cumulative %d", a.count, prevCum)
	}
	return h, nil
}

// MergePrometheus folds src into dst all-or-nothing: on any layout
// mismatch (same family at different kinds, same histogram series with
// different bucket bounds) dst is left untouched and the error names
// the offending family — the fleet endpoint counts that peer as a
// scrape error and moves on. Counters and gauges sum (a summed gauge is
// a fleet total, e.g. ftclust_cluster_peers aggregates to peers×nodes);
// histograms sum bucket-wise via the same rule as Histogram.Merge.
func MergePrometheus(dst, src *PromSnapshot) error {
	if src == nil {
		return nil
	}
	// Validation pass: every overlapping family/series must be mergeable.
	for _, sf := range src.families {
		df, ok := dst.byName[sf.Name]
		if !ok {
			continue
		}
		if df.Kind != sf.Kind {
			return fmt.Errorf("obs: merge %s: kind %s vs %s", sf.Name, df.Kind, sf.Kind)
		}
		for _, ss := range sf.series {
			ds, ok := df.byKey[ss.Labels]
			if !ok {
				continue
			}
			if (ds.Hist == nil) != (ss.Hist == nil) {
				return fmt.Errorf("obs: merge %s: histogram vs scalar series", sf.Name)
			}
			if ss.Hist != nil && !equalBounds(ds.Hist.Bounds, ss.Hist.Bounds) {
				return fmt.Errorf("obs: merge %s: bucket layouts differ", sf.Name)
			}
		}
	}
	// Apply pass.
	for _, sf := range src.families {
		df := dst.family(sf.Name)
		if df.Kind == "untyped" {
			df.Kind = sf.Kind
		}
		if df.Help == "" {
			df.Help = sf.Help
		}
		for _, ss := range sf.series {
			ds := df.seriesFor(ss.Labels)
			if ss.Hist == nil {
				ds.Value += ss.Value
				continue
			}
			if ds.Hist == nil {
				ds.Hist = &PromHistogram{
					Bounds:  append([]float64(nil), ss.Hist.Bounds...),
					Buckets: append([]int64(nil), ss.Hist.Buckets...),
					Count:   ss.Hist.Count,
					Sum:     ss.Hist.Sum,
				}
				continue
			}
			for i, n := range ss.Hist.Buckets {
				ds.Hist.Buckets[i] += n
			}
			ds.Hist.Count += ss.Hist.Count
			ds.Hist.Sum += ss.Hist.Sum
		}
	}
	return nil
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NewPromSnapshot returns an empty snapshot to merge peers into.
func NewPromSnapshot() *PromSnapshot { return newPromSnapshot() }

// WritePrometheus re-renders the snapshot in text exposition format,
// families and series in first-seen order, histograms re-cumulated.
func (s *PromSnapshot) WritePrometheus(w io.Writer) error {
	var sb strings.Builder
	for _, f := range s.families {
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.Name, f.Help)
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, sr := range f.series {
			if sr.Hist == nil {
				if f.Kind == "counter" {
					fmt.Fprintf(&sb, "%s %d\n", seriesName(f.Name, sr.Labels), int64(sr.Value))
				} else {
					fmt.Fprintf(&sb, "%s %s\n", seriesName(f.Name, sr.Labels), formatFloat(sr.Value))
				}
				continue
			}
			cum := int64(0)
			for i, bound := range sr.Hist.Bounds {
				cum += sr.Hist.Buckets[i]
				fmt.Fprintf(&sb, "%s %d\n",
					seriesName(f.Name+"_bucket", withLabel(sr.Labels, "le", formatFloat(bound))), cum)
			}
			cum += sr.Hist.Buckets[len(sr.Hist.Bounds)]
			fmt.Fprintf(&sb, "%s %d\n",
				seriesName(f.Name+"_bucket", withLabel(sr.Labels, "le", "+Inf")), cum)
			fmt.Fprintf(&sb, "%s %s\n", seriesName(f.Name+"_sum", sr.Labels), formatFloat(sr.Hist.Sum))
			fmt.Fprintf(&sb, "%s %d\n", seriesName(f.Name+"_count", sr.Labels), sr.Hist.Count)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
