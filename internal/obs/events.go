package obs

import (
	"sync"
	"time"
)

// Event is one structured entry in the cluster event log: a membership
// transition (join, suspect, evict, incarnation), a route-ownership
// change, or a service-side shed/fallback decision. Attrs carry the
// specifics (peer address, reason, old/new epoch) as flat strings so
// the log stays schema-free and cheap to render.
type Event struct {
	Seq   uint64            `json:"seq"`
	Time  time.Time         `json:"time"`
	Type  string            `json:"type"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// EventRing is a bounded, concurrency-safe ring of Events. Like Trace,
// every method is nil-safe (no-op / empty), so emitting sites need no
// guards when the log is disabled. Seq is a monotonically increasing
// ring-lifetime sequence number: consumers can detect both ordering and
// how many events were evicted between reads.
type EventRing struct {
	mu    sync.Mutex
	slots []Event
	next  int
	seq   uint64
	count int
}

// NewEventRing returns a ring holding up to n events (n ≥ 1).
func NewEventRing(n int) *EventRing {
	if n < 1 {
		n = 1
	}
	return &EventRing{slots: make([]Event, n)}
}

// Add records an event stamped with the wall clock. attrs are pairwise
// key, value arguments; a trailing odd key is dropped.
func (r *EventRing) Add(typ string, attrs ...string) {
	r.AddAt(time.Now(), typ, attrs...)
}

// AddAt records an event with an explicit timestamp — callers under an
// injected-clock discipline (internal/cluster) pass their own Now.
func (r *EventRing) AddAt(at time.Time, typ string, attrs ...string) {
	if r == nil {
		return
	}
	var m map[string]string
	if len(attrs) >= 2 {
		m = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			m[attrs[i]] = attrs[i+1]
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.slots[r.next] = Event{Seq: r.seq, Time: at, Type: typ, Attrs: m}
	r.next++
	if r.next == len(r.slots) {
		r.next = 0
	}
	if r.count < len(r.slots) {
		r.count++
	}
}

// Len returns the number of events currently held.
func (r *EventRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// List returns up to limit events, newest first (limit ≤ 0 = all held).
func (r *EventRing) List(limit int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.count
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Event, 0, n)
	size := len(r.slots)
	for i := 1; i <= n; i++ {
		out = append(out, r.slots[(r.next-i+size+size)%size])
	}
	return out
}
