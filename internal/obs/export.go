package obs

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Trace export/import: the wire form that lets a forwarded request's
// remote span subtree travel back to the origin node in a response
// header and be stitched under the origin's trace as a child — one tree
// spanning both nodes at /debug/trace/{id}.
//
// The encoding is the existing SpanJSON tree, compact-marshaled and
// base64'd (headers must stay token-safe; attr values are arbitrary
// strings). Export is bounded: when the full tree exceeds the byte
// budget the deepest levels are pruned first and the surviving root is
// marked with a truncated="true" attr, so an overflowing trace degrades
// to a shallower one instead of an oversized header. Import is strict
// and bounded (size, span count, depth, attr and name lengths, finite
// non-negative durations): arbitrary bytes are rejected with an error,
// never a panic, and nothing is grafted on rejection — a hostile or
// corrupt header cannot damage the origin's trace ring.

// Export wire-form bounds. Decode rejects anything beyond them; encode
// prunes until it fits the caller's byte budget.
const (
	// maxExportDecodedBytes caps the decoded JSON size.
	maxExportDecodedBytes = 64 << 10
	// maxExportSpans caps the total span count of an imported subtree.
	maxExportSpans = 512
	// maxExportDepth caps the nesting depth of an imported subtree.
	maxExportDepth = 16
	// maxExportAttrs caps the attrs carried by one imported span.
	maxExportAttrs = 64
	// maxExportStr caps imported span names and attr keys/values.
	maxExportStr = 256
	// maxExportDurationMs caps one imported span's duration (~11.5 days):
	// anything longer is a corrupt or hostile value, not a measurement.
	maxExportDurationMs = 1e9
)

// attrTruncated marks an exported root whose deeper levels were pruned
// to fit the byte budget.
const attrTruncated = "truncated"

// EncodeTraceExport renders t's span tree in the export wire form,
// guaranteed to fit maxBytes (the encoded length). When the full tree
// is too large, child levels are pruned deepest-first and the root
// gains a truncated="true" attr; if even the bare root does not fit,
// it returns "" — the caller simply skips the header. The second
// result reports whether pruning happened. Nil-safe: a nil trace
// encodes to "".
func EncodeTraceExport(t *Trace, maxBytes int) (string, bool) {
	if t == nil {
		return "", false
	}
	root := t.Snapshot().Root
	for depth := maxExportDepth; depth >= 0; depth-- {
		snap := pruneSpanDepth(root, depth)
		truncated := depth < maxExportDepth
		if truncated {
			snap.Attrs = withTruncatedAttr(snap.Attrs)
		}
		b, err := json.Marshal(snap)
		if err != nil {
			return "", false // unreachable: SpanJSON marshals cleanly
		}
		if enc := base64.StdEncoding.EncodeToString(b); len(enc) <= maxBytes {
			return enc, truncated
		}
	}
	return "", true
}

// pruneSpanDepth copies s keeping children only down to the given depth
// (0 = the span alone).
func pruneSpanDepth(s SpanJSON, depth int) SpanJSON {
	out := s
	out.Children = nil
	if depth == 0 {
		return out
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, pruneSpanDepth(c, depth-1))
	}
	return out
}

func withTruncatedAttr(attrs map[string]string) map[string]string {
	out := make(map[string]string, len(attrs)+1)
	for k, v := range attrs {
		out[k] = v
	}
	out[attrTruncated] = "true"
	return out
}

// DecodeTraceExport parses and validates an export header value. Every
// violation of the wire bounds is an error; the returned subtree is
// safe to Graft.
func DecodeTraceExport(enc string) (SpanJSON, error) {
	var zero SpanJSON
	if enc == "" {
		return zero, errors.New("obs: empty trace export")
	}
	if len(enc) > base64.StdEncoding.EncodedLen(maxExportDecodedBytes) {
		return zero, fmt.Errorf("obs: trace export exceeds %d bytes", maxExportDecodedBytes)
	}
	raw, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		return zero, fmt.Errorf("obs: trace export is not base64: %w", err)
	}
	if len(raw) > maxExportDecodedBytes {
		return zero, fmt.Errorf("obs: trace export exceeds %d bytes", maxExportDecodedBytes)
	}
	var sub SpanJSON
	if err := json.Unmarshal(raw, &sub); err != nil {
		return zero, fmt.Errorf("obs: malformed trace export: %w", err)
	}
	spans := 0
	if err := validateExportSpan(&sub, 0, &spans); err != nil {
		return zero, err
	}
	return sub, nil
}

// validateExportSpan walks an imported subtree enforcing the wire
// bounds.
func validateExportSpan(s *SpanJSON, depth int, spans *int) error {
	if depth > maxExportDepth {
		return fmt.Errorf("obs: trace export deeper than %d levels", maxExportDepth)
	}
	*spans++
	if *spans > maxExportSpans {
		return fmt.Errorf("obs: trace export carries more than %d spans", maxExportSpans)
	}
	if s.Name == "" || len(s.Name) > maxExportStr {
		return fmt.Errorf("obs: trace export span name length %d out of (0, %d]", len(s.Name), maxExportStr)
	}
	if math.IsNaN(s.DurationMs) || math.IsInf(s.DurationMs, 0) ||
		s.DurationMs < 0 || s.DurationMs > maxExportDurationMs {
		return fmt.Errorf("obs: trace export span %q has invalid duration %v", s.Name, s.DurationMs)
	}
	if len(s.Attrs) > maxExportAttrs {
		return fmt.Errorf("obs: trace export span %q carries %d attrs (max %d)", s.Name, len(s.Attrs), maxExportAttrs)
	}
	for k, v := range s.Attrs {
		if k == "" || len(k) > maxExportStr || len(v) > maxExportStr {
			return fmt.Errorf("obs: trace export span %q has an attr outside the length bounds", s.Name)
		}
	}
	for i := range s.Children {
		if err := validateExportSpan(&s.Children[i], depth+1, spans); err != nil {
			return err
		}
	}
	return nil
}

// Graft attaches an imported span subtree under parent (nil = root) as
// regular spans, preserving the remote start times and durations, so
// the stitched tree renders exactly like a locally recorded one.
// Nil-safe on the trace; callers should only pass DecodeTraceExport
// output (bounds already enforced).
func (t *Trace) Graft(parent *Span, sub SpanJSON) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if parent == nil {
		parent = t.root
	}
	sp := t.graftLocked(sub)
	parent.children = append(parent.children, sp)
	return sp
}

// graftLocked converts one SpanJSON node (and its children) into Spans
// owned by t. Attr keys are emitted in sorted order: the wire form is a
// map, and map range order must not leak into the rendered trace.
func (t *Trace) graftLocked(s SpanJSON) *Span {
	end := s.Start.Add(time.Duration(s.DurationMs * float64(time.Millisecond)))
	sp := &Span{t: t, name: s.Name, start: s.Start, end: end}
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sp.attrs = append(sp.attrs, spanAttr{k, s.Attrs[k]})
		}
	}
	for _, c := range s.Children {
		sp.children = append(sp.children, t.graftLocked(c))
	}
	return sp
}
