package obs

import (
	"runtime/metrics"
	"time"
)

// PhaseInfo describes one completed solver phase, delivered to
// SolveObserver.OnPhase at the phase boundary.
type PhaseInfo struct {
	// Name identifies the phase: "fractional", "rounding" or "verify".
	Name string
	// Duration is the phase's wall time.
	Duration time.Duration
	// Rounds is the phase's synchronous communication-round count in the
	// distributed execution (2t² for the fractional phase, the fixed
	// guarantee-sweep + rounding rounds otherwise).
	Rounds int
	// AllocObjects approximates the heap objects allocated during the
	// phase (cumulative runtime counter delta; other goroutines' allocs
	// leak in, so treat it as a magnitude, not an exact figure).
	AllocObjects uint64
}

// SolveStats summarizes a finished solve, delivered to
// SolveObserver.OnDone. It carries the paper's quantitative guarantees so
// they are observable per request: the LP round count (O(t²), Theorem
// 4.2), the dual-certificate quality κ = t(Δ+1)^{1/t} (Lemma 4.4), and
// the primal-dual gap against the certified LP lower bound (Theorems
// 4.5/4.6).
type SolveStats struct {
	// LPRounds is Algorithm 1's double-loop round count (2t²).
	LPRounds int
	// RoundingPasses counts Algorithm 2's sweeps actually executed: the
	// sampling pass plus, unless repair was skipped, the REQ repair pass.
	RoundingPasses int
	// Sampled and Repaired are Algorithm 2's selection counts.
	Sampled, Repaired int
	// SetSize is |S| of the integral solution.
	SetSize int
	// FractionalObjective is Σx of Algorithm 1's fractional solution.
	FractionalObjective float64
	// Kappa is the dual infeasibility factor t·(Δ+1)^{1/t}.
	Kappa float64
	// DualLowerBound is the certified lower bound DualObjective/κ.
	DualLowerBound float64
	// DualGap is FractionalObjective − DualLowerBound (≥ 0 up to float
	// error; small gaps mean the certificate is near-tight).
	DualGap float64
	// Feasible reports whether the rounded set verified.
	Feasible bool
}

// SolveObserver receives callbacks from the solver at phase boundaries.
// It is a struct of optional funcs rather than an interface so a nil
// observer pointer costs a single predictable branch per phase and no
// interface boxing on the hot path; any field may be nil.
//
// Callbacks run synchronously on the solving goroutine — keep them cheap
// (bump a histogram, append to a span) and do not call back into the
// solver.
type SolveObserver struct {
	// OnPhase fires when a phase completes.
	OnPhase func(PhaseInfo)
	// OnDone fires once after the last phase with the solve summary.
	OnDone func(SolveStats)
}

// allocSample is the runtime metric behind PhaseInfo.AllocObjects:
// cumulative heap objects allocated, readable without a stop-the-world
// (unlike runtime.ReadMemStats).
const allocSample = "/gc/heap/allocs:objects"

// AllocCounter cheaply reads the cumulative heap-allocation object count.
// The sample buffer is embedded so repeated reads allocate nothing.
type AllocCounter struct {
	s [1]metrics.Sample
}

// NewAllocCounter returns a ready-to-use counter.
func NewAllocCounter() *AllocCounter {
	a := &AllocCounter{}
	a.s[0].Name = allocSample
	return a
}

// Count returns the cumulative allocated-objects counter; subtract two
// readings to approximate a region's allocations.
func (a *AllocCounter) Count() uint64 {
	metrics.Read(a.s[:])
	if a.s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return a.s[0].Value.Uint64()
}

// PhaseClock times consecutive solver phases for a SolveObserver. It
// lives here — not in the solver — because internal/core is a
// determinism-critical package where ftlint's detrand check bans
// wall-clock reads: the solver only marks phase boundaries, and the
// observer layer owns the clock. A nil PhaseClock is a no-op, so the
// solver body needs no per-call guards and the nil-observer path reads
// no clocks at all.
type PhaseClock struct {
	o      *SolveObserver
	ac     *AllocCounter
	mark   time.Time
	allocs uint64
}

// NewPhaseClock returns an armed clock reporting to o.
func NewPhaseClock(o *SolveObserver) *PhaseClock {
	ph := &PhaseClock{o: o, ac: NewAllocCounter()}
	ph.Start()
	return ph
}

// Start (re)arms the clock at a phase boundary.
func (ph *PhaseClock) Start() {
	if ph == nil {
		return
	}
	ph.mark = time.Now()
	ph.allocs = ph.ac.Count()
}

// End closes the current phase, emits it, and re-arms for the next.
func (ph *PhaseClock) End(name string, rounds int) {
	if ph == nil {
		return
	}
	now := time.Now()
	allocs := ph.ac.Count()
	if ph.o.OnPhase != nil {
		ph.o.OnPhase(PhaseInfo{
			Name:         name,
			Duration:     now.Sub(ph.mark),
			Rounds:       rounds,
			AllocObjects: allocs - ph.allocs,
		})
	}
	ph.mark = now
	ph.allocs = allocs
}
