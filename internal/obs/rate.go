package obs

import (
	"sync"
	"time"
)

// RateWindow turns a monotonically increasing counter into a rolling
// rate: callers push periodic (time, value) samples and read back the
// delta-per-second over the retained window. It is the client-side
// building block ftop uses to show cluster QPS from cumulative
// Prometheus counters, and is tolerant of counter resets (a process
// restart re-anchors the window instead of reporting a negative rate).
type RateWindow struct {
	mu      sync.Mutex
	samples []rateSample // oldest first, len ≤ cap(samples)
}

type rateSample struct {
	at time.Time
	v  float64
}

// NewRateWindow returns a window retaining up to n samples (n ≥ 2 —
// a rate needs two points).
func NewRateWindow(n int) *RateWindow {
	if n < 2 {
		n = 2
	}
	return &RateWindow{samples: make([]rateSample, 0, n)}
}

// Observe pushes one cumulative counter sample. A value below the
// previous sample means the counter reset; the window re-anchors at the
// new value. Non-monotonic timestamps are dropped.
func (w *RateWindow) Observe(at time.Time, v float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.samples); n > 0 {
		last := w.samples[n-1]
		if !at.After(last.at) {
			return
		}
		if v < last.v {
			w.samples = w.samples[:0]
		}
	}
	if len(w.samples) == cap(w.samples) {
		copy(w.samples, w.samples[1:])
		w.samples = w.samples[:len(w.samples)-1]
	}
	w.samples = append(w.samples, rateSample{at, v})
}

// Rate returns the average delta per second across the retained window,
// or 0 with fewer than two samples.
func (w *RateWindow) Rate() float64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.samples)
	if n < 2 {
		return 0
	}
	first, last := w.samples[0], w.samples[n-1]
	dt := last.at.Sub(first.at).Seconds()
	if dt <= 0 {
		return 0
	}
	return (last.v - first.v) / dt
}
