package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestHistogramQuantilesMonotone(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-4) // 0.1ms … 100ms
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p90, p99 := h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	// The true p50 is 50ms; factor-2 buckets with interpolation must land
	// within the bucket [32.77ms, 65.54ms].
	if p50 < 0.0327 || p50 > 0.0656 {
		t.Errorf("p50 = %v, want within the bucket around 0.05", p50)
	}
	sum := h.Sum()
	if sum < 50.0 || sum > 50.1 { // Σ i·1e-4 = 50.05
		t.Errorf("sum = %v, want ≈50.05", sum)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	h.Observe(1000) // +Inf bucket
	if q := h.Quantile(0.5); q != 4 {
		t.Fatalf("overflow quantile = %v, want clamp to 4", q)
	}
}

func TestRegistryPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ft_requests_total", "requests served", "endpoint", "/v1/solve")
	c.Add(3)
	r.Gauge("ft_queue_depth", "queued jobs", func() float64 { return 7 })
	h := r.Histogram("ft_latency_seconds", "latency", []float64{0.001, 0.01, 0.1}, "endpoint", "/v1/solve")
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(5) // overflow

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP ft_requests_total requests served",
		"# TYPE ft_requests_total counter",
		`ft_requests_total{endpoint="/v1/solve"} 3`,
		"# TYPE ft_queue_depth gauge",
		"ft_queue_depth 7",
		"# TYPE ft_latency_seconds histogram",
		`ft_latency_seconds_bucket{endpoint="/v1/solve",le="0.001"} 0`,
		`ft_latency_seconds_bucket{endpoint="/v1/solve",le="0.01"} 2`,
		`ft_latency_seconds_bucket{endpoint="/v1/solve",le="0.1"} 2`,
		`ft_latency_seconds_bucket{endpoint="/v1/solve",le="+Inf"} 3`,
		`ft_latency_seconds_sum{endpoint="/v1/solve"} 5.01`,
		`ft_latency_seconds_count{endpoint="/v1/solve"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDedupAndHeaderOnce(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ft_x_total", "x", "l", "1")
	b := r.Counter("ft_x_total", "x", "l", "2")
	if a == b {
		t.Fatal("different label sets must be distinct series")
	}
	if again := r.Counter("ft_x_total", "x", "l", "1"); again != a {
		t.Fatal("same name+labels must return the same counter")
	}
	a.Inc()
	b.Add(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# TYPE ft_x_total counter") != 1 {
		t.Errorf("TYPE header must appear once per metric name:\n%s", out)
	}
	if !strings.Contains(out, `ft_x_total{l="1"} 1`) || !strings.Contains(out, `ft_x_total{l="2"} 2`) {
		t.Errorf("label series missing:\n%s", out)
	}
}

func TestHistogramBucketMonotonicityInExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ft_d_seconds", "d", DurationBuckets())
	for _, d := range []time.Duration{time.Millisecond, 40 * time.Millisecond, 2 * time.Second, 500 * time.Second} {
		h.ObserveDuration(d)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	n := 0
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "ft_d_seconds_bucket") {
			continue
		}
		n++
		var v int64
		if _, err := fmtSscan(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts must be cumulative non-decreasing: %q after %d", line, prev)
		}
		prev = v
	}
	if n != len(DurationBuckets())+1 {
		t.Fatalf("bucket lines = %d, want %d", n, len(DurationBuckets())+1)
	}
	if prev != 4 {
		t.Fatalf("+Inf bucket = %d, want 4", prev)
	}
}

// fmtSscan pulls the trailing integer value off an exposition line.
func fmtSscan(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*v, err = parseInt(line[i+1:])
	if err != nil {
		return 0, err
	}
	return 1, nil
}

func parseInt(s string) (int64, error) {
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errBadInt
		}
		v = v*10 + int64(c-'0')
	}
	return v, nil
}

var errBadInt = &badInt{}

type badInt struct{}

func (*badInt) Error() string { return "not an integer" }

func TestAllocCounter(t *testing.T) {
	a := NewAllocCounter()
	before := a.Count()
	sink := make([][]byte, 0, 1000)
	for i := 0; i < 1000; i++ {
		sink = append(sink, make([]byte, 16))
	}
	_ = sink
	if after := a.Count(); after <= before {
		t.Errorf("alloc counter did not advance: %d -> %d", before, after)
	}
}
