package service

import (
	"context"
	"errors"
	"sync"

	"ftclust"
)

// Queue errors, surfaced to clients as 503s.
var (
	// errQueueFull reports that the bounded job queue had no free slot.
	errQueueFull = errors.New("service: job queue full")
	// errDraining reports that the server is shutting down and accepts no
	// new work (in-flight jobs still complete).
	errDraining = errors.New("service: draining, not accepting new jobs")
)

// jobQueue is a bounded FIFO of solve jobs executed by a fixed worker
// pool. Handlers block on their job's completion (the HTTP API is
// synchronous), so the pool bounds solver concurrency and the channel
// capacity bounds the backlog; anything beyond that is rejected
// immediately with errQueueFull so overload degrades crisply instead of
// queueing unboundedly.
type jobQueue struct {
	jobs    chan *job
	workers sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

type job struct {
	ctx  context.Context
	fn   func(context.Context, *ftclust.Scratch)
	done chan struct{}
}

// newJobQueue starts workers goroutines serving a queue of the given
// capacity.
func newJobQueue(workers, capacity int) *jobQueue {
	q := &jobQueue{jobs: make(chan *job, capacity)}
	for i := 0; i < workers; i++ {
		q.workers.Add(1)
		go q.work()
	}
	return q
}

func (q *jobQueue) work() {
	defer q.workers.Done()
	// One solver arena per worker goroutine, reused across all jobs the
	// worker ever runs: steady-state solves allocate nothing. Safe because
	// a worker runs one job at a time and every job converts its solution
	// to wire form (fresh copies) before the next job reuses the arena.
	scratch := ftclust.NewScratch()
	for j := range q.jobs {
		// fn is responsible for honoring j.ctx (the solver checks it
		// between rounds); a job whose client is already gone returns
		// almost immediately.
		j.fn(j.ctx, scratch)
		close(j.done)
	}
}

// Do submits fn and blocks until it completes or ctx is done. fn receives
// the executing worker's private solver arena. A full queue or a draining
// server is reported synchronously. When ctx fires first the job may
// still run (the worker will pass it the canceled context, so the solver
// aborts at its next checkpoint).
func (q *jobQueue) Do(ctx context.Context, fn func(context.Context, *ftclust.Scratch)) error {
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{})}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return errDraining
	}
	select {
	case q.jobs <- j:
		q.mu.Unlock()
	default:
		q.mu.Unlock()
		return errQueueFull
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Depth returns the number of queued (not yet started) jobs.
func (q *jobQueue) Depth() int { return len(q.jobs) }

// Close stops accepting new jobs, lets the workers drain everything
// already queued, and returns when the pool has exited. Safe to call
// more than once.
func (q *jobQueue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.jobs)
	}
	q.mu.Unlock()
	q.workers.Wait()
}
