package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"ftclust/internal/cluster"
	"ftclust/internal/obs"
)

// Fleet endpoints: one scrape of every alive peer's /metrics, merged
// into a cluster-wide view. The JSON summary carries per-peer health
// (membership state, heartbeat age, scrape outcome) plus the headline
// aggregates; the /metrics variant returns the merged exposition
// itself. A peer that is down, slow or emitting garbage is a degraded
// row and a bump of ftclust_fleet_scrape_errors_total — never a 500:
// partial fleet visibility under failures is the whole point.
const (
	// FleetPath is the fleet-summary route; exported for clients (ftop).
	FleetPath        = "/cluster/v1/fleet"
	fleetMetricsPath = "/cluster/v1/fleet/metrics"

	// fleetScrapeTimeout bounds one peer scrape; a stalled peer costs
	// the aggregation this much at worst (scrapes run concurrently).
	fleetScrapeTimeout = 2 * time.Second
	// maxScrapeBody caps one peer's exposition body.
	maxScrapeBody = 4 << 20
)

// FleetPeer is one node's row in the fleet summary.
type FleetPeer struct {
	Addr           string  `json:"addr"`
	Self           bool    `json:"self,omitempty"`
	State          string  `json:"state"` // "self", "alive" or "suspect"
	HeartbeatAgeMs float64 `json:"heartbeat_age_ms"`
	ScrapeOK       bool    `json:"scrape_ok"`
	ScrapeMs       float64 `json:"scrape_ms"`
	Error          string  `json:"error,omitempty"`

	// Headline per-peer counters, lifted from the scrape so a dashboard
	// does not need to re-parse the merged exposition per peer.
	Solves        float64 `json:"solves"`
	CacheHits     float64 `json:"cache_hits"`
	HTTPRequests  float64 `json:"http_requests"`
	Shed          float64 `json:"shed"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// FleetAggregate is the cluster-wide rollup of the merged scrape.
type FleetAggregate struct {
	Solves           float64 `json:"solves"`
	SolveErrors      float64 `json:"solve_errors"`
	CacheHits        float64 `json:"cache_hits"`
	CacheMisses      float64 `json:"cache_misses"`
	Coalesced        float64 `json:"coalesced"`
	ShedQueue        float64 `json:"shed_queue"`
	ShedRatelimit    float64 `json:"shed_ratelimit"`
	HTTPRequests     float64 `json:"http_requests"`
	Forwards         float64 `json:"forwards"`
	UptimeSecondsMax float64 `json:"uptime_seconds_max"`
	SolveP50Ms       float64 `json:"solve_p50_ms"`
	SolveP99Ms       float64 `json:"solve_p99_ms"`
	SolveSamples     int64   `json:"solve_samples"`
}

// FleetSummary is the JSON shape of GET /cluster/v1/fleet.
type FleetSummary struct {
	Self         string         `json:"self"`
	Members      int            `json:"members"`
	ScrapeErrors int            `json:"scrape_errors"`
	Peers        []FleetPeer    `json:"peers"`
	Aggregate    FleetAggregate `json:"aggregate"`
}

// fleetScrape is one peer's raw scrape outcome.
type fleetScrape struct {
	snap *obs.PromSnapshot
	dur  time.Duration
	err  error
}

// scrapeFleet concurrently scrapes every member (self from the local
// registry, peers over HTTP) and merges the parses. Scrape and merge
// failures degrade to per-peer error rows; the returned aggregate holds
// whatever subset succeeded.
func (s *Server) scrapeFleet(ctx context.Context) (FleetSummary, *obs.PromSnapshot) {
	self := ""
	var statuses []cluster.PeerStatus
	if s.cluster != nil {
		self = s.cluster.Self()
		statuses = s.cluster.PeerStatuses()
	}

	// Row 0 is always self; remote rows follow ascending by address.
	type target struct {
		addr   string
		status *cluster.PeerStatus
	}
	targets := []target{{addr: self}}
	for i := range statuses {
		targets = append(targets, target{addr: statuses[i].Addr, status: &statuses[i]})
	}

	scrapes := make([]fleetScrape, len(targets))
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			start := time.Now()
			var snap *obs.PromSnapshot
			var err error
			if i == 0 {
				snap, err = s.scrapeSelf()
			} else {
				snap, err = s.scrapePeer(ctx, addr)
			}
			scrapes[i] = fleetScrape{snap: snap, dur: time.Since(start), err: err}
		}(i, tgt.addr)
	}
	wg.Wait()

	now := time.Now()
	agg := obs.NewPromSnapshot()
	sum := FleetSummary{Self: self, Members: len(targets)}
	for i, tgt := range targets {
		sc := scrapes[i]
		s.metrics.fleetScrapes.Inc()
		row := FleetPeer{Addr: tgt.addr, ScrapeMs: float64(sc.dur) / float64(time.Millisecond)}
		if i == 0 {
			row.Self = true
			row.State = "self"
		} else {
			row.State = tgt.status.State
			row.HeartbeatAgeMs = float64(now.Sub(tgt.status.LastSeen)) / float64(time.Millisecond)
		}
		err := sc.err
		if err == nil {
			// Merge is all-or-nothing: a layout mismatch rejects the whole
			// peer, so a skewed build cannot poison the aggregate.
			err = obs.MergePrometheus(agg, sc.snap)
		}
		if err != nil {
			row.Error = err.Error()
			s.metrics.fleetScrapeErrors.Inc()
			sum.ScrapeErrors++
		} else {
			row.ScrapeOK = true
			row.Solves, _ = sc.snap.Value("ftclust_solves_total")
			row.CacheHits, _ = sc.snap.Value("ftclust_cache_hits_total")
			row.HTTPRequests = sc.snap.SumSeries("ftclust_http_requests_total")
			row.Shed = sc.snap.SumSeries("ftclust_shed_total")
			row.UptimeSeconds, _ = sc.snap.Value("ftclust_uptime_seconds")
		}
		sum.Peers = append(sum.Peers, row)
	}
	sort.SliceStable(sum.Peers[1:], func(i, j int) bool {
		return sum.Peers[i+1].Addr < sum.Peers[j+1].Addr
	})
	sum.Aggregate = aggregateFrom(agg)
	for _, p := range sum.Peers {
		if p.UptimeSeconds > sum.Aggregate.UptimeSecondsMax {
			sum.Aggregate.UptimeSecondsMax = p.UptimeSeconds
		}
	}
	return sum, agg
}

// scrapeSelf renders and re-parses this node's own registry — no HTTP
// hop, and the same code path as remote peers so the merge sees one
// uniform input shape.
func (s *Server) scrapeSelf() (*obs.PromSnapshot, error) {
	var buf bytes.Buffer
	if err := s.metrics.reg.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	return obs.ParsePrometheus(&buf)
}

// scrapePeer fetches and parses one remote /metrics.
func (s *Server) scrapePeer(ctx context.Context, addr string) (*obs.PromSnapshot, error) {
	ctx, cancel := context.WithTimeout(ctx, fleetScrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.cluster.Client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: /metrics status %d", addr, resp.StatusCode)
	}
	return obs.ParsePrometheus(io.LimitReader(resp.Body, maxScrapeBody))
}

// aggregateFrom lifts the headline numbers out of the merged snapshot.
func aggregateFrom(agg *obs.PromSnapshot) FleetAggregate {
	v := func(name string, labels ...string) float64 {
		x, _ := agg.Value(name, labels...)
		return x
	}
	out := FleetAggregate{
		Solves:        v("ftclust_solves_total"),
		SolveErrors:   v("ftclust_solve_errors_total"),
		CacheHits:     v("ftclust_cache_hits_total"),
		CacheMisses:   v("ftclust_cache_misses_total"),
		Coalesced:     v("ftclust_coalesced_total"),
		ShedQueue:     v("ftclust_shed_total", "reason", "queue"),
		ShedRatelimit: v("ftclust_shed_total", "reason", "ratelimit"),
		HTTPRequests:  agg.SumSeries("ftclust_http_requests_total"),
		Forwards:      v("ftclust_cluster_forwards_total"),
	}
	if h, ok := agg.Hist("ftclust_solve_duration_seconds"); ok {
		out.SolveP50Ms = h.Quantile(0.50) * 1e3
		out.SolveP99Ms = h.Quantile(0.99) * 1e3
		out.SolveSamples = h.Count
	}
	return out
}

// handleFleet serves GET /cluster/v1/fleet.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	sum, _ := s.scrapeFleet(r.Context())
	writeJSON(w, http.StatusOK, sum)
}

// handleFleetMetrics serves GET /cluster/v1/fleet/metrics: the merged
// exposition. Degraded peers are reported in a leading comment line so
// text-format consumers can see partiality without the JSON endpoint.
func (s *Server) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	sum, agg := s.scrapeFleet(r.Context())
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# fleet: %d members, %d scrape errors\n", sum.Members, sum.ScrapeErrors)
	if err := agg.WritePrometheus(&buf); err != nil {
		http.Error(w, "rendering fleet metrics: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}
