package service

import "sync"

// flightGroup coalesces concurrent solves of the same cache key: the first
// request to miss the cache becomes the leader and runs the solve; every
// request for the same key that arrives while it is in flight becomes a
// follower and waits for the leader's result instead of occupying another
// pool worker. The solver is deterministic and the shared result is one
// *SolveResponse pointer, so leader and followers serialize byte-identical
// bodies — coalescing is invisible except for the X-Cache header and the
// coalesced counter.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-flight solve. done is closed after resp/status/err are
// set and the flight has been removed from the group, so a follower that
// observes done always sees the final outcome.
type flight struct {
	done   chan struct{}
	resp   *SolveResponse
	status int
	err    error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the flight for key and whether the caller is its leader.
// A leader MUST call finish exactly once.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's outcome and releases the followers. The
// caller must have inserted the result into the solution cache first (on
// success): the flight is removed from the group before done is closed, so
// a request arriving after removal finds the cache populated and never
// re-solves.
func (g *flightGroup) finish(key string, f *flight, resp *SolveResponse, status int, err error) {
	f.resp, f.status, f.err = resp, status, err
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
}
