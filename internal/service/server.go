// Package service exposes the k-MDS machinery as a long-running HTTP JSON
// service — the serving layer the ROADMAP's production north star asks
// for. Callers no longer link the library and pay a cold solve per query:
//
//   - POST /v1/solve          — k-MDS on a posted graph or generated family
//   - POST /v1/solvebatch     — an array of solve requests fanned across
//     the pool, results in request order
//   - POST /v1/verify         — feasibility check of a proposed set
//   - POST /v1/session        — solve + register a stateful cluster session
//   - GET  /v1/session/{id}   — session status
//   - POST /v1/session/{id}/fail — inject failures; repaired locally with
//     maintain.Repair, never a full re-solve
//   - DELETE /v1/session/{id} — drop a session
//   - GET  /metrics           — Prometheus text exposition (per-endpoint
//     latency histograms, queue-wait vs solve split, solver phase series)
//   - GET  /debug/metrics     — the same state summarized as JSON
//   - GET  /debug/trace       — recent request traces (newest first)
//   - GET  /debug/trace/{id}  — one request's span tree as JSON
//   - GET  /debug/events      — cluster/service event log (newest first)
//   - GET  /cluster/v1/fleet  — fleet summary: per-peer health plus
//     cluster-wide aggregates merged from every alive peer's /metrics
//   - GET  /cluster/v1/fleet/metrics — the merged exposition itself
//   - GET  /healthz           — liveness
//
// Behind the handlers sit a bounded job queue with a fixed solver-worker
// pool (overload returns 503 instead of queueing unboundedly; each worker
// owns a reusable solver arena, so steady-state solves allocate nothing),
// an LRU solution cache keyed by the canonical graph hash plus solver
// options (deterministic solver ⇒ a hit is byte-identical to a re-solve),
// in-flight coalescing of identical requests (concurrent duplicates wait
// for the one running solve instead of occupying more workers; X-Cache:
// coalesced), and per-request deadlines threaded into the solver's round
// loop via ftclust.WithContext. Shutdown drains in-flight solves before
// returning.
//
// Every response carries an X-Request-ID header (client-supplied IDs are
// propagated); the ID resolves at /debug/trace/{id} to a span tree
// covering queue wait, the cache/coalesce decision, solver phases and
// response encoding for as long as the trace stays in the bounded ring.
package service

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"ftclust/internal/cluster"
	"ftclust/internal/obs"
	"ftclust/internal/rng"
)

// Config tunes the server. Zero values select the documented defaults.
type Config struct {
	// Workers is the solver pool size: at most this many solves run
	// concurrently (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the backlog of accepted-but-not-started solves
	// (default 64); beyond it /v1/solve returns 503.
	QueueDepth int
	// CacheSize is the LRU solution-cache capacity in entries
	// (default 128; ≤ -1 disables caching, 0 selects the default).
	CacheSize int
	// MaxBodyBytes caps request bodies (default 16 MiB); larger bodies
	// get 413.
	MaxBodyBytes int64
	// MaxNodes caps the node count of posted or generated instances
	// (default 1<<20).
	MaxNodes int
	// SolveTimeout is the per-request solve deadline (default 60s;
	// negative disables).
	SolveTimeout time.Duration
	// SolveThreads is the per-solve worker count handed to the engine's
	// parallel sweeps (default 1: with a pool of concurrent solves,
	// one thread per solve is the throughput-optimal default).
	SolveThreads int
	// MaxSessions bounds live sessions (default 1024).
	MaxSessions int
	// SessionTTL is how long an idle session survives before the janitor
	// sweeps it (default 30m; negative disables expiry). Every request
	// that touches a session refreshes its clock.
	SessionTTL time.Duration
	// Logger receives structured access and lifecycle logs (default: a
	// logger that discards everything).
	Logger *slog.Logger
	// SlowRequest is the threshold above which a completed request is
	// logged at warn level with its full timing breakdown (default 0:
	// disabled).
	SlowRequest time.Duration
	// TraceRing bounds how many recent request traces /debug/trace keeps
	// (default 256). Only /v1/* requests are retained; probe endpoints
	// would otherwise flush real solves out of the ring.
	TraceRing int
	// EventRing bounds the structured event log behind /debug/events:
	// membership transitions, shed decisions, forward and repair
	// fallbacks (default 256).
	EventRing int
	// Cluster enables cluster mode when non-nil: this node gossips
	// membership with its peers and routes /v1/solve and /v1/solvebatch
	// keys to their rendezvous owners.
	Cluster *ClusterConfig
	// RatePerSec enables per-client token-bucket admission on the /v1/*
	// routes: each client accrues this many requests per second up to
	// RateBurst, and an empty bucket is shed with 429 + Retry-After
	// (default 0: disabled).
	RatePerSec float64
	// RateBurst is the per-client burst allowance (default 2× RatePerSec,
	// minimum 1).
	RateBurst int
}

// ClusterConfig wires this server into a ftserved cluster. Self is
// required; everything else defaults sensibly.
type ClusterConfig struct {
	// Self is the advertised host:port peers reach this node on.
	Self string
	// Seeds are the bootstrap peers (the -join flag).
	Seeds []string
	// GossipInterval is the base shuffle period (default 1s).
	GossipInterval time.Duration
	// SuspectAfter / EvictAfter are the missed-heartbeat deadlines
	// (defaults 5× interval and 3× SuspectAfter).
	SuspectAfter time.Duration
	EvictAfter   time.Duration
	// Seed seeds the gossip jitter/selection source (default 1).
	Seed int64
	// Client overrides the HTTP client used for gossip and forwarding
	// (default 2s timeout).
	Client *http.Client
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 1 << 20
	}
	if c.SolveTimeout == 0 {
		c.SolveTimeout = 60 * time.Second
	}
	if c.SolveThreads <= 0 {
		c.SolveThreads = 1
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 256
	}
	if c.EventRing <= 0 {
		c.EventRing = 256
	}
	if c.RatePerSec > 0 && c.RateBurst <= 0 {
		c.RateBurst = int(2 * c.RatePerSec)
		if c.RateBurst < 1 {
			c.RateBurst = 1
		}
	}
}

// Server is the clustering service. Create with New, mount Handler on an
// http.Server (or httptest), and call Shutdown to drain.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped in the observability middleware
	queue    *jobQueue
	cache    *lruCache
	flights  *flightGroup
	metrics  *metrics
	sessions *sessionStore
	traces   *obs.Ring
	events   *obs.EventRing
	logger   *slog.Logger
	cluster  *cluster.Node
	limiter  *cluster.RateLimiter

	janitorStop chan struct{}
	janitorOnce sync.Once
	janitorDone chan struct{}
}

// New builds a Server from cfg (zero value = all defaults).
func New(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		queue:    newJobQueue(cfg.Workers, cfg.QueueDepth),
		cache:    newLRUCache(cfg.CacheSize),
		flights:  newFlightGroup(),
		metrics:  newMetrics(time.Now()),
		sessions: newSessionStore(cfg.MaxSessions),
		traces:   obs.NewRing(cfg.TraceRing),
		events:   obs.NewEventRing(cfg.EventRing),
		logger:   cfg.Logger,
	}
	s.metrics.queueDepth = s.queue.Depth
	s.metrics.activeSessions = s.sessions.len

	if cfg.RatePerSec > 0 {
		s.limiter = cluster.NewRateLimiter(cfg.RatePerSec, cfg.RateBurst, 4096, time.Now)
	}
	if cfg.Cluster != nil {
		cc := cfg.Cluster
		seed := cc.Seed
		if seed == 0 {
			seed = 1
		}
		node, err := cluster.New(cluster.Config{
			Self:           cc.Self,
			Seeds:          cc.Seeds,
			GossipInterval: cc.GossipInterval,
			SuspectAfter:   cc.SuspectAfter,
			EvictAfter:     cc.EvictAfter,
			Now:            time.Now,
			Rand:           rng.New(seed),
			Client:         cc.Client,
			Logger:         cfg.Logger,
			Registry:       s.metrics.reg,
			Events:         s.events,
		})
		if err != nil {
			// Only reachable through a programming error (empty Self):
			// every runtime input is validated by the flag layer.
			panic("service: invalid cluster config: " + err.Error())
		}
		s.cluster = node
	}

	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/solvebatch", s.handleSolveBatch)
	s.mux.HandleFunc("POST /v1/verify", s.handleVerify)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/session/{id}", s.handleSessionGet)
	s.mux.HandleFunc("POST /v1/session/{id}/fail", s.handleSessionFail)
	s.mux.HandleFunc("POST /v1/session/{id}/delta", s.handleSessionDelta)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /metrics", s.metrics.promHandler)
	s.mux.HandleFunc("GET /debug/metrics", s.metrics.handler)
	s.mux.HandleFunc("GET /debug/trace", s.handleTraceList)
	s.mux.HandleFunc("GET /debug/trace/{id}", s.handleTraceGet)
	s.mux.HandleFunc("GET /debug/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Fleet aggregation is mounted unconditionally: without cluster mode
	// it degrades to a fleet of one (this node's own metrics).
	s.mux.HandleFunc("GET "+FleetPath, s.handleFleet)
	s.mux.HandleFunc("GET "+fleetMetricsPath, s.handleFleetMetrics)
	if s.cluster != nil {
		s.mux.HandleFunc("POST "+cluster.GossipPath, s.cluster.HandleGossip)
		s.mux.HandleFunc("GET "+cluster.PeersPath, s.cluster.HandlePeers)
	}
	s.handler = s.withObservability(s.withAdmission(s.mux))

	s.janitorDone = make(chan struct{})
	if cfg.SessionTTL > 0 {
		s.janitorStop = make(chan struct{})
		go s.sessionJanitor(s.janitorStop)
	} else {
		close(s.janitorDone)
	}
	if s.cluster != nil {
		s.cluster.Start()
	}
	return s
}

// sessionJanitor sweeps idle sessions every quarter TTL until stop closes.
func (s *Server) sessionJanitor(stop <-chan struct{}) {
	defer close(s.janitorDone)
	interval := s.cfg.SessionTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case now := <-ticker.C:
			if n := s.sessions.sweep(now.Add(-s.cfg.SessionTTL)); n > 0 {
				s.metrics.sessionsExpired.Add(int64(n))
				s.logger.Info("sessions expired",
					slog.Int("swept", n),
					slog.Duration("ttl", s.cfg.SessionTTL),
					slog.Int("remaining", s.sessions.len()))
			}
		case <-stop:
			return
		}
	}
}

// Handler returns the service's HTTP handler: the route mux wrapped in
// the request-ID / tracing / access-log / per-endpoint-metrics middleware.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics returns a point-in-time snapshot of the service counters.
func (s *Server) Metrics() MetricsSnapshot { return s.metrics.snapshot(time.Now()) }

// Shutdown drains the solver pool: new jobs are rejected with 503 while
// every accepted solve runs to completion (in-flight HTTP handlers are
// the listener's responsibility — call http.Server.Shutdown first, then
// this). The context bounds the wait; on expiry the pool keeps draining
// in the background but Shutdown returns ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	if s.cluster != nil {
		// Leave the gossip loop first: a draining node should stop
		// advertising itself as a forwarding target. Peers age it into
		// suspicion and route around it.
		s.cluster.Stop()
	}
	if s.janitorStop != nil {
		s.janitorOnce.Do(func() { close(s.janitorStop) })
		<-s.janitorDone
	}
	done := make(chan struct{})
	go func() {
		s.queue.Close()
		close(done)
	}()
	select {
	case <-done:
		s.logger.LogAttrs(ctx, slog.LevelInfo, "shutdown complete",
			slog.Int64("solves", s.metrics.solves.Value()),
			slog.Int64("solve_errors", s.metrics.solveErrors.Value()),
			slog.Int64("cache_hits", s.metrics.cacheHits.Value()),
			slog.Int("traces_retained", s.traces.Len()),
			slog.Float64("uptime_seconds", time.Since(s.metrics.start).Seconds()))
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
