package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ftclust/internal/obs"
)

// findSpan depth-first searches a snapshot tree for a span by name.
func findSpan(s *obs.SpanJSON, name string) *obs.SpanJSON {
	if s.Name == name {
		return s
	}
	for i := range s.Children {
		if hit := findSpan(&s.Children[i], name); hit != nil {
			return hit
		}
	}
	return nil
}

// getJSON GETs url and decodes the body, failing the test on transport
// or status errors.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

// traceByID polls one node's /debug/trace/{id} until the ring holds the
// trace (the middleware files it a moment after the response flushes).
func traceByID(t *testing.T, baseURL, id string) obs.TraceJSON {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var tr obs.TraceJSON
		if st := getJSON(t, baseURL+"/debug/trace/"+id, &tr); st == http.StatusOK {
			return tr
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared at %s", id, baseURL)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// nonOwnedSolveBody finds a solve request whose cache key the given node
// does NOT own, so submitting it there must forward.
func nonOwnedSolveBody(t *testing.T, n *clusterNode) string {
	t.Helper()
	for seed := 0; seed < 64; seed++ {
		b := solveBodyForSeed(3000 + seed)
		var req SolveRequest
		if !jsonDecode(b, &req) {
			t.Fatal("bad test body")
		}
		_, key, _, err := n.srv.prepareSolve(&req)
		if err != nil {
			t.Fatal(err)
		}
		if _, local := n.srv.cluster.Route(key); !local {
			return b
		}
	}
	t.Fatal("no non-owned key found in 64 tries (hash degenerate?)")
	return ""
}

// A forwarded solve resolves at the origin's /debug/trace/{id} as one
// tree spanning both nodes: the origin's forward span carries the
// remote leg's span subtree (including the remote solve-phase spans)
// as a grafted child, and the remote node traced under the origin's
// unchanged request ID.
func TestClusterStitchedTrace(t *testing.T) {
	n1 := startClusterNode(t, nil, nil)
	n2 := startClusterNode(t, []string{n1.addr}, nil)
	n3 := startClusterNode(t, []string{n1.addr}, nil)
	nodes := []*clusterNode{n1, n2, n3}
	waitPeers(t, nodes, 3)

	body := nonOwnedSolveBody(t, n1)
	resp, respBody := postJSON(t, n1.ts.URL+"/v1/solve", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d, body %s", resp.StatusCode, respBody)
	}
	if route := resp.Header.Get("X-Cluster-Route"); route != "forwarded" {
		t.Fatalf("X-Cluster-Route = %q, want forwarded", route)
	}
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("response missing X-Request-ID")
	}

	tr := traceByID(t, n1.ts.URL, id)
	if tr.ID != id {
		t.Fatalf("trace id = %q, want %q", tr.ID, id)
	}
	forward := findSpan(&tr.Root, "forward")
	if forward == nil {
		t.Fatalf("origin trace has no forward span: %+v", tr.Root)
	}
	owner := forward.Attrs["owner"]
	if owner == "" {
		t.Fatal("forward span missing owner attr")
	}
	if len(forward.Children) == 0 {
		t.Fatal("forward span has no grafted remote subtree")
	}
	// The grafted child is the remote leg's root; it must contain the
	// remote solve span with its phase children (fractional, rounding,
	// verify) — proof the tree spans both nodes.
	remoteSolve := findSpan(forward, "solve")
	if remoteSolve == nil {
		t.Fatalf("stitched tree carries no remote solve span: %+v", forward)
	}
	if len(remoteSolve.Children) == 0 {
		t.Fatal("remote solve span lost its phase children in transit")
	}

	// Satellite: the proxied leg did not mint its own ID — the owner
	// traced the same request under the origin's ID.
	var ownerNode *clusterNode
	for _, n := range nodes {
		if n.addr == owner {
			ownerNode = n
		}
	}
	if ownerNode == nil {
		t.Fatalf("owner %q is not a cluster member", owner)
	}
	remote := traceByID(t, ownerNode.ts.URL, id)
	if remote.ID != id {
		t.Fatalf("remote trace id = %q, want the origin's %q", remote.ID, id)
	}
	if findSpan(&remote.Root, "solve") == nil {
		t.Fatalf("remote trace has no solve span: %+v", remote.Root)
	}
}

// scrapeSolves fetches one node's /metrics and returns its
// ftclust_solves_total, via the same parser the fleet endpoint uses.
func scrapeSolves(t *testing.T, baseURL string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	snap, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("parsing %s/metrics: %v", baseURL, err)
	}
	v, _ := snap.Value("ftclust_solves_total")
	return v
}

// The fleet endpoint aggregates every peer's scrape: counters equal the
// sum of the individual per-peer scrapes, the merged exposition carries
// the summed gauges, and a peer killed mid-scrape degrades its row
// instead of failing the endpoint.
func TestClusterFleetAggregation(t *testing.T) {
	n1 := startClusterNode(t, nil, nil)
	n2 := startClusterNode(t, []string{n1.addr}, nil)
	n3 := startClusterNode(t, []string{n1.addr}, nil)
	nodes := []*clusterNode{n1, n2, n3}
	waitPeers(t, nodes, 3)

	const keys = 12
	for i := 0; i < keys; i++ {
		node := nodes[i%len(nodes)]
		resp, body := postJSON(t, node.ts.URL+"/v1/solve", solveBodyForSeed(4000+i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("key %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}

	var individual float64
	for _, n := range nodes {
		individual += scrapeSolves(t, n.ts.URL)
	}
	if individual != keys {
		t.Fatalf("per-peer scrapes sum to %v solves, want %d", individual, keys)
	}

	var sum FleetSummary
	if st := getJSON(t, n1.ts.URL+FleetPath, &sum); st != http.StatusOK {
		t.Fatalf("fleet: status %d", st)
	}
	if sum.Members != 3 || sum.ScrapeErrors != 0 {
		t.Fatalf("healthy fleet: members=%d errors=%d, want 3/0", sum.Members, sum.ScrapeErrors)
	}
	if sum.Aggregate.Solves != individual {
		t.Fatalf("aggregate solves = %v, want the per-peer sum %v", sum.Aggregate.Solves, individual)
	}
	if sum.Aggregate.SolveP99Ms <= 0 || sum.Aggregate.SolveSamples != keys {
		t.Fatalf("merged histogram: p99=%v samples=%d, want >0/%d",
			sum.Aggregate.SolveP99Ms, sum.Aggregate.SolveSamples, keys)
	}
	for _, p := range sum.Peers {
		if !p.ScrapeOK {
			t.Fatalf("healthy fleet has a degraded row: %+v", p)
		}
	}

	// The merged exposition sums gauges across peers: each of the 3
	// nodes reports 3 members, so the fleet-wide series reads 9.
	resp, err := http.Get(n1.ts.URL + fleetMetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	merged, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(merged, []byte("ftclust_cluster_peers 9")) {
		t.Fatalf("merged exposition lacks summed ftclust_cluster_peers 9:\n%s",
			firstMatching(merged, "ftclust_cluster_peers"))
	}
	snap, err := obs.ParsePrometheus(bytes.NewReader(merged[bytes.IndexByte(merged, '\n')+1:]))
	if err != nil {
		t.Fatalf("merged exposition does not re-parse: %v", err)
	}
	if h, ok := snap.Hist("ftclust_solve_duration_seconds"); !ok || h.Count != keys {
		t.Fatalf("merged exposition histogram: ok=%v count=%v, want %d", ok, h, keys)
	}

	// Kill one node and scrape again: degraded row + error counter, not
	// a 500 — and the survivors' counters still aggregate.
	n3.kill()
	var degraded FleetSummary
	if st := getJSON(t, n1.ts.URL+FleetPath, &degraded); st != http.StatusOK {
		t.Fatalf("fleet with a dead peer: status %d, want 200", st)
	}
	if degraded.ScrapeErrors < 1 {
		t.Fatalf("dead peer not counted: %+v", degraded)
	}
	failed := 0
	for _, p := range degraded.Peers {
		if !p.ScrapeOK {
			failed++
			if p.Error == "" {
				t.Fatalf("degraded row carries no error: %+v", p)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("%d degraded rows, want exactly 1", failed)
	}
	if degraded.Aggregate.Solves <= 0 {
		t.Fatal("aggregation lost the surviving peers' counters")
	}
	if m := n1.srv.Metrics(); m.FleetScrapeErrs < 1 {
		t.Fatalf("ftclust_fleet_scrape_errors_total = %d, want ≥1", m.FleetScrapeErrs)
	}
}

// firstMatching returns the exposition lines containing substr, for
// failure messages.
func firstMatching(text []byte, substr string) string {
	var out []string
	for _, line := range strings.Split(string(text), "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// Without cluster mode the fleet endpoint degrades to a fleet of one.
func TestFleetOfOne(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/solve", gnpSolveBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d, body %s", resp.StatusCode, body)
	}
	var sum FleetSummary
	if st := getJSON(t, ts.URL+FleetPath, &sum); st != http.StatusOK {
		t.Fatalf("fleet: status %d", st)
	}
	if sum.Members != 1 || len(sum.Peers) != 1 || !sum.Peers[0].Self {
		t.Fatalf("fleet of one: %+v", sum)
	}
	if sum.Aggregate.Solves != 1 {
		t.Fatalf("aggregate solves = %v, want 1", sum.Aggregate.Solves)
	}
}

// Every node's event log records the joins it observed, and the
// endpoint bounds and validates its n parameter.
func TestDebugEventsJoin(t *testing.T) {
	n1 := startClusterNode(t, nil, nil)
	n2 := startClusterNode(t, []string{n1.addr}, nil)
	waitPeers(t, []*clusterNode{n1, n2}, 2)

	for _, n := range []*clusterNode{n1, n2} {
		var body struct {
			Events []obs.Event `json:"events"`
		}
		if st := getJSON(t, n.ts.URL+"/debug/events", &body); st != http.StatusOK {
			t.Fatalf("events on %s: status %d", n.addr, st)
		}
		joined := false
		for _, e := range body.Events {
			if e.Type == "join" && e.Attrs["peer"] != "" {
				joined = true
			}
		}
		if !joined {
			t.Fatalf("node %s logged no join event: %+v", n.addr, body.Events)
		}

		if st := getJSON(t, n.ts.URL+"/debug/events?n=1", &body); st != http.StatusOK || len(body.Events) != 1 {
			t.Fatalf("events?n=1: status %d, %d events", st, len(body.Events))
		}
		var ignore any
		if st := getJSON(t, n.ts.URL+"/debug/events?n=bogus", &ignore); st != http.StatusBadRequest {
			t.Fatalf("events?n=bogus: status %d, want 400", st)
		}
	}
}

// The gossip endpoints sit behind the same middleware as /v1/*: their
// responses carry request IDs and their traffic lands in the bounded
// per-endpoint http series.
func TestGossipEndpointObservability(t *testing.T) {
	n1 := startClusterNode(t, nil, nil)
	n2 := startClusterNode(t, []string{n1.addr}, nil)
	waitPeers(t, []*clusterNode{n1, n2}, 2)

	resp, err := http.Get(n1.ts.URL + "/cluster/v1/peers")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("/cluster/v1/peers response missing X-Request-ID")
	}

	mr, err := http.Get(n1.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, endpoint := range []string{"/cluster/v1/gossip", "/cluster/v1/peers"} {
		series := fmt.Sprintf(`ftclust_http_requests_total{endpoint=%q}`, endpoint)
		if !bytes.Contains(text, []byte(series)) {
			t.Errorf("metrics lack %s coverage:\n%s", endpoint,
				firstMatching(text, "ftclust_http_requests_total"))
		}
	}
}

// Garbage in the trace-export response header is rejected without
// panicking and never corrupts the origin's trace: the forward span
// gains an export_error attr and the ring entry stays renderable.
func TestStitchRemoteTraceGarbageSafe(t *testing.T) {
	s, _ := newTestServer(t, Config{})

	for _, garbage := range []string{
		"!!!not-base64!!!",
		"AAAA",                     // base64 of junk bytes
		"bnVsbA==",                 // "null"
		"eyJuYW1lIjoiIn0=",         // {"name":""} — empty name rejected
		strings.Repeat("A", 90000), // oversized
	} {
		tr := obs.NewTrace("trace-id", "POST /v1/solve")
		sp := tr.StartSpan(nil, "forward")
		s.stitchRemoteTrace(tr, sp, garbage)
		sp.End()
		tr.Finish()
		s.traces.Add(tr)

		snap := tr.Snapshot()
		fw := findSpan(&snap.Root, "forward")
		if fw == nil {
			t.Fatalf("forward span lost after garbage %.20q", garbage)
		}
		if len(fw.Children) != 0 {
			t.Fatalf("garbage %.20q grafted children: %+v", garbage, fw.Children)
		}
		if fw.Attrs["export_error"] != "rejected" {
			t.Fatalf("garbage %.20q not marked: %+v", garbage, fw.Attrs)
		}
		if got, ok := s.traces.Get("trace-id"); !ok || got.Snapshot().ID != "trace-id" {
			t.Fatal("trace ring corrupted by rejected export")
		}
	}

	// A valid export still grafts.
	remote := obs.NewTrace("remote", "POST /v1/solve")
	remote.StartSpan(nil, "solve").End()
	remote.Finish()
	enc, _ := obs.EncodeTraceExport(remote, maxTraceExportBytes)
	tr := obs.NewTrace("trace-id-2", "POST /v1/solve")
	sp := tr.StartSpan(nil, "forward")
	s.stitchRemoteTrace(tr, sp, enc)
	snap := tr.Snapshot()
	if findSpan(&snap.Root, "solve") == nil {
		t.Fatalf("valid export did not graft: %+v", snap.Root)
	}
}

// The session delta/repair path traces its phases: repair with assess,
// promote (touched/iterations attrs) — and fallback when drift forces a
// certified re-solve.
func TestSessionDeltaTraceSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/session", gnpSolveBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session create: status %d, body %s", resp.StatusCode, body)
	}
	var created SessionCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	resp, body = postJSON(t, ts.URL+"/v1/session/"+created.SessionID+"/delta",
		`{"ops":[{"op":"fail","nodes":[3]},{"op":"add_node"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta: status %d, body %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("delta response missing X-Request-ID")
	}

	tr := traceByID(t, ts.URL, id)
	repair := findSpan(&tr.Root, "repair")
	if repair == nil {
		t.Fatalf("delta trace has no repair span: %+v", tr.Root)
	}
	if findSpan(repair, "assess") == nil {
		t.Fatalf("repair span has no assess child: %+v", repair)
	}
	promote := findSpan(repair, "promote")
	if promote == nil {
		t.Fatalf("repair span has no promote child: %+v", repair)
	}
	if promote.Attrs["touched"] == "" || promote.Attrs["iterations"] == "" {
		t.Fatalf("promote span missing touched/iterations attrs: %+v", promote.Attrs)
	}
}
