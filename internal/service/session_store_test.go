package service

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ftclust/internal/graph"
	"ftclust/internal/maintain"
)

func storeTestGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	return graph.GnpAvgDegree(60, 6, seed)
}

func fullMask(n int) []bool {
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	return mask
}

// The striped store must survive concurrent create/fail/delta/delete
// across goroutines (run under -race in CI) while keeping its global
// count and cap exact.
func TestSessionStoreParallelChurn(t *testing.T) {
	st := newSessionStore(1024)
	g := storeTestGraph(t, 1)
	now := time.Unix(1700000000, 0)

	const workers = 8
	const perWorker = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s, err := st.create(g, 1, fullMask(g.NumNodes()), now)
				if err != nil {
					t.Errorf("worker %d create: %v", w, err)
					return
				}
				if _, err := st.get(s.id, now.Add(time.Second)); err != nil {
					t.Errorf("worker %d get %s: %v", w, s.id, err)
					return
				}
				victim := (w*perWorker + i) % g.NumNodes()
				if _, _, err := s.fail([]int{victim}, nil); err != nil {
					t.Errorf("worker %d fail: %v", w, err)
					return
				}
				ops := []maintain.Op{{Kind: maintain.OpRevive, Nodes: []graph.NodeID{graph.NodeID(victim)}}}
				if _, _, err := s.delta(ops, nil); err != nil {
					t.Errorf("worker %d delta: %v", w, err)
					return
				}
				// Delete every other session; the rest stay live.
				if i%2 == 0 {
					if err := st.delete(s.id); err != nil {
						t.Errorf("worker %d delete %s: %v", w, s.id, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	want := workers * perWorker / 2
	if got := st.len(); got != want {
		t.Fatalf("store length after churn = %d, want %d", got, want)
	}
	// The count must agree with what the shards actually hold.
	actual := 0
	for i := range st.shards {
		st.shards[i].mu.Lock()
		actual += len(st.shards[i].m)
		st.shards[i].mu.Unlock()
	}
	if actual != want {
		t.Fatalf("shard contents sum to %d, want %d", actual, want)
	}
}

// The cap holds exactly under concurrent creates racing across shards:
// the atomic reservation admits max sessions and sheds the rest.
func TestSessionStoreCapUnderConcurrency(t *testing.T) {
	const cap = 10
	st := newSessionStore(cap)
	g := storeTestGraph(t, 2)
	now := time.Unix(1700000000, 0)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := st.create(g, 1, fullMask(g.NumNodes()), now)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)

	created, rejected := 0, 0
	for err := range errs {
		switch err {
		case nil:
			created++
		case errTooManySessions:
			rejected++
		default:
			t.Fatalf("unexpected create error: %v", err)
		}
	}
	if created != cap || rejected != 64-cap {
		t.Fatalf("created=%d rejected=%d, want %d/%d", created, rejected, cap, 64-cap)
	}
	if st.len() != cap {
		t.Fatalf("store length = %d, want %d", st.len(), cap)
	}
}

// Sweeps are per-shard and must reconcile the global count.
func TestSessionStoreShardedSweep(t *testing.T) {
	st := newSessionStore(1024)
	g := storeTestGraph(t, 3)
	base := time.Unix(1700000000, 0)

	var stale []string
	for i := 0; i < 20; i++ {
		s, err := st.create(g, 1, fullMask(g.NumNodes()), base)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			stale = append(stale, s.id)
		} else if _, err := st.get(s.id, base.Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	// IDs must spread across stripes, or the striping buys nothing.
	shards := map[*sessionShard]bool{}
	for _, id := range stale {
		shards[st.shardFor(id)] = true
	}
	if len(shards) < 2 {
		t.Fatalf("10 sessions landed on %d shard(s); hash is degenerate", len(shards))
	}

	if n := st.sweep(base.Add(time.Minute)); n != len(stale) {
		t.Fatalf("sweep removed %d, want %d", n, len(stale))
	}
	if st.len() != 10 {
		t.Fatalf("store length after sweep = %d, want 10", st.len())
	}
	for _, id := range stale {
		if _, err := st.get(id, base); err != errNoSession {
			t.Fatalf("swept session %s still resolvable (err=%v)", id, err)
		}
	}
}

// Monotonic IDs stay unique under concurrency.
func TestSessionStoreUniqueIDs(t *testing.T) {
	st := newSessionStore(1024)
	g := storeTestGraph(t, 4)
	now := time.Unix(1700000000, 0)

	const total = 50
	ids := make(chan string, total)
	var wg sync.WaitGroup
	for w := 0; w < total; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := st.create(g, 1, fullMask(g.NumNodes()), now)
			if err != nil {
				ids <- fmt.Sprintf("error: %v", err)
				return
			}
			ids <- s.id
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[string]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate session id %q", id)
		}
		seen[id] = true
	}
}
