package service

import (
	"log/slog"
	"net/http"
	"strings"
	"time"

	"ftclust/internal/obs"
)

// requestIDHeader carries the request ID on both requests and responses.
// A client-supplied ID is propagated verbatim (truncated to a sane
// length) so callers can stitch service traces into their own.
const requestIDHeader = "X-Request-ID"

// statusWriter records the status code and body size a handler produced
// so the middleware can log and label them after the fact.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// requestID returns the client-supplied X-Request-ID, or mints one.
func requestID(r *http.Request) string {
	if id := r.Header.Get(requestIDHeader); id != "" {
		if len(id) > 64 {
			id = id[:64]
		}
		return id
	}
	return obs.NewRequestID()
}

// withObservability wraps the route mux with the per-request plumbing:
// an X-Request-ID on every response, a span-tree trace stored in the
// debug ring (for /v1/* endpoints), per-endpoint latency histograms and
// request counters, a structured access log, and a slow-request warning
// over the configured threshold.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := requestID(r)
		endpoint := endpointLabel(r.URL.Path)
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set(requestIDHeader, id)

		// Only API requests are traced: metrics scrapes and health probes
		// would churn the bounded ring without ever being debugged.
		var tr *obs.Trace
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			tr = obs.NewTrace(id, r.Method+" "+endpoint)
			r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
		}

		next.ServeHTTP(sw, r)

		if sw.status == 0 { // handler wrote nothing; net/http sends 200
			sw.status = http.StatusOK
		}
		d := time.Since(start)
		tr.Finish()
		if tr != nil {
			s.traces.Add(tr)
		}
		s.metrics.observeHTTP(endpoint, d)

		attrs := []slog.Attr{
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", endpoint),
			slog.Int("status", sw.status),
			slog.Float64("duration_ms", float64(d)/float64(time.Millisecond)),
			slog.Int64("bytes", sw.bytes),
		}
		if cache := sw.Header().Get("X-Cache"); cache != "" {
			attrs = append(attrs, slog.String("cache", cache))
		}
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		if s.cfg.SlowRequest > 0 && d >= s.cfg.SlowRequest {
			s.metrics.slowRequests.Inc()
			s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow request",
				append(attrs, slog.Duration("threshold", s.cfg.SlowRequest))...)
		}
	})
}

// handleTraceList serves GET /debug/trace: summaries of the retained
// traces, newest first.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.traces.List())
}

// handleTraceGet serves GET /debug/trace/{id}: one request's span tree.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	t, ok := s.traces.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "trace not found (evicted or unknown id)", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, t.Snapshot())
}
