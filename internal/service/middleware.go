package service

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ftclust/internal/obs"
)

// requestIDHeader carries the request ID on both requests and responses.
// A client-supplied ID is propagated verbatim (truncated to a sane
// length) so callers can stitch service traces into their own.
const requestIDHeader = "X-Request-ID"

// Cross-node trace propagation headers. A forwarding origin sends the
// trace parent (its request ID) with the proxied request; the remote
// node answers with its span subtree in the export header, bounded to
// maxTraceExportBytes, and the origin grafts it under its forward span
// so /debug/trace/{id} shows one tree spanning both nodes.
const (
	// traceParentHeader marks a forwarded request as part of the
	// sender's trace; its value is the originating request ID.
	traceParentHeader = "X-Trace-Parent"
	// traceExportHeader carries the remote leg's span subtree back to
	// the origin (obs trace-export encoding).
	traceExportHeader = "X-Trace-Export"
	// maxTraceExportBytes bounds the export header value; deeper span
	// levels are pruned first (truncated="true" on the exported root).
	maxTraceExportBytes = 8 << 10
)

// statusWriter records the status code and body size a handler produced
// so the middleware can log and label them after the fact. beforeWrite,
// when set, runs exactly once immediately before the status line is
// committed — the last moment a response header can still be set.
type statusWriter struct {
	http.ResponseWriter
	status      int
	bytes       int64
	beforeWrite func()
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
		if w.beforeWrite != nil {
			w.beforeWrite()
			w.beforeWrite = nil
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// requestID returns the client-supplied X-Request-ID, or mints one.
func requestID(r *http.Request) string {
	if id := r.Header.Get(requestIDHeader); id != "" {
		if len(id) > 64 {
			id = id[:64]
		}
		return id
	}
	return obs.NewRequestID()
}

// withObservability wraps the route mux with the per-request plumbing:
// an X-Request-ID on every response, a span-tree trace stored in the
// debug ring (for /v1/* endpoints), per-endpoint latency histograms and
// request counters, a structured access log, and a slow-request warning
// over the configured threshold. Requests carrying a trace parent (the
// remote leg of a forwarded solve) additionally answer with their span
// subtree in the trace-export response header.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := requestID(r)
		endpoint := endpointLabel(r.URL.Path)
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set(requestIDHeader, id)
		// Expose the resolved ID to handlers (the forwarding path sends
		// it to the key's owner so both nodes trace under one ID).
		r.Header.Set(requestIDHeader, id)

		// Only API requests are traced: metrics scrapes and health probes
		// would churn the bounded ring without ever being debugged.
		var tr *obs.Trace
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			tr = obs.NewTrace(id, r.Method+" "+endpoint)
			r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
			if r.Header.Get(traceParentHeader) != "" {
				// Forwarded leg: hand our span subtree back to the origin.
				// Encoding at first-write time captures every span the
				// handler recorded; only response encoding is still open.
				sw.beforeWrite = func() {
					if enc, _ := obs.EncodeTraceExport(tr, maxTraceExportBytes); enc != "" {
						sw.Header().Set(traceExportHeader, enc)
					}
				}
			}
		}

		next.ServeHTTP(sw, r)

		if sw.status == 0 { // handler wrote nothing; net/http sends 200
			sw.status = http.StatusOK
		}
		d := time.Since(start)
		tr.Finish()
		if tr != nil {
			s.traces.Add(tr)
		}
		s.metrics.observeHTTP(endpoint, d)

		attrs := []slog.Attr{
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", endpoint),
			slog.Int("status", sw.status),
			slog.Float64("duration_ms", float64(d)/float64(time.Millisecond)),
			slog.Int64("bytes", sw.bytes),
		}
		if cache := sw.Header().Get("X-Cache"); cache != "" {
			attrs = append(attrs, slog.String("cache", cache))
		}
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		if s.cfg.SlowRequest > 0 && d >= s.cfg.SlowRequest {
			s.metrics.slowRequests.Inc()
			s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow request",
				append(attrs, slog.Duration("threshold", s.cfg.SlowRequest))...)
		}
	})
}

// handleTraceList serves GET /debug/trace: summaries of the retained
// traces, newest first.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.traces.List())
}

// handleTraceGet serves GET /debug/trace/{id}: one request's span tree.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	t, ok := s.traces.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "trace not found (evicted or unknown id)", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, t.Snapshot())
}

// event records one structured service event in the ring and mirrors it
// to slog. attrs are pairwise key, value strings.
func (s *Server) event(typ string, attrs ...string) {
	s.events.Add(typ, attrs...)
	logAttrs := make([]any, 0, len(attrs))
	for i := 0; i+1 < len(attrs); i += 2 {
		logAttrs = append(logAttrs, slog.String(attrs[i], attrs[i+1]))
	}
	s.logger.Info("event "+typ, logAttrs...)
}

// handleEvents serves GET /debug/events: the cluster/service event log,
// newest first. ?n= bounds the count (default all retained).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, struct {
		Events []obs.Event `json:"events"`
	}{Events: s.events.List(limit)})
}
