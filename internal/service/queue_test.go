package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftclust"
)

func TestQueueRunsJobs(t *testing.T) {
	q := newJobQueue(2, 16) // capacity ≥ job count: no legitimate rejections
	defer q.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := q.Do(context.Background(), func(context.Context, *ftclust.Scratch) { ran.Add(1) }); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if ran.Load() != 10 {
		t.Fatalf("ran %d jobs, want 10", ran.Load())
	}
}

// With one worker pinned and the single queue slot occupied, the next
// submission must be rejected synchronously.
func TestQueueFullRejects(t *testing.T) {
	q := newJobQueue(1, 1)
	release := make(chan struct{})
	started := make(chan struct{})

	go q.Do(context.Background(), func(context.Context, *ftclust.Scratch) { // occupies the worker
		close(started)
		<-release
	})
	<-started
	// Occupy the single backlog slot.
	go q.Do(context.Background(), func(context.Context, *ftclust.Scratch) {})
	// Wait until the slot is actually taken.
	deadline := time.After(2 * time.Second)
	for q.Depth() == 0 {
		select {
		case <-deadline:
			t.Fatal("backlog slot never filled")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := q.Do(context.Background(), func(context.Context, *ftclust.Scratch) {}); !errors.Is(err, errQueueFull) {
		t.Fatalf("overflow submission: got %v, want errQueueFull", err)
	}
	close(release)
	q.Close()
}

// Close must reject new jobs but let queued ones finish.
func TestQueueCloseDrains(t *testing.T) {
	q := newJobQueue(1, 8)
	release := make(chan struct{})
	started := make(chan struct{})
	var done atomic.Int64

	go q.Do(context.Background(), func(context.Context, *ftclust.Scratch) {
		close(started)
		<-release
		done.Add(1)
	})
	<-started
	for i := 0; i < 3; i++ { // backlog behind the pinned worker
		go q.Do(context.Background(), func(context.Context, *ftclust.Scratch) { done.Add(1) })
	}
	deadline := time.After(2 * time.Second)
	for q.Depth() < 3 {
		select {
		case <-deadline:
			t.Fatalf("backlog never reached 3 (depth %d)", q.Depth())
		default:
			time.Sleep(time.Millisecond)
		}
	}

	closed := make(chan struct{})
	go func() {
		close(release)
		q.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
	if done.Load() != 4 {
		t.Fatalf("drained %d jobs, want 4", done.Load())
	}
	if err := q.Do(context.Background(), func(context.Context, *ftclust.Scratch) {}); !errors.Is(err, errDraining) {
		t.Fatalf("post-close submission: got %v, want errDraining", err)
	}
}

// A caller whose context fires while waiting gets the context error; the
// job itself still runs with the canceled context (and is expected to
// abort at its first checkpoint).
func TestQueueCallerContextCancel(t *testing.T) {
	q := newJobQueue(1, 4)
	defer q.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	go q.Do(context.Background(), func(context.Context, *ftclust.Scratch) {
		close(started)
		<-release
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := q.Do(ctx, func(context.Context, *ftclust.Scratch) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	close(release)
}
