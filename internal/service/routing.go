package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ftclust/internal/obs"
)

// Cluster routing headers.
const (
	// clusterRouteHeader reports on every routed response whether this
	// node solved the key itself or proxied it to its rendezvous owner.
	clusterRouteHeader = "X-Cluster-Route"
	// clusterForwardedHeader marks a request as already forwarded once:
	// the origin node's address travels in it, and any node receiving it
	// serves locally no matter what its own (possibly stale) ring says —
	// a single-hop loop guard, so two nodes with momentarily divergent
	// views cannot ping-pong a request.
	clusterForwardedHeader = "X-Cluster-Forwarded"
	// clientIDHeader lets a caller identify itself for admission
	// control; absent, the token bucket keys on the remote address.
	clientIDHeader = "X-Client-ID"
)

// clusterRouteHeader values.
const (
	routeLocal     = "local"
	routeForwarded = "forwarded"
)

// withAdmission is the per-client token-bucket gate in front of the API
// routes. Forwarded peer traffic is exempt — the origin node already
// spent a token for the client — as are the metrics, debug and cluster
// endpoints (shedding a scrape hides the overload it should expose).
func (s *Server) withAdmission(next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") && r.Header.Get(clusterForwardedHeader) == "" {
			ok, retryAfter := s.limiter.Allow(clientKey(r))
			if !ok {
				s.metrics.shedRate.Inc()
				s.event("shed", "reason", "ratelimit", "client", clientKey(r))
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retryAfter)))
				writeError(w, http.StatusTooManyRequests,
					errors.New("rate limit exceeded; retry after the indicated delay"))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// clientKey identifies the caller for admission control: the
// self-reported X-Client-ID when present (bounded length), else the
// remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get(clientIDHeader); id != "" {
		if len(id) > 64 {
			id = id[:64]
		}
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders a wait as whole seconds, at least 1 — a
// Retry-After of 0 would invite an immediate identical failure.
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// queueRetryAfterSeconds estimates how long the current backlog needs
// to drain one slot: mean solve time × (depth+1) ÷ workers, clamped to
// [1, 60]. Before any solve has completed the mean defaults to one
// second.
func (s *Server) queueRetryAfterSeconds() int {
	avg := 1.0
	if c := s.metrics.solveLat.Count(); c > 0 {
		if m := s.metrics.solveLat.Sum() / float64(c); m > 0 {
			avg = m
		}
	}
	secs := int(math.Ceil(avg * float64(s.queue.Depth()+1) / float64(s.cfg.Workers)))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// writeSolveError writes a solve-path error response; overload statuses
// carry the queue-derived Retry-After so shed clients back off for a
// meaningful interval instead of hammering.
func (s *Server) writeSolveError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", strconv.Itoa(s.queueRetryAfterSeconds()))
	}
	writeError(w, status, err)
}

// shouldRoute reports whether a request may be proxied: cluster mode is
// on and the request did not already take its one forwarding hop.
func (s *Server) shouldRoute(hdr http.Header) bool {
	return s.cluster != nil && hdr.Get(clusterForwardedHeader) == ""
}

// forwardSolve proxies a /v1/solve request body to the key's owner and
// relays the response verbatim — status, X-Cache, Retry-After and body
// bytes — so a forwarded response is byte-identical to the one the
// owner would serve directly. The hop is recorded as a "forward" span,
// and the remote node's span subtree (returned in the trace-export
// response header) is grafted under it, so the origin's trace shows
// both legs. It reports whether the request was handled; a transport
// failure, a body read error, or an over-limit body reports false and
// the caller solves locally (the owner is probably dying or
// misbehaving; its suspicion is the gossip layer's job).
func (s *Server) forwardSolve(w http.ResponseWriter, r *http.Request, owner string, body []byte) bool {
	tr := obs.TraceFrom(r.Context())
	sp := tr.StartSpan(nil, "forward")
	sp.SetAttr("owner", owner)
	fail := func(reason string, err error) bool {
		sp.SetAttr("error", reason)
		sp.End()
		s.cluster.Metrics().ForwardErrors.Inc()
		s.event("forward-fallback", "owner", owner, "path", r.URL.Path, "reason", reason)
		s.logger.Warn("cluster forward failed; solving locally",
			"owner", owner, "path", r.URL.Path, "reason", reason, "err", err)
		return false
	}
	resp, err := s.proxyPost(r.Context(), owner, r.URL.Path, body,
		r.Header.Get(clientIDHeader), r.Header.Get(requestIDHeader), tr != nil)
	if err != nil {
		return fail("transport", err)
	}
	defer resp.Body.Close()
	// Buffer the owner's whole body before touching the ResponseWriter:
	// once WriteHeader runs the response is committed, and a read error
	// or an over-limit body discovered mid-copy would truncate what the
	// client sees with no way left to fall back locally. Reading cap+1
	// bytes distinguishes a body of exactly cap from one that overflows.
	payload, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		return fail("read", err)
	}
	if int64(len(payload)) > s.cfg.MaxBodyBytes {
		return fail("oversize", fmt.Errorf("owner response exceeds %d bytes", s.cfg.MaxBodyBytes))
	}
	s.stitchRemoteTrace(tr, sp, resp.Header.Get(traceExportHeader))
	if xc := resp.Header.Get("X-Cache"); xc != "" {
		w.Header().Set("X-Cache", xc)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(clusterRouteHeader, routeForwarded)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	w.Write(payload)
	sp.End()
	return true
}

// stitchRemoteTrace grafts a remote span subtree (the trace-export
// response header value) under parent. A missing header is normal (the
// remote ran an older build, or the subtree outgrew even the pruned
// budget); a malformed one is recorded as an attr and dropped — decode
// validates every bound before anything touches the trace, so garbage
// bytes can never corrupt the origin's ring.
func (s *Server) stitchRemoteTrace(tr *obs.Trace, parent *obs.Span, enc string) {
	if tr == nil || enc == "" {
		return
	}
	sub, err := obs.DecodeTraceExport(enc)
	if err != nil {
		parent.SetAttr("export_error", "rejected")
		s.logger.Warn("trace export rejected", "err", err)
		return
	}
	tr.Graft(parent, sub)
}

// forwardSolveItem proxies one batch item to owner as a single
// /v1/solve and decodes the outcome into batch-item form. The owner's
// non-2xx statuses (its own shedding, validation) are relayed as the
// item's status; transport errors return an error so the caller falls
// back to a local solve.
func (s *Server) forwardSolveItem(ctx context.Context, owner string, req *SolveRequest) (*SolveResponse, string, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, "", http.StatusInternalServerError, err
	}
	// The batch's request ID travels with every item (one client request
	// keeps one ID fleet-wide), but items do not ask for a trace export:
	// several remote legs under one ID would collide in the remote
	// node's trace ring.
	resp, err := s.proxyPost(ctx, owner, "/v1/solve", body, "", reqIDFrom(ctx), false)
	if err != nil {
		return nil, "", 0, err
	}
	defer resp.Body.Close()
	// Read cap+1 so an over-limit body is detected rather than silently
	// truncated (a truncated payload would surface as a confusing JSON
	// parse error); status 0 routes the caller to its local fallback.
	payload, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		return nil, "", 0, err
	}
	if int64(len(payload)) > s.cfg.MaxBodyBytes {
		return nil, "", 0, fmt.Errorf("owner %s: response exceeds %d bytes", owner, s.cfg.MaxBodyBytes)
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.Unmarshal(payload, &eb) == nil && eb.Error != "" {
			return nil, "", resp.StatusCode, errors.New(eb.Error)
		}
		return nil, "", resp.StatusCode, fmt.Errorf("owner %s: status %d", owner, resp.StatusCode)
	}
	var sol SolveResponse
	if err := json.Unmarshal(payload, &sol); err != nil {
		return nil, "", 0, fmt.Errorf("owner %s: malformed solution: %w", owner, err)
	}
	return &sol, resp.Header.Get("X-Cache"), http.StatusOK, nil
}

// reqIDFrom recovers the request ID travelling in ctx's trace ("" when
// the request is untraced).
func reqIDFrom(ctx context.Context) string {
	return obs.TraceFrom(ctx).ID()
}

// proxyPost performs the single forwarding hop: POST body to owner,
// marked with this node's address as the loop guard, timed into the
// forward-latency histogram. requestID travels unchanged so the remote
// leg logs and traces under the origin's ID; wantTrace additionally
// asks the owner for its span subtree (the trace-export header).
func (s *Server) proxyPost(ctx context.Context, owner, path string, body []byte, clientID, requestID string, wantTrace bool) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+owner+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(clusterForwardedHeader, s.cluster.Self())
	if clientID != "" {
		req.Header.Set(clientIDHeader, clientID)
	}
	if requestID != "" {
		req.Header.Set(requestIDHeader, requestID)
		if wantTrace {
			req.Header.Set(traceParentHeader, requestID)
		}
	}
	m := s.cluster.Metrics()
	start := time.Now()
	resp, err := s.cluster.Client().Do(req)
	if err != nil {
		return nil, err
	}
	m.Forwards.Inc()
	m.ForwardDur.ObserveDuration(time.Since(start))
	return resp, nil
}

// ClusterPeers returns the cluster membership size this node currently
// sees (self included), or 0 when cluster mode is off — the harness and
// smoke tests poll it for convergence.
func (s *Server) ClusterPeers() int {
	if s.cluster == nil {
		return 0
	}
	return s.cluster.NumMembers()
}
