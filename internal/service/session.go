package service

import (
	"errors"
	"fmt"
	"sync"

	"ftclust/internal/graph"
	"ftclust/internal/maintain"
)

// Session errors.
var (
	errNoSession       = errors.New("service: no such session")
	errTooManySessions = errors.New("service: session limit reached")
)

// session is a stateful cluster: the graph a solve ran on, the current
// dominator mask, and the accumulated failure set. Failures are repaired
// with maintain.Repair — local promotions proportional to the damage —
// never a full re-solve, which is the paper's own story: a k-fold
// dominating set absorbs up to k−1 local failures outright and repair
// replenishes the budget.
type session struct {
	mu sync.Mutex

	id   string
	g    *graph.Graph
	k    int
	mask []bool
	dead map[graph.NodeID]bool

	repairs       int
	promotedTotal int
}

// sessionStore is the in-memory registry of live sessions. IDs are
// monotonic ("s1", "s2", …): deterministic, log-friendly, and unique for
// the process lifetime.
type sessionStore struct {
	mu   sync.Mutex
	m    map[string]*session
	next int64
	max  int
}

func newSessionStore(max int) *sessionStore {
	return &sessionStore{m: make(map[string]*session), max: max}
}

func (st *sessionStore) create(g *graph.Graph, k int, mask []bool) (*session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.m) >= st.max {
		return nil, errTooManySessions
	}
	st.next++
	s := &session{
		id:   fmt.Sprintf("s%d", st.next),
		g:    g,
		k:    k,
		mask: append([]bool(nil), mask...),
		dead: make(map[graph.NodeID]bool),
	}
	st.m[s.id] = s
	return s, nil
}

func (st *sessionStore) get(id string) (*session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.m[id]
	if !ok {
		return nil, errNoSession
	}
	return s, nil
}

func (st *sessionStore) delete(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.m[id]; !ok {
		return errNoSession
	}
	delete(st.m, id)
	return nil
}

func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// SessionState is the JSON shape of a session status.
type SessionState struct {
	SessionID string `json:"session_id"`
	N         int    `json:"n"`
	K         int    `json:"k"`
	Size      int    `json:"size"`
	LiveNodes int    `json:"live_nodes"`
	DeadNodes int    `json:"dead_nodes"`
	Repairs   int    `json:"repairs"`
	Promoted  int    `json:"promoted_total"`
	Feasible  bool   `json:"feasible"`
}

// FailResponse is the JSON result of injecting failures into a session.
type FailResponse struct {
	SessionID       string `json:"session_id"`
	Failed          int    `json:"failed"`
	FailedTotal     int    `json:"failed_total"`
	LostHeads       int    `json:"lost_heads"`
	DeficientBefore int    `json:"deficient_before"`
	Promoted        int    `json:"promoted"`
	Iterations      int    `json:"iterations"`
	Size            int    `json:"size"`
	Feasible        bool   `json:"feasible"`
}

// state snapshots the session under its lock.
func (s *session) state() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionState{
		SessionID: s.id,
		N:         s.g.NumNodes(),
		K:         s.k,
		Size:      maskSize(s.mask),
		LiveNodes: s.g.NumNodes() - len(s.dead),
		DeadNodes: len(s.dead),
		Repairs:   s.repairs,
		Promoted:  s.promotedTotal,
		Feasible:  s.feasibleLocked(),
	}
}

// fail marks nodes dead and restores k-coverage with a local repair.
func (s *session) fail(nodes []int) (FailResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.g.NumNodes()
	newlyDead := 0
	for _, v := range nodes {
		if v < 0 || v >= n {
			return FailResponse{}, fmt.Errorf("node %d out of range [0,%d)", v, n)
		}
		if !s.dead[graph.NodeID(v)] {
			s.dead[graph.NodeID(v)] = true
			newlyDead++
		}
	}
	dmg := maintain.Assess(s.g, s.mask, s.dead, s.k)
	rep, err := maintain.Repair(s.g, s.mask, s.dead, s.k)
	if err != nil {
		return FailResponse{}, err
	}
	s.mask = rep.InSet
	s.repairs++
	s.promotedTotal += rep.Promoted
	return FailResponse{
		SessionID:       s.id,
		Failed:          newlyDead,
		FailedTotal:     len(s.dead),
		LostHeads:       dmg.LostHeads,
		DeficientBefore: dmg.DeficientNodes,
		Promoted:        rep.Promoted,
		Iterations:      rep.Iterations,
		Size:            maskSize(s.mask),
		Feasible:        s.feasibleLocked(),
	}, nil
}

// feasibleLocked reports whether every live node has its capped live
// demand covered. Callers hold s.mu.
func (s *session) feasibleLocked() bool {
	return maintain.Assess(s.g, s.mask, s.dead, s.k).DeficientNodes == 0
}

func maskSize(mask []bool) int {
	n := 0
	for _, in := range mask {
		if in {
			n++
		}
	}
	return n
}
