package service

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ftclust"
	"ftclust/internal/graph"
	"ftclust/internal/maintain"
	"ftclust/internal/obs"
)

// Session errors.
var (
	errNoSession       = errors.New("service: no such session")
	errTooManySessions = errors.New("service: session limit reached")
	errFallbackFailed  = errors.New("service: fallback re-solve failed")
)

// session is a stateful cluster backed by the incremental churn engine:
// the solve that created it seeded the engine's coverage state, and every
// accepted batch of deltas (failures, revivals, edge and node changes) is
// absorbed with a damage-proportional repair — never a full re-solve,
// unless topology drift exceeds the engine's bound, in which case the
// session runs one certified re-solve on the live subgraph and adopts it.
//
// Mutating requests are transactional: the whole batch is validated
// against current state before anything is applied, so a rejected request
// leaves the session byte-identical.
type session struct {
	mu sync.Mutex

	id     string
	k      int
	engine *maintain.Engine

	epoch         int64 // accepted mutation batches
	repairs       int
	promotedTotal int
	fallbacks     int

	// lastUsed is touched on every session access; the store's janitor
	// sweeps sessions idle past the TTL. Guarded by the owning SHARD's
	// mutex, not s.mu, so sweeps never contend with long repairs.
	lastUsed time.Time
}

// sessionStoreShards stripes the store so concurrent session traffic on
// different sessions rarely shares a lock. A power of two keeps the
// hash→shard mapping a mask.
const sessionStoreShards = 16

// sessionShard is one stripe: a mutex and the sessions hashed onto it.
type sessionShard struct {
	mu sync.Mutex
	m  map[string]*session
}

// sessionStore is the in-memory registry of live sessions, striped into
// sessionStoreShards mutex-guarded shards keyed by FNV-1a of the session
// ID. IDs are monotonic ("s1", "s2", …): deterministic, log-friendly,
// and unique for the process lifetime. The global bound and size live in
// atomics — create reserves a slot before touching any shard lock and
// rolls the reservation back on overflow, so the cap holds exactly even
// under concurrent creates across shards.
type sessionStore struct {
	shards [sessionStoreShards]sessionShard
	next   atomic.Int64
	count  atomic.Int64
	max    int
}

func newSessionStore(max int) *sessionStore {
	st := &sessionStore{max: max}
	for i := range st.shards {
		st.shards[i].m = make(map[string]*session)
	}
	return st
}

// shardFor maps a session ID onto its stripe (FNV-1a 32).
func (st *sessionStore) shardFor(id string) *sessionShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &st.shards[h%sessionStoreShards]
}

func (st *sessionStore) create(g *graph.Graph, k int, mask []bool, now time.Time) (*session, error) {
	eng, err := maintain.NewEngine(g, mask, k, maintain.Options{})
	if err != nil {
		return nil, err
	}
	// Reserve a slot against the global cap before picking a shard; on
	// overflow the reservation is returned, so racing creates can never
	// land more than max sessions between them.
	if st.count.Add(1) > int64(st.max) {
		st.count.Add(-1)
		return nil, errTooManySessions
	}
	s := &session{
		id:       fmt.Sprintf("s%d", st.next.Add(1)),
		k:        k,
		engine:   eng,
		lastUsed: now,
	}
	sh := st.shardFor(s.id)
	sh.mu.Lock()
	sh.m[s.id] = s
	sh.mu.Unlock()
	return s, nil
}

func (st *sessionStore) get(id string, now time.Time) (*session, error) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.m[id]
	if !ok {
		return nil, errNoSession
	}
	s.lastUsed = now
	return s, nil
}

func (st *sessionStore) delete(id string) error {
	sh := st.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[id]; !ok {
		return errNoSession
	}
	delete(sh.m, id)
	st.count.Add(-1)
	return nil
}

func (st *sessionStore) len() int {
	return int(st.count.Load())
}

// sweep removes sessions idle since before the deadline and returns how
// many it dropped. Each shard is locked independently, so a sweep never
// stalls traffic on more than one stripe at a time.
func (st *sessionStore) sweep(deadline time.Time) int {
	removed := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for id, s := range sh.m {
			if s.lastUsed.Before(deadline) {
				delete(sh.m, id)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	if removed > 0 {
		st.count.Add(int64(-removed))
	}
	return removed
}

// SessionState is the JSON shape of a session status.
type SessionState struct {
	SessionID string `json:"session_id"`
	Epoch     int64  `json:"epoch"`
	N         int    `json:"n"`
	Edges     int    `json:"edges"`
	K         int    `json:"k"`
	Size      int    `json:"size"`
	LiveNodes int    `json:"live_nodes"`
	DeadNodes int    `json:"dead_nodes"`
	Repairs   int    `json:"repairs"`
	Promoted  int    `json:"promoted_total"`
	Fallbacks int    `json:"fallbacks"`
	Drift     int    `json:"drift"`
	Feasible  bool   `json:"feasible"`
}

// FailResponse is the JSON result of injecting failures into a session.
type FailResponse struct {
	SessionID       string `json:"session_id"`
	Epoch           int64  `json:"epoch"`
	Failed          int    `json:"failed"`
	FailedTotal     int    `json:"failed_total"`
	LostHeads       int    `json:"lost_heads"`
	DeficientBefore int    `json:"deficient_before"`
	Promoted        int    `json:"promoted"`
	Iterations      int    `json:"iterations"`
	Size            int    `json:"size"`
	Feasible        bool   `json:"feasible"`
}

// RepairPatch is the incremental diff a delta request streams back: apply
// entered/left to a mirrored member set and it matches the session.
type RepairPatch struct {
	Entered    []int `json:"entered"`
	Left       []int `json:"left"`
	AddedNodes []int `json:"added_nodes,omitempty"`
	Iterations int   `json:"iterations"`
	Touched    int   `json:"touched"`
}

// DeltaResponse is the JSON result of a delta batch.
type DeltaResponse struct {
	SessionID       string      `json:"session_id"`
	Epoch           int64       `json:"epoch"`
	Patch           RepairPatch `json:"patch"`
	LostHeads       int         `json:"lost_heads"`
	DeficientBefore int         `json:"deficient_before"`
	NewlyDead       int         `json:"newly_dead"`
	Revived         int         `json:"revived"`
	N               int         `json:"n"`
	Size            int         `json:"size"`
	Fallback        bool        `json:"fallback"`
	Feasible        bool        `json:"feasible"`
}

// repairStats is what a mutation reports to the metrics layer.
type repairStats struct {
	patchNodes int
	touched    int
	iterations int
	fallback   bool
}

// state snapshots the session under its lock.
func (s *session) state() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.engine
	return SessionState{
		SessionID: s.id,
		Epoch:     s.epoch,
		N:         e.N(),
		Edges:     e.NumEdges(),
		K:         s.k,
		Size:      e.Size(),
		LiveNodes: e.N() - e.DeadCount(),
		DeadNodes: e.DeadCount(),
		Repairs:   s.repairs,
		Promoted:  s.promotedTotal,
		Fallbacks: s.fallbacks,
		Drift:     e.Drift(),
		// The engine's repair terminates only at zero deficits, so a live
		// session is always feasible — no assessment pass needed.
		Feasible: true,
	}
}

// fail marks nodes dead and restores k-coverage with a local repair. The
// whole batch is range-checked before any node is marked: a rejected
// request leaves the session untouched. tr (nil-safe) receives the
// repair-phase spans.
func (s *session) fail(nodes []int, tr *obs.Trace) (FailResponse, repairStats, error) {
	ids := make([]graph.NodeID, len(nodes))
	for i, v := range nodes {
		ids[i] = graph.NodeID(v)
	}
	ops := []maintain.Op{{Kind: maintain.OpFail, Nodes: ids}}

	s.mu.Lock()
	defer s.mu.Unlock()
	repairSpan := tr.StartSpan(nil, "repair")
	defer repairSpan.End()
	assess := tr.StartSpan(repairSpan, "assess")
	if err := s.engine.Validate(ops); err != nil {
		assess.SetAttr("rejected", "true")
		assess.End()
		return FailResponse{}, repairStats{}, err
	}
	assess.End()
	promote := tr.StartSpan(repairSpan, "promote")
	p := s.engine.Apply(ops)
	promote.SetAttr("touched", strconv.Itoa(p.Touched))
	promote.SetAttr("iterations", strconv.Itoa(p.Iterations))
	promote.SetAttr("promoted", strconv.Itoa(len(p.Entered)))
	promote.End()
	s.epoch++
	s.repairs++
	s.promotedTotal += len(p.Entered)
	return FailResponse{
		SessionID:       s.id,
		Epoch:           s.epoch,
		Failed:          p.NewlyDead,
		FailedTotal:     s.engine.DeadCount(),
		LostHeads:       p.LostHeads,
		DeficientBefore: p.DeficientBefore,
		Promoted:        len(p.Entered),
		Iterations:      p.Iterations,
		Size:            s.engine.Size(),
		Feasible:        true,
	}, s.statsFor(p), nil
}

// delta applies one batch of churn ops and returns the repair patch. On
// drift-bound overflow it runs a certified full re-solve on the live
// subgraph and adopts the result; the returned patch then carries the net
// membership diff of the whole batch.
func (s *session) delta(ops []maintain.Op, tr *obs.Trace) (DeltaResponse, repairStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	repairSpan := tr.StartSpan(nil, "repair")
	defer repairSpan.End()
	assess := tr.StartSpan(repairSpan, "assess")
	if err := s.engine.Validate(ops); err != nil {
		assess.SetAttr("rejected", "true")
		assess.End()
		return DeltaResponse{}, repairStats{}, err
	}
	assess.End()
	preMask := s.engine.InSet()
	promote := tr.StartSpan(repairSpan, "promote")
	p := s.engine.Apply(ops)
	promote.SetAttr("touched", strconv.Itoa(p.Touched))
	promote.SetAttr("iterations", strconv.Itoa(p.Iterations))
	promote.SetAttr("promoted", strconv.Itoa(len(p.Entered)))
	promote.End()
	s.epoch++
	s.repairs++
	s.promotedTotal += len(p.Entered)

	resp := DeltaResponse{
		SessionID: s.id,
		Epoch:     s.epoch,
		Patch: RepairPatch{
			Entered:    toInts(p.Entered),
			Left:       toInts(p.Left),
			AddedNodes: toInts(p.AddedNodes),
			Iterations: p.Iterations,
			Touched:    p.Touched,
		},
		LostHeads:       p.LostHeads,
		DeficientBefore: p.DeficientBefore,
		NewlyDead:       p.NewlyDead,
		Revived:         p.Revived,
		N:               s.engine.N(),
		Size:            s.engine.Size(),
		Feasible:        true,
	}
	if p.DriftExceeded {
		fb := tr.StartSpan(repairSpan, "fallback")
		if err := s.fallbackResolveLocked(); err != nil {
			fb.SetAttr("error", "resolve-failed")
			fb.End()
			// The incremental state is still feasible; surface the resolve
			// failure without corrupting the session.
			return DeltaResponse{}, repairStats{}, fmt.Errorf("%w: %v", errFallbackFailed, err)
		}
		fb.SetAttr("certified", "true")
		fb.SetAttr("size", strconv.Itoa(s.engine.Size()))
		fb.End()
		s.fallbacks++
		resp.Fallback = true
		resp.Size = s.engine.Size()
		// After adoption the honest patch is the net diff over the batch.
		resp.Patch.Entered, resp.Patch.Left = maskDiff(preMask, s.engine.InSet())
	}
	st := s.statsFor(p)
	st.fallback = resp.Fallback
	st.patchNodes = len(resp.Patch.Entered) + len(resp.Patch.Left)
	return resp, st, nil
}

// fallbackResolveLocked compacts the drifted topology, runs the full
// deterministic solver on the live subgraph, verifies the result, and
// adopts it. Callers hold s.mu.
func (s *session) fallbackResolveLocked() error {
	sub, ids := s.engine.LiveSubgraph()
	if sub.NumNodes() == 0 {
		// Every node is dead: the empty set is vacuously feasible, and the
		// solver would reject an empty instance. Adopt it directly — SetMask
		// still folds the drifted topology.
		_, _, err := s.engine.SetMask(make([]bool, s.engine.N()))
		return err
	}
	sol, err := ftclust.SolveKMDS(sub, s.k, ftclust.WithT(3), ftclust.WithSeed(1))
	if err != nil {
		return err
	}
	if err := ftclust.Verify(sub, sol, s.k, ftclust.ClosedPP); err != nil {
		return fmt.Errorf("certification failed: %w", err)
	}
	mask := make([]bool, s.engine.N())
	for _, v := range sol.Members {
		mask[ids[v]] = true
	}
	if _, _, err := s.engine.SetMask(mask); err != nil {
		return err
	}
	return nil
}

func (s *session) statsFor(p maintain.Patch) repairStats {
	return repairStats{
		patchNodes: len(p.Entered) + len(p.Left),
		touched:    p.Touched,
		iterations: p.Iterations,
		fallback:   p.DriftExceeded,
	}
}

func toInts(ids []graph.NodeID) []int {
	out := make([]int, len(ids))
	for i, v := range ids {
		out[i] = int(v)
	}
	return out
}

// maskDiff returns the member sets entering and leaving between two
// masks, ascending (b may be longer than a: appended nodes).
func maskDiff(a, b []bool) (entered, left []int) {
	entered, left = []int{}, []int{}
	for v := range b {
		av := v < len(a) && a[v]
		if b[v] && !av {
			entered = append(entered, v)
		}
		if !b[v] && av {
			left = append(left, v)
		}
	}
	return entered, left
}
