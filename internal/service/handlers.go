package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ftclust"
	"ftclust/internal/graph"
	"ftclust/internal/maintain"
	"ftclust/internal/obs"
	"ftclust/internal/verify"
)

// GraphSpec is an explicit graph in a request body.
type GraphSpec struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// FamilySpec asks the server to generate a graph from a named family
// (gnp, regular, grid, tree, powerlaw, ring) — handy for smoke tests and
// load generation without shipping edge lists.
type FamilySpec struct {
	Name   string  `json:"name"`
	N      int     `json:"n"`
	Degree float64 `json:"degree"`
	Seed   int64   `json:"seed"`
}

// SolveRequest is the body of POST /v1/solve and POST /v1/session.
// Exactly one of Graph and Family must be set.
type SolveRequest struct {
	Graph  *GraphSpec  `json:"graph,omitempty"`
	Family *FamilySpec `json:"family,omitempty"`
	K      int         `json:"k"`
	T      int         `json:"t,omitempty"`    // default 3
	Seed   int64       `json:"seed,omitempty"` // default 1
	Local  bool        `json:"local_delta,omitempty"`
}

// SolutionJSON is the wire form of a solve result, shared by the service
// and `kmds -json` so scripts and the smoke test consume one format.
type SolutionJSON struct {
	Algorithm           string  `json:"algorithm"`
	N                   int     `json:"n"`
	Edges               int     `json:"edges"`
	K                   int     `json:"k"`
	Size                int     `json:"size"`
	Members             []int   `json:"members"`
	Rounds              int     `json:"rounds"`
	Kappa               float64 `json:"kappa,omitempty"`
	FractionalObjective float64 `json:"fractional_objective,omitempty"`
	CertifiedLowerBound float64 `json:"certified_lower_bound,omitempty"`
	Verified            bool    `json:"verified"`
}

// SolveResponse is the body of a successful /v1/solve. It is exactly the
// shared solution format — deliberately free of timing or cache fields so
// identical requests get byte-identical bodies (cache status travels in
// the X-Cache header instead).
type SolveResponse = SolutionJSON

// NewSolutionJSON converts a library solution to the wire form.
func NewSolutionJSON(g *graph.Graph, sol *ftclust.Solution, k int) *SolutionJSON {
	members := make([]int, 0, len(sol.Members))
	for _, v := range sol.Members {
		members = append(members, int(v))
	}
	return &SolutionJSON{
		Algorithm:           sol.Algorithm,
		N:                   g.NumNodes(),
		Edges:               g.NumEdges(),
		K:                   k,
		Size:                sol.Size(),
		Members:             members,
		Rounds:              sol.Rounds,
		Kappa:               sol.Kappa,
		FractionalObjective: sol.FractionalObjective,
		CertifiedLowerBound: sol.CertifiedLowerBound,
		Verified:            ftclust.Verify(g, sol, k, ftclust.ClosedPP) == nil,
	}
}

// maxBatchItems caps the number of requests a single /v1/solvebatch may
// carry; larger batches get 400.
const maxBatchItems = 256

// BatchSolveRequest is the body of POST /v1/solvebatch.
type BatchSolveRequest struct {
	Requests []SolveRequest `json:"requests"`
}

// BatchSolveItem is one per-request outcome inside a batch response:
// exactly one of Solution and Error is set. Status carries the HTTP status
// the request would have received from /v1/solve; Cache mirrors the
// X-Cache header (hit, miss or coalesced). In cluster mode Route mirrors
// the X-Cluster-Route header: "local" when this node owned the item's
// key, "forwarded" when it was proxied to the owner.
type BatchSolveItem struct {
	Solution *SolutionJSON `json:"solution,omitempty"`
	Error    string        `json:"error,omitempty"`
	Status   int           `json:"status"`
	Cache    string        `json:"cache,omitempty"`
	Route    string        `json:"route,omitempty"`
}

// BatchSolveResponse is the body of POST /v1/solvebatch; Results holds one
// item per request, in request order. The response itself is 200 even when
// individual items failed.
type BatchSolveResponse struct {
	Results []BatchSolveItem `json:"results"`
}

// VerifyRequest is the body of POST /v1/verify.
type VerifyRequest struct {
	Graph      *GraphSpec  `json:"graph,omitempty"`
	Family     *FamilySpec `json:"family,omitempty"`
	K          int         `json:"k"`
	Members    []int       `json:"members"`
	Convention string      `json:"convention,omitempty"` // "closed-pp" (default) | "standard"
}

// VerifyResponse is the body of POST /v1/verify.
type VerifyResponse struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// SessionCreateResponse is the body of POST /v1/session.
type SessionCreateResponse struct {
	SessionID string        `json:"session_id"`
	Solution  *SolutionJSON `json:"solution"`
}

// FailRequest is the body of POST /v1/session/{id}/fail.
type FailRequest struct {
	Nodes []int `json:"nodes"`
}

// maxDeltaOps caps the ops in a single delta batch; larger batches get 400.
const maxDeltaOps = 4096

// DeltaOp is one churn operation in a delta batch. Op selects the kind:
// "fail" and "revive" take nodes, "add_edge" and "del_edge" take u and v
// (pointers so a missing operand is distinguishable from node 0), and
// "add_node" takes nothing.
type DeltaOp struct {
	Op    string `json:"op"`
	Nodes []int  `json:"nodes,omitempty"`
	U     *int   `json:"u,omitempty"`
	V     *int   `json:"v,omitempty"`
}

// DeltaRequest is the body of POST /v1/session/{id}/delta.
type DeltaRequest struct {
	Ops []DeltaOp `json:"ops"`
}

// toEngineOps converts wire ops to engine ops, rejecting malformed ones.
// Range and topology validity are the engine's job (Validate); this layer
// only checks shape.
func toEngineOps(ops []DeltaOp) ([]maintain.Op, error) {
	out := make([]maintain.Op, 0, len(ops))
	for i, op := range ops {
		switch op.Op {
		case "fail", "revive":
			if len(op.Nodes) == 0 {
				return nil, fmt.Errorf("op %d (%s): nodes must be non-empty", i, op.Op)
			}
			if op.U != nil || op.V != nil {
				return nil, fmt.Errorf("op %d (%s): u/v not allowed", i, op.Op)
			}
			kind := maintain.OpFail
			if op.Op == "revive" {
				kind = maintain.OpRevive
			}
			ids := make([]graph.NodeID, len(op.Nodes))
			for j, v := range op.Nodes {
				ids[j] = graph.NodeID(v)
			}
			out = append(out, maintain.Op{Kind: kind, Nodes: ids})
		case "add_edge", "del_edge":
			if op.U == nil || op.V == nil {
				return nil, fmt.Errorf("op %d (%s): u and v are required", i, op.Op)
			}
			if len(op.Nodes) != 0 {
				return nil, fmt.Errorf("op %d (%s): nodes not allowed", i, op.Op)
			}
			kind := maintain.OpAddEdge
			if op.Op == "del_edge" {
				kind = maintain.OpDelEdge
			}
			out = append(out, maintain.Op{Kind: kind, U: graph.NodeID(*op.U), V: graph.NodeID(*op.V)})
		case "add_node":
			if len(op.Nodes) != 0 || op.U != nil || op.V != nil {
				return nil, fmt.Errorf("op %d (add_node): takes no operands", i)
			}
			out = append(out, maintain.Op{Kind: maintain.OpAddNode})
		default:
			return nil, fmt.Errorf("op %d: unknown op %q (want fail, revive, add_edge, del_edge or add_node)", i, op.Op)
		}
	}
	return out, nil
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decodeJSON reads a size-capped, strictly-validated JSON body into dst.
// It writes the error response itself and reports success.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", tooBig.Limit))
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("malformed JSON: %v", err))
		}
		return false
	}
	return true
}

// readBody drains a size-capped request body into memory — the routing
// layer needs the raw bytes to proxy a non-owned key verbatim. Status
// and error shape match decodeJSON's.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	b, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", tooBig.Limit))
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %v", err))
		}
		return nil, false
	}
	return b, true
}

// decodeBody strictly decodes an already-read body, mirroring
// decodeJSON's 400 shape.
func decodeBody(w http.ResponseWriter, body []byte, dst any) bool {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed JSON: %v", err))
		return false
	}
	return true
}

// buildGraph materializes the instance a request describes.
func (s *Server) buildGraph(gs *GraphSpec, fs *FamilySpec) (*graph.Graph, error) {
	switch {
	case gs != nil && fs != nil:
		return nil, errors.New("give either graph or family, not both")
	case gs != nil:
		if gs.N < 0 || gs.N > s.cfg.MaxNodes {
			return nil, fmt.Errorf("n = %d out of range [0, %d]", gs.N, s.cfg.MaxNodes)
		}
		edges := make([]graph.Edge, 0, len(gs.Edges))
		for _, e := range gs.Edges {
			edges = append(edges, graph.Edge{U: graph.NodeID(e[0]), V: graph.NodeID(e[1])})
		}
		return graph.FromEdges(gs.N, edges)
	case fs != nil:
		if fs.N < 0 || fs.N > s.cfg.MaxNodes {
			return nil, fmt.Errorf("n = %d out of range [0, %d]", fs.N, s.cfg.MaxNodes)
		}
		return graph.Generate(graph.Family(fs.Name), fs.N, fs.Degree, fs.Seed)
	default:
		return nil, errors.New("need a graph or a family")
	}
}

// Cache-status values returned by solve and echoed in the X-Cache header:
// a cache hit, a fresh solve, or a request coalesced onto a concurrent
// identical solve.
const (
	cacheHit       = "hit"
	cacheMiss      = "miss"
	cacheCoalesced = "coalesced"
)

// prepareSolve validates a request, fills its defaults, materializes
// the instance and computes the cache/routing key — the part of a solve
// every node does locally even for keys it forwards, because the key is
// the canonical graph hash plus the solver parameters.
func (s *Server) prepareSolve(req *SolveRequest) (*graph.Graph, string, int, error) {
	g, err := s.buildGraph(req.Graph, req.Family)
	if err != nil {
		return nil, "", http.StatusBadRequest, err
	}
	return s.prepareSolveWith(req, g, g.CanonicalHash())
}

// prepareSolveWith is prepareSolve for an already-materialized instance
// with a precomputed canonical hash — the batch path materializes each
// unique family once and prepares every item against the shared copy.
func (s *Server) prepareSolveWith(req *SolveRequest, g *graph.Graph, hash string) (*graph.Graph, string, int, error) {
	if req.T == 0 {
		req.T = 3
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.T < 1 || req.T > 64 {
		return nil, "", http.StatusBadRequest, fmt.Errorf("t = %d out of range [1, 64]", req.T)
	}
	return g, solveCacheKey(hash, req.K, req.T, req.Seed, req.Local), 0, nil
}

// solve is the shared engine behind session creation and the local leg
// of /v1/solve: prepare the instance, then run the cached/coalesced
// solve. It returns the graph so session creation can keep it, plus the
// cache status for the X-Cache header. parent scopes this call's spans
// inside the request trace (nil = under the root; batch items pass
// their per-item span).
func (s *Server) solve(ctx context.Context, req *SolveRequest, parent *obs.Span) (*SolveResponse, *graph.Graph, string, int, error) {
	g, key, status, err := s.prepareSolve(req)
	if err != nil {
		return nil, nil, "", status, err
	}
	resp, cacheStatus, status, err := s.solvePrepared(ctx, req, g, key, parent)
	if err != nil {
		return nil, nil, "", status, err
	}
	return resp, g, cacheStatus, status, nil
}

// solvePrepared runs the cache → coalesce → lead pipeline for an
// already-prepared request: consult the cache, join an identical
// in-flight solve if one exists, otherwise lead a fresh solve on the
// bounded worker pool under the request deadline.
func (s *Server) solvePrepared(ctx context.Context, req *SolveRequest, g *graph.Graph, key string, parent *obs.Span) (*SolveResponse, string, int, error) {
	tr := obs.TraceFrom(ctx)
	lookup := time.Now()
	if resp, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		tr.AddSpan(parent, "cache", lookup, time.Now()).SetAttr("decision", cacheHit)
		return resp, cacheHit, http.StatusOK, nil
	}

	// Identical request already being solved? Wait for its result instead
	// of burning a second worker on the same deterministic computation.
	f, leader := s.flights.join(key)
	if !leader {
		sp := tr.StartSpan(parent, "coalesce-wait")
		defer sp.End()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, "", f.status, f.err
			}
			s.metrics.coalesced.Add(1)
			sp.SetAttr("decision", cacheCoalesced)
			return f.resp, cacheCoalesced, http.StatusOK, nil
		case <-ctx.Done():
			s.metrics.canceled.Add(1)
			sp.SetAttr("decision", "abandoned")
			return nil, "", http.StatusGatewayTimeout,
				fmt.Errorf("solve abandoned: %w", ctx.Err())
		}
	}
	s.metrics.cacheMisses.Add(1)
	tr.AddSpan(parent, "cache", lookup, time.Now()).SetAttr("decision", cacheMiss)
	resp, status, err := s.leadSolve(ctx, req, g, key, parent)
	s.flights.finish(key, f, resp, status, err)
	if err != nil {
		return nil, "", status, err
	}
	return resp, cacheMiss, http.StatusOK, nil
}

// leadSolve runs the actual solver job for a flight leader and populates
// the cache on success. Timing is split at the worker-pickup boundary:
// enqueue→start feeds the queue-wait histogram, the job body feeds the
// solve-latency histogram — so a backed-up queue cannot masquerade as a
// slow solver, and neither series ever sees cache hits or coalesced
// followers.
func (s *Server) leadSolve(ctx context.Context, req *SolveRequest, g *graph.Graph, key string, parent *obs.Span) (*SolveResponse, int, error) {
	if s.cfg.SolveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.SolveTimeout)
		defer cancel()
	}

	tr := obs.TraceFrom(ctx)
	var (
		resp     *SolveResponse
		solveErr error
		solveDur time.Duration
	)
	enq := time.Now()
	err := s.queue.Do(ctx, func(jobCtx context.Context, scratch *ftclust.Scratch) {
		jobStart := time.Now()
		s.metrics.queueWait.ObserveDuration(jobStart.Sub(enq))
		tr.AddSpan(parent, "queue-wait", enq, jobStart)
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)

		solveSpan := tr.StartSpan(parent, "solve")
		defer func() {
			solveDur = time.Since(jobStart)
			solveSpan.End()
		}()
		// The per-request observer fans each core callback out to the
		// global solver series and into this request's span tree. Phase
		// spans are reconstructed from the reported duration (callbacks
		// fire at phase end).
		observer := &ftclust.SolveObserver{
			OnPhase: func(p ftclust.SolvePhaseInfo) {
				s.metrics.observePhase(p)
				end := time.Now()
				sp := tr.AddSpan(solveSpan, p.Name, end.Add(-p.Duration), end)
				sp.SetAttr("rounds", strconv.Itoa(p.Rounds))
				if p.AllocObjects > 0 {
					sp.SetAttr("alloc_objects", strconv.FormatUint(p.AllocObjects, 10))
				}
			},
			OnDone: func(st ftclust.SolveStats) {
				s.metrics.observeSolveStats(st)
				solveSpan.SetAttr("lp_rounds", strconv.Itoa(st.LPRounds))
				solveSpan.SetAttr("set_size", strconv.Itoa(st.SetSize))
				solveSpan.SetAttr("kappa", strconv.FormatFloat(st.Kappa, 'g', 6, 64))
				solveSpan.SetAttr("dual_gap", strconv.FormatFloat(st.DualGap, 'g', 6, 64))
				solveSpan.SetAttr("lower_bound", strconv.FormatFloat(st.DualLowerBound, 'g', 6, 64))
			},
		}

		solveOpts := []ftclust.Option{
			ftclust.WithT(req.T),
			ftclust.WithSeed(req.Seed),
			ftclust.WithWorkers(s.cfg.SolveThreads),
			ftclust.WithContext(jobCtx),
			ftclust.WithScratch(scratch),
			ftclust.WithObserver(observer),
		}
		if req.Local {
			solveOpts = append(solveOpts, ftclust.WithLocalDelta())
		}
		sol, err := ftclust.SolveKMDS(g, req.K, solveOpts...)
		if err != nil {
			solveErr = err
			return
		}
		// NewSolutionJSON copies everything it keeps (Members ints), so
		// the response outlives the worker's next arena reuse.
		resp = NewSolutionJSON(g, sol, req.K)
	})
	switch {
	case errors.Is(err, errQueueFull):
		// Backlog overflow is transient by construction (the pool is
		// draining it right now): shed with 429 + Retry-After computed
		// from the backlog so clients space their retries. 503 stays
		// reserved for drain/shutdown, where retrying this process is
		// pointless.
		s.metrics.queueRejected.Add(1)
		s.metrics.shedQueue.Inc()
		s.event("shed", "reason", "queue")
		return nil, http.StatusTooManyRequests, err
	case errors.Is(err, errDraining):
		s.metrics.queueRejected.Add(1)
		return nil, http.StatusServiceUnavailable, err
	case err != nil: // request context fired while waiting
		s.metrics.canceled.Add(1)
		return nil, http.StatusGatewayTimeout, fmt.Errorf("solve abandoned: %w", err)
	}
	switch {
	case errors.Is(solveErr, ftclust.ErrCanceled):
		s.metrics.canceled.Add(1)
		return nil, http.StatusGatewayTimeout, solveErr
	case errors.Is(solveErr, ftclust.ErrBadK), errors.Is(solveErr, ftclust.ErrEmptyGraph):
		return nil, http.StatusBadRequest, solveErr
	case solveErr != nil:
		s.metrics.solveErrors.Add(1)
		return nil, http.StatusInternalServerError, solveErr
	}
	s.metrics.solves.Add(1)
	s.metrics.solveLat.ObserveDuration(solveDur)
	s.cache.Put(key, resp)
	return resp, http.StatusOK, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req SolveRequest
	if !decodeBody(w, body, &req) {
		return
	}
	g, key, status, err := s.prepareSolve(&req)
	if err != nil {
		writeError(w, status, err)
		return
	}
	// Cluster routing: proxy a non-owned key to its rendezvous owner
	// (one hop — forwarded requests always land here as local). A
	// suspect owner or a failed forward degrades to a local solve.
	if s.shouldRoute(r.Header) {
		if owner, local := s.cluster.Route(key); !local {
			if s.forwardSolve(w, r, owner, body) {
				return
			}
		}
	}
	if s.cluster != nil {
		w.Header().Set(clusterRouteHeader, routeLocal)
	}
	resp, cacheStatus, status, err := s.solvePrepared(r.Context(), &req, g, key, nil)
	if err != nil {
		s.writeSolveError(w, status, err)
		return
	}
	w.Header().Set("X-Cache", cacheStatus)
	tr := obs.TraceFrom(r.Context())
	sp := tr.StartSpan(nil, "encode")
	writeJSON(w, http.StatusOK, resp)
	sp.End()
}

// handleSolveBatch fans a batch of solve requests across the worker pool
// concurrently and returns the outcomes in request order. Items share the
// solution cache and the coalescing group with every other request, so a
// batch of identical entries costs one solve. Each item contends for the
// same bounded queue as /v1/solve; batches far larger than the backlog
// surface the overflow as per-item 429s rather than unbounded queueing.
func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSolveRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("requests must be non-empty"))
		return
	}
	if len(req.Requests) > maxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds limit %d", len(req.Requests), maxBatchItems))
		return
	}
	s.metrics.batches.Add(1)
	shared := s.prepareBatchFamilies(req.Requests)
	results := make([]BatchSolveItem, len(req.Requests))
	routable := s.shouldRoute(r.Header)
	var wg sync.WaitGroup
	for i := range req.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := obs.TraceFrom(r.Context()).StartSpan(nil, "item-"+strconv.Itoa(i))
			defer sp.End()
			results[i] = s.solveBatchItem(r.Context(), &req.Requests[i], routable, sp, shared)
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchSolveResponse{Results: results})
}

// sharedInstance is a batch-wide once-materialized family instance: the
// generated graph plus its canonical hash (the hash streams every edge,
// so recomputing it per item costs as much as another generation pass).
// The graph is immutable after build, so concurrent items read it freely;
// failed generations park the error so every item of the family reports
// it without retrying.
type sharedInstance struct {
	g      *graph.Graph
	hash   string
	status int
	err    error
}

// batchFamilyKey identifies a family spec inside one batch.
func batchFamilyKey(fs *FamilySpec) string {
	return fmt.Sprintf("%s|%d|%g|%d", fs.Name, fs.N, fs.Degree, fs.Seed)
}

// prepareBatchFamilies materializes each unique family spec of a batch
// exactly once, before the fan-out (the map is read-only afterwards, so
// the item goroutines share it without locking). Beyond skipping the
// duplicate generations and hashes, same-family items keep the solver
// arenas warm: every queue worker's Scratch sees the same (n, m) shape,
// so repeated items run at steady-state zero allocations. Items carrying
// inline edge lists are not shared — identical lists still dedupe later
// at the cache/coalescing layer.
func (s *Server) prepareBatchFamilies(items []SolveRequest) map[string]*sharedInstance {
	var shared map[string]*sharedInstance
	for i := range items {
		fs := items[i].Family
		if fs == nil || items[i].Graph != nil {
			continue
		}
		key := batchFamilyKey(fs)
		if _, ok := shared[key]; ok {
			s.metrics.batchShared.Add(1)
			continue
		}
		inst := &sharedInstance{}
		inst.g, inst.err = s.buildGraph(nil, fs)
		if inst.err != nil {
			inst.status = http.StatusBadRequest
		} else {
			inst.hash = inst.g.CanonicalHash()
		}
		if shared == nil {
			shared = make(map[string]*sharedInstance)
		}
		shared[key] = inst
	}
	return shared
}

// solveBatchItem runs one batch entry: prepare locally (against the
// batch's shared family instance when one exists), and either proxy it
// to the key's rendezvous owner (routable cluster mode, key not owned
// here) or solve it on this node's pool. Forward failures fall back to a
// local solve exactly like /v1/solve.
func (s *Server) solveBatchItem(ctx context.Context, req *SolveRequest, routable bool, sp *obs.Span, shared map[string]*sharedInstance) BatchSolveItem {
	var g *graph.Graph
	var key string
	var status int
	var err error
	if req.Graph == nil && req.Family != nil {
		if inst, ok := shared[batchFamilyKey(req.Family)]; ok {
			if inst.err != nil {
				return BatchSolveItem{Error: inst.err.Error(), Status: inst.status}
			}
			g, key, status, err = s.prepareSolveWith(req, inst.g, inst.hash)
		}
	}
	if g == nil && err == nil {
		g, key, status, err = s.prepareSolve(req)
	}
	if err != nil {
		return BatchSolveItem{Error: err.Error(), Status: status}
	}
	route := ""
	if s.cluster != nil {
		route = routeLocal
	}
	if routable {
		if owner, local := s.cluster.Route(key); !local {
			resp, cacheStatus, fwdStatus, err := s.forwardSolveItem(ctx, owner, req)
			switch {
			case err == nil:
				return BatchSolveItem{Solution: resp, Status: fwdStatus, Cache: cacheStatus, Route: routeForwarded}
			case fwdStatus != 0:
				// The owner answered with its own rejection (shedding,
				// validation): that is the item's authoritative outcome.
				return BatchSolveItem{Error: err.Error(), Status: fwdStatus, Route: routeForwarded}
			default:
				s.cluster.Metrics().ForwardErrors.Inc()
				s.logger.Warn("cluster forward failed; solving locally",
					"owner", owner, "path", "/v1/solvebatch", "err", err)
			}
		}
	}
	resp, cacheStatus, status, err := s.solvePrepared(ctx, req, g, key, sp)
	if err != nil {
		return BatchSolveItem{Error: err.Error(), Status: status, Route: route}
	}
	return BatchSolveItem{Solution: resp, Status: status, Cache: cacheStatus, Route: route}
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	g, err := s.buildGraph(req.Graph, req.Family)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be ≥ 1, got %d", req.K))
		return
	}
	conv := verify.ClosedPP
	switch req.Convention {
	case "", "closed-pp":
	case "standard":
		conv = verify.Standard
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown convention %q (want closed-pp or standard)", req.Convention))
		return
	}
	mask := make([]bool, g.NumNodes())
	for _, v := range req.Members {
		if v < 0 || v >= g.NumNodes() {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("member %d out of range [0,%d)", v, g.NumNodes()))
			return
		}
		mask[v] = true
	}
	s.metrics.verifies.Add(1)
	resp := VerifyResponse{OK: true}
	if err := verify.CheckKFold(g, mask, float64(req.K), conv); err != nil {
		resp = VerifyResponse{OK: false, Reason: err.Error()}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	resp, g, _, status, err := s.solve(r.Context(), &req, nil)
	if err != nil {
		s.writeSolveError(w, status, err)
		return
	}
	mask := make([]bool, g.NumNodes())
	for _, v := range resp.Members {
		mask[v] = true
	}
	sess, err := s.sessions.create(g, req.K, mask, time.Now())
	if err != nil {
		if errors.Is(err, errTooManySessions) {
			// A full session table is client-visible backpressure like a full
			// queue, not a drain: shed with 429 so 503 keeps meaning "this
			// node is going away". Slots free on delete or TTL sweep, so the
			// suggested retry is one janitor interval (quarter TTL), bounded.
			retry := 1
			if s.cfg.SessionTTL > 0 {
				retry = retryAfterSeconds(s.cfg.SessionTTL / 4)
				if retry > 60 {
					retry = 60
				}
			}
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		// The solve is verified feasible, so engine seeding cannot fail on
		// a healthy server; anything else is an internal inconsistency.
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.metrics.sessionsCreated.Add(1)
	writeJSON(w, http.StatusCreated, SessionCreateResponse{
		SessionID: sess.id,
		Solution:  resp,
	})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.get(r.PathValue("id"), time.Now())
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.state())
}

func (s *Server) handleSessionFail(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.get(r.PathValue("id"), time.Now())
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var req FailRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Nodes) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("nodes must be non-empty"))
		return
	}
	start := time.Now()
	resp, st, err := sess.fail(req.Nodes, obs.TraceFrom(r.Context()))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.observeRepair(st, time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.get(r.PathValue("id"), time.Now())
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var req DeltaRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("ops must be non-empty"))
		return
	}
	if len(req.Ops) > maxDeltaOps {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d ops exceeds limit %d", len(req.Ops), maxDeltaOps))
		return
	}
	ops, err := toEngineOps(req.Ops)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	resp, st, err := sess.delta(ops, obs.TraceFrom(r.Context()))
	if err != nil {
		if errors.Is(err, errFallbackFailed) {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.observeRepair(st, time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.sessions.delete(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
