package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ftclust/internal/obs"
)

// getBody GETs a URL and returns status, headers and body.
func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

// /metrics serves Prometheus text exposition with the solver, queue and
// per-endpoint series, and histogram buckets are cumulative-monotone.
func TestPrometheusMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/solve", gnpSolveBody)

	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"ftclust_solves_total 1",
		"ftclust_cache_misses_total 1",
		"ftclust_solve_duration_seconds_count 1",
		"ftclust_queue_wait_seconds_count 1",
		"ftclust_solver_lp_rounds_count 1",
		"ftclust_solver_rounding_passes_count 1",
		"ftclust_solver_dual_gap_count 1",
		`ftclust_solver_phase_duration_seconds_count{phase="fractional"} 1`,
		`ftclust_solver_phase_duration_seconds_count{phase="rounding"} 1`,
		`ftclust_solver_phase_duration_seconds_count{phase="verify"} 1`,
		`ftclust_http_requests_total{endpoint="/v1/solve"} 1`,
		"# TYPE ftclust_solve_duration_seconds histogram",
		"# TYPE ftclust_solves_total counter",
		"# TYPE ftclust_queue_depth gauge",
		"ftclust_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The LP-rounds histogram must have seen exactly 2t² = 18.
	if !strings.Contains(text, "ftclust_solver_lp_rounds_sum 18") {
		t.Error("lp_rounds sum != 18 for one t=3 solve")
	}

	// Every histogram's bucket counts must be non-decreasing in le-order
	// and end at +Inf (Prometheus cumulative-bucket contract).
	buckets := map[string][]int64{} // series prefix -> counts in order
	infSeen := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, "_bucket{") {
			continue
		}
		name := line[:strings.Index(line, "{")]
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		// Split off the le label so each labeled histogram is tracked
		// separately (endpoint/phase variants).
		key := name + line[strings.Index(line, "{"):strings.Index(line, `le="`)]
		buckets[key] = append(buckets[key], v)
		if strings.Contains(line, `le="+Inf"`) {
			infSeen[key] = true
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram bucket lines in exposition")
	}
	for key, counts := range buckets {
		for i := 1; i < len(counts); i++ {
			if counts[i] < counts[i-1] {
				t.Errorf("%s: bucket counts not monotone: %v", key, counts)
			}
		}
		if !infSeen[key] {
			t.Errorf("%s: no +Inf bucket", key)
		}
	}
}

// Every response carries X-Request-ID; for API calls the ID resolves at
// /debug/trace/{id} to a span tree with queue wait, cache decision,
// solver phases and encode. Client-supplied IDs are propagated.
func TestRequestIDResolvesToTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, _ := postJSON(t, ts.URL+"/v1/solve", gnpSolveBody)
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("solve response missing X-Request-ID")
	}

	// The trace is ring-committed after the handler returns; poll briefly.
	var traceBody []byte
	deadline := time.Now().Add(5 * time.Second)
	for {
		tresp, b := getBody(t, ts.URL+"/debug/trace/"+id)
		if tresp.StatusCode == http.StatusOK {
			traceBody = b
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared: status %d", id, tresp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}

	var tj obs.TraceJSON
	if err := json.Unmarshal(traceBody, &tj); err != nil {
		t.Fatalf("trace JSON: %v (%s)", err, traceBody)
	}
	if tj.ID != id || tj.Root.Name != "POST /v1/solve" {
		t.Fatalf("trace header wrong: %+v", tj)
	}
	names := map[string]obs.SpanJSON{}
	var walk func(sp obs.SpanJSON)
	walk = func(sp obs.SpanJSON) {
		names[sp.Name] = sp
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(tj.Root)
	for _, want := range []string{"cache", "queue-wait", "solve", "fractional", "rounding", "verify", "encode"} {
		if _, ok := names[want]; !ok {
			t.Errorf("span %q missing from trace (have %v)", want, traceBody)
		}
	}
	if names["cache"].Attrs["decision"] != "miss" {
		t.Errorf("cache span decision = %v, want miss", names["cache"].Attrs)
	}
	if names["solve"].Attrs["lp_rounds"] != "18" {
		t.Errorf("solve span lp_rounds = %v, want 18", names["solve"].Attrs)
	}
	if names["fractional"].Attrs["rounds"] != "18" {
		t.Errorf("fractional span rounds = %v", names["fractional"].Attrs)
	}

	// The listing shows it too.
	lresp, lbody := getBody(t, ts.URL+"/debug/trace")
	if lresp.StatusCode != http.StatusOK || !strings.Contains(string(lbody), id) {
		t.Fatalf("trace listing missing %s: %s", id, lbody)
	}

	// A caller-chosen ID survives the round trip.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(gnpSolveBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "caller-chosen-42")
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if got := cresp.Header.Get("X-Request-ID"); got != "caller-chosen-42" {
		t.Fatalf("client request ID not propagated: %q", got)
	}
}

// Cache hits and coalesced followers must never touch the solve-latency
// or queue-wait histograms: those time real solver work only.
func TestQueueWaitAndSolveLatencySeparation(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	postJSON(t, ts.URL+"/v1/solve", gnpSolveBody) // cold: one solve sample
	postJSON(t, ts.URL+"/v1/solve", gnpSolveBody) // hit: no new samples
	postJSON(t, ts.URL+"/v1/solve", gnpSolveBody) // hit

	m := s.Metrics()
	if m.CacheHits != 2 || m.Solves != 1 {
		t.Fatalf("unexpected traffic mix: %+v", m)
	}
	if m.LatencySamples != 1 {
		t.Errorf("solve-latency samples = %d, want 1 (cache hits must not count)", m.LatencySamples)
	}
	if m.QueueWaitSample != 1 {
		t.Errorf("queue-wait samples = %d, want 1", m.QueueWaitSample)
	}
	if m.SolveLatencyP50 <= 0 || m.SolveLatencyP99 < m.SolveLatencyP50 {
		t.Errorf("implausible solve quantiles: %+v", m)
	}
}

// All read-only observability endpoints reject non-GET methods.
func TestDebugEndpointsRejectNonGET(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/metrics", "/debug/metrics", "/debug/trace", "/debug/trace/xyz"} {
		resp, _ := postJSON(t, ts.URL+path, "{}")
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}

// syncBuffer is a goroutine-safe log sink for captured slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Graceful drain with observability on: a SIGTERM-style Shutdown during
// an in-flight traced solve lets the solve finish, keeps its trace
// reachable in the ring, and emits structured access plus final shutdown
// log lines.
func TestShutdownDrainFlushesTraceAndLogs(t *testing.T) {
	var logs syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logs, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Logger: logger})

	type result struct {
		status int
		id     string
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
			strings.NewReader(`{"family":{"name":"gnp","n":40000,"degree":6,"seed":3},"k":3,"t":6}`))
		if err != nil {
			resCh <- result{status: -1}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		resCh <- result{status: resp.StatusCode, id: resp.Header.Get("X-Request-ID")}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().InFlight == 0 && s.Metrics().Solves == 0 {
		if time.Now().After(deadline) {
			t.Fatal("solve never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	res := <-resCh
	if res.status != http.StatusOK || res.id == "" {
		t.Fatalf("drained solve: status %d, id %q", res.status, res.id)
	}

	// The trace must survive the drain and resolve by ID.
	traceDeadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s.traces.Get(res.id); ok {
			break
		}
		if time.Now().After(traceDeadline) {
			t.Fatalf("trace %s not in ring after drain", res.id)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Structured logs: a JSON access line for the solve and the final
	// shutdown line, each with the expected fields.
	assertLogLine := func(msg string, want map[string]bool) {
		t.Helper()
		lineDeadline := time.Now().Add(5 * time.Second)
		for {
			for _, line := range strings.Split(logs.String(), "\n") {
				if line == "" {
					continue
				}
				var rec map[string]any
				if err := json.Unmarshal([]byte(line), &rec); err != nil {
					t.Fatalf("non-JSON log line %q: %v", line, err)
				}
				if rec["msg"] != msg {
					continue
				}
				for field := range want {
					if _, ok := rec[field]; !ok {
						t.Errorf("log %q missing field %q: %s", msg, field, line)
					}
				}
				return
			}
			if time.Now().After(lineDeadline) {
				t.Fatalf("no %q log line in:\n%s", msg, logs.String())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	assertLogLine("request", map[string]bool{
		"request_id": true, "method": true, "path": true, "endpoint": true,
		"status": true, "duration_ms": true,
	})
	assertLogLine("shutdown complete", map[string]bool{
		"solves": true, "traces_retained": true, "uptime_seconds": true,
	})
	if !strings.Contains(logs.String(), fmt.Sprintf("%q:%q", "request_id", res.id)) {
		t.Errorf("access log does not carry the request id %s:\n%s", res.id, logs.String())
	}
}
