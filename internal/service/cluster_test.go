package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// clusterNode is one in-process ftserved instance wired into a test
// cluster: a real Server behind a real listener, so gossip and request
// forwarding travel over actual HTTP.
type clusterNode struct {
	srv  *Server
	ts   *httptest.Server
	addr string
	stop sync.Once
}

// fastGossip returns cluster timings tight enough for tests to converge
// in tens of milliseconds without flaking under load.
func fastGossip(self string, seeds []string) *ClusterConfig {
	return &ClusterConfig{
		Self:           self,
		Seeds:          seeds,
		GossipInterval: 20 * time.Millisecond,
		SuspectAfter:   200 * time.Millisecond,
		EvictAfter:     600 * time.Millisecond,
	}
}

// startClusterNode boots a cluster member. The listener must exist
// before service.New so the node can advertise its real address; the
// handler indirects through the pointer, which is assigned before
// Start spawns any serving goroutine.
func startClusterNode(t *testing.T, seeds []string, mutate func(*Config)) *clusterNode {
	t.Helper()
	n := &clusterNode{}
	n.ts = httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.srv.Handler().ServeHTTP(w, r)
	}))
	n.addr = n.ts.Listener.Addr().String()
	cfg := Config{Cluster: fastGossip(n.addr, seeds)}
	if mutate != nil {
		mutate(&cfg)
	}
	n.srv = New(cfg)
	n.ts.Start()
	t.Cleanup(n.kill)
	return n
}

// kill shuts the node down hard: stop serving, leave the gossip loop.
// Idempotent so tests can kill explicitly and rely on cleanup too.
func (n *clusterNode) kill() {
	n.stop.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		n.srv.Shutdown(ctx)
		n.ts.Close()
	})
}

// waitPeers polls until every node sees exactly want members.
func waitPeers(t *testing.T, nodes []*clusterNode, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		converged := true
		for _, n := range nodes {
			if n.srv.ClusterPeers() != want {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		if time.Now().After(deadline) {
			views := make([]string, len(nodes))
			for i, n := range nodes {
				views[i] = fmt.Sprintf("%s=%d", n.addr, n.srv.ClusterPeers())
			}
			t.Fatalf("cluster never converged on %d members: %s", want, strings.Join(views, " "))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func solveBodyForSeed(seed int) string {
	return fmt.Sprintf(`{"family":{"name":"gnp","n":60,"degree":5,"seed":%d},"k":2,"t":2}`, seed)
}

// Three nodes bootstrapped off one seed converge on full membership;
// a killed node is evicted from the survivors' views; a late joiner
// brings the count back up.
func TestClusterMembershipConvergence(t *testing.T) {
	n1 := startClusterNode(t, nil, nil)
	n2 := startClusterNode(t, []string{n1.addr}, nil)
	n3 := startClusterNode(t, []string{n1.addr}, nil)
	waitPeers(t, []*clusterNode{n1, n2, n3}, 3)

	// Kill: the dead node stops heartbeating and ages out of both views.
	n3.kill()
	waitPeers(t, []*clusterNode{n1, n2}, 2)

	// Join: a fresh node seeded off n2 propagates to n1 transitively.
	n4 := startClusterNode(t, []string{n2.addr}, nil)
	waitPeers(t, []*clusterNode{n1, n2, n4}, 3)
}

// Cache-shard locality: 64 distinct keys sprayed round-robin across 3
// nodes are each solved exactly once cluster-wide — every non-owner
// proxies to the owner instead of solving and caching its own copy.
func TestClusterExactlyOnceSolves(t *testing.T) {
	n1 := startClusterNode(t, nil, nil)
	n2 := startClusterNode(t, []string{n1.addr}, nil)
	n3 := startClusterNode(t, []string{n1.addr}, nil)
	nodes := []*clusterNode{n1, n2, n3}
	waitPeers(t, nodes, 3)

	const keys = 64
	forwarded := 0
	for i := 0; i < keys; i++ {
		node := nodes[i%len(nodes)]
		resp, body := postJSON(t, node.ts.URL+"/v1/solve", solveBodyForSeed(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("key %d on %s: status %d, body %s", i, node.addr, resp.StatusCode, body)
		}
		switch route := resp.Header.Get("X-Cluster-Route"); route {
		case "local":
		case "forwarded":
			forwarded++
		default:
			t.Fatalf("key %d: X-Cluster-Route = %q", i, route)
		}
	}

	var solves int64
	for _, n := range nodes {
		solves += n.srv.Metrics().Solves
	}
	if solves != keys {
		t.Fatalf("cluster-wide solves = %d, want exactly %d (each key owned once)", solves, keys)
	}
	// With 3 nodes, ≈2/3 of round-robin placements miss the owner.
	if forwarded == 0 {
		t.Fatal("no request was forwarded; routing is not engaging")
	}

	// Replay every key against a different node than before: all cache
	// hits somewhere in the cluster, zero new solves.
	for i := 0; i < keys; i++ {
		node := nodes[(i+1)%len(nodes)]
		resp, body := postJSON(t, node.ts.URL+"/v1/solve", solveBodyForSeed(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay key %d: status %d, body %s", i, resp.StatusCode, body)
		}
		if xc := resp.Header.Get("X-Cache"); xc != "hit" {
			t.Fatalf("replay key %d: X-Cache = %q, want hit", i, xc)
		}
	}
	var after int64
	for _, n := range nodes {
		after += n.srv.Metrics().Solves
	}
	if after != keys {
		t.Fatalf("replay re-solved keys: solves went %d → %d", keys, after)
	}
}

// A forwarded response must be byte-identical to the one the owner
// serves directly, and exactly one of the three nodes may claim a key
// as local.
func TestClusterForwardedByteIdentical(t *testing.T) {
	n1 := startClusterNode(t, nil, nil)
	n2 := startClusterNode(t, []string{n1.addr}, nil)
	n3 := startClusterNode(t, []string{n1.addr}, nil)
	nodes := []*clusterNode{n1, n2, n3}
	waitPeers(t, nodes, 3)

	body := solveBodyForSeed(1000)
	var bodies [][]byte
	locals, forwards := 0, 0
	for _, n := range nodes {
		resp, b := postJSON(t, n.ts.URL+"/v1/solve", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve on %s: status %d, body %s", n.addr, resp.StatusCode, b)
		}
		switch resp.Header.Get("X-Cluster-Route") {
		case "local":
			locals++
		case "forwarded":
			forwards++
		}
		bodies = append(bodies, b)
	}
	if locals != 1 || forwards != 2 {
		t.Fatalf("route split local=%d forwarded=%d, want 1/2", locals, forwards)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
}

// An owner response larger than MaxBodyBytes is a forward error, not a
// truncated relay: forwardSolve must bail before committing anything to
// the client and report false so the caller solves locally, with the
// failure counted in ftclust_cluster_forward_errors_total. A body of
// exactly MaxBodyBytes stays within contract and relays intact, and
// forwardSolveItem applies the same cap+1 detection on the batch path.
func TestClusterForwardOversizeFallsBack(t *testing.T) {
	n := startClusterNode(t, nil, func(c *Config) { c.MaxBodyBytes = 256 })

	bodySize := 512
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(bytes.Repeat([]byte("x"), bodySize))
	}))
	defer owner.Close()
	ownerAddr := owner.Listener.Addr().String()

	errsBefore := n.srv.cluster.Metrics().ForwardErrors.Value()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(""))
	if n.srv.forwardSolve(rec, req, ownerAddr, []byte(solveBodyForSeed(1))) {
		t.Fatal("forwardSolve relayed an over-limit owner body instead of falling back")
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("fallback wrote %d bytes to the client before bailing", rec.Body.Len())
	}
	if route := rec.Header().Get("X-Cluster-Route"); route != "" {
		t.Fatalf("fallback committed X-Cluster-Route=%q before bailing", route)
	}
	if errs := n.srv.cluster.Metrics().ForwardErrors.Value(); errs != errsBefore+1 {
		t.Fatalf("forward_errors went %d → %d, want +1", errsBefore, errs)
	}

	// Exactly at the cap: within contract, relayed byte-for-byte.
	bodySize = 256
	rec = httptest.NewRecorder()
	if !n.srv.forwardSolve(rec, req, ownerAddr, []byte(solveBodyForSeed(1))) {
		t.Fatal("forwardSolve rejected a body of exactly MaxBodyBytes")
	}
	if rec.Body.Len() != 256 {
		t.Fatalf("at-cap relay wrote %d bytes, want 256", rec.Body.Len())
	}
	if route := rec.Header().Get("X-Cluster-Route"); route != "forwarded" {
		t.Fatalf("at-cap relay X-Cluster-Route=%q, want forwarded", route)
	}

	// Batch path: the same over-limit detection, surfaced as a status-0
	// error so solveBatchItem falls back to its local solve.
	bodySize = 512
	var sreq SolveRequest
	if !jsonDecode(solveBodyForSeed(1), &sreq) {
		t.Fatal("bad test body")
	}
	_, _, status, err := n.srv.forwardSolveItem(context.Background(), ownerAddr, &sreq)
	if err == nil {
		t.Fatal("forwardSolveItem accepted an over-limit owner body")
	}
	if status != 0 {
		t.Fatalf("over-limit item status = %d, want 0 (local fallback)", status)
	}
}

// The loop guard: a request already carrying the forwarded marker is
// served locally even by a non-owner, so divergent rings cannot bounce
// a request between nodes.
func TestClusterLoopGuard(t *testing.T) {
	n1 := startClusterNode(t, nil, nil)
	n2 := startClusterNode(t, []string{n1.addr}, nil)
	waitPeers(t, []*clusterNode{n1, n2}, 2)

	// Find a seed whose key n1 does NOT own (it would forward).
	var body string
	found := false
	for seed := 0; seed < 64 && !found; seed++ {
		b := solveBodyForSeed(2000 + seed)
		var req SolveRequest
		if !jsonDecode(b, &req) {
			t.Fatal("bad test body")
		}
		_, key, _, err := n1.srv.prepareSolve(&req)
		if err != nil {
			t.Fatal(err)
		}
		if _, local := n1.srv.cluster.Route(key); !local {
			body, found = b, true
		}
	}
	if !found {
		t.Fatal("no non-owned key found in 64 tries (hash degenerate?)")
	}

	req, _ := http.NewRequest(http.MethodPost, n1.ts.URL+"/v1/solve", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Cluster-Forwarded", "phantom.example:1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("loop-guarded solve: status %d", resp.StatusCode)
	}
	if route := resp.Header.Get("X-Cluster-Route"); route != "local" {
		t.Fatalf("loop-guarded request routed %q, want local (one hop max)", route)
	}
}

func jsonDecode(s string, dst any) bool {
	return json.Unmarshal([]byte(s), dst) == nil
}

// The per-client token bucket sheds with 429 + Retry-After, keys on
// X-Client-ID, exempts forwarded peer traffic, and never sheds the
// metrics endpoint.
func TestRateLimitSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{RatePerSec: 0.5, RateBurst: 2})

	post := func(client string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(gnpSolveBody))
		req.Header.Set("Content-Type", "application/json")
		if client != "" {
			req.Header.Set("X-Client-ID", client)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	for i := 0; i < 2; i++ {
		if resp := post("alice"); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst: status %d", i, resp.StatusCode)
		}
	}
	resp := post("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	// A different client has its own bucket.
	if resp := post("bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("independent client shed: status %d", resp.StatusCode)
	}
	// Forwarded peer traffic bypasses the bucket (the origin node
	// already charged the client).
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(gnpSolveBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", "alice")
	req.Header.Set("X-Cluster-Forwarded", "peer.example:1")
	fr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	fr.Body.Close()
	if fr.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request shed: status %d", fr.StatusCode)
	}
	// Observability endpoints stay reachable during shedding.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("/metrics shed: status %d", mr.StatusCode)
	}

	if m := s.Metrics(); m.ShedRatelimit < 1 {
		t.Fatalf("shed_ratelimit = %d, want ≥1", m.ShedRatelimit)
	}
}

// Queue overflow sheds with 429 + Retry-After and bumps the
// reason="queue" counter; 503 stays reserved for drain/shutdown.
func TestQueueOverflowReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	slow := func(seed int) string {
		return fmt.Sprintf(`{"family":{"name":"gnp","n":40000,"degree":6,"seed":%d},"k":3,"t":6}`, seed)
	}
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			resp, _ := postJSON(t, ts.URL+"/v1/solve", slow(i))
			done <- resp.StatusCode
		}(i)
	}
	// Wait until one solve occupies the worker and one the backlog slot.
	deadline := time.Now().Add(15 * time.Second)
	for s.Metrics().InFlight == 0 || s.Metrics().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never saturated: %+v", s.Metrics())
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/solve", slow(99))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow solve: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("overflow 429 missing Retry-After")
	}
	if m := s.Metrics(); m.ShedQueue < 1 || m.QueueRejected < 1 {
		t.Fatalf("shed counters after overflow: %+v", m)
	}

	for i := 0; i < 2; i++ {
		if status := <-done; status != http.StatusOK {
			t.Fatalf("saturating solve %d finished with status %d", i, status)
		}
	}
}
