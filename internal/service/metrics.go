package service

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics holds the service's expvar-style counters and the solve-latency
// window behind /debug/metrics. All counters are atomics; the latency
// window has its own mutex. Gauges that belong to other components (queue
// depth, active sessions) are read through callbacks installed by the
// server so this file needs no references back.
type metrics struct {
	start time.Time

	solves        atomic.Int64 // completed cold solves (cache misses that ran)
	solveErrors   atomic.Int64 // solves that returned an error
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64 // flight leaders only; followers count as coalesced
	coalesced     atomic.Int64 // requests served by joining an in-flight solve
	batches       atomic.Int64 // /v1/solvebatch requests (items count individually above)
	verifies      atomic.Int64
	queueRejected atomic.Int64 // 503s from a full queue or drain
	canceled      atomic.Int64 // solves lost to deadline/disconnect
	inFlight      atomic.Int64 // requests currently inside a solve job

	sessionsCreated atomic.Int64
	repairs         atomic.Int64

	queueDepth     func() int // installed by the server
	activeSessions func() int

	lat latencyWindow
}

func newMetrics(now time.Time) *metrics {
	return &metrics{
		start:          now,
		queueDepth:     func() int { return 0 },
		activeSessions: func() int { return 0 },
		lat:            latencyWindow{samples: make([]float64, 0, latencyWindowSize)},
	}
}

// latencyWindowSize bounds the solve-latency ring buffer; 1024 samples
// keep the quantiles honest for recent traffic without unbounded growth.
const latencyWindowSize = 1024

// latencyWindow is a fixed-size ring of recent solve latencies in
// milliseconds; quantiles are computed on demand from a sorted copy.
type latencyWindow struct {
	mu      sync.Mutex
	samples []float64
	next    int
	total   int64
}

func (w *latencyWindow) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	w.mu.Lock()
	if len(w.samples) < latencyWindowSize {
		w.samples = append(w.samples, ms)
	} else {
		w.samples[w.next] = ms
		w.next = (w.next + 1) % latencyWindowSize
	}
	w.total++
	w.mu.Unlock()
}

// quantiles returns (p50, p99, lifetime sample count). With no samples it
// returns zeros.
func (w *latencyWindow) quantiles() (p50, p99 float64, total int64) {
	w.mu.Lock()
	sorted := append([]float64(nil), w.samples...)
	total = w.total
	w.mu.Unlock()
	if len(sorted) == 0 {
		return 0, 0, total
	}
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.99), total
}

// MetricsSnapshot is the JSON shape of /debug/metrics.
type MetricsSnapshot struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Solves          int64   `json:"solves"`
	SolveErrors     int64   `json:"solve_errors"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	Coalesced       int64   `json:"coalesced"`
	Batches         int64   `json:"batches"`
	Verifies        int64   `json:"verifies"`
	QueueDepth      int     `json:"queue_depth"`
	QueueRejected   int64   `json:"queue_rejected"`
	Canceled        int64   `json:"canceled"`
	InFlight        int64   `json:"in_flight"`
	SessionsActive  int     `json:"sessions_active"`
	SessionsCreated int64   `json:"sessions_created"`
	Repairs         int64   `json:"repairs"`
	SolveLatencyP50 float64 `json:"solve_latency_p50_ms"`
	SolveLatencyP99 float64 `json:"solve_latency_p99_ms"`
	LatencySamples  int64   `json:"latency_samples"`
}

func (m *metrics) snapshot(now time.Time) MetricsSnapshot {
	p50, p99, samples := m.lat.quantiles()
	return MetricsSnapshot{
		UptimeSeconds:   now.Sub(m.start).Seconds(),
		Solves:          m.solves.Load(),
		SolveErrors:     m.solveErrors.Load(),
		CacheHits:       m.cacheHits.Load(),
		CacheMisses:     m.cacheMisses.Load(),
		Coalesced:       m.coalesced.Load(),
		Batches:         m.batches.Load(),
		Verifies:        m.verifies.Load(),
		QueueDepth:      m.queueDepth(),
		QueueRejected:   m.queueRejected.Load(),
		Canceled:        m.canceled.Load(),
		InFlight:        m.inFlight.Load(),
		SessionsActive:  m.activeSessions(),
		SessionsCreated: m.sessionsCreated.Load(),
		Repairs:         m.repairs.Load(),
		SolveLatencyP50: p50,
		SolveLatencyP99: p99,
		LatencySamples:  samples,
	}
}

func (m *metrics) handler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m.snapshot(time.Now()))
}
