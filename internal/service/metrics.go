package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"ftclust"
	"ftclust/internal/obs"
)

// endpointLabels enumerates the instrumented route patterns; every
// request is classified into exactly one (unknown paths fall into
// "other") so the per-endpoint series stay bounded whatever clients send.
var endpointLabels = []string{
	"/v1/solve", "/v1/solvebatch", "/v1/verify",
	"/v1/session", "/v1/session/{id}", "/v1/session/{id}/fail",
	"/v1/session/{id}/delta",
	"/cluster/v1/gossip", "/cluster/v1/peers",
	"/cluster/v1/fleet", "/cluster/v1/fleet/metrics",
	"/metrics", "/debug/metrics", "/debug/trace", "/debug/trace/{id}",
	"/debug/events", "/healthz", "other",
}

// endpointLabel maps a request path onto its route pattern.
func endpointLabel(path string) string {
	switch path {
	case "/v1/solve", "/v1/solvebatch", "/v1/verify", "/v1/session",
		"/cluster/v1/gossip", "/cluster/v1/peers",
		"/cluster/v1/fleet", "/cluster/v1/fleet/metrics",
		"/metrics", "/debug/metrics", "/debug/trace", "/debug/events", "/healthz":
		return path
	}
	switch {
	case strings.HasPrefix(path, "/debug/trace/"):
		return "/debug/trace/{id}"
	case strings.HasPrefix(path, "/v1/session/"):
		if strings.HasSuffix(path, "/fail") {
			return "/v1/session/{id}/fail"
		}
		if strings.HasSuffix(path, "/delta") {
			return "/v1/session/{id}/delta"
		}
		return "/v1/session/{id}"
	}
	return "other"
}

// solverPhases are the phase labels emitted by the core observer hooks.
var solverPhases = []string{"fractional", "rounding", "verify"}

// metrics holds the service's observability state: atomic counters,
// gauges read through callbacks, and fixed log-bucket histograms — all
// registered in an obs.Registry for /metrics (Prometheus text
// exposition) and summarized as JSON for /debug/metrics. Histograms
// replace the former 1024-sample sorted-copy latency ring: observation
// is lock-free and quantiles come from bucket interpolation.
type metrics struct {
	start time.Time
	reg   *obs.Registry

	solves        *obs.Counter // completed cold solves (cache misses that ran)
	solveErrors   *obs.Counter // solves that returned an error
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter // flight leaders only; followers count as coalesced
	coalesced     *obs.Counter // requests served by joining an in-flight solve
	batches       *obs.Counter // /v1/solvebatch requests (items count individually above)
	batchShared   *obs.Counter // batch items that reused a shared per-family instance
	verifies      *obs.Counter
	queueRejected *obs.Counter // overload rejections (full queue or drain)
	canceled      *obs.Counter // solves lost to deadline/disconnect
	slowRequests  *obs.Counter // requests over the slow-log threshold

	// Admission-control sheds, split by reason so dashboards can tell a
	// saturated solve queue from an abusive client: both surface as 429
	// but only the former says "add capacity".
	shedQueue *obs.Counter // 429s from queue overflow
	shedRate  *obs.Counter // 429s from the per-client token bucket

	// Fleet-scrape accounting: attempts and failures of the per-peer
	// /metrics pulls behind /cluster/v1/fleet. A dead peer degrades the
	// summary and bumps the error counter; it never fails the endpoint.
	fleetScrapes      *obs.Counter
	fleetScrapeErrors *obs.Counter

	sessionsCreated *obs.Counter
	repairs         *obs.Counter // accepted mutation batches (fail + delta)
	assessments     *obs.Counter // damage assessments run (exactly one per accepted batch)
	fallbacks       *obs.Counter // drift-triggered certified re-solves
	sessionsExpired *obs.Counter // sessions swept by the idle-TTL janitor

	// Per-repair series: patch size (nodes entering/leaving S), touched
	// nodes (the damage the worklist actually paid for), promotion rounds
	// and wall time — the damage-proportionality story as metrics.
	repairPatchNodes *obs.Histogram
	repairTouched    *obs.Histogram
	repairIterations *obs.Histogram
	repairDur        *obs.Histogram

	inFlight atomic.Int64 // requests currently inside a solve job (gauge)

	queueDepth     func() int // installed by the server
	activeSessions func() int

	// solveLat times the solver job body only; queueWait times the gap
	// between enqueue and job start. Keeping them separate means cache
	// hits and coalesced followers never touch either series, and a
	// backed-up queue shows up as queue wait instead of inflating the
	// solve-latency quantiles.
	solveLat  *obs.Histogram
	queueWait *obs.Histogram

	httpLat  map[string]*obs.Histogram // per endpoint
	httpReqs map[string]*obs.Counter

	// Solver phase series fed by the core observer hooks: per-phase wall
	// time plus the paper's per-solve figures (LP rounds = 2t², rounding
	// passes, primal−dual gap against the certified lower bound).
	phaseDur  map[string]*obs.Histogram
	lpRounds  *obs.Histogram
	roundingP *obs.Histogram
	dualGap   *obs.Histogram
}

func newMetrics(now time.Time) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		start:          now,
		reg:            reg,
		queueDepth:     func() int { return 0 },
		activeSessions: func() int { return 0 },

		solves:        reg.Counter("ftclust_solves_total", "completed cold solves (cache misses that ran)"),
		solveErrors:   reg.Counter("ftclust_solve_errors_total", "solves that returned an internal error"),
		cacheHits:     reg.Counter("ftclust_cache_hits_total", "requests served from the solution cache"),
		cacheMisses:   reg.Counter("ftclust_cache_misses_total", "flight-leader cache misses"),
		coalesced:     reg.Counter("ftclust_coalesced_total", "requests coalesced onto an in-flight identical solve"),
		batches:       reg.Counter("ftclust_batches_total", "solvebatch requests"),
		batchShared:   reg.Counter("ftclust_batch_shared_instances_total", "batch items that reused a once-materialized family instance"),
		verifies:      reg.Counter("ftclust_verifies_total", "verify requests"),
		queueRejected: reg.Counter("ftclust_queue_rejected_total", "solves rejected by a full queue or drain"),
		canceled:      reg.Counter("ftclust_canceled_total", "solves lost to deadline or disconnect"),
		slowRequests:  reg.Counter("ftclust_slow_requests_total", "requests over the slow-request threshold"),

		shedQueue: reg.Counter("ftclust_shed_total",
			"requests shed by admission control, by reason", "reason", "queue"),
		shedRate: reg.Counter("ftclust_shed_total",
			"requests shed by admission control, by reason", "reason", "ratelimit"),

		fleetScrapes: reg.Counter("ftclust_fleet_scrapes_total",
			"per-peer metric scrapes attempted by the fleet endpoint"),
		fleetScrapeErrors: reg.Counter("ftclust_fleet_scrape_errors_total",
			"fleet scrapes that failed (peer down, timeout, or unparseable body)"),

		sessionsCreated: reg.Counter("ftclust_sessions_created_total", "sessions created"),
		repairs:         reg.Counter("ftclust_repairs_total", "session failure repairs"),
		assessments:     reg.Counter("ftclust_assessments_total", "damage assessments (one per accepted mutation batch)"),
		fallbacks:       reg.Counter("ftclust_repair_fallbacks_total", "drift-triggered certified full re-solves"),
		sessionsExpired: reg.Counter("ftclust_sessions_expired_total", "sessions swept by the idle-TTL janitor"),

		repairPatchNodes: reg.Histogram("ftclust_repair_patch_nodes",
			"nodes entering or leaving S per repair patch",
			obs.ExponentialBuckets(1, 2, 16)),
		repairTouched: reg.Histogram("ftclust_repair_touched_nodes",
			"nodes examined or updated per repair (the damage paid for)",
			obs.ExponentialBuckets(1, 2, 20)),
		repairIterations: reg.Histogram("ftclust_repair_iterations",
			"promotion rounds per repair",
			[]float64{0, 1, 2, 3, 4, 6, 8, 16}),
		repairDur: reg.Histogram("ftclust_repair_duration_seconds",
			"wall time of one session mutation batch (apply + repair)",
			obs.DurationBuckets()),

		solveLat: reg.Histogram("ftclust_solve_duration_seconds",
			"solver job wall time (queue wait excluded; cold solves only)", obs.DurationBuckets()),
		queueWait: reg.Histogram("ftclust_queue_wait_seconds",
			"time between job enqueue and worker pickup", obs.DurationBuckets()),

		httpLat:  make(map[string]*obs.Histogram, len(endpointLabels)),
		httpReqs: make(map[string]*obs.Counter, len(endpointLabels)),
		phaseDur: make(map[string]*obs.Histogram, len(solverPhases)),

		lpRounds: reg.Histogram("ftclust_solver_lp_rounds",
			"Algorithm 1 communication rounds per solve (2t²)",
			[]float64{2, 8, 18, 32, 50, 72, 128, 512, 2048, 8192}),
		roundingP: reg.Histogram("ftclust_solver_rounding_passes",
			"Algorithm 2 sweeps per solve (sampling, plus repair unless skipped)",
			[]float64{1, 2}),
		dualGap: reg.Histogram("ftclust_solver_dual_gap",
			"fractional objective minus certified dual lower bound, per solve",
			obs.ExponentialBuckets(0.5, 2, 20)),
	}
	for _, ep := range endpointLabels {
		m.httpLat[ep] = reg.Histogram("ftclust_http_request_duration_seconds",
			"HTTP request wall time by endpoint", obs.DurationBuckets(), "endpoint", ep)
		m.httpReqs[ep] = reg.Counter("ftclust_http_requests_total",
			"HTTP requests by endpoint", "endpoint", ep)
	}
	for _, phase := range solverPhases {
		m.phaseDur[phase] = reg.Histogram("ftclust_solver_phase_duration_seconds",
			"solver phase wall time", obs.DurationBuckets(), "phase", phase)
	}
	reg.Gauge("ftclust_uptime_seconds", "seconds since server start",
		func() float64 { return time.Since(m.start).Seconds() })
	reg.Gauge("ftclust_queue_depth", "queued (not yet started) solve jobs",
		func() float64 { return float64(m.queueDepth()) })
	reg.Gauge("ftclust_in_flight", "requests currently inside a solve job",
		func() float64 { return float64(m.inFlight.Load()) })
	reg.Gauge("ftclust_sessions_active", "live sessions",
		func() float64 { return float64(m.activeSessions()) })
	return m
}

// observeRepair records one accepted session mutation batch. Exactly one
// assessment happens per batch (the engine's deficit-frontier pass), so
// the assessments counter moves in lockstep with repairs — the regression
// tests pin that ratio.
func (m *metrics) observeRepair(st repairStats, d time.Duration) {
	m.repairs.Add(1)
	m.assessments.Add(1)
	if st.fallback {
		m.fallbacks.Add(1)
	}
	m.repairPatchNodes.Observe(float64(st.patchNodes))
	m.repairTouched.Observe(float64(st.touched))
	m.repairIterations.Observe(float64(st.iterations))
	m.repairDur.ObserveDuration(d)
}

// observeHTTP records one completed request on the per-endpoint series.
func (m *metrics) observeHTTP(endpoint string, d time.Duration) {
	m.httpReqs[endpoint].Inc()
	m.httpLat[endpoint].ObserveDuration(d)
}

// observePhase feeds one solver phase callback into the phase series.
func (m *metrics) observePhase(p ftclust.SolvePhaseInfo) {
	if h, ok := m.phaseDur[p.Name]; ok {
		h.ObserveDuration(p.Duration)
	}
}

// observeSolveStats feeds the per-solve summary into the solver series.
func (m *metrics) observeSolveStats(s ftclust.SolveStats) {
	m.lpRounds.Observe(float64(s.LPRounds))
	m.roundingP.Observe(float64(s.RoundingPasses))
	m.dualGap.Observe(s.DualGap)
}

// MetricsSnapshot is the JSON shape of /debug/metrics.
type MetricsSnapshot struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Solves          int64   `json:"solves"`
	SolveErrors     int64   `json:"solve_errors"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	Coalesced       int64   `json:"coalesced"`
	Batches         int64   `json:"batches"`
	BatchShared     int64   `json:"batch_shared_instances"`
	Verifies        int64   `json:"verifies"`
	QueueDepth      int     `json:"queue_depth"`
	QueueRejected   int64   `json:"queue_rejected"`
	ShedQueue       int64   `json:"shed_queue"`
	ShedRatelimit   int64   `json:"shed_ratelimit"`
	FleetScrapes    int64   `json:"fleet_scrapes"`
	FleetScrapeErrs int64   `json:"fleet_scrape_errors"`
	Canceled        int64   `json:"canceled"`
	InFlight        int64   `json:"in_flight"`
	SlowRequests    int64   `json:"slow_requests"`
	SessionsActive  int     `json:"sessions_active"`
	SessionsCreated int64   `json:"sessions_created"`
	SessionsExpired int64   `json:"sessions_expired"`
	Repairs         int64   `json:"repairs"`
	Assessments     int64   `json:"assessments"`
	RepairFallbacks int64   `json:"repair_fallbacks"`
	SolveLatencyP50 float64 `json:"solve_latency_p50_ms"`
	SolveLatencyP90 float64 `json:"solve_latency_p90_ms"`
	SolveLatencyP99 float64 `json:"solve_latency_p99_ms"`
	LatencySamples  int64   `json:"latency_samples"`
	QueueWaitP50    float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99    float64 `json:"queue_wait_p99_ms"`
	QueueWaitSample int64   `json:"queue_wait_samples"`
}

func (m *metrics) snapshot(now time.Time) MetricsSnapshot {
	toMs := func(sec float64) float64 { return sec * 1e3 }
	return MetricsSnapshot{
		UptimeSeconds:   now.Sub(m.start).Seconds(),
		Solves:          m.solves.Value(),
		SolveErrors:     m.solveErrors.Value(),
		CacheHits:       m.cacheHits.Value(),
		CacheMisses:     m.cacheMisses.Value(),
		Coalesced:       m.coalesced.Value(),
		Batches:         m.batches.Value(),
		BatchShared:     m.batchShared.Value(),
		Verifies:        m.verifies.Value(),
		QueueDepth:      m.queueDepth(),
		QueueRejected:   m.queueRejected.Value(),
		ShedQueue:       m.shedQueue.Value(),
		ShedRatelimit:   m.shedRate.Value(),
		FleetScrapes:    m.fleetScrapes.Value(),
		FleetScrapeErrs: m.fleetScrapeErrors.Value(),
		Canceled:        m.canceled.Value(),
		InFlight:        m.inFlight.Load(),
		SlowRequests:    m.slowRequests.Value(),
		SessionsActive:  m.activeSessions(),
		SessionsCreated: m.sessionsCreated.Value(),
		SessionsExpired: m.sessionsExpired.Value(),
		Repairs:         m.repairs.Value(),
		Assessments:     m.assessments.Value(),
		RepairFallbacks: m.fallbacks.Value(),
		SolveLatencyP50: toMs(m.solveLat.Quantile(0.50)),
		SolveLatencyP90: toMs(m.solveLat.Quantile(0.90)),
		SolveLatencyP99: toMs(m.solveLat.Quantile(0.99)),
		LatencySamples:  m.solveLat.Count(),
		QueueWaitP50:    toMs(m.queueWait.Quantile(0.50)),
		QueueWaitP99:    toMs(m.queueWait.Quantile(0.99)),
		QueueWaitSample: m.queueWait.Count(),
	}
}

// handler serves /debug/metrics. The snapshot is encoded into a buffer
// first so an encoding failure can still yield a clean 500 instead of a
// half-written 200.
func (m *metrics) handler(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.snapshot(time.Now())); err != nil {
		http.Error(w, "encoding metrics snapshot: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// promHandler serves /metrics in Prometheus text exposition format.
func (m *metrics) promHandler(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := m.reg.WritePrometheus(&buf); err != nil {
		http.Error(w, "rendering metrics: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}
