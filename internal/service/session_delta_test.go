package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// pathSessionBody creates a session on an explicit path graph — a
// predictable topology for delta tests.
func pathSessionBody(n, k int) string {
	edges := make([]string, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, fmt.Sprintf("[%d,%d]", i, i+1))
	}
	return fmt.Sprintf(`{"graph":{"n":%d,"edges":[%s]},"k":%d}`, n, strings.Join(edges, ","), k)
}

func createSession(t *testing.T, url, body string) SessionCreateResponse {
	t.Helper()
	resp, b := postJSON(t, url+"/v1/session", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: status %d, body %s", resp.StatusCode, b)
	}
	var cr SessionCreateResponse
	if err := json.Unmarshal(b, &cr); err != nil {
		t.Fatalf("unmarshal create: %v", err)
	}
	return cr
}

// getState fetches the raw state body — raw so tests can assert
// byte-identicality after rejected mutations.
func getState(t *testing.T, url, id string) (SessionState, []byte) {
	t.Helper()
	resp, err := http.Get(url + "/v1/session/" + id)
	if err != nil {
		t.Fatalf("GET session: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read state body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET session: status %d, body %s", resp.StatusCode, b)
	}
	var st SessionState
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("unmarshal state: %v", err)
	}
	return st, b
}

func TestSessionDeltaLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cr := createSession(t, ts.URL, pathSessionBody(10, 1))
	id := cr.SessionID

	// Batch 1: fail one member, bridge around it, and append a node.
	member := cr.Solution.Members[0]
	body := fmt.Sprintf(`{"ops":[
		{"op":"fail","nodes":[%d]},
		{"op":"add_node"},
		{"op":"add_edge","u":10,"v":0}
	]}`, member)
	resp, b := postJSON(t, ts.URL+"/v1/session/"+id+"/delta", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta: status %d, body %s", resp.StatusCode, b)
	}
	var dr DeltaResponse
	if err := json.Unmarshal(b, &dr); err != nil {
		t.Fatalf("unmarshal delta: %v", err)
	}
	if dr.Epoch != 1 || dr.N != 11 || dr.NewlyDead != 1 || dr.LostHeads != 1 {
		t.Fatalf("delta response: %+v", dr)
	}
	if len(dr.Patch.AddedNodes) != 1 || dr.Patch.AddedNodes[0] != 10 {
		t.Fatalf("added nodes: %v", dr.Patch.AddedNodes)
	}
	if dr.Patch.Touched == 0 || !dr.Feasible {
		t.Fatalf("patch missing damage accounting: %+v", dr)
	}
	for i := 1; i < len(dr.Patch.Entered); i++ {
		if dr.Patch.Entered[i-1] >= dr.Patch.Entered[i] {
			t.Fatalf("entered not sorted ascending: %v", dr.Patch.Entered)
		}
	}

	// Batch 2: revive. Epoch advances again; the node comes back live.
	resp, b = postJSON(t, ts.URL+"/v1/session/"+id+"/delta",
		fmt.Sprintf(`{"ops":[{"op":"revive","nodes":[%d]}]}`, member))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revive delta: status %d, body %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Epoch != 2 || dr.Revived != 1 {
		t.Fatalf("revive response: %+v", dr)
	}

	st, _ := getState(t, ts.URL, id)
	if st.Epoch != 2 || st.N != 11 || st.DeadNodes != 0 || !st.Feasible || st.Repairs != 2 {
		t.Fatalf("state after deltas: %+v", st)
	}
	if m := s.Metrics(); m.Repairs != 2 || m.Assessments != 2 {
		t.Fatalf("repair metrics: repairs=%d assessments=%d", m.Repairs, m.Assessments)
	}

	// Malformed ops are rejected with 400 and don't advance the epoch.
	for _, bad := range []string{
		`{"ops":[]}`,
		`{"ops":[{"op":"warp","nodes":[1]}]}`,
		`{"op":"fail"}`,
		`{"ops":[{"op":"fail"}]}`,
		`{"ops":[{"op":"add_edge","u":1}]}`,
		`{"ops":[{"op":"add_node","nodes":[1]}]}`,
		`{"ops":[{"op":"fail","nodes":[1],"u":2}]}`,
	} {
		resp, b := postJSON(t, ts.URL+"/v1/session/"+id+"/delta", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad delta %s: status %d, body %s", bad, resp.StatusCode, b)
		}
	}
	if st2, _ := getState(t, ts.URL, id); st2.Epoch != 2 {
		t.Fatalf("rejected deltas advanced the epoch: %+v", st2)
	}

	// Unknown session: 404.
	if resp, _ := postJSON(t, ts.URL+"/v1/session/nope/delta", `{"ops":[{"op":"add_node"}]}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session delta: status %d", resp.StatusCode)
	}
}

// TestSessionFailRejectionLeavesStateUntouched is the regression test for
// the partial-mutation bug: a fail batch with an out-of-range ID after
// valid IDs must reject the WHOLE batch — previously the valid prefix was
// already marked dead when validation hit the bad ID.
func TestSessionFailRejectionLeavesStateUntouched(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cr := createSession(t, ts.URL, pathSessionBody(10, 1))
	id := cr.SessionID
	member := cr.Solution.Members[0]

	_, before := getState(t, ts.URL, id)

	// Valid member first, out-of-range second: 400, nothing sticks.
	resp, b := postJSON(t, ts.URL+"/v1/session/"+id+"/fail",
		fmt.Sprintf(`{"nodes":[%d,99999]}`, member))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed fail batch: status %d, body %s", resp.StatusCode, b)
	}
	_, after := getState(t, ts.URL, id)
	if string(before) != string(after) {
		t.Fatalf("rejected fail mutated state:\nbefore %s\nafter  %s", before, after)
	}

	// The prefix node must still be alive: failing it now reports 1 fresh
	// death, which it wouldn't if the rejected batch had leaked.
	resp, b = postJSON(t, ts.URL+"/v1/session/"+id+"/fail",
		fmt.Sprintf(`{"nodes":[%d]}`, member))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up fail: status %d, body %s", resp.StatusCode, b)
	}
	var fr FailResponse
	if err := json.Unmarshal(b, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Failed != 1 || fr.FailedTotal != 1 {
		t.Fatalf("prefix node leaked from rejected batch: %+v", fr)
	}

	// Same atomicity for delta batches: valid ops before an invalid one
	// must not apply.
	_, before = getState(t, ts.URL, id)
	resp, _ = postJSON(t, ts.URL+"/v1/session/"+id+"/delta",
		`{"ops":[{"op":"add_node"},{"op":"del_edge","u":0,"v":5}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed delta batch: status %d", resp.StatusCode)
	}
	_, after = getState(t, ts.URL, id)
	if string(before) != string(after) {
		t.Fatalf("rejected delta mutated state:\nbefore %s\nafter  %s", before, after)
	}
}

// TestSessionSingleAssessmentPerFail pins the double-assessment fix: each
// accepted fail runs exactly one damage assessment (the engine's deficit
// pass), tracked by the assessments counter moving in lockstep with
// repairs.
func TestSessionSingleAssessmentPerFail(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cr := createSession(t, ts.URL, `{"family":{"name":"gnp","n":120,"degree":6,"seed":5},"k":2}`)
	id := cr.SessionID

	for wave := 0; wave < 4; wave++ {
		node := cr.Solution.Members[wave]
		resp, b := postJSON(t, ts.URL+"/v1/session/"+id+"/fail",
			fmt.Sprintf(`{"nodes":[%d]}`, node))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("wave %d: status %d, body %s", wave, resp.StatusCode, b)
		}
		m := s.Metrics()
		if m.Assessments != int64(wave+1) {
			t.Fatalf("wave %d: assessments = %d, want exactly %d", wave, m.Assessments, wave+1)
		}
		if m.Assessments != m.Repairs {
			t.Fatalf("assessments (%d) diverged from repairs (%d)", m.Assessments, m.Repairs)
		}
	}
	// Rejected requests assess nothing.
	postJSON(t, ts.URL+"/v1/session/"+id+"/fail", `{"nodes":[99999]}`)
	if m := s.Metrics(); m.Assessments != 4 {
		t.Fatalf("rejected fail ran an assessment: %d", m.Assessments)
	}
}

// TestSessionDeltaDriftFallback drives enough topology churn through one
// batch to trip the engine's drift bound and asserts the certified
// re-solve path: fallback flagged, drift reset by compaction, session
// still feasible and usable.
func TestSessionDeltaDriftFallback(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Path of 120 nodes: 119 base edges, so the drift bound is the
	// MinDriftEdges floor (64).
	cr := createSession(t, ts.URL, pathSessionBody(120, 1))
	id := cr.SessionID

	// 70 chords from node 0 — none exist on a path — overflow the bound.
	ops := make([]string, 0, 70)
	for v := 2; v < 72; v++ {
		ops = append(ops, fmt.Sprintf(`{"op":"add_edge","u":0,"v":%d}`, v))
	}
	resp, b := postJSON(t, ts.URL+"/v1/session/"+id+"/delta",
		`{"ops":[`+strings.Join(ops, ",")+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drift batch: status %d, body %s", resp.StatusCode, b)
	}
	var dr DeltaResponse
	if err := json.Unmarshal(b, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Fallback {
		t.Fatalf("drift overflow did not trigger fallback: %+v", dr)
	}
	if !dr.Feasible || dr.Size == 0 {
		t.Fatalf("fallback left a broken session: %+v", dr)
	}
	st, _ := getState(t, ts.URL, id)
	if st.Drift != 0 {
		t.Fatalf("fallback must compact the overlay: drift = %d", st.Drift)
	}
	if st.Fallbacks != 1 || !st.Feasible {
		t.Fatalf("state after fallback: %+v", st)
	}
	if m := s.Metrics(); m.RepairFallbacks != 1 {
		t.Fatalf("fallback counter = %d, want 1", m.RepairFallbacks)
	}

	// The session keeps absorbing deltas on the compacted base.
	resp, b = postJSON(t, ts.URL+"/v1/session/"+id+"/delta",
		`{"ops":[{"op":"del_edge","u":0,"v":2}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fallback delta: status %d, body %s", resp.StatusCode, b)
	}
}

// TestSessionDeltaFallbackWithAllNodesDead pins the degenerate fallback:
// drift overflows while every node is dead, so there is no live subgraph
// to re-solve. The session must adopt the (vacuously feasible) empty set
// instead of erroring with a half-applied batch.
func TestSessionDeltaFallbackWithAllNodesDead(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cr := createSession(t, ts.URL, pathSessionBody(120, 1))
	id := cr.SessionID

	nodes := make([]string, 120)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("%d", i)
	}
	resp, b := postJSON(t, ts.URL+"/v1/session/"+id+"/fail",
		`{"nodes":[`+strings.Join(nodes, ",")+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fail all: status %d, body %s", resp.StatusCode, b)
	}

	// Chords between dead nodes are still topology churn; 70 of them
	// overflow the drift bound with zero live nodes.
	ops := make([]string, 0, 70)
	for v := 2; v < 72; v++ {
		ops = append(ops, fmt.Sprintf(`{"op":"add_edge","u":0,"v":%d}`, v))
	}
	resp, b = postJSON(t, ts.URL+"/v1/session/"+id+"/delta",
		`{"ops":[`+strings.Join(ops, ",")+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dead-graph drift batch: status %d, body %s", resp.StatusCode, b)
	}
	var dr DeltaResponse
	if err := json.Unmarshal(b, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Fallback || dr.Size != 0 {
		t.Fatalf("all-dead fallback response: %+v", dr)
	}
	st, _ := getState(t, ts.URL, id)
	if st.Drift != 0 || st.LiveNodes != 0 || !st.Feasible {
		t.Fatalf("state after all-dead fallback: %+v", st)
	}
}

func TestSessionTTLSweep(t *testing.T) {
	// Direct sweep: everything idle before the deadline goes away.
	s, ts := newTestServer(t, Config{SessionTTL: -1})
	cr := createSession(t, ts.URL, pathSessionBody(10, 1))
	if n := s.sessions.sweep(time.Now().Add(time.Second)); n != 1 {
		t.Fatalf("sweep removed %d sessions, want 1", n)
	}
	resp, err := http.Get(ts.URL + "/v1/session/" + cr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("swept session still reachable: status %d", resp.StatusCode)
	}
}

func TestSessionTTLJanitorExpiresIdleSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("janitor interval floors at 1s")
	}
	s, ts := newTestServer(t, Config{SessionTTL: 100 * time.Millisecond})
	cr := createSession(t, ts.URL, pathSessionBody(10, 1))

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.sessions.len() == 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if n := s.sessions.len(); n != 0 {
		t.Fatalf("janitor left %d sessions after TTL", n)
	}
	resp, err := http.Get(ts.URL + "/v1/session/" + cr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired session still reachable: status %d", resp.StatusCode)
	}
	if m := s.Metrics(); m.SessionsExpired < 1 {
		t.Fatalf("sessions_expired = %d, want ≥ 1", m.SessionsExpired)
	}
}

// TestConcurrentSessionOps hammers one session with parallel fail, delta,
// state and delete traffic plus a second session being created and
// destroyed — the -race suite for the session layer. Outcomes are not
// asserted per-request (conflicting edge ops legitimately 400); the
// invariants are: no race, no panic, only documented statuses, and a
// feasible session at the end.
func TestConcurrentSessionOps(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cr := createSession(t, ts.URL, `{"family":{"name":"gnp","n":200,"degree":6,"seed":9},"k":2}`)
	id := cr.SessionID

	allowed := map[int]bool{
		http.StatusOK:         true,
		http.StatusBadRequest: true,
		http.StatusNotFound:   true, // the churned second session
		http.StatusNoContent:  true,
		http.StatusCreated:    true,
	}
	var wg sync.WaitGroup
	post := func(path, body string) {
		resp, b := postJSON(t, ts.URL+path, body)
		if !allowed[resp.StatusCode] {
			t.Errorf("POST %s: undocumented status %d, body %s", path, resp.StatusCode, b)
		}
	}

	for w := 0; w < 4; w++ {
		wg.Add(4)
		// Failure waves on disjoint member ranges.
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				node := cr.Solution.Members[(w*8+i)%len(cr.Solution.Members)]
				post("/v1/session/"+id+"/fail", fmt.Sprintf(`{"nodes":[%d]}`, node))
			}
		}(w)
		// Delta churn: edge toggles and node appends (conflicts 400).
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				u, v := (w*13+i)%200, (w*29+i*7+1)%200
				if u == v {
					v = (v + 1) % 200
				}
				post("/v1/session/"+id+"/delta", fmt.Sprintf(
					`{"ops":[{"op":"add_edge","u":%d,"v":%d},{"op":"add_node"}]}`, u, v))
			}
		}(w)
		// State reads.
		go func() {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				resp, err := http.Get(ts.URL + "/v1/session/" + id)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("state read: status %d", resp.StatusCode)
				}
			}
		}()
		// Session create/delete churn beside the main session.
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				resp, b := postJSON(t, ts.URL+"/v1/session", pathSessionBody(10, 1))
				if resp.StatusCode != http.StatusCreated {
					t.Errorf("churn create: status %d, body %s", resp.StatusCode, b)
					return
				}
				var c SessionCreateResponse
				if err := json.Unmarshal(b, &c); err != nil {
					t.Error(err)
					return
				}
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+c.SessionID, nil)
				dresp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				dresp.Body.Close()
			}
		}()
	}
	wg.Wait()

	st, _ := getState(t, ts.URL, id)
	if !st.Feasible || st.Size == 0 {
		t.Fatalf("session broken after concurrent churn: %+v", st)
	}
}
