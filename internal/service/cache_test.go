package service

import "testing"

func TestLRUCacheEvictsOldest(t *testing.T) {
	c := newLRUCache(2)
	a, b, d := &SolveResponse{Size: 1}, &SolveResponse{Size: 2}, &SolveResponse{Size: 3}
	c.Put("a", a)
	c.Put("b", b)
	if _, ok := c.Get("a"); !ok { // refresh a; b is now oldest
		t.Fatal("a should be cached")
	}
	c.Put("d", d)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	if got, ok := c.Get("a"); !ok || got != a {
		t.Fatal("a should have survived the eviction")
	}
	if got, ok := c.Get("d"); !ok || got != d {
		t.Fatal("d should be cached")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUCachePutRefreshesValue(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", &SolveResponse{Size: 1})
	v2 := &SolveResponse{Size: 9}
	c.Put("a", v2)
	if got, _ := c.Get("a"); got != v2 {
		t.Fatal("Put of an existing key must replace the value")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestLRUCacheDisabled(t *testing.T) {
	c := newLRUCache(-1)
	c.Put("a", &SolveResponse{})
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache must always miss")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache must stay empty")
	}
}

func TestSolveCacheKeyDistinguishesOptions(t *testing.T) {
	base := solveCacheKey("h", 3, 3, 1, false)
	for name, other := range map[string]string{
		"different hash": solveCacheKey("g", 3, 3, 1, false),
		"different k":    solveCacheKey("h", 4, 3, 1, false),
		"different t":    solveCacheKey("h", 3, 4, 1, false),
		"different seed": solveCacheKey("h", 3, 3, 2, false),
		"local delta":    solveCacheKey("h", 3, 3, 1, true),
	} {
		if other == base {
			t.Errorf("%s: key collides with base", name)
		}
	}
	if solveCacheKey("h", 3, 3, 1, false) != base {
		t.Error("identical parameters must give identical keys")
	}
}
