package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

const gnpSolveBody = `{"family":{"name":"gnp","n":120,"degree":6,"seed":5},"k":2}`

func TestSolveEndpointAndCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/solve", gnpSolveBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: status %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("cold solve X-Cache = %q, want miss", got)
	}
	var sol SolutionJSON
	if err := json.Unmarshal(body, &sol); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !sol.Verified || sol.Size == 0 || sol.Size != len(sol.Members) || sol.N != 120 {
		t.Fatalf("implausible solution: %+v", sol)
	}
	if sol.Rounds != 2*3*3+4 {
		t.Fatalf("rounds = %d, want %d", sol.Rounds, 2*3*3+4)
	}
	if sol.Kappa == 0 || sol.CertifiedLowerBound <= 0 {
		t.Fatalf("certificate missing: kappa=%v lb=%v", sol.Kappa, sol.CertifiedLowerBound)
	}

	// Identical request: cache hit, byte-identical body.
	resp2, body2 := postJSON(t, ts.URL+"/v1/solve", gnpSolveBody)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("repeat solve: status %d, X-Cache %q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cache hit body differs from cold-solve body")
	}
	// Different seed: miss.
	resp3, _ := postJSON(t, ts.URL+"/v1/solve",
		`{"family":{"name":"gnp","n":120,"degree":6,"seed":6},"k":2}`)
	if resp3.Header.Get("X-Cache") != "miss" {
		t.Fatal("different seed must miss the cache")
	}

	m := s.Metrics()
	if m.CacheHits < 1 || m.CacheMisses < 2 || m.Solves < 2 {
		t.Fatalf("metrics after solves: %+v", m)
	}
	if m.LatencySamples < 2 || m.SolveLatencyP99 < m.SolveLatencyP50 {
		t.Fatalf("latency metrics: %+v", m)
	}
}

func TestSolveExplicitGraph(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// 5-cycle, k=1.
	body := `{"graph":{"n":5,"edges":[[0,1],[1,2],[2,3],[3,4],[0,4]]},"k":1}`
	resp, b := postJSON(t, ts.URL+"/v1/solve", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var sol SolutionJSON
	if err := json.Unmarshal(b, &sol); err != nil {
		t.Fatal(err)
	}
	if !sol.Verified || sol.N != 5 || sol.Edges != 5 {
		t.Fatalf("bad solution: %+v", sol)
	}
}

func TestSolveBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxNodes: 1000})
	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed json", `{"family":`, http.StatusBadRequest},
		{"unknown field", `{"fam":{"name":"gnp"},"k":2}`, http.StatusBadRequest},
		{"no instance", `{"k":2}`, http.StatusBadRequest},
		{"both instances", `{"graph":{"n":2,"edges":[[0,1]]},"family":{"name":"gnp","n":5,"degree":2,"seed":1},"k":1}`, http.StatusBadRequest},
		{"k zero", `{"family":{"name":"gnp","n":50,"degree":4,"seed":1},"k":0}`, http.StatusBadRequest},
		{"k negative", `{"family":{"name":"gnp","n":50,"degree":4,"seed":1},"k":-2}`, http.StatusBadRequest},
		{"k exceeds n", `{"family":{"name":"gnp","n":50,"degree":4,"seed":1},"k":51}`, http.StatusBadRequest},
		{"unknown family", `{"family":{"name":"hypercube","n":50,"degree":4,"seed":1},"k":2}`, http.StatusBadRequest},
		{"n over limit", `{"family":{"name":"gnp","n":100000,"degree":4,"seed":1},"k":2}`, http.StatusBadRequest},
		{"self loop", `{"graph":{"n":3,"edges":[[1,1]]},"k":1}`, http.StatusBadRequest},
		{"edge out of range", `{"graph":{"n":3,"edges":[[0,7]]},"k":1}`, http.StatusBadRequest},
		{"t out of range", `{"family":{"name":"gnp","n":50,"degree":4,"seed":1},"k":2,"t":200}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/solve", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON with error field: %s", tc.name, body)
		}
	}
}

func TestSolveOversizedPayload(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	big := fmt.Sprintf(`{"graph":{"n":4,"edges":[[0,1]]},"k":1,"t":3,"seed":%s1}`,
		strings.Repeat(" ", 500))
	resp, body := postJSON(t, ts.URL+"/v1/solve", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (body %s)", resp.StatusCode, body)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// A star: center 0 dominates under k=1 with S={0}.
	star := `"graph":{"n":5,"edges":[[0,1],[0,2],[0,3],[0,4]]}`
	resp, body := postJSON(t, ts.URL+"/v1/verify",
		`{`+star+`,"k":1,"members":[0],"convention":"standard"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(body, &vr); err != nil || !vr.OK {
		t.Fatalf("star with S={0} must verify: %s", body)
	}

	// Leaf-only set fails standard domination of the other leaves.
	_, body = postJSON(t, ts.URL+"/v1/verify", `{`+star+`,"k":1,"members":[1]}`)
	if err := json.Unmarshal(body, &vr); err != nil || vr.OK || vr.Reason == "" {
		t.Fatalf("leaf-only set must fail with a reason: %s", body)
	}

	for name, bad := range map[string]string{
		"k zero":         `{` + star + `,"k":0,"members":[0]}`,
		"bad convention": `{` + star + `,"k":1,"members":[0],"convention":"open"}`,
		"member range":   `{` + star + `,"k":1,"members":[9]}`,
		"no instance":    `{"k":1,"members":[0]}`,
	} {
		resp, _ := postJSON(t, ts.URL+"/v1/verify", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if s.Metrics().Verifies < 2 {
		t.Fatalf("verify counter: %+v", s.Metrics())
	}
}

func TestSessionLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/session", gnpSolveBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d, body %s", resp.StatusCode, body)
	}
	var created SessionCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.SessionID == "" || created.Solution == nil || !created.Solution.Verified {
		t.Fatalf("bad create response: %s", body)
	}
	coldSolves := s.Metrics().Solves

	// Status.
	resp, body = postJSON(t, ts.URL+"/v1/session/"+created.SessionID+"/fail",
		fmt.Sprintf(`{"nodes":[%d,%d]}`, created.Solution.Members[0], created.Solution.Members[1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fail: status %d, body %s", resp.StatusCode, body)
	}
	var fr FailResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.LostHeads != 2 || fr.FailedTotal != 2 || !fr.Feasible {
		t.Fatalf("fail response: %+v", fr)
	}
	// The session survived via local repair: no additional full solve ran.
	if got := s.Metrics().Solves; got != coldSolves {
		t.Fatalf("failure injection triggered a full re-solve (%d -> %d)", coldSolves, got)
	}
	if s.Metrics().Repairs != 1 {
		t.Fatalf("repairs counter: %+v", s.Metrics())
	}

	// Status reflects the damage and the repair.
	getResp, err := http.Get(ts.URL + "/v1/session/" + created.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(getResp.Body)
	getResp.Body.Close()
	var st SessionState
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.DeadNodes != 2 || st.Repairs != 1 || !st.Feasible || st.N != 120 {
		t.Fatalf("session state: %+v", st)
	}

	// Bad failure payloads.
	resp, _ = postJSON(t, ts.URL+"/v1/session/"+created.SessionID+"/fail", `{"nodes":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty nodes: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/session/"+created.SessionID+"/fail", `{"nodes":[5000]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range node: status %d, want 400", resp.StatusCode)
	}

	// Unknown session.
	resp, _ = postJSON(t, ts.URL+"/v1/session/nope/fail", `{"nodes":[1]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session fail: status %d, want 404", resp.StatusCode)
	}

	// Delete, then everything 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+created.SessionID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", delResp.StatusCode)
	}
	getResp2, err := http.Get(ts.URL + "/v1/session/" + created.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	getResp2.Body.Close()
	if getResp2.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", getResp2.StatusCode)
	}
	if s.Metrics().SessionsActive != 0 {
		t.Fatalf("sessions_active after delete: %+v", s.Metrics())
	}
}

// Sessions keep absorbing waves of failures with local repair only.
func TestSessionRepeatedFailureWaves(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/session",
		`{"family":{"name":"gnp","n":200,"degree":10,"seed":11},"k":3}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var created SessionCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	coldSolves := s.Metrics().Solves
	members := created.Solution.Members
	for wave := 0; wave < 4; wave++ {
		resp, body := postJSON(t, ts.URL+"/v1/session/"+created.SessionID+"/fail",
			fmt.Sprintf(`{"nodes":[%d,%d]}`, members[2*wave], members[2*wave+1]))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("wave %d: %d %s", wave, resp.StatusCode, body)
		}
		var fr FailResponse
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatal(err)
		}
		if !fr.Feasible {
			t.Fatalf("wave %d left the session infeasible: %+v", wave, fr)
		}
	}
	if s.Metrics().Solves != coldSolves {
		t.Fatal("failure waves must not trigger full re-solves")
	}
	if s.Metrics().Repairs != 4 {
		t.Fatalf("repairs = %d, want 4", s.Metrics().Repairs)
	}
}

// 32 concurrent identical solves must all succeed with byte-identical
// bodies, and exactly ONE of them may actually run the solver: the first
// becomes the flight leader, overlapping duplicates coalesce onto it, and
// stragglers arriving after completion hit the cache. The instance is big
// enough (n=2000, t=4) that the requests genuinely overlap the solve.
func TestConcurrentSolvesDeterministic(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	const parallel = 32
	const body = `{"family":{"name":"gnp","n":2000,"degree":8,"seed":5},"k":2,"t":4}`
	bodies := make([][]byte, parallel)
	caches := make([]string, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			caches[i] = resp.Header.Get("X-Cache")
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	for i := 1; i < parallel; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	for i, c := range caches {
		if c != "miss" && c != "hit" && c != "coalesced" {
			t.Errorf("request %d: X-Cache = %q", i, c)
		}
	}
	m := s.Metrics()
	if m.Solves != 1 {
		t.Errorf("solves = %d, want exactly 1 (coalescing + cache must absorb the rest)", m.Solves)
	}
	if m.Coalesced < 1 {
		t.Errorf("coalesced = %d, want ≥ 1 of %d overlapping duplicates", m.Coalesced, parallel)
	}
	if got := m.CacheMisses + m.CacheHits + m.Coalesced; got != parallel {
		t.Errorf("misses+hits+coalesced = %d, want %d", got, parallel)
	}
}

// Coalesced followers and the leader serialize the same *SolveResponse:
// one deterministic body, one solve, whatever the interleaving.
func TestSolveBatchEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	item := `{"family":{"name":"gnp","n":800,"degree":8,"seed":9},"k":2}`
	distinct := `{"family":{"name":"gnp","n":800,"degree":8,"seed":10},"k":2}`
	invalid := `{"family":{"name":"gnp","n":50,"degree":4,"seed":1},"k":0}`
	resp, body := postJSON(t, ts.URL+"/v1/solvebatch",
		`{"requests":[`+item+`,`+distinct+`,`+item+`,`+invalid+`,`+item+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchSolveResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(br.Results))
	}
	for i, idx := range []int{0, 1, 2, 4} {
		r := br.Results[idx]
		if r.Error != "" || r.Status != http.StatusOK || r.Solution == nil || !r.Solution.Verified {
			t.Fatalf("item %d (result %d): %+v", i, idx, r)
		}
		if c := r.Cache; c != "miss" && c != "hit" && c != "coalesced" {
			t.Fatalf("result %d: cache = %q", idx, c)
		}
	}
	if r := br.Results[3]; r.Error == "" || r.Status != http.StatusBadRequest || r.Solution != nil {
		t.Fatalf("invalid item must fail with 400 in place: %+v", r)
	}
	// The three identical items share one solve via cache + coalescing and
	// must be equal; the distinct seed is a different instance.
	a, _ := json.Marshal(br.Results[0].Solution)
	b2, _ := json.Marshal(br.Results[2].Solution)
	c, _ := json.Marshal(br.Results[4].Solution)
	if !bytes.Equal(a, b2) || !bytes.Equal(a, c) {
		t.Fatal("identical batch items returned different solutions")
	}
	if bytes.Equal(a, mustMarshal(t, br.Results[1].Solution)) {
		t.Fatal("distinct-seed item returned the duplicate's solution")
	}
	m := s.Metrics()
	if m.Batches != 1 {
		t.Errorf("batches = %d, want 1", m.Batches)
	}
	if m.Solves != 2 {
		t.Errorf("solves = %d, want 2 (three duplicates coalesce/hit)", m.Solves)
	}

	// Validation: empty and oversized batches are rejected whole.
	resp, _ = postJSON(t, ts.URL+"/v1/solvebatch", `{"requests":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	big := `{"requests":[` + item + strings.Repeat(`,`+item, maxBatchItems) + `]}`
	resp, _ = postJSON(t, ts.URL+"/v1/solvebatch", big)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}

// Same-family batch items must share one materialized instance (one
// generation + one canonical hash for the whole batch) even when their
// solver parameters differ — distinct cache keys, so the cache layer
// cannot dedupe them.
func TestSolveBatchSharesFamilyInstances(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	items := make([]string, 0, 6)
	for k := 1; k <= 6; k++ {
		items = append(items,
			fmt.Sprintf(`{"family":{"name":"gnp","n":600,"degree":8,"seed":3},"k":%d}`, k))
	}
	resp, body := postJSON(t, ts.URL+"/v1/solvebatch",
		`{"requests":[`+strings.Join(items, ",")+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchSolveResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	sizes := make(map[int]bool)
	for i, r := range br.Results {
		if r.Error != "" || r.Solution == nil || !r.Solution.Verified {
			t.Fatalf("item %d: %+v", i, r)
		}
		sizes[len(r.Solution.Members)] = true
	}
	if len(sizes) < 2 {
		t.Error("different k values produced identical solutions — items not solved independently")
	}
	m := s.Metrics()
	if m.BatchShared != 5 {
		t.Errorf("batch_shared_instances = %d, want 5 (six items, one family)", m.BatchShared)
	}
	if m.Solves != 6 {
		t.Errorf("solves = %d, want 6 (distinct k → distinct cache keys)", m.Solves)
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A request deadline shorter than the solve aborts with 504 and bumps the
// canceled counter; the server stays healthy.
func TestSolveDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{SolveTimeout: time.Nanosecond})
	resp, body := postJSON(t, ts.URL+"/v1/solve",
		`{"family":{"name":"gnp","n":2000,"degree":8,"seed":1},"k":3,"t":6}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if s.Metrics().Canceled < 1 {
		t.Fatalf("canceled counter: %+v", s.Metrics())
	}
}

// Shutdown must let an in-flight solve finish (and serve its response)
// while rejecting new work with 503.
func TestShutdownDrainsInFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	type result struct {
		status int
		body   []byte
	}
	resCh := make(chan result, 1)
	go func() {
		// gnp generates in O(n+m) expected time since the geometric-skip
		// rewrite, so the request reaches the solver quickly and the solve
		// itself (t=6 ⇒ 72 rounds over 40k nodes) is the slow part.
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
			strings.NewReader(`{"family":{"name":"gnp","n":40000,"degree":6,"seed":3},"k":3,"t":6}`))
		if err != nil {
			resCh <- result{status: -1}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resCh <- result{status: resp.StatusCode, body: b}
	}()

	// Wait until the solve is actually in flight.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().InFlight == 0 && s.Metrics().Solves == 0 {
		if time.Now().After(deadline) {
			t.Fatal("solve never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	res := <-resCh
	if res.status != http.StatusOK {
		t.Fatalf("in-flight solve during shutdown: status %d, body %s", res.status, res.body)
	}
	var sol SolutionJSON
	if err := json.Unmarshal(res.body, &sol); err != nil || !sol.Verified {
		t.Fatalf("drained solve returned a bad body: %s", res.body)
	}

	// After the drain, new solves are rejected crisply.
	resp, _ := postJSON(t, ts.URL+"/v1/solve", gnpSolveBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain solve: status %d, want 503", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/solve", gnpSolveBody)
	resp, err := http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if snap.Solves < 1 || snap.LatencySamples < 1 {
		t.Fatalf("metrics snapshot: %+v", snap)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hz.StatusCode)
	}
}

// Sessions are capped; the cap sheds with 429 + Retry-After (503 is
// reserved for drain/shutdown), and a delete frees the slot.
func TestSessionLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 1})
	resp, body := postJSON(t, ts.URL+"/v1/session", gnpSolveBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first session: %d", resp.StatusCode)
	}
	var created SessionCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("unmarshal create: %v", err)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/session", gnpSolveBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit session: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("over-limit session response missing Retry-After")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+created.SessionID, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE session: %v", err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent && del.StatusCode != http.StatusOK {
		t.Fatalf("DELETE session: status %d", del.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/session", gnpSolveBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-delete session: status %d, want 201", resp.StatusCode)
	}
}
