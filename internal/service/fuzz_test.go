package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzSolveRequestDecode drives arbitrary bytes through the full
// POST /v1/solve path — size cap, strict JSON decode, instance
// validation, solve — and asserts the decode layer's contract: the
// handler never panics, every outcome is a documented status code, and
// every response body is well-formed JSON (a SolutionJSON on 200, an
// errorBody otherwise). Solves are kept cheap by capping MaxNodes.
func FuzzSolveRequestDecode(f *testing.F) {
	s := New(Config{
		Workers:      2,
		MaxNodes:     128,
		MaxBodyBytes: 1 << 12,
		SolveTimeout: 5 * time.Second,
		CacheSize:    -1, // every input exercises the full path, not the cache
	})
	f.Cleanup(func() { s.Shutdown(context.Background()) })
	h := s.Handler()

	f.Add([]byte(`{"graph":{"n":3,"edges":[[0,1],[1,2]]},"k":1}`))
	f.Add([]byte(`{"family":{"name":"gnp","n":20,"degree":4,"seed":7},"k":2}`))
	f.Add([]byte(`{"graph":{"n":2,"edges":[[0,0]]},"k":1}`)) // self-loop
	f.Add([]byte(`{"k":1}`))                                 // neither graph nor family
	f.Add([]byte(`{"graph":{"n":-5},"k":1}`))
	f.Add([]byte(`{"unknown_field":true}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic

		switch rec.Code {
		case http.StatusOK,
			http.StatusBadRequest,
			http.StatusRequestEntityTooLarge,
			http.StatusTooManyRequests,
			http.StatusInternalServerError,
			http.StatusServiceUnavailable,
			http.StatusGatewayTimeout:
		default:
			t.Fatalf("undocumented status %d for body %q", rec.Code, body)
		}

		if rec.Code == http.StatusOK {
			var sol SolutionJSON
			if err := json.Unmarshal(rec.Body.Bytes(), &sol); err != nil {
				t.Fatalf("200 body is not a SolutionJSON: %v", err)
			}
			return
		}
		var eb struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
			t.Fatalf("status %d body %q is not an errorBody: %v", rec.Code, rec.Body.Bytes(), err)
		}
		if eb.Error == "" {
			t.Fatalf("status %d carries an empty error message", rec.Code)
		}
	})
}

// FuzzSessionDeltaDecode drives arbitrary bytes through the full
// POST /v1/session/{id}/delta path against one live session and asserts
// the transactional contract: the handler never panics, every outcome is
// a documented status code (200, 400 or 413), every non-200 body is an
// errorBody — and, the heart of the batch-validation fix, any non-200
// outcome leaves the session state byte-identical. The session is shared
// across iterations, so accepted batches keep mutating it into arbitrary
// churned configurations; the no-partial-mutation invariant must hold
// from every one of them.
func FuzzSessionDeltaDecode(f *testing.F) {
	s := New(Config{
		Workers:      2,
		MaxNodes:     128,
		MaxBodyBytes: 1 << 12,
		SolveTimeout: 5 * time.Second,
		CacheSize:    -1,
		SessionTTL:   -1, // no janitor: the fixture session must outlive the run
	})
	f.Cleanup(func() { s.Shutdown(context.Background()) })
	h := s.Handler()

	create := httptest.NewRequest(http.MethodPost, "/v1/session",
		bytes.NewReader([]byte(`{"graph":{"n":16,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,8],[8,9],[9,10],[10,11],[11,12],[12,13],[13,14],[14,15]]},"k":2}`)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, create)
	if rec.Code != http.StatusCreated {
		f.Fatalf("fixture session: status %d, body %s", rec.Code, rec.Body.Bytes())
	}
	var cr SessionCreateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		f.Fatal(err)
	}
	deltaURL := "/v1/session/" + cr.SessionID + "/delta"
	stateURL := "/v1/session/" + cr.SessionID

	state := func(t *testing.T) []byte {
		req := httptest.NewRequest(http.MethodGet, stateURL, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("state read: status %d", rec.Code)
		}
		return rec.Body.Bytes()
	}

	f.Add([]byte(`{"ops":[{"op":"fail","nodes":[0,3]}]}`))
	f.Add([]byte(`{"ops":[{"op":"revive","nodes":[0]}]}`))
	f.Add([]byte(`{"ops":[{"op":"add_node"},{"op":"add_edge","u":16,"v":0}]}`))
	f.Add([]byte(`{"ops":[{"op":"del_edge","u":0,"v":1},{"op":"add_edge","u":0,"v":1}]}`))
	f.Add([]byte(`{"ops":[{"op":"fail","nodes":[2]},{"op":"fail","nodes":[9999]}]}`)) // valid prefix, bad tail
	f.Add([]byte(`{"ops":[{"op":"add_edge","u":1,"v":1}]}`))                          // self-loop
	f.Add([]byte(`{"ops":[{"op":"warp"}]}`))
	f.Add([]byte(`{"ops":[{"op":"fail"}]}`))
	f.Add([]byte(`{"ops":[{"op":"add_edge","u":3}]}`))
	f.Add([]byte(`{"ops":[]}`))
	f.Add([]byte(`{"unknown":1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		before := state(t)

		req := httptest.NewRequest(http.MethodPost, deltaURL, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic

		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("undocumented status %d for body %q", rec.Code, body)
		}

		if rec.Code == http.StatusOK {
			var dr DeltaResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &dr); err != nil {
				t.Fatalf("200 body is not a DeltaResponse: %v", err)
			}
			if !dr.Feasible {
				t.Fatalf("accepted delta left an infeasible session: %s", rec.Body.Bytes())
			}
			return
		}
		var eb struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
			t.Fatalf("status %d body %q is not an errorBody: %v", rec.Code, rec.Body.Bytes(), err)
		}
		if eb.Error == "" {
			t.Fatalf("status %d carries an empty error message", rec.Code)
		}
		if after := state(t); !bytes.Equal(before, after) {
			t.Fatalf("rejected delta (status %d, body %q) mutated session state:\nbefore %s\nafter  %s",
				rec.Code, body, before, after)
		}
	})
}
