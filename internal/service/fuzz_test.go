package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzSolveRequestDecode drives arbitrary bytes through the full
// POST /v1/solve path — size cap, strict JSON decode, instance
// validation, solve — and asserts the decode layer's contract: the
// handler never panics, every outcome is a documented status code, and
// every response body is well-formed JSON (a SolutionJSON on 200, an
// errorBody otherwise). Solves are kept cheap by capping MaxNodes.
func FuzzSolveRequestDecode(f *testing.F) {
	s := New(Config{
		Workers:      2,
		MaxNodes:     128,
		MaxBodyBytes: 1 << 12,
		SolveTimeout: 5 * time.Second,
		CacheSize:    -1, // every input exercises the full path, not the cache
	})
	f.Cleanup(func() { s.Shutdown(context.Background()) })
	h := s.Handler()

	f.Add([]byte(`{"graph":{"n":3,"edges":[[0,1],[1,2]]},"k":1}`))
	f.Add([]byte(`{"family":{"name":"gnp","n":20,"degree":4,"seed":7},"k":2}`))
	f.Add([]byte(`{"graph":{"n":2,"edges":[[0,0]]},"k":1}`)) // self-loop
	f.Add([]byte(`{"k":1}`))                                 // neither graph nor family
	f.Add([]byte(`{"graph":{"n":-5},"k":1}`))
	f.Add([]byte(`{"unknown_field":true}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic

		switch rec.Code {
		case http.StatusOK,
			http.StatusBadRequest,
			http.StatusRequestEntityTooLarge,
			http.StatusInternalServerError,
			http.StatusServiceUnavailable,
			http.StatusGatewayTimeout:
		default:
			t.Fatalf("undocumented status %d for body %q", rec.Code, body)
		}

		if rec.Code == http.StatusOK {
			var sol SolutionJSON
			if err := json.Unmarshal(rec.Body.Bytes(), &sol); err != nil {
				t.Fatalf("200 body is not a SolutionJSON: %v", err)
			}
			return
		}
		var eb struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
			t.Fatalf("status %d body %q is not an errorBody: %v", rec.Code, rec.Body.Bytes(), err)
		}
		if eb.Error == "" {
			t.Fatalf("status %d carries an empty error message", rec.Code)
		}
	})
}
