package service

import (
	"container/list"
	"fmt"
	"sync"
)

// lruCache is a thread-safe fixed-capacity LRU map from cache key to
// solve response. Keys are built by solveCacheKey from the canonical
// graph hash plus every option that influences the result, so a hit is
// guaranteed to be the byte-identical answer the solver would recompute.
// A capacity ≤ 0 disables caching (every Get misses, Put is a no-op).
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val *SolveResponse
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached response for key and refreshes its recency.
func (c *lruCache) Get(key string) (*SolveResponse, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *lruCache) Put(key string, val *SolveResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// solveCacheKey identifies a solve result: the canonical graph hash plus
// every solver parameter that influences the output. Same key ⇒ the
// deterministic solver would return the identical solution.
func solveCacheKey(graphHash string, k, t int, seed int64, localDelta bool) string {
	return fmt.Sprintf("%s|k=%d|t=%d|seed=%d|ld=%v", graphHash, k, t, seed, localDelta)
}
