package tdma

import (
	"testing"
	"testing/quick"

	"ftclust/internal/baseline"
	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/udg"
)

func TestBuildOnStar(t *testing.T) {
	g := graph.Star(6)
	heads := []bool{true, false, false, false, false, false}
	s, err := Build(g, heads)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, heads, s); err != nil {
		t.Fatal(err)
	}
	if s.HeadSlots != 1 {
		t.Errorf("HeadSlots = %d, want 1", s.HeadSlots)
	}
	if s.MemberSlots != 5 {
		t.Errorf("MemberSlots = %d, want 5", s.MemberSlots)
	}
	if s.FrameLength() != 6 {
		t.Errorf("FrameLength = %d", s.FrameLength())
	}
}

func TestBuildRejectsNonDominating(t *testing.T) {
	g := graph.Path(4)
	heads := []bool{true, false, false, false}
	if _, err := Build(g, heads); err == nil {
		t.Error("node 2/3 have no head; must be rejected")
	}
	if _, err := Build(g, []bool{true}); err == nil {
		t.Error("mask length mismatch must be rejected")
	}
}

func TestDistanceTwoColoring(t *testing.T) {
	// Path 0-1-2 with heads {0, 2}: they share neighbor 1, so their slots
	// must differ even though they are not adjacent.
	g := graph.Path(3)
	heads := []bool{true, false, true}
	s, err := Build(g, heads)
	if err != nil {
		t.Fatal(err)
	}
	if s.HeadSlot[0] == s.HeadSlot[2] {
		t.Error("distance-2 heads share a slot")
	}
	if err := Validate(g, heads, s); err != nil {
		t.Error(err)
	}
}

func TestBuildOnSolverOutput(t *testing.T) {
	pts := geom.UniformPoints(500, 5, 2)
	g, idx := geom.UnitUDG(pts)
	sol, err := udg.Solve(pts, g, idx, udg.Options{K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, sol.Leader)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, sol.Leader, s); err != nil {
		t.Fatal(err)
	}
	// In a UDG the number of heads within 2 hops of a head is bounded by
	// a constant when the head set is sparse (O(k) per disk), so the
	// control subframe stays small.
	if s.HeadSlots > 80 {
		t.Errorf("control subframe %d suspiciously large", s.HeadSlots)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := graph.Path(3)
	heads := []bool{true, false, true}
	s, err := Build(g, heads)
	if err != nil {
		t.Fatal(err)
	}
	s.HeadSlot[2] = s.HeadSlot[0]
	if err := Validate(g, heads, s); err == nil {
		t.Error("corrupted head slots not detected")
	}
}

func TestQuickScheduleAlwaysValid(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%80) + 5
		g := graph.Gnp(n, 0.2, seed)
		heads := baseline.GreedyKMDS(g, 1)
		s, err := Build(g, heads)
		if err != nil {
			return false
		}
		return Validate(g, heads, s) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
