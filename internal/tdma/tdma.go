// Package tdma builds collision-free transmission schedules on top of a
// clustering, the "spatial multiplexing in non-overlapping clusters" and
// "efficient network initialization" applications the paper's introduction
// cites ([12, 18]). Cluster heads receive interference-free control slots
// via a distance-2 coloring (two heads sharing a potential receiver must
// differ), and every ordinary node receives an intra-cluster slot from its
// lowest-ID head, giving a complete two-level TDMA frame.
package tdma

import (
	"fmt"

	"ftclust/internal/graph"
)

// Schedule is a two-level TDMA frame.
type Schedule struct {
	// HeadSlot[v] is the control slot of head v (-1 for non-heads).
	// Slots are 0-based; two heads with a common neighbor (or that are
	// adjacent) never share a slot.
	HeadSlot []int
	// HeadSlots is the number of distinct control slots (frame length of
	// the control subframe).
	HeadSlots int
	// MemberSlot[v] is the data slot of node v inside its cluster (-1 for
	// heads and unaffiliated nodes). Two members of the same head never
	// share a slot.
	MemberSlot []int
	// MemberSlots is the data subframe length (the largest cluster size).
	MemberSlots int
	// Head[v] is the head node v is affiliated with (itself for heads;
	// -1 when v has no head in range).
	Head []graph.NodeID
}

// FrameLength returns the total number of slots in the frame.
func (s Schedule) FrameLength() int { return s.HeadSlots + s.MemberSlots }

// Build constructs a schedule from the dominator mask heads. Every node
// must be a head or adjacent to one (i.e. heads is a dominating set).
func Build(g *graph.Graph, heads []bool) (Schedule, error) {
	n := g.NumNodes()
	if len(heads) != n {
		return Schedule{}, fmt.Errorf("tdma: mask has %d entries for %d nodes", len(heads), n)
	}
	s := Schedule{
		HeadSlot:   make([]int, n),
		MemberSlot: make([]int, n),
		Head:       make([]graph.NodeID, n),
	}
	for v := range s.HeadSlot {
		s.HeadSlot[v] = -1
		s.MemberSlot[v] = -1
		s.Head[v] = -1
	}

	// Distance-2 greedy coloring of heads in ID order: a head's color must
	// differ from every other head within two hops.
	for v := 0; v < n; v++ {
		if !heads[v] {
			continue
		}
		used := map[int]bool{}
		for _, u := range g.KHopNeighborhood(graph.NodeID(v), 2) {
			if int(u) != v && heads[u] && s.HeadSlot[u] >= 0 {
				used[s.HeadSlot[u]] = true
			}
		}
		slot := 0
		for used[slot] {
			slot++
		}
		s.HeadSlot[v] = slot
		if slot+1 > s.HeadSlots {
			s.HeadSlots = slot + 1
		}
	}

	// Affiliation: lowest-ID head in the closed neighborhood.
	for v := 0; v < n; v++ {
		if heads[v] {
			s.Head[v] = graph.NodeID(v)
			continue
		}
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if heads[w] {
				s.Head[v] = w
				break
			}
		}
		if s.Head[v] < 0 && g.Degree(graph.NodeID(v)) > 0 {
			return Schedule{}, fmt.Errorf("tdma: node %d has no head in range", v)
		}
	}

	// Intra-cluster slots: each head numbers its members in ID order.
	next := make(map[graph.NodeID]int, n)
	for v := 0; v < n; v++ {
		h := s.Head[v]
		if h < 0 || heads[v] {
			continue
		}
		s.MemberSlot[v] = next[h]
		next[h]++
		if next[h] > s.MemberSlots {
			s.MemberSlots = next[h]
		}
	}
	return s, nil
}

// Validate checks the schedule's two collision-freedom invariants and
// affiliation consistency; it returns nil when the schedule is valid.
func Validate(g *graph.Graph, heads []bool, s Schedule) error {
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		if heads[v] != (s.HeadSlot[v] >= 0) {
			return fmt.Errorf("tdma: head flag and slot disagree at node %d", v)
		}
	}
	// Distance-2 head collision freedom.
	for v := 0; v < n; v++ {
		if !heads[v] {
			continue
		}
		for _, u := range g.KHopNeighborhood(graph.NodeID(v), 2) {
			if int(u) != v && heads[u] && s.HeadSlot[u] == s.HeadSlot[v] {
				return fmt.Errorf("tdma: heads %d and %d within 2 hops share slot %d",
					v, u, s.HeadSlot[v])
			}
		}
	}
	// Intra-cluster member collision freedom.
	seen := map[[2]int]graph.NodeID{}
	for v := 0; v < n; v++ {
		if heads[v] || s.Head[v] < 0 {
			continue
		}
		if s.MemberSlot[v] < 0 {
			return fmt.Errorf("tdma: member %d has no slot", v)
		}
		key := [2]int{int(s.Head[v]), s.MemberSlot[v]}
		if other, dup := seen[key]; dup {
			return fmt.Errorf("tdma: members %d and %d of head %d share slot %d",
				v, other, s.Head[v], s.MemberSlot[v])
		}
		seen[key] = graph.NodeID(v)
		if !g.HasEdge(graph.NodeID(v), s.Head[v]) {
			return fmt.Errorf("tdma: node %d affiliated with non-neighbor %d", v, s.Head[v])
		}
	}
	return nil
}
