package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000} {
		for _, w := range []int{-1, 0, 1, 2, 3, 16, 2000} {
			hit := make([]int32, n)
			For(n, w, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Fatalf("n=%d w=%d: bad chunk [%d,%d)", n, w, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hit[i], 1)
				}
			})
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestForSequentialIsInline(t *testing.T) {
	calls := 0
	For(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("chunk [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("workers=1 made %d calls, want 1 inline call", calls)
	}
}
