package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000} {
		for _, w := range []int{-1, 0, 1, 2, 3, 16, 2000} {
			hit := make([]int32, n)
			For(n, w, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Fatalf("n=%d w=%d: bad chunk [%d,%d)", n, w, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hit[i], 1)
				}
			})
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestForSequentialIsInline(t *testing.T) {
	calls := 0
	For(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("chunk [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("workers=1 made %d calls, want 1 inline call", calls)
	}
}

// Forced tiny grains maximize chunk interleaving (every index range is a
// separate claim); coverage must still be exactly once.
func TestForForcedGrainCoversEveryIndexExactlyOnce(t *testing.T) {
	defer SetForceGrain(SetForceGrain(1))
	for _, n := range []int{1, 7, 129, 1000} {
		for _, w := range []int{2, 4, 8} {
			hit := make([]int32, n)
			For(n, w, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hit[i], 1)
				}
			})
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("n=%d w=%d grain=1: index %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}

// A skewed workload (all the cost on the last indices) must not serialize:
// with guided chunking the tail is split across many claims, so more than
// one worker must observe tail indices. This is a scheduling property, not
// a result property — results are index-keyed either way.
func TestForGuidedChunkingSplitsTheTail(t *testing.T) {
	const n = 100000
	var claims int32
	For(n, 4, func(lo, hi int) {
		if hi > n*3/4 { // a claim overlapping the skewed tail
			atomic.AddInt32(&claims, 1)
		}
	})
	if claims < 2 {
		t.Fatalf("tail covered by %d claims; guided chunking should split it", claims)
	}
}

func TestPoolCoversEveryIndexExactlyOnceAndLanesInRange(t *testing.T) {
	for _, w := range []int{1, 2, 4, 9} {
		var p Pool
		p.Start(w)
		for _, n := range []int{0, 1, 5, 300, 4096} {
			hit := make([]int32, n)
			p.Run(n, func(worker, lo, hi int) {
				if worker < 0 || worker >= p.Workers() {
					t.Errorf("worker id %d out of range [0,%d)", worker, p.Workers())
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hit[i], 1)
				}
			})
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("w=%d n=%d: index %d visited %d times", w, n, i, h)
				}
			}
		}
		p.Stop()
	}
}

// A Pool must survive Start/Stop cycles (the arena embeds one and solves
// repeatedly), and worker 0 must be the calling goroutine when sequential.
func TestPoolRestart(t *testing.T) {
	var p Pool
	for cycle := 0; cycle < 3; cycle++ {
		p.Start(4)
		var sum int64
		p.Run(1000, func(_, lo, hi int) {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			atomic.AddInt64(&sum, s)
		})
		if want := int64(1000 * 999 / 2); sum != want {
			t.Fatalf("cycle %d: sum = %d, want %d", cycle, sum, want)
		}
		p.Stop()
	}
}

// Steady-state Runs on a started pool must not allocate: the per-round
// sweeps of a scratch-backed solve go through here 2t²+3 times per solve.
func TestPoolRunSteadyStateAllocs(t *testing.T) {
	var p Pool
	p.Start(4)
	defer p.Stop()
	out := make([]int64, 10000)
	body := func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = int64(i)
		}
	}
	p.Run(len(out), body) // warm
	allocs := testing.AllocsPerRun(50, func() { p.Run(len(out), body) })
	if allocs > 0 {
		t.Errorf("Pool.Run steady state: %v allocs/op, want 0", allocs)
	}
}

// Sequential pools (workers ≤ 1) run bodies inline on the caller.
func TestPoolSequentialInline(t *testing.T) {
	var p Pool
	p.Start(1)
	defer p.Stop()
	calls := 0
	p.Run(10, func(worker, lo, hi int) {
		calls++
		if worker != 0 || lo != 0 || hi != 10 {
			t.Fatalf("inline run got (w=%d, lo=%d, hi=%d), want (0, 0, 10)", worker, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential pool made %d calls, want 1", calls)
	}
}
