// Package par provides the deterministic worker-pool primitive shared by
// the in-memory engines (internal/core) and the message-passing simulator
// (internal/sim): a parallel for over index chunks whose boundaries depend
// only on (n, workers) — never on completion order — so any body that
// touches only per-index state produces bit-identical results for every
// worker count.
package par

import (
	"runtime"
	"sync"
)

// For runs fn over contiguous chunks covering [0, n). workers ≤ 1 runs
// fn(0, n) inline with no goroutines; worker counts above n, or above
// 4×GOMAXPROCS (where extra goroutines only add scheduling overhead), are
// clamped. Chunking is static, so clamping never changes which indices a
// chunk contains relative to a larger machine — only how many run at once.
func For(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if max := runtime.GOMAXPROCS(0) * 4; workers > max {
		workers = max
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
