// Package par provides the deterministic worker-pool primitives shared by
// the in-memory engines (internal/core) and the message-passing simulator
// (internal/sim).
//
// Scheduling is dynamic: workers claim index ranges from a shared atomic
// cursor (guided chunking — chunk sizes shrink as the range drains), so a
// skewed workload (the degree tail of a gnp graph concentrating in a few
// chunks) no longer serializes behind the unluckiest fixed chunk. Which
// worker runs which range is therefore nondeterministic; results stay
// bit-identical for every worker count and every interleaving because the
// contract requires bodies to write only per-index state — outputs are
// keyed by index (node ID), never by arrival order.
//
// Two entry points:
//
//   - For(n, workers, fn) spawns workers for one sweep and joins them —
//     convenient for one-off scans (graph traversals, simulator steps).
//   - Pool amortizes the goroutine spawns across many sweeps of one solve:
//     Start once, Run per sweep (the caller participates as worker 0 and
//     bodies receive their worker index for per-worker scratch lanes),
//     Stop to join. A Pool's channels are reused across Start/Stop cycles,
//     so a Pool embedded in a reusable arena adds only the goroutine
//     spawns (workers−1 per Start) to the steady-state allocation budget.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// minGrain is the smallest index range a worker claims: small enough to
// balance heavy tails, large enough that two workers never contend for
// slots within one cache line and the atomic traffic stays negligible.
const minGrain = 128

// forceGrain, when positive, overrides the guided chunk size. Test-only:
// equivalence tests force tiny grains to exercise maximal work-stealing
// interleavings. Atomic so concurrent tests do not race the scheduler.
var forceGrain atomic.Int64

// SetForceGrain overrides the scheduler's chunk size (0 restores guided
// chunking). FOR TESTS ONLY — it is process-global. It returns the
// previous value so tests can restore it.
func SetForceGrain(g int) int { return int(forceGrain.Swap(int64(g))) }

// clampWorkers applies the shared worker-count limits: never more workers
// than indices, never more than 4×GOMAXPROCS (beyond that extra goroutines
// only add scheduling overhead).
func clampWorkers(n, workers int) int {
	if workers > n {
		workers = n
	}
	if max := runtime.GOMAXPROCS(0) * 4; workers > max {
		workers = max
	}
	return workers
}

// claim drains the range [cursor, n) in guided chunks: each claim takes
// max(minGrain, remaining/(2·workers)) indices, so early chunks are large
// (low cursor contention) and late chunks small (stragglers rebalance).
func claim(cursor *atomic.Int64, n, workers int, fn func(lo, hi int)) {
	n64 := int64(n)
	fg := forceGrain.Load()
	for {
		cur := cursor.Load()
		if cur >= n64 {
			return
		}
		c := fg
		if c <= 0 {
			c = (n64 - cur) / int64(2*workers)
			if c < minGrain {
				c = minGrain
			}
		}
		if cursor.CompareAndSwap(cur, cur+c) {
			hi := cur + c
			if hi > n64 {
				hi = n64
			}
			fn(int(cur), int(hi))
		}
	}
}

// For runs fn over dynamically claimed chunks covering [0, n). workers ≤ 1
// runs fn(0, n) inline with no goroutines. The calling goroutine
// participates, so only workers−1 goroutines are spawned. fn must touch
// only per-index state; then the result is bit-identical for every worker
// count and chunk interleaving.
func For(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(n, workers)
	if workers <= 1 {
		fn(0, n)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			claim(&cursor, n, workers, fn)
		}()
	}
	claim(&cursor, n, workers, fn)
	wg.Wait()
}

// Worker commands sent on the per-worker signal channels; a channel value
// (not a close) so the channels survive Stop and are reused by the next
// Start — a Pool embedded in a reusable arena allocates them exactly once.
const (
	cmdRun  = uint8(0)
	cmdStop = uint8(1)
)

// Pool is a reusable work-claiming executor for the many per-round sweeps
// of one solve: Start spawns the workers, each Run dispatches one body
// over [0, n) in guided chunks, Stop joins. Between Start and Stop the
// spawned goroutines stay parked on their signal channels, so a Run costs
// two synchronizations and zero allocations (given a non-literal body).
//
// Bodies receive (worker, lo, hi): worker ∈ [0, Workers()) identifies the
// executing lane — the caller runs as worker 0 — so bodies can use
// per-worker scratch buffers without locking. The same determinism
// contract as For applies: bodies write only per-index state.
//
// A Pool is not safe for concurrent use: one goroutine owns
// Start/Run/Stop. The zero value is ready; Start must precede Run.
type Pool struct {
	workers int            // total lanes including the caller
	nw      int            // spawned goroutines (workers − 1)
	sig     []chan uint8   // per-worker wake signals, reused across cycles
	run     sync.WaitGroup // per-Run completion
	join    sync.WaitGroup // Stop join
	n       int
	fn      func(worker, lo, hi int)
	cursor  atomic.Int64
}

// Start spawns the pool's workers (clamped like For, so at most
// 4×GOMAXPROCS lanes). Calling Start with workers ≤ 1 is allowed: Run then
// executes bodies inline and Stop is a no-op.
func (p *Pool) Start(workers int) {
	if max := runtime.GOMAXPROCS(0) * 4; workers > max {
		workers = max
	}
	p.workers = workers
	p.nw = workers - 1
	if p.nw < 0 {
		p.nw = 0
	}
	for len(p.sig) < p.nw {
		p.sig = append(p.sig, make(chan uint8, 1))
	}
	p.join.Add(p.nw)
	for i := 0; i < p.nw; i++ {
		go p.worker(i + 1)
	}
}

// Workers returns the number of lanes (1 when the pool is sequential);
// bodies observe worker indices in [0, Workers()).
func (p *Pool) Workers() int {
	if p.workers < 1 {
		return 1
	}
	return p.workers
}

func (p *Pool) worker(id int) {
	defer p.join.Done()
	for {
		//ftlint:allow ctxflow parked worker awaiting its 1-buffered signal channel; lifetime is owned by Pool.Stop, not a request ctx
		if <-p.sig[id-1] == cmdStop {
			return
		}
		p.claimLane(id)
		p.run.Done()
	}
}

// claimLane is claim specialized to the pool's current job: a method (not
// a closure over the lane id) so a Run costs zero allocations.
func (p *Pool) claimLane(id int) {
	n64 := int64(p.n)
	fg := forceGrain.Load()
	for {
		cur := p.cursor.Load()
		if cur >= n64 {
			return
		}
		c := fg
		if c <= 0 {
			c = (n64 - cur) / int64(2*p.workers)
			if c < minGrain {
				c = minGrain
			}
		}
		if p.cursor.CompareAndSwap(cur, cur+c) {
			hi := cur + c
			if hi > n64 {
				hi = n64
			}
			p.fn(id, int(cur), int(hi))
		}
	}
}

// Run executes fn over [0, n) on the pool's lanes and returns when every
// index is done. The calling goroutine participates as worker 0. Writes
// made before Run are visible to every lane (the signal send orders them),
// and every lane's writes are visible after Run returns.
func (p *Pool) Run(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.nw == 0 {
		fn(0, 0, n)
		return
	}
	p.n, p.fn = n, fn
	p.cursor.Store(0)
	p.run.Add(p.nw)
	for i := 0; i < p.nw; i++ {
		//ftlint:allow ctxflow sig is 1-buffered and its parked worker always drains it, so this send cannot block indefinitely
		p.sig[i] <- cmdRun
	}
	p.claimLane(0)
	p.run.Wait()
	p.fn = nil
}

// Stop joins the pool's workers. The Pool may be Started again afterwards
// (the signal channels are kept), so an arena-embedded Pool spans many
// solve calls without leaking goroutines between them.
func (p *Pool) Stop() {
	for i := 0; i < p.nw; i++ {
		//ftlint:allow ctxflow sig is 1-buffered and its parked worker always drains it, so this send cannot block indefinitely
		p.sig[i] <- cmdStop
	}
	p.join.Wait()
	p.nw = 0
	p.workers = 0
}
