// Package routing implements backbone routing over a connected dominating
// set, the application that motivates clustering in the paper's
// introduction ([1, 23]): ordinary nodes attach to backbone neighbors and
// all multi-hop traffic travels inside the backbone. The package measures
// the price of that restriction — the stretch of backbone routes versus
// unrestricted shortest paths — which experiment E16 reports.
package routing

import (
	"fmt"

	"ftclust/internal/cds"
	"ftclust/internal/graph"
)

// Router answers path queries over a fixed backbone.
type Router struct {
	g        *graph.Graph
	backbone []bool
}

// New validates the backbone (connected inside every component of g) and
// returns a Router.
func New(g *graph.Graph, backbone []bool) (*Router, error) {
	if len(backbone) != g.NumNodes() {
		return nil, fmt.Errorf("routing: mask has %d entries for %d nodes", len(backbone), g.NumNodes())
	}
	if !cds.IsConnectedBackbone(g, backbone) {
		return nil, fmt.Errorf("routing: backbone is not connected per component")
	}
	return &Router{g: g, backbone: backbone}, nil
}

// PathLength returns the hop count of the shortest route from src to dst
// that uses only backbone nodes as intermediates (src and dst may be
// ordinary nodes). ok is false when no such route exists.
func (r *Router) PathLength(src, dst graph.NodeID) (hops int, ok bool) {
	if src == dst {
		return 0, true
	}
	n := r.g.NumNodes()
	allowed := func(v graph.NodeID) bool {
		return r.backbone[v] || v == src || v == dst
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []graph.NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range r.g.Neighbors(v) {
			if dist[w] >= 0 || !allowed(w) {
				continue
			}
			dist[w] = dist[v] + 1
			if w == dst {
				return dist[w], true
			}
			queue = append(queue, w)
		}
	}
	return 0, false
}

// StretchSample routes the given source/destination pairs and returns the
// per-pair stretch (backbone hops / shortest hops) for all connected pairs
// with shortest distance ≥ 1. Pairs in different components are skipped.
func (r *Router) StretchSample(pairs [][2]graph.NodeID) []float64 {
	var out []float64
	for _, p := range pairs {
		direct := r.g.BFS(p[0])[p[1]]
		if direct < 1 {
			continue
		}
		via, ok := r.PathLength(p[0], p[1])
		if !ok {
			// A valid dominating backbone always admits a route between
			// connected nodes; record an infinite-like penalty so the
			// experiment surfaces the bug rather than hiding it.
			out = append(out, -1)
			continue
		}
		out = append(out, float64(via)/float64(direct))
	}
	return out
}
