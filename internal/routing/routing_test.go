package routing

import (
	"testing"

	"ftclust/internal/cds"
	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/rng"
	"ftclust/internal/udg"
)

func TestRouterOnPath(t *testing.T) {
	// Path 0-1-2-3-4, backbone {1,2,3}: route 0→4 = 0-1-2-3-4 (4 hops).
	g := graph.Path(5)
	backbone := []bool{false, true, true, true, false}
	r, err := New(g, backbone)
	if err != nil {
		t.Fatal(err)
	}
	hops, ok := r.PathLength(0, 4)
	if !ok || hops != 4 {
		t.Errorf("hops = %d ok=%v, want 4 true", hops, ok)
	}
	if h, ok := r.PathLength(2, 2); !ok || h != 0 {
		t.Errorf("self route = %d, %v", h, ok)
	}
}

func TestRouterRejectsDisconnectedBackbone(t *testing.T) {
	g := graph.Path(5)
	if _, err := New(g, []bool{true, false, false, false, true}); err == nil {
		t.Error("split backbone must be rejected")
	}
	if _, err := New(g, []bool{true}); err == nil {
		t.Error("length mismatch must be rejected")
	}
}

func TestRouterAvoidsNonBackboneShortcuts(t *testing.T) {
	// Square 0-1-2-3-0 plus chord... backbone {0,1,2}: route 3→... direct
	// 3-0 allowed (0 backbone? endpoints always allowed). Use a graph
	// where the only short path runs through a non-backbone intermediate.
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 4}, {U: 4, V: 2}, // short path via non-backbone 4
		{U: 0, V: 1}, {U: 1, V: 3}, {U: 3, V: 2}, // backbone detour
	})
	backbone := []bool{true, true, true, true, false}
	r, err := New(g, backbone)
	if err != nil {
		t.Fatal(err)
	}
	hops, ok := r.PathLength(0, 2)
	if !ok || hops != 3 {
		t.Errorf("hops = %d, want 3 (must avoid node 4)", hops)
	}
	if direct := g.BFS(0)[2]; direct != 2 {
		t.Fatalf("test graph broken: direct = %d", direct)
	}
}

func TestStretchOnUDGBackbone(t *testing.T) {
	pts := geom.UniformPoints(400, 5, 4)
	g, idx := geom.UnitUDG(pts)
	sol, err := udg.Solve(pts, g, idx, udg.Options{K: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := cds.Connect(g, sol.Leader)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(g, conn.InSet)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rng.New(8)
	var pairs [][2]graph.NodeID
	for i := 0; i < 150; i++ {
		pairs = append(pairs, [2]graph.NodeID{
			graph.NodeID(rnd.Intn(400)), graph.NodeID(rnd.Intn(400)),
		})
	}
	stretch := r.StretchSample(pairs)
	if len(stretch) == 0 {
		t.Fatal("no connected pairs sampled")
	}
	sum := 0.0
	for _, s := range stretch {
		if s < 0 {
			t.Fatal("backbone failed to route a connected pair")
		}
		if s < 1 {
			t.Fatalf("stretch %v < 1 impossible", s)
		}
		sum += s
	}
	// CDS routing is constant-stretch in UDGs; assert a loose cap.
	if mean := sum / float64(len(stretch)); mean > 3 {
		t.Errorf("mean stretch %v too high", mean)
	}
}
