package graph

import (
	"math"
	"testing"
	"time"

	"ftclust/internal/rng"
)

// timeIt reports the wall time of one call in nanoseconds.
func timeIt(fn func()) int64 {
	start := time.Now()
	fn()
	return time.Since(start).Nanoseconds()
}

// gnpQuadratic is the pre-v2 O(n²) reference generator: one Bernoulli
// trial per upper-triangle pair. It is kept as the benchmark baseline the
// geometric-skip implementation is measured against and as a
// distribution-shape reference for the property tests. Note it is a
// different (n, p, seed) → graph mapping than the v2 generator.
func gnpQuadratic(n int, p float64, seed int64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.TryAddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return b.Build()
}

func TestGnpDeterministicPerSeed(t *testing.T) {
	for _, tc := range []struct {
		n    int
		p    float64
		seed int64
	}{
		{500, 0.01, 1}, {500, 0.01, 2}, {200, 0.5, 3}, {50, 0.9, 4}, {1000, 0.002, 99},
	} {
		a, b := Gnp(tc.n, tc.p, tc.seed), Gnp(tc.n, tc.p, tc.seed)
		if a.CanonicalHash() != b.CanonicalHash() {
			t.Errorf("Gnp(%d, %v, %d) not deterministic", tc.n, tc.p, tc.seed)
		}
	}
	if Gnp(500, 0.01, 1).CanonicalHash() == Gnp(500, 0.01, 2).CanonicalHash() {
		t.Error("different seeds produced the identical graph")
	}
}

func TestGnpEdgeCases(t *testing.T) {
	if g := Gnp(0, 0.5, 1); g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Errorf("Gnp(0): n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g := Gnp(1, 0.5, 1); g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Errorf("Gnp(1): n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g := Gnp(100, 0, 1); g.NumEdges() != 0 {
		t.Errorf("p=0 gave %d edges", g.NumEdges())
	}
	if g := Gnp(100, -0.5, 1); g.NumEdges() != 0 {
		t.Errorf("p<0 gave %d edges", g.NumEdges())
	}
	if g := Gnp(40, 1, 1); g.NumEdges() != 40*39/2 {
		t.Errorf("p=1 gave %d edges, want %d", g.NumEdges(), 40*39/2)
	}
	if g := Gnp(40, 1.7, 1); g.NumEdges() != 40*39/2 {
		t.Errorf("p>1 gave %d edges, want %d", g.NumEdges(), 40*39/2)
	}
}

// Property: the realized edge count concentrates around E[m] = C(n,2)·p.
// m is Binomial(C(n,2), p), so |m − E[m]| ≤ 6σ holds with probability
// ≈ 1−2e−18 per configuration; a failure means the generator's
// distribution is off, not bad luck.
func TestGnpEdgeCountConcentration(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{
		{2000, 0.004}, {1000, 0.05}, {300, 0.3}, {120, 0.8},
	} {
		total := float64(tc.n * (tc.n - 1) / 2)
		mean := total * tc.p
		sigma := math.Sqrt(total * tc.p * (1 - tc.p))
		for seed := int64(1); seed <= 5; seed++ {
			m := float64(Gnp(tc.n, tc.p, seed).NumEdges())
			if math.Abs(m-mean) > 6*sigma+1 {
				t.Errorf("Gnp(%d, %v, %d): m=%v, want %v ± %v",
					tc.n, tc.p, seed, m, mean, 6*sigma)
			}
		}
	}
}

// Property: the geometric-skip generator and the quadratic reference draw
// from the same distribution — their mean edge counts over a batch of
// seeds agree within sampling error.
func TestGnpMatchesQuadraticDistribution(t *testing.T) {
	const n, p, seeds = 400, 0.02, 20
	total := float64(n * (n - 1) / 2)
	sigmaMean := math.Sqrt(total*p*(1-p)) / math.Sqrt(seeds)
	var sumGeo, sumQuad float64
	for seed := int64(1); seed <= seeds; seed++ {
		sumGeo += float64(Gnp(n, p, seed).NumEdges())
		sumQuad += float64(gnpQuadratic(n, p, seed).NumEdges())
	}
	if diff := math.Abs(sumGeo-sumQuad) / seeds; diff > 8*sigmaMean {
		t.Errorf("mean edge counts differ: geometric %v vs quadratic %v (tol %v)",
			sumGeo/seeds, sumQuad/seeds, 8*sigmaMean)
	}
}

// Acceptance gate: the O(n+m) generator beats the O(n²) baseline by ≥ 10×
// at n=20000, d=8. The asymptotic gap at this size is ~3 orders of
// magnitude, so the 10× threshold has enormous slack even under -race.
func TestGnpGeometricFasterThanQuadratic(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	const n = 20000
	p := 8.0 / float64(n-1)
	quadNs := timeIt(func() { gnpQuadratic(n, p, 7) })
	geoNs := timeIt(func() { GnpAvgDegree(n, 8, 7) })
	if geoNs*10 > quadNs {
		t.Errorf("geometric skip %d ns vs quadratic %d ns: speedup %.1fx < 10x",
			geoNs, quadNs, float64(quadNs)/float64(geoNs))
	}
}

func TestGnpAvgDegreeMatchesKnob(t *testing.T) {
	g := GnpAvgDegree(5000, 8, 3)
	if d := g.AvgDegree(); d < 7 || d > 9 {
		t.Errorf("avg degree %v, want ≈ 8", d)
	}
}

func TestRandomRegularishSimpleGraphInvariants(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		const n, d = 200, 6
		g := RandomRegularish(n, d, seed)
		// Simple-graph invariants: sorted, deduplicated, symmetric, no
		// self-loops — directly over the adjacency.
		for v := 0; v < g.NumNodes(); v++ {
			ns := g.Neighbors(NodeID(v))
			for i, w := range ns {
				if w == NodeID(v) {
					t.Fatalf("seed %d: self-loop at %d", seed, v)
				}
				if i > 0 && ns[i-1] >= w {
					t.Fatalf("seed %d: adjacency of %d unsorted or duplicated", seed, v)
				}
				if !g.HasEdge(w, NodeID(v)) {
					t.Fatalf("seed %d: asymmetric edge (%d,%d)", seed, v, w)
				}
			}
		}
		if md := g.MaxDegree(); md > d {
			t.Errorf("seed %d: max degree %d > %d", seed, md, d)
		}
		// The re-draw pairing should realize nearly all n·d/2 stub pairs.
		if m := g.NumEdges(); float64(m) < 0.97*float64(n*d/2) {
			t.Errorf("seed %d: only %d of %d pairs realized", seed, m, n*d/2)
		}
	}
}

func TestRandomRegularishDeterministic(t *testing.T) {
	if RandomRegularish(150, 5, 9).CanonicalHash() != RandomRegularish(150, 5, 9).CanonicalHash() {
		t.Error("RandomRegularish not deterministic per seed")
	}
}

func BenchmarkGnpGeometric20k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GnpAvgDegree(20000, 8, 3)
	}
}

func BenchmarkGnpQuadratic20k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gnpQuadratic(20000, 8.0/19999, 3)
	}
}
