package graph

import (
	"runtime"
	"sort"

	"ftclust/internal/par"
)

// BFS runs a breadth-first search from src and returns the distance (in
// hops) to every node, with -1 for unreachable nodes.
func (g *Graph) BFS(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Components returns the connected-component label of every node (labels are
// 0-based, assigned in order of lowest contained node ID) and the number of
// components.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	queue := make([]NodeID, 0, g.n)
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], NodeID(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if comp[w] < 0 {
					comp[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return comp, next
}

// IsConnected reports whether the graph is connected (the empty graph and
// singletons count as connected).
func (g *Graph) IsConnected() bool {
	_, c := g.Components()
	return c <= 1
}

// Diameter returns the largest eccentricity over all nodes, computing a BFS
// per node (O(nm)); it returns -1 for disconnected graphs. Intended for the
// moderate instance sizes used in tests and experiments.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.n; v++ {
		dist := g.BFS(NodeID(v))
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// KHopNeighborhood returns all nodes within at most k hops of v, including
// v itself, in ascending ID order. The slice is freshly allocated.
func (g *Graph) KHopNeighborhood(v NodeID, k int) []NodeID {
	dist := make(map[NodeID]int, 16)
	dist[v] = 0
	queue := []NodeID{v}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == k {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if _, seen := dist[w]; !seen {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	out := make([]NodeID, 0, len(dist))
	for u := range dist {
		out = append(out, u)
	}
	sortNodeIDs(out)
	return out
}

// MaxDegreeWithinHops returns, for every node v, the maximum degree among
// nodes within k hops of v (including v). This implements the "local Δ"
// the paper's final remark alludes to: algorithms can substitute a k-hop
// local estimate for the global maximum degree.
func (g *Graph) MaxDegreeWithinHops(k int) []int {
	cur := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		cur[v] = g.Degree(NodeID(v))
	}
	for i := 0; i < k; i++ {
		next := make([]int, g.n)
		copy(next, cur)
		// Each relaxation round only reads cur and writes next[v], so the
		// sweep fans out over the worker pool; max is order-independent.
		if workers := runtime.GOMAXPROCS(0); workers > 1 {
			par.For(g.n, workers, func(lo, hi int) { g.relaxMaxDegree(cur, next, lo, hi) })
		} else {
			g.relaxMaxDegree(cur, next, 0, g.n)
		}
		cur = next
	}
	return cur
}

// relaxMaxDegree runs one max-propagation step for nodes [lo, hi).
func (g *Graph) relaxMaxDegree(cur, next []int, lo, hi int) {
	for v := lo; v < hi; v++ {
		for _, w := range g.Neighbors(NodeID(v)) {
			if cur[w] > next[v] {
				next[v] = cur[w]
			}
		}
	}
}

func sortNodeIDs(s []NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
