package graph

import (
	"reflect"
	"sort"
	"testing"

	"ftclust/internal/rng"
)

// overlayNeighbors collects v's neighbors through the merged iterator.
func overlayNeighbors(o *Overlay, v NodeID) []NodeID {
	return o.AppendNeighbors(v, nil)
}

func TestOverlayStartsEqualToBase(t *testing.T) {
	g := GnpAvgDegree(200, 6, 1)
	o := NewOverlay(g)
	if o.NumNodes() != g.NumNodes() || o.NumEdges() != g.NumEdges() || o.DriftEdges() != 0 {
		t.Fatalf("fresh overlay: n=%d m=%d drift=%d", o.NumNodes(), o.NumEdges(), o.DriftEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		got := overlayNeighbors(o, NodeID(v))
		want := g.Neighbors(NodeID(v))
		if len(got) != len(want) {
			t.Fatalf("node %d: %d neighbors, want %d", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d neighbor %d: %d, want %d", v, i, got[i], want[i])
			}
		}
		if o.Degree(NodeID(v)) != g.Degree(NodeID(v)) {
			t.Fatalf("node %d degree mismatch", v)
		}
	}
}

func TestOverlayAddDelAndCancellation(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	o := NewOverlay(g)

	if err := o.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if !o.HasEdge(0, 3) || !o.HasEdge(3, 0) || o.NumEdges() != 4 || o.DriftEdges() != 1 {
		t.Fatalf("after add: m=%d drift=%d", o.NumEdges(), o.DriftEdges())
	}
	if err := o.DelEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if o.HasEdge(1, 2) || o.NumEdges() != 3 || o.DriftEdges() != 2 {
		t.Fatalf("after del: m=%d drift=%d", o.NumEdges(), o.DriftEdges())
	}
	// Re-adding a deleted base edge cancels the deletion…
	if err := o.AddEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	if !o.HasEdge(1, 2) || o.DriftEdges() != 1 {
		t.Fatalf("re-add did not cancel deletion: drift=%d", o.DriftEdges())
	}
	// …and deleting an overlay-added edge cancels the addition.
	if err := o.DelEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	if o.HasEdge(0, 3) || o.DriftEdges() != 0 || o.NumEdges() != g.NumEdges() {
		t.Fatalf("del of added edge: drift=%d m=%d", o.DriftEdges(), o.NumEdges())
	}
}

func TestOverlayValidation(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}})
	o := NewOverlay(g)
	if err := o.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := o.AddEdge(0, 5); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := o.AddEdge(0, 1); err == nil {
		t.Error("duplicate accepted")
	}
	if err := o.DelEdge(0, 2); err == nil {
		t.Error("deleting a missing edge accepted")
	}
	if err := o.DelEdge(0, -1); err == nil {
		t.Error("deleting out-of-range accepted")
	}
}

func TestOverlayAddNode(t *testing.T) {
	g := MustFromEdges(2, []Edge{{0, 1}})
	o := NewOverlay(g)
	v := o.AddNode()
	if v != 2 || o.NumNodes() != 3 || o.AddedNodes() != 1 {
		t.Fatalf("AddNode: v=%d n=%d added=%d", v, o.NumNodes(), o.AddedNodes())
	}
	if o.Degree(v) != 0 || len(overlayNeighbors(o, v)) != 0 {
		t.Fatal("fresh node must be isolated")
	}
	if err := o.AddEdge(v, 0); err != nil {
		t.Fatal(err)
	}
	if !o.HasEdge(0, v) || o.Degree(v) != 1 {
		t.Fatal("edge to appended node missing")
	}
	got := overlayNeighbors(o, 0)
	if !reflect.DeepEqual(got, []NodeID{1, 2}) {
		t.Fatalf("node 0 neighbors = %v, want [1 2]", got)
	}
}

// TestOverlayMatchesRebuiltGraph drives a random churn sequence and checks
// the overlay against a Builder-constructed graph of the same edge set,
// plus Compact against the same reference.
func TestOverlayMatchesRebuiltGraph(t *testing.T) {
	base := GnpAvgDegree(120, 5, 7)
	o := NewOverlay(base)
	edges := map[Edge]bool{}
	base.Edges(func(u, v NodeID) { edges[Edge{u, v}] = true })
	n := base.NumNodes()
	r := rng.New(99)

	for step := 0; step < 600; step++ {
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		if u == v {
			if r.Float64() < 0.02 {
				o.AddNode()
				n++
			}
			continue
		}
		if u > v {
			u, v = v, u
		}
		e := Edge{u, v}
		if edges[e] {
			if err := o.DelEdge(u, v); err != nil {
				t.Fatalf("step %d del (%d,%d): %v", step, u, v, err)
			}
			delete(edges, e)
		} else {
			if err := o.AddEdge(u, v); err != nil {
				t.Fatalf("step %d add (%d,%d): %v", step, u, v, err)
			}
			edges[e] = true
		}
	}

	ref := rebuildFromSet(n, edges)
	if o.NumNodes() != ref.NumNodes() || o.NumEdges() != ref.NumEdges() {
		t.Fatalf("overlay n=%d m=%d, ref n=%d m=%d",
			o.NumNodes(), o.NumEdges(), ref.NumNodes(), ref.NumEdges())
	}
	for v := 0; v < n; v++ {
		got := overlayNeighbors(o, NodeID(v))
		want := ref.Neighbors(NodeID(v))
		if len(got) != len(want) {
			t.Fatalf("node %d: %v, want %v", v, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d: %v, want %v", v, got, want)
			}
		}
	}

	// Compact must reproduce the same CSR (same IDs, same sorted lists).
	c := o.Compact()
	if c.NumNodes() != ref.NumNodes() || c.NumEdges() != ref.NumEdges() {
		t.Fatalf("compact n=%d m=%d, ref n=%d m=%d",
			c.NumNodes(), c.NumEdges(), ref.NumNodes(), ref.NumEdges())
	}
	if c.CanonicalHash() != ref.CanonicalHash() {
		t.Fatal("compacted CSR differs from reference graph")
	}
	// A fresh overlay over the compacted base has zero drift and the same
	// edge set.
	o2 := NewOverlay(c)
	if o2.DriftEdges() != 0 || o2.NumEdges() != c.NumEdges() {
		t.Fatal("overlay over compacted base not clean")
	}
}

// rebuildFromSet constructs a graph from an edge set via the Builder
// (sorted insertion order for determinism).
func rebuildFromSet(n int, edges map[Edge]bool) *Graph {
	b := NewBuilder(n)
	list := make([]Edge, 0, len(edges))
	for e := range edges {
		list = append(list, e)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].U != list[j].U {
			return list[i].U < list[j].U
		}
		return list[i].V < list[j].V
	})
	for _, e := range list {
		if err := b.AddEdge(e.U, e.V); err != nil {
			panic(err)
		}
	}
	return b.Build()
}
