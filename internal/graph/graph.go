// Package graph provides the undirected-graph substrate used by every
// algorithm in this repository: a compact adjacency representation,
// construction helpers, generators for the graph families the experiments
// sweep over, elementary traversals, and a deterministic text codec.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected, which
// matches the communication model of the paper: an edge (u, v) is a
// bidirectional communication channel.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. Nodes of a Graph with n nodes are always
// 0 … n-1, so a NodeID doubles as an index into per-node slices.
type NodeID int

// Graph is an immutable simple undirected graph in a CSR-like layout:
// the neighbors of node v are adj[off[v]:off[v+1]], sorted ascending.
// The zero value is the empty graph.
type Graph struct {
	n   int
	m   int // number of undirected edges
	off []int32
	adj []NodeID
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the degree δ(v) of node v (not counting v itself).
func (g *Graph) Degree(v NodeID) int {
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns the open neighborhood of v, sorted ascending.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adj[g.off[v]:g.off[v+1]]
}

// HasEdge reports whether (u, v) is an edge. Runs in O(log δ(u)).
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// MaxDegree returns Δ, the maximum degree over all nodes, and 0 for the
// empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum degree over all nodes, and 0 for the empty
// graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if d := g.Degree(NodeID(v)); d < min {
			min = d
		}
	}
	return min
}

// AvgDegree returns the average degree 2m/n, and 0 for the empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// Edges calls fn for every undirected edge exactly once, with u < v,
// in ascending (u, v) order.
func (g *Graph) Edges(fn func(u, v NodeID)) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				fn(NodeID(u), v)
			}
		}
	}
}

// EdgeList returns all undirected edges with U < V in ascending order.
func (g *Graph) EdgeList() []Edge {
	es := make([]Edge, 0, g.m)
	g.Edges(func(u, v NodeID) { es = append(es, Edge{u, v}) })
	return es
}

// Edge is an undirected edge; canonical form has U < V.
type Edge struct {
	U, V NodeID
}

// Builder accumulates edges and produces an immutable Graph.
// Duplicate edges and self-loops are rejected at Build time with an error
// from AddEdge. The zero value is not usable; call NewBuilder.
type Builder struct {
	n     int
	edges map[Edge]struct{}
}

// NewBuilder returns a Builder for a graph with n nodes (0 … n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Builder{n: n, edges: make(map[Edge]struct{})}
}

// AddEdge records the undirected edge (u, v). It returns an error for
// self-loops, out-of-range endpoints, or duplicates.
func (b *Builder) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u > v {
		u, v = v, u
	}
	e := Edge{u, v}
	if _, dup := b.edges[e]; dup {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	b.edges[e] = struct{}{}
	return nil
}

// TryAddEdge records (u, v) if it is a valid new edge and reports whether it
// was added. Generators use it to skip duplicates without error plumbing.
func (b *Builder) TryAddEdge(u, v NodeID) bool {
	return b.AddEdge(u, v) == nil
}

// HasEdge reports whether (u, v) has been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	if u > v {
		u, v = v, u
	}
	_, ok := b.edges[Edge{u, v}]
	return ok
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable Graph. The Builder remains usable and
// subsequent Builds reflect later additions.
func (b *Builder) Build() *Graph {
	deg := make([]int32, b.n)
	for e := range b.edges {
		deg[e.U]++
		deg[e.V]++
	}
	off := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	adj := make([]NodeID, off[b.n])
	fill := make([]int32, b.n)
	for e := range b.edges {
		adj[off[e.U]+fill[e.U]] = e.V
		fill[e.U]++
		adj[off[e.V]+fill[e.V]] = e.U
		fill[e.V]++
	}
	for v := 0; v < b.n; v++ {
		ns := adj[off[v]:off[v+1]]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	return &Graph{n: b.n, m: len(b.edges), off: off, adj: adj}
}

// fromCanonicalEdges builds a Graph directly from an edge list that is
// already in canonical form: every edge has U < V, edges are in strictly
// ascending (U, V) order, and all endpoints lie in [0, n). Generators that
// enumerate the upper triangle in order (Gnp's geometric skip) use it to
// build the CSR in O(n + m) with no map, no dedup pass and no sort: for
// each node the neighbors smaller than it arrive while the outer edge
// cursor passes their rows (ascending U) and the neighbors larger than it
// arrive during its own row (ascending V), so every adjacency list comes
// out sorted by construction. The contract is unchecked beyond a cheap
// order assertion; callers inside this package must uphold it.
func fromCanonicalEdges(n int, edges []Edge) *Graph {
	deg := make([]int32, n)
	prev := Edge{-1, -1}
	for _, e := range edges {
		if e.U >= e.V || e.U < 0 || int(e.V) >= n ||
			(e.U == prev.U && e.V <= prev.V) || e.U < prev.U {
			panic(fmt.Sprintf("graph: non-canonical edge %v after %v", e, prev))
		}
		prev = e
		deg[e.U]++
		deg[e.V]++
	}
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	adj := make([]NodeID, off[n])
	fill := make([]int32, n)
	for _, e := range edges {
		adj[off[e.U]+fill[e.U]] = e.V
		fill[e.U]++
		adj[off[e.V]+fill[e.V]] = e.U
		fill[e.V]++
	}
	return &Graph{n: n, m: len(edges), off: off, adj: adj}
}

// FromEdges builds a graph with n nodes from an edge list. It returns an
// error on any invalid or duplicate edge.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MustFromEdges is FromEdges that panics on error; intended for tests and
// package-internal literals.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// ClosedNeighborhoodSize returns |N_v| = δ(v) + 1, the closed-neighborhood
// size the paper denotes |N_i|.
func (g *Graph) ClosedNeighborhoodSize(v NodeID) int {
	return g.Degree(v) + 1
}

// Subgraph returns the induced subgraph on keep (which must not contain
// duplicates) and the mapping from new IDs to original IDs.
func (g *Graph) Subgraph(keep []NodeID) (*Graph, []NodeID) {
	newID := make(map[NodeID]NodeID, len(keep))
	orig := make([]NodeID, len(keep))
	for i, v := range keep {
		newID[v] = NodeID(i)
		orig[i] = v
	}
	b := NewBuilder(len(keep))
	for i, v := range keep {
		for _, w := range g.Neighbors(v) {
			if j, ok := newID[w]; ok && NodeID(i) < j {
				b.TryAddEdge(NodeID(i), j)
			}
		}
	}
	return b.Build(), orig
}

// RemoveNodes returns a copy of g with the given nodes (and incident edges)
// deleted, plus the new-to-old ID mapping. Used by failure experiments.
func (g *Graph) RemoveNodes(dead map[NodeID]bool) (*Graph, []NodeID) {
	keep := make([]NodeID, 0, g.n)
	for v := 0; v < g.n; v++ {
		if !dead[NodeID(v)] {
			keep = append(keep, NodeID(v))
		}
	}
	return g.Subgraph(keep)
}
