package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MaxDecodedNodes caps the node count Read accepts, so a hostile or
// corrupt header cannot make the decoder allocate unbounded memory.
const MaxDecodedNodes = 1 << 26

// The text format is deliberately simple and diff-friendly:
//
//	# optional comments
//	graph <n> <m>
//	e <u> <v>          (m lines, u < v)
//
// It round-trips exactly (edges are emitted in canonical ascending order).

// Write encodes g in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %d %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	var err error
	g.Edges(func(u, v NodeID) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "e %d %d\n", u, v)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Read decodes a graph from the text format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	wantEdges, gotEdges := 0, 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "graph":
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: header needs 'graph n m'", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, fields[1])
			}
			if n > MaxDecodedNodes {
				return nil, fmt.Errorf("graph: line %d: node count %d exceeds decoder limit %d",
					line, n, MaxDecodedNodes)
			}
			m, err := strconv.Atoi(fields[2])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("graph: line %d: bad edge count %q", line, fields[2])
			}
			b = NewBuilder(n)
			wantEdges = m
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: edge needs 'e u v'", line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint %q", line, fields[1])
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint %q", line, fields[2])
			}
			if err := b.AddEdge(NodeID(u), NodeID(v)); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
			gotEdges++
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing header")
	}
	if gotEdges != wantEdges {
		return nil, fmt.Errorf("graph: header says %d edges, found %d", wantEdges, gotEdges)
	}
	return b.Build(), nil
}

// String renders a small graph for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Graph(n=%d, m=%d)", g.n, g.m)
	return sb.String()
}
