package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// CanonicalHash returns a hex-encoded SHA-256 digest of the graph's
// canonical structure encoding: the node count, the edge count, and every
// undirected edge (u, v) with u < v in ascending order — the same order
// the text codec emits. Two graphs get the same hash iff they have the
// same node count and edge set, regardless of construction order, so the
// digest is a sound cache key for solver results (together with the
// solver parameters).
func (g *Graph) CanonicalHash() string {
	h := sha256.New()
	var buf [8]byte
	put := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	put(g.n)
	put(g.m)
	g.Edges(func(u, v NodeID) {
		put(int(u))
		put(int(v))
	})
	return hex.EncodeToString(h.Sum(nil))
}
