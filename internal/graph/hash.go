package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// hashChunk is the scratch-buffer size CanonicalHash streams through. One
// buffer covers the header plus hundreds of edges, so the hash state sees
// a handful of large writes instead of two small ones per edge.
const hashChunk = 4096

// CanonicalHash returns a hex-encoded SHA-256 digest of the graph's
// canonical structure encoding: the node count, the edge count, and every
// undirected edge (u, v) with u < v in ascending order — the same order
// the text codec emits. Two graphs get the same hash iff they have the
// same node count and edge set, regardless of construction order, so the
// digest is a sound cache key for solver results (together with the
// solver parameters).
//
// The encoding streams directly over the CSR adjacency: the rows are
// already sorted, so the u < v halves of each row come out in canonical
// order with no edge-list materialization and no sort. Edge endpoints are
// packed as uint32 (the CSR offsets are int32, so node counts beyond 2³¹
// are unrepresentable anyway) into a fixed stack buffer flushed in
// hashChunk-sized writes; the only heap allocations are the constant-size
// hash state and the output string, independent of m — asserted by
// TestCanonicalHashConstantAllocs.
//
// Format note: the uint32 packing and chunked framing replace the
// pre-streaming per-edge uint64 encoding, so digests differ from those
// produced by older versions of this package. The digest is an in-process
// cache key, never persisted, so only same-version comparisons matter.
func (g *Graph) CanonicalHash() string {
	h := sha256.New()
	var buf [hashChunk]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(g.n))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(g.m))
	w := 16
	for u := 0; u < g.n; u++ {
		row := g.adj[g.off[u]:g.off[u+1]]
		// Skip the v < u half of the row; the tail holds the canonical
		// (u, v) pairs of row u.
		lo := 0
		for lo < len(row) && int(row[lo]) < u {
			lo++
		}
		for _, v := range row[lo:] {
			if w+8 > hashChunk {
				h.Write(buf[:w])
				w = 0
			}
			binary.LittleEndian.PutUint32(buf[w:w+4], uint32(u))
			binary.LittleEndian.PutUint32(buf[w+4:w+8], uint32(v))
			w += 8
		}
	}
	if w > 0 {
		h.Write(buf[:w])
	}
	sum := h.Sum(buf[:0])
	return hex.EncodeToString(sum)
}
