package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	mustAdd := func(u, v NodeID) {
		t.Helper()
		if err := b.AddEdge(u, v); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
		}
	}
	mustAdd(0, 1)
	mustAdd(2, 1)
	mustAdd(3, 0)
	g := b.Build()

	if g.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []NodeID{0, 2}) {
		t.Errorf("Neighbors(1) = %v, want [0 2]", got)
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(0, 1) {
		t.Error("HasEdge(1,0)/(0,1) should be true")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) should be false")
	}
	if g.HasEdge(2, 2) {
		t.Error("self-loop HasEdge must be false")
	}
}

func TestBuilderRejectsInvalidEdges(t *testing.T) {
	b := NewBuilder(3)
	tests := []struct {
		name string
		u, v NodeID
	}{
		{"self-loop", 1, 1},
		{"negative", -1, 0},
		{"out of range", 0, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := b.AddEdge(tt.u, tt.v); err == nil {
				t.Errorf("AddEdge(%d,%d) should fail", tt.u, tt.v)
			}
		})
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge should fail")
	}
}

func TestDegreeStats(t *testing.T) {
	g := Star(5) // center 0 with 4 leaves
	if got := g.MaxDegree(); got != 4 {
		t.Errorf("MaxDegree = %d, want 4", got)
	}
	if got := g.MinDegree(); got != 1 {
		t.Errorf("MinDegree = %d, want 1", got)
	}
	if got := g.AvgDegree(); got != 8.0/5.0 {
		t.Errorf("AvgDegree = %v, want 1.6", got)
	}
	if got := g.ClosedNeighborhoodSize(0); got != 5 {
		t.Errorf("ClosedNeighborhoodSize(center) = %d, want 5", got)
	}
}

func TestEdgesCanonicalOrder(t *testing.T) {
	g := MustFromEdges(4, []Edge{{2, 3}, {0, 2}, {1, 0}})
	var got []Edge
	g.Edges(func(u, v NodeID) { got = append(got, Edge{u, v}) })
	want := []Edge{{0, 1}, {0, 2}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Edges order = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(g.EdgeList(), want) {
		t.Errorf("EdgeList = %v, want %v", g.EdgeList(), want)
	}
}

func TestGeneratorShapes(t *testing.T) {
	tests := []struct {
		name      string
		g         *Graph
		wantNodes int
		wantEdges int
	}{
		{"ring", Ring(10), 10, 10},
		{"path", Path(10), 10, 9},
		{"star", Star(7), 7, 6},
		{"complete", Complete(6), 6, 15},
		{"grid3x4", Grid(3, 4), 12, 17},
		{"caterpillar", Caterpillar(4, 2), 12, 11},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.NumNodes() != tt.wantNodes {
				t.Errorf("nodes = %d, want %d", tt.g.NumNodes(), tt.wantNodes)
			}
			if tt.g.NumEdges() != tt.wantEdges {
				t.Errorf("edges = %d, want %d", tt.g.NumEdges(), tt.wantEdges)
			}
		})
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 57, 200} {
		g := RandomTree(n, 42)
		if n >= 1 && g.NumEdges() != n-1 && n > 1 {
			t.Errorf("n=%d: edges = %d, want %d", n, g.NumEdges(), n-1)
		}
		if !g.IsConnected() {
			t.Errorf("n=%d: tree not connected", n)
		}
	}
}

func TestGnpDeterministicAndPlausible(t *testing.T) {
	a := Gnp(100, 0.1, 7)
	b := Gnp(100, 0.1, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	c := Gnp(100, 0.1, 8)
	if a.NumEdges() == c.NumEdges() && reflect.DeepEqual(a.EdgeList(), c.EdgeList()) {
		t.Error("different seeds gave identical graphs")
	}
	// E[m] = 0.1 * 4950 = 495; allow wide slack.
	if m := a.NumEdges(); m < 350 || m > 650 {
		t.Errorf("Gnp edge count %d implausible for p=0.1", m)
	}
}

func TestRandomRegularishDegrees(t *testing.T) {
	g := RandomRegularish(100, 6, 3)
	if d := g.MaxDegree(); d > 6 {
		t.Errorf("MaxDegree = %d, want <= 6", d)
	}
	if d := g.AvgDegree(); d < 4.5 {
		t.Errorf("AvgDegree = %v, too far below 6", d)
	}
}

func TestPreferentialAttachmentConnected(t *testing.T) {
	g := PreferentialAttachment(200, 2, 11)
	if !g.IsConnected() {
		t.Error("PA graph with m=2 should be connected")
	}
	if g.MaxDegree() < 8 {
		t.Errorf("PA MaxDegree = %d, expected a hub", g.MaxDegree())
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g := Path(5)
	dist := g.BFS(0)
	want := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(dist, want) {
		t.Errorf("BFS = %v, want %v", dist, want)
	}
	if d := g.Diameter(); d != 4 {
		t.Errorf("Diameter = %d, want 4", d)
	}
	g2 := MustFromEdges(4, []Edge{{0, 1}, {2, 3}})
	if d := g2.Diameter(); d != -1 {
		t.Errorf("disconnected Diameter = %d, want -1", d)
	}
}

func TestComponents(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1}, {1, 2}, {4, 5}})
	comp, nc := g.Components()
	if nc != 3 {
		t.Fatalf("components = %d, want 3", nc)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] == comp[0] || comp[3] == comp[4] {
		t.Error("3 should be isolated")
	}
	if comp[4] != comp[5] {
		t.Error("4,5 should share a component")
	}
}

func TestKHopNeighborhood(t *testing.T) {
	g := Path(7)
	got := g.KHopNeighborhood(3, 2)
	want := []NodeID{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("KHop(3,2) = %v, want %v", got, want)
	}
	if got := g.KHopNeighborhood(0, 0); !reflect.DeepEqual(got, []NodeID{0}) {
		t.Errorf("KHop(0,0) = %v, want [0]", got)
	}
}

func TestMaxDegreeWithinHops(t *testing.T) {
	g := Star(6) // center 0 degree 5, leaves degree 1
	local := g.MaxDegreeWithinHops(1)
	for v := 0; v < 6; v++ {
		if local[v] != 5 {
			t.Errorf("local Δ at %d = %d, want 5 (center within 1 hop)", v, local[v])
		}
	}
	g2 := Path(5)
	local0 := g2.MaxDegreeWithinHops(0)
	if local0[0] != 1 || local0[2] != 2 {
		t.Errorf("0-hop local Δ = %v", local0)
	}
}

func TestSubgraphAndRemoveNodes(t *testing.T) {
	g := Complete(5)
	sub, orig := g.Subgraph([]NodeID{1, 3, 4})
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced K3 expected, got n=%d m=%d", sub.NumNodes(), sub.NumEdges())
	}
	if !reflect.DeepEqual(orig, []NodeID{1, 3, 4}) {
		t.Errorf("orig mapping = %v", orig)
	}
	rem, orig2 := g.RemoveNodes(map[NodeID]bool{0: true, 2: true})
	if rem.NumNodes() != 3 || rem.NumEdges() != 3 {
		t.Errorf("RemoveNodes gave n=%d m=%d", rem.NumNodes(), rem.NumEdges())
	}
	if !reflect.DeepEqual(orig2, []NodeID{1, 3, 4}) {
		t.Errorf("RemoveNodes mapping = %v", orig2)
	}
}

func TestIORoundTrip(t *testing.T) {
	gs := []*Graph{
		NewBuilder(0).Build(),
		NewBuilder(3).Build(),
		Ring(8),
		Gnp(50, 0.15, 5),
		Caterpillar(5, 3),
	}
	for i, g := range gs {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("case %d: Write: %v", i, err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("case %d: Read: %v", i, err)
		}
		if back.NumNodes() != g.NumNodes() || !reflect.DeepEqual(back.EdgeList(), g.EdgeList()) {
			t.Errorf("case %d: round-trip mismatch", i)
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no header", "e 0 1\n"},
		{"bad counts", "graph -1 0\n"},
		{"edge count mismatch", "graph 3 2\ne 0 1\n"},
		{"self loop", "graph 2 1\ne 1 1\n"},
		{"duplicate", "graph 3 2\ne 0 1\ne 1 0\n"},
		{"unknown record", "graph 2 0\nx 0 1\n"},
		{"double header", "graph 2 0\ngraph 2 0\n"},
		{"absurd node count", "graph 999999999 0\n"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(bytes.NewReader([]byte(tt.in))); err == nil {
				t.Errorf("Read(%q) should fail", tt.in)
			}
		})
	}
}

// Property: any generated graph round-trips through the codec.
func TestQuickIORoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%60) + 1
		p := float64(pRaw) / 255
		g := Gnp(n, p, seed)
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return back.NumNodes() == g.NumNodes() &&
			reflect.DeepEqual(back.EdgeList(), g.EdgeList())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: neighbor lists are sorted, deduplicated, and symmetric.
func TestQuickAdjacencyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(80) + 2
		g := Gnp(n, r.Float64(), seed+1)
		for v := 0; v < g.NumNodes(); v++ {
			ns := g.Neighbors(NodeID(v))
			for i, w := range ns {
				if w == NodeID(v) {
					return false // self-loop
				}
				if i > 0 && ns[i-1] >= w {
					return false // unsorted or duplicate
				}
				if !g.HasEdge(w, NodeID(v)) {
					return false // asymmetric
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGenerateFamilies(t *testing.T) {
	for _, f := range []Family{FamilyGnp, FamilyRegular, FamilyGrid, FamilyTree, FamilyPowerLaw, FamilyRing} {
		g, err := Generate(f, 64, 6, 1)
		if err != nil {
			t.Fatalf("Generate(%s): %v", f, err)
		}
		if g.NumNodes() < 60 {
			t.Errorf("Generate(%s): n = %d, want >= 60", f, g.NumNodes())
		}
	}
	if _, err := Generate(Family("nope"), 10, 2, 1); err == nil {
		t.Error("unknown family should error")
	}
}

func TestCliqueChain(t *testing.T) {
	g := CliqueChain(3, 4, nil)
	if g.NumNodes() != 12 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	// 3 * C(4,2) + 2 bridges = 18 + 2
	if g.NumEdges() != 20 {
		t.Errorf("m = %d, want 20", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("clique chain should be connected")
	}
}
