package graph

import "testing"

func TestCanonicalHashInsertionOrderIndependent(t *testing.T) {
	a := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	b := MustFromEdges(4, []Edge{{0, 3}, {2, 3}, {0, 1}, {1, 2}})
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("same edge set in different insertion order hashed differently")
	}
}

func TestCanonicalHashDistinguishesGraphs(t *testing.T) {
	base := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	cases := map[string]*Graph{
		"extra edge":       MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}}),
		"different edge":   MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {1, 3}}),
		"extra iso node":   MustFromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}}),
		"fewer edges":      MustFromEdges(4, []Edge{{0, 1}, {1, 2}}),
		"relabeledancestr": MustFromEdges(4, []Edge{{0, 2}, {1, 2}, {1, 3}}),
	}
	for name, g := range cases {
		if g.CanonicalHash() == base.CanonicalHash() {
			t.Errorf("%s: hash collides with base graph", name)
		}
	}
}

func TestCanonicalHashStableAndEmptyGraph(t *testing.T) {
	var empty Graph
	h1 := empty.CanonicalHash()
	h2 := empty.CanonicalHash()
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("empty-graph hash not stable 64-hex: %q vs %q", h1, h2)
	}
	g := MustFromEdges(3, []Edge{{0, 1}})
	if g.CanonicalHash() == h1 {
		t.Fatal("non-empty graph hashes like the empty graph")
	}
}
