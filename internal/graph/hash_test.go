package graph

import "testing"

// CanonicalHash must allocate O(1) beyond the hash state no matter how
// many edges it digests: the streaming encoder reuses one fixed chunk
// buffer, so a 50k-edge graph costs the same handful of allocations as a
// tiny one (hash state, digest, hex string — never per-edge).
func TestCanonicalHashConstantAllocs(t *testing.T) {
	big := GnpAvgDegree(10000, 10, 3) // ~50k edges
	if m := big.NumEdges(); m < 40000 {
		t.Fatalf("test graph too small: %d edges", m)
	}
	small := MustFromEdges(3, []Edge{{0, 1}})
	allocsBig := testing.AllocsPerRun(10, func() { big.CanonicalHash() })
	allocsSmall := testing.AllocsPerRun(10, func() { small.CanonicalHash() })
	if allocsBig > allocsSmall+1 {
		t.Errorf("50k-edge hash allocates %v vs %v for a 1-edge graph — not O(1)",
			allocsBig, allocsSmall)
	}
	if allocsBig > 8 {
		t.Errorf("hash allocates %v per op, want ≤ 8", allocsBig)
	}
}

func BenchmarkCanonicalHash50kEdges(b *testing.B) {
	g := GnpAvgDegree(10000, 10, 3)
	b.ReportAllocs()
	b.SetBytes(int64(16 + 8*g.NumEdges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CanonicalHash()
	}
}

func TestCanonicalHashInsertionOrderIndependent(t *testing.T) {
	a := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	b := MustFromEdges(4, []Edge{{0, 3}, {2, 3}, {0, 1}, {1, 2}})
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("same edge set in different insertion order hashed differently")
	}
}

func TestCanonicalHashDistinguishesGraphs(t *testing.T) {
	base := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	cases := map[string]*Graph{
		"extra edge":       MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}}),
		"different edge":   MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {1, 3}}),
		"extra iso node":   MustFromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}}),
		"fewer edges":      MustFromEdges(4, []Edge{{0, 1}, {1, 2}}),
		"relabeledancestr": MustFromEdges(4, []Edge{{0, 2}, {1, 2}, {1, 3}}),
	}
	for name, g := range cases {
		if g.CanonicalHash() == base.CanonicalHash() {
			t.Errorf("%s: hash collides with base graph", name)
		}
	}
}

func TestCanonicalHashStableAndEmptyGraph(t *testing.T) {
	var empty Graph
	h1 := empty.CanonicalHash()
	h2 := empty.CanonicalHash()
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("empty-graph hash not stable 64-hex: %q vs %q", h1, h2)
	}
	g := MustFromEdges(3, []Edge{{0, 1}})
	if g.CanonicalHash() == h1 {
		t.Fatal("non-empty graph hashes like the empty graph")
	}
}
