package graph

import (
	"fmt"
	"sort"
)

// Overlay is a mutable view over an immutable base Graph: a per-node delta
// adjacency (edges added since the base was built, base edges deleted
// since) plus appended nodes. It is the topology substrate of the
// incremental churn engine: a long-lived session applies streams of
// add_edge / del_edge / add_node deltas without rebuilding the CSR, and
// iteration merges base and delta lists in ascending order so every
// consumer sees the same deterministic neighbor order a compacted CSR
// would give. When the accumulated drift exceeds a bound the owner calls
// Compact, which folds the deltas into a fresh CSR with identical node
// IDs, and starts a new (empty) overlay on top of it.
//
// Overlay is not safe for concurrent use; sessions serialize access.
type Overlay struct {
	base *Graph
	n    int // ≥ base.n; nodes base.n … n-1 were appended
	m    int // current undirected edge count

	// add[v] holds v's neighbors over edges added since base, sorted
	// ascending; del[v] holds v's base neighbors removed since base,
	// sorted ascending. Both are nil for untouched nodes. An edge is
	// present iff (in base and not in del) or in add.
	add [][]NodeID
	del [][]NodeID

	// addEdges/delEdges count undirected delta edges currently in force
	// (re-adding a deleted base edge cancels the deletion and vice versa),
	// so addEdges+delEdges is the exact CSR drift.
	addEdges int
	delEdges int
}

// NewOverlay starts an empty overlay over base.
func NewOverlay(base *Graph) *Overlay {
	return &Overlay{base: base, n: base.NumNodes(), m: base.NumEdges()}
}

// Base returns the underlying immutable CSR.
func (o *Overlay) Base() *Graph { return o.base }

// NumNodes returns the current node count (base nodes plus appended ones).
func (o *Overlay) NumNodes() int { return o.n }

// NumEdges returns the current undirected edge count.
func (o *Overlay) NumEdges() int { return o.m }

// DriftEdges returns the number of undirected delta edges in force — the
// distance between the overlay and its base CSR. Cancelling pairs (delete
// then re-add) contribute zero.
func (o *Overlay) DriftEdges() int { return o.addEdges + o.delEdges }

// AddedNodes returns how many nodes were appended since the base.
func (o *Overlay) AddedNodes() int { return o.n - o.base.NumNodes() }

// AddNode appends a fresh isolated node and returns its ID.
func (o *Overlay) AddNode() NodeID {
	v := NodeID(o.n)
	o.n++
	return v
}

func (o *Overlay) checkPair(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if u < 0 || v < 0 || int(u) >= o.n || int(v) >= o.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, o.n)
	}
	return nil
}

// sortedContains reports whether x occurs in the ascending slice s.
func sortedContains(s []NodeID, x NodeID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// sortedInsert inserts x into the ascending slice s (x must be absent).
func sortedInsert(s []NodeID, x NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// sortedRemove removes x from the ascending slice s (x must be present).
func sortedRemove(s []NodeID, x NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// inBase reports whether (u, v) is a base edge (false for appended nodes).
func (o *Overlay) inBase(u, v NodeID) bool {
	return int(u) < o.base.NumNodes() && int(v) < o.base.NumNodes() && o.base.HasEdge(u, v)
}

// HasEdge reports whether (u, v) is currently an edge.
func (o *Overlay) HasEdge(u, v NodeID) bool {
	if u == v || u < 0 || v < 0 || int(u) >= o.n || int(v) >= o.n {
		return false
	}
	if int(u) < len(o.add) && sortedContains(o.add[u], v) {
		return true
	}
	if !o.inBase(u, v) {
		return false
	}
	return int(u) >= len(o.del) || !sortedContains(o.del[u], v)
}

// grow makes the delta slices cover node v and returns it as an index.
func (o *Overlay) grow(v NodeID) int {
	for len(o.add) <= int(v) {
		o.add = append(o.add, nil)
		o.del = append(o.del, nil)
	}
	return int(v)
}

// AddEdge inserts the undirected edge (u, v); the edge must not exist.
func (o *Overlay) AddEdge(u, v NodeID) error {
	if err := o.checkPair(u, v); err != nil {
		return err
	}
	if o.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	o.grow(u)
	o.grow(v)
	if o.inBase(u, v) {
		// Re-adding a previously deleted base edge: cancel the deletion.
		o.del[u] = sortedRemove(o.del[u], v)
		o.del[v] = sortedRemove(o.del[v], u)
		o.delEdges--
	} else {
		o.add[u] = sortedInsert(o.add[u], v)
		o.add[v] = sortedInsert(o.add[v], u)
		o.addEdges++
	}
	o.m++
	return nil
}

// DelEdge removes the undirected edge (u, v); the edge must exist.
func (o *Overlay) DelEdge(u, v NodeID) error {
	if err := o.checkPair(u, v); err != nil {
		return err
	}
	if !o.HasEdge(u, v) {
		return fmt.Errorf("graph: no edge (%d,%d)", u, v)
	}
	o.grow(u)
	o.grow(v)
	if o.inBase(u, v) {
		o.del[u] = sortedInsert(o.del[u], v)
		o.del[v] = sortedInsert(o.del[v], u)
		o.delEdges++
	} else {
		// Deleting an overlay-added edge: cancel the addition.
		o.add[u] = sortedRemove(o.add[u], v)
		o.add[v] = sortedRemove(o.add[v], u)
		o.addEdges--
	}
	o.m--
	return nil
}

// Degree returns v's current degree.
func (o *Overlay) Degree(v NodeID) int {
	d := 0
	if int(v) < o.base.NumNodes() {
		d = o.base.Degree(v)
	}
	if int(v) < len(o.add) {
		d += len(o.add[v]) - len(o.del[v])
	}
	return d
}

// ForNeighbors visits v's current neighbors in ascending ID order,
// merging the base adjacency (minus deletions) with the added edges.
func (o *Overlay) ForNeighbors(v NodeID, fn func(w NodeID)) {
	var base, del, added []NodeID
	if int(v) < o.base.NumNodes() {
		base = o.base.Neighbors(v)
	}
	if int(v) < len(o.add) {
		added = o.add[v]
		del = o.del[v]
	}
	ai := 0
	di := 0
	for _, w := range base {
		for di < len(del) && del[di] < w {
			di++
		}
		if di < len(del) && del[di] == w {
			di++
			continue
		}
		for ai < len(added) && added[ai] < w {
			fn(added[ai])
			ai++
		}
		fn(w)
	}
	for ; ai < len(added); ai++ {
		fn(added[ai])
	}
}

// AppendNeighbors appends v's current neighbors (ascending) to buf and
// returns the extended slice; callers reuse buf to stay allocation-free.
func (o *Overlay) AppendNeighbors(v NodeID, buf []NodeID) []NodeID {
	o.ForNeighbors(v, func(w NodeID) { buf = append(buf, w) })
	return buf
}

// Compact folds the overlay into a fresh CSR with identical node IDs and
// edge set. The overlay itself is unchanged; the caller typically wraps
// the result in a new overlay.
func (o *Overlay) Compact() *Graph {
	deg := make([]int32, o.n)
	for v := 0; v < o.n; v++ {
		deg[v] = int32(o.Degree(NodeID(v)))
	}
	off := make([]int32, o.n+1)
	for v := 0; v < o.n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	adj := make([]NodeID, off[o.n])
	fill := make([]int32, o.n)
	for v := 0; v < o.n; v++ {
		o.ForNeighbors(NodeID(v), func(w NodeID) {
			adj[off[v]+fill[v]] = w
			fill[v]++
		})
	}
	return &Graph{n: o.n, m: o.m, off: off, adj: adj}
}
