package graph

import (
	"bytes"
	"testing"
)

// FuzzCanonicalHash checks the digest's contract from both sides: the
// hash is invariant under edge-list permutation and re-insertion of
// duplicate edges (same node count + edge set ⇒ same hash), and it
// separates graphs that differ by a single edge (different edge set ⇒
// different hash). The raw bytes encode n plus a stream of candidate
// endpoint pairs.
func FuzzCanonicalHash(f *testing.F) {
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3})
	f.Add([]byte{3, 0, 1, 0, 1, 1, 2}) // duplicate (0,1) in the stream
	f.Add([]byte{1})
	f.Add([]byte{64, 9, 33, 12, 40, 40, 12, 63, 0})
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) == 0 || len(in) > 1<<10 {
			return
		}
		n := int(in[0])%64 + 1
		var edges []Edge
		seen := make(map[Edge]bool)
		for i := 1; i+1 < len(in); i += 2 {
			u, v := NodeID(int(in[i])%n), NodeID(int(in[i+1])%n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			e := Edge{u, v}
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}

		g1 := MustFromEdges(n, edges)
		want := g1.CanonicalHash()

		// Permuted insertion order plus interleaved duplicates must not
		// change the digest: the CSR canonicalizes both away.
		b := NewBuilder(n)
		for i := len(edges) - 1; i >= 0; i-- {
			if err := b.AddEdge(edges[i].U, edges[i].V); err != nil {
				t.Fatalf("AddEdge(%v): %v", edges[i], err)
			}
			b.TryAddEdge(edges[i].V, edges[i].U) // duplicate, silently skipped
		}
		if got := b.Build().CanonicalHash(); got != want {
			t.Fatalf("hash differs under edge permutation: %s vs %s", got, want)
		}

		// Dropping any one edge must change the digest.
		if len(edges) > 0 {
			g3 := MustFromEdges(n, edges[1:])
			if g3.CanonicalHash() == want {
				t.Fatalf("hash unchanged after removing edge %v", edges[0])
			}
		}
	})
}

// FuzzRead ensures the graph codec never panics and that anything it
// accepts re-encodes to a parseable, equivalent graph.
func FuzzRead(f *testing.F) {
	f.Add("graph 3 2\ne 0 1\ne 1 2\n")
	f.Add("graph 0 0\n")
	f.Add("# comment\ngraph 2 1\ne 0 1\n")
	f.Add("graph 5 0\n\n\n")
	f.Add("e 0 1\ngraph 2 1\n")
	f.Add("graph 999999999 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		g, err := Read(bytes.NewReader([]byte(in)))
		if err != nil {
			return
		}
		// Reject absurd accepted sizes to keep the round-trip cheap.
		if g.NumNodes() > 1<<14 {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round-trip changed shape: %v vs %v", back, g)
		}
	})
}
