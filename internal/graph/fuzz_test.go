package graph

import (
	"bytes"
	"testing"
)

// FuzzRead ensures the graph codec never panics and that anything it
// accepts re-encodes to a parseable, equivalent graph.
func FuzzRead(f *testing.F) {
	f.Add("graph 3 2\ne 0 1\ne 1 2\n")
	f.Add("graph 0 0\n")
	f.Add("# comment\ngraph 2 1\ne 0 1\n")
	f.Add("graph 5 0\n\n\n")
	f.Add("e 0 1\ngraph 2 1\n")
	f.Add("graph 999999999 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		g, err := Read(bytes.NewReader([]byte(in)))
		if err != nil {
			return
		}
		// Reject absurd accepted sizes to keep the round-trip cheap.
		if g.NumNodes() > 1<<14 {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round-trip changed shape: %v vs %v", back, g)
		}
	})
}
