package graph

import (
	"fmt"
	"math/rand"

	"ftclust/internal/rng"
)

// Gnp returns an Erdős–Rényi random graph G(n, p): each of the n(n-1)/2
// potential edges is present independently with probability p.
func Gnp(n int, p float64, seed int64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.TryAddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return b.Build()
}

// GnpAvgDegree returns G(n, p) with p chosen so the expected average degree
// is d, i.e. p = d/(n-1).
func GnpAvgDegree(n int, d float64, seed int64) *Graph {
	if n <= 1 {
		return NewBuilder(n).Build()
	}
	p := d / float64(n-1)
	if p > 1 {
		p = 1
	}
	return Gnp(n, p, seed)
}

// RandomRegularish returns a graph where every node has degree close to d,
// built by the pairing model with rejection of loops and duplicates. The
// result is not exactly regular (rejected pairs are dropped) but has maximum
// degree exactly d and minimum degree ≥ d-2 with high probability. It serves
// as a low-variance-degree workload for the general-graph experiments.
func RandomRegularish(n, d int, seed int64) *Graph {
	if d >= n {
		d = n - 1
	}
	r := rng.New(seed)
	stubs := make([]NodeID, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, NodeID(v))
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := NewBuilder(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		b.TryAddEdge(stubs[i], stubs[i+1])
	}
	return b.Build()
}

// Grid returns the rows × cols grid graph (4-neighborhood). Node (r, c) has
// ID r*cols + c.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.TryAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.TryAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Ring returns the cycle C_n (for n >= 3); for n < 3 it returns a path.
func Ring(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n-1; v++ {
		b.TryAddEdge(NodeID(v), NodeID(v+1))
	}
	if n >= 3 {
		b.TryAddEdge(NodeID(n-1), 0)
	}
	return b.Build()
}

// Path returns the path P_n.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n-1; v++ {
		b.TryAddEdge(NodeID(v), NodeID(v+1))
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.TryAddEdge(0, NodeID(v))
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.TryAddEdge(NodeID(u), NodeID(v))
		}
	}
	return b.Build()
}

// RandomTree returns a uniformly random labelled tree on n nodes, decoded
// from a random Prüfer sequence.
func RandomTree(n int, seed int64) *Graph {
	if n <= 1 {
		return NewBuilder(n).Build()
	}
	if n == 2 {
		return MustFromEdges(2, []Edge{{0, 1}})
	}
	r := rng.New(seed)
	pruefer := make([]int, n-2)
	for i := range pruefer {
		pruefer[i] = r.Intn(n)
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, v := range pruefer {
		deg[v]++
	}
	b := NewBuilder(n)
	// Standard Prüfer decoding with a pointer sweep over candidate leaves.
	ptr, leaf := 0, -1
	for ptr < n && deg[ptr] != 1 {
		ptr++
	}
	leaf = ptr
	for _, v := range pruefer {
		b.TryAddEdge(NodeID(leaf), NodeID(v))
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for ptr < n && deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	b.TryAddEdge(NodeID(leaf), NodeID(n-1))
	return b.Build()
}

// PreferentialAttachment returns a Barabási–Albert-style graph: nodes arrive
// one at a time and connect m edges to existing nodes chosen proportionally
// to their current degree (plus one, so isolated seeds can be chosen).
// It produces the heavy-tailed degree distributions that stress the
// Δ-dependent bounds of the general-graph algorithm.
func PreferentialAttachment(n, m int, seed int64) *Graph {
	if m < 1 {
		m = 1
	}
	r := rng.New(seed)
	b := NewBuilder(n)
	// targets holds one entry per degree unit (plus one per node), so a
	// uniform pick over it is a degree-proportional pick.
	targets := make([]NodeID, 0, 2*n*m)
	for v := 0; v < n; v++ {
		targets = append(targets, NodeID(v))
		if v == 0 {
			continue
		}
		want := m
		if v < m {
			want = v
		}
		added := 0
		for attempt := 0; added < want && attempt < 20*want; attempt++ {
			u := targets[r.Intn(len(targets))]
			if u != NodeID(v) && b.TryAddEdge(NodeID(v), u) {
				targets = append(targets, u, NodeID(v))
				added++
			}
		}
	}
	return b.Build()
}

// Caterpillar returns a path of length spine where each spine node has legs
// pendant leaves. Caterpillars are worst-case-ish instances for dominating
// set heuristics (leaves force their spine nodes).
func Caterpillar(spine, legs int) *Graph {
	n := spine + spine*legs
	b := NewBuilder(n)
	for v := 0; v < spine-1; v++ {
		b.TryAddEdge(NodeID(v), NodeID(v+1))
	}
	next := spine
	for v := 0; v < spine; v++ {
		for l := 0; l < legs; l++ {
			b.TryAddEdge(NodeID(v), NodeID(next))
			next++
		}
	}
	return b.Build()
}

// CliqueChain returns c cliques of size s connected in a chain by single
// bridge edges. Useful as a clustered workload with known small optima.
func CliqueChain(c, s int, _ *rand.Rand) *Graph {
	b := NewBuilder(c * s)
	for ci := 0; ci < c; ci++ {
		base := ci * s
		for u := 0; u < s; u++ {
			for v := u + 1; v < s; v++ {
				b.TryAddEdge(NodeID(base+u), NodeID(base+v))
			}
		}
		if ci+1 < c {
			b.TryAddEdge(NodeID(base+s-1), NodeID(base+s))
		}
	}
	return b.Build()
}

// Family identifies a generator family for experiment sweeps.
type Family string

// Graph families used throughout the experiment suite.
const (
	FamilyGnp      Family = "gnp"
	FamilyRegular  Family = "regular"
	FamilyGrid     Family = "grid"
	FamilyTree     Family = "tree"
	FamilyPowerLaw Family = "powerlaw"
	FamilyRing     Family = "ring"
)

// Generate builds a member of family with roughly n nodes and average-degree
// knob d (interpreted per family). It is the single entry point experiment
// drivers use.
func Generate(f Family, n int, d float64, seed int64) (*Graph, error) {
	switch f {
	case FamilyGnp:
		return GnpAvgDegree(n, d, seed), nil
	case FamilyRegular:
		return RandomRegularish(n, int(d+0.5), seed), nil
	case FamilyGrid:
		side := 1
		for side*side < n {
			side++
		}
		return Grid(side, side), nil
	case FamilyTree:
		return RandomTree(n, seed), nil
	case FamilyPowerLaw:
		m := int(d/2 + 0.5)
		if m < 1 {
			m = 1
		}
		return PreferentialAttachment(n, m, seed), nil
	case FamilyRing:
		return Ring(n), nil
	default:
		return nil, fmt.Errorf("graph: unknown family %q", f)
	}
}
