// Package trace renders experiment results as aligned text tables and CSV,
// the two output formats of cmd/ftbench and EXPERIMENTS.md.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	// Title names the experiment (e.g. "E1 fractional trade-off").
	Title string
	// Note is an optional caption explaining how to read the table.
	Note string
	// Headers are the column names.
	Headers []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are rendered with %v, floats with %.4g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i (for tests).
func (t *Table) Row(i int) []string { return t.rows[i] }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders the table as CSV (no quoting needed: cells are numeric
// or simple identifiers; commas in cells are replaced by semicolons).
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	for i, h := range t.Headers {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(clean(h))
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(clean(c))
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
