package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.Note = "a caption"
	tb.AddRow("alpha", 1.25)
	tb.AddRow("b", 100)
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "a caption", "name", "alpha", "1.25", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	if got := tb.Row(0)[0]; got != "alpha" {
		t.Errorf("Row(0)[0] = %q", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := New("x", "a,b", "c")
	tb.AddRow("v,1", 2)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "a;b,c" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "v;1,2" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("f", "v")
	tb.AddRow(1.0 / 3.0)
	if got := tb.Row(0)[0]; got != "0.3333" {
		t.Errorf("float cell = %q, want 0.3333", got)
	}
	tb.AddRow(float32(2.5))
	if got := tb.Row(1)[0]; got != "2.5" {
		t.Errorf("float32 cell = %q", got)
	}
}
