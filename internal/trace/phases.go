package trace

import (
	"fmt"
	"time"

	"ftclust/internal/obs"
)

// PhaseTable renders one solve's observer output — the per-phase span
// breakdown plus the solve summary — as a table, the shared backend of
// `kmds -trace` and `ftbench -trace`.
func PhaseTable(phases []obs.PhaseInfo, stats obs.SolveStats) *Table {
	t := New("solve phase breakdown", "phase", "rounds", "wall_ms", "share_%", "alloc_objs")
	var total time.Duration
	var allocs uint64
	rounds := 0
	for _, p := range phases {
		total += p.Duration
		allocs += p.AllocObjects
		rounds += p.Rounds
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, p := range phases {
		share := 0.0
		if total > 0 {
			share = 100 * float64(p.Duration) / float64(total)
		}
		t.AddRow(p.Name, p.Rounds, ms(p.Duration), share, p.AllocObjects)
	}
	t.AddRow("total", rounds, ms(total), 100.0, allocs)
	t.Note = fmt.Sprintf(
		"|S|=%d sampled=%d repaired=%d feasible=%v  obj=%.4g κ=%.4g lower=%.4g gap=%.4g",
		stats.SetSize, stats.Sampled, stats.Repaired, stats.Feasible,
		stats.FractionalObjective, stats.Kappa, stats.DualLowerBound, stats.DualGap)
	return t
}
