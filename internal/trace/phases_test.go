package trace

import (
	"strings"
	"testing"
	"time"

	"ftclust/internal/obs"
)

func TestPhaseTable(t *testing.T) {
	phases := []obs.PhaseInfo{
		{Name: "fractional", Duration: 3 * time.Millisecond, Rounds: 18, AllocObjects: 5},
		{Name: "rounding", Duration: time.Millisecond, Rounds: 4, AllocObjects: 7},
		{Name: "verify", Duration: time.Millisecond, Rounds: 0},
	}
	stats := obs.SolveStats{
		LPRounds: 18, RoundingPasses: 2, SetSize: 42, Sampled: 40, Repaired: 2,
		FractionalObjective: 30, Kappa: 8, DualLowerBound: 10, DualGap: 20, Feasible: true,
	}
	tb := PhaseTable(phases, stats)
	if tb.NumRows() != 4 { // three phases + total
		t.Fatalf("rows = %d, want 4", tb.NumRows())
	}
	total := tb.Row(3)
	if total[0] != "total" || total[1] != "22" { // 18 + 4 + 0
		t.Errorf("total row = %v", total)
	}
	if total[4] != "12" { // 5 + 7 allocated objects
		t.Errorf("total allocs = %q, want 12", total[4])
	}
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fractional", "|S|=42", "κ=8", "gap=20", "share_%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Shares must sum to ~100 across the phase rows.
	if !strings.Contains(out, "60") { // 3ms of 5ms
		t.Errorf("fractional share not rendered:\n%s", out)
	}
}
