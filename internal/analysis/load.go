package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. ftclust/internal/core
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages. One Loader shares a FileSet
// and a source importer across every package it loads, so the standard
// library and this module's internals are each type-checked at most once
// per process no matter how many packages are analyzed.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
	ctxt build.Context
}

// NewLoader returns a Loader backed by the stdlib "source" importer,
// which resolves and type-checks imports from source — the only importer
// that works without export data or network access.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	ctxt := build.Default
	// Pure-Go builds only: the analyzers never need cgo-augmented
	// types, and the source importer cannot process cgo files.
	ctxt.CgoEnabled = false
	return &Loader{
		Fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
		ctxt: ctxt,
	}
}

// LoadDir parses and type-checks the single package in dir, recording it
// under importPath. Test files are excluded: the determinism, aliasing,
// and concurrency contracts govern shipped code, while tests legitimately
// use wall-clocks, global randomness, and unguarded closures.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("ftlint: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("ftlint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Load resolves package patterns relative to the module rooted at or
// above startDir and loads each matched package. Supported patterns are
// the ones ftlint needs: "./..." (every package under the module root),
// "dir/...", and plain relative directories. testdata trees, hidden
// directories, and directories with no buildable non-test Go files are
// skipped when expanding "...".
func (l *Loader) Load(startDir string, patterns ...string) ([]*Package, error) {
	root, modPath, err := FindModule(startDir)
	if err != nil {
		return nil, err
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ds, err := walkPackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(root, strings.TrimSuffix(pat, "/...")) // handles ./x/... and x/...
			ds, err := walkPackageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				add(d)
			}
		default:
			abs := pat
			if !filepath.IsAbs(pat) {
				abs = filepath.Join(startDir, pat)
			}
			add(filepath.Clean(abs))
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// FindModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("ftlint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("ftlint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// walkPackageDirs returns every directory under root that holds at least
// one buildable non-test Go file, skipping testdata and hidden trees.
func walkPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return fs.SkipDir
		}
		if hasBuildableGo(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// hasBuildableGo reports whether dir contains a non-test .go file.
func hasBuildableGo(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
