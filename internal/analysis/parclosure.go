package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ParClosure re-enforces the PR 3 escape-analysis rule: Go's escape
// analysis is flow-insensitive, so a function literal passed to par.For
// or (*par.Pool).Run is heap-allocated even on the workers==1 path that
// never spawns a goroutine. The scratch arena's low-alloc steady state
// only survives if every such literal is either replaced by a named
// method value (or a closure bound once and cached), or kept behind a
// branch that proves the parallel path: workers > 1 for par.For, or a
// pool != nil check for pool.Run — by convention a non-nil started
// *par.Pool only exists on workers > 1 paths.
var ParClosure = &Analyzer{
	Name: "parclosure",
	Doc: "function literals passed to par.For or (*par.Pool).Run must be " +
		"reachable only under a workers > 1 (or pool != nil) guard",
	Run: runParClosure,
}

const parPkgPath = "ftclust/internal/par"

func runParClosure(pass *Pass) error {
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			var site string
			switch {
			case isPkgFunc(fn, parPkgPath, "For"):
				site = "par.For"
			case isMethodOn(fn, parPkgPath, "Pool") && fn.Name() == "Run":
				site = "(*par.Pool).Run"
			default:
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok && !guardedParallel(stack) {
					pass.Reportf(lit.Pos(),
						"function literal passed to %s outside a workers > 1 guard: escape analysis heap-allocates it even on the sequential path (use a named method, bind the closure once, or branch on workers / pool != nil)", site)
				}
			}
			return true
		})
	}
	return nil
}

// guardedParallel reports whether the innermost enclosing if/else chain
// proves workers > 1 on the path containing the call.
func guardedParallel(stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		ifst, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		// Which branch is the call under?
		if i+1 < len(stack) {
			switch stack[i+1] {
			case ifst.Body:
				if impliesParallel(ifst.Cond) {
					return true
				}
			case ifst.Else:
				if impliesSequential(ifst.Cond) {
					return true
				}
			}
		}
	}
	return false
}

// impliesParallel reports whether cond being true proves the parallel
// path: workers > 1, workers >= 2, pool != nil, or a conjunction
// containing one.
func impliesParallel(cond ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LAND:
		return impliesParallel(b.X) || impliesParallel(b.Y)
	case token.LOR:
		return impliesParallel(b.X) && impliesParallel(b.Y)
	case token.GTR: // workers > 1
		return workersLike(b.X) && isIntLit(b.Y, "1")
	case token.GEQ: // workers >= 2
		return workersLike(b.X) && isIntLit(b.Y, "2")
	case token.LSS: // 1 < workers
		return isIntLit(b.X, "1") && workersLike(b.Y)
	case token.LEQ: // 2 <= workers
		return isIntLit(b.X, "2") && workersLike(b.Y)
	case token.NEQ: // pool != nil / nil != pool
		return (poolLike(b.X) && isNilIdent(b.Y)) || (isNilIdent(b.X) && poolLike(b.Y))
	}
	return false
}

// impliesSequential reports whether cond being FALSE (the else branch)
// proves the parallel path: workers <= 1, workers < 2, pool == nil, and
// mirrors.
func impliesSequential(cond ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LOR:
		return impliesSequential(b.X) || impliesSequential(b.Y)
	case token.LEQ: // workers <= 1
		return workersLike(b.X) && isIntLit(b.Y, "1")
	case token.LSS: // workers < 2
		return workersLike(b.X) && isIntLit(b.Y, "2")
	case token.GEQ: // 1 >= workers
		return isIntLit(b.X, "1") && workersLike(b.Y)
	case token.GTR: // 2 > workers
		return isIntLit(b.X, "2") && workersLike(b.Y)
	case token.EQL: // pool == nil / nil == pool
		return (poolLike(b.X) && isNilIdent(b.Y)) || (isNilIdent(b.X) && poolLike(b.Y))
	}
	return false
}

// poolLike reports whether e names something that reads as a worker
// pool: an identifier or selector whose name contains "pool".
func poolLike(e ast.Expr) bool {
	var name string
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "pool")
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isIntLit reports whether e is the integer literal text.
func isIntLit(e ast.Expr, text string) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == text
}
