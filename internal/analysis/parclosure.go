package analysis

import (
	"go/ast"
	"go/token"
)

// ParClosure re-enforces the PR 3 escape-analysis rule: Go's escape
// analysis is flow-insensitive, so a function literal passed to par.For
// is heap-allocated even on the workers==1 path that never spawns a
// goroutine. The scratch arena's ≤4-allocs steady state only survives if
// every such literal is either replaced by a named method value or kept
// behind a branch that proves workers > 1 (the sequential path then
// calls a literal-free body).
var ParClosure = &Analyzer{
	Name: "parclosure",
	Doc: "function literals passed to par.For must be reachable only " +
		"under a workers > 1 guard",
	Run: runParClosure,
}

const parPkgPath = "ftclust/internal/par"

func runParClosure(pass *Pass) error {
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isPkgFunc(calleeFunc(pass.Info, call), parPkgPath, "For") {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok && !guardedParallel(stack) {
					pass.Reportf(lit.Pos(),
						"function literal passed to par.For outside a workers > 1 guard: escape analysis heap-allocates it even on the sequential path (use a named method, or branch on workers)")
				}
			}
			return true
		})
	}
	return nil
}

// guardedParallel reports whether the innermost enclosing if/else chain
// proves workers > 1 on the path containing the call.
func guardedParallel(stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		ifst, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		// Which branch is the call under?
		if i+1 < len(stack) {
			switch stack[i+1] {
			case ifst.Body:
				if impliesParallel(ifst.Cond) {
					return true
				}
			case ifst.Else:
				if impliesSequential(ifst.Cond) {
					return true
				}
			}
		}
	}
	return false
}

// impliesParallel reports whether cond being true proves a worker count
// above one: workers > 1, workers >= 2, or a conjunction containing one.
func impliesParallel(cond ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LAND:
		return impliesParallel(b.X) || impliesParallel(b.Y)
	case token.LOR:
		return impliesParallel(b.X) && impliesParallel(b.Y)
	case token.GTR: // workers > 1
		return workersLike(b.X) && isIntLit(b.Y, "1")
	case token.GEQ: // workers >= 2
		return workersLike(b.X) && isIntLit(b.Y, "2")
	case token.LSS: // 1 < workers
		return isIntLit(b.X, "1") && workersLike(b.Y)
	case token.LEQ: // 2 <= workers
		return isIntLit(b.X, "2") && workersLike(b.Y)
	}
	return false
}

// impliesSequential reports whether cond being FALSE (the else branch)
// proves workers > 1: workers <= 1, workers < 2, and mirrors.
func impliesSequential(cond ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LOR:
		return impliesSequential(b.X) || impliesSequential(b.Y)
	case token.LEQ: // workers <= 1
		return workersLike(b.X) && isIntLit(b.Y, "1")
	case token.LSS: // workers < 2
		return workersLike(b.X) && isIntLit(b.Y, "2")
	case token.GEQ: // 1 >= workers
		return isIntLit(b.X, "1") && workersLike(b.Y)
	case token.GTR: // 2 > workers
		return isIntLit(b.X, "2") && workersLike(b.Y)
	}
	return false
}

// isIntLit reports whether e is the integer literal text.
func isIntLit(e ast.Expr, text string) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == text
}
