package analysis

// All returns every ftlint analyzer in catalog order.
func All() []*Analyzer {
	return []*Analyzer{DetRand, MapOrder, ParClosure, ScratchAlias, ObsConst}
}

// ByName resolves a comma-separable analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
