package analysis

// All returns every ftlint analyzer in catalog order: the five
// single-package determinism-era checks, then the four module-wide
// distributed-era checks built on the cross-package call graph.
func All() []*Analyzer {
	return []*Analyzer{
		DetRand, MapOrder, ParClosure, ScratchAlias, ObsConst,
		BoundedIO, GoLifetime, CtxFlow, LockScope,
	}
}

// ByName resolves a comma-separable analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
