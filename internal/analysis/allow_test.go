package analysis

import (
	"go/ast"
	"go/parser"
	"go/types"
	"strings"
	"testing"
)

// parseCheck type-checks one in-memory file into a Package recorded
// under importPath, for tests that exercise the allow machinery and
// scoping on sources too small for a fixture. (Analyzer scope matches on
// the recorded path, so tests can pose as an in-scope package.)
func parseCheck(t *testing.T, importPath, src string) *Package {
	t.Helper()
	l := testLoader()
	f, err := parser.ParseFile(l.Fset, t.Name()+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.Fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: importPath, Fset: l.Fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// A reason-less waiver must not suppress the original finding and must
// itself surface as a finding of the synthetic check "allow".
func TestAllowWithoutReasonIsAFindingAndSuppressesNothing(t *testing.T) {
	pkg := parseCheck(t, "ftclust/internal/core", `package allowtest

import "math/rand"

func f() int {
	//ftlint:allow detrand
	return rand.Int()
}
`)
	diags, err := runPackage(pkg, []*Analyzer{DetRand})
	if err != nil {
		t.Fatal(err)
	}
	var gotAllow, gotDetrand bool
	for _, d := range diags {
		switch d.Check {
		case "allow":
			gotAllow = true
			if !strings.Contains(d.Message, "needs a reason") {
				t.Errorf("allow finding message = %q, want a needs-a-reason message", d.Message)
			}
		case "detrand":
			gotDetrand = true
		}
	}
	if !gotAllow {
		t.Error("missing 'allow' finding for the reason-less waiver")
	}
	if !gotDetrand {
		t.Error("reason-less waiver suppressed the detrand finding; it must not")
	}
}

// A bare ftlint:allow with no check name at all is also a finding.
func TestAllowBareDirectiveIsAFinding(t *testing.T) {
	pkg := parseCheck(t, "ftclust/internal/core", `package allowtest

//ftlint:allow
func g() {}
`)
	diags, err := runPackage(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Check != "allow" {
		t.Fatalf("diags = %+v, want exactly one 'allow' finding", diags)
	}
}

// A waiver only suppresses the named check, not others on the same line.
func TestAllowIsPerCheck(t *testing.T) {
	pkg := parseCheck(t, "ftclust/internal/core", `package allowtest

import "math/rand"

func h() int {
	//ftlint:allow maporder wrong check name on purpose
	return rand.Int()
}
`)
	diags, err := runPackage(pkg, []*Analyzer{DetRand})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Check != "detrand" {
		t.Fatalf("diags = %+v, want the detrand finding to survive a maporder waiver", diags)
	}
}

// Analyzer package scoping: DetRand must skip packages outside its list.
func TestScopeSkipsUnlistedPackages(t *testing.T) {
	pkg := parseCheck(t, "ftclust/internal/exp", `package allowtest

import "math/rand"

func k() int { return rand.Int() }
`)
	diags, err := runPackage(pkg, []*Analyzer{DetRand})
	if err != nil {
		t.Fatal(err)
	}
	// internal/exp is not in DetRand.Packages, so the analyzer must
	// not run there at all.
	if len(diags) != 0 {
		t.Fatalf("diags = %+v, want none for an out-of-scope package", diags)
	}
}
