package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CtxFlow enforces the PR 2/7 cancellation contract: any function on a
// synchronous path from a request, solver-façade, or background-loop
// root that can block — sleeping, channel operations, outbound HTTP or
// dials — must accept and consult a context (or an *http.Request, whose
// Context it can use), so cancellation and shutdown reach every blocked
// frame. Minting a fresh context.Background()/TODO() below such a root
// severs that chain and is a finding in its own right.
//
// Lifecycle waits are exempt: receiving from a chan struct{} (the
// stop/done convention, which includes ctx.Done()) and selects that have
// a default or a stop case do not count as blocking.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "functions reachable from request/solver/goroutine roots that block " +
		"(sleep, channel ops, outbound HTTP) must accept and consult a ctx; " +
		"context.Background() below a root is a finding",
	RunModule: runCtxFlow,
}

func runCtxFlow(pass *ModulePass) error {
	m := pass.Module
	roots := m.Roots()
	reach := m.ReachableFrom(roots)
	for _, key := range m.Keys() {
		rootKey, ok := reach[key]
		if !ok {
			continue
		}
		fi := m.Funcs[key]
		from := string(roots[rootKey]) + " " + shortKey(rootKey)
		for _, pos := range backgroundCalls(fi) {
			pass.Reportf(pos, "context.Background() below a %s: thread the caller's ctx instead", from)
		}
		blocks := directBlocks(fi)
		if len(blocks) == 0 || consultsCtx(fi) {
			continue
		}
		for _, b := range blocks {
			pass.Reportf(b.pos, "%s blocks (%s) without consulting a ctx; reachable from %s",
				fi.Obj.Name(), b.what, from)
		}
	}
	return nil
}

type blockSite struct {
	pos  token.Pos
	what string
}

// directBlocks returns the blocking operations on fi's synchronous path.
// Code under go statements belongs to the spawned goroutine (rooted
// separately); function literals that are not immediately invoked run at
// an unknown time and are skipped too.
func directBlocks(fi *FuncInfo) []blockSite {
	var out []blockSite
	info := fi.Pkg.Info
	walkStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			if len(stack) > 0 {
				if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && call.Fun == x {
					return true // immediately invoked: synchronous
				}
			}
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil {
				if what := blockingCallKind(fn); what != "" {
					out = append(out, blockSite{x.Pos(), what})
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) && !selectHasStopCase(info, x) {
				out = append(out, blockSite{x.Pos(), "select with no default or stop case"})
			}
		case *ast.SendStmt:
			if !isCommOperation(stack, x) {
				out = append(out, blockSite{x.Pos(), "channel send"})
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !isCommOperation(stack, x) && !isStopChan(info.TypeOf(x.X)) {
				out = append(out, blockSite{x.Pos(), "channel receive"})
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// backgroundCalls returns the context.Background()/TODO() call sites on
// fi's synchronous path.
func backgroundCalls(fi *FuncInfo) []token.Pos {
	var out []token.Pos
	info := fi.Pkg.Info
	walkStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil &&
				(isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO")) {
				out = append(out, x.Pos())
			}
		}
		return true
	})
	return out
}

// consultsCtx reports whether fi can reach a cancellation signal: its
// body touches a context value (a ctx parameter, a stored ctx field, a
// captured ctx), or it takes an *http.Request parameter and uses it
// (r.Context is one call away). A locally-built *http.Request does NOT
// count — constructing an outbound request with http.NewRequest instead
// of NewRequestWithContext is exactly the bug this check exists to
// catch. The Background/TODO constructors do not count either: their
// result is a CallExpr, not an identifier or selector, so minting a
// context is never evidence of consulting one.
func consultsCtx(fi *FuncInfo) bool {
	info := fi.Pkg.Info
	if sig, ok := fi.Obj.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			v := sig.Params().At(i)
			if typeIsNamed(v.Type(), "net/http", "Request") &&
				v.Name() != "" && v.Name() != "_" &&
				mentionsObject(info, fi.Decl.Body, v) {
				return true
			}
		}
	}
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.Ident:
			if typeIsNamed(info.TypeOf(x), "context", "Context") {
				found = true
			}
		case *ast.SelectorExpr:
			if typeIsNamed(info.TypeOf(x), "context", "Context") {
				found = true
			}
		}
		return !found
	})
	return found
}
