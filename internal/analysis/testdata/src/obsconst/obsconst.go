// Fixture for the obsconst analyzer: metric names, HELP text, and label
// keys must be compile-time constants, and duration observations must be
// in seconds.
package obsconst

import (
	"time"

	"ftclust/internal/obs"
)

const goodName = "ftclust_fixture_total"

var helpVar = "help that varies" // not a constant

// badDynamicName builds a series name at runtime.
func badDynamicName(reg *obs.Registry, which string) {
	reg.Counter("ftclust_"+which+"_total", "constant help") // want `metric name passed to Registry.Counter must be a compile-time constant`
}

// badDynamicHelp varies the HELP text.
func badDynamicHelp(reg *obs.Registry) {
	reg.Counter(goodName, helpVar) // want `HELP text passed to Registry.Counter must be a compile-time constant`
}

// badLabelKey computes a label key.
func badLabelKey(reg *obs.Registry, key string) {
	reg.Histogram("ftclust_fixture_seconds", "constant help", obs.DurationBuckets(),
		key, "v") // want `label key passed to Registry.Histogram must be a compile-time constant`
}

// badMillis observes milliseconds into a seconds histogram.
func badMillis(reg *obs.Registry, d time.Duration) {
	h := reg.Histogram("ftclust_fixture_lat_seconds", "constant help", obs.DurationBuckets())
	h.Observe(float64(d.Milliseconds())) // want `observing Duration.Milliseconds\(\) is not in seconds`
}

// badRawDuration observes raw nanoseconds.
func badRawDuration(reg *obs.Registry, d time.Duration) {
	h := reg.Histogram("ftclust_fixture_lat2_seconds", "constant help", obs.DurationBuckets())
	h.Observe(float64(d)) // want `observing a converted time.Duration records nanoseconds`
}

// goodConstant registers constant series and observes seconds.
func goodConstant(reg *obs.Registry, endpoint string, d time.Duration) {
	c := reg.Counter(goodName, "constant help", "endpoint", endpoint)
	c.Inc()
	h := reg.Histogram("ftclust_fixture_ok_seconds", "constant help", obs.DurationBuckets())
	h.Observe(d.Seconds())
	h.ObserveDuration(d)
}

// allowedDynamic shows the reasoned waiver.
func allowedDynamic(reg *obs.Registry, which string) {
	//ftlint:allow obsconst fixture: name set is bounded by a compile-time table
	reg.Counter("ftclust_"+which+"_total", "constant help")
}
