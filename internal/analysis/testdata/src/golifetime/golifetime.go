// Fixture for the golifetime analyzer: every go statement must be tied
// to a lifetime — the spawned code signals a sync.WaitGroup, talks on a
// channel, or consults a ctx, directly or through the functions it
// calls.
package golifetime

import (
	"context"
	"sync"
)

type server struct {
	stop chan struct{}
	jobs chan int
	wg   sync.WaitGroup
}

// badFireAndForget spawns a literal nothing can stop or await.
func badFireAndForget(xs []int) {
	go func() { // want `goroutine has no lifetime`
		for i := range xs {
			xs[i]++
		}
	}()
}

// orphanLoop has no lifetime mechanism of its own.
func orphanLoop(xs []int) {
	for i := range xs {
		xs[i]++
	}
}

// badNamedOrphan spawns a declared function that has no lifetime either.
func badNamedOrphan(xs []int) {
	go orphanLoop(xs) // want `goroutine has no lifetime`
}

// goodWaitGroup signals a WaitGroup from the spawned literal.
func goodWaitGroup(s *server, xs []int) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for i := range xs {
			xs[i]++
		}
	}()
	s.wg.Wait()
}

// loop selects on the stop channel: direct evidence.
func (s *server) loop() {
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.jobs:
			_ = j
		}
	}
}

// goodNamedLoop spawns a declared function with its own stop path.
func goodNamedLoop(s *server) {
	go s.loop()
}

// goodIndirect spawns a literal whose lifetime evidence lives one call
// down, in loop — the transitive case.
func goodIndirect(s *server) {
	go func() {
		s.loop()
	}()
}

// goodCtx consults a ctx in the spawned literal.
func goodCtx(ctx context.Context, xs []int) {
	go func() {
		for i := range xs {
			if ctx.Err() != nil {
				return
			}
			xs[i]++
		}
	}()
}

// goodChannelWorker drains a job channel: range over a channel ends when
// the channel is closed.
func goodChannelWorker(s *server) {
	go func() {
		for j := range s.jobs {
			_ = j
		}
	}()
}

// allowedFireAndForget shows the reasoned waiver.
func allowedFireAndForget(xs []int) {
	//ftlint:allow golifetime fixture: process-lifetime helper, exits with main
	go func() {
		for i := range xs {
			xs[i]++
		}
	}()
}
