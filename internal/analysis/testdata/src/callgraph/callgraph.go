// Fixture for the call-graph builder: method sets, interface dispatch
// by name and arity, method values, go-spawn edges, and root detection.
package callgraph

import "net/http"

type shaper interface {
	area(x int) int
}

type square struct{}

func (square) area(x int) int { return x * x }

type circle struct{}

func (circle) area(x int) int { return 3 * x * x }

// blob's area has a different arity and must not be a dispatch target.
type blob struct{}

func (blob) area(x, y int) int { return x * y }

// measure dispatches through the interface: edges to every same-name,
// same-arity method in the module.
func measure(s shaper) int { return s.area(2) }

// methodValue references a method without calling it: still an edge.
func methodValue() func(int) int {
	sq := square{}
	return sq.area
}

// helper is spawned by spawnNamed, making it a goroutine root.
func helper() {}

func spawnNamed() {
	go helper()
}

// spawnLit's literal body is excluded from its synchronous calls.
func spawnLit() {
	go func() {
		measure(square{})
	}()
}

// handleThing is a request root by shape.
func handleThing(w http.ResponseWriter, r *http.Request) {
	_ = measure(circle{})
	_ = r
}

// uses keeps the otherwise-unreferenced functions alive for vet.
var uses = []any{methodValue, spawnNamed, spawnLit, handleThing, blob{}}
