// Fixture for the scratchalias analyzer: arena-backed Solution slices
// may not be retained past the documented WithScratch window without an
// explicit copy.
package scratchalias

import "ftclust"

type cacheEntry struct {
	mask    []bool
	members []ftclust.NodeID
}

var lastMask []bool

// badField stores the arena-backed mask into a struct field.
func badField(c *cacheEntry, sol *ftclust.Solution) {
	c.mask = sol.InSet // want `sol.InSet stored into field c.mask aliases a solver arena`
}

// badGlobal parks it in a package variable.
func badGlobal(sol *ftclust.Solution) {
	lastMask = sol.InSet // want `sol.InSet stored into package variable lastMask aliases a solver arena`
}

// badReslice still aliases the same backing array.
func badReslice(c *cacheEntry, sol *ftclust.Solution, n int) {
	c.mask = sol.InSet[:n] // want `stored into field c.mask aliases a solver arena`
}

// badComposite hides the retention inside a literal.
func badComposite(sol *ftclust.Solution) *cacheEntry {
	return &cacheEntry{mask: sol.InSet} // want `sol.InSet placed in a composite literal aliases a solver arena`
}

// badChannel hands the alias to another goroutine.
func badChannel(ch chan []bool, sol *ftclust.Solution) {
	ch <- sol.InSet // want `sol.InSet sent on a channel aliases a solver arena`
}

// goodCopy is the sanctioned form: copy before retaining.
func goodCopy(c *cacheEntry, sol *ftclust.Solution) {
	c.mask = append([]bool(nil), sol.InSet...)
	c.members = append([]ftclust.NodeID(nil), sol.Members...)
}

// goodLocalRead uses the slices inside the window: locals, lengths, and
// element reads are all fine.
func goodLocalRead(sol *ftclust.Solution) int {
	mask := sol.InSet
	n := 0
	for _, in := range mask {
		if in {
			n++
		}
	}
	if len(sol.Members) > 0 && sol.InSet[0] {
		n++
	}
	return n
}

// allowedRetention shows the reasoned waiver.
func allowedRetention(c *cacheEntry, sol *ftclust.Solution) {
	c.mask = sol.InSet //ftlint:allow scratchalias fixture: single-solve program, arena never reused
}
