// Package bioutil is the cross-package half of the boundedio fixture:
// helpers whose reader parameters do (or do not) reach buffering sinks.
// The analyzer summarizes these and reports at the call sites in the
// parent fixture package that feed them raw HTTP bodies.
package bioutil

import (
	"encoding/json"
	"io"
)

// ReadAllOf buffers everything from r: its parameter is summarized as
// reaching io.ReadAll.
func ReadAllOf(r io.Reader) ([]byte, error) {
	return io.ReadAll(r)
}

// decodeInto is the inner hop of the two-level propagation case.
func decodeInto(r io.Reader, out any) error {
	return json.NewDecoder(r).Decode(out)
}

// DecodeVia reaches json.NewDecoder only through decodeInto, so its
// summary exists only via propagation.
func DecodeVia(r io.Reader, out any) error {
	return decodeInto(r, out)
}

// FirstByte reads a bounded prefix; its parameter never reaches a sink.
func FirstByte(r io.Reader) byte {
	var b [1]byte
	io.ReadFull(r, b[:])
	return b[0]
}
