// Fixture for the boundedio analyzer: HTTP bodies must pass
// http.MaxBytesReader or io.LimitReader before reaching a buffering
// sink (io.ReadAll, io.Copy, json.NewDecoder, obs.ParsePrometheus),
// including through helpers in other packages, and decode loops over
// wire data need an element cap.
package boundedio

import (
	"encoding/json"
	"io"
	"net/http"

	"ftclust/internal/analysis/testdata/src/boundedio/bioutil"
	"ftclust/internal/obs"
)

const maxBody = 1 << 20

// badReadAll buffers a response body with no cap.
func badReadAll(resp *http.Response) ([]byte, error) {
	return io.ReadAll(resp.Body) // want `resp.Body flows unbounded into io.ReadAll`
}

// badRequestDecode decodes a request body with no cap.
func badRequestDecode(r *http.Request, out any) error {
	return json.NewDecoder(r.Body).Decode(out) // want `r.Body flows unbounded into json.NewDecoder`
}

// badCopy drains a response body with no cap.
func badCopy(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) // want `resp.Body flows unbounded into io.Copy`
}

// badParse feeds a raw body to the Prometheus parser.
func badParse(resp *http.Response) (*obs.PromSnapshot, error) {
	return obs.ParsePrometheus(resp.Body) // want `resp.Body flows unbounded into obs.ParsePrometheus`
}

// badAlias reads through a local alias of the raw body.
func badAlias(resp *http.Response) ([]byte, error) {
	body := resp.Body
	return io.ReadAll(body) // want `body flows unbounded into io.ReadAll`
}

// goodLimited wraps the body inline.
func goodLimited(resp *http.Response) ([]byte, error) {
	return io.ReadAll(io.LimitReader(resp.Body, maxBody))
}

// goodMaxBytes rebinds r.Body through MaxBytesReader before decoding —
// the service handler idiom.
func goodMaxBytes(w http.ResponseWriter, r *http.Request, out any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	return json.NewDecoder(r.Body).Decode(out)
}

// goodBoundVar decodes a wrapped reader held in a variable.
func goodBoundVar(resp *http.Response, out any) error {
	lr := io.LimitReader(resp.Body, maxBody)
	return json.NewDecoder(lr).Decode(out)
}

// badCrossPackage feeds a raw body to a helper in another package whose
// reader parameter reaches io.ReadAll — the summary-propagation case.
func badCrossPackage(resp *http.Response) ([]byte, error) {
	return bioutil.ReadAllOf(resp.Body) // want `resp.Body flows unbounded into io.ReadAll via .*bioutil.ReadAllOf`
}

// badCrossPackageDeep crosses two helper hops.
func badCrossPackageDeep(resp *http.Response, out any) error {
	return bioutil.DecodeVia(resp.Body, out) // want `resp.Body flows unbounded into json.NewDecoder via .*bioutil`
}

// goodCrossPackage bounds the body before handing it to the helper.
func goodCrossPackage(resp *http.Response) ([]byte, error) {
	return bioutil.ReadAllOf(io.LimitReader(resp.Body, maxBody))
}

// goodHelperNotSink passes a raw body to a helper that only inspects
// bounded prefixes; no summary, no finding.
func goodHelperNotSink(resp *http.Response) byte {
	return bioutil.FirstByte(resp.Body)
}

// badDecodeLoop streams elements with no element cap.
func badDecodeLoop(r *http.Request) ([]int, error) {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBody))
	var out []int
	for dec.More() { // want `decode loop over wire data has no element cap`
		var v int
		if err := dec.Decode(&v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// goodDecodeLoop caps the element count.
func goodDecodeLoop(r *http.Request) ([]int, error) {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBody))
	var out []int
	for dec.More() {
		if len(out) >= 1024 {
			break
		}
		var v int
		if err := dec.Decode(&v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// allowedReadAll shows the reasoned waiver.
func allowedReadAll(resp *http.Response) ([]byte, error) {
	//ftlint:allow boundedio fixture: trusted in-process test server
	return io.ReadAll(resp.Body)
}
