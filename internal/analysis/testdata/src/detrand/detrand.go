// Fixture for the detrand analyzer: the only sanctioned randomness is a
// seeded *rand.Rand threaded from options, and wall clocks are banned.
package detrand

import (
	"math/rand"
	"time"
)

// badGlobals draws from the process-global math/rand source.
func badGlobals(n int) int {
	x := rand.Intn(n)                  // want `rand.Intn draws from the global math/rand source`
	f := rand.Float64()                // want `rand.Float64 draws from the global math/rand source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand.Shuffle draws from the global math/rand source`
	return x + int(f)
}

// badWallClock reads the wall clock.
func badWallClock() time.Duration {
	start := time.Now()      // want `time.Now reads the wall clock`
	return time.Since(start) // want `time.Since reads the wall clock`
}

// badOpaqueNew hides where the seed comes from.
func badOpaqueNew(src rand.Source) *rand.Rand {
	return rand.New(src) // want `rand.New with an opaque source`
}

// badTimeSeed is the classic time-seeded generator; the wall-clock read
// itself is the finding.
func badTimeSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time.Now reads the wall clock`
}

// goodSeeded is the sanctioned construction: an explicit seed.
func goodSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// goodThreaded consumes a threaded *rand.Rand; method calls are fine.
func goodThreaded(r *rand.Rand, n int) int {
	p := r.Perm(n)
	return p[0] + r.Intn(n)
}

// goodDurations does arithmetic on durations without reading a clock.
func goodDurations(d time.Duration) float64 {
	return d.Seconds()
}

// allowedGlobal shows the escape hatch: the waiver names the check and
// carries a mandatory reason, on the preceding line or trailing the
// statement itself.
func allowedGlobal() int {
	//ftlint:allow detrand fixture demonstrating a reasoned waiver
	a := rand.Int()
	b := rand.Int() //ftlint:allow detrand trailing waiver form
	return a + b
}
