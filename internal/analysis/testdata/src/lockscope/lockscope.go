// Fixture for the lockscope analyzer: no sleep, outbound network I/O
// (direct or through helpers), or blocking channel send while a
// sync.Mutex/RWMutex is held. Select sends with a default clause are
// non-blocking; a branch that unlocks ends the tracked region.
package lockscope

import (
	"net/http"
	"sync"
	"time"
)

type store struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	m   map[string]int
	ch  chan int
	url string
}

// badSleep sleeps inside the critical section.
func (s *store) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while s.mu is held`
	s.mu.Unlock()
}

// badHTTP holds the lock (via defer) across an outbound request.
func (s *store) badHTTP() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := http.Get(s.url) // want `outbound HTTP while s.mu is held`
	if err != nil {
		return 0
	}
	resp.Body.Close()
	return resp.StatusCode
}

// slowTouch hides the network call one frame down.
func slowTouch(url string) {
	resp, err := http.Get(url)
	if err == nil {
		resp.Body.Close()
	}
}

// badTransitive reaches the network through a helper: caught by the
// netsleep summary, reported at the call site under the lock.
func (s *store) badTransitive() {
	s.mu.Lock()
	slowTouch(s.url) // want `call to .*slowTouch \(sleeps or performs network I/O\) while s.mu is held`
	s.mu.Unlock()
}

// badSend parks the lock behind a channel peer.
func (s *store) badSend(v int) {
	s.mu.Lock()
	s.ch <- v // want `blocking channel send while s.mu is held`
	s.mu.Unlock()
}

// goodSend is non-blocking: select with a default.
func (s *store) goodSend(v int) {
	s.mu.Lock()
	select {
	case s.ch <- v:
	default:
	}
	s.mu.Unlock()
}

// badSelectSend has no default, so the send can park the lock.
func (s *store) badSelectSend(v int, stop chan struct{}) {
	s.mu.Lock()
	select {
	case s.ch <- v: // want `blocking channel send \(select has no default\) while s.mu is held`
	case <-stop:
	}
	s.mu.Unlock()
}

// goodUnlockFirst releases before blocking.
func (s *store) goodUnlockFirst() {
	s.mu.Lock()
	n := s.m["k"]
	s.mu.Unlock()
	time.Sleep(time.Duration(n))
}

// goodBranchRelease unlocks inside the branch before sleeping; the
// region ends with the release.
func (s *store) goodBranchRelease(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
		return
	}
	s.mu.Unlock()
}

// badRead applies to read locks too.
func (s *store) badRead() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	time.Sleep(time.Microsecond) // want `time.Sleep while s.rw is held`
	return s.m["k"]
}

// goodCompute is what a critical section should look like.
func (s *store) goodCompute(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[k] = v
}

// goodSpawnUnderLock: the spawned goroutine does not hold s.mu; the
// spawn itself does not block (golifetime, not lockscope, owns the
// goroutine's lifetime).
func (s *store) goodSpawnUnderLock(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		slowTouch(s.url)
		close(done)
	}()
}

// allowedSleep shows the reasoned waiver.
func (s *store) allowedSleep() {
	s.mu.Lock()
	//ftlint:allow lockscope fixture: test-only store, contention is acceptable here
	time.Sleep(time.Microsecond)
	s.mu.Unlock()
}
