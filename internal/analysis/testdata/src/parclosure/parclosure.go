// Fixture for the parclosure analyzer: function literals passed to
// par.For or (*par.Pool).Run must sit behind a workers > 1 (or
// pool != nil) guard so the sequential path stays literal-free and
// allocation-free.
package parclosure

import "ftclust/internal/par"

type engine struct {
	x       []float64
	workers int
	pool    *par.Pool
	sweepFn func(worker, lo, hi int)
}

// sweepRange is the sanctioned literal-free form: a named method value.
func (e *engine) sweepRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		e.x[i] *= 2
	}
}

// badUnguarded passes a literal with no guard at all.
func badUnguarded(xs []float64, workers int) {
	par.For(len(xs), workers, func(lo, hi int) { // want `function literal passed to par.For outside a workers > 1 guard`
		for i := lo; i < hi; i++ {
			xs[i]++
		}
	})
}

// badWrongGuard guards on the wrong predicate.
func badWrongGuard(xs []float64, workers int) {
	if workers > 0 {
		par.For(len(xs), workers, func(lo, hi int) { // want `function literal passed to par.For outside a workers > 1 guard`
			for i := lo; i < hi; i++ {
				xs[i]++
			}
		})
	}
}

// goodGuarded branches so the literal only exists on the parallel path.
func goodGuarded(e *engine) {
	n := len(e.x)
	if e.workers > 1 {
		par.For(n, e.workers, func(lo, hi int) {
			e.sweepRange(lo, hi)
		})
	} else {
		e.sweepRange(0, n)
	}
}

// goodElseGuarded is the inverted branch shape.
func goodElseGuarded(e *engine) {
	n := len(e.x)
	if e.workers <= 1 {
		e.sweepRange(0, n)
	} else {
		par.For(n, e.workers, func(lo, hi int) {
			e.sweepRange(lo, hi)
		})
	}
}

// goodMethodValue needs no guard: a method value is not a literal.
func goodMethodValue(e *engine) {
	par.For(len(e.x), e.workers, e.sweepRange)
}

// badPoolUnguarded passes a literal to pool.Run with no guard: even the
// nil-pool (sequential) path pays the heap allocation.
func badPoolUnguarded(e *engine) {
	e.pool.Run(len(e.x), func(_, lo, hi int) { // want `function literal passed to \(\*par.Pool\).Run outside a workers > 1 guard`
		e.sweepRange(lo, hi)
	})
}

// goodPoolNilGuarded branches on pool != nil — by convention a non-nil
// started pool only exists on workers > 1 paths.
func goodPoolNilGuarded(e *engine) {
	n := len(e.x)
	if e.pool != nil {
		e.pool.Run(n, func(_, lo, hi int) {
			e.sweepRange(lo, hi)
		})
	} else {
		e.sweepRange(0, n)
	}
}

// goodPoolElseGuarded is the inverted branch shape.
func goodPoolElseGuarded(e *engine) {
	n := len(e.x)
	if e.pool == nil {
		e.sweepRange(0, n)
	} else {
		e.pool.Run(n, func(_, lo, hi int) {
			e.sweepRange(lo, hi)
		})
	}
}

// goodPoolBoundOnce passes a cached closure variable, not a literal —
// the bind-once pattern the fractional engine uses.
func goodPoolBoundOnce(e *engine) {
	if e.sweepFn == nil {
		e.sweepFn = func(_, lo, hi int) { e.sweepRange(lo, hi) }
	}
	e.pool.Run(len(e.x), e.sweepFn)
}

// allowedUnguarded shows the reasoned waiver.
func allowedUnguarded(xs []float64, workers int) {
	//ftlint:allow parclosure fixture: cold path, allocation is acceptable
	par.For(len(xs), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i]++
		}
	})
}
