// Fixture for the maporder analyzer: map iteration order must not
// escape into outputs, streams, metrics, or channels.
package maporder

import (
	"bytes"
	"fmt"
	"io"
	"sort"
)

// badAppendUnsorted collects keys but never sorts them.
func badAppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to keys, which is never sorted afterwards`
		keys = append(keys, k)
	}
	return keys
}

// badWriter streams values in iteration order.
func badWriter(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside range over map`
	}
}

// badBuffer writes into a buffer in iteration order.
func badBuffer(m map[string]bool) string {
	var b bytes.Buffer
	for k := range m {
		b.WriteString(k) // want `Buffer.WriteString inside range over map`
	}
	return b.String()
}

// badConcat builds a string in iteration order.
func badConcat(m map[int]string) string {
	s := ""
	for _, v := range m {
		s += v // want `string concatenation inside range over map`
	}
	return s
}

// badChannel leaks order to whoever drains the channel.
func badChannel(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

// badFieldAppend appends into a struct field, which cannot be checked
// for a later sort.
type collector struct{ out []int }

func badFieldAppend(c *collector, m map[int]bool) {
	for k := range m { // keep the loop var used
		if k >= 0 {
			c.out = append(c.out, k) // want `append to non-local c.out inside range over map`
		}
	}
}

// goodSortedKeys is the canonical fix: collect, sort, then use.
func goodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodLocalSortHelper factors the sort into a package-local wrapper; the
// callee's name says it sorts, so the collect-then-sort idiom still holds.
func goodLocalSortHelper(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortStrings(s []string) { sort.Strings(s) }

// goodCommutative accumulates order-insensitively.
func goodCommutative(m map[string]int) (int, map[string]bool) {
	sum := 0
	seen := make(map[string]bool)
	max := 0
	for k, v := range m {
		sum += v
		seen[k] = true
		if v > max {
			max = v
		}
	}
	return sum + max, seen
}

// goodLoopLocal appends to a slice that dies with each iteration.
func goodLoopLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

// allowedRange shows a reasoned waiver on the range statement.
func allowedRange(m map[string]int) []string {
	var out []string
	//ftlint:allow maporder fixture: caller treats out as an unordered set
	for k := range m {
		out = append(out, k)
	}
	return out
}
