// Fixture for the ctxflow analyzer: functions reachable from request,
// solver, or background-goroutine roots that block must accept and
// consult a ctx (or an *http.Request); minting context.Background()
// below a root is a finding. Stop-channel waits and selects with a
// default or stop case are exempt.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

// handleSlow is a request root (detected by shape); the finding lands in
// the ctx-less helper it reaches.
func handleSlow(w http.ResponseWriter, r *http.Request) {
	retryDelay()
	_ = r
}

// retryDelay blocks with no way to cancel it.
func retryDelay() {
	time.Sleep(10 * time.Millisecond) // want `retryDelay blocks \(time.Sleep\) without consulting a ctx`
}

// handlePause threads the request ctx into a cancellable wait: no
// findings anywhere on this path.
func handlePause(w http.ResponseWriter, r *http.Request) {
	pauseCtx(r.Context())
}

// pauseCtx waits under a select with a stop case (ctx.Done()).
func pauseCtx(ctx context.Context) {
	t := time.NewTimer(10 * time.Millisecond)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// handleBackground severs the cancellation chain at the root.
func handleBackground(w http.ResponseWriter, r *http.Request) {
	doFetch(context.Background()) // want `context.Background\(\) below a http handler`
	_ = r
}

// doFetch blocks on outbound HTTP but consults its ctx: fine.
func doFetch(ctx context.Context) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://peer.invalid/", nil)
	if err != nil {
		return 0
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0
	}
	resp.Body.Close()
	return resp.StatusCode
}

// handleProxy reaches a ctx-less outbound call.
func handleProxy(w http.ResponseWriter, r *http.Request) {
	fetchNoCtx("http://peer.invalid/")
	_ = r
}

// fetchNoCtx performs outbound HTTP that nothing can cancel.
func fetchNoCtx(url string) int {
	resp, err := http.Get(url) // want `fetchNoCtx blocks \(outbound HTTP\) without consulting a ctx`
	if err != nil {
		return 0
	}
	resp.Body.Close()
	return resp.StatusCode
}

type worker struct {
	jobs chan int
	stop chan struct{}
}

// run is a goroutine root via startWorker; its select has a stop case,
// so it is not a blocking finding.
func (w *worker) run() {
	for {
		select {
		case <-w.stop:
			return
		case j := <-w.jobs:
			_ = j
		}
	}
}

func startWorker(w *worker) {
	go w.run()
}

// drain is a goroutine root that parks on a data channel with no stop
// path and no ctx.
func (w *worker) drain() {
	j := <-w.jobs // want `drain blocks \(channel receive\) without consulting a ctx`
	_ = j
}

func startDrain(w *worker) {
	go w.drain()
}

// awaitDone waits on a stop channel: lifecycle signalling, exempt even
// though it is handler-reachable.
func awaitDone(done chan struct{}) {
	<-done
}

func handleAwait(w http.ResponseWriter, r *http.Request) {
	awaitDone(make(chan struct{}))
	_ = r
}

// sleepyUnreachable blocks but no root reaches it: out of scope.
func sleepyUnreachable() {
	time.Sleep(time.Millisecond)
}

// pollPeers shows the reasoned waiver.
func pollPeers() {
	//ftlint:allow ctxflow fixture: bounded one-shot backoff, shutdown joins via process exit
	time.Sleep(time.Millisecond)
}

func handlePoll(w http.ResponseWriter, r *http.Request) {
	pollPeers()
	_ = r
}
