package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BoundedIO enforces PR 9's defensive-decode contract: every byte read
// off the network is bounded before it is buffered. An HTTP body
// (resp.Body or r.Body) must pass through io.LimitReader or
// http.MaxBytesReader before it reaches a buffering sink — io.ReadAll,
// io.Copy, json.NewDecoder, or obs.ParsePrometheus — including when the
// flow crosses function and package boundaries through a helper that
// takes an io.Reader. Decode loops over wire data additionally need an
// element cap, or a peer can stream an unbounded array into memory.
//
// The cross-package half works by per-function summaries over the call
// graph: a helper whose reader parameter reaches a sink is summarized,
// and the finding is reported at the call site that feeds it an
// unbounded body — the same shape a go/analysis fact would have.
var BoundedIO = &Analyzer{
	Name: "boundedio",
	Doc: "HTTP bodies must pass http.MaxBytesReader or io.LimitReader before " +
		"flowing into io.ReadAll/io.Copy/json.NewDecoder/obs.ParsePrometheus, " +
		"transitively through helpers; decode loops over wire data need an " +
		"element cap",
	RunModule: runBoundedIO,
}

func runBoundedIO(pass *ModulePass) error {
	b := &bioState{
		m:       pass.Module,
		summary: make(map[string]map[int]string),
	}
	for changed := true; changed; {
		changed = false
		for _, key := range b.m.Keys() {
			if b.analyzeFunc(b.m.Funcs[key], nil) {
				changed = true
			}
		}
	}
	for _, key := range b.m.Keys() {
		b.analyzeFunc(b.m.Funcs[key], pass)
		checkDecodeLoops(pass, b.m.Funcs[key])
	}
	return nil
}

type bioState struct {
	m *Module
	// summary records, per function key, which reader-typed parameter
	// indices flow into a buffering sink, with the sink's description
	// ("io.ReadAll", "json.NewDecoder via service.decodeInto", …).
	summary map[string]map[int]string
}

type bioClass int

const (
	bioUnknown bioClass = iota
	bioBounded
	bioSource
	bioParam
)

// analyzeFunc classifies every sink argument in fi. During the fixpoint
// (pass == nil) it records parameter summaries and reports nothing;
// during the report pass it emits findings for unbounded body flows.
// Returns whether the summary changed.
func (b *bioState) analyzeFunc(fi *FuncInfo, pass *ModulePass) bool {
	info := fi.Pkg.Info
	bounded, aliased := b.collectFlows(fi)

	classify := func(e ast.Expr, use token.Pos) (bioClass, int) {
		e = ast.Unparen(e)
		s := types.ExprString(e)
		if p, ok := bounded[s]; ok && p < use {
			return bioBounded, 0
		}
		switch x := e.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil && isBounderFunc(fn) {
				return bioBounded, 0
			}
			return bioUnknown, 0
		case *ast.SelectorExpr:
			if isBodySelector(info, x) {
				return bioSource, 0
			}
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				if idx, ok := readerParamIndex(fi, v); ok {
					return bioParam, idx
				}
			}
			if p, ok := aliased[s]; ok && p < use {
				return bioSource, 0
			}
		}
		return bioUnknown, 0
	}

	changed := false
	handle := func(arg ast.Expr, sink string) {
		cls, idx := classify(arg, arg.Pos())
		switch cls {
		case bioSource:
			if pass != nil {
				pass.Reportf(arg.Pos(),
					"%s flows unbounded into %s: wrap it with http.MaxBytesReader or io.LimitReader first",
					types.ExprString(ast.Unparen(arg)), sink)
			}
		case bioParam:
			if b.summary[fi.Key] == nil {
				b.summary[fi.Key] = make(map[int]string)
			}
			if _, ok := b.summary[fi.Key][idx]; !ok {
				b.summary[fi.Key][idx] = sink
				changed = true
			}
		}
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if idx, desc, ok := sinkCall(fn); ok && idx < len(call.Args) {
			handle(call.Args[idx], desc)
			return true
		}
		// Calls into summarized module functions: the callee's reader
		// params that reach a sink make this call site a sink too.
		var keys []string
		b.m.addCallEdges(func(key string) { keys = append(keys, key) }, fn)
		for _, key := range keys {
			for idx, desc := range b.summary[key] {
				if idx < len(call.Args) {
					handle(call.Args[idx], desc+" via "+shortKey(key))
				}
			}
		}
		return true
	})
	return changed
}

// collectFlows prepasses fi's whole body (goroutine literals included:
// an unbounded read is unbounded on any goroutine) recording, by
// expression string: paths assigned from a bounding wrapper (bounded)
// and local variables assigned from a raw body (aliased sources).
func (b *bioState) collectFlows(fi *FuncInfo) (bounded, aliased map[string]token.Pos) {
	info := fi.Pkg.Info
	bounded = make(map[string]token.Pos)
	aliased = make(map[string]token.Pos)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != len(as.Lhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			rhs = ast.Unparen(rhs)
			lhs := types.ExprString(ast.Unparen(as.Lhs[i]))
			if call, ok := rhs.(*ast.CallExpr); ok {
				if fn := calleeFunc(info, call); fn != nil && isBounderFunc(fn) {
					bounded[lhs] = as.Pos()
					continue
				}
			}
			if sel, ok := rhs.(*ast.SelectorExpr); ok && isBodySelector(info, sel) {
				aliased[lhs] = as.Pos()
			}
		}
		return true
	})
	return bounded, aliased
}

// isBounderFunc reports whether fn caps the bytes read from its reader:
// io.LimitReader or http.MaxBytesReader.
func isBounderFunc(fn *types.Func) bool {
	return isPkgFunc(fn, "io", "LimitReader") || isPkgFunc(fn, "net/http", "MaxBytesReader")
}

// isBodySelector reports whether sel is the Body field of an
// http.Request or http.Response — wire data controlled by the peer.
func isBodySelector(info *types.Info, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Body" {
		return false
	}
	t := info.TypeOf(sel.X)
	return typeIsNamed(t, "net/http", "Request") || typeIsNamed(t, "net/http", "Response")
}

// sinkCall classifies fn as a buffering sink and returns which argument
// index is the reader.
func sinkCall(fn *types.Func) (argIdx int, desc string, ok bool) {
	switch {
	case isPkgFunc(fn, "io", "ReadAll"):
		return 0, "io.ReadAll", true
	case isPkgFunc(fn, "io", "Copy"):
		return 1, "io.Copy", true
	case isPkgFunc(fn, "io", "CopyBuffer"):
		return 1, "io.CopyBuffer", true
	case isPkgFunc(fn, "encoding/json", "NewDecoder"):
		return 0, "json.NewDecoder", true
	case isPkgFunc(fn, obsPkgPath, "ParsePrometheus"):
		return 0, "obs.ParsePrometheus", true
	}
	return 0, "", false
}

// readerParamIndex returns v's position in fi's parameter list when v is
// a reader-interface parameter (any interface with a Read method).
func readerParamIndex(fi *FuncInfo, v *types.Var) (int, bool) {
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return i, isReaderType(v.Type())
		}
	}
	return 0, false
}

// isReaderType reports whether t is an interface with a Read method
// (io.Reader, io.ReadCloser, and friends).
func isReaderType(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Read" {
			return true
		}
	}
	return false
}

// checkDecodeLoops flags `for dec.More() { … }` style loops over a
// json.Decoder that have no element cap: a comparison guarded break or
// return inside the body. Without one a peer can stream an arbitrarily
// long array and the loop buffers it element by element.
func checkDecodeLoops(pass *ModulePass, fi *FuncInfo) {
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond == nil {
			return true
		}
		if !condUsesDecoderMore(info, loop.Cond) {
			return true
		}
		if !hasCapGuard(loop.Body) {
			pass.Reportf(loop.Pos(),
				"decode loop over wire data has no element cap: bound the element count before decoding further")
		}
		return true
	})
}

// condUsesDecoderMore reports whether the loop condition calls
// (*json.Decoder).More.
func condUsesDecoderMore(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(info, call); fn != nil &&
				fn.Name() == "More" && isMethodOn(fn, "encoding/json", "Decoder") {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasCapGuard reports whether the loop body contains an if statement
// whose condition compares magnitudes and whose branch breaks out
// (break or return) — the shape of an element cap.
func hasCapGuard(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || found {
			return !found
		}
		bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.GTR, token.GEQ, token.LSS, token.LEQ:
		default:
			return true
		}
		ast.Inspect(ifs.Body, func(c ast.Node) bool {
			switch br := c.(type) {
			case *ast.BranchStmt:
				if br.Tok == token.BREAK {
					found = true
				}
			case *ast.ReturnStmt:
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}
