package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLifetime enforces the PR 6–9 goroutine contract: nothing in shipped
// code is fire-and-forget. Every go statement must be tied to a lifetime
// — the spawned code (transitively, through the call graph) signals a
// sync.WaitGroup, communicates on a channel (a stop channel, a job
// channel, or a select), or consults a ctx. A goroutine with none of
// those can outlive Shutdown, leak under churn, and race the test
// harness's teardown.
var GoLifetime = &Analyzer{
	Name: "golifetime",
	Doc: "every go statement must be tied to a lifetime: the spawned code must " +
		"(transitively) signal a sync.WaitGroup, communicate on a channel, or " +
		"consult a ctx; fire-and-forget goroutines are findings",
	RunModule: runGoLifetime,
}

func runGoLifetime(pass *ModulePass) error {
	m := pass.Module
	direct := make(map[string]bool)
	for _, key := range m.Keys() {
		fi := m.Funcs[key]
		if hasLifetimeEvidence(fi.Pkg.Info, fi.Decl.Body) {
			direct[key] = true
		}
	}
	evidence := m.PropagateFromCallees(direct)
	for _, sp := range m.Spawns() {
		ok := false
		switch {
		case sp.Lit != nil:
			ok = hasLifetimeEvidence(sp.Caller.Pkg.Info, sp.Lit.Body)
			if !ok {
				for _, callee := range m.callsUnder(sp.Caller.Pkg, sp.Lit.Body) {
					if evidence[callee] {
						ok = true
						break
					}
				}
			}
		case sp.EntryKey != "":
			if m.Funcs[sp.EntryKey] != nil {
				ok = evidence[sp.EntryKey]
			} else {
				// Spawning a function outside the loaded packages
				// (stdlib); its body is not ours to judge.
				ok = true
			}
		default:
			// Dynamic function value: the body is unknowable
			// statically. Not flagged — the declared-function and
			// literal cases cover every spawn in this repo.
			ok = true
		}
		if !ok {
			pass.Reportf(sp.Stmt.Pos(),
				"goroutine has no lifetime: tie it to a sync.WaitGroup, a stop channel, or a ctx")
		}
	}
	return nil
}

// hasLifetimeEvidence reports whether the code under body participates
// in any lifetime mechanism: WaitGroup signalling, channel traffic
// (send, receive, select, range-over-channel), or touching a ctx value.
func hasLifetimeEvidence(info *types.Info, body ast.Node) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil {
				if isMethodOn(fn, "sync", "WaitGroup") {
					found = true
				}
			}
		case *ast.Ident:
			if typeIsNamed(info.TypeOf(x), "context", "Context") {
				found = true
			}
		}
		return !found
	})
	return found
}
