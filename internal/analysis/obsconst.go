package analysis

import (
	"go/ast"
	"go/types"
)

// ObsConst enforces the PR 4 metrics contract: series registered on an
// obs.Registry must have compile-time-constant metric names, HELP text,
// and label keys (otherwise the exposition's name set varies run to run
// and scrapes cannot be compared), and duration observations must be fed
// in seconds — the Prometheus base unit — never milliseconds or raw
// Durations.
var ObsConst = &Analyzer{
	Name: "obsconst",
	Doc: "obs.Registry names/help/label keys must be constants; " +
		"duration observations must be in seconds",
	Run: runObsConst,
}

const obsPkgPath = "ftclust/internal/obs"

// labelStart maps each Registry registration method to the argument
// index where its variadic label pairs begin.
var labelStart = map[string]int{
	"Counter":   2, // (name, help, labels…)
	"Gauge":     3, // (name, help, fn, labels…)
	"Histogram": 3, // (name, help, bounds, labels…)
}

func runObsConst(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			if start, isReg := labelStart[fn.Name()]; isReg && isMethodOn(fn, obsPkgPath, "Registry") {
				checkRegistration(pass, call, fn.Name(), start)
			}
			if fn.Name() == "Observe" && isMethodOn(fn, obsPkgPath, "Histogram") && len(call.Args) == 1 {
				checkSecondsArg(pass, call.Args[0])
			}
			return true
		})
	}
	return nil
}

// checkRegistration verifies name, help, and label keys are constants.
func checkRegistration(pass *Pass, call *ast.CallExpr, method string, start int) {
	if len(call.Args) >= 1 && !isConst(pass, call.Args[0]) {
		pass.Reportf(call.Args[0].Pos(),
			"metric name passed to Registry.%s must be a compile-time constant", method)
	}
	if len(call.Args) >= 2 && !isConst(pass, call.Args[1]) {
		pass.Reportf(call.Args[1].Pos(),
			"HELP text passed to Registry.%s must be a compile-time constant so exposition is stable across runs", method)
	}
	if call.Ellipsis.IsValid() {
		pass.Reportf(call.Ellipsis,
			"labels spread into Registry.%s with … cannot be checked for constant keys; pass them pairwise", method)
		return
	}
	// Label pairs: keys (even offsets) must be constant; values may
	// vary — bounded classification is the caller's responsibility.
	for i := start; i < len(call.Args); i += 2 {
		if !isConst(pass, call.Args[i]) {
			pass.Reportf(call.Args[i].Pos(),
				"label key passed to Registry.%s must be a compile-time constant", method)
		}
	}
}

// checkSecondsArg flags Observe arguments that are recognizably not in
// seconds: converted time.Durations (raw nanoseconds) and the
// Milliseconds / Microseconds / Nanoseconds accessors, through any
// number of numeric conversions. (Use Duration.Seconds() or
// Histogram.ObserveDuration.)
func checkSecondsArg(pass *Pass, arg ast.Expr) {
	e := ast.Unparen(arg)
	for {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return
		}
		if isConversion(pass, call) && len(call.Args) == 1 {
			if isDuration(pass.TypeOf(call.Args[0])) {
				pass.Reportf(arg.Pos(),
					"observing a converted time.Duration records nanoseconds; use .Seconds() or ObserveDuration")
				return
			}
			e = ast.Unparen(call.Args[0])
			continue
		}
		if fn := calleeFunc(pass.Info, call); fn != nil {
			switch fn.Name() {
			case "Milliseconds", "Microseconds", "Nanoseconds":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isDuration(sig.Recv().Type()) {
					pass.Reportf(arg.Pos(),
						"observing Duration.%s() is not in seconds; use .Seconds() or ObserveDuration", fn.Name())
				}
			}
		}
		return
	}
}

// isConst reports whether e has a compile-time constant value.
func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// isConversion reports whether call is a type conversion.
func isConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// isDuration reports whether t is time.Duration.
func isDuration(t types.Type) bool {
	return typeIsNamed(t, "time", "Duration")
}
