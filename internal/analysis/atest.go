package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// Fixture testing in the style of x/tools' analysistest: a package under
// testdata/src/<name> is type-checked for real (fixtures may import this
// module's live packages — the loader resolves them from source), the
// analyzer runs over it, and the findings are matched line-by-line
// against trailing
//
//	// want "regexp" "regexp…"
//
// comments. Every want must be matched by exactly one finding on its
// line and every finding must be claimed by a want, so each fixture
// necessarily contains both flagged and non-flagged cases.

// testLoader is shared across all fixture tests in the process so the
// standard library and this module are type-checked once, not once per
// analyzer.
var testLoader = sync.OnceValue(NewLoader)

// RunFixture runs a over testdata/src/<name> relative to the calling
// test's directory and checks findings against // want comments.
// The //ftlint:allow filter is active, so fixtures can also pin the
// escape-hatch behavior. Extra names load additional fixture packages
// into the same run — module analyzers see them all in one call graph,
// which is how cross-package summary propagation is fixtured. Wants are
// collected from every loaded package.
func RunFixture(t *testing.T, a *Analyzer, name string, extra ...string) {
	t.Helper()
	var pkgs []*Package
	for _, n := range append([]string{name}, extra...) {
		dir, err := filepath.Abs(filepath.Join("testdata", "src", n))
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := testLoader().LoadDir(dir, "ftclust/internal/analysis/testdata/src/"+n)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", n, err)
		}
		pkgs = append(pkgs, pkg)
	}
	// Fixtures live outside any analyzer's package scope on purpose;
	// scoping is a runner concern, so strip it here.
	unscoped := *a
	unscoped.Packages = nil
	diags, err := Run(pkgs, []*Analyzer{&unscoped})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, name, err)
	}

	var wants []want
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	pkg := pkgs[0]
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		claimed := false
		for i, w := range wants {
			if matched[i] || w.key != key {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected finding: %s", key, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: no finding matched want %q", w.key, w.re)
		}
	}
}

// A want is one expected-finding annotation.
type want struct {
	key string // base-filename:line
	re  *regexp.Regexp
}

// collectWants parses the // want comments of every fixture file.
func collectWants(t *testing.T, pkg *Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, pat := range splitWantPatterns(t, key, rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants = append(wants, want{key: key, re: re})
				}
			}
		}
	}
	return wants
}

// splitWantPatterns parses the quoted patterns of one want comment.
func splitWantPatterns(t *testing.T, key, s string) []string {
	t.Helper()
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		if s[0] == '`' {
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern %q", key, s)
			}
			pats = append(pats, s[1:1+end])
			s = s[end+2:]
			continue
		}
		if s[0] != '"' {
			t.Fatalf("%s: want patterns must be quoted, got %q", key, s)
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", key, s, err)
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", key, q, err)
		}
		pats = append(pats, unq)
		s = s[len(q):]
	}
}
