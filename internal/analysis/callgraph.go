package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Cross-package call graph. The loader type-checks every package
// independently with the source importer, so the same function is
// represented by *different* *types.Func objects depending on which
// package's type-check reached it (our parsed copy vs the importer's
// copy). Pointer identity therefore cannot link a call site in package A
// to a declaration in package B; the graph is keyed by a stable string
// instead — "pkg/path.Func" for functions, "pkg/path.(Recv).Method" for
// methods — which is the same fact key a go/analysis Facts-based
// implementation would serialize across package boundaries.

// modulePath is the import path of the module root. Its exported
// package-level functions are the engine façade and count as solver
// entry-point roots.
const modulePath = "ftclust"

// A Module is the whole-program view over every loaded package: the
// function index, the synchronous call edges between declared functions,
// and the go-statement spawn sites. Module analyzers receive it through
// ModulePass.
type Module struct {
	Pkgs  []*Package
	Funcs map[string]*FuncInfo

	keys          []string            // sorted Funcs keys, for deterministic iteration
	spawns        []*Spawn            // every go statement in declaration order
	methodsByName map[string][]string // method name -> sorted keys, for interface dispatch
}

// A FuncInfo is one declared function or method plus its per-function
// summary inputs: the static callees reachable from its body on the
// synchronous path, and the goroutines it spawns.
type FuncInfo struct {
	Key  string
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Calls holds the keys of every declared function referenced from
	// the body outside go statements — direct calls, method calls,
	// interface calls (resolved to every candidate method), and
	// function/method values (handler registrations, callbacks).
	// Function literals are attributed to the enclosing declaration.
	// Keys may name functions outside the loaded packages (stdlib);
	// those have no Funcs entry.
	Calls []string

	// Spawns holds the go statements in the body.
	Spawns []*Spawn
}

// A Spawn is one go statement.
type Spawn struct {
	Caller *FuncInfo
	Stmt   *ast.GoStmt

	// EntryKey names the spawned function when the go statement calls a
	// declared function or method directly; it is empty for function
	// literals and for dynamic values (go fn() where fn is a variable).
	EntryKey string

	// Lit is the spawned literal, if any. Its body is excluded from the
	// caller's synchronous Calls and analyzed as its own goroutine.
	Lit *ast.FuncLit
}

// Body returns the spawned code to inspect: the literal body, or the
// entry function's declaration body when it is part of the module.
func (s *Spawn) body(m *Module) ast.Node {
	if s.Lit != nil {
		return s.Lit.Body
	}
	if fi := m.Funcs[s.EntryKey]; fi != nil && fi.Decl.Body != nil {
		return fi.Decl.Body
	}
	return nil
}

// funcKey returns the cross-package identity of fn: "pkg.Name" for
// package-level functions and "pkg.(Recv).Name" for methods, with the
// receiver stripped to its defining named type so value and pointer
// methods collide deliberately.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if named := recvNamed(fn); named != nil {
		return fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// Interface method: key it on the interface's named type when
		// there is one, so the dispatch index can report it.
		if named := namedType(sig.Recv().Type()); named != nil {
			return fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// BuildModule indexes every declared function in pkgs and links the call
// edges between them.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:          pkgs,
		Funcs:         make(map[string]*FuncInfo),
		methodsByName: make(map[string][]string),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				key := funcKey(obj)
				if key == "" || m.Funcs[key] != nil {
					continue
				}
				m.Funcs[key] = &FuncInfo{Key: key, Obj: obj, Decl: fd, Pkg: pkg}
				m.keys = append(m.keys, key)
			}
		}
	}
	sort.Strings(m.keys)
	for _, key := range m.keys {
		fi := m.Funcs[key]
		if fi.Decl.Recv != nil {
			name := fi.Obj.Name()
			m.methodsByName[name] = append(m.methodsByName[name], key)
		}
	}
	for _, key := range m.keys {
		m.collectEdges(m.Funcs[key])
	}
	return m
}

// collectEdges walks fi's body recording synchronous call edges and go
// spawn sites. Code under a go statement belongs to the spawned
// goroutine, not to fi's synchronous path.
func (m *Module) collectEdges(fi *FuncInfo) {
	seen := make(map[string]bool)
	add := func(key string) {
		if key != "" && !seen[key] {
			seen[key] = true
			fi.Calls = append(fi.Calls, key)
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			sp := &Spawn{Caller: fi, Stmt: x}
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				sp.Lit = lit
			} else if fn := calleeFunc(fi.Pkg.Info, x.Call); fn != nil {
				sp.EntryKey = funcKey(fn)
			}
			fi.Spawns = append(fi.Spawns, sp)
			m.spawns = append(m.spawns, sp)
			return false
		case *ast.Ident:
			if fn, ok := fi.Pkg.Info.Uses[x].(*types.Func); ok {
				m.addCallEdges(add, fn)
			}
		}
		return true
	})
}

// addCallEdges records the edge(s) for one referenced function. A call
// through an interface method dispatches to every module method with the
// same name and parameter count — name+arity matching rather than
// types.Implements, because interface and implementation may live in
// different type-check universes where Implements cannot compare them.
func (m *Module) addCallEdges(add func(string), fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		for _, key := range m.methodsByName[fn.Name()] {
			cand := m.Funcs[key]
			csig, ok := cand.Obj.Type().(*types.Signature)
			if ok && csig.Params().Len() == sig.Params().Len() {
				add(key)
			}
		}
		return
	}
	add(funcKey(fn))
}

// Spawns returns every go statement across the module in deterministic
// (package, position) order.
func (m *Module) Spawns() []*Spawn {
	out := append([]*Spawn(nil), m.spawns...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Stmt.Pos() < out[j].Stmt.Pos()
	})
	return out
}

// Keys returns the sorted function keys.
func (m *Module) Keys() []string { return m.keys }

// callsUnder returns the keys of declared functions referenced under n
// (used to summarize a spawned literal's transitive behavior).
func (m *Module) callsUnder(pkg *Package, n ast.Node) []string {
	var out []string
	seen := make(map[string]bool)
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
				m.addCallEdges(func(key string) {
					if !seen[key] {
						seen[key] = true
						out = append(out, key)
					}
				}, fn)
			}
		}
		return true
	})
	return out
}

// RootKind classifies why a function is an analysis entry point.
type RootKind string

const (
	RootHandler   RootKind = "http handler"
	RootFacade    RootKind = "façade entry"
	RootGoroutine RootKind = "background goroutine"
)

// Roots returns every reachability root: functions with the
// http.HandlerFunc shape (request roots), exported package-level
// functions of the module root package (solver façade roots), and named
// functions launched by go statements (cluster/janitor/worker loops).
func (m *Module) Roots() map[string]RootKind {
	roots := make(map[string]RootKind)
	for _, key := range m.keys {
		fi := m.Funcs[key]
		sig, ok := fi.Obj.Type().(*types.Signature)
		if !ok {
			continue
		}
		switch {
		case isHandlerShaped(sig):
			roots[key] = RootHandler
		case fi.Pkg.Path == modulePath && fi.Decl.Recv == nil && fi.Decl.Name.IsExported():
			roots[key] = RootFacade
		}
	}
	for _, sp := range m.spawns {
		if sp.EntryKey != "" && m.Funcs[sp.EntryKey] != nil {
			if _, ok := roots[sp.EntryKey]; !ok {
				roots[sp.EntryKey] = RootGoroutine
			}
		}
	}
	return roots
}

// isHandlerShaped reports whether sig is func(http.ResponseWriter,
// *http.Request) — the shape the mux registration APIs accept.
func isHandlerShaped(sig *types.Signature) bool {
	p := sig.Params()
	return p.Len() == 2 &&
		typeIsNamed(p.At(0).Type(), "net/http", "ResponseWriter") &&
		typeIsNamed(p.At(1).Type(), "net/http", "Request")
}

// ReachableFrom walks the synchronous call edges from roots and returns,
// for every reachable module function, the key of one root that reaches
// it (for diagnostics). Spawn edges are excluded: code a root merely
// launches runs on its own goroutine and is rooted separately.
func (m *Module) ReachableFrom(roots map[string]RootKind) map[string]string {
	out := make(map[string]string)
	var queue []string
	rootKeys := make([]string, 0, len(roots))
	for key := range roots {
		rootKeys = append(rootKeys, key)
	}
	sort.Strings(rootKeys)
	for _, key := range rootKeys {
		if m.Funcs[key] != nil && out[key] == "" {
			out[key] = key
			queue = append(queue, key)
		}
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		for _, callee := range m.Funcs[key].Calls {
			if m.Funcs[callee] == nil {
				continue
			}
			if _, ok := out[callee]; !ok {
				out[callee] = out[key]
				queue = append(queue, callee)
			}
		}
	}
	return out
}

// PropagateFromCallees closes a per-function boolean fact over the call
// graph: a function acquires the fact if any synchronous callee has it.
// This is the summary-propagation fixpoint module analyzers use to reason
// through helpers across package boundaries.
func (m *Module) PropagateFromCallees(direct map[string]bool) map[string]bool {
	out := make(map[string]bool, len(direct))
	for key, v := range direct {
		out[key] = v
	}
	for changed := true; changed; {
		changed = false
		for _, key := range m.keys {
			if out[key] {
				continue
			}
			for _, callee := range m.Funcs[key].Calls {
				if out[callee] {
					out[key] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// shortKey trims the module path prefix off a function key for messages.
func shortKey(key string) string {
	return strings.TrimPrefix(key, modulePath+"/")
}
