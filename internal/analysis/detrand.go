package analysis

import (
	"go/ast"
	"go/types"
)

// DetRand enforces the repository's root determinism contract (PR 1:
// bit-identical parallel solves; PR 2–3: byte-identical service bodies):
// inside the determinism-critical packages, the only sanctioned source of
// randomness is a seeded *rand.Rand threaded from options, and wall-clock
// time may not be read at all — phase timing belongs to the observer
// layer (internal/obs), not the solver.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand, wall-clock reads, and opaque rand.New " +
		"sources in determinism-critical packages",
	Packages: []string{
		"ftclust/internal/cluster",
		"ftclust/internal/core",
		"ftclust/internal/graph",
		"ftclust/internal/rng",
		"ftclust/internal/udg",
		"ftclust/internal/verify",
	},
	Run: runDetRand,
}

// Package-level math/rand constructors that do not draw from the global
// source and therefore stay legal: they only wrap an explicit seed.
var sanctionedRandCtors = map[string]bool{
	"New":        true, // argument is checked separately
	"NewSource":  true,
	"NewZipf":    true, // draws through the *rand.Rand it is given
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runDetRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on a threaded *rand.Rand are the sanctioned pattern
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				name := fn.Name()
				if !sanctionedRandCtors[name] {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the global math/rand source; thread a seeded *rand.Rand (rng.New / options) instead", name)
					return true
				}
				if name == "New" && !isSeededSourceArg(pass, call) {
					pass.Reportf(call.Pos(),
						"rand.New with an opaque source; construct it as rand.New(rand.NewSource(seed)) so the seed provably flows from options")
				}
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock in a determinism-critical package; timing belongs in the observer layer (internal/obs)", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isSeededSourceArg reports whether the sole argument of rand.New is a
// direct call to one of the explicit-seed source constructors. (A
// time-derived seed inside the constructor is caught by the time.Now
// rule.)
func isSeededSourceArg(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass.Info, inner)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "NewSource", "NewPCG", "NewChaCha8":
			return true
		}
	}
	return false
}
