// Package analysis is ftlint's stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis surface this repository needs: typed
// single-package analyzers, a loader that type-checks the module with the
// go/importer "source" importer, an analysistest-style fixture runner, and
// a //ftlint:allow suppression mechanism with mandatory reasons.
//
// The x/tools module would normally provide all of this as a tool-only
// dependency, but the build environment for this repository is fully
// offline and the shipped library packages are required to stay
// stdlib-only, so the framework is grown here instead. The API shape
// deliberately mirrors go/analysis (Analyzer, Pass, Diagnostic) so the
// analyzers could be ported to a standard multichecker verbatim if the
// dependency ever becomes available.
//
// Each analyzer machine-enforces one convention that a previous PR
// established by hand; see README.md in this directory for the catalog
// and the incident that motivated each invariant.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one ftlint check. It mirrors the x/tools
// go/analysis Analyzer shape minus explicit facts and requirements: a
// check is either a pure single-package pass (Run) or a whole-module
// pass over the cross-package call graph (RunModule), which subsumes
// what facts would communicate between packages.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ftlint:allow comments. Lowercase, no spaces.
	Name string

	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string

	// Packages, when non-empty, restricts the analyzer to the listed
	// import paths. Scoping is applied by Run, not by the analyzer
	// body, so fixture tests can exercise an analyzer on any package.
	// It applies only to single-package passes.
	Packages []string

	// Run reports diagnostics for one type-checked package via
	// pass.Report. Nil for module analyzers.
	Run func(pass *Pass) error

	// RunModule reports diagnostics over the whole loaded package set
	// at once, with the call graph available. Nil for single-package
	// analyzers.
	RunModule func(pass *ModulePass) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, attributed to the analyzer that produced
// it so //ftlint:allow can suppress it by name.
type Diagnostic struct {
	Pos     token.Pos
	Check   string
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     pos,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// A ModulePass carries the whole loaded package set and its call graph
// through one module analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Module   *Module

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     pos,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// inScope reports whether the analyzer applies to the package path.
func (a *Analyzer) inScope(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == path {
			return true
		}
	}
	return false
}

// Run applies every in-scope analyzer to every package, filters the
// findings through the //ftlint:allow comments collected from the
// package sources, and returns the surviving diagnostics in stable
// (file, line, column) order. Malformed allow comments (missing check
// name or missing reason) are themselves returned as diagnostics of the
// synthetic check "allow".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var perPkg, modWide []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			modWide = append(modWide, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runPackage(pkg, perPkg)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	if len(modWide) > 0 && len(pkgs) > 0 {
		diags, err := runModule(pkgs, modWide)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(pkgs, all)
	return all, nil
}

// runModule runs the module-wide analyzers once over the call graph of
// the whole package set and applies the allow comments of every package.
// Malformed allows are reported by runPackage already, so only the valid
// suppressions are consulted here.
func runModule(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	mod := BuildModule(pkgs)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &ModulePass{
			Analyzer: a,
			Fset:     pkgs[0].Fset,
			Module:   mod,
			diags:    &diags,
		}
		if err := a.RunModule(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	allAllows := make([]allowSet, 0, len(pkgs))
	for _, pkg := range pkgs {
		allows, _ := collectAllows(pkg)
		allAllows = append(allAllows, allows)
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for i := range allAllows {
			if allAllows[i].suppresses(pkgs[i].Fset, d) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// runPackage runs the in-scope analyzers over one package and applies
// that package's allow comments.
func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if !a.inScope(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	allows, bad := collectAllows(pkg)
	kept := diags[:0]
	for _, d := range diags {
		if !allows.suppresses(pkg.Fset, d) {
			kept = append(kept, d)
		}
	}
	return append(kept, bad...), nil
}

// sortDiagnostics orders findings by position for deterministic output.
// All packages share one FileSet, so positions are globally comparable.
func sortDiagnostics(pkgs []*Package, diags []Diagnostic) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Check < diags[j].Check
	})
}
