package analysis

import "testing"

// Every analyzer runs against its fixture package under testdata/src.
// Each fixture contains flagged cases (pinned by // want comments),
// non-flagged cases (any stray finding fails the test), and a reasoned
// //ftlint:allow waiver (whose suppressed finding must NOT surface).

func TestDetRandFixture(t *testing.T)      { RunFixture(t, DetRand, "detrand") }
func TestMapOrderFixture(t *testing.T)     { RunFixture(t, MapOrder, "maporder") }
func TestParClosureFixture(t *testing.T)   { RunFixture(t, ParClosure, "parclosure") }
func TestScratchAliasFixture(t *testing.T) { RunFixture(t, ScratchAlias, "scratchalias") }
func TestObsConstFixture(t *testing.T)     { RunFixture(t, ObsConst, "obsconst") }

func TestBoundedIOFixture(t *testing.T)  { RunFixture(t, BoundedIO, "boundedio", "boundedio/bioutil") }
func TestGoLifetimeFixture(t *testing.T) { RunFixture(t, GoLifetime, "golifetime") }
func TestCtxFlowFixture(t *testing.T)    { RunFixture(t, CtxFlow, "ctxflow") }
func TestLockScopeFixture(t *testing.T)  { RunFixture(t, LockScope, "lockscope") }

func TestAllAnalyzersHaveDocsAndNames(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %q must have exactly one of Run and RunModule", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName of an unknown check should be nil")
	}
}
