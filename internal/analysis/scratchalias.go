package analysis

import (
	"go/ast"
	"go/types"
)

// ScratchAlias enforces the WithScratch aliasing contract (PR 3): slices
// inside a Scratch arena — and the arena-backed fields of the solver
// result types built from one — are overwritten by the next solve
// through the same Scratch. They may be read freely inside the
// documented window, but storing one into a struct field, a package
// variable, or a channel keeps it past that window and must go through
// an explicit copy (append([]T(nil), s…), slices.Clone, or copy).
//
// internal/core itself is out of scope: it is the arena's
// implementation, and wiring scratch buffers into the layout and result
// structs is its whole job. Every package that consumes core — including
// the ftclust façade, which re-wraps core results — is in scope, and the
// façade's own intentional rewrap sites carry //ftlint:allow waivers
// that state the contract.
var ScratchAlias = &Analyzer{
	Name: "scratchalias",
	Doc: "flag retention of Scratch-derived or solver-result slices in " +
		"fields, globals, composite literals, or channels without a copy",
	Run: runScratchAlias,
}

// aliasedTypes are the named types whose slice-typed fields alias a
// solver arena (or may, when the solve was scratch-backed).
var aliasedTypes = map[[2]string]bool{
	{"ftclust", "Solution"}:                       true,
	{"ftclust", "Scratch"}:                        true,
	{"ftclust/internal/core", "Scratch"}:          true,
	{"ftclust/internal/core", "Result"}:           true,
	{"ftclust/internal/core", "FractionalResult"}: true,
	{"ftclust/internal/core", "RoundingResult"}:   true,
	{"ftclust/internal/core", "WeightedResult"}:   true,
}

func runScratchAlias(pass *Pass) error {
	if pass.Pkg.Path() == "ftclust/internal/core" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if !isScratchDerived(pass, rhs) || i >= len(n.Lhs) {
						continue
					}
					if lhs, bad := retainingLHS(pass, n.Lhs[i]); bad {
						pass.Reportf(n.Pos(),
							"%s stored into %s aliases a solver arena and is overwritten by the next solve; copy it first (append([]T(nil), …) or slices.Clone)",
							types.ExprString(rhs), lhs)
					}
				}
			case *ast.SendStmt:
				if isScratchDerived(pass, n.Value) {
					pass.Reportf(n.Pos(),
						"%s sent on a channel aliases a solver arena and is overwritten by the next solve; send a copy",
						types.ExprString(n.Value))
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isScratchDerived(pass, v) {
						pass.Reportf(v.Pos(),
							"%s placed in a composite literal aliases a solver arena and is overwritten by the next solve; copy it first",
							types.ExprString(v))
					}
				}
			}
			return true
		})
	}
	return nil
}

// isScratchDerived reports whether e is (a reslice of) a slice-typed
// field selected from one of the aliased solver types.
func isScratchDerived(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	for {
		// A reslice still aliases the arena; an element read does not.
		if x, ok := e.(*ast.SliceExpr); ok {
			e = ast.Unparen(x.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// The selected field must itself be slice-typed…
	if t := pass.TypeOf(sel); t == nil {
		return false
	} else if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
		return false
	}
	// …on a value of one of the aliased named types.
	named := namedType(pass.TypeOf(sel.X))
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return aliasedTypes[[2]string{obj.Pkg().Path(), obj.Name()}]
}

// retainingLHS reports whether assigning to lhs retains the value past
// the current scope: a struct-field or element write, or a package-level
// variable. Plain locals are fine — they die with the frame.
func retainingLHS(pass *Pass, lhs ast.Expr) (string, bool) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "field " + types.ExprString(x), true
	case *ast.IndexExpr:
		return "element " + types.ExprString(x), true
	case *ast.Ident:
		obj := pass.Info.ObjectOf(x)
		if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
			return "package variable " + x.Name, true
		}
	}
	return "", false
}
