package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// walkStack traverses the file in depth-first order calling fn with each
// node and the stack of its ancestors (outermost first, not including the
// node itself). Returning false from fn skips the node's children.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// calleeFunc resolves a call expression to the package-level function or
// method it invokes, or nil for builtins, locals, and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level (non-method) function
// pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// recvNamed returns the defining named type of fn's receiver (through
// one pointer), or nil for non-methods.
func recvNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMethodOn reports whether fn is a method on the named type
// pkgPath.typeName (value or pointer receiver).
func isMethodOn(fn *types.Func, pkgPath, typeName string) bool {
	named := recvNamed(fn)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// namedType returns the named type of t after stripping one pointer, or
// nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// typeIsNamed reports whether t (through one pointer) is the named type
// pkgPath.typeName.
func typeIsNamed(t types.Type, pkgPath, typeName string) bool {
	named := namedType(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// mentionsObject reports whether any identifier under n resolves to obj.
func mentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// workersLike reports whether an expression is an identifier or selector
// whose name marks it as a worker count ("workers", "Workers",
// "numWorkers", …).
func workersLike(e ast.Expr) bool {
	var name string
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "worker")
}
