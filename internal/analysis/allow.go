package analysis

import (
	"go/token"
	"strings"
)

// The escape hatch: a source comment of the form
//
//	//ftlint:allow <check> <reason…>
//
// suppresses findings of <check> on the same line (trailing comment) or
// on the line immediately below (standalone comment above the flagged
// statement). The reason is mandatory — an allow without one is itself a
// finding, so every waiver in the tree documents why the invariant is
// safe to break at that site.

// allowKey locates one allow directive: which file/line it covers and
// which check it waives.
type allowKey struct {
	file  string
	line  int
	check string
}

type allowSet map[allowKey]bool

// collectAllows scans a package's comments for ftlint:allow directives.
// Well-formed directives go into the returned set; malformed ones come
// back as diagnostics of the synthetic check "allow".
func collectAllows(pkg *Package) (allowSet, []Diagnostic) {
	allows := make(allowSet)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//ftlint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{
						Pos:     c.Pos(),
						Check:   "allow",
						Message: "ftlint:allow needs a check name and a reason",
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     c.Pos(),
						Check:   "allow",
						Message: "ftlint:allow " + fields[0] + " needs a reason",
					})
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				allows[allowKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return allows, bad
}

// suppresses reports whether d is waived by an allow on its own line or
// on the line directly above it.
func (a allowSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	return a[allowKey{pos.Filename, pos.Line, d.Check}] ||
		a[allowKey{pos.Filename, pos.Line - 1, d.Check}]
}
