package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockScope enforces the sharded-store discipline from PRs 6–9: a held
// sync.Mutex/RWMutex region must not sleep, perform outbound network
// I/O (directly or through any transitively-reached helper), or do a
// blocking channel send. The 16-shard session store and the fleet
// scraper pay for every microsecond a shard lock is held; a network
// round-trip under one serializes the shard for the round-trip time.
//
// The region model is intra-procedural and conservative in the safe
// direction: a lock is held from the Lock/RLock statement until the
// matching Unlock statement on the same receiver path, until the end of
// the function for `defer mu.Unlock()`, and a branch that releases the
// lock anywhere inside it ends the tracked region at the branch.
// Channel sends inside a select with a default clause are non-blocking
// and exempt.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc: "no outbound network call, blocking channel send, or sleep while a " +
		"sync.Mutex/RWMutex is held (transitively through helpers for " +
		"sleep/network; directly for sends)",
	RunModule: runLockScope,
}

func runLockScope(pass *ModulePass) error {
	m := pass.Module
	direct := make(map[string]bool)
	for _, key := range m.Keys() {
		if hasDirectNetSleep(m.Funcs[key]) {
			direct[key] = true
		}
	}
	netsleep := m.PropagateFromCallees(direct)
	for _, key := range m.Keys() {
		checkLockRegions(pass, m, m.Funcs[key], netsleep)
	}
	return nil
}

// hasDirectNetSleep reports whether fi's synchronous path contains a
// sleeping or network-bound call.
func hasDirectNetSleep(fi *FuncInfo) bool {
	found := false
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil && blockingCallKind(fn) != "" {
				found = true
			}
		}
		return !found
	})
	return found
}

type lockOpKind int

const (
	lockOpNone lockOpKind = iota
	lockOpLock
	lockOpUnlock
)

// lockOpCall classifies a call as Lock/RLock or Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex (including embedded ones) and returns the
// receiver path (e.g. "s.mu", "sh.mu") as the lock's identity.
func lockOpCall(info *types.Info, call *ast.CallExpr) (path string, kind lockOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockOpNone
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || (!isMethodOn(fn, "sync", "Mutex") && !isMethodOn(fn, "sync", "RWMutex")) {
		return "", lockOpNone
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), lockOpLock
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), lockOpUnlock
	}
	return "", lockOpNone
}

// lockOpStmt classifies a bare statement as a lock or unlock.
func lockOpStmt(info *types.Info, st ast.Stmt) (string, lockOpKind) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return "", lockOpNone
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return "", lockOpNone
	}
	return lockOpCall(info, call)
}

// checkLockRegions scans fi's statements tracking which lock paths are
// held and reports blocking work inside held regions.
func checkLockRegions(pass *ModulePass, m *Module, fi *FuncInfo, netsleep map[string]bool) {
	info := fi.Pkg.Info

	report := func(pos token.Pos, what string, held map[string]bool) {
		pass.Reportf(pos, "%s while %s is held", what, lockList(held))
	}

	// checkNode reports blocking operations under n given the held set.
	checkNode := func(n ast.Node, held map[string]bool) {
		walkStack(n, func(c ast.Node, stack []ast.Node) bool {
			switch x := c.(type) {
			case *ast.GoStmt:
				return false
			case *ast.FuncLit:
				if len(stack) > 0 {
					if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && call.Fun == x {
						return true // immediately invoked under the lock
					}
				}
				return false // runs later, likely after release
			case *ast.CallExpr:
				fn := calleeFunc(info, x)
				if fn == nil {
					return true
				}
				if what := blockingCallKind(fn); what != "" {
					report(x.Pos(), what, held)
					return true
				}
				var offender string
				m.addCallEdges(func(key string) {
					if offender == "" && netsleep[key] {
						offender = key
					}
				}, fn)
				if offender != "" {
					report(x.Pos(), "call to "+shortKey(offender)+" (sleeps or performs network I/O)", held)
				}
			case *ast.SendStmt:
				// Comm-position sends are judged by the select's
				// default clause below; body sends always block.
				if !isCommOperation(stack, x) {
					report(x.Pos(), "blocking channel send", held)
				}
			case *ast.SelectStmt:
				reportSelectSends(x, held, report)
			}
			return true
		})
	}

	var scan func(stmts []ast.Stmt, held map[string]bool)
	scan = func(stmts []ast.Stmt, held map[string]bool) {
		for _, st := range stmts {
			if path, kind := lockOpStmt(info, st); kind == lockOpLock {
				held[path] = true
				continue
			} else if kind == lockOpUnlock {
				delete(held, path)
				continue
			}
			if d, ok := st.(*ast.DeferStmt); ok {
				if path, kind := lockOpCall(info, d.Call); kind == lockOpUnlock {
					// Held until the function returns, past every
					// statement that follows.
					held[path] = true
				}
				continue
			}
			switch s := st.(type) {
			case *ast.BlockStmt:
				scan(s.List, held)
			case *ast.IfStmt:
				if len(held) > 0 {
					if s.Init != nil {
						checkNode(s.Init, held)
					}
					checkNode(s.Cond, held)
				}
				scan(s.Body.List, copyHeld(held))
				if s.Else != nil {
					scan([]ast.Stmt{s.Else}, copyHeld(held))
				}
				clearUnlocked(info, s, held)
			case *ast.ForStmt:
				if len(held) > 0 {
					if s.Init != nil {
						checkNode(s.Init, held)
					}
					if s.Cond != nil {
						checkNode(s.Cond, held)
					}
					if s.Post != nil {
						checkNode(s.Post, held)
					}
				}
				scan(s.Body.List, copyHeld(held))
				clearUnlocked(info, s, held)
			case *ast.RangeStmt:
				if len(held) > 0 {
					checkNode(s.X, held)
				}
				scan(s.Body.List, copyHeld(held))
				clearUnlocked(info, s, held)
			case *ast.SwitchStmt:
				if len(held) > 0 {
					if s.Init != nil {
						checkNode(s.Init, held)
					}
					if s.Tag != nil {
						checkNode(s.Tag, held)
					}
				}
				for _, cc := range s.Body.List {
					if c, ok := cc.(*ast.CaseClause); ok {
						scan(c.Body, copyHeld(held))
					}
				}
				clearUnlocked(info, s, held)
			case *ast.TypeSwitchStmt:
				for _, cc := range s.Body.List {
					if c, ok := cc.(*ast.CaseClause); ok {
						scan(c.Body, copyHeld(held))
					}
				}
				clearUnlocked(info, s, held)
			case *ast.SelectStmt:
				if len(held) > 0 {
					reportSelectSends(s, held, report)
				}
				for _, cc := range s.Body.List {
					if c, ok := cc.(*ast.CommClause); ok {
						scan(c.Body, copyHeld(held))
					}
				}
				clearUnlocked(info, s, held)
			case *ast.LabeledStmt:
				scan([]ast.Stmt{s.Stmt}, held)
			default:
				if len(held) > 0 {
					checkNode(st, held)
				}
			}
		}
	}
	scan(fi.Decl.Body.List, make(map[string]bool))
}

// reportSelectSends reports the comm-position sends of a select that has
// no default clause: without one the select can park the goroutine — and
// the lock — until a peer is ready.
func reportSelectSends(sel *ast.SelectStmt, held map[string]bool, report func(token.Pos, string, map[string]bool)) {
	if selectHasDefault(sel) {
		return
	}
	for _, cc := range sel.Body.List {
		comm, ok := cc.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		if _, isSend := comm.Comm.(*ast.SendStmt); isSend {
			report(comm.Comm.Pos(), "blocking channel send (select has no default)", held)
		}
	}
}

// copyHeld clones a held-lock set for branch-local tracking.
func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// clearUnlocked removes from held every lock path that n releases
// anywhere inside it: after a branch that may have unlocked, the region
// is conservatively over (the safe direction — under-reporting, never
// false-positive on released locks).
func clearUnlocked(info *types.Info, n ast.Node, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if path, kind := lockOpCall(info, call); kind == lockOpUnlock {
				delete(held, path)
			}
		}
		return len(held) > 0
	})
}

// lockList formats the held set for messages.
func lockList(held map[string]bool) string {
	paths := make([]string, 0, len(held))
	for p := range held {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return strings.Join(paths, ", ")
}
