package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shared classification of blocking operations, used by ctxflow (blocked
// without a ctx) and lockscope (blocked while holding a lock).

// blockingCallKind classifies fn as a sleeping or network-bound call:
// time.Sleep, the net/http convenience functions, http.Client methods,
// and net dialing. Returns "" for everything else.
func blockingCallKind(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "net/http":
		switch fn.Name() {
		case "Get", "Head", "Post", "PostForm":
			sig, ok := fn.Type().(*types.Signature)
			if ok && (sig.Recv() == nil || isMethodOn(fn, "net/http", "Client")) {
				return "outbound HTTP"
			}
		case "Do":
			if isMethodOn(fn, "net/http", "Client") {
				return "outbound HTTP"
			}
		}
	case "net":
		switch fn.Name() {
		case "Dial", "DialTimeout":
			sig, ok := fn.Type().(*types.Signature)
			if ok && sig.Recv() == nil {
				return "outbound dial"
			}
		}
	}
	return ""
}

// isStopChan reports whether t is a channel of empty structs — the
// repo's stop/done-channel convention. Waiting on one is lifecycle
// signalling, not data flow, and is exempt from the blocking rules
// (ctx.Done() has exactly this type, so it is covered too).
func isStopChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// selectHasDefault reports whether sel has a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// selectHasStopCase reports whether any case of sel receives from a stop
// channel (chan struct{}, which includes ctx.Done()).
func selectHasStopCase(info *types.Info, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if recv := commRecvExpr(cc.Comm); recv != nil && isStopChan(info.TypeOf(recv.X)) {
			return true
		}
	}
	return false
}

// commRecvExpr extracts the receive operation of a select comm
// statement, or nil for sends.
func commRecvExpr(comm ast.Stmt) *ast.UnaryExpr {
	var e ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u
	}
	return nil
}

// isCommOperation reports whether n (a SendStmt or receive UnaryExpr) is
// the comm operation of a select case — those are governed by the
// select's default/stop-case rules, not reported individually. Channel
// operations in a case *body* are ordinary blocking operations.
func isCommOperation(stack []ast.Node, n ast.Node) bool {
	cur := n
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.CommClause:
			return p.Comm == cur
		case *ast.ExprStmt, *ast.AssignStmt, *ast.ParenExpr:
			cur = p
		default:
			return false
		}
	}
	return false
}
