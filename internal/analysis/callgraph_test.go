package analysis

import (
	"path/filepath"
	"slices"
	"testing"
)

const cgFixturePath = "ftclust/internal/analysis/testdata/src/callgraph"

func loadFixturePackages(t *testing.T, names ...string) []*Package {
	t.Helper()
	var pkgs []*Package
	for _, name := range names {
		dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := testLoader().LoadDir(dir, "ftclust/internal/analysis/testdata/src/"+name)
		if err != nil {
			t.Fatalf("loading %s: %v", name, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	m := BuildModule(loadFixturePackages(t, "callgraph"))
	measure := m.Funcs[cgFixturePath+".measure"]
	if measure == nil {
		t.Fatalf("measure not indexed; keys: %v", m.Keys())
	}
	wantEdge := func(key string) {
		t.Helper()
		if !slices.Contains(measure.Calls, key) {
			t.Errorf("measure lacks dispatch edge to %s; has %v", key, measure.Calls)
		}
	}
	wantEdge(cgFixturePath + ".(square).area")
	wantEdge(cgFixturePath + ".(circle).area")
	if slices.Contains(measure.Calls, cgFixturePath+".(blob).area") {
		t.Errorf("measure must not dispatch to the different-arity (blob).area; has %v", measure.Calls)
	}
}

func TestCallGraphMethodValueEdge(t *testing.T) {
	m := BuildModule(loadFixturePackages(t, "callgraph"))
	mv := m.Funcs[cgFixturePath+".methodValue"]
	if mv == nil {
		t.Fatal("methodValue not indexed")
	}
	if !slices.Contains(mv.Calls, cgFixturePath+".(square).area") {
		t.Errorf("method value reference should create an edge; has %v", mv.Calls)
	}
}

func TestCallGraphSpawns(t *testing.T) {
	m := BuildModule(loadFixturePackages(t, "callgraph"))
	spawnNamed := m.Funcs[cgFixturePath+".spawnNamed"]
	if len(spawnNamed.Spawns) != 1 || spawnNamed.Spawns[0].EntryKey != cgFixturePath+".helper" {
		t.Errorf("spawnNamed should record a named spawn of helper: %+v", spawnNamed.Spawns)
	}
	if slices.Contains(spawnNamed.Calls, cgFixturePath+".helper") {
		t.Errorf("spawned entry must not be a synchronous call edge; has %v", spawnNamed.Calls)
	}
	spawnLit := m.Funcs[cgFixturePath+".spawnLit"]
	if len(spawnLit.Spawns) != 1 || spawnLit.Spawns[0].Lit == nil {
		t.Errorf("spawnLit should record a literal spawn: %+v", spawnLit.Spawns)
	}
	if slices.Contains(spawnLit.Calls, cgFixturePath+".measure") {
		t.Errorf("literal spawn body must not contribute synchronous edges; has %v", spawnLit.Calls)
	}
	if got := m.callsUnder(spawnLit.Pkg, spawnLit.Spawns[0].Lit.Body); !slices.Contains(got, cgFixturePath+".measure") {
		t.Errorf("callsUnder(lit) should see measure; got %v", got)
	}
}

func TestCallGraphRoots(t *testing.T) {
	m := BuildModule(loadFixturePackages(t, "callgraph"))
	roots := m.Roots()
	if roots[cgFixturePath+".handleThing"] != RootHandler {
		t.Errorf("handleThing should be a handler root; roots: %v", roots)
	}
	if roots[cgFixturePath+".helper"] != RootGoroutine {
		t.Errorf("helper should be a goroutine root; roots: %v", roots)
	}
	if _, ok := roots[cgFixturePath+".measure"]; ok {
		t.Errorf("measure must not be a root")
	}
	reach := m.ReachableFrom(roots)
	if reach[cgFixturePath+".(circle).area"] == "" {
		t.Errorf("(circle).area should be reachable from handleThing via measure; reach: %v", reach)
	}
}

func TestCallGraphCrossPackageSummaries(t *testing.T) {
	m := BuildModule(loadFixturePackages(t, "boundedio", "boundedio/bioutil"))
	const bioPath = "ftclust/internal/analysis/testdata/src/boundedio"
	caller := m.Funcs[bioPath+".badCrossPackage"]
	if caller == nil {
		t.Fatal("badCrossPackage not indexed")
	}
	if !slices.Contains(caller.Calls, bioPath+"/bioutil.ReadAllOf") {
		t.Errorf("cross-package call edge missing; has %v", caller.Calls)
	}
	// The fact that makes boundedio's cross-package reporting work:
	// sink-ness propagates callee→caller across the package boundary.
	direct := map[string]bool{bioPath + "/bioutil.ReadAllOf": true}
	closed := m.PropagateFromCallees(direct)
	if !closed[bioPath+".badCrossPackage"] {
		t.Error("PropagateFromCallees did not cross the package boundary")
	}
	if closed[bioPath+".goodHelperNotSink"] {
		t.Error("PropagateFromCallees leaked to an unrelated caller")
	}
}

func TestCallGraphFacadeRoots(t *testing.T) {
	// The real module root: its exported functions are solver façade
	// roots, and the engine façade's edges cross into internal/core.
	root, _, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := testLoader().LoadDir(root, modulePath)
	if err != nil {
		t.Fatal(err)
	}
	m := BuildModule([]*Package{pkg})
	roots := m.Roots()
	foundFacade := false
	for key, kind := range roots {
		if kind == RootFacade {
			foundFacade = true
			_ = key
		}
	}
	if !foundFacade {
		t.Errorf("module root package should contribute façade roots; roots: %v", roots)
	}
}
