package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder enforces the byte-identical-output contract (PR 2: cache and
// coalesced service bodies; PR 3: canonical hashing; PR 4: Prometheus
// exposition): Go map iteration order is random per run, so a `range`
// over a map may not let that order escape into anything a client, hash,
// or metrics scrape can see. Commutative accumulation (counter bumps,
// writes into another map, max/min tracking) is fine; appends are fine
// only when the collected slice is sorted before use; writing to an
// encoder, hash, writer, channel, or observation stream inside the loop
// is flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops whose iteration order can escape " +
		"into output, hashes, metrics, or channels",
	Run: runMapOrder,
}

// Method names that make iteration order observable when called inside a
// map range: stream writers, encoders, and metric observation points.
// (Counter.Add / Inc are commutative and deliberately absent; Histogram
// observations land in a CAS float sum whose rounding is order-dependent,
// which is exactly the nondeterminism PR 4's byte-stable /metrics must
// avoid.)
var orderSinkMethods = map[string]bool{
	"Write":           true,
	"WriteString":     true,
	"WriteByte":       true,
	"WriteRune":       true,
	"Encode":          true,
	"EncodeToken":     true,
	"Observe":         true,
	"ObserveDuration": true,
}

// Package-level printing/writing functions with the same effect.
var orderSinkFuncs = map[[2]string]bool{
	{"fmt", "Fprint"}:     true,
	{"fmt", "Fprintf"}:    true,
	{"fmt", "Fprintln"}:   true,
	{"fmt", "Print"}:      true,
	{"fmt", "Printf"}:     true,
	{"fmt", "Println"}:    true,
	{"io", "WriteString"}: true,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rs, stack)
			return true
		})
	}
	return nil
}

// checkMapRange inspects one range-over-map body for order escapes.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	// Appended-to locals: sanctioned if sorted after the loop.
	appendTargets := make(map[types.Object]bool)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, n, appendTargets)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside range over map: iteration order escapes to the receiver")
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil {
				if orderSinkMethods[fn.Name()] {
					pass.Reportf(n.Pos(),
						"%s.%s inside range over map: iteration order escapes into the stream", recvName(fn), fn.Name())
				}
			} else if orderSinkFuncs[[2]string{fn.Pkg().Path(), fn.Name()}] {
				pass.Reportf(n.Pos(),
					"%s.%s inside range over map: iteration order escapes into the output", fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})

	for obj := range appendTargets {
		if !sortedAfter(pass, rs, stack, obj) {
			pass.Reportf(rs.Pos(),
				"range over map appends to %s, which is never sorted afterwards: element order is random per run", obj.Name())
		}
	}
}

// checkMapRangeAssign classifies one assignment inside a map range:
// string concatenation and appends are order-sensitive, everything else
// (numeric accumulation, writes into maps, flag setting) is commutative
// enough to allow.
func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, appendTargets map[types.Object]bool) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if t := pass.TypeOf(as.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				pass.Reportf(as.Pos(),
					"string concatenation inside range over map: result depends on iteration order")
				return
			}
		}
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass.Info, call) {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			// Appending straight into a field or element: no local to
			// check for a later sort, so flag it outright.
			pass.Reportf(as.Pos(),
				"append to non-local %s inside range over map: element order is random per run", types.ExprString(as.Lhs[i]))
			continue
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			continue
		}
		if obj.Pos() > rs.Pos() && obj.Pos() < rs.End() {
			continue // loop-local scratch, dies with the iteration
		}
		appendTargets[obj] = true
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether some statement after rs in an enclosing
// block mentions obj inside a call into sort or slices — the canonical
// collect-keys-then-sort idiom.
func sortedAfter(pass *Pass, rs *ast.RangeStmt, stack []ast.Node, obj types.Object) bool {
	for si := len(stack) - 1; si >= 0; si-- {
		block, ok := stack[si].(*ast.BlockStmt)
		if !ok {
			continue
		}
		for _, st := range block.List {
			if st.Pos() <= rs.Pos() {
				continue
			}
			found := false
			ast.Inspect(st, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || found {
					return !found
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "sort", "slices":
					if mentionsObject(pass.Info, call, obj) {
						found = true
					}
				default:
					// The collect-then-sort idiom is often factored into a
					// package-local helper (sortNodeIDs, sortKeys, …); a
					// same-package callee whose name says it sorts counts.
					if fn.Pkg() == pass.Pkg &&
						strings.Contains(strings.ToLower(fn.Name()), "sort") &&
						mentionsObject(pass.Info, call, obj) {
						found = true
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

// recvName renders the receiver type name of a method for diagnostics.
func recvName(fn *types.Func) string {
	if named := recvNamed(fn); named != nil {
		return named.Obj().Name()
	}
	return "receiver"
}
