// Package verify provides the correctness checkers the experiment suite
// and tests use to validate solutions: the standard k-fold dominating set
// definition of Section 1, the closed-neighborhood (PP) convention of
// Section 4.1, and coverage accounting under node failures.
package verify

import (
	"fmt"
	"math"

	"ftclust/internal/graph"
)

// Convention selects the feasibility definition being checked.
type Convention int

const (
	// Standard is the paper's Section 1 definition: every node v ∉ S has
	// at least k neighbors in S; members of S need no coverage.
	Standard Convention = iota + 1
	// ClosedPP is the (PP) convention of Section 4.1: every node v (member
	// or not) needs k_v coverage in its closed neighborhood, counting
	// itself once if v ∈ S.
	ClosedPP
)

// String implements fmt.Stringer.
func (c Convention) String() string {
	switch c {
	case Standard:
		return "standard"
	case ClosedPP:
		return "closed-pp"
	default:
		return fmt.Sprintf("convention(%d)", int(c))
	}
}

// CheckKFold verifies that S (as a bool mask over nodes) is a k-fold
// dominating set under the convention. Demands are capped at what is
// achievable: min(k, δ(v)) for Standard non-members, min(k, δ(v)+1) for
// ClosedPP. It returns nil if feasible and a descriptive error naming the
// first violated node otherwise.
func CheckKFold(g *graph.Graph, inSet []bool, k float64, conv Convention) error {
	kv := make([]float64, g.NumNodes())
	for v := range kv {
		kv[v] = k
	}
	return CheckKFoldVector(g, inSet, kv, conv)
}

// CheckKFoldVector is CheckKFold with per-node demands.
func CheckKFoldVector(g *graph.Graph, inSet []bool, k []float64, conv Convention) error {
	n := g.NumNodes()
	if len(inSet) != n || len(k) != n {
		return fmt.Errorf("verify: length mismatch (n=%d, |S|=%d, |k|=%d)", n, len(inSet), len(k))
	}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		switch conv {
		case Standard:
			if inSet[v] {
				continue
			}
			need := math.Min(k[v], float64(g.Degree(id)))
			got := 0.0
			for _, w := range g.Neighbors(id) {
				if inSet[w] {
					got++
				}
			}
			if got < need {
				return fmt.Errorf("verify: node %d has %v of %v dominators (standard)", v, got, need)
			}
		case ClosedPP:
			need := math.Min(k[v], float64(g.Degree(id)+1))
			got := 0.0
			if inSet[v] {
				got++
			}
			for _, w := range g.Neighbors(id) {
				if inSet[w] {
					got++
				}
			}
			if got < need {
				return fmt.Errorf("verify: node %d has %v of %v coverage (closed-pp)", v, got, need)
			}
		default:
			return fmt.Errorf("verify: unknown convention %v", conv)
		}
	}
	return nil
}

// Coverage returns, for every node, the number of set members in its
// closed neighborhood (itself included if a member).
func Coverage(g *graph.Graph, inSet []bool) []int {
	n := g.NumNodes()
	cov := make([]int, n)
	for v := 0; v < n; v++ {
		if inSet[v] {
			cov[v]++
		}
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if inSet[w] {
				cov[v]++
			}
		}
	}
	return cov
}

// SetSize counts the members of the mask.
func SetSize(inSet []bool) int {
	n := 0
	for _, in := range inSet {
		if in {
			n++
		}
	}
	return n
}

// SetFromMask converts the mask to a sorted ID list.
func SetFromMask(inSet []bool) []graph.NodeID {
	var out []graph.NodeID
	for v, in := range inSet {
		if in {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// MaskFromSet converts an ID list to a mask over n nodes.
func MaskFromSet(n int, set []graph.NodeID) []bool {
	mask := make([]bool, n)
	for _, v := range set {
		mask[v] = true
	}
	return mask
}

// FailureReport summarizes residual domination after dominator failures.
type FailureReport struct {
	// Failed is the number of set members removed.
	Failed int
	// UncoveredNodes counts surviving non-members with zero surviving
	// dominators in their neighborhood.
	UncoveredNodes int
	// MinCoverage is the minimum surviving dominator count over surviving
	// non-member nodes (0 if any is uncovered); -1 when there are no
	// non-member nodes.
	MinCoverage int
}

// AfterFailures evaluates how domination degrades when the dominators in
// dead fail (dead nodes need no coverage themselves: a crashed sensor
// neither serves nor demands the backbone).
func AfterFailures(g *graph.Graph, inSet []bool, dead map[graph.NodeID]bool) FailureReport {
	rep := FailureReport{MinCoverage: -1}
	for v := range inSet {
		if inSet[v] && dead[graph.NodeID(v)] {
			rep.Failed++
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if dead[id] || inSet[v] {
			continue
		}
		cov := 0
		for _, w := range g.Neighbors(id) {
			if inSet[w] && !dead[w] {
				cov++
			}
		}
		if rep.MinCoverage < 0 || cov < rep.MinCoverage {
			rep.MinCoverage = cov
		}
		if cov == 0 {
			rep.UncoveredNodes++
		}
	}
	return rep
}
