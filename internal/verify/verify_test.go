package verify

import (
	"testing"

	"ftclust/internal/graph"
)

func TestConventions(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	center := []bool{false, true, false}
	if err := CheckKFold(g, center, 1, Standard); err != nil {
		t.Errorf("center dominates under standard: %v", err)
	}
	if err := CheckKFold(g, center, 1, ClosedPP); err != nil {
		t.Errorf("center dominates under closed-pp: %v", err)
	}
	end := []bool{true, false, false}
	if err := CheckKFold(g, end, 1, Standard); err == nil {
		t.Error("endpoint-only should fail standard (node 2 uncovered)")
	}
	// Members are exempt under Standard but not under ClosedPP for k=2.
	all := []bool{true, true, true}
	if err := CheckKFold(g, all, 5, Standard); err != nil {
		t.Errorf("S=V always passes standard: %v", err)
	}
	if err := CheckKFold(g, all, 5, ClosedPP); err != nil {
		t.Errorf("S=V always passes closed-pp (capped demands): %v", err)
	}
}

func TestStandardExemptsMembers(t *testing.T) {
	g := graph.Star(4)
	onlyLeaf := []bool{false, true, false, false}
	// Leaf 1 is in S (exempt); center has 1 dominator; leaves 2,3 have 0.
	if err := CheckKFold(g, onlyLeaf, 1, Standard); err == nil {
		t.Error("leaves 2,3 uncovered; should fail")
	}
	centerAndLeaf := []bool{true, true, false, false}
	if err := CheckKFold(g, centerAndLeaf, 1, Standard); err != nil {
		t.Errorf("center covers leaves: %v", err)
	}
}

func TestCapsAtDegree(t *testing.T) {
	g := graph.Path(2)
	one := []bool{true, false}
	// k=5 capped: node 1 ∉ S has degree 1, needs min(5,1)=1 dominator. ✓
	if err := CheckKFold(g, one, 5, Standard); err != nil {
		t.Errorf("capped standard: %v", err)
	}
	// ClosedPP: node 1 needs min(5, 2)=2 coverage but has 1 → fail.
	if err := CheckKFold(g, one, 5, ClosedPP); err == nil {
		t.Error("closed-pp should fail: node 1 has 1 of 2")
	}
}

func TestVectorAndLengthValidation(t *testing.T) {
	g := graph.Path(3)
	if err := CheckKFoldVector(g, []bool{true}, []float64{1, 1, 1}, Standard); err == nil {
		t.Error("length mismatch should error")
	}
	if err := CheckKFold(g, []bool{true, true, true}, 1, Convention(99)); err == nil {
		t.Error("unknown convention should error")
	}
	k := []float64{1, 2, 1}
	s := []bool{true, false, true}
	// Node 1 needs 2 of its closed nbhd {0,1,2}: has 0 and 2 → ok.
	if err := CheckKFoldVector(g, s, k, ClosedPP); err != nil {
		t.Errorf("vector demands: %v", err)
	}
}

func TestCoverageAndMasks(t *testing.T) {
	g := graph.Ring(4)
	s := []bool{true, false, true, false}
	cov := Coverage(g, s)
	want := []int{1, 2, 1, 2}
	for i := range cov {
		if cov[i] != want[i] {
			t.Errorf("cov[%d] = %d, want %d", i, cov[i], want[i])
		}
	}
	if SetSize(s) != 2 {
		t.Error("SetSize")
	}
	ids := SetFromMask(s)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Errorf("SetFromMask = %v", ids)
	}
	back := MaskFromSet(4, ids)
	for i := range back {
		if back[i] != s[i] {
			t.Error("MaskFromSet round-trip failed")
		}
	}
}

func TestAfterFailures(t *testing.T) {
	g := graph.Star(5) // center 0
	s := []bool{true, true, false, false, false}
	rep := AfterFailures(g, s, map[graph.NodeID]bool{0: true})
	if rep.Failed != 1 {
		t.Errorf("Failed = %d, want 1", rep.Failed)
	}
	// Leaves 2,3,4 survive uncovered (their only dominator 0 died;
	// leaf 1 is a member).
	if rep.UncoveredNodes != 3 {
		t.Errorf("UncoveredNodes = %d, want 3", rep.UncoveredNodes)
	}
	if rep.MinCoverage != 0 {
		t.Errorf("MinCoverage = %d, want 0", rep.MinCoverage)
	}
	// No failures: everyone keeps their dominator.
	rep2 := AfterFailures(g, s, nil)
	if rep2.Failed != 0 || rep2.UncoveredNodes != 0 || rep2.MinCoverage != 1 {
		t.Errorf("no-failure report = %+v", rep2)
	}
	// All non-members dead: no coverage demands remain.
	rep3 := AfterFailures(g, s, map[graph.NodeID]bool{2: true, 3: true, 4: true})
	if rep3.MinCoverage != -1 || rep3.UncoveredNodes != 0 {
		t.Errorf("all-dead report = %+v", rep3)
	}
}

func TestConventionString(t *testing.T) {
	if Standard.String() != "standard" || ClosedPP.String() != "closed-pp" {
		t.Error("convention names")
	}
	if Convention(9).String() == "" {
		t.Error("unknown convention should still print")
	}
}
