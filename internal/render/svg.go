// Package render draws sensor deployments and clustering solutions as SVG,
// the visual artifact sensor-network papers (and their readers) expect:
// nodes, radio edges, cluster heads, and optionally the bridge nodes of a
// connected backbone.
package render

import (
	"fmt"
	"io"
	"strings"

	"ftclust/internal/geom"
	"ftclust/internal/graph"
)

// Style configures the drawing.
type Style struct {
	// Scale is pixels per distance unit (default 60).
	Scale float64
	// DrawEdges draws the UDG communication edges (default true when the
	// graph has at most MaxEdges edges).
	DrawEdges bool
	// MaxEdges suppresses edge drawing above this count (default 4000).
	MaxEdges int
}

func (s Style) withDefaults() Style {
	if s.Scale <= 0 {
		s.Scale = 60
	}
	if s.MaxEdges == 0 {
		s.MaxEdges = 4000
	}
	return s
}

// SVG writes the deployment as an SVG document. leaders marks cluster
// heads (drawn large, filled); bridges, if non-nil, marks backbone bridge
// nodes (drawn as squares).
func SVG(w io.Writer, pts []geom.Point, g *graph.Graph, leaders, bridges []bool, style Style) error {
	st := style.withDefaults()
	if len(pts) == 0 {
		_, err := io.WriteString(w, `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>`)
		return err
	}
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := pts[0].X, pts[0].Y
	for _, p := range pts {
		minX, maxX = min2(minX, p.X), max2(maxX, p.X)
		minY, maxY = min2(minY, p.Y), max2(maxY, p.Y)
	}
	const pad = 0.6
	tx := func(x float64) float64 { return (x - minX + pad) * st.Scale }
	ty := func(y float64) float64 { return (y - minY + pad) * st.Scale }
	width := (maxX - minX + 2*pad) * st.Scale
	height := (maxY - minY + 2*pad) * st.Scale

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	drawEdges := st.DrawEdges || g.NumEdges() <= st.MaxEdges
	if drawEdges && g.NumEdges() <= st.MaxEdges {
		sb.WriteString(`<g stroke="#d0d0d0" stroke-width="0.6">` + "\n")
		g.Edges(func(u, v graph.NodeID) {
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n",
				tx(pts[u].X), ty(pts[u].Y), tx(pts[v].X), ty(pts[v].Y))
		})
		sb.WriteString("</g>\n")
	}

	// Plain nodes.
	sb.WriteString(`<g fill="#4a90d9">` + "\n")
	for i, p := range pts {
		if (leaders != nil && leaders[i]) || (bridges != nil && bridges[i]) {
			continue
		}
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2.2"/>`+"\n", tx(p.X), ty(p.Y))
	}
	sb.WriteString("</g>\n")

	// Bridge nodes (backbone connectors).
	if bridges != nil {
		sb.WriteString(`<g fill="#f5a623" stroke="#8a5d00" stroke-width="0.8">` + "\n")
		for i, p := range pts {
			if !bridges[i] || (leaders != nil && leaders[i]) {
				continue
			}
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="7" height="7"/>`+"\n",
				tx(p.X)-3.5, ty(p.Y)-3.5)
		}
		sb.WriteString("</g>\n")
	}

	// Cluster heads.
	if leaders != nil {
		sb.WriteString(`<g fill="#d0021b" stroke="#7a0010" stroke-width="1">` + "\n")
		for i, p := range pts {
			if !leaders[i] {
				continue
			}
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="4.5"/>`+"\n", tx(p.X), ty(p.Y))
		}
		sb.WriteString("</g>\n")
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
