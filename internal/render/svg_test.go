package render

import (
	"bytes"
	"strings"
	"testing"

	"ftclust/internal/geom"
)

func TestSVGBasics(t *testing.T) {
	pts := geom.UniformPoints(50, 3, 1)
	g, _ := geom.UnitUDG(pts)
	leaders := make([]bool, 50)
	leaders[0], leaders[7] = true, true
	bridges := make([]bool, 50)
	bridges[3] = true

	var buf bytes.Buffer
	if err := SVG(&buf, pts, g, leaders, bridges, Style{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "circle", "rect", "#d0021b", "#f5a623"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in SVG output", want)
		}
	}
	if strings.Count(out, `r="4.5"`) != 2 {
		t.Errorf("expected 2 leader circles, got %d", strings.Count(out, `r="4.5"`))
	}
}

func TestSVGEmptyAndEdgeSuppression(t *testing.T) {
	var buf bytes.Buffer
	g, _ := geom.UnitUDG(nil)
	if err := SVG(&buf, nil, g, nil, nil, Style{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("empty SVG malformed")
	}

	// Dense deployment with suppressed edges.
	pts := geom.UniformPoints(400, 2, 2)
	gg, _ := geom.UnitUDG(pts)
	buf.Reset()
	if err := SVG(&buf, pts, gg, nil, nil, Style{MaxEdges: 10}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<line") {
		t.Error("edges should be suppressed above MaxEdges")
	}
}
