package udg

import (
	"testing"
	"testing/quick"

	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/sim"
	"ftclust/internal/verify"
)

func deployment(n int, side float64, seed int64) ([]geom.Point, *graph.Graph, *geom.Index) {
	pts := geom.UniformPoints(n, side, seed)
	g, idx := geom.UnitUDG(pts)
	return pts, g, idx
}

func TestPartIDominates(t *testing.T) {
	// Lemma 5.1: after Part I, every node is a leader or has a leader
	// within distance 1.
	for seed := int64(0); seed < 10; seed++ {
		pts, g, idx := deployment(300, 6, seed)
		res, err := Solve(pts, g, idx, Options{K: 1, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := verify.CheckKFold(g, res.PartILeader, 1, verify.Standard); err != nil {
			t.Errorf("seed %d: Part I not dominating: %v", seed, err)
		}
	}
}

func TestPartIIKFold(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		for seed := int64(0); seed < 4; seed++ {
			pts, g, idx := deployment(400, 5, seed)
			res, err := Solve(pts, g, idx, Options{K: k, Seed: seed})
			if err != nil {
				t.Fatalf("k=%d seed %d: %v", k, seed, err)
			}
			if err := verify.CheckKFold(g, res.Leader, float64(k), verify.ClosedPP); err != nil {
				t.Errorf("k=%d seed %d: %v", k, seed, err)
			}
			// ClosedPP implies the Section 1 standard definition.
			if err := verify.CheckKFold(g, res.Leader, float64(k), verify.Standard); err != nil {
				t.Errorf("k=%d seed %d (standard): %v", k, seed, err)
			}
			if res.Size() < res.PartISize() {
				t.Errorf("k=%d seed %d: Part II shrank the leader set", k, seed)
			}
		}
	}
}

func TestActiveCountsDecrease(t *testing.T) {
	pts, g, idx := deployment(2000, 4, 3)
	res, err := Solve(pts, g, idx, Options{K: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ActivePerRound) != res.PartIRounds+1 {
		t.Fatalf("ActivePerRound has %d entries for %d rounds",
			len(res.ActivePerRound), res.PartIRounds)
	}
	if res.ActivePerRound[0] != 2000 {
		t.Errorf("initial active = %d, want 2000", res.ActivePerRound[0])
	}
	for i := 1; i < len(res.ActivePerRound); i++ {
		if res.ActivePerRound[i] > res.ActivePerRound[i-1] {
			t.Errorf("active count increased at round %d: %v", i, res.ActivePerRound)
		}
	}
	final := res.ActivePerRound[len(res.ActivePerRound)-1]
	if final >= 2000/4 {
		t.Errorf("sparsification too weak: %d of 2000 still active", final)
	}
}

func TestLeadersPerDiskBounded(t *testing.T) {
	// Lemma 5.5 / 5.6: expected leaders per ½-radius disk is O(1) after
	// Part I and O(k) after Part II. We assert loose empirical caps on the
	// mean (the lemmas bound expectations, not worst cases).
	pts, g, idx := deployment(3000, 6, 1)
	for _, k := range []int{1, 4} {
		res, err := Solve(pts, g, idx, Options{K: k, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		counts := LeadersPerDisk(pts, res.Leader)
		if len(counts) == 0 {
			t.Fatal("no occupied disks")
		}
		mean := 0.0
		for _, c := range counts {
			mean += float64(c)
		}
		mean /= float64(len(counts))
		if limit := 4.0*float64(k) + 4; mean > limit {
			t.Errorf("k=%d: mean leaders/disk %.2f exceeds %.1f", k, mean, limit)
		}
	}
}

func TestNoFallbackOnRandomDeployments(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		pts, g, idx := deployment(500, 5, seed)
		res, err := Solve(pts, g, idx, Options{K: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.FallbackRecruits != 0 {
			t.Errorf("seed %d: fallback fired %d times on a random deployment",
				seed, res.FallbackRecruits)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	pts, g, idx := deployment(10, 3, 1)
	if _, err := Solve(pts, g, idx, Options{K: 0, Seed: 1}); err == nil {
		t.Error("k=0 should be rejected")
	}
	if _, err := Solve(pts[:5], g, idx, Options{K: 1, Seed: 1}); err == nil {
		t.Error("points/graph mismatch should be rejected")
	}
	empty, eidx := geom.UnitUDG(nil)
	if res, err := Solve(nil, empty, eidx, Options{K: 1, Seed: 1}); err != nil || res.Size() != 0 {
		t.Errorf("empty instance: res=%v err=%v", res, err)
	}
}

func TestQuickAlwaysKFold(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%150 + 2
		k := int(kRaw)%4 + 1
		pts, g, idx := deployment(n, 4, seed)
		res, err := Solve(pts, g, idx, Options{K: k, Seed: seed})
		if err != nil {
			return false
		}
		return verify.CheckKFold(g, res.Leader, float64(k), verify.ClosedPP) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func runUDGProgram(t *testing.T, pts []geom.Point, g *graph.Graph, cfg ProgramConfig, seed int64) ([]sim.Program, sim.Metrics) {
	t.Helper()
	simPts := make([]sim.Point, len(pts))
	for i, p := range pts {
		simPts[i] = sim.Point{X: p.X, Y: p.Y}
	}
	nw := sim.New(g, sim.WithSeed(seed), sim.WithDistances(simPts))
	res, err := nw.Run(func(v graph.NodeID) sim.Program {
		return NewProgram(v, cfg)
	}, 1000)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return res.Programs, res.Metrics
}

func TestProgramMatchesEngine(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		pts, g, idx := deployment(250, 4, seed)
		eng, err := Solve(pts, g, idx, Options{K: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		progs, _ := runUDGProgram(t, pts, g, ProgramConfig{
			K:           3,
			PartIIIters: eng.PartIIIters + 2,
		}, seed)
		for v, sp := range progs {
			p := sp.(*Program)
			if p.PartILeader() != eng.PartILeader[v] {
				t.Errorf("seed %d node %d: partI engine=%v program=%v",
					seed, v, eng.PartILeader[v], p.PartILeader())
			}
			if p.Leader() != eng.Leader[v] {
				t.Errorf("seed %d node %d: leader engine=%v program=%v",
					seed, v, eng.Leader[v], p.Leader())
			}
		}
	}
}

func TestProgramRoundsAndMessageSizes(t *testing.T) {
	pts, g, _ := deployment(400, 4, 7)
	iters := 6
	progs, met := runUDGProgram(t, pts, g, ProgramConfig{K: 2, PartIIIters: iters}, 7)
	// 2 rounds per election round, then per Part II iteration 3 rounds,
	// plus the final flagSend round that terminates.
	wantRounds := 2*geom.PartIRounds(400) + 3*iters + 1
	if met.Rounds != wantRounds {
		t.Errorf("rounds = %d, want %d", met.Rounds, wantRounds)
	}
	if c := met.MaxBitsPerLogN(400); c > 4.5 {
		t.Errorf("max message bits %d = %.1f × log n (want ≤ 4.5: IDs are 4·log n + O(1))",
			met.MaxMessageBits, c)
	}
	out := make([]bool, len(progs))
	for v, sp := range progs {
		out[v] = sp.(*Program).Leader()
	}
	if err := verify.CheckKFold(g, out, 2, verify.ClosedPP); err != nil {
		t.Errorf("program output: %v", err)
	}
}

func TestProgramRunsOnAsyncEngine(t *testing.T) {
	// Algorithm 3 under the α-synchronizer must match the synchronous run.
	pts, g, _ := deployment(150, 4, 12)
	cfg := ProgramConfig{K: 2, PartIIIters: 5}
	simPts := make([]sim.Point, len(pts))
	for i, p := range pts {
		simPts[i] = sim.Point{X: p.X, Y: p.Y}
	}
	mk := func(v graph.NodeID) sim.Program { return NewProgram(v, cfg) }
	syn, err := sim.New(g, sim.WithSeed(6), sim.WithDistances(simPts)).Run(mk, 1000)
	if err != nil {
		t.Fatal(err)
	}
	asy, err := sim.New(g, sim.WithSeed(6), sim.WithDistances(simPts)).RunAsync(mk, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for v := range syn.Programs {
		a := syn.Programs[v].(*Program).Leader()
		b := asy.Programs[v].(*Program).Leader()
		if a != b {
			t.Errorf("node %d: sync %v async %v", v, a, b)
		}
	}
}

func TestProgramRunsOnParallelEngine(t *testing.T) {
	pts, g, _ := deployment(200, 4, 9)
	cfg := ProgramConfig{K: 2, PartIIIters: 5}
	seqProgs, _ := runUDGProgram(t, pts, g, cfg, 2)
	simPts := make([]sim.Point, len(pts))
	for i, p := range pts {
		simPts[i] = sim.Point{X: p.X, Y: p.Y}
	}
	par, err := sim.New(g, sim.WithSeed(2), sim.WithDistances(simPts)).
		RunParallel(func(v graph.NodeID) sim.Program { return NewProgram(v, cfg) }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for v := range seqProgs {
		a := seqProgs[v].(*Program).Leader()
		b := par.Programs[v].(*Program).Leader()
		if a != b {
			t.Errorf("node %d: seq %v par %v", v, a, b)
		}
	}
}
