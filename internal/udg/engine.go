// Package udg implements the paper's Section 5 contribution: Algorithm 3,
// the O(log log n)-round expected-O(1)-approximation for the k-fold
// dominating set problem in unit disk graphs, assuming nodes can sense
// distances to their neighbors.
//
// Part I (the sparsification of Gao et al. [7]) repeatedly halves the
// active-node population with a doubling communication radius θ; survivors
// become leaders and form an ordinary dominating set (Lemma 5.1). Part II
// extends the leader set to a k-fold dominating set by local promotion
// (Lemma 5.6).
//
// Reproduction note on Part II: the pseudocode as printed promotes
// under-covered nodes u ∈ U(v) but never anyone else, and it can stall —
// if the only nodes whose promotion would raise c(u) are themselves fully
// covered, they are in no U(·), so u stays under-covered and U(v) = {u}
// forever. This implementation (a) restricts each leader's selections to
// not-yet-leader members of U(v), which is what the Lemma 5.6 analysis
// charges for, and (b) adds a local fallback preserving both correctness
// and locality: a node whose coverage has not improved for two consecutive
// iterations directly recruits its lowest-ID non-leader neighbors to close
// its own deficit. The fallback never triggers on the random deployments
// of the experiment suite; it exists to make termination unconditional.
package udg

import (
	"fmt"
	"math"

	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/rng"
)

// Options configure the UDG solver.
type Options struct {
	// K is the fault-tolerance parameter k ≥ 1.
	K int
	// Seed drives the per-round random identifiers of Part I.
	Seed int64
	// FanOut caps how many nodes a leader promotes per Part II iteration;
	// 0 means the paper's default of k. Lower fan-out trades iterations
	// for (slightly) smaller solutions — the AblPartTwoFanout experiment.
	FanOut int
}

// Result carries the outcome of Algorithm 3 along with the telemetry the
// Section 5 experiments need.
type Result struct {
	// Leader marks the final k-fold dominating set.
	Leader []bool
	// PartILeader marks the plain dominating set after Part I.
	PartILeader []bool
	// PartIRounds is the number of leader-election rounds (log_ξ log₂ n).
	PartIRounds int
	// PartIIIters counts promotion iterations of Part II.
	PartIIIters int
	// FallbackRecruits counts nodes promoted by the stall-repair fallback
	// (expected 0 on random deployments; see the package comment).
	FallbackRecruits int
	// ActivePerRound[i] is the number of active nodes entering round i+1
	// of Part I (ActivePerRound[0] = n).
	ActivePerRound []int
}

// Size returns the number of final leaders.
func (r Result) Size() int {
	n := 0
	for _, l := range r.Leader {
		if l {
			n++
		}
	}
	return n
}

// PartISize returns the number of Part I leaders.
func (r Result) PartISize() int {
	n := 0
	for _, l := range r.PartILeader {
		if l {
			n++
		}
	}
	return n
}

// Solve runs Algorithm 3 on the unit disk graph of pts (g and idx must be
// the UDG and index built from pts with radius 1, e.g. by geom.UnitUDG).
// The execution is an exact emulation of the synchronous distributed
// algorithm; program.go is the message-passing twin.
func Solve(pts []geom.Point, g *graph.Graph, idx *geom.Index, opts Options) (Result, error) {
	if opts.K < 1 {
		return Result{}, fmt.Errorf("udg: k must be ≥ 1, got %d", opts.K)
	}
	n := len(pts)
	if g.NumNodes() != n {
		return Result{}, fmt.Errorf("udg: graph has %d nodes for %d points", g.NumNodes(), n)
	}
	res := Result{
		Leader:      make([]bool, n),
		PartILeader: make([]bool, n),
	}
	if n == 0 {
		return res, nil
	}

	active := runPartI(pts, idx, opts.Seed, &res)
	copy(res.PartILeader, active)
	copy(res.Leader, active)
	fanOut := opts.FanOut
	if fanOut <= 0 {
		fanOut = opts.K
	}
	runPartII(g, res.Leader, opts.K, fanOut, &res)
	return res, nil
}

// runPartI returns the active mask after the last election round.
func runPartI(pts []geom.Point, idx *geom.Index, seed int64, res *Result) []bool {
	n := len(pts)
	active := make([]bool, n)
	for v := range active {
		active[v] = true
	}
	rnds := make([]*idDrawer, n)
	for v := 0; v < n; v++ {
		rnds[v] = &idDrawer{r: rng.NewStream(seed, uint64(v)+1), n: n}
	}

	R := geom.PartIRounds(n)
	res.PartIRounds = R
	for i := 1; i <= R; i++ {
		res.ActivePerRound = append(res.ActivePerRound, count(active))
		theta := geom.Theta(i, R)
		ids := make([]int64, n)
		for v := 0; v < n; v++ {
			if active[v] {
				ids[v] = rnds[v].draw()
			}
		}
		elected := make([]bool, n)
		for v := 0; v < n; v++ {
			if !active[v] {
				continue
			}
			best := v
			idx.Within(pts[v], theta, v, func(j int) {
				if active[j] && higherID(ids[j], j, ids[best], best) {
					best = j
				}
			})
			elected[best] = true
		}
		active = elected
	}
	res.ActivePerRound = append(res.ActivePerRound, count(active))
	return active
}

// idDrawer draws the per-round random identifiers ID_i(v) ∈ [1, n⁴]
// (range clamped so it fits in an int64 for very large n).
type idDrawer struct {
	r interface{ Int63n(int64) int64 }
	n int
}

func (d *idDrawer) draw() int64 {
	return 1 + d.r.Int63n(idRange(d.n))
}

func idRange(n int) int64 {
	f := float64(n)
	if p := f * f * f * f; p < float64(1<<62) {
		return int64(p)
	}
	return 1 << 62
}

// higherID compares (id, nodeIndex) pairs; node index breaks the
// vanishingly rare identifier ties deterministically.
func higherID(idA int64, a int, idB int64, b int) bool {
	if idA != idB {
		return idA > idB
	}
	return a > b
}

// runPartII promotes nodes until every node v has at least
// min(k, δ(v)+1) leaders in its closed neighborhood (the ClosedPP
// convention, which implies the paper's Section 1 definition).
func runPartII(g *graph.Graph, leader []bool, k, fanOut int, res *Result) {
	n := g.NumNodes()
	kEff := make([]int, n)
	for v := 0; v < n; v++ {
		kEff[v] = min(k, g.Degree(graph.NodeID(v))+1)
	}
	stagnant := make([]int, n)
	prevCov := make([]int, n)
	for iter := 0; ; iter++ {
		cov := coverage(g, leader)
		underAny := false
		for v := 0; v < n; v++ {
			if cov[v] < kEff[v] {
				underAny = true
				if iter > 0 && cov[v] == prevCov[v] {
					stagnant[v]++
				} else {
					stagnant[v] = 0
				}
			} else {
				stagnant[v] = 0
			}
		}
		copy(prevCov, cov)
		if !underAny {
			res.PartIIIters = iter
			return
		}

		// Selections are made independently per node, exactly as in the
		// distributed execution where concurrent selections cannot see
		// each other; duplicates collapse when promotions are applied.
		promote := make([]bool, n)
		// Leaders select up to k not-yet-leader under-covered closed
		// neighbors (Lines 19–24, with the non-leader restriction).
		for v := 0; v < n; v++ {
			if !leader[v] {
				continue
			}
			picked := 0
			forClosed(g, v, func(u int) {
				if picked < fanOut && !leader[u] && cov[u] < kEff[u] {
					promote[u] = true
					picked++
				}
			})
		}
		// Stall fallback: a node stuck for two iterations closes its own
		// deficit by recruiting lowest-ID non-leader closed neighbors.
		for v := 0; v < n; v++ {
			if stagnant[v] < 2 || cov[v] >= kEff[v] {
				continue
			}
			deficit := kEff[v] - cov[v]
			forClosed(g, v, func(u int) {
				if deficit > 0 && !leader[u] {
					promote[u] = true
					deficit--
					res.FallbackRecruits++
				}
			})
		}
		for v := 0; v < n; v++ {
			if promote[v] {
				leader[v] = true
			}
		}
	}
}

// coverage returns, per node, the number of leaders in its closed
// neighborhood.
func coverage(g *graph.Graph, leader []bool) []int {
	n := g.NumNodes()
	cov := make([]int, n)
	for v := 0; v < n; v++ {
		if leader[v] {
			cov[v]++
		}
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if leader[w] {
				cov[v]++
			}
		}
	}
	return cov
}

// forClosed visits the closed neighborhood of v in ascending ID order.
func forClosed(g *graph.Graph, v int, fn func(u int)) {
	visitedSelf := false
	for _, w := range g.Neighbors(graph.NodeID(v)) {
		if !visitedSelf && int(w) > v {
			fn(v)
			visitedSelf = true
		}
		fn(int(w))
	}
	if !visitedSelf {
		fn(v)
	}
}

func count(mask []bool) int {
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// LeadersPerDisk measures, for a hexagonal lattice of disks of radius 1/2
// covering the deployment area, the leader count inside each non-empty
// disk. It is the quantity Lemmas 5.5 and 5.6 bound.
func LeadersPerDisk(pts []geom.Point, leader []bool) []int {
	if len(pts) == 0 {
		return nil
	}
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := pts[0].X, pts[0].Y
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	center := geom.Point{X: (minX + maxX) / 2, Y: (minY + maxY) / 2}
	spread := math.Hypot(maxX-minX, maxY-minY)/2 + 1
	centers := geom.HexLattice(center, 0.5, spread)
	var counts []int
	for _, c := range centers {
		occupied, leaders := 0, 0
		for i, p := range pts {
			if c.Dist2(p) <= 0.25 {
				occupied++
				if leader[i] {
					leaders++
				}
			}
		}
		if occupied > 0 {
			counts = append(counts, leaders)
		}
	}
	return counts
}
