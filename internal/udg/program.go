package udg

import (
	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/sim"
)

// This file is the message-passing twin of engine.go: Algorithm 3 as a
// sim.Program. Every Part I election round costs two simulator rounds (ID
// exchange, elect-message delivery) and every Part II promotion iteration
// costs three (leader flags, coverage flags, promote/recruit messages).
// All messages are O(log n) bits; the largest is the random identifier
// (4·log n bits, as in the paper).

// ProgramConfig configures NewProgram.
type ProgramConfig struct {
	// K is the fault-tolerance parameter.
	K int
	// PartIIIters is the number of promotion iterations to run; the engine
	// needs PartIIIters ≥ engine iterations + 2 for exact agreement, and
	// O(k) always suffices in practice (Theorem 5.7 argues O(1)).
	PartIIIters int
}

// Program is the per-node state machine of Algorithm 3.
type Program struct {
	cfg ProgramConfig
	id  graph.NodeID

	rounds      int // R = Part I election rounds
	active      bool
	leader      bool
	partILeader bool
	partIDone   bool

	selfElected bool
	electRound  int // current election round, 1-based
	lastID      int64

	// Part II state.
	iter     int
	kEff     int
	cov      int
	prevCov  int
	stagnant int
	nbLeader map[graph.NodeID]bool
	nbUnder  map[graph.NodeID]bool

	phase udgPhase
}

type udgPhase int

const (
	phaseIDSend udgPhase = iota
	phaseElect
	phaseFlagSend
	phaseCovSend
	phasePromote
	phaseUDGDone
)

type udgIDMsg struct{ ID int64 }

func (udgIDMsg) SizeBits(n int) int { return sim.RandIDBits(n) }

type electMsg struct{}

func (electMsg) SizeBits(int) int { return 2 }

type flagMsg struct{ Leader bool }

func (flagMsg) SizeBits(int) int { return 2 }

type underMsg struct{ Under bool }

func (underMsg) SizeBits(int) int { return 2 }

type promoteMsg struct{}

func (promoteMsg) SizeBits(int) int { return 2 }

// NewProgram returns the Algorithm 3 node program for v.
func NewProgram(v graph.NodeID, cfg ProgramConfig) *Program {
	return &Program{cfg: cfg, id: v, active: true, electRound: 1}
}

// Leader reports final membership after termination.
func (p *Program) Leader() bool { return p.leader }

// PartILeader reports whether the node survived Part I. Valid after
// termination (leaders never resign).
func (p *Program) PartILeader() bool { return p.partILeader }

// Step implements sim.Program.
func (p *Program) Step(ctx sim.Context) bool {
	if ctx.Round() == 0 {
		p.rounds = geom.PartIRounds(ctx.N())
		p.kEff = minInt(p.cfg.K, ctx.Degree()+1)
		p.nbLeader = make(map[graph.NodeID]bool)
		p.nbUnder = make(map[graph.NodeID]bool)
	}
	switch p.phase {
	case phaseIDSend:
		// Process last round's elect messages (none before round 1).
		if p.electRound > 1 {
			p.applyElection(ctx)
		}
		if p.active {
			theta := geom.Theta(p.electRound, p.rounds)
			id := udgIDMsg{ID: 1 + ctx.Rand().Int63n(idRange(ctx.N()))}
			for _, w := range ctx.Neighbors() {
				if ctx.Dist(w) <= theta {
					ctx.Send(w, id)
				}
			}
			p.lastID = id.ID
		}
		p.phase = phaseElect
	case phaseElect:
		if p.active {
			bestID, bestNode := p.lastID, p.id
			for _, env := range ctx.Inbox() {
				m := env.Msg.(udgIDMsg)
				if higherID(m.ID, int(env.From), bestID, int(bestNode)) {
					bestID, bestNode = m.ID, env.From
				}
			}
			if bestNode == p.id {
				p.selfElected = true
			} else {
				ctx.Send(bestNode, electMsg{})
			}
		}
		if p.electRound < p.rounds {
			p.electRound++
			p.phase = phaseIDSend
		} else {
			p.phase = phaseFlagSend
		}
	case phaseFlagSend:
		if !p.partIDone {
			p.applyElection(ctx)
			p.leader = p.active
			p.partILeader = p.leader
			p.partIDone = true
		} else if p.iter > 0 {
			// Promotions from the previous iteration arrive here.
			for range ctx.Inbox() {
				p.leader = true
			}
		}
		if p.iter >= p.cfg.PartIIIters {
			p.phase = phaseUDGDone
			return true
		}
		ctx.Broadcast(flagMsg{Leader: p.leader})
		p.phase = phaseCovSend
	case phaseCovSend:
		cov := 0
		if p.leader {
			cov++
		}
		for k := range p.nbLeader {
			delete(p.nbLeader, k)
		}
		for _, env := range ctx.Inbox() {
			if env.Msg.(flagMsg).Leader {
				cov++
				p.nbLeader[env.From] = true
			}
		}
		if p.iter > 0 {
			if cov < p.kEff && cov == p.prevCov {
				p.stagnant++
			} else {
				p.stagnant = 0
			}
		}
		p.prevCov = cov
		p.cov = cov
		ctx.Broadcast(underMsg{Under: cov < p.kEff})
		p.phase = phasePromote
	case phasePromote:
		for k := range p.nbUnder {
			delete(p.nbUnder, k)
		}
		for _, env := range ctx.Inbox() {
			if env.Msg.(underMsg).Under {
				p.nbUnder[env.From] = true
			}
		}
		if p.leader {
			picked := 0
			p.forClosedCtx(ctx, func(u graph.NodeID) {
				if picked < p.cfg.K && u != p.id && !p.nbLeader[u] && p.nbUnder[u] {
					ctx.Send(u, promoteMsg{})
					picked++
				}
			})
		}
		if p.stagnant >= 2 && p.cov < p.kEff {
			deficit := p.kEff - p.cov
			p.forClosedCtx(ctx, func(u graph.NodeID) {
				if deficit <= 0 {
					return
				}
				if u == p.id {
					if !p.leader {
						p.leader = true
						deficit--
					}
					return
				}
				if !p.nbLeader[u] {
					ctx.Send(u, promoteMsg{})
					deficit--
				}
			})
		}
		p.iter++
		p.phase = phaseFlagSend
	case phaseUDGDone:
		return true
	}
	return false
}

func (p *Program) applyElection(ctx sim.Context) {
	if !p.active {
		return
	}
	elected := p.selfElected
	if !elected {
		for range ctx.Inbox() {
			elected = true
		}
	}
	p.active = elected
	p.selfElected = false
}

// forClosedCtx visits the closed neighborhood in ascending ID order.
func (p *Program) forClosedCtx(ctx sim.Context, fn func(u graph.NodeID)) {
	visitedSelf := false
	for _, w := range ctx.Neighbors() {
		if !visitedSelf && w > p.id {
			fn(p.id)
			visitedSelf = true
		}
		fn(w)
	}
	if !visitedSelf {
		fn(p.id)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
