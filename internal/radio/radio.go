// Package radio models the slotted-ALOHA neighborhood discovery that
// precedes clustering in a freshly deployed network (the initialization
// problem of the paper's reference [12]): the message-passing model of
// Section 3 assumes nodes know their neighbors, and this package supplies
// that knowledge from first principles. In every slot each undiscovered
// node transmits its ID with probability p; a transmission is received by
// a neighbor only if no other neighbor of that receiver transmits in the
// same slot (collision model, no carrier sensing).
package radio

import (
	"fmt"

	"ftclust/internal/graph"
	"ftclust/internal/rng"
)

// Options configure a discovery run.
type Options struct {
	// P is the per-slot transmission probability; 0 selects 1/(Δ+1), the
	// theory-optimal choice for ALOHA-style contention.
	P float64
	// MaxSlots bounds the simulation (default 200·(Δ+1)·ln n style bound;
	// explicit values are clamped at ≥ 1).
	MaxSlots int
	// Seed drives all transmission coins.
	Seed int64
}

// Result reports discovery progress.
type Result struct {
	// Discovered[v] is the set of neighbors v has heard at least once.
	Discovered []map[graph.NodeID]bool
	// SlotsToComplete is the first slot after which every node knows all
	// its neighbors, or -1 if MaxSlots elapsed first.
	SlotsToComplete int
	// Transmissions counts all transmissions, Collisions the receptions
	// lost to collisions.
	Transmissions int64
	Collisions    int64
}

// CompleteFraction returns the fraction of (directed) neighbor relations
// discovered.
func (r Result) CompleteFraction(g *graph.Graph) float64 {
	want, got := 0, 0
	for v := 0; v < g.NumNodes(); v++ {
		want += g.Degree(graph.NodeID(v))
		got += len(r.Discovered[v])
	}
	if want == 0 {
		return 1
	}
	return float64(got) / float64(want)
}

// Discover runs slotted-ALOHA neighbor discovery on g until every node has
// heard every neighbor or MaxSlots elapses. Nodes keep transmitting until
// the global completion slot (they cannot know when their neighbors are
// done), which matches the conservative protocol of [12].
func Discover(g *graph.Graph, opts Options) (Result, error) {
	n := g.NumNodes()
	delta := g.MaxDegree()
	p := opts.P
	if p == 0 {
		p = 1 / float64(delta+1)
	}
	if p < 0 || p > 1 {
		return Result{}, fmt.Errorf("radio: transmission probability %v outside [0,1]", p)
	}
	maxSlots := opts.MaxSlots
	if maxSlots <= 0 {
		maxSlots = 64 * (delta + 2) * bitsLen(n)
	}

	res := Result{
		Discovered:      make([]map[graph.NodeID]bool, n),
		SlotsToComplete: -1,
	}
	missing := 0
	for v := 0; v < n; v++ {
		res.Discovered[v] = make(map[graph.NodeID]bool, g.Degree(graph.NodeID(v)))
		missing += g.Degree(graph.NodeID(v))
	}
	if missing == 0 {
		res.SlotsToComplete = 0
		return res, nil
	}

	rnds := make([]interface{ Float64() float64 }, n)
	for v := 0; v < n; v++ {
		rnds[v] = rng.NewStream(opts.Seed, uint64(v)+1)
	}
	tx := make([]bool, n)
	for slot := 1; slot <= maxSlots; slot++ {
		for v := 0; v < n; v++ {
			tx[v] = rnds[v].Float64() < p
			if tx[v] {
				res.Transmissions++
			}
		}
		for v := 0; v < n; v++ {
			// Receiver v hears a slot iff exactly one neighbor transmits
			// (v's own transmission does not block reception here: nodes
			// are half-duplex, so a transmitting node hears nothing).
			if tx[v] {
				continue
			}
			var sender graph.NodeID = -1
			count := 0
			for _, w := range g.Neighbors(graph.NodeID(v)) {
				if tx[w] {
					count++
					sender = w
				}
			}
			if count == 1 {
				if !res.Discovered[v][sender] {
					res.Discovered[v][sender] = true
					missing--
				}
			} else if count > 1 {
				res.Collisions += int64(count)
			}
		}
		if missing == 0 {
			res.SlotsToComplete = slot
			return res, nil
		}
	}
	return res, nil
}

func bitsLen(n int) int {
	b := 1
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}
