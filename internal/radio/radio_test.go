package radio

import (
	"testing"

	"ftclust/internal/graph"
)

func TestDiscoverCompletesOnSmallGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Ring(10),
		graph.Complete(8),
		graph.Star(12),
		graph.Gnp(50, 0.15, 3),
	} {
		res, err := Discover(g, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.SlotsToComplete < 0 {
			t.Errorf("discovery did not complete (fraction %.3f)", res.CompleteFraction(g))
			continue
		}
		if f := res.CompleteFraction(g); f != 1 {
			t.Errorf("complete fraction = %v after completion", f)
		}
		// Discovered sets must be exactly the neighbor sets.
		for v := 0; v < g.NumNodes(); v++ {
			if len(res.Discovered[v]) != g.Degree(graph.NodeID(v)) {
				t.Errorf("node %d discovered %d of %d neighbors",
					v, len(res.Discovered[v]), g.Degree(graph.NodeID(v)))
			}
			for w := range res.Discovered[v] {
				if !g.HasEdge(graph.NodeID(v), w) {
					t.Errorf("node %d discovered non-neighbor %d", v, w)
				}
			}
		}
	}
}

func TestDiscoverIsolatedNodesTrivial(t *testing.T) {
	g := graph.NewBuilder(5).Build()
	res, err := Discover(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlotsToComplete != 0 {
		t.Errorf("edgeless graph should complete instantly, got %d", res.SlotsToComplete)
	}
}

func TestDiscoverValidation(t *testing.T) {
	g := graph.Ring(4)
	if _, err := Discover(g, Options{P: 1.5}); err == nil {
		t.Error("p > 1 should be rejected")
	}
}

func TestDiscoverBudgetExhaustion(t *testing.T) {
	g := graph.Complete(20)
	res, err := Discover(g, Options{Seed: 2, MaxSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlotsToComplete != -1 {
		t.Error("one slot cannot complete K20 discovery")
	}
	if f := res.CompleteFraction(g); f >= 1 {
		t.Errorf("fraction %v should be < 1", f)
	}
}

func TestCollisionsHappenAtHighP(t *testing.T) {
	g := graph.Complete(30)
	res, err := Discover(g, Options{Seed: 3, P: 0.9, MaxSlots: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions == 0 {
		t.Error("p=0.9 on K30 must collide")
	}
	if res.SlotsToComplete != -1 {
		t.Error("p=0.9 on K30 should not complete in 50 slots")
	}
}

func TestOptimalPBeatsAggressiveP(t *testing.T) {
	g := graph.Gnp(80, 0.2, 5)
	opt, err := Discover(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Discover(g, Options{Seed: 7, P: 0.8, MaxSlots: opt.SlotsToComplete * 4})
	if err != nil {
		t.Fatal(err)
	}
	if opt.SlotsToComplete < 0 {
		t.Fatal("optimal-p discovery did not complete")
	}
	if agg.SlotsToComplete >= 0 && agg.SlotsToComplete < opt.SlotsToComplete {
		t.Errorf("p=0.8 (%d slots) beat p=1/(Δ+1) (%d slots); contention model broken",
			agg.SlotsToComplete, opt.SlotsToComplete)
	}
}
