package rng

import "testing"

func TestDeriveIsDeterministicAndSpread(t *testing.T) {
	a := Derive(42, 1)
	b := Derive(42, 1)
	if a != b {
		t.Error("Derive not deterministic")
	}
	if Derive(42, 2) == a || Derive(43, 1) == a {
		t.Error("Derive collisions on adjacent inputs")
	}
}

func TestStreamsIndependent(t *testing.T) {
	// Adjacent streams must not produce identical sequences.
	s1 := NewStream(7, 1)
	s2 := NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Int63() == s2.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between adjacent streams", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs of the SplitMix64 generator seeded with 0:
	// SplitMix64(state) returns mix(state + γ), so feeding states 0, γ,
	// 2γ reproduces the published sequence.
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	const gamma = 0x9e3779b97f4a7c15
	var state uint64
	for i, w := range want {
		if got := SplitMix64(state); got != w {
			t.Errorf("output %d = %#x, want %#x", i, got, w)
		}
		state += gamma
	}
}

func TestNewSeeded(t *testing.T) {
	r1, r2 := New(5), New(5)
	for i := 0; i < 10; i++ {
		if r1.Int63() != r2.Int63() {
			t.Fatal("New not deterministic")
		}
	}
}
