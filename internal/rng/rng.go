// Package rng centralizes seeded pseudo-randomness so that every experiment
// in this repository is reproducible from a single root seed. Independent
// streams (one per node, per trial, per algorithm phase) are derived with
// SplitMix64, the standard seed-expansion function, so streams do not
// overlap even for adjacent seeds.
package rng

import "math/rand"

// SplitMix64 advances the SplitMix64 generator once from state x and returns
// the output. It is used purely for seed derivation.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive deterministically combines a root seed with a stream index,
// producing a well-mixed child seed.
func Derive(root int64, stream uint64) int64 {
	h := SplitMix64(uint64(root) ^ SplitMix64(stream))
	return int64(h)
}

// New returns a rand.Rand seeded from root.
func New(root int64) *rand.Rand {
	return rand.New(rand.NewSource(root))
}

// NewStream returns a rand.Rand for the given stream derived from root.
func NewStream(root int64, stream uint64) *rand.Rand {
	return New(Derive(root, stream))
}
