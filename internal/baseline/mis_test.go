package baseline

import (
	"testing"
	"testing/quick"

	"ftclust/internal/graph"
	"ftclust/internal/verify"
)

func isIndependent(g *graph.Graph, mask []bool) bool {
	ok := true
	g.Edges(func(u, v graph.NodeID) {
		if mask[u] && mask[v] {
			ok = false
		}
	})
	return ok
}

func isMaximal(g *graph.Graph, mask, eligible []bool) bool {
	for v := 0; v < g.NumNodes(); v++ {
		if mask[v] || (eligible != nil && !eligible[v]) {
			continue
		}
		blocked := false
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if mask[w] {
				blocked = true
				break
			}
		}
		if !blocked {
			return false
		}
	}
	return true
}

func TestLubyMISProperties(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Gnp(120, 0.08, seed)
		mis, rounds := LubyMIS(g, nil, seed)
		if !isIndependent(g, mis) {
			t.Fatalf("seed %d: not independent", seed)
		}
		if !isMaximal(g, mis, nil) {
			t.Fatalf("seed %d: not maximal", seed)
		}
		if rounds < 1 {
			t.Errorf("seed %d: rounds = %d", seed, rounds)
		}
		// An MIS is a dominating set.
		if err := verify.CheckKFold(g, mis, 1, verify.Standard); err != nil {
			t.Errorf("seed %d: MIS not dominating: %v", seed, err)
		}
	}
}

func TestLubyMISRoundsLogarithmic(t *testing.T) {
	g := graph.Gnp(2000, 0.005, 3)
	_, rounds := LubyMIS(g, nil, 5)
	// Luby terminates in O(log n) w.h.p.; 60 is a very generous cap.
	if rounds > 60 {
		t.Errorf("rounds = %d, suspiciously high", rounds)
	}
}

func TestLayeredMISKFold(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		for seed := int64(0); seed < 4; seed++ {
			g := graph.Gnp(150, 0.1, seed)
			res := LayeredMIS(g, k, seed)
			if err := verify.CheckKFold(g, res.InSet, float64(k), verify.Standard); err != nil {
				t.Errorf("k=%d seed %d: %v", k, seed, err)
			}
			// Layers are disjoint independent sets.
			for layer := 1; layer <= k; layer++ {
				mask := make([]bool, g.NumNodes())
				for v, l := range res.Layer {
					if l == layer {
						mask[v] = true
					}
				}
				if !isIndependent(g, mask) {
					t.Errorf("k=%d seed %d: layer %d not independent", k, seed, layer)
				}
			}
		}
	}
}

func TestLayeredMISExhaustsSmallGraphs(t *testing.T) {
	// K4 with k=10: layers exhaust all nodes; everyone ends up in a layer.
	g := graph.Complete(4)
	res := LayeredMIS(g, 10, 1)
	for v := 0; v < 4; v++ {
		if !res.InSet[v] {
			t.Errorf("node %d not absorbed into any layer", v)
		}
	}
	if err := verify.CheckKFold(g, res.InSet, 10, verify.Standard); err != nil {
		t.Errorf("exhausted layering: %v", err)
	}
}

func TestQuickLayeredMISAlwaysKFold(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%70) + 3
		k := int(kRaw%4) + 1
		g := graph.Gnp(n, 0.2, seed)
		res := LayeredMIS(g, k, seed)
		return verify.CheckKFold(g, res.InSet, float64(k), verify.Standard) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
