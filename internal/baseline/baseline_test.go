package baseline

import (
	"testing"
	"testing/quick"

	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/verify"
)

func TestGreedyKMDSFeasible(t *testing.T) {
	for _, k := range []float64{1, 2, 4} {
		for seed := int64(0); seed < 5; seed++ {
			g := graph.Gnp(80, 0.12, seed)
			mask := GreedyKMDS(g, k)
			if err := verify.CheckKFold(g, mask, k, verify.ClosedPP); err != nil {
				t.Errorf("k=%v seed %d: %v", k, seed, err)
			}
		}
	}
}

func TestGreedyStarOptimal(t *testing.T) {
	g := graph.Star(20)
	mask := GreedyKMDS(g, 1)
	if n := verify.SetSize(mask); n != 1 {
		t.Errorf("greedy on star size = %d, want 1", n)
	}
}

func TestJRSFeasibleAndCompetitive(t *testing.T) {
	for _, k := range []float64{1, 3} {
		for seed := int64(0); seed < 5; seed++ {
			g := graph.Gnp(100, 0.1, seed)
			res := JRS(g, k, seed)
			if err := verify.CheckKFold(g, res.InSet, k, verify.ClosedPP); err != nil {
				t.Errorf("k=%v seed %d: %v", k, seed, err)
			}
			if res.Phases < 1 {
				t.Errorf("k=%v seed %d: no phases", k, seed)
			}
			greedy := verify.SetSize(GreedyKMDS(g, k))
			if got := verify.SetSize(res.InSet); got > 20*greedy {
				t.Errorf("k=%v seed %d: JRS size %d vs greedy %d (way off)", k, seed, got, greedy)
			}
		}
	}
}

func TestRandomRepairFeasible(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.5, 1} {
		g := graph.Gnp(80, 0.15, 2)
		mask := RandomRepair(g, 2, p, 7)
		if err := verify.CheckKFold(g, mask, 2, verify.ClosedPP); err != nil {
			t.Errorf("p=%v: %v", p, err)
		}
	}
}

func TestCellGridFeasibleStandard(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		pts := geom.UniformPoints(500, 5, 3)
		g, _ := geom.UnitUDG(pts)
		mask, err := CellGrid(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.CheckKFold(g, mask, float64(k), verify.Standard); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
	if _, err := CellGrid(nil, 0); err == nil {
		t.Error("k=0 should error")
	}
}

func TestAllNodes(t *testing.T) {
	mask := AllNodes(5)
	if verify.SetSize(mask) != 5 {
		t.Error("AllNodes should select everything")
	}
	g := graph.Ring(5)
	if err := verify.CheckKFold(g, mask, 3, verify.ClosedPP); err != nil {
		t.Errorf("S=V must always be feasible: %v", err)
	}
}

func TestQuickBaselinesAlwaysFeasible(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%60) + 3
		k := float64(kRaw%3) + 1
		g := graph.Gnp(n, 0.3, seed)
		if verify.CheckKFold(g, GreedyKMDS(g, k), k, verify.ClosedPP) != nil {
			return false
		}
		if verify.CheckKFold(g, JRS(g, k, seed).InSet, k, verify.ClosedPP) != nil {
			return false
		}
		return verify.CheckKFold(g, RandomRepair(g, k, 0.2, seed), k, verify.ClosedPP) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
