// Package baseline implements the comparison algorithms the paper's
// related-work section positions against:
//
//   - the centralized greedy multicover algorithm [20, 21] — the best
//     polynomial-time approximation (ln Δ) and the quality yardstick;
//   - a JRS-style distributed randomized greedy (Jia, Rajaraman, Suel [9]),
//     the only prior distributed k-MDS algorithm in general graphs;
//   - random sampling followed by Algorithm-2-style repair, the naive
//     O(1)-round randomized baseline;
//   - a cell-grid clustering baseline for unit disk graphs (pick k nodes
//     per occupied cell of side 1/√2), the folklore geometric solution.
package baseline

import (
	"fmt"
	"math"

	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/lp"
	"ftclust/internal/rng"
)

// GreedyKMDS runs the centralized greedy multicover algorithm under the
// (PP) convention with demands min(k, δ(v)+1). It returns the chosen mask.
func GreedyKMDS(g *graph.Graph, k float64) []bool {
	c := lp.FromGraph(g, lp.UniformK(g.NumNodes(), k))
	mask, _ := c.Greedy()
	return mask
}

// JRSResult is the outcome of the JRS-style distributed greedy.
type JRSResult struct {
	InSet []bool
	// Phases is the number of candidate-election phases executed; each
	// phase costs a constant number of communication rounds.
	Phases int
	// Forced counts nodes recruited by the final deterministic cleanup
	// (only reached if randomization stalls past the phase cap).
	Forced int
}

// JRS runs a JRS-style distributed randomized greedy for k-fold domination:
// in each phase, nodes whose span (number of still-uncovered closed
// neighbors) is within a factor 2 of the maximum span in their 2-hop
// neighborhood become candidates and join with probability 1/c̄, where c̄
// is the largest candidate count over the uncovered constraints they
// touch. After maxPhases (default 8·log²(n+2)) any remaining deficit is
// closed deterministically, mirroring the w.h.p. termination of [9].
func JRS(g *graph.Graph, k float64, seed int64) JRSResult {
	n := g.NumNodes()
	r := rng.New(seed)
	inSet := make([]bool, n)
	demand := make([]float64, n)
	for v := 0; v < n; v++ {
		demand[v] = math.Min(k, float64(g.Degree(graph.NodeID(v))+1))
	}
	cov := make([]float64, n)
	maxPhases := int(8*math.Pow(math.Log2(float64(n+2)), 2)) + 4

	res := JRSResult{InSet: inSet}
	for phase := 0; phase < maxPhases; phase++ {
		res.Phases = phase + 1
		// Residual demands and spans.
		span := make([]int, n)
		anyUncovered := false
		for v := 0; v < n; v++ {
			if cov[v] < demand[v] {
				anyUncovered = true
			}
		}
		if !anyUncovered {
			return res
		}
		for v := 0; v < n; v++ {
			if inSet[v] {
				continue
			}
			s := 0
			forClosed(g, v, func(u int) {
				if cov[u] < demand[u] {
					s++
				}
			})
			span[v] = s
		}
		// 2-hop maximum span.
		max1 := maxOverClosed(g, span)
		max2 := maxOverClosed(g, max1)
		candidate := make([]bool, n)
		for v := 0; v < n; v++ {
			if !inSet[v] && span[v] > 0 && 2*span[v] >= max2[v] {
				candidate[v] = true
			}
		}
		// Candidate load per uncovered constraint, then join probability.
		load := make([]int, n)
		for v := 0; v < n; v++ {
			if cov[v] >= demand[v] {
				continue
			}
			forClosed(g, v, func(u int) {
				if candidate[u] {
					load[v]++
				}
			})
		}
		for v := 0; v < n; v++ {
			if !candidate[v] {
				continue
			}
			worst := 1
			forClosed(g, v, func(u int) {
				if cov[u] < demand[u] && load[u] > worst {
					worst = load[u]
				}
			})
			if r.Float64() < 1/float64(worst) {
				inSet[v] = true
			}
		}
		// Refresh coverage.
		newCov := coverageOf(g, inSet)
		copy(cov, newCov)
	}
	// Deterministic cleanup: each uncovered node recruits lowest-ID
	// non-members to close its deficit.
	for v := 0; v < n; v++ {
		if cov[v] >= demand[v] {
			continue
		}
		deficit := int(math.Ceil(demand[v] - cov[v] - 1e-12))
		forClosed(g, v, func(u int) {
			if deficit > 0 && !inSet[u] {
				inSet[u] = true
				res.Forced++
				deficit--
			}
		})
		copy(cov, coverageOf(g, inSet))
	}
	return res
}

// RandomRepair samples every node independently with probability p and
// then repairs deficits exactly like Algorithm 2's REQ step. It is the
// naive O(1)-round baseline: correct, but with no size guarantee.
func RandomRepair(g *graph.Graph, k float64, p float64, seed int64) []bool {
	n := g.NumNodes()
	inSet := make([]bool, n)
	for v := 0; v < n; v++ {
		if rng.NewStream(seed, uint64(v)+1).Float64() < p {
			inSet[v] = true
		}
	}
	recruit := make([]bool, n)
	for v := 0; v < n; v++ {
		kv := math.Min(k, float64(g.Degree(graph.NodeID(v))+1))
		covV := 0.0
		forClosed(g, v, func(u int) {
			if inSet[u] {
				covV++
			}
		})
		deficit := int(math.Ceil(kv - covV - 1e-12))
		forClosed(g, v, func(u int) {
			if deficit > 0 && !inSet[u] && !recruit[u] {
				recruit[u] = true
				deficit--
			}
		})
	}
	for v := 0; v < n; v++ {
		if recruit[v] {
			inSet[v] = true
		}
	}
	return inSet
}

// CellGrid is the folklore UDG baseline: partition the plane into square
// cells of side 1/√2 (any two nodes in a cell are adjacent) and select the
// min(k, cell population) lowest-ID nodes per occupied cell. The result is
// a k-fold dominating set under the standard (Section 1) convention.
func CellGrid(pts []geom.Point, k int) ([]bool, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k must be ≥ 1, got %d", k)
	}
	side := 1 / math.Sqrt2
	cells := make(map[[2]int][]int)
	for i, p := range pts {
		key := [2]int{int(math.Floor(p.X / side)), int(math.Floor(p.Y / side))}
		cells[key] = append(cells[key], i)
	}
	inSet := make([]bool, len(pts))
	for _, members := range cells {
		// Point indices were appended in ascending order already.
		take := k
		if take > len(members) {
			take = len(members)
		}
		for i := 0; i < take; i++ {
			inSet[members[i]] = true
		}
	}
	return inSet, nil
}

// AllNodes returns the trivial solution S = V (the upper anchor for
// fault-tolerance comparisons).
func AllNodes(n int) []bool {
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	return mask
}

func coverageOf(g *graph.Graph, inSet []bool) []float64 {
	n := g.NumNodes()
	cov := make([]float64, n)
	for v := 0; v < n; v++ {
		forClosed(g, v, func(u int) {
			if inSet[u] {
				cov[v]++
			}
		})
	}
	return cov
}

// maxOverClosed returns, per node, the max of vals over its closed
// neighborhood.
func maxOverClosed(g *graph.Graph, vals []int) []int {
	n := g.NumNodes()
	out := make([]int, n)
	for v := 0; v < n; v++ {
		m := vals[v]
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if vals[w] > m {
				m = vals[w]
			}
		}
		out[v] = m
	}
	return out
}

// forClosed visits the closed neighborhood of v in ascending ID order.
func forClosed(g *graph.Graph, v int, fn func(u int)) {
	visitedSelf := false
	for _, w := range g.Neighbors(graph.NodeID(v)) {
		if !visitedSelf && int(w) > v {
			fn(v)
			visitedSelf = true
		}
		fn(int(w))
	}
	if !visitedSelf {
		fn(v)
	}
}
