package baseline

import (
	"math"

	"ftclust/internal/graph"
	"ftclust/internal/rng"
)

// Luby's randomized maximal-independent-set algorithm and the layered-MIS
// construction of k-fold dominating sets: k disjoint MIS layers, each
// maximal in the graph induced on the nodes not yet in any layer. Every
// node outside all layers is (by maximality) adjacent to a member of each
// of the k layers, so the union is a k-fold dominating set under the
// paper's Section 1 convention. Layered MIS is the natural O(k·log n)-round
// distributed baseline against which the paper's O(t²)- and
// O(log log n)-round algorithms are positioned.

// LubyMIS computes a maximal independent set of g restricted to the nodes
// with eligible[v] == true (pass nil for all nodes), using Luby's
// round-based random-priority algorithm. It returns the MIS mask and the
// number of rounds used.
func LubyMIS(g *graph.Graph, eligible []bool, seed int64) ([]bool, int) {
	n := g.NumNodes()
	active := make([]bool, n)
	for v := 0; v < n; v++ {
		active[v] = eligible == nil || eligible[v]
	}
	inMIS := make([]bool, n)
	rnd := rng.New(seed)
	rounds := 0
	for {
		anyActive := false
		for v := 0; v < n; v++ {
			if active[v] {
				anyActive = true
				break
			}
		}
		if !anyActive {
			return inMIS, rounds
		}
		rounds++
		// Each active node draws a priority; local minima join the MIS.
		prio := make([]float64, n)
		for v := 0; v < n; v++ {
			if active[v] {
				prio[v] = rnd.Float64()
			} else {
				prio[v] = math.Inf(1)
			}
		}
		joined := make([]bool, n)
		for v := 0; v < n; v++ {
			if !active[v] {
				continue
			}
			best := true
			for _, w := range g.Neighbors(graph.NodeID(v)) {
				if active[w] && (prio[w] < prio[v] || (prio[w] == prio[v] && w < graph.NodeID(v))) {
					best = false
					break
				}
			}
			if best {
				joined[v] = true
			}
		}
		for v := 0; v < n; v++ {
			if joined[v] {
				inMIS[v] = true
				active[v] = false
			}
		}
		for v := 0; v < n; v++ {
			if !active[v] {
				continue
			}
			for _, w := range g.Neighbors(graph.NodeID(v)) {
				if joined[w] {
					active[v] = false
					break
				}
			}
		}
	}
}

// LayeredMISResult is the outcome of the layered-MIS construction.
type LayeredMISResult struct {
	// InSet is the union of the k layers.
	InSet []bool
	// Layer[v] is the 1-based layer of node v, 0 if in none.
	Layer []int
	// Rounds is the total Luby rounds over all layers (each Luby round is
	// a constant number of communication rounds).
	Rounds int
}

// LayeredMIS builds a k-fold dominating set (standard convention) as k
// disjoint MIS layers.
func LayeredMIS(g *graph.Graph, k int, seed int64) LayeredMISResult {
	n := g.NumNodes()
	res := LayeredMISResult{
		InSet: make([]bool, n),
		Layer: make([]int, n),
	}
	eligible := make([]bool, n)
	for v := range eligible {
		eligible[v] = true
	}
	for layer := 1; layer <= k; layer++ {
		mis, rounds := LubyMIS(g, eligible, rng.Derive(seed, uint64(layer)))
		res.Rounds += rounds
		empty := true
		for v := 0; v < n; v++ {
			if mis[v] {
				res.InSet[v] = true
				res.Layer[v] = layer
				eligible[v] = false
				empty = false
			}
		}
		if empty {
			break // no eligible nodes remain anywhere
		}
	}
	return res
}
