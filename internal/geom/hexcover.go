package geom

import "math"

// This file implements the imaginary disk coverings of Section 5.2
// (Figure 1): the plane is covered with disks C_i of radius θ_i/2 whose
// centers form a hexagonal lattice, and D_i is the concentric disk of
// radius 3·θ_i/2. Lemma 5.3 bounds the number α(i) of lattice disks needed
// to cover a disk C of radius 1/2 by η/(4θ_i²) with η = 16π/(3√3).

// Eta is the constant η = 16π/(3√3) of Lemma 5.3.
var Eta = 16 * math.Pi / (3 * math.Sqrt(3))

// HexLattice enumerates the centers of radius-r covering disks arranged in
// the optimal hexagonal covering lattice (each disk circumscribes a regular
// hexagon of circumradius r), translated so one center lies at origin,
// keeping exactly the centers within distance maxDist of origin.
func HexLattice(origin Point, r, maxDist float64) []Point {
	// Pointy-top hexagon tiling: column step √3·r, row step 1.5·r,
	// odd rows offset by √3·r/2.
	colStep := math.Sqrt(3) * r
	rowStep := 1.5 * r
	var out []Point
	rowMax := int(math.Ceil(maxDist/rowStep)) + 1
	colMax := int(math.Ceil(maxDist/colStep)) + 1
	for row := -rowMax; row <= rowMax; row++ {
		offset := 0.0
		if row%2 != 0 {
			offset = colStep / 2
		}
		for col := -colMax; col <= colMax; col++ {
			p := Point{
				origin.X + float64(col)*colStep + offset,
				origin.Y + float64(row)*rowStep,
			}
			if p.Dist(origin) <= maxDist {
				out = append(out, p)
			}
		}
	}
	return out
}

// CoverDisk returns hexagonal-lattice centers of radius-r disks sufficient
// to cover the disk of radius R around center, using the counting of
// Lemma 5.3's proof: all lattice disks whose center lies within R + r of
// the target center (any disk that could contribute coverage).
func CoverDisk(center Point, R, r float64) []Point {
	return HexLattice(center, r, R+r)
}

// Alpha returns the measured α(i): the number of radius-(θ/2) lattice disks
// within the Lemma 5.3 counting region for a target disk of radius 1/2.
func Alpha(theta float64) int {
	return len(CoverDisk(Point{}, 0.5, theta/2))
}

// AlphaBound returns Lemma 5.3's stated bound η/(4θ²). Note that the
// paper's own derivation only yields this constant when (1/2+θ)² ≤ 1/2,
// i.e. θ ≲ 0.207; it is the correct asymptotic form as θ → 0. For the
// bound that follows from the derivation at every θ, see AlphaBoundExact.
func AlphaBound(theta float64) float64 {
	return Eta / (4 * theta * theta)
}

// AlphaBoundExact returns the bound Lemma 5.3's proof actually establishes
// before dropping the (1/2+θ)² factor: α ≤ (1/2+θ)²·8π/(3√3·θ²).
func AlphaBoundExact(theta float64) float64 {
	h := 0.5 + theta
	return h * h * 8 * math.Pi / (3 * math.Sqrt(3) * theta * theta)
}

// Covers reports whether the disks of radius r at the given centers cover
// every probe point of a dense polar sampling of the disk (center, R).
// samples controls the sampling density per ring.
func Covers(centers []Point, r float64, center Point, R float64, samples int) bool {
	probe := func(p Point) bool {
		for _, c := range centers {
			if c.Dist2(p) <= r*r*(1+1e-12) {
				return true
			}
		}
		return false
	}
	if !probe(center) {
		return false
	}
	rings := samples
	for ri := 1; ri <= rings; ri++ {
		rad := R * float64(ri) / float64(rings)
		steps := 6 * ri
		for s := 0; s < steps; s++ {
			ang := 2 * math.Pi * float64(s) / float64(steps)
			if !probe(Point{center.X + rad*math.Cos(ang), center.Y + rad*math.Sin(ang)}) {
				return false
			}
		}
	}
	return true
}

// IntersectingDisks counts lattice disks C_i (radius r, hexagonal lattice
// anchored at origin with one center at origin) that are fully or partially
// covered by the concentric disk D of radius dR — the "19 smaller disks"
// statement of Figure 1 when dR = 3r·... (dR = 3·θ/2 with θ = 2r).
func IntersectingDisks(r, dR float64) int {
	// A lattice disk intersects D iff its center is within dR + r.
	return len(HexLattice(Point{}, r, dR+r-1e-12))
}

// Theta returns θ_i, the transmission radius of round i (1-based) when the
// final round R has θ_R = 1/2 and radii double per round: θ_i = 2^(i-R-1).
func Theta(i, totalRounds int) float64 {
	return 0.5 * math.Pow(2, float64(i-totalRounds))
}

// PartIRounds returns R = max(1, ⌈log_ξ log₂ n⌉) with ξ = 3/2, the number
// of rounds of Part I of Algorithm 3.
func PartIRounds(n int) int {
	if n < 4 {
		return 1
	}
	loglog := math.Log(math.Log2(float64(n))) / math.Log(1.5)
	r := int(math.Ceil(loglog - 1e-9))
	if r < 1 {
		r = 1
	}
	return r
}
