package geom

import (
	"bytes"
	"strings"
	"testing"
)

func TestPointsRoundTrip(t *testing.T) {
	cases := [][]Point{
		nil,
		{{X: 0, Y: 0}},
		UniformPoints(200, 7, 3),
		{{X: -1.5, Y: 2.25}, {X: 1e-9, Y: 1e9}},
	}
	for i, pts := range cases {
		var buf bytes.Buffer
		if err := WritePoints(&buf, pts); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		back, err := ReadPoints(&buf)
		if err != nil {
			t.Fatalf("case %d: read: %v", i, err)
		}
		if len(back) != len(pts) {
			t.Fatalf("case %d: length %d vs %d", i, len(back), len(pts))
		}
		for j := range pts {
			if back[j] != pts[j] {
				t.Errorf("case %d point %d: %v vs %v", i, j, back[j], pts[j])
			}
		}
	}
}

func TestReadPointsRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no header", "p 1 2\n"},
		{"double header", "points 0\npoints 0\n"},
		{"bad count", "points -1\n"},
		{"count mismatch", "points 2\np 1 2\n"},
		{"bad x", "points 1\np nope 2\n"},
		{"bad y", "points 1\np 1 nope\n"},
		{"short record", "points 1\np 1\n"},
		{"unknown record", "points 0\nq 1 2\n"},
		{"short header", "points\n"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadPoints(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ReadPoints(%q) should fail", tt.in)
			}
		})
	}
}

func TestReadPointsSkipsComments(t *testing.T) {
	in := "# deployment\npoints 1\n\n# node zero\np 0.5 0.25\n"
	pts, err := ReadPoints(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0] != (Point{X: 0.5, Y: 0.25}) {
		t.Errorf("pts = %v", pts)
	}
}
