package geom

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Deployment text format, mirroring the graph codec:
//
//	# comments
//	points <n>
//	p <x> <y>      (n lines)

// WritePoints encodes a deployment.
func WritePoints(w io.Writer, pts []Point) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "points %d\n", len(pts)); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "p %.17g %.17g\n", p.X, p.Y); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPoints decodes a deployment.
func ReadPoints(r io.Reader) ([]Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pts []Point
	want := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "points":
			if want >= 0 {
				return nil, fmt.Errorf("geom: line %d: duplicate header", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("geom: line %d: header needs 'points n'", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("geom: line %d: bad count %q", line, fields[1])
			}
			want = n
		case "p":
			if want < 0 {
				return nil, fmt.Errorf("geom: line %d: point before header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("geom: line %d: point needs 'p x y'", line)
			}
			x, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("geom: line %d: bad x %q", line, fields[1])
			}
			y, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("geom: line %d: bad y %q", line, fields[2])
			}
			pts = append(pts, Point{X: x, Y: y})
		default:
			return nil, fmt.Errorf("geom: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if want < 0 {
		return nil, fmt.Errorf("geom: missing header")
	}
	if len(pts) != want {
		return nil, fmt.Errorf("geom: header says %d points, found %d", want, len(pts))
	}
	return pts, nil
}
