package geom

import (
	"math"
	"testing"
	"testing/quick"

	"ftclust/internal/graph"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Point{0, 0}, Point{3, 4}
	if d := p.Dist(q); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := p.Dist2(q); d != 25 {
		t.Errorf("Dist2 = %v, want 25", d)
	}
	if got := p.Add(q); got != q {
		t.Errorf("Add = %v", got)
	}
	if got := q.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestUniformPointsInBounds(t *testing.T) {
	pts := UniformPoints(500, 7, 1)
	if len(pts) != 500 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X > 7 || p.Y < 0 || p.Y > 7 {
			t.Fatalf("point %v out of bounds", p)
		}
	}
	again := UniformPoints(500, 7, 1)
	if pts[42] != again[42] {
		t.Error("same seed should reproduce points")
	}
}

func TestClusteredAndGridPoints(t *testing.T) {
	pts := ClusteredPoints(300, 10, 4, 0.5, 2)
	if len(pts) != 300 {
		t.Fatalf("clustered len = %d", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X > 10 || p.Y < 0 || p.Y > 10 {
			t.Fatalf("clustered point %v out of square", p)
		}
	}
	gp := GridPoints(100, 10, 0.2, 3)
	if len(gp) != 100 {
		t.Fatalf("grid len = %d", len(gp))
	}
}

func TestIndexWithinMatchesBruteForce(t *testing.T) {
	pts := UniformPoints(400, 5, 9)
	idx := NewIndex(pts, 1)
	for _, r := range []float64{0.1, 0.5, 1.0} {
		for qi := 0; qi < 20; qi++ {
			p := pts[qi*17%len(pts)]
			got := map[int]bool{}
			idx.Within(p, r, -1, func(j int) { got[j] = true })
			for j, q := range pts {
				want := p.Dist(q) <= r
				if want != got[j] {
					t.Fatalf("r=%v query %v point %d: got %v, want %v", r, p, j, got[j], want)
				}
			}
		}
	}
}

func TestIndexExclude(t *testing.T) {
	pts := []Point{{0, 0}, {0.5, 0}, {2, 2}}
	idx := NewIndex(pts, 1)
	var hits []int
	idx.Within(pts[0], 1, 0, func(j int) { hits = append(hits, j) })
	if len(hits) != 1 || hits[0] != 1 {
		t.Errorf("hits = %v, want [1]", hits)
	}
}

func TestEmptyIndex(t *testing.T) {
	idx := NewIndex(nil, 1)
	called := false
	idx.Within(Point{}, 10, -1, func(int) { called = true })
	if called {
		t.Error("empty index must yield no hits")
	}
}

func TestUDGMatchesDefinition(t *testing.T) {
	pts := UniformPoints(150, 4, 5)
	g, _ := UnitUDG(pts)
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			want := pts[i].Dist(pts[j]) <= 1
			if got := g.HasEdge(graph.NodeID(i), graph.NodeID(j)); got != want {
				t.Fatalf("edge (%d,%d): got %v, want %v (dist %v)",
					i, j, got, want, pts[i].Dist(pts[j]))
			}
		}
	}
}

func TestQuickUDGSymmetricAndSimple(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		pts := UniformPoints(n, 3, seed)
		g, _ := UnitUDG(pts)
		if g.NumNodes() != n {
			return false
		}
		for v := 0; v < n; v++ {
			if g.HasEdge(graph.NodeID(v), graph.NodeID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestHexLatticeCoversPlanePatch(t *testing.T) {
	// Disks of radius r on the hexagonal covering lattice must cover any
	// disk of radius R when all centers within R + r are present.
	for _, r := range []float64{0.05, 0.13, 0.25} {
		centers := CoverDisk(Point{0.3, -0.2}, 0.5, r)
		if !Covers(centers, r, Point{0.3, -0.2}, 0.5, 40) {
			t.Errorf("r=%v: hexagonal covering fails to cover target disk", r)
		}
	}
}

func TestAlphaWithinLemma53Bound(t *testing.T) {
	// Lemma 5.3: α(i) < η/(4θ_i²) for θ_i ≤ ... the bound's derivation uses
	// disks inside C' of radius 1/2 + θ/2; check across the radii Part I uses.
	n := 1 << 16
	R := PartIRounds(n)
	for i := 1; i <= R; i++ {
		theta := Theta(i, R)
		got := Alpha(theta)
		if float64(got) >= AlphaBoundExact(theta) {
			t.Errorf("round %d: α = %d not < exact bound %.1f (θ=%v)",
				i, got, AlphaBoundExact(theta), theta)
		}
		// The paper's simplified constant holds in its validity regime.
		if theta <= 0.2 && float64(got) >= AlphaBound(theta) {
			t.Errorf("round %d: α = %d not < paper bound %.1f (θ=%v)",
				i, got, AlphaBound(theta), theta)
		}
		if got == 0 {
			t.Errorf("round %d: α = 0", i)
		}
	}
}

func TestFigure1NineteenDisks(t *testing.T) {
	// Figure 1: D_i of radius 3θ/2 = 3r fully or partially covers 19 disks
	// C_i of radius r = θ/2.
	r := 0.1
	if got := IntersectingDisks(r, 3*r); got != 19 {
		t.Errorf("IntersectingDisks = %d, want 19", got)
	}
}

func TestThetaSchedule(t *testing.T) {
	R := 6
	if th := Theta(R, R); th != 0.5 {
		t.Errorf("θ_R = %v, want 0.5", th)
	}
	for i := 1; i < R; i++ {
		if got, want := Theta(i+1, R), 2*Theta(i, R); math.Abs(got-want) > 1e-15 {
			t.Errorf("θ_%d = %v, want double of θ_%d = %v", i+1, got, i, want)
		}
	}
}

func TestPartIRounds(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{2, 1},
		{4, 2},       // log₂ 4 = 2, log₁.₅ 2 ≈ 1.71 → 2
		{16, 4},      // log2=4, log1.5(4)=3.419 → 4
		{256, 6},     // log2=8, log1.5(8)=5.13 → 6
		{1 << 16, 7}, // log2=16, log1.5(16)=6.84 → 7
	}
	for _, tt := range tests {
		if got := PartIRounds(tt.n); got != tt.want {
			t.Errorf("PartIRounds(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
	// Monotone non-decreasing in n.
	prev := 0
	for n := 2; n < 100000; n *= 2 {
		r := PartIRounds(n)
		if r < prev {
			t.Errorf("PartIRounds not monotone at n=%d: %d < %d", n, r, prev)
		}
		prev = r
	}
}

func TestCoversRejectsGaps(t *testing.T) {
	// A single small disk cannot cover the unit-radius target.
	if Covers([]Point{{0, 0}}, 0.1, Point{0, 0}, 0.5, 10) {
		t.Error("single tiny disk should not cover")
	}
}
