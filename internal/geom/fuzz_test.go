package geom

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadPoints ensures the deployment codec never panics and round-trips
// whatever it accepts (up to non-finite coordinates, which WritePoints
// renders but comparisons skip).
func FuzzReadPoints(f *testing.F) {
	f.Add("points 2\np 0 0\np 1.5 -2\n")
	f.Add("points 0\n")
	f.Add("# c\npoints 1\np 1e300 -1e-300\n")
	f.Add("p 0 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		pts, err := ReadPoints(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, p := range pts {
			if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
				return // %g of non-finite values does not round-trip; fine
			}
		}
		var buf bytes.Buffer
		if err := WritePoints(&buf, pts); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := ReadPoints(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if len(back) != len(pts) {
			t.Fatalf("length changed: %d vs %d", len(back), len(pts))
		}
	})
}
