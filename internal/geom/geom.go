// Package geom supplies the Euclidean-plane substrate for the unit disk
// graph (UDG) model of Section 5: points and distances, UDG construction
// from node positions, a uniform cell-grid spatial index for range queries
// (the N_v(τ) neighborhoods of the paper), and the hexagonal-lattice disk
// coverings used by Lemma 5.3 and Figure 1.
package geom

import (
	"math"

	"ftclust/internal/graph"
	"ftclust/internal/rng"
)

// Point is a location in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance (no sqrt), for comparisons.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns s·p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y} }

// UniformPoints places n points uniformly at random in the side × side
// square.
func UniformPoints(n int, side float64, seed int64) []Point {
	r := rng.New(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64() * side, r.Float64() * side}
	}
	return pts
}

// ClusteredPoints places n points in c Gaussian clusters with standard
// deviation sigma, cluster centers uniform in the side × side square.
// Points are clamped to the square. This models realistic non-uniform
// sensor deployments (dense hot spots).
func ClusteredPoints(n int, side float64, c int, sigma float64, seed int64) []Point {
	if c < 1 {
		c = 1
	}
	r := rng.New(seed)
	centers := make([]Point, c)
	for i := range centers {
		centers[i] = Point{r.Float64() * side, r.Float64() * side}
	}
	clamp := func(x float64) float64 {
		return math.Max(0, math.Min(side, x))
	}
	pts := make([]Point, n)
	for i := range pts {
		ctr := centers[r.Intn(c)]
		pts[i] = Point{
			clamp(ctr.X + r.NormFloat64()*sigma),
			clamp(ctr.Y + r.NormFloat64()*sigma),
		}
	}
	return pts
}

// GridPoints places points on a jittered grid covering the side × side
// square, producing near-uniform deployments with bounded density.
func GridPoints(n int, side float64, jitter float64, seed int64) []Point {
	r := rng.New(seed)
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	if cols == 0 {
		return nil
	}
	step := side / float64(cols)
	pts := make([]Point, 0, n)
	for i := 0; len(pts) < n; i++ {
		row, col := i/cols, i%cols
		if row >= cols {
			row = cols - 1 // overflow rows pile into the last band
		}
		pts = append(pts, Point{
			(float64(col)+0.5)*step + (r.Float64()-0.5)*jitter*step,
			(float64(row)+0.5)*step + (r.Float64()-0.5)*jitter*step,
		})
	}
	return pts
}

// Index is a uniform cell-grid spatial index over a fixed point set,
// answering range queries in output-sensitive time. Cell side equals the
// query radius bound passed at construction, so a radius-r query scans at
// most 9 cells when r ≤ cellSize.
type Index struct {
	pts      []Point
	cellSize float64
	minX     float64
	minY     float64
	cols     int
	rows     int
	cells    [][]int32
}

// NewIndex builds an index over pts with the given cell size (usually the
// maximum query radius, 1.0 for UDGs). pts must not be mutated afterwards.
func NewIndex(pts []Point, cellSize float64) *Index {
	idx := &Index{pts: pts, cellSize: cellSize}
	if len(pts) == 0 {
		idx.cols, idx.rows = 1, 1
		idx.cells = make([][]int32, 1)
		return idx
	}
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := pts[0].X, pts[0].Y
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	idx.minX, idx.minY = minX, minY
	idx.cols = int((maxX-minX)/cellSize) + 1
	idx.rows = int((maxY-minY)/cellSize) + 1
	idx.cells = make([][]int32, idx.cols*idx.rows)
	for i, p := range pts {
		c := idx.cellOf(p)
		idx.cells[c] = append(idx.cells[c], int32(i))
	}
	return idx
}

func (idx *Index) cellOf(p Point) int {
	cx := int((p.X - idx.minX) / idx.cellSize)
	cy := int((p.Y - idx.minY) / idx.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= idx.cols {
		cx = idx.cols - 1
	}
	if cy >= idx.rows {
		cy = idx.rows - 1
	}
	return cy*idx.cols + cx
}

// Within calls fn for every point index j ≠ exclude with dist(pts[j], p) ≤ r.
// Pass exclude = -1 to include all points.
func (idx *Index) Within(p Point, r float64, exclude int, fn func(j int)) {
	if len(idx.pts) == 0 {
		return
	}
	r2 := r * r
	span := int(math.Ceil(r/idx.cellSize)) + 1
	cx := int((p.X - idx.minX) / idx.cellSize)
	cy := int((p.Y - idx.minY) / idx.cellSize)
	for dy := -span; dy <= span; dy++ {
		y := cy + dy
		if y < 0 || y >= idx.rows {
			continue
		}
		for dx := -span; dx <= span; dx++ {
			x := cx + dx
			if x < 0 || x >= idx.cols {
				continue
			}
			for _, j := range idx.cells[y*idx.cols+x] {
				if int(j) == exclude {
					continue
				}
				if idx.pts[j].Dist2(p) <= r2 {
					fn(int(j))
				}
			}
		}
	}
}

// UDG constructs the unit disk graph over pts with connection radius
// radius: nodes i and j are adjacent iff dist ≤ radius. It returns the graph
// and keeps the index for later N_v(τ) queries.
func UDG(pts []Point, radius float64) (*graph.Graph, *Index) {
	idx := NewIndex(pts, math.Max(radius, 1e-9))
	b := graph.NewBuilder(len(pts))
	for i, p := range pts {
		idx.Within(p, radius, i, func(j int) {
			if j > i {
				b.TryAddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		})
	}
	return b.Build(), idx
}

// UnitUDG is UDG with radius 1, the paper's model.
func UnitUDG(pts []Point) (*graph.Graph, *Index) { return UDG(pts, 1) }
