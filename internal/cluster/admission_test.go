package cluster

import (
	"testing"
	"time"
)

// fakeClock is a hand-driven clock for limiter tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestRateLimiterBurstThenShed(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter(1, 3, 16, clock.now)

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("request %d within burst was shed", i)
		}
	}
	ok, retry := l.Allow("alice")
	if ok {
		t.Fatal("request past burst was admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after %v, want (0, 1s] at rate 1/s", retry)
	}

	// Another client has its own bucket.
	if ok, _ := l.Allow("bob"); !ok {
		t.Fatal("independent client shed by alice's exhaustion")
	}
}

func TestRateLimiterRefill(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter(2, 2, 16, clock.now) // 2 tokens/s, burst 2

	l.Allow("c")
	l.Allow("c")
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("bucket should be empty")
	}
	clock.advance(500 * time.Millisecond) // one token back
	if ok, _ := l.Allow("c"); !ok {
		t.Fatal("token not refilled after 500ms at 2/s")
	}
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("second token should not have accrued yet")
	}
	clock.advance(10 * time.Second) // refill caps at burst
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("c"); !ok {
			t.Fatalf("request %d within refilled burst was shed", i)
		}
	}
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("refill must cap at burst, not accumulate 20 tokens")
	}
}

func TestRateLimiterMinimumBurst(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter(0.1, 0, 16, clock.now)
	if ok, _ := l.Allow("x"); !ok {
		t.Fatal("burst floor of 1 must admit a fresh client's first request")
	}
}

func TestRateLimiterBoundedClients(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter(1, 1, 2, clock.now)

	l.Allow("a")
	clock.advance(time.Second)
	l.Allow("b")
	if l.Len() != 2 {
		t.Fatalf("tracked clients = %d, want 2", l.Len())
	}
	clock.advance(time.Second)
	l.Allow("c") // at capacity: evicts "a", the idlest
	if l.Len() != 2 {
		t.Fatalf("tracked clients = %d after eviction, want 2", l.Len())
	}
	// "a" was evicted, so it re-enters with a fresh (full) bucket; "c"
	// just spent its only token and must be shed.
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("c's bucket should be empty — eviction must not have forgiven c")
	}
}
