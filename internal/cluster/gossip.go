package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
)

// GossipPath is the cluster-internal endpoint peers exchange views on;
// the serving layer mounts Node.HandleGossip there.
const GossipPath = "/cluster/v1/gossip"

// PeersPath serves a read-only JSON view of the membership table, for
// debugging and the CI convergence probe.
const PeersPath = "/cluster/v1/peers"

// gossipMsg is one push-pull message: the sender's own entry plus its
// bounded view. The response to a push is the receiver's gossipMsg, so
// one round trip merges both directions.
type gossipMsg struct {
	From  PeerInfo   `json:"from"`
	Peers []PeerInfo `json:"peers"`
}

// maxGossipBody caps inbound gossip bodies; a view of ViewSize entries
// is a few KiB, so 1 MiB is generous headroom, not a limit anyone hits.
const maxGossipBody = 1 << 20

// HandleGossip serves POST /cluster/v1/gossip: merge the sender's view,
// answer with ours. Every processed message counts as one heartbeat
// received.
func (n *Node) HandleGossip(w http.ResponseWriter, r *http.Request) {
	var msg gossipMsg
	r.Body = http.MaxBytesReader(w, r.Body, maxGossipBody)
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		http.Error(w, "malformed gossip message: "+err.Error(), http.StatusBadRequest)
		return
	}
	now := n.cfg.Now()
	// Direct contact beats digest freshness rules: the sender provably
	// lives at this instant even if its heartbeat number already reached
	// us transitively through a faster path.
	changes := n.mem.touch(msg.From, now)
	changes = append(changes, n.mem.merge(msg.Peers, now)...)
	n.noteChanges(now, changes)
	n.metrics.Heartbeats.Inc()

	resp := gossipMsg{From: n.selfInfo(), Peers: n.mem.digest(n.selfInfo(), n.cfg.ViewSize)}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// HandlePeers serves GET /cluster/v1/peers: the membership view as
// JSON, self first, then peers ascending by address.
func (n *Node) HandlePeers(w http.ResponseWriter, r *http.Request) {
	view := struct {
		Self    string     `json:"self"`
		Members []string   `json:"members"`
		Peers   []PeerInfo `json:"peers"`
	}{
		Self:    n.cfg.Self,
		Members: n.mem.members(),
		Peers:   n.mem.digest(n.selfInfo(), 0),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(view)
}

// exchange performs one push-pull shuffle with addr: POST our view,
// merge the returned one. Errors are deliberately quiet — an unreachable
// peer simply stops refreshing its row and ages into suspicion, which
// is the liveness signal, not the error itself. The node-lifetime ctx
// aborts the dial when Stop runs mid-round.
func (n *Node) exchange(ctx context.Context, addr string) {
	msg := gossipMsg{From: n.selfInfo(), Peers: n.mem.digest(n.selfInfo(), n.cfg.ViewSize)}
	body, err := json.Marshal(msg)
	if err != nil {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+GossipPath, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		n.logger.Debug("gossip exchange failed", "peer", addr, "err", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.logger.Debug("gossip exchange rejected", "peer", addr, "status", resp.StatusCode)
		return
	}
	var reply gossipMsg
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxGossipBody)).Decode(&reply); err != nil {
		n.logger.Debug("gossip reply malformed", "peer", addr, "err", err)
		return
	}
	now := n.cfg.Now()
	changes := n.mem.touch(reply.From, now)
	changes = append(changes, n.mem.merge(reply.Peers, now)...)
	n.noteChanges(now, changes)
	n.metrics.Heartbeats.Inc()
}
