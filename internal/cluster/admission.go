package cluster

import (
	"math"
	"sync"
	"time"
)

// RateLimiter is the per-client token-bucket admission controller: each
// client (keyed on X-Client-ID or the remote address) owns a bucket
// refilled at rate tokens/second up to burst. A request that finds the
// bucket empty is shed with 429 and a Retry-After telling the client
// when the next token lands — overload degrades into crisp, spaced
// retries instead of a convoy of queue-full failures.
//
// The table is bounded: past maxClients buckets, admitting a new client
// evicts the one idle longest (a full bucket's owner by construction,
// so eviction never forgives a debt).
type RateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	max     int
	now     func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time // last refill
}

// NewRateLimiter builds a limiter admitting rate requests/second with
// the given burst per client, tracking at most maxClients buckets. The
// clock is injected (production wires time.Now). rate must be > 0;
// burst < 1 is raised to 1 so a fresh client can always send one
// request.
func NewRateLimiter(rate float64, burst int, maxClients int, now func() time.Time) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	if maxClients <= 0 {
		maxClients = 4096
	}
	return &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		max:     maxClients,
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// Allow spends one token from client's bucket. When the bucket is
// empty it reports false plus how long until the next token accrues —
// the Retry-After the caller should surface.
func (l *RateLimiter) Allow(client string) (ok bool, retryAfter time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[client]
	if !exists {
		if len(l.buckets) >= l.max {
			l.evictIdlest()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(l.burst, b.tokens+elapsed*l.rate)
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / l.rate * float64(time.Second))
}

// Len returns the number of tracked client buckets.
func (l *RateLimiter) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// evictIdlest drops the bucket refilled longest ago. Callers hold l.mu.
// Linear scan: it only runs when the table is at capacity, and capacity
// is a few thousand entries.
func (l *RateLimiter) evictIdlest() {
	var (
		victim string
		oldest time.Time
		found  bool
	)
	for client, b := range l.buckets {
		if !found || b.last.Before(oldest) || (b.last.Equal(oldest) && client < victim) {
			victim, oldest, found = client, b.last, true
		}
	}
	if found {
		delete(l.buckets, victim)
	}
}
