package cluster

import "ftclust/internal/obs"

// Metric names of the ftclust_cluster_* family. Compile-time constants
// by contract (ftlint obsconst): the exposition's name set must be
// identical on every peer so fleet-wide scrapes aggregate cleanly.
const (
	metricPeers         = "ftclust_cluster_peers"
	metricHeartbeats    = "ftclust_cluster_heartbeats_total"
	metricShuffles      = "ftclust_cluster_shuffles_total"
	metricForwards      = "ftclust_cluster_forwards_total"
	metricForwardErrors = "ftclust_cluster_forward_errors_total"
	metricEvictions     = "ftclust_cluster_evictions_total"
	metricForwardDur    = "ftclust_cluster_forward_duration_seconds"
)

// Metrics are the cluster's observability handles, registered on the
// serving registry so they appear in the existing /metrics exposition.
// The gossip layer feeds Heartbeats/Shuffles/Evictions; the serving
// layer's router feeds Forwards/ForwardErrors/ForwardDur around each
// proxied request.
type Metrics struct {
	Heartbeats    *obs.Counter
	Shuffles      *obs.Counter
	Forwards      *obs.Counter
	ForwardErrors *obs.Counter
	Evictions     *obs.Counter
	ForwardDur    *obs.Histogram
}

// newMetrics registers the cluster series on reg; peers is the
// membership-size gauge callback (self included).
func newMetrics(reg *obs.Registry, peers func() float64) *Metrics {
	reg.Gauge(metricPeers, "cluster members currently in the view (self included)", peers)
	return &Metrics{
		Heartbeats: reg.Counter(metricHeartbeats,
			"gossip heartbeats processed (inbound messages plus pull replies)"),
		Shuffles: reg.Counter(metricShuffles,
			"push-pull shuffle rounds initiated"),
		Forwards: reg.Counter(metricForwards,
			"requests proxied to their rendezvous owner"),
		ForwardErrors: reg.Counter(metricForwardErrors,
			"forward attempts that failed and fell back to a local solve"),
		Evictions: reg.Counter(metricEvictions,
			"peers evicted after exceeding the missed-heartbeat deadline"),
		ForwardDur: reg.Histogram(metricForwardDur,
			"wall time of one forwarded request (dial to full response)",
			obs.DurationBuckets()),
	}
}
