// Package cluster is the stdlib-only peer tier that turns ftserved from
// a single process into a horizontally scalable cluster, the serving
// analogue of the membership substrate every distributed dominating-set
// algorithm presumes (the CONGEST neighborhood-discovery layer of
// Deurer–Kuhn–Maus and the local peer views of Penso–Barbosa): nodes
// discover each other with a heartbeat-driven push-pull peer-exchange
// protocol (periodic shuffles of bounded peer views over HTTP JSON,
// liveness via missed-heartbeat suspicion and eventual eviction, seed
// bootstrap from `ftserved -join`), and the converged member list feeds
// a rendezvous (highest-random-weight) hash ring so each instance's
// existing LRU solution cache owns a shard of the keyspace. The serving
// layer consults Route per request and transparently proxies non-owned
// keys to their owner; a loop-guard header keeps a momentarily stale
// ring from ping-ponging a request, and a suspect owner degrades to a
// local solve instead of a timeout.
//
// The package is determinism-disciplined like the solver core (it is in
// ftlint's detrand scope): it never reads the wall clock or the global
// math/rand source directly — the clock and the jitter RNG are injected
// through Config, so tests can drive membership with a fake clock and
// gossip target selection replays bit-identically from a seed.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ftclust/internal/obs"
)

// Config tunes a cluster node. Self, Now and Rand are required; zero
// values elsewhere select the documented defaults.
type Config struct {
	// Self is this node's advertised host:port — the address peers dial
	// for gossip exchanges and forwarded solves.
	Self string
	// Seeds are the bootstrap peers (host:port) contacted when the view
	// is empty: at first start, and again whenever every known peer has
	// been evicted (rejoin after a partition).
	Seeds []string
	// GossipInterval is the base period between shuffle rounds (default
	// 1s). Each round's actual delay is jittered ±25% by Rand so a
	// co-started fleet does not synchronize its rounds.
	GossipInterval time.Duration
	// SuspectAfter marks a peer suspect once no fresh heartbeat has been
	// seen for this long (default 5× GossipInterval). Suspect peers stay
	// in the ring — keys do not flap during a transient stall — but the
	// router solves their keys locally instead of proxying to them.
	SuspectAfter time.Duration
	// EvictAfter removes a peer from the view entirely (default 3×
	// SuspectAfter). Eviction moves the evictee's keyspace shard to the
	// surviving members.
	EvictAfter time.Duration
	// Fanout is how many peers each round shuffles with (default 2).
	Fanout int
	// ViewSize bounds the number of peer entries carried in one gossip
	// message (default 64); larger views send the most recently heard-of
	// members first.
	ViewSize int
	// Now is the injected clock (required; production wires time.Now).
	Now func() time.Time
	// Rand is the injected, seeded jitter/selection source (required;
	// production wires rng.New(seed)). Only the gossip loop goroutine
	// draws from it.
	Rand *rand.Rand
	// Client performs gossip exchanges and is shared with the serving
	// layer for request forwarding (default: 2s total timeout).
	Client *http.Client
	// Logger receives membership transitions (default: discard).
	Logger *slog.Logger
	// Registry receives the ftclust_cluster_* series (default: a private
	// registry, so a registry-less node still counts internally).
	Registry *obs.Registry
	// Events receives structured membership-transition events (join,
	// suspect, evict, incarnation, route-change). Optional: a nil ring
	// drops them (EventRing is nil-safe), slog still sees everything.
	Events *obs.EventRing
}

func (c *Config) fillDefaults() error {
	if c.Self == "" {
		return errors.New("cluster: Config.Self is required")
	}
	if c.Now == nil {
		return errors.New("cluster: Config.Now is required (inject time.Now)")
	}
	if c.Rand == nil {
		return errors.New("cluster: Config.Rand is required (inject a seeded rng)")
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 5 * c.GossipInterval
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 3 * c.SuspectAfter
	}
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if c.ViewSize <= 0 {
		c.ViewSize = 64
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 2 * time.Second}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return nil
}

// Node is one cluster member: the membership table, the gossip loop and
// the rendezvous router over the converged view. Create with New, mount
// Handler's endpoints on the serving mux, call Start to begin gossiping
// and Stop to leave.
type Node struct {
	cfg     Config
	self    PeerInfo // Addr + this process's incarnation epoch
	mem     *membership
	metrics *Metrics
	logger  *slog.Logger

	hbSeq atomic.Int64 // this node's heartbeat counter, bumped per round

	// ctx is the node's lifetime context, canceled by Stop. It threads
	// through round into every outbound exchange so an in-flight gossip
	// dial aborts at shutdown instead of riding out the client timeout.
	ctx    context.Context
	cancel context.CancelFunc

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// New validates cfg and builds a node. The node's incarnation epoch is
// drawn from the injected clock, so a restarted process supersedes its
// previous incarnation in every peer's view.
func New(cfg Config) (*Node, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:    cfg,
		self:   PeerInfo{Addr: cfg.Self, Epoch: cfg.Now().UnixNano()},
		mem:    newMembership(cfg.Self),
		logger: cfg.Logger,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	n.metrics = newMetrics(cfg.Registry, func() float64 { return float64(n.mem.size()) })
	now := cfg.Now()
	for _, seed := range cfg.Seeds {
		if seed != "" && seed != cfg.Self {
			n.mem.insertSeed(seed, now)
		}
	}
	return n, nil
}

// Self returns this node's advertised address.
func (n *Node) Self() string { return n.cfg.Self }

// Client returns the HTTP client peers are dialed with; the serving
// layer reuses it for request forwarding so gossip and proxy traffic
// share one timeout policy.
func (n *Node) Client() *http.Client { return n.cfg.Client }

// Metrics exposes the node's ftclust_cluster_* handles; the serving
// layer feeds the forward counters and latency histogram.
func (n *Node) Metrics() *Metrics { return n.metrics }

// NumMembers returns the membership size including self.
func (n *Node) NumMembers() int { return n.mem.size() }

// Members returns the current member addresses (self included),
// ascending — the rendezvous ring's input.
func (n *Node) Members() []string { return n.mem.members() }

// Route decides where key should be served: owner is the rendezvous
// winner over the current view, and local reports whether this node
// should solve it itself — because it owns the key, or because the
// owner is currently suspect (proxying to a stalled peer would trade a
// cache hit for a timeout).
func (n *Node) Route(key string) (owner string, local bool) {
	owner = Owner(key, n.mem.members())
	if owner == "" || owner == n.cfg.Self || n.mem.isSuspect(owner) {
		return owner, true
	}
	return owner, false
}

// Start launches the gossip loop. It returns immediately; Stop (or a
// second Start) must not be called concurrently with it.
func (n *Node) Start() {
	go n.loop()
}

// Stop terminates the gossip loop — canceling any in-flight exchange —
// and waits for it to exit. Safe to call more than once.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		n.cancel()
	})
	<-n.done
}

// loop runs shuffle rounds forever, jittering each delay so co-started
// nodes spread their traffic.
func (n *Node) loop() {
	defer close(n.done)
	timer := time.NewTimer(n.jitter())
	defer timer.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-timer.C:
			n.round(n.ctx)
			timer.Reset(n.jitter())
		}
	}
}

// jitter returns the next round delay: GossipInterval ±25%, drawn from
// the injected seeded source (never the global one — detrand enforces
// this package-wide).
func (n *Node) jitter() time.Duration {
	base := n.cfg.GossipInterval
	span := int64(base) / 2
	if span <= 0 {
		return base
	}
	return base - base/4 + time.Duration(n.cfg.Rand.Int63n(span))
}

// round is one gossip heartbeat: advance our own heartbeat counter,
// age the view (suspicion and eviction), then push-pull shuffle with a
// random fanout of peers — falling back to the seeds whenever the view
// is empty so a partitioned or freshly started node (re)joins. ctx is
// the node lifetime: Stop cancels it mid-exchange.
func (n *Node) round(ctx context.Context) {
	n.hbSeq.Add(1)
	now := n.cfg.Now()
	suspected, evicted := n.mem.age(now, n.cfg.SuspectAfter, n.cfg.EvictAfter)
	for _, addr := range suspected {
		n.cfg.Events.AddAt(now, "suspect", "peer", addr)
		n.logger.Info("cluster peer suspected", "peer", addr)
	}
	for _, addr := range evicted {
		n.metrics.Evictions.Inc()
		n.cfg.Events.AddAt(now, "evict", "peer", addr)
		n.logger.Info("cluster peer evicted", "peer", addr)
	}
	if len(evicted) > 0 {
		n.noteRouteChange(now, "evict")
	}

	targets := n.mem.pickTargets(n.cfg.Rand, n.cfg.Fanout)
	if len(targets) == 0 {
		targets = n.seedTargets()
	}
	if len(targets) == 0 {
		return
	}
	n.metrics.Shuffles.Inc()
	for _, addr := range targets {
		n.exchange(ctx, addr)
	}
}

// seedTargets returns the configured seeds (minus self), the bootstrap
// and rejoin path for an empty view.
func (n *Node) seedTargets() []string {
	out := make([]string, 0, len(n.cfg.Seeds))
	for _, s := range n.cfg.Seeds {
		if s != "" && s != n.cfg.Self {
			out = append(out, s)
		}
	}
	return out
}

// noteChanges records membership transitions from a merge or touch in
// the event log and slog. Joins also change rendezvous ownership, so a
// batch containing one emits a route-change marker.
func (n *Node) noteChanges(now time.Time, changes []memberChange) {
	if len(changes) == 0 {
		return
	}
	joined := false
	for _, c := range changes {
		n.cfg.Events.AddAt(now, c.kind,
			"peer", c.addr,
			"old_epoch", strconv.FormatInt(c.oldEpoch, 10),
			"epoch", strconv.FormatInt(c.newEpoch, 10))
		n.logger.Info("cluster membership change",
			"kind", c.kind, "peer", c.addr, "old_epoch", c.oldEpoch, "epoch", c.newEpoch)
		if c.kind == changeJoin {
			joined = true
		}
	}
	if joined {
		n.noteRouteChange(now, changeJoin)
	}
}

// noteRouteChange marks that the member set — and with it the
// rendezvous key ownership — just changed.
func (n *Node) noteRouteChange(now time.Time, cause string) {
	members := n.mem.size()
	n.cfg.Events.AddAt(now, "route-change",
		"cause", cause, "members", strconv.Itoa(members))
	n.logger.Info("cluster route ownership changed", "cause", cause, "members", members)
}

// PeerStatus is one membership row as the fleet endpoint reports it.
type PeerStatus struct {
	Addr      string    `json:"addr"`
	State     string    `json:"state"` // "alive" or "suspect"
	Epoch     int64     `json:"epoch"`
	Heartbeat int64     `json:"heartbeat"`
	LastSeen  time.Time `json:"last_seen"`
}

// PeerStatuses returns the remote members' liveness rows, ascending by
// address (self is not a row — the caller knows itself best).
func (n *Node) PeerStatuses() []PeerStatus { return n.mem.statuses() }

// selfInfo is this node's current wire entry.
func (n *Node) selfInfo() PeerInfo {
	return PeerInfo{Addr: n.self.Addr, Epoch: n.self.Epoch, Heartbeat: n.hbSeq.Load()}
}

func (n *Node) String() string {
	return fmt.Sprintf("cluster.Node(%s, %d members)", n.cfg.Self, n.mem.size())
}
