package cluster

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// PeerInfo is one member's wire entry in a gossip message and the
// durable part of its table row: the advertised address, the sender
// process's incarnation epoch (a restart supersedes the old
// incarnation), and its monotonically increasing heartbeat counter.
// A received entry refreshes liveness only when it is strictly fresher
// — higher epoch, or same epoch with a higher heartbeat — so replayed
// or looping digests cannot keep a dead peer alive.
type PeerInfo struct {
	Addr      string `json:"addr"`
	Epoch     int64  `json:"epoch"`
	Heartbeat int64  `json:"heartbeat"`
}

// peerState is a member's liveness classification.
type peerState int

const (
	peerAlive peerState = iota
	peerSuspect
)

// peer is one remote member's table row.
type peer struct {
	info     PeerInfo
	lastSeen time.Time // local receipt time of the freshest heartbeat
	state    peerState
}

// Membership transition kinds, as they appear in the event log.
const (
	changeJoin        = "join"        // first real contact with a member
	changeIncarnation = "incarnation" // known member restarted (epoch advanced)
)

// memberChange records one transition produced by merge or touch, the
// input to the node's event log. A seed row (epoch 0) turning into a
// real incarnation is a join, not an incarnation bump: the bootstrap
// placeholder was never a live member.
type memberChange struct {
	addr     string
	kind     string
	oldEpoch int64
	newEpoch int64
}

// classify turns an epoch advance into the transition it represents.
func classify(addr string, oldEpoch, newEpoch int64) memberChange {
	kind := changeIncarnation
	if oldEpoch == 0 {
		kind = changeJoin
	}
	return memberChange{addr: addr, kind: kind, oldEpoch: oldEpoch, newEpoch: newEpoch}
}

// membership is the mutex-guarded peer table. All methods are safe for
// concurrent use by the gossip loop, the HTTP handlers and the router;
// none of them performs I/O or blocks while holding the lock.
type membership struct {
	mu    sync.Mutex
	self  string
	peers map[string]*peer
}

func newMembership(self string) *membership {
	return &membership{self: self, peers: make(map[string]*peer)}
}

// insertSeed primes the table with a bootstrap address. Epoch 0 loses to
// any real incarnation, so the first exchange replaces it wholesale.
func (m *membership) insertSeed(addr string, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.peers[addr]; !ok {
		m.peers[addr] = &peer{info: PeerInfo{Addr: addr}, lastSeen: now}
	}
}

// merge folds received entries into the table and reports the
// membership transitions (joins and incarnation bumps) in wire order.
// Self entries are ignored (this node is authoritative for itself);
// stale entries (older epoch, or equal epoch without a heartbeat
// advance) leave the row untouched so suspicion keeps accruing.
func (m *membership) merge(infos []PeerInfo, now time.Time) (changes []memberChange) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, in := range infos {
		if in.Addr == "" || in.Addr == m.self {
			continue
		}
		p, ok := m.peers[in.Addr]
		if !ok {
			m.peers[in.Addr] = &peer{info: in, lastSeen: now}
			changes = append(changes, classify(in.Addr, 0, in.Epoch))
			continue
		}
		if in.Epoch > p.info.Epoch ||
			(in.Epoch == p.info.Epoch && in.Heartbeat > p.info.Heartbeat) {
			if in.Epoch > p.info.Epoch {
				changes = append(changes, classify(in.Addr, p.info.Epoch, in.Epoch))
			}
			p.info = in
			p.lastSeen = now
			p.state = peerAlive
		}
	}
	return changes
}

// age classifies every row against the liveness deadlines: rows without
// a fresh heartbeat for suspectAfter turn suspect, rows beyond
// evictAfter are removed. It returns the addresses that transitioned,
// for logging and the eviction counter.
func (m *membership) age(now time.Time, suspectAfter, evictAfter time.Duration) (suspected, evicted []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for addr, p := range m.peers {
		idle := now.Sub(p.lastSeen)
		switch {
		case idle > evictAfter:
			delete(m.peers, addr)
			evicted = append(evicted, addr)
		case idle > suspectAfter && p.state == peerAlive:
			p.state = peerSuspect
			suspected = append(suspected, addr)
		}
	}
	sort.Strings(suspected)
	sort.Strings(evicted)
	return suspected, evicted
}

// pickTargets selects up to fanout distinct shuffle partners from the
// injected source, preferring alive peers and falling back to suspects
// (a suspect that answers a shuffle immediately clears its suspicion).
func (m *membership) pickTargets(r *rand.Rand, fanout int) []string {
	m.mu.Lock()
	alive := make([]string, 0, len(m.peers))
	suspect := make([]string, 0)
	for addr, p := range m.peers {
		if p.state == peerAlive {
			alive = append(alive, addr)
		} else {
			suspect = append(suspect, addr)
		}
	}
	m.mu.Unlock()
	sort.Strings(alive)
	sort.Strings(suspect)

	pool := alive
	if len(pool) == 0 {
		pool = suspect
	}
	if len(pool) <= fanout {
		return pool
	}
	r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool[:fanout]
}

// digest renders the view for one gossip message: self plus up to max-1
// peer entries, freshest first so a bounded view still propagates the
// most recent liveness, re-sorted by address for a canonical wire order.
func (m *membership) digest(self PeerInfo, max int) []PeerInfo {
	// Copy rows by value under the lock: the gossip loop mutates peer
	// structs concurrently, so no *peer may escape the critical section.
	m.mu.Lock()
	rows := make([]peer, 0, len(m.peers))
	for _, p := range m.peers {
		rows = append(rows, *p)
	}
	m.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if !rows[i].lastSeen.Equal(rows[j].lastSeen) {
			return rows[i].lastSeen.After(rows[j].lastSeen)
		}
		return rows[i].info.Addr < rows[j].info.Addr
	})
	if max > 0 && len(rows) > max-1 {
		rows = rows[:max-1]
	}
	out := make([]PeerInfo, 0, len(rows)+1)
	out = append(out, self)
	for _, p := range rows {
		out = append(out, p.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// members returns every current member address (self included),
// ascending: the rendezvous ring's input. Suspect peers stay members so
// the keyspace does not flap while a peer is merely slow.
func (m *membership) members() []string {
	m.mu.Lock()
	out := make([]string, 0, len(m.peers)+1)
	out = append(out, m.self)
	for addr := range m.peers {
		out = append(out, addr)
	}
	m.mu.Unlock()
	sort.Strings(out)
	return out
}

// isSuspect reports whether addr is currently suspect (unknown
// addresses are not members and report false).
func (m *membership) isSuspect(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[addr]
	return ok && p.state == peerSuspect
}

// size is the membership count including self.
func (m *membership) size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.peers) + 1
}

// touch refreshes a peer's liveness from direct contact (an inbound
// gossip message or a successful exchange), inserting it if unknown,
// and reports the resulting transitions like merge does.
func (m *membership) touch(in PeerInfo, now time.Time) (changes []memberChange) {
	if in.Addr == "" || in.Addr == m.self {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[in.Addr]
	if !ok {
		m.peers[in.Addr] = &peer{info: in, lastSeen: now}
		return []memberChange{classify(in.Addr, 0, in.Epoch)}
	}
	if in.Epoch > p.info.Epoch ||
		(in.Epoch == p.info.Epoch && in.Heartbeat >= p.info.Heartbeat) {
		if in.Epoch > p.info.Epoch {
			changes = append(changes, classify(in.Addr, p.info.Epoch, in.Epoch))
		}
		p.info = in
		p.lastSeen = now
		p.state = peerAlive
	}
	return changes
}

// statuses renders the table (self excluded) sorted by address, for the
// fleet endpoint's per-peer health view.
func (m *membership) statuses() []PeerStatus {
	m.mu.Lock()
	out := make([]PeerStatus, 0, len(m.peers))
	for _, p := range m.peers {
		state := "alive"
		if p.state == peerSuspect {
			state = "suspect"
		}
		out = append(out, PeerStatus{
			Addr:      p.info.Addr,
			State:     state,
			Epoch:     p.info.Epoch,
			Heartbeat: p.info.Heartbeat,
			LastSeen:  p.lastSeen,
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
