package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%08x/k=2/t=3/seed=%d", i*2654435761, i)
	}
	return keys
}

// Every node must compute the same owner from the same member set, no
// matter how its local copy of the list happens to be ordered.
func TestOwnerDeterministic(t *testing.T) {
	members := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080", "10.0.0.4:8080"}
	keys := testKeys(256)
	want := make([]string, len(keys))
	for i, k := range keys {
		want[i] = Owner(k, members)
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), members...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for i, k := range keys {
			if got := Owner(k, shuffled); got != want[i] {
				t.Fatalf("trial %d key %q: owner %q, want %q (order must not matter)", trial, k, got, want[i])
			}
		}
	}
}

func TestOwnerEmptyMembers(t *testing.T) {
	if got := Owner("anything", nil); got != "" {
		t.Fatalf("owner of empty member list = %q, want \"\"", got)
	}
	if got := Owner("anything", []string{"a:1"}); got != "a:1" {
		t.Fatalf("single member must own everything, got %q", got)
	}
}

// HRW's balance guarantee: each of N members owns roughly M/N keys.
func TestOwnerBalance(t *testing.T) {
	members := []string{"n1:9000", "n2:9000", "n3:9000", "n4:9000", "n5:9000"}
	keys := testKeys(5000)
	counts := make(map[string]int)
	for _, k := range keys {
		counts[Owner(k, members)]++
	}
	expect := len(keys) / len(members)
	for _, m := range members {
		c := counts[m]
		if c < expect/2 || c > expect*2 {
			t.Fatalf("member %s owns %d of %d keys (expected ≈%d): badly skewed", m, c, len(keys), expect)
		}
	}
}

// Minimal disruption: removing one of N members moves exactly the keys
// it owned (≈ M/N), and every other key keeps its owner. Adding it back
// restores the original assignment exactly.
func TestOwnerStabilityUnderMembershipChange(t *testing.T) {
	members := []string{"n1:9000", "n2:9000", "n3:9000", "n4:9000", "n5:9000"}
	keys := testKeys(4000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = Owner(k, members)
	}

	gone := "n3:9000"
	survivors := make([]string, 0, len(members)-1)
	for _, m := range members {
		if m != gone {
			survivors = append(survivors, m)
		}
	}
	moved := 0
	for _, k := range keys {
		after := Owner(k, survivors)
		switch {
		case before[k] == gone:
			moved++
			if after == gone {
				t.Fatalf("key %q still owned by removed member", k)
			}
		case after != before[k]:
			t.Fatalf("key %q moved %s→%s although its owner survived", k, before[k], after)
		}
	}
	expect := len(keys) / len(members)
	if moved < expect/2 || moved > expect*2 {
		t.Fatalf("removal moved %d keys, expected ≈%d (M/N)", moved, expect)
	}

	// Rejoin: bit-identical to the original assignment.
	for _, k := range keys {
		if got := Owner(k, members); got != before[k] {
			t.Fatalf("after rejoin key %q owner %q, want %q", k, got, before[k])
		}
	}
}
