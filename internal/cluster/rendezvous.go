package cluster

import "hash/fnv"

// Rendezvous (highest-random-weight) hashing assigns every key to the
// member with the highest hash(member, key) score. Unlike a mod-N ring
// it needs no virtual-node bookkeeping, every node computes the same
// owner from the same member list with no coordination, and membership
// changes are minimally disruptive: when one of N members leaves, only
// the keys it owned (≈ M/N of them) move, each to its second-highest
// scorer — exactly the stability the per-node LRU solution caches need.

// score is the HRW weight of member for key: FNV-1a over the member
// address, a separator that cannot appear in a host:port, and the key.
func score(member, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(member))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// Owner returns the rendezvous winner for key among members, or "" for
// an empty member list. Score ties (vanishingly rare with a 64-bit
// hash) break toward the lexicographically smaller address so every
// node still agrees.
func Owner(key string, members []string) string {
	var (
		best      string
		bestScore uint64
		first     = true
	)
	for _, m := range members {
		s := score(m, key)
		if first || s > bestScore || (s == bestScore && m < best) {
			best, bestScore, first = m, s, false
		}
	}
	return best
}
