package cluster

import (
	"context"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"ftclust/internal/obs"
)

func TestMergeFreshnessRules(t *testing.T) {
	m := newMembership("self:1")
	t0 := time.Unix(1700000000, 0)

	changes := m.merge([]PeerInfo{{Addr: "p1:1", Epoch: 5, Heartbeat: 10}}, t0)
	if len(changes) != 1 || changes[0].kind != changeJoin || changes[0].addr != "p1:1" {
		t.Fatalf("changes = %+v, want one join for p1:1", changes)
	}
	// Self entries and empty addresses are ignored.
	if changes := m.merge([]PeerInfo{{Addr: "self:1", Epoch: 99}, {Addr: ""}}, t0); len(changes) != 0 {
		t.Fatalf("self/empty entries produced changes: %+v", changes)
	}

	// Stale: older epoch, and equal epoch without heartbeat advance.
	m.merge([]PeerInfo{{Addr: "p1:1", Epoch: 4, Heartbeat: 99}}, t0.Add(time.Second))
	m.merge([]PeerInfo{{Addr: "p1:1", Epoch: 5, Heartbeat: 10}}, t0.Add(time.Second))
	if p := m.peers["p1:1"]; !p.lastSeen.Equal(t0) {
		t.Fatal("stale entry refreshed lastSeen")
	}

	// Fresh: heartbeat advance, then epoch advance (restart supersedes
	// even with a lower heartbeat).
	m.merge([]PeerInfo{{Addr: "p1:1", Epoch: 5, Heartbeat: 11}}, t0.Add(2*time.Second))
	if p := m.peers["p1:1"]; !p.lastSeen.Equal(t0.Add(2*time.Second)) || p.info.Heartbeat != 11 {
		t.Fatalf("heartbeat advance not applied: %+v", p)
	}
	changes = m.merge([]PeerInfo{{Addr: "p1:1", Epoch: 6, Heartbeat: 1}}, t0.Add(3*time.Second))
	if p := m.peers["p1:1"]; p.info.Epoch != 6 || p.info.Heartbeat != 1 {
		t.Fatalf("new incarnation not adopted: %+v", p)
	}
	if len(changes) != 1 || changes[0].kind != changeIncarnation ||
		changes[0].oldEpoch != 5 || changes[0].newEpoch != 6 {
		t.Fatalf("epoch advance changes = %+v, want one incarnation 5→6", changes)
	}
}

func TestTransitionClassification(t *testing.T) {
	m := newMembership("self:1")
	t0 := time.Unix(1700000000, 0)

	// A seed placeholder (epoch 0) turning real is a join, not an
	// incarnation bump.
	m.insertSeed("seed:1", t0)
	changes := m.merge([]PeerInfo{{Addr: "seed:1", Epoch: 7, Heartbeat: 1}}, t0.Add(time.Second))
	if len(changes) != 1 || changes[0].kind != changeJoin || changes[0].newEpoch != 7 {
		t.Fatalf("seed promotion changes = %+v, want one join", changes)
	}

	// touch reports the same transitions as merge.
	if changes := m.touch(PeerInfo{Addr: "new:1", Epoch: 3, Heartbeat: 1}, t0); len(changes) != 1 || changes[0].kind != changeJoin {
		t.Fatalf("touch insert changes = %+v, want one join", changes)
	}
	if changes := m.touch(PeerInfo{Addr: "new:1", Epoch: 3, Heartbeat: 2}, t0.Add(time.Second)); len(changes) != 0 {
		t.Fatalf("heartbeat-only touch produced changes: %+v", changes)
	}
	if changes := m.touch(PeerInfo{Addr: "new:1", Epoch: 9, Heartbeat: 0}, t0.Add(2*time.Second)); len(changes) != 1 || changes[0].kind != changeIncarnation {
		t.Fatalf("restart touch changes = %+v, want one incarnation", changes)
	}

	// statuses renders rows ascending by address.
	sts := m.statuses()
	if len(sts) != 2 || sts[0].Addr != "new:1" || sts[1].Addr != "seed:1" {
		t.Fatalf("statuses = %+v", sts)
	}
	if sts[0].State != "alive" || sts[0].Epoch != 9 {
		t.Fatalf("status row wrong: %+v", sts[0])
	}
}

func TestAgeSuspicionAndEviction(t *testing.T) {
	m := newMembership("self:1")
	t0 := time.Unix(1700000000, 0)
	m.merge([]PeerInfo{
		{Addr: "fresh:1", Epoch: 1, Heartbeat: 1},
		{Addr: "slow:1", Epoch: 1, Heartbeat: 1},
		{Addr: "dead:1", Epoch: 1, Heartbeat: 1},
	}, t0)
	// Refresh "fresh" so only the others idle out.
	m.merge([]PeerInfo{{Addr: "fresh:1", Epoch: 1, Heartbeat: 2}}, t0.Add(9*time.Second))
	m.merge([]PeerInfo{{Addr: "slow:1", Epoch: 1, Heartbeat: 2}}, t0.Add(4*time.Second))

	suspected, evicted := m.age(t0.Add(10*time.Second), 5*time.Second, 9*time.Second)
	if !reflect.DeepEqual(suspected, []string{"slow:1"}) {
		t.Fatalf("suspected = %v, want [slow:1]", suspected)
	}
	if !reflect.DeepEqual(evicted, []string{"dead:1"}) {
		t.Fatalf("evicted = %v, want [dead:1]", evicted)
	}
	if !m.isSuspect("slow:1") || m.isSuspect("fresh:1") || m.isSuspect("dead:1") {
		t.Fatal("suspicion flags wrong after age")
	}
	if got := m.members(); !reflect.DeepEqual(got, []string{"fresh:1", "self:1", "slow:1"}) {
		t.Fatalf("members after eviction = %v", got)
	}

	// A suspect stays a ring member, and a fresh heartbeat clears it.
	m.merge([]PeerInfo{{Addr: "slow:1", Epoch: 1, Heartbeat: 3}}, t0.Add(11*time.Second))
	if m.isSuspect("slow:1") {
		t.Fatal("fresh heartbeat must clear suspicion")
	}
}

func TestTouchRefreshesOnEqualHeartbeat(t *testing.T) {
	m := newMembership("self:1")
	t0 := time.Unix(1700000000, 0)
	m.merge([]PeerInfo{{Addr: "p:1", Epoch: 3, Heartbeat: 7}}, t0)

	// merge with an equal heartbeat is stale; touch is direct contact and
	// refreshes even without an advance.
	m.merge([]PeerInfo{{Addr: "p:1", Epoch: 3, Heartbeat: 7}}, t0.Add(time.Second))
	if p := m.peers["p:1"]; !p.lastSeen.Equal(t0) {
		t.Fatal("merge must not refresh on equal heartbeat")
	}
	m.touch(PeerInfo{Addr: "p:1", Epoch: 3, Heartbeat: 7}, t0.Add(time.Second))
	if p := m.peers["p:1"]; !p.lastSeen.Equal(t0.Add(time.Second)) {
		t.Fatal("touch must refresh on equal heartbeat (direct contact)")
	}
}

func TestDigestBoundedAndSorted(t *testing.T) {
	m := newMembership("self:1")
	t0 := time.Unix(1700000000, 0)
	for i := 0; i < 10; i++ {
		m.merge([]PeerInfo{{Addr: string(rune('a'+i)) + ":1", Epoch: 1, Heartbeat: int64(i)}},
			t0.Add(time.Duration(i)*time.Second))
	}
	self := PeerInfo{Addr: "self:1", Epoch: 9, Heartbeat: 42}
	d := m.digest(self, 4)
	if len(d) != 4 {
		t.Fatalf("digest length %d, want 4 (self + 3 freshest)", len(d))
	}
	foundSelf := false
	for i, e := range d {
		if e.Addr == "self:1" {
			foundSelf = true
		}
		if i > 0 && d[i-1].Addr >= e.Addr {
			t.Fatalf("digest not strictly sorted by addr: %v", d)
		}
	}
	if !foundSelf {
		t.Fatal("digest must always carry self")
	}
	// Freshest-first truncation: the oldest peers (a..f) are dropped.
	for _, e := range d {
		if e.Addr == "a:1" || e.Addr == "b:1" {
			t.Fatalf("digest kept stale entry %s over fresher ones", e.Addr)
		}
	}
}

func TestPickTargetsPrefersAlive(t *testing.T) {
	m := newMembership("self:1")
	t0 := time.Unix(1700000000, 0)
	m.merge([]PeerInfo{
		{Addr: "alive:1", Epoch: 1, Heartbeat: 5},
		{Addr: "stale:1", Epoch: 1, Heartbeat: 1},
	}, t0)
	m.merge([]PeerInfo{{Addr: "alive:1", Epoch: 1, Heartbeat: 6}}, t0.Add(8*time.Second))
	m.age(t0.Add(10*time.Second), 5*time.Second, time.Hour)

	r := rand.New(rand.NewSource(1))
	got := m.pickTargets(r, 2)
	if !reflect.DeepEqual(got, []string{"alive:1"}) {
		t.Fatalf("pickTargets = %v, want only the alive peer", got)
	}

	// With every peer suspect, shuffling still reaches out (a suspect
	// that answers clears itself).
	m.age(t0.Add(time.Hour/2), 5*time.Second, time.Hour)
	got = m.pickTargets(r, 2)
	if len(got) != 2 {
		t.Fatalf("pickTargets over all-suspect view = %v, want both", got)
	}
}

// Two nodes wired through real HTTP handlers discover each other in one
// push-pull exchange: A learns B from the reply, B learns A from the
// inbound message.
func TestGossipExchangeConverges(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	mk := func(self string, seeds []string) *Node {
		n, err := New(Config{
			Self:   self,
			Seeds:  seeds,
			Now:    clock,
			Rand:   rand.New(rand.NewSource(1)),
			Logger: slog.Default(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	var b *Node
	tsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.HandleGossip(w, r)
	}))
	defer tsB.Close()
	addrB := tsB.Listener.Addr().String()

	a := mk("a.example:1", []string{addrB})
	b = mk(addrB, nil)

	a.hbSeq.Add(1)
	b.hbSeq.Add(1)
	a.exchange(context.Background(), addrB)

	if got := a.Members(); !reflect.DeepEqual(got, sortedAddrs("a.example:1", addrB)) {
		t.Fatalf("A's view after exchange = %v", got)
	}
	if got := b.Members(); !reflect.DeepEqual(got, sortedAddrs("a.example:1", addrB)) {
		t.Fatalf("B's view after exchange = %v", got)
	}
	if a.Metrics().Heartbeats.Value() != 1 || b.Metrics().Heartbeats.Value() != 1 {
		t.Fatalf("heartbeat counters: a=%d b=%d, want 1 each",
			a.Metrics().Heartbeats.Value(), b.Metrics().Heartbeats.Value())
	}
}

func TestNodeEmitsMembershipEvents(t *testing.T) {
	now := time.Unix(1700000000, 0)
	events := obs.NewEventRing(16)
	n, err := New(Config{
		Self:   "self:1",
		Now:    func() time.Time { return now },
		Rand:   rand.New(rand.NewSource(1)),
		Events: events,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A gossiped join produces a join event plus a route-change marker.
	n.noteChanges(now, n.mem.merge([]PeerInfo{{Addr: "p:1", Epoch: 4, Heartbeat: 1}}, now))
	got := events.List(0)
	if len(got) != 2 || got[1].Type != "join" || got[0].Type != "route-change" {
		t.Fatalf("events after join = %+v", got)
	}
	if got[1].Attrs["peer"] != "p:1" || got[1].Attrs["epoch"] != "4" {
		t.Fatalf("join attrs = %+v", got[1].Attrs)
	}
	if got[0].Attrs["members"] != "2" || got[0].Attrs["cause"] != "join" {
		t.Fatalf("route-change attrs = %+v", got[0].Attrs)
	}

	// A restart produces an incarnation event, no route change.
	n.noteChanges(now, n.mem.merge([]PeerInfo{{Addr: "p:1", Epoch: 9, Heartbeat: 1}}, now))
	if got := events.List(1); got[0].Type != "incarnation" || got[0].Attrs["old_epoch"] != "4" {
		t.Fatalf("events after restart = %+v", got)
	}

	// Aging into suspicion and eviction lands in the ring too.
	now = now.Add(time.Hour)
	n.round(context.Background())
	types := make(map[string]bool)
	for _, e := range events.List(0) {
		types[e.Type] = true
	}
	if !types["suspect"] && !types["evict"] {
		t.Fatalf("aging produced no liveness events: %+v", events.List(0))
	}
}

func sortedAddrs(a, b string) []string {
	if a < b {
		return []string{a, b}
	}
	return []string{b, a}
}
