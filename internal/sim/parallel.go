package sim

import (
	"math/rand"
	"runtime"

	"ftclust/internal/graph"
	"ftclust/internal/par"
)

// stepAll executes one round of Step calls across a worker pool. Programs
// only touch their own state, their private RNG, and their private outbox
// slot, so the round is embarrassingly parallel; determinism is preserved
// because the merge order in run() is by node ID, not completion order.
func (nw *Network) stepAll(progs []Program, rnds []*rand.Rand,
	inboxes [][]Envelope, done []bool, outs [][]delivery, round int) {
	if workers := runtime.GOMAXPROCS(0); workers > 1 {
		par.For(len(progs), workers, func(lo, hi int) {
			nw.stepRange(lo, hi, progs, rnds, inboxes, done, outs, round)
		})
	} else {
		nw.stepRange(0, len(progs), progs, rnds, inboxes, done, outs, round)
	}
}

// stepRange steps nodes [lo, hi) within one round.
func (nw *Network) stepRange(lo, hi int, progs []Program, rnds []*rand.Rand,
	inboxes [][]Envelope, done []bool, outs [][]delivery, round int) {
	for v := lo; v < hi; v++ {
		nw.stepOne(v, progs, rnds, inboxes, done, outs, round)
	}
}

// Crashes is a convenience constructor for WithCrashes: it crashes each
// node in victims at the given round.
func Crashes(round int, victims ...graph.NodeID) map[graph.NodeID]int {
	m := make(map[graph.NodeID]int, len(victims))
	for _, v := range victims {
		m[v] = round
	}
	return m
}
