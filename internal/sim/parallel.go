package sim

import (
	"math/rand"
	"runtime"
	"sync"

	"ftclust/internal/graph"
)

// stepAll executes one round of Step calls across a worker pool. Programs
// only touch their own state, their private RNG, and their private outbox
// slot, so the round is embarrassingly parallel; determinism is preserved
// because the merge order in run() is by node ID, not completion order.
func (nw *Network) stepAll(progs []Program, rnds []*rand.Rand,
	inboxes [][]Envelope, done []bool, outs [][]delivery, round int) {
	n := len(progs)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for v := 0; v < n; v++ {
			nw.stepOne(v, progs, rnds, inboxes, done, outs, round)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				nw.stepOne(v, progs, rnds, inboxes, done, outs, round)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Crashes is a convenience constructor for WithCrashes: it crashes each
// node in victims at the given round.
func Crashes(round int, victims ...graph.NodeID) map[graph.NodeID]int {
	m := make(map[graph.NodeID]int, len(victims))
	for _, v := range victims {
		m[v] = round
	}
	return m
}
