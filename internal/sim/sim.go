// Package sim implements the synchronous message-passing model of
// Section 3 of the paper: time is divided into rounds; in each round every
// node may send a message to each of its neighbors, receive the messages
// its neighbors sent in the same round, and update local state. Message
// sizes are accounted in bits so the paper's O(log n)-bit claim is
// auditable, and crash failures and message loss can be injected.
//
// Algorithms are written once against the Program/Context API and can then
// be executed by the sequential engine, the goroutine-per-node parallel
// engine, or the event-driven asynchronous engine with an α-synchronizer
// (Awerbuch), all with identical results for a fixed seed.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ftclust/internal/graph"
	"ftclust/internal/rng"
)

// Message is any payload a node sends to a neighbor. SizeBits reports the
// encoded size in bits given the network size n, so experiments can audit
// the O(log n) message-size claim.
type Message interface {
	SizeBits(n int) int
}

// Envelope is a received message together with its sender.
type Envelope struct {
	From graph.NodeID
	Msg  Message
}

// Context is the interface through which a node program observes and acts
// on the network in the current round. A Context is only valid for the
// duration of one Step call.
type Context interface {
	// ID returns this node's identifier (0 … N-1).
	ID() graph.NodeID
	// N returns the number of nodes in the network, a standard model
	// assumption (needed e.g. to draw IDs from [1, n⁴]).
	N() int
	// Round returns the current round number, starting at 0.
	Round() int
	// Degree returns δ(v), the number of neighbors.
	Degree() int
	// Neighbors returns this node's neighbors in ascending ID order.
	// The slice must not be modified.
	Neighbors() []graph.NodeID
	// Dist returns the Euclidean distance to neighbor w (UDG deployments
	// with distance sensing), or NaN when the network carries no
	// distance information or w is not a neighbor.
	Dist(w graph.NodeID) float64
	// Send queues a message for delivery to neighbor w this round.
	Send(w graph.NodeID, m Message)
	// Broadcast queues a message for delivery to every neighbor.
	Broadcast(m Message)
	// Inbox returns the messages sent to this node in the previous
	// round, sorted by sender ID. The slice must not be modified.
	Inbox() []Envelope
	// Rand returns this node's private random stream; deterministic per
	// (run seed, node).
	Rand() *rand.Rand
}

// Program is the per-node state machine. The engine calls Step once per
// round; a program returns true when it has terminated locally. Step is
// still called in later rounds (with fresh inboxes) until every node has
// terminated, so terminated programs should return true idempotently and
// may keep answering passively.
type Program interface {
	Step(ctx Context) bool
}

// Option configures a Network.
type Option func(*Network)

// WithSeed sets the root seed for all node random streams.
func WithSeed(seed int64) Option {
	return func(nw *Network) { nw.seed = seed }
}

// WithDistances attaches per-node positions so Context.Dist works; pts[v]
// is node v's location.
func WithDistances(pts []Point) Option {
	return func(nw *Network) { nw.pts = pts }
}

// Point mirrors geom.Point without importing it (sim must not depend on
// geom; geom depends on graph only). Callers convert explicitly.
type Point struct {
	X, Y float64
}

// WithCrashes schedules crash failures: node v crashes at the start of
// round crashAt[v] (it neither steps nor delivers from that round on).
// Nodes absent from the map never crash.
func WithCrashes(crashAt map[graph.NodeID]int) Option {
	return func(nw *Network) { nw.crashAt = crashAt }
}

// WithDropProb makes every message be lost independently with probability
// p (applied identically across engines for a fixed seed).
func WithDropProb(p float64) Option {
	return func(nw *Network) { nw.dropProb = p }
}

// Network binds a graph (and options) ready to execute programs.
type Network struct {
	g        *graph.Graph
	seed     int64
	pts      []Point
	crashAt  map[graph.NodeID]int
	dropProb float64
}

// New creates a Network over g.
func New(g *graph.Graph, opts ...Option) *Network {
	nw := &Network{g: g, seed: 1}
	for _, o := range opts {
		o(nw)
	}
	return nw
}

// Graph returns the underlying graph.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Metrics aggregates what an execution cost.
type Metrics struct {
	// Rounds is the number of rounds executed until global termination.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// TotalBits is the sum of SizeBits over all sent messages.
	TotalBits int64
	// MaxMessageBits is the largest single message.
	MaxMessageBits int
	// MessagesPerRound records the per-round message counts.
	MessagesPerRound []int64
	// Dropped counts messages lost to the drop model.
	Dropped int64
}

// MaxBitsPerLogN returns MaxMessageBits / ⌈log₂ n⌉, the constant of the
// O(log n) message-size claim.
func (m Metrics) MaxBitsPerLogN(n int) float64 {
	l := math.Ceil(math.Log2(float64(n)))
	if l < 1 {
		l = 1
	}
	return float64(m.MaxMessageBits) / l
}

// Result of an execution: the per-node programs (holding final state) and
// metrics.
type Result struct {
	Programs []Program
	Metrics  Metrics
}

// ErrNoProgress is returned when maxRounds elapses before every node
// terminates.
var ErrNoProgress = fmt.Errorf("sim: maxRounds exceeded before termination")

type nodeCtx struct {
	nw    *Network
	id    graph.NodeID
	round int
	inbox []Envelope
	out   *[]delivery
	rnd   *rand.Rand
}

type delivery struct {
	from, to graph.NodeID
	msg      Message
}

func (c *nodeCtx) ID() graph.NodeID          { return c.id }
func (c *nodeCtx) N() int                    { return c.nw.g.NumNodes() }
func (c *nodeCtx) Round() int                { return c.round }
func (c *nodeCtx) Degree() int               { return c.nw.g.Degree(c.id) }
func (c *nodeCtx) Neighbors() []graph.NodeID { return c.nw.g.Neighbors(c.id) }
func (c *nodeCtx) Inbox() []Envelope         { return c.inbox }
func (c *nodeCtx) Rand() *rand.Rand          { return c.rnd }

func (c *nodeCtx) Dist(w graph.NodeID) float64 {
	if c.nw.pts == nil || !c.nw.g.HasEdge(c.id, w) {
		return math.NaN()
	}
	a, b := c.nw.pts[c.id], c.nw.pts[w]
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

func (c *nodeCtx) Send(w graph.NodeID, m Message) {
	if !c.nw.g.HasEdge(c.id, w) {
		panic(fmt.Sprintf("sim: node %d sending to non-neighbor %d", c.id, w))
	}
	*c.out = append(*c.out, delivery{from: c.id, to: w, msg: m})
}

func (c *nodeCtx) Broadcast(m Message) {
	for _, w := range c.Neighbors() {
		*c.out = append(*c.out, delivery{from: c.id, to: w, msg: m})
	}
}

// Run executes the programs produced by newNode sequentially and
// deterministically until every non-crashed node's Step has returned true,
// or maxRounds elapses (in which case ErrNoProgress is returned along with
// the partial result).
func (nw *Network) Run(newNode func(v graph.NodeID) Program, maxRounds int) (Result, error) {
	return nw.run(newNode, maxRounds, false)
}

// RunParallel is Run with a goroutine-per-node step executor. Results are
// identical to Run for the same seed.
func (nw *Network) RunParallel(newNode func(v graph.NodeID) Program, maxRounds int) (Result, error) {
	return nw.run(newNode, maxRounds, true)
}

func (nw *Network) run(newNode func(v graph.NodeID) Program, maxRounds int, parallel bool) (Result, error) {
	n := nw.g.NumNodes()
	progs := make([]Program, n)
	rnds := make([]*rand.Rand, n)
	for v := 0; v < n; v++ {
		progs[v] = newNode(graph.NodeID(v))
		rnds[v] = rng.NewStream(nw.seed, uint64(v)+1)
	}
	dropRnd := rng.NewStream(nw.seed, 0)

	var met Metrics
	inboxes := make([][]Envelope, n)
	done := make([]bool, n)

	for round := 0; round < maxRounds; round++ {
		outs := make([][]delivery, n)
		if parallel {
			nw.stepAll(progs, rnds, inboxes, done, outs, round)
		} else {
			for v := 0; v < n; v++ {
				nw.stepOne(v, progs, rnds, inboxes, done, outs, round)
			}
		}
		met.Rounds = round + 1

		// Gather and deliver.
		var perRound int64
		next := make([][]Envelope, n)
		for v := 0; v < n; v++ {
			if nw.crashed(graph.NodeID(v), round) {
				continue // messages from a crashed node are lost
			}
			for _, d := range outs[v] {
				bits := d.msg.SizeBits(n)
				met.TotalBits += int64(bits)
				if bits > met.MaxMessageBits {
					met.MaxMessageBits = bits
				}
				if nw.dropProb > 0 && dropRnd.Float64() < nw.dropProb {
					met.Dropped++
					continue
				}
				if nw.crashed(d.to, round+1) {
					continue // receiver dead next round
				}
				perRound++
				next[d.to] = append(next[d.to], Envelope{From: d.from, Msg: d.msg})
			}
		}
		met.Messages += perRound
		met.MessagesPerRound = append(met.MessagesPerRound, perRound)
		for v := range next {
			sort.Slice(next[v], func(i, j int) bool { return next[v][i].From < next[v][j].From })
		}
		inboxes = next

		allDone := true
		for v := 0; v < n; v++ {
			if !done[v] && !nw.crashed(graph.NodeID(v), round+1) {
				allDone = false
				break
			}
		}
		if allDone {
			return Result{Programs: progs, Metrics: met}, nil
		}
	}
	return Result{Programs: progs, Metrics: met}, ErrNoProgress
}

func (nw *Network) stepOne(v int, progs []Program, rnds []*rand.Rand,
	inboxes [][]Envelope, done []bool, outs [][]delivery, round int) {
	id := graph.NodeID(v)
	if nw.crashed(id, round) {
		return
	}
	ctx := &nodeCtx{nw: nw, id: id, round: round, inbox: inboxes[v], out: &outs[v], rnd: rnds[v]}
	if progs[v].Step(ctx) {
		done[v] = true
	} else {
		done[v] = false
	}
}

func (nw *Network) crashed(v graph.NodeID, round int) bool {
	if nw.crashAt == nil {
		return false
	}
	at, ok := nw.crashAt[v]
	return ok && round >= at
}
