package sim

import "math"

// Bit-size helpers shared by algorithm message types. The paper's model
// allows O(log n) bits per message, i.e. a constant number of node
// identifiers (or comparable quantities) per message.

// BitsForCount returns the bits needed to encode an integer in [0, max].
func BitsForCount(max int) int {
	if max <= 0 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(max + 1))))
}

// IDBits returns the bits for one node identifier in an n-node network.
func IDBits(n int) int { return BitsForCount(n - 1) }

// RandIDBits returns the bits for a random identifier drawn from [1, n⁴]
// as Algorithm 3 does: 4·⌈log₂ n⌉ + O(1).
func RandIDBits(n int) int { return 4*IDBits(n) + 2 }

// FixedPointBits is the encoding convention for the real-valued fields of
// Algorithm 1 (x_i, x_i⁺). All quantities manipulated by the algorithm are
// sums of at most t² terms of the form (Δ+1)^(-q/t); a fixed-point encoding
// with ⌈log₂ n⌉ integer/selector bits plus a constant number of fraction
// bits preserves every comparison the algorithm performs, so each field
// costs O(log n) bits as the paper claims.
func FixedPointBits(n int) int { return IDBits(n) + 16 }

// Marker is the α-synchronizer's null message ("round complete").
type Marker struct{ RoundDone int }

// SizeBits implements Message. A marker carries only a round index; rounds
// are O(t²) or O(log log n), far below log n, so one log n budget suffices.
func (Marker) SizeBits(n int) int { return BitsForCount(64) }

// Flag is a minimal one-bit message (e.g. Algorithm 2's REQ, Algorithm 3's
// elect-message M).
type Flag struct{ Kind uint8 }

// SizeBits implements Message.
func (Flag) SizeBits(int) int { return 8 }
