package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"ftclust/internal/graph"
	"ftclust/internal/rng"
)

// RunAsync executes the programs over an event-driven asynchronous network
// using an α-synchronizer (Awerbuch, JACM 1985): alongside its program
// messages, every node sends a round-completion marker to each neighbor
// every round, and a node starts round r+1 only after receiving the round-r
// markers of all neighbors. Message delays are random per delivery
// (uniform in [0.5, 1.5) time units, seeded), so arrival orders differ
// wildly from the synchronous schedule; the synchronizer nevertheless makes
// the execution indistinguishable from a synchronous one, which
// TestAsyncMatchesSync verifies. Node programs must have monotone
// termination (once Step returns true it keeps returning true) and must be
// quiescent after termination (a terminated program's observable output
// state no longer changes), because an asynchronous node can execute a few
// bookkeeping rounds beyond the synchronous stopping round before global
// termination is detected. All algorithms in this repository satisfy both.
//
// The asynchronous engine models reliable channels (synchronizers assume
// them), so it rejects networks configured with crashes or message drops.
func (nw *Network) RunAsync(newNode func(v graph.NodeID) Program, maxRounds int) (Result, error) {
	if nw.crashAt != nil || nw.dropProb > 0 {
		return Result{}, fmt.Errorf("sim: async engine requires reliable, failure-free channels")
	}
	n := nw.g.NumNodes()
	progs := make([]Program, n)
	rnds := make([]*rand.Rand, n)
	for v := 0; v < n; v++ {
		progs[v] = newNode(graph.NodeID(v))
		rnds[v] = rng.NewStream(nw.seed, uint64(v)+1)
	}
	if n == 0 {
		return Result{Programs: progs}, nil
	}

	st := &asyncState{
		nw:       nw,
		progs:    progs,
		rnds:     rnds,
		delayRnd: rng.NewStream(nw.seed, uint64(n)+7),
		inboxes:  make([]map[int][]Envelope, n),
		markers:  make([]map[int]int, n),
		next:     make([]int, n),
		doneAt:   make([]int, n),
		maxR:     maxRounds,
		stop:     -1,
	}
	for v := 0; v < n; v++ {
		st.inboxes[v] = make(map[int][]Envelope)
		st.markers[v] = make(map[int]int)
		st.doneAt[v] = -1
	}

	// Round 0 needs no prerequisites.
	for v := 0; v < n; v++ {
		st.tryExec(graph.NodeID(v), 0)
	}
	for st.q.Len() > 0 {
		ev := heap.Pop(&st.q).(event)
		v := ev.to
		if ev.marker {
			st.markers[v][ev.round]++
		} else {
			st.inboxes[v][ev.round] = append(st.inboxes[v][ev.round], ev.env)
		}
		st.tryExec(v, ev.time)
		if st.stop >= 0 && st.allExecuted(st.stop) {
			break
		}
	}
	if st.stop < 0 {
		return Result{Programs: progs, Metrics: st.met}, ErrNoProgress
	}
	st.met.Rounds = st.stop + 1
	return Result{Programs: progs, Metrics: st.met}, nil
}

type asyncState struct {
	nw       *Network
	progs    []Program
	rnds     []*rand.Rand
	delayRnd *rand.Rand
	q        eventQueue
	seq      int64
	inboxes  []map[int][]Envelope // per node: sender-round → envelopes
	markers  []map[int]int        // per node: sender-round → markers seen
	next     []int                // per node: next round to execute
	doneAt   []int                // per node: earliest round Step returned true, -1 if none
	maxR     int
	stop     int // the synchronous stop round once determined, else -1
	met      Metrics
}

// ready reports whether node v can execute its next round: round 0 always,
// round r > 0 once every neighbor's round-(r-1) marker has arrived.
func (st *asyncState) ready(v graph.NodeID) bool {
	r := st.next[v]
	if r >= st.maxR {
		return false
	}
	if r == 0 {
		return true
	}
	return st.markers[v][r-1] == st.nw.g.Degree(v)
}

func (st *asyncState) tryExec(v graph.NodeID, now float64) {
	for st.ready(v) {
		r := st.next[v]
		inbox := st.inboxes[v][r-1]
		sort.Slice(inbox, func(i, j int) bool { return inbox[i].From < inbox[j].From })
		delete(st.inboxes[v], r-1)
		delete(st.markers[v], r-1)

		var outs []delivery
		ctx := &nodeCtx{nw: st.nw, id: v, round: r, inbox: inbox, out: &outs, rnd: st.rnds[v]}
		if st.progs[v].Step(ctx) && st.doneAt[v] < 0 {
			st.doneAt[v] = r
		}
		st.next[v] = r + 1

		// Schedule program messages and the synchronizer markers.
		// Channels are FIFO: everything node v sends to neighbor w in
		// round r shares one delay, and the marker is enqueued after the
		// program messages, so a marker can never overtake the payload
		// whose delivery it vouches for (the α-synchronizer's safety
		// property).
		delay := make(map[graph.NodeID]float64, st.nw.g.Degree(v))
		for _, w := range st.nw.g.Neighbors(v) {
			delay[w] = 0.5 + st.delayRnd.Float64()
		}
		for _, d := range outs {
			bits := d.msg.SizeBits(st.nw.g.NumNodes())
			st.met.TotalBits += int64(bits)
			if bits > st.met.MaxMessageBits {
				st.met.MaxMessageBits = bits
			}
			st.met.Messages++
			st.push(event{
				time: now + delay[d.to],
				to:   d.to, round: r, env: Envelope{From: d.from, Msg: d.msg},
			})
		}
		for _, w := range st.nw.g.Neighbors(v) {
			st.push(event{
				time: now + delay[w],
				to:   w, round: r, marker: true,
			})
		}

		// Determine the synchronous stop round: the first round r* at
		// which every node has terminated.
		if st.stop < 0 {
			cand := -1
			for u := range st.doneAt {
				if st.doneAt[u] < 0 {
					cand = -1
					break
				}
				if st.doneAt[u] > cand {
					cand = st.doneAt[u]
				}
			}
			st.stop = cand
		}
	}
}

// allExecuted reports whether every node has executed rounds 0…r.
func (st *asyncState) allExecuted(r int) bool {
	for v := range st.next {
		if st.next[v] <= r {
			return false
		}
	}
	return true
}

func (st *asyncState) push(ev event) {
	ev.seq = st.seq
	st.seq++
	heap.Push(&st.q, ev)
}

// event is a scheduled delivery.
type event struct {
	time   float64
	seq    int64
	to     graph.NodeID
	round  int // the sender's round for the payload
	marker bool
	env    Envelope
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
